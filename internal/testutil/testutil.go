// Package testutil builds small deterministic environments (road network,
// trajectory datasets in both representations, spatial and shortest-path
// substrates, all six cost models) shared by the test suites. It is a
// test-support package, not part of the public API.
package testutil

import (
	"math/rand"
	"sort"

	"subtraj/internal/roadnet"
	"subtraj/internal/shortestpath"
	"subtraj/internal/spatial"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// Env is a miniature world: graph, datasets, substrates.
type Env struct {
	G    *roadnet.Graph
	V    *traj.Dataset // vertex representation
	E    *traj.Dataset // edge representation
	Tree *spatial.KDTree
	Und  *shortestpath.Adjacency
	Hubs *shortestpath.HubLabels
	Rng  *rand.Rand
}

// NewEnv generates a deterministic environment. numTraj trajectories of
// roughly targetLen vertices on a small perturbed grid.
func NewEnv(seed int64, numTraj, targetLen int) *Env {
	cfg := workload.Tiny(seed)
	cfg.NumTrajectories = numTraj
	cfg.TargetLen = targetLen
	w := workload.Generate(cfg)
	e := &Env{
		G:   w.Graph,
		V:   w.Data,
		Rng: rand.New(rand.NewSource(seed + 1000)),
	}
	ed, err := w.Data.ToEdgeRep(w.Graph)
	if err != nil {
		panic("testutil: generated dataset is not path-connected: " + err.Error())
	}
	e.E = ed
	e.Tree = spatial.Build(w.Graph.Coords())
	e.Und = shortestpath.Undirected(w.Graph)
	e.Hubs = shortestpath.BuildHubLabels(e.Und)
	return e
}

// Model pairs a cost model with the dataset representation it runs on.
type Model struct {
	Name  string
	Costs wed.FilterCosts
	DS    *traj.Dataset
}

// Models returns the six paper cost models with parameters scaled to the
// tiny grid (spacing 100 m, jitter 25 m).
func (e *Env) Models() []Model {
	medW := e.G.MedianEdgeWeight()
	return []Model{
		{"Lev", wed.NewLev(), e.V},
		{"EDR", wed.NewEDR(e.G.Coords(), e.Tree, 60), e.V},
		{"ERP", wed.NewERP(e.G.Coords(), e.Tree, e.G.Barycenter(), 5), e.V},
		{"NetEDR", wed.NewNetEDR(e.Und, e.Hubs, medW), e.V},
		{"NetERP", wed.NewNetERP(e.Und, e.Hubs, 2000, medW), e.V},
		{"SURS", sursModel(e.G), e.E},
	}
}

func sursModel(g *roadnet.Graph) wed.FilterCosts {
	ws := make([]float64, g.NumEdges())
	for i, ed := range g.Edges() {
		ws[i] = ed.Weight
	}
	return wed.NewSURS(ws)
}

// Query samples a query of length qlen from the model's dataset.
func (e *Env) Query(m Model, qlen int) []traj.Symbol {
	q, err := workload.SampleQuery(m.DS, qlen, e.Rng)
	if err != nil {
		// Fall back to the longest available prefix.
		longest := 0
		for id := range m.DS.Trajs {
			if len(m.DS.Trajs[id].Path) > len(m.DS.Trajs[longest].Path) {
				longest = id
			}
		}
		p := m.DS.Trajs[longest].Path
		if len(p) == 0 {
			panic("testutil: empty dataset")
		}
		if qlen > len(p) {
			qlen = len(p)
		}
		q = append([]traj.Symbol(nil), p[:qlen]...)
	}
	return q
}

// RandomString draws a random symbol string of length n over the model's
// alphabet (present symbols only), for property tests that do not need
// path-connected queries.
func (e *Env) RandomString(m Model, n int) []traj.Symbol {
	var alpha []traj.Symbol
	seen := map[traj.Symbol]bool{}
	for id := range m.DS.Trajs {
		for _, s := range m.DS.Trajs[id].Path {
			if !seen[s] {
				seen[s] = true
				alpha = append(alpha, s)
			}
		}
	}
	out := make([]traj.Symbol, n)
	for i := range out {
		out[i] = alpha[e.Rng.Intn(len(alpha))]
	}
	return out
}

// RandomCosts is a randomized table-based cost model over a small alphabet
// for adversarial property tests: symmetric, zero diagonal, non-negative,
// with ins = del. It does NOT satisfy any structure beyond the paper's
// assumptions.
type RandomCosts struct {
	N   int
	Tab [][]float64 // substitution costs
	ID  []float64   // insertion/deletion costs
	Eta float64
}

// NewRandomCosts builds a random model over alphabet {0..n-1}.
func NewRandomCosts(rng *rand.Rand, n int, eta float64) *RandomCosts {
	rc := &RandomCosts{N: n, Eta: eta}
	rc.Tab = make([][]float64, n)
	for i := range rc.Tab {
		rc.Tab[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() * 4
			rc.Tab[i][j] = v
			rc.Tab[j][i] = v
		}
	}
	rc.ID = make([]float64, n)
	for i := range rc.ID {
		rc.ID[i] = rng.Float64()*3 + 0.1
	}
	return rc
}

// Name implements wed.Costs.
func (rc *RandomCosts) Name() string { return "Random" }

// Sub implements wed.Costs.
func (rc *RandomCosts) Sub(a, b wed.Symbol) float64 { return rc.Tab[a][b] }

// Ins implements wed.Costs.
func (rc *RandomCosts) Ins(a wed.Symbol) float64 { return rc.ID[a] }

// Del implements wed.Costs.
func (rc *RandomCosts) Del(a wed.Symbol) float64 { return rc.ID[a] }

// Neighbors implements wed.FilterCosts.
func (rc *RandomCosts) Neighbors(q wed.Symbol, dst []wed.Symbol) []wed.Symbol {
	for b := 0; b < rc.N; b++ {
		if rc.Tab[q][b] <= rc.Eta {
			dst = append(dst, wed.Symbol(b))
		}
	}
	return dst
}

// FilterCost implements wed.FilterCosts.
func (rc *RandomCosts) FilterCost(q wed.Symbol) float64 {
	c := rc.ID[q]
	for b := 0; b < rc.N; b++ {
		if rc.Tab[q][b] > rc.Eta && rc.Tab[q][b] < c {
			c = rc.Tab[q][b]
		}
	}
	return c
}

// RandomDataset builds a dataset of random strings over {0..n-1} (no road
// network structure — adversarial input for the engine).
func RandomDataset(rng *rand.Rand, alpha, numTraj, maxLen int) *traj.Dataset {
	ds := traj.NewDataset(traj.VertexRep)
	for i := 0; i < numTraj; i++ {
		n := rng.Intn(maxLen) + 1
		p := make([]traj.Symbol, n)
		for j := range p {
			p[j] = traj.Symbol(rng.Intn(alpha))
		}
		ds.Add(traj.Trajectory{Path: p})
	}
	return ds
}

// PickTau chooses a threshold that is safely separated from every distance
// in weds (midway between two consecutive values around the quantile), so
// float rounding cannot flip match membership across algorithms. maxTau
// bounds the result away from wed(ε, Q).
func PickTau(weds []float64, quantile, maxTau float64) float64 {
	vals := append([]float64(nil), weds...)
	vals = append(vals, 0)
	sort.Float64s(vals)
	// Dedup.
	out := vals[:1]
	for _, v := range vals[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	vals = out
	idx := int(quantile * float64(len(vals)-1))
	var tau float64
	if idx+1 < len(vals) {
		tau = (vals[idx] + vals[idx+1]) / 2
	} else {
		tau = vals[idx] + 1
	}
	if tau > maxTau {
		// Midpoint between the largest value below maxTau and maxTau.
		below := 0.0
		for _, v := range vals {
			if v < maxTau {
				below = v
			}
		}
		tau = (below + maxTau) / 2
	}
	if tau <= 0 {
		tau = maxTau / 2
	}
	return tau
}

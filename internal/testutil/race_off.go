//go:build !race

package testutil

// RaceEnabled reports whether the race detector is compiled in; tests
// with allocation or timing budgets skip under it, since instrumentation
// changes both.
const RaceEnabled = false

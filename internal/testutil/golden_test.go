package testutil

import (
	"testing"

	"subtraj/internal/geo"
)

// TestGoldenNetShape pins the fixture's shape: other packages assert exact
// vertex IDs and geometry against it, so any change here must be
// deliberate (and break this test first).
func TestGoldenNetShape(t *testing.T) {
	g := GoldenNet()
	if got, want := g.NumVertices(), GoldenRows*GoldenCols; got != want {
		t.Fatalf("vertices = %d, want %d", got, want)
	}
	// Interior grid edges, both directions: rows*(cols-1) horizontal pairs
	// plus (rows-1)*cols vertical pairs.
	wantEdges := 2 * (GoldenRows*(GoldenCols-1) + (GoldenRows-1)*GoldenCols)
	if got := g.NumEdges(); got != wantEdges {
		t.Fatalf("edges = %d, want %d", got, wantEdges)
	}
	// Coordinates are the grid lattice.
	for r := 0; r < GoldenRows; r++ {
		for c := 0; c < GoldenCols; c++ {
			want := geo.Point{X: float64(c) * GoldenSpacing, Y: float64(r) * GoldenSpacing}
			if got := g.Coord(int32(GoldenVertex(r, c))); got != want {
				t.Fatalf("coord(%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
	// Every edge has weight GoldenSpacing and connects lattice neighbours.
	for _, e := range g.Edges() {
		if e.Weight != GoldenSpacing {
			t.Fatalf("edge %d→%d weight %g, want %g", e.From, e.To, e.Weight, GoldenSpacing)
		}
		if d := g.Coord(e.From).Dist(g.Coord(e.To)); d != GoldenSpacing {
			t.Fatalf("edge %d→%d spans %g m, want %g", e.From, e.To, d, GoldenSpacing)
		}
	}
}

func TestGoldenPathsAreValid(t *testing.T) {
	g := GoldenNet()
	paths := GoldenPaths()
	if len(paths) != 4 {
		t.Fatalf("got %d golden paths, want 4", len(paths))
	}
	for i, p := range paths {
		if len(p) < 6 {
			t.Errorf("path %d has only %d vertices; fixture paths must be long enough to subsample", i, len(p))
		}
		if !g.IsPath(p) {
			t.Errorf("golden path %d is not a connected path: %v", i, p)
		}
	}
	ds := GoldenDataset()
	if ds.Len() != len(paths) {
		t.Fatalf("dataset has %d trajectories, want %d", ds.Len(), len(paths))
	}
}

// TestNewEnvSmoke gives the workload-backed Env constructor (used
// throughout the suites) a first direct test: both representations
// populated, substrates built, all six models constructible.
func TestNewEnvSmoke(t *testing.T) {
	e := NewEnv(3, 20, 15)
	if e.V.Len() != 20 || e.E.Len() != 20 {
		t.Fatalf("datasets: %d vertex-rep, %d edge-rep, want 20/20", e.V.Len(), e.E.Len())
	}
	if e.Tree.Len() != e.G.NumVertices() {
		t.Fatalf("spatial index over %d points, want %d", e.Tree.Len(), e.G.NumVertices())
	}
	models := e.Models()
	if len(models) != 6 {
		t.Fatalf("got %d models, want 6", len(models))
	}
	for _, m := range models {
		q := e.Query(m, 5)
		if len(q) == 0 {
			t.Errorf("model %s: empty query", m.Name)
		}
	}
}

package testutil

import (
	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
	"subtraj/internal/traj"
)

// This file provides the golden road-network fixture: a fixed, hand-shaped
// city grid with known coordinates and a handful of ground-truth paths.
// Unlike the seeded random workloads, its shape is pinned by a self-test
// (golden_test.go), so tests across packages (map matching, server,
// ingestion) can assert exact vertex IDs, distances, and path geometry
// without each hand-rolling its own tiny graph.

// Golden grid dimensions and spacing. Vertex (r, c) has ID r*GoldenCols+c
// and coordinates (c*GoldenSpacing, r*GoldenSpacing); every horizontal and
// vertical neighbour pair is connected by edges in both directions with
// weight GoldenSpacing.
const (
	GoldenRows    = 6
	GoldenCols    = 6
	GoldenSpacing = 100.0
)

// GoldenVertex returns the vertex ID at grid position (row, col).
func GoldenVertex(row, col int) traj.Symbol {
	return traj.Symbol(row*GoldenCols + col)
}

// GoldenNet builds the golden road network: a GoldenRows×GoldenCols
// bidirectional grid with GoldenSpacing-metre blocks. Deterministic and
// allocation-cheap; build one per test.
func GoldenNet() *roadnet.Graph {
	g := &roadnet.Graph{}
	for r := 0; r < GoldenRows; r++ {
		for c := 0; c < GoldenCols; c++ {
			g.AddVertex(geo.Point{X: float64(c) * GoldenSpacing, Y: float64(r) * GoldenSpacing})
		}
	}
	for r := 0; r < GoldenRows; r++ {
		for c := 0; c < GoldenCols; c++ {
			v := int32(GoldenVertex(r, c))
			if c+1 < GoldenCols {
				w := int32(GoldenVertex(r, c+1))
				g.AddEdge(v, w, GoldenSpacing)
				g.AddEdge(w, v, GoldenSpacing)
			}
			if r+1 < GoldenRows {
				w := int32(GoldenVertex(r+1, c))
				g.AddEdge(v, w, GoldenSpacing)
				g.AddEdge(w, v, GoldenSpacing)
			}
		}
	}
	return g
}

// GoldenPaths returns the fixture's ground-truth trajectories: connected
// paths on the golden grid with distinct shapes (straight run, L-turn,
// staircase, U-shape). Each is a valid path (see the self-test) long
// enough to sample subqueries from.
func GoldenPaths() [][]traj.Symbol {
	v := GoldenVertex
	return [][]traj.Symbol{
		// Straight west→east run along row 1.
		{v(1, 0), v(1, 1), v(1, 2), v(1, 3), v(1, 4), v(1, 5)},
		// L-turn: south along column 4, then west along row 4.
		{v(0, 4), v(1, 4), v(2, 4), v(3, 4), v(4, 4), v(4, 3), v(4, 2), v(4, 1), v(4, 0)},
		// Staircase from the northwest corner to the southeast.
		{v(0, 0), v(0, 1), v(1, 1), v(1, 2), v(2, 2), v(2, 3), v(3, 3), v(3, 4), v(4, 4), v(4, 5), v(5, 5)},
		// U-shape down column 1, across row 5, up column 3.
		{v(2, 1), v(3, 1), v(4, 1), v(5, 1), v(5, 2), v(5, 3), v(4, 3), v(3, 3), v(2, 3)},
	}
}

// GoldenDataset bundles the golden paths into a vertex-representation
// dataset (no timestamps), ready to build an engine over.
func GoldenDataset() *traj.Dataset {
	ds := traj.NewDataset(traj.VertexRep)
	for _, p := range GoldenPaths() {
		ds.Add(traj.Trajectory{Path: append([]traj.Symbol(nil), p...)})
	}
	return ds
}

package wed_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subtraj/internal/simfuncs"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

const epsRel = 1e-9

func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= epsRel*(1+math.Abs(a)+math.Abs(b))
}

// refLevenshtein is an independent classic implementation.
func refLevenshtein(a, b []traj.Symbol) int {
	m, n := len(a), len(b)
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
		d[i][0] = i
	}
	for j := 0; j <= n; j++ {
		d[0][j] = j
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			c := 1
			if a[i-1] == b[j-1] {
				c = 0
			}
			v := d[i-1][j-1] + c
			if d[i-1][j]+1 < v {
				v = d[i-1][j] + 1
			}
			if d[i][j-1]+1 < v {
				v = d[i][j-1] + 1
			}
			d[i][j] = v
		}
	}
	return d[m][n]
}

func randString(rng *rand.Rand, alpha, maxLen int) []traj.Symbol {
	n := rng.Intn(maxLen + 1)
	s := make([]traj.Symbol, n)
	for i := range s {
		s[i] = traj.Symbol(rng.Intn(alpha))
	}
	return s
}

func TestLevMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lev := wed.NewLev()
	for i := 0; i < 300; i++ {
		a := randString(rng, 5, 12)
		b := randString(rng, 5, 12)
		got := wed.Dist(lev, a, b)
		want := float64(refLevenshtein(a, b))
		if got != want {
			t.Fatalf("Lev(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestDistAxiomsPropertyRandomCosts(t *testing.T) {
	// Property: for any cost table satisfying the §2.2 assumptions,
	// wed is non-negative, symmetric, and wed(P,P) = 0 (Proposition 1).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		rc := testutil.NewRandomCosts(rng, 6, 0)
		f := func(aRaw, bRaw []uint8) bool {
			a := toSyms(aRaw, rc.N)
			b := toSyms(bRaw, rc.N)
			ab := wed.Dist(rc, a, b)
			ba := wed.Dist(rc, b, a)
			if ab < 0 {
				return false
			}
			if !approxEq(ab, ba) {
				return false
			}
			if wed.Dist(rc, a, a) != 0 {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func toSyms(raw []uint8, alpha int) []traj.Symbol {
	s := make([]traj.Symbol, len(raw))
	for i, r := range raw {
		s[i] = traj.Symbol(int(r) % alpha)
	}
	return s
}

func TestDistEmptyStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rc := testutil.NewRandomCosts(rng, 5, 0)
	a := []traj.Symbol{1, 2, 3}
	if got, want := wed.Dist(rc, nil, a), wed.SumIns(rc, a); !approxEq(got, want) {
		t.Errorf("Dist(ε, a) = %v, want ΣIns = %v", got, want)
	}
	if got, want := wed.Dist(rc, a, nil), wed.SumDel(rc, a); !approxEq(got, want) {
		t.Errorf("Dist(a, ε) = %v, want ΣDel = %v", got, want)
	}
	if got := wed.Dist(rc, nil, nil); got != 0 {
		t.Errorf("Dist(ε, ε) = %v, want 0", got)
	}
}

func TestDistTriangleInequalityERP(t *testing.T) {
	// ERP is a metric (§2.2.2): check the triangle inequality on random
	// strings over a generated network.
	env := testutil.NewEnv(4, 30, 20)
	models := env.Models()
	var erp testutil.Model
	for _, m := range models {
		if m.Name == "ERP" {
			erp = m
		}
	}
	for i := 0; i < 100; i++ {
		a := env.RandomString(erp, env.Rng.Intn(8))
		b := env.RandomString(erp, env.Rng.Intn(8))
		c := env.RandomString(erp, env.Rng.Intn(8))
		ab := wed.Dist(erp.Costs, a, b)
		bc := wed.Dist(erp.Costs, b, c)
		ac := wed.Dist(erp.Costs, a, c)
		if ac > ab+bc+1e-9 {
			t.Fatalf("ERP triangle violated: d(a,c)=%v > d(a,b)+d(b,c)=%v", ac, ab+bc)
		}
	}
}

func TestEDRNotExceedingLev(t *testing.T) {
	// EDR's substitution cost is ≤ Lev's, so EDR ≤ Lev pointwise.
	env := testutil.NewEnv(5, 30, 20)
	var edr testutil.Model
	for _, m := range env.Models() {
		if m.Name == "EDR" {
			edr = m
		}
	}
	lev := wed.NewLev()
	for i := 0; i < 100; i++ {
		a := env.RandomString(edr, env.Rng.Intn(10))
		b := env.RandomString(edr, env.Rng.Intn(10))
		if e, l := wed.Dist(edr.Costs, a, b), wed.Dist(lev, a, b); e > l+1e-12 {
			t.Fatalf("EDR(%v) > Lev(%v)", e, l)
		}
	}
}

func TestSURSEqualsUnsharedWeight(t *testing.T) {
	// Appendix F: SURS(x,y) = w(x) + w(y) − 2·LORS(x,y), where LORS is
	// the weighted LCS under road lengths.
	env := testutil.NewEnv(6, 30, 20)
	var surs testutil.Model
	for _, m := range env.Models() {
		if m.Name == "SURS" {
			surs = m
		}
	}
	weight := func(s traj.Symbol) float64 { return env.G.Edge(s).Weight }
	for i := 0; i < 200; i++ {
		a := env.RandomString(surs, env.Rng.Intn(12))
		b := env.RandomString(surs, env.Rng.Intn(12))
		got := wed.Dist(surs.Costs, a, b)
		lors := simfuncs.LORS(a, b, weight)
		want := simfuncs.SumWeights(a, weight) + simfuncs.SumWeights(b, weight) - 2*lors
		if !approxEq(got, want) {
			t.Fatalf("SURS(%v,%v) = %v, want w+w-2·LORS = %v", a, b, got, want)
		}
	}
}

func TestSURSPaperExample(t *testing.T) {
	// Example 1: P = befg, Q = abcdg; SURS = w(a)+w(c)+w(d)+w(e)+w(f).
	w := []float64{1, 2, 4, 8, 16, 32, 64} // a..g
	s := wed.NewSURS(w)
	const (
		a = iota
		b
		c
		d
		e
		f
		g
	)
	p := []traj.Symbol{b, e, f, g}
	q := []traj.Symbol{a, b, c, d, g}
	got := wed.Dist(s, p, q)
	want := w[a] + w[c] + w[d] + w[e] + w[f]
	if !approxEq(got, want) {
		t.Fatalf("SURS example: got %v want %v", got, want)
	}
}

func TestStepDPMatchesMatrix(t *testing.T) {
	// StepDP column k must equal DistMatrix row k (prefix semantics).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rc := testutil.NewRandomCosts(rng, 5, 0)
		p := randString(rng, 5, 10)
		q := randString(rng, 5, 8)
		m := wed.DistMatrix(rc, p, q)
		col := make([]float64, len(q)+1)
		copy(col, m[0])
		for k, sym := range p {
			col = wed.StepDP(rc, q, sym, col, make([]float64, len(q)+1))
			for j := range col {
				if !approxEq(col[j], m[k+1][j]) {
					t.Fatalf("StepDP mismatch at k=%d j=%d: %v vs %v", k+1, j, col[j], m[k+1][j])
				}
			}
		}
	}
}

func TestDistMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 80; trial++ {
		rc := testutil.NewRandomCosts(rng, 6, 0)
		p := randString(rng, 6, 12)
		q := randString(rng, 6, 12)
		m := wed.DistMatrix(rc, p, q)
		if got := wed.Dist(rc, p, q); !approxEq(got, m[len(p)][len(q)]) {
			t.Fatalf("Dist %v != matrix %v", got, m[len(p)][len(q)])
		}
	}
}

func TestReversalInvariance(t *testing.T) {
	// wed(reverse(P), reverse(Q)) == wed(P, Q): the property underlying
	// backward verification (§5.1).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		rc := testutil.NewRandomCosts(rng, 6, 0)
		p := randString(rng, 6, 12)
		q := randString(rng, 6, 12)
		pr := reversed(p)
		qr := reversed(q)
		if a, b := wed.Dist(rc, p, q), wed.Dist(rc, pr, qr); !approxEq(a, b) {
			t.Fatalf("reversal changed WED: %v vs %v", a, b)
		}
	}
}

func reversed(s []traj.Symbol) []traj.Symbol {
	out := make([]traj.Symbol, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

func TestColumnMinMonotone(t *testing.T) {
	// The early-termination bound LB_k = min(column k) must be
	// non-decreasing in k (Eq. 11's safety argument).
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		rc := testutil.NewRandomCosts(rng, 5, 0)
		p := randString(rng, 5, 15)
		q := randString(rng, 5, 10)
		col := make([]float64, len(q)+1)
		for j, qs := range q {
			col[j+1] = col[j] + rc.Ins(qs)
		}
		lb := wed.Min(col)
		for _, sym := range p {
			col = wed.StepDP(rc, q, sym, col, make([]float64, len(q)+1))
			nlb := wed.Min(col)
			if nlb < lb-1e-12 {
				t.Fatalf("LB decreased: %v -> %v", lb, nlb)
			}
			lb = nlb
		}
	}
}

func TestSmithWatermanAllSemantics(t *testing.T) {
	// SmithWatermanAll returns, per end position, the best-start match
	// below tau: every reported match must satisfy its WED by
	// recomputation, be below tau, and be per-end optimal.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 60; trial++ {
		rc := testutil.NewRandomCosts(rng, 5, 0)
		p := randString(rng, 5, 14)
		q := randString(rng, 5, 8)
		tau := wed.SumIns(rc, q) * (0.2 + 0.6*rng.Float64())
		got := wed.SmithWatermanAll(rc, q, p, tau)
		seenEnd := map[int]bool{}
		for _, m := range got {
			if m.WED >= tau {
				t.Fatalf("match above tau: %+v", m)
			}
			if m.T < m.S {
				t.Fatalf("empty substring reported: %+v", m)
			}
			if seenEnd[m.T] {
				t.Fatalf("two matches with end %d", m.T)
			}
			seenEnd[m.T] = true
			if d := wed.Dist(rc, p[m.S:m.T+1], q); !approxEq(d, m.WED) {
				t.Fatalf("reported %v, recomputed %v", m.WED, d)
			}
			// Per-end optimality: no start yields a smaller WED for
			// this end.
			for s := 0; s <= m.T; s++ {
				if d := wed.Dist(rc, p[s:m.T+1], q); d < m.WED-1e-9 {
					t.Fatalf("end %d: start %d gives %v < reported %v", m.T, s, d, m.WED)
				}
			}
		}
		// Completeness per end: if some end position has a sub-tau
		// match, it must be reported.
		for e := 0; e < len(p); e++ {
			best := math.Inf(1)
			for s := 0; s <= e; s++ {
				if d := wed.Dist(rc, p[s:e+1], q); d < best {
					best = d
				}
			}
			if best < tau-1e-9 && !seenEnd[e] {
				t.Fatalf("end %d has match at %v < tau=%v but was not reported", e, best, tau)
			}
		}
	}
}

func TestModelNames(t *testing.T) {
	env := testutil.NewEnv(15, 10, 10)
	want := map[string]bool{"Lev": true, "EDR": true, "ERP": true, "NetEDR": true, "NetERP": true, "SURS": true}
	for _, m := range env.Models() {
		if m.Costs.Name() != m.Name {
			t.Errorf("model %s reports Name() = %q", m.Name, m.Costs.Name())
		}
		delete(want, m.Costs.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing models: %v", want)
	}
}

func TestSmithWatermanBestEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		rc := testutil.NewRandomCosts(rng, 5, 0)
		p := randString(rng, 5, 14)
		q := randString(rng, 5, 8)
		if len(p) == 0 {
			continue
		}
		got, ok := wed.SmithWaterman(rc, q, p)
		if !ok {
			t.Fatalf("SW found nothing on non-empty P")
		}
		// Brute force over all substrings including the empty one.
		best := wed.SumDel(rc, q) // wed(Q, ε)
		for s := 0; s < len(p); s++ {
			for e := s; e < len(p); e++ {
				if d := wed.Dist(rc, p[s:e+1], q); d < best {
					best = d
				}
			}
		}
		if !approxEq(got.WED, best) {
			t.Fatalf("SW best %v != brute force %v (P=%v Q=%v)", got.WED, best, p, q)
		}
		// The reported substring must achieve the reported value.
		if got.T >= got.S {
			if d := wed.Dist(rc, p[got.S:got.T+1], q); !approxEq(d, got.WED) {
				t.Fatalf("SW substring value %v != reported %v", d, got.WED)
			}
		}
	}
}

func TestAllMatchesEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		rc := testutil.NewRandomCosts(rng, 5, 0)
		p := randString(rng, 5, 12)
		q := randString(rng, 5, 6)
		var weds []float64
		for s := 0; s < len(p); s++ {
			for e := s; e < len(p); e++ {
				weds = append(weds, wed.Dist(rc, p[s:e+1], q))
			}
		}
		if len(weds) == 0 {
			continue
		}
		tau := testutil.PickTau(weds, 0.3, wed.SumIns(rc, q))
		got := wed.AllMatches(rc, q, p, tau)
		type key struct{ s, t int }
		gotSet := map[key]float64{}
		for _, m := range got {
			gotSet[key{m.S, m.T}] = m.WED
		}
		var wantCount int
		for s := 0; s < len(p); s++ {
			for e := s; e < len(p); e++ {
				d := wed.Dist(rc, p[s:e+1], q)
				if d < tau {
					wantCount++
					g, ok := gotSet[key{s, e}]
					if !ok {
						t.Fatalf("AllMatches missed (%d,%d) wed=%v tau=%v", s, e, d, tau)
					}
					if !approxEq(g, d) {
						t.Fatalf("AllMatches wed mismatch at (%d,%d): %v vs %v", s, e, g, d)
					}
				}
			}
		}
		if wantCount != len(got) {
			t.Fatalf("AllMatches count %d != brute force %d", len(got), wantCount)
		}
	}
}

func TestModelAssumptions(t *testing.T) {
	// Every shipped cost model must satisfy Proposition 1's assumptions
	// on sampled symbol pairs, and Neighbors/FilterCost must be
	// consistent with Definition 4 / Eq. 7.
	env := testutil.NewEnv(13, 30, 20)
	for _, m := range env.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			syms := env.RandomString(m, 60)
			for i := 0; i < len(syms); i++ {
				a := syms[i]
				if m.Costs.Sub(a, a) != 0 {
					t.Fatalf("sub(a,a) != 0 for %d", a)
				}
				if m.Costs.Ins(a) != m.Costs.Del(a) {
					t.Fatalf("ins != del for %d", a)
				}
				if m.Costs.Ins(a) < 0 {
					t.Fatalf("negative ins for %d", a)
				}
				for j := i + 1; j < len(syms) && j < i+8; j++ {
					b := syms[j]
					sab, sba := m.Costs.Sub(a, b), m.Costs.Sub(b, a)
					if sab < 0 {
						t.Fatalf("negative sub(%d,%d)", a, b)
					}
					if !approxEq(sab, sba) {
						t.Fatalf("asymmetric sub(%d,%d): %v vs %v", a, b, sab, sba)
					}
				}
				// Neighborhood sanity: q ∈ B(q); c(q) > costs inside the
				// neighbourhood would contradict Eq. 7.
				bq := m.Costs.Neighbors(a, nil)
				foundSelf := false
				for _, b := range bq {
					if b == a {
						foundSelf = true
					}
				}
				if !foundSelf {
					t.Fatalf("%s: q ∉ B(q) for %d", m.Name, a)
				}
				cq := m.Costs.FilterCost(a)
				if cq < 0 {
					t.Fatalf("negative c(q) for %d", a)
				}
				if cq > m.Costs.Del(a)+1e-12 {
					t.Fatalf("c(q)=%v exceeds del(q)=%v for %d (deletion always escapes B(q))", cq, m.Costs.Del(a), a)
				}
			}
		})
	}
}

package wed

// This file implements the Smith–Waterman adaptation of Appendix A
// (Algorithm 7): a substring-matching DP whose boundary condition lets a
// match start at any position of P for free, and whose K matrix memorises
// the start position of the best alignment ending at each cell (the
// technique of Sakurai et al. [38]).

// SWMatch is a best-substring result of the Smith–Waterman scan.
type SWMatch struct {
	// S and T are 0-based inclusive bounds of the substring P[S..T].
	// S > T encodes the empty substring (possible when wed(Q, ε) is the
	// minimum, e.g. tiny queries); callers filtering with a meaningful
	// τ ≤ Σ ins(Qj) never see it.
	S, T int
	// WED is wed(Q, P[S..T]).
	WED float64
}

// SmithWaterman returns the substring of P minimising wed(Q, ·), scanning
// the whole of P in O(|P|·|Q|) time (Algorithm 7). found is false only for
// empty P.
func SmithWaterman(c Costs, q, p []Symbol) (SWMatch, bool) {
	best, _ := smithWaterman(c, q, p, nil)
	return best, len(p) > 0
}

// SmithWatermanAll returns, for each end position t, the best-start match
// ending at t whose WED is below tau. This is the result set of the
// Plain-SW baseline: one match per end position (the full all-pairs result
// set requires the bidirectional verification or the exhaustive oracle).
func SmithWatermanAll(c Costs, q, p []Symbol, tau float64) []SWMatch {
	_, all := smithWaterman(c, q, p, func(m SWMatch) bool { return m.WED < tau })
	return all
}

func smithWaterman(c Costs, q, p []Symbol, keep func(SWMatch) bool) (SWMatch, []SWMatch) {
	n := len(q)
	// Column-major over P: D[i] = wed(Q[:i], P[s..j]) for the best s.
	// K[i] = that best start (0-based; K = j+1 means empty substring).
	d := make([]float64, n+1)
	k := make([]int, n+1)
	nd := make([]float64, n+1)
	nk := make([]int, n+1)
	d[0] = 0
	k[0] = 0
	for i, qs := range q {
		d[i+1] = d[i] + c.Del(qs) // deleting Q's prefix: wed(Q[:i+1], ε)
		k[i+1] = 0
	}
	best := SWMatch{S: 0, T: -1, WED: d[n]}
	var all []SWMatch
	if keep != nil && keep(best) {
		all = append(all, best)
	}
	for j, ps := range p {
		// Empty substring starting after j.
		nd[0] = 0
		nk[0] = j + 1
		for i, qs := range q {
			// a: substitute Q_i with P_j; b: delete Q_i; c: insert P_j.
			av := d[i] + c.Sub(qs, ps)
			bv := nd[i] + c.Del(qs)
			cv := d[i+1] + c.Ins(ps)
			switch {
			case av <= bv && av <= cv:
				nd[i+1], nk[i+1] = av, k[i]
			case bv <= cv:
				nd[i+1], nk[i+1] = bv, nk[i]
			default:
				nd[i+1], nk[i+1] = cv, k[i+1]
			}
		}
		m := SWMatch{S: nk[n], T: j, WED: nd[n]}
		if m.WED < best.WED || (m.WED == best.WED && best.T < best.S && m.T >= m.S) {
			best = m
		}
		if keep != nil && m.T >= m.S && keep(m) {
			all = append(all, m)
		}
		d, nd = nd, d
		k, nk = nk, k
	}
	return best, all
}

package wed

import (
	"subtraj/internal/geo"
	"subtraj/internal/shortestpath"
	"subtraj/internal/spatial"
)

// ---------------------------------------------------------------------------
// Levenshtein (Eq. 1)

// Lev is the unit-cost Levenshtein distance. It works on both vertex and
// edge representations. η is implicitly 0: B(q) = {q}, c(q) = 1.
type Lev struct{}

// NewLev returns the Levenshtein cost model.
func NewLev() Lev { return Lev{} }

// Name implements Costs.
func (Lev) Name() string { return "Lev" }

// Sub implements Costs.
func (Lev) Sub(a, b Symbol) float64 {
	if a == b {
		return 0
	}
	return 1
}

// Ins implements Costs.
func (Lev) Ins(Symbol) float64 { return 1 }

// Del implements Costs.
func (Lev) Del(Symbol) float64 { return 1 }

// Neighbors implements FilterCosts: B(q) = {q}.
func (Lev) Neighbors(q Symbol, dst []Symbol) []Symbol { return append(dst, q) }

// FilterCost implements FilterCosts: c(q) = 1.
func (Lev) FilterCost(Symbol) float64 { return 1 }

// ---------------------------------------------------------------------------
// EDR — edit distance on real sequence (Eq. 2)

// SpatialIndex answers the two spatial queries the coordinate-aware cost
// models need (§4.2: "we may index the coordinates of the vertices V
// using a spatial index, such as a kd-tree or an R-tree... regarding the
// index as a blackbox"). Both spatial.KDTree and spatial.RTree satisfy it.
type SpatialIndex interface {
	// Range appends the indexes of points within r of center.
	Range(center geo.Point, r float64, dst []int32) []int32
	// NearestBeyond returns the nearest point strictly farther than r,
	// or (-1, 0) when none exists.
	NearestBeyond(q geo.Point, r float64) (int32, float64)
}

// Compile-time checks that both spatial indexes are usable.
var (
	_ SpatialIndex = (*spatial.KDTree)(nil)
	_ SpatialIndex = (*spatial.RTree)(nil)
)

// EDR is Chen et al.'s edit distance on real sequences over vertex
// representation: substitution is free within Euclidean distance ε ("match")
// and 1 otherwise; insertions and deletions cost 1. With the paper's η = 0,
// B(q) is the ε-ball around q and c(q) = 1.
type EDR struct {
	coords []geo.Point
	tree   SpatialIndex
	eps    float64
}

// NewEDR builds the EDR model. coords maps vertex IDs to coordinates; tree
// must index exactly those coordinates; eps is the matching threshold ε.
func NewEDR(coords []geo.Point, tree SpatialIndex, eps float64) *EDR {
	return &EDR{coords: coords, tree: tree, eps: eps}
}

// Name implements Costs.
func (*EDR) Name() string { return "EDR" }

// Sub implements Costs.
func (e *EDR) Sub(a, b Symbol) float64 {
	if e.coords[a].Dist2(e.coords[b]) <= e.eps*e.eps {
		return 0
	}
	return 1
}

// Ins implements Costs.
func (*EDR) Ins(Symbol) float64 { return 1 }

// Del implements Costs.
func (*EDR) Del(Symbol) float64 { return 1 }

// Neighbors implements FilterCosts: the ε-range query of Figure 2.
func (e *EDR) Neighbors(q Symbol, dst []Symbol) []Symbol {
	return e.tree.Range(e.coords[q], e.eps, dst)
}

// FilterCost implements FilterCosts: every symbol outside B(q) costs 1, as
// does deletion.
func (*EDR) FilterCost(Symbol) float64 { return 1 }

// ---------------------------------------------------------------------------
// ERP — edit distance with real penalty (Eq. 3)

// ERP is Chen & Ng's metric edit distance over vertex representation:
// substitution costs the Euclidean distance, insertion/deletion the
// distance to a fixed reference point g. η must be a small positive number
// (Appendix D); B(q) is the η-ball and c(q) = min(d(q, g), nearest vertex
// beyond η).
type ERP struct {
	coords []geo.Point
	tree   SpatialIndex
	ref    geo.Point
	eta    float64
}

// NewERP builds the ERP model with reference point ref (the paper uses the
// barycentre of V) and neighbourhood threshold eta.
func NewERP(coords []geo.Point, tree SpatialIndex, ref geo.Point, eta float64) *ERP {
	return &ERP{coords: coords, tree: tree, ref: ref, eta: eta}
}

// Name implements Costs.
func (*ERP) Name() string { return "ERP" }

// Sub implements Costs.
func (e *ERP) Sub(a, b Symbol) float64 { return e.coords[a].Dist(e.coords[b]) }

// Ins implements Costs.
func (e *ERP) Ins(a Symbol) float64 { return e.coords[a].Dist(e.ref) }

// Del implements Costs.
func (e *ERP) Del(a Symbol) float64 { return e.coords[a].Dist(e.ref) }

// Neighbors implements FilterCosts.
func (e *ERP) Neighbors(q Symbol, dst []Symbol) []Symbol {
	return e.tree.Range(e.coords[q], e.eta, dst)
}

// FilterCost implements FilterCosts. Deletion (sub(q, ε) = d(q, g)) is
// always available; the cheapest in-alphabet substitution outside B(q) is
// the nearest vertex strictly beyond η, answered exactly by the kd-tree.
func (e *ERP) FilterCost(q Symbol) float64 {
	c := e.coords[q].Dist(e.ref)
	if idx, d := e.tree.NearestBeyond(e.coords[q], e.eta); idx >= 0 && d < c {
		c = d
	}
	return c
}

// ---------------------------------------------------------------------------
// NetEDR — EDR with shortest-path distance (§2.2.3)

// NetDist answers shortest-path distance queries on the symmetrised road
// network. shortestpath.HubLabels implements it; tests substitute a
// Dijkstra-backed oracle.
type NetDist interface {
	Query(a, b int32) float64
}

// NetEDR replaces EDR's Euclidean distance with (undirected) network
// distance. B(q) is the network ε-ball, computed exactly by bounded
// Dijkstra; c(q) = 1.
type NetEDR struct {
	adj  *shortestpath.Adjacency // symmetrised
	dist NetDist
	eps  float64
}

// NewNetEDR builds the NetEDR model; adj must be the symmetrised network
// (shortestpath.Undirected) and dist a matching distance oracle.
func NewNetEDR(adj *shortestpath.Adjacency, dist NetDist, eps float64) *NetEDR {
	return &NetEDR{adj: adj, dist: dist, eps: eps}
}

// Name implements Costs.
func (*NetEDR) Name() string { return "NetEDR" }

// Sub implements Costs.
func (e *NetEDR) Sub(a, b Symbol) float64 {
	if a == b {
		return 0
	}
	if e.dist.Query(a, b) <= e.eps {
		return 0
	}
	return 1
}

// Ins implements Costs.
func (*NetEDR) Ins(Symbol) float64 { return 1 }

// Del implements Costs.
func (*NetEDR) Del(Symbol) float64 { return 1 }

// Neighbors implements FilterCosts via bounded Dijkstra.
func (e *NetEDR) Neighbors(q Symbol, dst []Symbol) []Symbol {
	shortestpath.Bounded(e.adj, q, e.eps, func(v int32, _ float64) {
		dst = append(dst, v)
	})
	return dst
}

// FilterCost implements FilterCosts.
func (*NetEDR) FilterCost(Symbol) float64 { return 1 }

// ---------------------------------------------------------------------------
// NetERP — ERP with shortest-path distance (§2.2.3)

// NetERP replaces ERP's Euclidean distance with network distance and its
// reference-point deletion cost with a user constant G_del (making it
// non-metric, which the method tolerates since it never uses the triangle
// inequality).
type NetERP struct {
	adj  *shortestpath.Adjacency // symmetrised
	dist NetDist
	gdel float64
	eta  float64
}

// NewNetERP builds the NetERP model with deletion cost gdel (the paper uses
// 2M in metres-scaled datasets) and neighbourhood threshold eta (the paper
// uses the median road length).
func NewNetERP(adj *shortestpath.Adjacency, dist NetDist, gdel, eta float64) *NetERP {
	return &NetERP{adj: adj, dist: dist, gdel: gdel, eta: eta}
}

// Name implements Costs.
func (*NetERP) Name() string { return "NetERP" }

// Sub implements Costs.
func (e *NetERP) Sub(a, b Symbol) float64 {
	if a == b {
		return 0
	}
	return e.dist.Query(a, b)
}

// Ins implements Costs.
func (e *NetERP) Ins(Symbol) float64 { return e.gdel }

// Del implements Costs.
func (e *NetERP) Del(Symbol) float64 { return e.gdel }

// Neighbors implements FilterCosts via bounded Dijkstra.
func (e *NetERP) Neighbors(q Symbol, dst []Symbol) []Symbol {
	shortestpath.Bounded(e.adj, q, e.eta, func(v int32, _ float64) {
		dst = append(dst, v)
	})
	return dst
}

// FilterCost implements FilterCosts: min of the deletion constant and the
// nearest network distance strictly beyond η (the "smallest edge cost from
// q" in §3.1 when η is below the adjacent edge weights).
func (e *NetERP) FilterCost(q Symbol) float64 {
	beyond := shortestpath.Bounded(e.adj, q, e.eta, nil)
	if beyond < e.gdel {
		return beyond
	}
	return e.gdel
}

// ---------------------------------------------------------------------------
// SURS — shortest unshared road segments (Eq. 4)

// SURS works on edge representation: substituting a with b pays both road
// lengths, inserting or deleting pays the road length. It totals the travel
// cost of road segments not shared between the two trajectories, in order.
// With η = 0, B(q) = {q} (all weights are positive) and c(q) = w(q).
type SURS struct {
	weights []float64 // road length per edge ID
}

// NewSURS builds the SURS model over per-edge travel costs (indexed by
// EdgeID).
func NewSURS(weights []float64) *SURS { return &SURS{weights: weights} }

// Name implements Costs.
func (*SURS) Name() string { return "SURS" }

// Sub implements Costs.
func (s *SURS) Sub(a, b Symbol) float64 {
	if a == b {
		return 0
	}
	return s.weights[a] + s.weights[b]
}

// Ins implements Costs.
func (s *SURS) Ins(a Symbol) float64 { return s.weights[a] }

// Del implements Costs.
func (s *SURS) Del(a Symbol) float64 { return s.weights[a] }

// Neighbors implements FilterCosts: B(q) = {q} since every other
// substitution costs w(q)+w(b) > 0 = η.
func (*SURS) Neighbors(q Symbol, dst []Symbol) []Symbol { return append(dst, q) }

// FilterCost implements FilterCosts: deletion (w(q)) is always cheaper than
// substitution (w(q)+w(b)), so c(q) = del(q) as stated in §3.1.
func (s *SURS) FilterCost(q Symbol) float64 { return s.weights[q] }

// Compile-time interface checks.
var (
	_ FilterCosts = Lev{}
	_ FilterCosts = (*EDR)(nil)
	_ FilterCosts = (*ERP)(nil)
	_ FilterCosts = (*NetEDR)(nil)
	_ FilterCosts = (*NetERP)(nil)
	_ FilterCosts = (*SURS)(nil)
)

// Package wed implements the weighted edit distance (WED) class of §2.2:
// edit distance with user-defined insertion/deletion/substitution costs,
// the six cost instances evaluated in the paper (Lev, EDR, ERP, NetEDR,
// NetERP, SURS), the dynamic-programming kernels, and the Smith–Waterman
// substring scan (Appendix A, Algorithm 7).
//
// A cost model must satisfy the paper's assumptions (Proposition 1):
//
//	sub(a,b) ≥ 0,  sub(a,b) = sub(b,a),  sub(a,a) = 0,  ins(a) = del(a).
//
// Models additionally expose the filtering machinery of §3.1: the
// substitution neighbourhood B(q) (Definition 4) and the per-symbol
// filtering cost c(q) (Eq. 7). Both depend on the neighbourhood threshold
// η, fixed at model construction per Appendix D.
package wed

import "math"

// Symbol is a trajectory element (vertex or edge ID), mirroring
// traj.Symbol without importing it (both alias int32).
type Symbol = int32

// Costs defines the three WED edit-operation costs.
type Costs interface {
	// Name identifies the cost model ("EDR", "NetERP", ...).
	Name() string
	// Sub returns sub(a, b), the cost of substituting a with b.
	Sub(a, b Symbol) float64
	// Ins returns ins(a) = sub(ε, a).
	Ins(a Symbol) float64
	// Del returns del(a) = sub(a, ε). Symmetry forces Del = Ins.
	Del(a Symbol) float64
}

// FilterCosts extends Costs with the subsequence-filtering machinery.
type FilterCosts interface {
	Costs
	// Neighbors appends the substitution neighbourhood B(q) = {b ∈ Σ :
	// sub(q, b) ≤ η} to dst and returns the extended slice. The result
	// always contains q itself (sub(q,q) = 0 ≤ η).
	Neighbors(q Symbol, dst []Symbol) []Symbol
	// FilterCost returns c(q) = min over q' ∈ Σ⁺ \ B(q) of sub(q, q'):
	// the cheapest way to delete q or substitute it outside its
	// neighbourhood (Eq. 7).
	FilterCost(q Symbol) float64
}

// SumIns returns wed(ε, Q) = Σ ins(Qj), the cost of building Q from the
// empty string.
func SumIns(c Costs, q []Symbol) float64 {
	var s float64
	for _, x := range q {
		s += c.Ins(x)
	}
	return s
}

// SumDel returns wed(P, ε) = Σ del(Pi).
func SumDel(c Costs, p []Symbol) float64 {
	var s float64
	for _, x := range p {
		s += c.Del(x)
	}
	return s
}

// Dist computes wed(P, Q) by dynamic programming in O(|P|·|Q|) time and
// O(|Q|) space.
func Dist(c Costs, p, q []Symbol) float64 {
	// prev[j] = wed(P[:i], Q[:j]) for the previous row i.
	prev := make([]float64, len(q)+1)
	cur := make([]float64, len(q)+1)
	prev[0] = 0
	for j, qs := range q {
		prev[j+1] = prev[j] + c.Ins(qs)
	}
	for _, ps := range p {
		cur[0] = prev[0] + c.Del(ps)
		for j, qs := range q {
			v := prev[j] + c.Sub(ps, qs) // substitution
			if d := prev[j+1] + c.Del(ps); d < v {
				v = d // delete P_i
			}
			if d := cur[j] + c.Ins(qs); d < v {
				v = d // insert Q_j
			}
			cur[j+1] = v
		}
		prev, cur = cur, prev
	}
	return prev[len(q)]
}

// DistMatrix computes the full (|P|+1)×(|Q|+1) DP matrix, used by tests
// and by the exhaustive oracle.
func DistMatrix(c Costs, p, q []Symbol) [][]float64 {
	m := make([][]float64, len(p)+1)
	for i := range m {
		m[i] = make([]float64, len(q)+1)
	}
	for j, qs := range q {
		m[0][j+1] = m[0][j] + c.Ins(qs)
	}
	for i, ps := range p {
		m[i+1][0] = m[i][0] + c.Del(ps)
		for j, qs := range q {
			v := m[i][j] + c.Sub(ps, qs)
			if d := m[i][j+1] + c.Del(ps); d < v {
				v = d
			}
			if d := m[i+1][j] + c.Ins(qs); d < v {
				v = d
			}
			m[i+1][j+1] = v
		}
	}
	return m
}

// StepDP advances one DP column (Algorithm 6): given the column A for some
// prefix P' of the data string against query Qd, it returns the column for
// P'·p. dst is reused when it has capacity. A has length |Qd|+1; A[j] =
// wed(P', Qd[:j]).
func StepDP(c Costs, qd []Symbol, p Symbol, a, dst []float64) []float64 {
	if cap(dst) < len(qd)+1 {
		dst = make([]float64, len(qd)+1)
	} else {
		dst = dst[:len(qd)+1]
	}
	dst[0] = a[0] + c.Del(p)
	for j, qs := range qd {
		v := a[j] + c.Sub(p, qs)
		if d := a[j+1] + c.Del(p); d < v {
			v = d
		}
		if d := dst[j] + c.Ins(qs); d < v {
			v = d
		}
		dst[j+1] = v
	}
	return dst
}

// Min returns the minimum of a DP column — the early-termination lower
// bound LB of Eq. 11.
func Min(col []float64) float64 {
	m := col[0]
	for _, v := range col[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// StepDPBanded is the τ-banded variant of StepDP: it advances one DP
// column computing only the cells that can still matter under a threshold
// τ. The parent column is given as its band a = cells [alo, ahi); every
// cell outside the band is guaranteed ≥ τ and treated as +Inf. The child
// column is written into dst (which must have length ≥ |Qd|+1) at absolute
// cell indices, and the returned [lo, hi) is the child's band: the
// smallest interval containing every child cell whose value is < τ (cells
// of dst outside [lo, hi) are meaningless).
//
// Soundness rests on every edit cost being ≥ 0 (the WED assumptions of
// Proposition 1): a contribution through a source cell ≥ τ is itself ≥ τ,
// so it can never be the minimiser of a cell that ends up < τ. Cells
// below alo inherit ≥ τ from the parent band by induction; cells above
// ahi are reachable only through the child's own insertion chain, which
// the extension loop follows until it crosses τ. Cells < τ therefore get
// the exact full-width StepDP value, bit for bit; cells in [lo, hi) that
// are ≥ τ may be overestimates, which is harmless because (being ≥ τ)
// they can never reach a result or flip a τ′ ≤ τ comparison.
//
// cells reports how many recurrence evaluations were performed — the
// numerator of the band-pruning ratio next to the full width |Qd|+1
// (Stats.CellsComputed / Stats.CellsAvailable in the verify package).
//
// Passing tau = +Inf disables banding: the result is the full column,
// identical to StepDP.
func StepDPBanded(c Costs, qd []Symbol, p Symbol, a []float64, alo, ahi int, tau float64, dst []float64) (lo, hi, cells int) {
	if alo >= ahi {
		return 0, 0, 0 // empty parent band: every child cell is ≥ τ too
	}
	n := len(qd)
	del := c.Del(p)
	inf := math.Inf(1)
	// Parent-sourced region: cell j draws on parent[j] (del) and
	// parent[j-1] (sub), so it spans [alo, min(ahi, n)] — the band grows
	// by at most one over the parent here.
	top := ahi
	if top > n {
		top = n
	}
	prev := inf // child[alo-1], out of band by induction
	for j := alo; j <= top; j++ {
		v := inf
		if j < ahi {
			v = a[j-alo] + del
		}
		if j > alo { // parent[j-1] is in [alo, ahi); qd[j-1] exists
			if d := a[j-1-alo] + c.Sub(p, qd[j-1]); d < v {
				v = d
			}
			if d := prev + c.Ins(qd[j-1]); d < v {
				v = d
			}
		}
		dst[j] = v
		prev = v
		cells++
	}
	end := top + 1
	// Insertion-chain extension: above the parent band the only sub-τ
	// source is child[j-1] + ins(Qd_j), monotone nondecreasing, so stop
	// at the first cell ≥ τ.
	for j := top + 1; j <= n; j++ {
		v := prev + c.Ins(qd[j-1])
		cells++
		if v >= tau {
			break
		}
		dst[j] = v
		prev = v
		end = j + 1
	}
	// Prune the band back to the first/last cell < τ.
	lo, hi = alo, end
	for lo < hi && dst[lo] >= tau {
		lo++
	}
	for hi > lo && dst[hi-1] >= tau {
		hi--
	}
	if lo == hi {
		return 0, 0, cells // normalise the empty band
	}
	return lo, hi, cells
}

package wed

// AllMatches enumerates every subtrajectory match: all 0-based inclusive
// (s, t) with wed(P[s..t], Q) < tau, together with the exact distance. It
// is the exhaustive reference implementation of Definition 3 — O(|P|²·|Q|)
// with early termination — used as the ground-truth oracle in tests and as
// the verification-free lower line in the ablation benchmarks.
func AllMatches(c Costs, q, p []Symbol, tau float64) []SWMatch {
	var out []SWMatch
	n := len(q)
	base := make([]float64, n+1)
	base[0] = 0
	for i, qs := range q {
		base[i+1] = base[i] + c.Ins(qs)
	}
	row := make([]float64, n+1)
	next := make([]float64, n+1)
	for s := 0; s < len(p); s++ {
		copy(row, base)
		for t := s; t < len(p); t++ {
			next = StepDP(c, q, p[t], row, next)
			row, next = next, row
			if row[n] < tau {
				out = append(out, SWMatch{S: s, T: t, WED: row[n]})
			}
			// The column minimum is non-decreasing as t grows (all
			// costs are non-negative), so once it reaches tau no longer
			// end extends to a match for this start.
			if Min(row) >= tau {
				break
			}
		}
	}
	return out
}

package wed

import "sync"

// MemoNetDist wraps a NetDist with a bounded memo table. NetEDR/NetERP
// verification calls Sub (= one hub-label merge-join) for every DP cell;
// across candidates the same vertex pairs recur constantly (shared
// prefixes against the same query symbols), so a small memo removes most
// joins. The table is cleared wholesale when full — trajectory queries
// have strong locality, so the occasional cold restart is cheaper than
// LRU bookkeeping.
//
// MemoNetDist is safe for concurrent use: it is the one piece of shared
// mutable state on the Net* query path, so it synchronizes itself rather
// than pushing a lock out to every caller. Concurrent misses on the same
// pair may both compute the (deterministic) distance; last write wins.
type MemoNetDist struct {
	mu    sync.RWMutex
	inner NetDist
	memo  map[uint64]float64
	limit int
}

// NewMemoNetDist wraps inner with a memo of at most limit entries
// (limit ≤ 0 selects a default of 1<<20).
func NewMemoNetDist(inner NetDist, limit int) *MemoNetDist {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &MemoNetDist{inner: inner, memo: make(map[uint64]float64), limit: limit}
}

// Query implements NetDist.
func (m *MemoNetDist) Query(a, b int32) float64 {
	if a > b {
		a, b = b, a // distances are symmetric on the symmetrised network
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	m.mu.RLock()
	d, ok := m.memo[key]
	m.mu.RUnlock()
	if ok {
		return d
	}
	d = m.inner.Query(a, b)
	m.mu.Lock()
	if len(m.memo) >= m.limit {
		m.memo = make(map[uint64]float64, m.limit/4)
	}
	m.memo[key] = d
	m.mu.Unlock()
	return d
}

// Len returns the current memo size (for tests and diagnostics).
func (m *MemoNetDist) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.memo)
}

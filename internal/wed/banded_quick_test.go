package wed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tableCosts is a randomly generated weighted cost model over a tiny
// alphabet: an arbitrary symmetric substitution table with zero diagonal
// and arbitrary non-negative insertion costs — the full generality the
// WED assumptions (Proposition 1) allow, including the asymmetric-band
// shapes of the Net* models.
type tableCosts struct {
	ins []float64
	sub [][]float64
}

func (t tableCosts) Name() string            { return "table" }
func (t tableCosts) Sub(a, b Symbol) float64 { return t.sub[a][b] }
func (t tableCosts) Ins(a Symbol) float64    { return t.ins[a] }
func (t tableCosts) Del(a Symbol) float64    { return t.ins[a] }

func randTableCosts(rng *rand.Rand, nsym int) tableCosts {
	c := tableCosts{ins: make([]float64, nsym), sub: make([][]float64, nsym)}
	for i := range c.ins {
		// Quantised costs provoke exact ties; zero insertion costs
		// exercise the band's insertion-chain extension.
		c.ins[i] = float64(rng.Intn(5)) / 2
	}
	for i := range c.sub {
		c.sub[i] = make([]float64, nsym)
	}
	for i := 0; i < nsym; i++ {
		for j := i + 1; j < nsym; j++ {
			v := float64(rng.Intn(7)) / 2
			c.sub[i][j], c.sub[j][i] = v, v
		}
	}
	return c
}

// rootBand builds the banded root column (insertion prefix sums < tau),
// mirroring trie.reset.
func rootBand(c Costs, qd []Symbol, tau float64) (band []float64, lo, hi int) {
	sum := 0.0
	for j := 0; j <= len(qd) && sum < tau; j++ {
		band = append(band, sum)
		hi = j + 1
		if j < len(qd) {
			sum += c.Ins(qd[j])
		}
	}
	return band, 0, hi
}

// TestStepDPBandedQuick is the banded-equals-full property test: drive
// StepDPBanded with quick-generated weighted cost tables, random query
// suffixes, random data symbols, and random thresholds τ′ — including
// thresholds small enough to empty the band — and check, cell by cell
// along a whole DP chain, the contract the verifier relies on:
//
//  1. every cell whose full-width value is < τ′ lies inside the band and
//     holds the bit-identical value;
//  2. no banded cell ever underestimates its full-width value (cells ≥ τ′
//     may be overestimated, which the verifier never observes);
//  3. with τ′ = +Inf the band is the whole column and every cell matches
//     StepDP exactly.
func TestStepDPBandedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func(qRaw []uint8, pRaw []uint8, tauRaw uint16) bool {
		nsym := 2 + rng.Intn(4)
		c := randTableCosts(rng, nsym)
		n := len(qRaw)
		if n > 8 {
			n = 8
		}
		qd := make([]Symbol, n)
		for i := 0; i < n; i++ {
			qd[i] = Symbol(int(qRaw[i]) % nsym)
		}
		steps := len(pRaw)
		if steps > 10 {
			steps = 10
		}
		// τ′ in [0, 8): small values empty the band immediately (even the
		// root's 0 cell is pruned when τ′ = 0), large ones keep it full.
		tau := float64(tauRaw%16) / 2

		full := make([]float64, n+1)
		for j := 0; j < n; j++ {
			full[j+1] = full[j] + c.Ins(qd[j])
		}
		band, lo, hi := rootBand(c, qd, tau)
		scratch := make([]float64, n+1)
		for s := 0; s < steps; s++ {
			p := Symbol(int(pRaw[s]) % nsym)
			nf := StepDP(c, qd, p, full, nil)
			nlo, nhi, cells := StepDPBanded(c, qd, p, band, lo, hi, tau, scratch)
			if cells < 0 || cells > n+1 {
				return false
			}
			if nlo > nhi || nlo < 0 || nhi > n+1 {
				return false
			}
			for j := 0; j <= n; j++ {
				inBand := j >= nlo && j < nhi
				switch {
				case nf[j] < tau:
					if !inBand || scratch[j] != nf[j] {
						return false
					}
				case inBand && scratch[j] < nf[j]:
					return false // banded value may never underestimate
				}
			}
			full = nf
			band = append(band[:0], scratch[nlo:nhi]...)
			lo, hi = nlo, nhi
		}

		// τ′ = +Inf: banding disabled, full column, bit-equal everywhere.
		inf := math.Inf(1)
		fullCol := make([]float64, n+1)
		for j := 0; j < n; j++ {
			fullCol[j+1] = fullCol[j] + c.Ins(qd[j])
		}
		for s := 0; s < steps; s++ {
			p := Symbol(int(pRaw[s]) % nsym)
			nf := StepDP(c, qd, p, fullCol, nil)
			nlo, nhi, cells := StepDPBanded(c, qd, p, fullCol, 0, n+1, inf, scratch)
			if nlo != 0 || nhi != n+1 || cells != n+1 {
				return false
			}
			for j := 0; j <= n; j++ {
				if scratch[j] != nf[j] {
					return false
				}
			}
			fullCol = nf
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestStepDPBandedEmptyParent pins the empty-band conventions: an empty
// parent band yields an empty (0, 0) child with zero work, and a τ′ that
// prunes every child cell returns the normalised (0, 0) band rather than
// a degenerate lo == hi > 0 interval.
func TestStepDPBandedEmptyParent(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	c := randTableCosts(rng, 3)
	qd := []Symbol{0, 1, 2}
	dst := make([]float64, len(qd)+1)
	if lo, hi, cells := StepDPBanded(c, qd, 1, nil, 0, 0, 5, dst); lo != 0 || hi != 0 || cells != 0 {
		t.Fatalf("empty parent: got (%d,%d,%d), want (0,0,0)", lo, hi, cells)
	}
	// τ′ = 0 empties every band: even cell values of 0 are pruned
	// (matches the verifier's strict `< τ′` semantics).
	band, lo, hi := rootBand(c, qd, 0)
	if len(band) != 0 || lo != 0 || hi != 0 {
		t.Fatalf("τ′=0 root band not empty: band=%v [%d,%d)", band, lo, hi)
	}
	// A one-cell parent whose every child cell crosses τ′.
	parent := []float64{0.9}
	levLike := tableCosts{ins: []float64{1, 1, 1}, sub: [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}}
	lo, hi, _ = StepDPBanded(levLike, qd, 1, parent, 0, 1, 1, dst)
	if lo != 0 || hi != 0 {
		t.Fatalf("pruned-out child band not normalised: [%d,%d)", lo, hi)
	}
}

package wed_test

import (
	"testing"

	"subtraj/internal/shortestpath"
	"subtraj/internal/testutil"
	"subtraj/internal/wed"
)

type countingDist struct {
	inner *shortestpath.HubLabels
	calls int
}

func (c *countingDist) Query(a, b int32) float64 {
	c.calls++
	return c.inner.Query(a, b)
}

func TestMemoNetDistTransparent(t *testing.T) {
	env := testutil.NewEnv(91, 10, 10)
	cd := &countingDist{inner: env.Hubs}
	memo := wed.NewMemoNetDist(cd, 0)
	n := int32(env.G.NumVertices())
	// Every memoized answer must equal the direct one, symmetric pairs
	// must share entries, and repeats must not call through.
	for a := int32(0); a < n; a += 3 {
		for b := int32(0); b < n; b += 7 {
			want := env.Hubs.Query(a, b)
			if got := memo.Query(a, b); got != want {
				t.Fatalf("memo(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
	callsAfterFirstPass := cd.calls
	for a := int32(0); a < n; a += 3 {
		for b := int32(0); b < n; b += 7 {
			memo.Query(b, a) // swapped: must hit the same entries
		}
	}
	if cd.calls != callsAfterFirstPass {
		t.Fatalf("repeat pass called through %d times", cd.calls-callsAfterFirstPass)
	}
}

func TestMemoNetDistEviction(t *testing.T) {
	env := testutil.NewEnv(92, 10, 10)
	memo := wed.NewMemoNetDist(env.Hubs, 8)
	n := int32(env.G.NumVertices())
	for a := int32(0); a < n && a < 20; a++ {
		memo.Query(0, a)
	}
	if memo.Len() > 8 {
		t.Fatalf("memo grew past its limit: %d", memo.Len())
	}
}

func TestNetModelsWithMemo(t *testing.T) {
	// NetEDR over a memoized oracle must agree with NetEDR over the raw
	// oracle on every Sub it is asked for.
	env := testutil.NewEnv(93, 15, 12)
	raw := wed.NewNetEDR(env.Und, env.Hubs, env.G.MedianEdgeWeight())
	memod := wed.NewNetEDR(env.Und, wed.NewMemoNetDist(env.Hubs, 0), env.G.MedianEdgeWeight())
	var m testutil.Model
	for _, mm := range env.Models() {
		if mm.Name == "NetEDR" {
			m = mm
		}
	}
	syms := env.RandomString(m, 50)
	for i := 0; i < len(syms); i++ {
		for j := i; j < len(syms) && j < i+10; j++ {
			if raw.Sub(syms[i], syms[j]) != memod.Sub(syms[i], syms[j]) {
				t.Fatalf("memoized Sub differs at (%d,%d)", syms[i], syms[j])
			}
		}
	}
}

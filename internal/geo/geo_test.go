package geo_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subtraj/internal/geo"
)

func TestDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if !finite(ax, ay, bx, by) {
			return true
		}
		a := geo.Point{X: ax, Y: ay}
		b := geo.Point{X: bx, Y: by}
		d := a.Dist(b)
		if d < 0 || d != b.Dist(a) {
			return false
		}
		// Dist2 consistency (allow float slack for huge magnitudes).
		d2 := a.Dist2(b)
		return math.Abs(d*d-d2) <= 1e-9*(1+d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func finite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
			return false
		}
	}
	return true
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := geo.Point{X: rng.NormFloat64() * 100, Y: rng.NormFloat64() * 100}
		b := geo.Point{X: rng.NormFloat64() * 100, Y: rng.NormFloat64() * 100}
		c := geo.Point{X: rng.NormFloat64() * 100, Y: rng.NormFloat64() * 100}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := geo.Point{X: 3, Y: 4}
	b := geo.Point{X: 1, Y: 2}
	if got := a.Add(b); got != (geo.Point{X: 4, Y: 6}) {
		t.Errorf("Add: %+v", got)
	}
	if got := a.Sub(b); got != (geo.Point{X: 2, Y: 2}) {
		t.Errorf("Sub: %+v", got)
	}
	if got := a.Scale(2); got != (geo.Point{X: 6, Y: 8}) {
		t.Errorf("Scale: %+v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm: %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0): %+v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1): %+v", got)
	}
}

func TestRect(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 5}, {X: -2, Y: 3}, {X: 4, Y: -1}}
	r := geo.Bound(pts)
	if r.Min.X != -2 || r.Min.Y != -1 || r.Max.X != 4 || r.Max.Y != 5 {
		t.Fatalf("bound %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("bound does not contain %+v", p)
		}
	}
	if r.Contains(geo.Point{X: 10, Y: 0}) {
		t.Fatal("contains external point")
	}
	if d := geo.Dist2ToRect(geo.Point{X: 0, Y: 0}, r); d != 0 {
		t.Fatalf("inside point dist2 %v", d)
	}
	if d := geo.Dist2ToRect(geo.Point{X: 5, Y: 6}, r); d != 2 {
		t.Fatalf("corner dist2 %v, want 2", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Bound(nil) must panic")
		}
	}()
	geo.Bound(nil)
}

func TestSegmentDist(t *testing.T) {
	a := geo.Point{X: 0, Y: 0}
	b := geo.Point{X: 10, Y: 0}
	if d, tt := geo.SegmentDist(geo.Point{X: 5, Y: 3}, a, b); d != 3 || tt != 0.5 {
		t.Errorf("mid: d=%v t=%v", d, tt)
	}
	if d, tt := geo.SegmentDist(geo.Point{X: -4, Y: 3}, a, b); d != 5 || tt != 0 {
		t.Errorf("before: d=%v t=%v", d, tt)
	}
	if d, tt := geo.SegmentDist(geo.Point{X: 13, Y: 4}, a, b); d != 5 || tt != 1 {
		t.Errorf("after: d=%v t=%v", d, tt)
	}
	// Degenerate segment.
	if d, _ := geo.SegmentDist(geo.Point{X: 3, Y: 4}, a, a); d != 5 {
		t.Errorf("degenerate: d=%v", d)
	}
}

// Package geo provides small 2-D geometry primitives used by the road
// network model, the spatial indexes, and the coordinate-aware similarity
// functions (EDR, ERP, DTW, ...).
//
// Coordinates are abstract planar coordinates; the synthetic workloads use
// metres, so Euclidean distance is the ground distance everywhere.
package geo

import "math"

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only callers (kd-tree search, HMM emission).
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p seen as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp linearly interpolates between p and q; t=0 gives p, t=1 gives q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	Min, Max Point
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand grows the rectangle to include p.
func (r Rect) Expand(p Point) Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// Bound returns the bounding rectangle of the points. It panics on an empty
// slice, because an empty bound has no meaningful zero value.
func Bound(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: Bound of empty point set")
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r = r.Expand(p)
	}
	return r
}

// Dist2ToRect returns the squared distance from p to the rectangle (zero if
// p is inside). Used for kd-tree pruning.
func Dist2ToRect(p Point, r Rect) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// SegmentDist returns the distance from point p to segment ab, and the
// parameter t in [0,1] of the closest point on the segment.
func SegmentDist(p, a, b Point) (dist, t float64) {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a), 0
	}
	t = ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Lerp(b, t)), t
}

package wal

import (
	"math"
	"reflect"
	"testing"

	"subtraj/internal/traj"
)

// FuzzReplayWAL throws arbitrary bytes at the replay scanner. Invariants:
// never panic, never allocate unboundedly, and — the durability core —
// re-replaying the reported valid prefix must reproduce exactly the same
// records with no truncation (the prefix a recovery truncates down to
// must itself be a stable, fully valid log).
func FuzzReplayWAL(f *testing.F) {
	// Seed with a well-formed log...
	mf := newMemFile()
	w, err := NewWriter(mf, 2, Options{Policy: SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	w.Append([]traj.Trajectory{{Path: []traj.Symbol{1, 2, 3}, Times: []float64{0, 1.5, 3}}})
	w.Append([]traj.Trajectory{{Path: []traj.Symbol{9}}, {Path: []traj.Symbol{4, 5}, Times: []float64{7, 8}}})
	valid := append([]byte(nil), mf.data...)
	f.Add(valid)
	// ...its torn and corrupted variants...
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	// ...and degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:headerSize])

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		info, err := ReplayBytes(data, func(r Record) error {
			if len(r.Path) > len(data) || len(r.Times)*8 > len(data) {
				t.Fatalf("decoded record larger than input: %d path, %d times", len(r.Path), len(r.Times))
			}
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			return // bad header: no prefix contract to check
		}
		if info.GoodBytes > int64(len(data)) || info.GoodBytes < int64(headerSize) {
			t.Fatalf("GoodBytes %d out of range [%d, %d]", info.GoodBytes, headerSize, len(data))
		}
		if info.Truncated != (info.GoodBytes < info.FileBytes) {
			t.Fatalf("Truncated flag inconsistent: %+v", info)
		}
		if info.EndGen != info.BaseGen+uint64(info.Records) {
			t.Fatalf("generation accounting broken: %+v", info)
		}
		// Determinism + prefix stability: replaying the valid prefix
		// yields the identical records, cleanly.
		var again []Record
		info2, err := ReplayBytes(data[:info.GoodBytes], func(r Record) error {
			again = append(again, r)
			return nil
		})
		if err != nil {
			t.Fatalf("valid prefix failed to replay: %v", err)
		}
		if info2.Truncated || info2.Records != info.Records || info2.EndGen != info.EndGen {
			t.Fatalf("prefix replay diverged: %+v vs %+v", info2, info)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix replay record count diverged")
		}
		for i := range recs {
			if recs[i].Gen != again[i].Gen || !reflect.DeepEqual(recs[i].Path, again[i].Path) || !timesBitEqual(recs[i].Times, again[i].Times) {
				t.Fatalf("prefix replay record %d diverged", i)
			}
		}
	})
}

func timesBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

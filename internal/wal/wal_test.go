package wal

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"subtraj/internal/traj"
)

// memFile is an in-memory File with optional injected faults, the test
// double behind the wal.File seam.
type memFile struct {
	data []byte
	// tornAfter, when ≥ 0, makes the next Write persist only tornAfter
	// bytes and return an error (a torn write: power loss mid-write).
	tornAfter int
	// shortAfter, when ≥ 0, makes the next Write persist shortAfter
	// bytes and return n < len(p) with no error (a short write).
	shortAfter int
	// syncErr, when set, is returned by the next Sync (and the fault
	// then clears, like a transient EIO).
	syncErr error
	// truncErr, when set, fails every Truncate.
	truncErr error
	syncs    int
}

func newMemFile() *memFile { return &memFile{tornAfter: -1, shortAfter: -1} }

func (m *memFile) Write(p []byte) (int, error) {
	if m.tornAfter >= 0 {
		n := min(m.tornAfter, len(p))
		m.data = append(m.data, p[:n]...)
		m.tornAfter = -1
		return n, errors.New("injected torn write")
	}
	if m.shortAfter >= 0 {
		n := min(m.shortAfter, len(p))
		m.data = append(m.data, p[:n]...)
		m.shortAfter = -1
		return n, nil
	}
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memFile) Sync() error {
	if err := m.syncErr; err != nil {
		m.syncErr = nil
		return err
	}
	m.syncs++
	return nil
}

func (m *memFile) Truncate(size int64) error {
	if m.truncErr != nil {
		return m.truncErr
	}
	if size < int64(len(m.data)) {
		m.data = m.data[:size]
	}
	return nil
}

func (m *memFile) Close() error { return nil }

func tr(path ...traj.Symbol) traj.Trajectory {
	times := make([]float64, len(path))
	for i := range times {
		times[i] = float64(100*i) + 0.5
	}
	return traj.Trajectory{Path: path, Times: times}
}

func collect(t *testing.T, data []byte) ([]Record, ReplayInfo) {
	t.Helper()
	var recs []Record
	info, err := ReplayBytes(data, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayBytes: %v", err)
	}
	return recs, info
}

func TestRoundTrip(t *testing.T) {
	f := newMemFile()
	w, err := NewWriter(f, 7, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := []traj.Trajectory{tr(1, 2, 3), tr(9), {Path: []traj.Symbol{4, 5}, Times: nil}}
	for _, x := range want[:2] {
		if err := w.Append([]traj.Trajectory{x}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(want[2:]); err != nil {
		t.Fatal(err)
	}
	recs, info := collect(t, f.data)
	if info.Truncated || info.Records != 3 || info.BaseGen != 7 || info.EndGen != 10 {
		t.Fatalf("bad info: %+v", info)
	}
	if info.GoodBytes != int64(len(f.data)) {
		t.Fatalf("GoodBytes %d != file size %d", info.GoodBytes, len(f.data))
	}
	for i, r := range recs {
		if r.Gen != uint64(8+i) {
			t.Errorf("record %d gen = %d, want %d", i, r.Gen, 8+i)
		}
		if !reflect.DeepEqual(r.Path, want[i].Path) {
			t.Errorf("record %d path = %v, want %v", i, r.Path, want[i].Path)
		}
		if len(r.Times) != len(want[i].Times) {
			t.Errorf("record %d times = %v, want %v", i, r.Times, want[i].Times)
		}
		for j := range r.Times {
			if math.Float64bits(r.Times[j]) != math.Float64bits(want[i].Times[j]) {
				t.Errorf("record %d time %d not bit-equal", i, j)
			}
		}
	}
	if f.syncs < 4 { // header + one per append
		t.Errorf("SyncAlways issued %d fsyncs, want ≥ 4", f.syncs)
	}
	st := w.StatsSnapshot()
	if st.Gen != 10 || st.Records != 3 || st.Bytes != int64(len(f.data)) {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestSpecialFloatTimesRoundTrip(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncNever})
	in := traj.Trajectory{Path: []traj.Symbol{1}, Times: []float64{math.Inf(1), math.NaN(), -0.0}}
	if err := w.Append([]traj.Trajectory{in}); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, f.data)
	for j, v := range in.Times {
		if math.Float64bits(recs[0].Times[j]) != math.Float64bits(v) {
			t.Errorf("time %d not bit-preserved", j)
		}
	}
}

func TestTornWriteTruncatesTail(t *testing.T) {
	for cut := 0; cut < 20; cut++ {
		f := newMemFile()
		w, _ := NewWriter(f, 0, Options{Policy: SyncNever})
		if err := w.Append([]traj.Trajectory{tr(1, 2, 3)}); err != nil {
			t.Fatal(err)
		}
		good := len(f.data)
		f.tornAfter = cut
		f.truncErr = errors.New("no truncate either") // simulate full power loss
		if err := w.Append([]traj.Trajectory{tr(4, 5, 6)}); err == nil {
			t.Fatal("torn write not reported")
		}
		recs, info := collect(t, f.data)
		if len(recs) != 1 || recs[0].Gen != 1 {
			t.Fatalf("cut %d: replay returned %d records", cut, len(recs))
		}
		if cut > 0 && (!info.Truncated || info.GoodBytes != int64(good)) {
			t.Fatalf("cut %d: tail not reported torn: %+v", cut, info)
		}
	}
}

func TestShortWriteRollsBack(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncNever})
	if err := w.Append([]traj.Trajectory{tr(1)}); err != nil {
		t.Fatal(err)
	}
	good := len(f.data)
	f.shortAfter = 5
	if err := w.Append([]traj.Trajectory{tr(2)}); err == nil {
		t.Fatal("short write not reported")
	}
	// Truncate succeeded, so the file is rolled back and the writer
	// still works.
	if len(f.data) != good {
		t.Fatalf("file not rolled back: %d != %d", len(f.data), good)
	}
	if err := w.Append([]traj.Trajectory{tr(3)}); err != nil {
		t.Fatalf("writer should have recovered after rollback: %v", err)
	}
	recs, info := collect(t, f.data)
	if info.Truncated || len(recs) != 2 {
		t.Fatalf("replay after rollback: %d records, %+v", len(recs), info)
	}
	if recs[1].Path[0] != 3 || recs[1].Gen != 2 {
		t.Fatalf("generation reused wrongly: %+v", recs[1])
	}
}

func TestFsyncFailureBreaksWriter(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncAlways})
	f.syncErr = errors.New("injected EIO")
	f.truncErr = errors.New("device gone")
	if err := w.Append([]traj.Trajectory{tr(1)}); err == nil {
		t.Fatal("fsync failure not reported")
	}
	if err := w.Append([]traj.Trajectory{tr(2)}); err == nil {
		t.Fatal("writer must stay broken after a failed fsync + failed rollback")
	}
	if g := w.Gen(); g != 0 {
		t.Fatalf("failed append acknowledged: gen = %d", g)
	}
}

func TestFsyncFailureWithRollbackRecovers(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncAlways})
	f.syncErr = errors.New("injected EIO")
	if err := w.Append([]traj.Trajectory{tr(1)}); err == nil {
		t.Fatal("fsync failure not reported")
	}
	// Rollback truncate succeeded: the frame is gone and the writer may
	// continue; nothing was acknowledged.
	if err := w.Append([]traj.Trajectory{tr(2)}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	recs, _ := collect(t, f.data)
	if len(recs) != 1 || recs[0].Path[0] != 2 || recs[0].Gen != 1 {
		t.Fatalf("bad surviving records: %+v", recs)
	}
}

func TestBatchFrameIsAtomic(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncNever})
	if err := w.Append([]traj.Trajectory{tr(1), tr(2), tr(3)}); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), f.data...)
	// Cut the batch frame anywhere: replay must deliver zero of its
	// records, never a partial batch.
	for cut := headerSize + 1; cut < len(full); cut++ {
		recs, info := collect(t, full[:cut])
		if len(recs) != 0 {
			t.Fatalf("cut %d: partial batch visible (%d records)", cut, len(recs))
		}
		if !info.Truncated {
			t.Fatalf("cut %d: torn batch not reported", cut)
		}
	}
	recs, _ := collect(t, full)
	if len(recs) != 3 {
		t.Fatalf("full batch: %d records", len(recs))
	}
}

func TestEveryByteCorruption(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncNever})
	var want []traj.Trajectory
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		x := tr(traj.Symbol(rng.Intn(1000)), traj.Symbol(rng.Intn(1000)), traj.Symbol(i))
		want = append(want, x)
		if err := w.Append([]traj.Trajectory{x}); err != nil {
			t.Fatal(err)
		}
	}
	orig := append([]byte(nil), f.data...)
	var origRecs []Record
	if origRecs, _ = collect(t, orig); len(origRecs) != 8 {
		t.Fatalf("baseline: %d records", len(origRecs))
	}

	// Flip every byte in turn. Replay must never panic and must only
	// ever return a prefix of the original record sequence (bit-equal),
	// or fail the header check — silent divergence is the one forbidden
	// outcome.
	for pos := 0; pos < len(orig); pos++ {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0xA5
		var recs []Record
		info, err := ReplayBytes(data, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			if pos >= headerSize {
				t.Fatalf("pos %d: body corruption must truncate, not error: %v", pos, err)
			}
			continue // header corruption fails loudly — allowed
		}
		if len(recs) > len(origRecs) {
			t.Fatalf("pos %d: more records than written", pos)
		}
		for i, r := range recs {
			o := origRecs[i]
			if r.Gen != o.Gen && pos >= headerSize {
				t.Fatalf("pos %d: record %d gen diverged", pos, i)
			}
			if pos < headerSize {
				continue // baseGen flips renumber but cannot pass frame 0's check
			}
			if !reflect.DeepEqual(r.Path, o.Path) {
				t.Fatalf("pos %d: record %d path diverged: %v vs %v", pos, i, r.Path, o.Path)
			}
			for j := range r.Times {
				if math.Float64bits(r.Times[j]) != math.Float64bits(o.Times[j]) {
					t.Fatalf("pos %d: record %d time %d diverged", pos, i, j)
				}
			}
		}
		if pos >= headerSize && len(recs) == len(origRecs) && !info.Truncated {
			t.Fatalf("pos %d: corruption invisible to replay", pos)
		}
	}
}

func TestRotate(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := w.Append([]traj.Trajectory{tr(traj.Symbol(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]traj.Trajectory{tr(99)}); err != nil {
		t.Fatal(err)
	}
	recs, info := collect(t, f.data)
	if info.BaseGen != 5 || len(recs) != 1 || recs[0].Gen != 6 || recs[0].Path[0] != 99 {
		t.Fatalf("post-rotate log wrong: %+v %+v", info, recs)
	}
}

// TestRotateOnDiskFile rotates a real *os.File. Unlike the in-memory
// double, an os.File keeps its write offset after Truncate(0) — without
// the explicit seek the post-rotate header would land past a zero-filled
// gap and the log would be unreadable (regression test).
func TestRotateOnDiskFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, 0, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]traj.Trajectory{tr(traj.Symbol(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]traj.Trajectory{tr(42)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	info, err := ReplayFile(path, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseGen != 3 || info.Truncated || len(recs) != 1 || recs[0].Gen != 4 || recs[0].Path[0] != 42 {
		t.Fatalf("rotated on-disk log wrong: %+v %+v", info, recs)
	}
}

func TestOpenOrCreateLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")

	w, info, err := OpenOrCreate(path, 3, Options{Policy: SyncAlways}, func(Record) error {
		t.Fatal("fresh log replayed records")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseGen != 3 || info.Records != 0 {
		t.Fatalf("fresh info: %+v", info)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]traj.Trajectory{tr(traj.Symbol(10 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn tail, then reopen: the valid prefix replays, the
	// tail is physically truncated, and appending continues.
	full, _ := os.ReadFile(path)
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed []Record
	w, info, err = OpenOrCreate(path, 3, Options{Policy: SyncAlways}, func(r Record) error {
		replayed = append(replayed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || len(replayed) != 3 || info.EndGen != 6 {
		t.Fatalf("reopen after tear: %+v, %d records", info, len(replayed))
	}
	if st, _ := os.Stat(path); st.Size() != info.GoodBytes {
		t.Fatalf("torn tail not truncated: %d != %d", st.Size(), info.GoodBytes)
	}
	if err := w.Append([]traj.Trajectory{tr(77)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	replayed = replayed[:0]
	_, info, err = OpenOrCreate(path, 3, Options{Policy: SyncAlways}, func(r Record) error {
		replayed = append(replayed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated || len(replayed) != 4 || replayed[3].Path[0] != 77 || replayed[3].Gen != 7 {
		t.Fatalf("final replay: %+v, %+v", info, replayed)
	}
}

func TestOpenOrCreateTornHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	if err := os.WriteFile(path, []byte(magic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	w, info, err := OpenOrCreate(path, 9, Options{}, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("torn header must recreate: %v", err)
	}
	if info.BaseGen != 9 {
		t.Fatalf("recreated baseGen = %d", info.BaseGen)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Garbage that is not a header prefix must fail loudly instead.
	if err := os.WriteFile(path, []byte("GARBAGE-NOT-A-WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenOrCreate(path, 9, Options{}, func(Record) error { return nil }); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("garbage file: err = %v, want ErrBadHeader", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncInterval, Interval: time.Hour})
	headerSyncs := f.syncs
	for i := 0; i < 10; i++ {
		if err := w.Append([]traj.Trajectory{tr(traj.Symbol(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if f.syncs != headerSyncs {
		t.Fatalf("interval policy fsynced %d times inside the interval", f.syncs-headerSyncs)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.syncs != headerSyncs+1 {
		t.Fatalf("explicit Sync did not fsync")
	}
	if err := w.Sync(); err != nil { // clean: no-op
		t.Fatal(err)
	}
	if f.syncs != headerSyncs+1 {
		t.Fatalf("clean Sync fsynced anyway")
	}
}

func TestOnFsyncHook(t *testing.T) {
	f := newMemFile()
	var calls int
	w, err := NewWriter(f, 0, Options{Policy: SyncAlways, OnFsync: func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative fsync duration")
		}
		calls++
	}})
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]traj.Trajectory{tr(1)})
	if calls < 2 { // header + append
		t.Fatalf("OnFsync called %d times", calls)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	f := newMemFile()
	w, _ := NewWriter(f, 0, Options{Policy: SyncNever})
	big := traj.Trajectory{Path: make([]traj.Symbol, maxFrameBytes/2)}
	if err := w.Append([]traj.Trajectory{big, big, big}); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// The writer must remain usable — nothing was written.
	if err := w.Append([]traj.Trajectory{tr(1)}); err != nil {
		t.Fatal(err)
	}
	recs, info := collect(t, f.data)
	if info.Truncated || len(recs) != 1 {
		t.Fatalf("log damaged by rejected frame: %+v", info)
	}
}

// Package wal implements the durable ingest log: a versioned, CRC-32C-
// framed, length-prefixed append-only file holding one record per appended
// trajectory (path symbols, per-vertex timestamps, and the durable
// generation the append produced). The server logs every Append here
// *before* applying it to the in-memory overlay, so a crash loses at most
// the un-fsynced suffix — never an acknowledged write.
//
// File layout:
//
//	header  = magic "SBTJWAL1" | u32 version | u64 baseGen      (20 bytes)
//	frame   = u32 payloadLen | u32 crc32c(payload) | payload
//	payload = u64 prevGen | uvarint count | count × record
//	record  = uvarint len(Path) | len(Path) × uvarint(symbol)
//	        | uvarint len(Times) | len(Times) × u64 float bits
//
// All fixed-width integers are little-endian. One frame carries one
// Append or one whole AppendBatch — the frame is the atomicity unit, so
// a batch is replayed all-or-nothing. prevGen is the writer's durable
// generation before the frame; replay verifies it matches the running
// generation, which makes frames self-ordering (a frame replayed out of
// sequence, or a log whose header was corrupted, fails closed instead of
// silently misnumbering trajectories).
//
// Replay validates every frame (length bounds, checksum, exact payload
// consumption, generation continuity) and stops cleanly at the first
// invalid byte: the valid prefix is applied, the tail is reported (and
// truncated by OpenOrCreate) — torn writes degrade to lost-suffix, never
// to silent corruption.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"subtraj/internal/traj"
)

const (
	magic      = "SBTJWAL1"
	version    = 1
	headerSize = len(magic) + 4 + 8
	frameHead  = 4 + 4 // payloadLen + crc32c

	// maxFrameBytes bounds a single frame's payload. A frame larger than
	// this is invalid by construction (Append rejects it), so replay can
	// treat an oversized length prefix as corruption instead of
	// attempting a multi-gigabyte allocation from a torn length field.
	maxFrameBytes = 64 << 20
)

// castagnoli is the CRC-32C polynomial table; SSE4.2 hardware CRC on
// amd64, so framing costs ~1 cycle/byte.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when Append calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every frame. Required for the exact
	// acked-prefix crash guarantee: an acknowledged append is on disk.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when at least Options.Interval has elapsed
	// since the last fsync (checked on each Append; Sync flushes the
	// remainder at shutdown). A crash loses at most one interval.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache. A crash loses the
	// unflushed suffix; replay still stops cleanly at the torn edge.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
	}
}

// Record is one replayed trajectory append. Gen is the durable generation
// the append produced: the base workload is generation ≤ baseGen, the
// first logged append is baseGen+1, and so on — replay is idempotent
// because a consumer holding generation G simply skips records with
// Gen ≤ G (the crash window between writing a checkpoint and truncating
// the log re-delivers old records; their generations identify them).
type Record struct {
	Gen   uint64
	Path  []traj.Symbol
	Times []float64
}

// File is the seam between the writer and the filesystem. Production
// passes *os.File; tests inject fault models (torn writes, short writes,
// failing fsync) to prove the recovery guarantees.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Options configures a Writer.
type Options struct {
	Policy SyncPolicy
	// Interval is the SyncInterval fsync cadence (default 100ms).
	Interval time.Duration
	// OnFsync, when set, observes each fsync's wall duration (the
	// server bridges it into the wal_fsync_seconds histogram).
	OnFsync func(time.Duration)
}

func (o Options) interval() time.Duration {
	if o.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return o.Interval
}

// Stats is a point-in-time snapshot of a Writer.
type Stats struct {
	BaseGen uint64 // generation the log starts after (checkpoint barrier)
	Gen     uint64 // durable generation after the last logged frame
	Bytes   int64  // committed log size, header included
	Records int64  // records logged since BaseGen
	Syncs   int64  // fsyncs issued
}

// Writer appends framed record groups to a log file. Methods are safe for
// concurrent use, though the server serializes Appends under its write
// lock anyway. After any write or fsync failure whose rollback also
// fails, the writer is broken: every later Append returns the original
// error, because the on-disk tail state is unknown and acknowledging
// more writes on top of it could reorder or alias generations.
type Writer struct {
	mu       sync.Mutex
	f        File      // guarded by mu (the handle is fixed; its write offset is not)
	baseGen  uint64    // guarded by mu (rewritten by Rotate)
	gen      uint64    // guarded by mu
	off      int64     // guarded by mu
	records  int64     // guarded by mu
	syncs    int64     // guarded by mu
	dirty    bool      // guarded by mu; frames written since the last fsync
	lastSync time.Time // guarded by mu
	broken   error     // guarded by mu
	opts     Options   // immutable after construction
	buf      []byte    // guarded by mu; frame assembly buffer, reused across Appends
}

// Create creates (or truncates) a log at path whose records continue from
// baseGen, writing and fsyncing the header before returning.
func Create(path string, baseGen uint64, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	w, err := NewWriter(f, baseGen, opts)
	if err != nil {
		_ = f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// NewWriter starts a fresh log on f (assumed empty), writing and fsyncing
// the header. It is the injection point for fault-model Files in tests.
//
//subtrajlint:locked mu — w is private to this constructor; nothing else can see it yet
func NewWriter(f File, baseGen uint64, opts Options) (*Writer, error) {
	w := &Writer{f: f, baseGen: baseGen, gen: baseGen, opts: opts, lastSync: time.Now()}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	binary.LittleEndian.PutUint64(hdr[len(magic)+4:], baseGen)
	if _, err := f.Write(hdr); err != nil {
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	if err := w.fsync(); err != nil {
		return nil, fmt.Errorf("wal: sync header: %w", err)
	}
	w.off = int64(headerSize)
	return w, nil
}

// resume adopts an already-validated log: f positioned at off, holding
// records records ending at generation gen.
func resume(f File, baseGen, gen uint64, off, records int64, opts Options) *Writer {
	return &Writer{f: f, baseGen: baseGen, gen: gen, off: off, records: records, opts: opts, lastSync: time.Now()}
}

// Policy returns the writer's sync policy (fixed at construction).
func (w *Writer) Policy() SyncPolicy { return w.opts.Policy }

// Gen returns the durable generation after the last logged frame.
func (w *Writer) Gen() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// StatsSnapshot returns current writer statistics.
func (w *Writer) StatsSnapshot() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{BaseGen: w.baseGen, Gen: w.gen, Bytes: w.off, Records: w.records, Syncs: w.syncs}
}

// Append logs ts as one atomic frame and makes it durable per the sync
// policy. On success the writer's generation advances by len(ts). On
// failure nothing is acknowledged: the writer rolls the file back to the
// pre-frame offset (or breaks permanently if it cannot).
func (w *Writer) Append(ts []traj.Trajectory) error {
	if len(ts) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("wal: writer broken by earlier failure: %w", w.broken)
	}

	payload := w.buf[:0]
	payload = binary.LittleEndian.AppendUint64(payload, w.gen)
	payload = binary.AppendUvarint(payload, uint64(len(ts)))
	for i := range ts {
		payload = appendRecord(payload, &ts[i])
	}
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("wal: frame payload %d bytes exceeds limit %d; split the batch", len(payload), maxFrameBytes)
	}
	// Assemble the whole frame and issue it as one Write so a torn write
	// can only produce a short frame, which replay detects.
	frame := make([]byte, 0, frameHead+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	w.buf = payload[:0]

	if n, err := w.f.Write(frame); err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		w.rollback(err)
		return fmt.Errorf("wal: append: %w", err)
	}
	w.off += int64(len(frame))
	w.dirty = true
	w.gen += uint64(len(ts))
	w.records += int64(len(ts))

	switch w.opts.Policy {
	case SyncAlways:
		if err := w.fsync(); err != nil {
			// The kernel may or may not have persisted the frame; after a
			// failed fsync the dirty-page state is unknowable (the error
			// may even have been dropped on those pages). Un-acknowledge
			// the frame and break the writer.
			w.gen -= uint64(len(ts))
			w.records -= int64(len(ts))
			w.off -= int64(len(frame))
			w.rollback(err)
			return fmt.Errorf("wal: fsync: %w", err)
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.interval() {
			if err := w.fsync(); err != nil {
				w.broken = err
				return fmt.Errorf("wal: fsync: %w", err)
			}
		}
	}
	return nil
}

// rollback restores the file to the last committed offset after a failed
// write; if the filesystem refuses even that, the writer is broken.
//
//subtrajlint:locked mu — called only from Append and Rotate with w.mu held
func (w *Writer) rollback(cause error) {
	if err := w.f.Truncate(w.off); err != nil {
		w.broken = cause
		return
	}
	if err := w.seekTo(w.off); err != nil {
		w.broken = cause
	}
}

// seekTo repositions the write offset after a truncation. An os.File
// keeps its offset past the truncation point — a later write would leave
// a zero-filled gap that replay reads as a torn frame — so files that
// can seek must. In-memory doubles that append at their own length are
// already positioned correctly.
//
//subtrajlint:locked mu — called with w.mu held
func (w *Writer) seekTo(off int64) error {
	if sk, ok := w.f.(io.Seeker); ok {
		_, err := sk.Seek(off, io.SeekStart)
		return err
	}
	return nil
}

// fsync flushes to stable storage, timing the call. Callers hold w.mu.
//
//subtrajlint:locked mu — callers hold w.mu
func (w *Writer) fsync() error {
	start := time.Now()
	err := w.f.Sync()
	d := time.Since(start)
	if w.opts.OnFsync != nil {
		w.opts.OnFsync(d)
	}
	if err != nil {
		return err
	}
	w.syncs++
	w.dirty = false
	w.lastSync = start
	return nil
}

// Sync flushes any unsynced frames (SyncInterval shutdown, checkpoint
// barrier). A no-op when nothing is dirty.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("wal: writer broken by earlier failure: %w", w.broken)
	}
	if !w.dirty {
		return nil
	}
	if err := w.fsync(); err != nil {
		w.broken = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Rotate discards every logged frame and restarts the log at newBaseGen —
// the checkpoint barrier. The caller must have durably persisted all
// state up to newBaseGen first (snapshot written, fsynced, renamed); the
// crash window before Rotate merely re-delivers records with
// Gen ≤ newBaseGen at replay, which consumers skip by generation.
func (w *Writer) Rotate(newBaseGen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("wal: writer broken by earlier failure: %w", w.broken)
	}
	if err := w.f.Truncate(0); err != nil {
		w.broken = err
		return fmt.Errorf("wal: rotate truncate: %w", err)
	}
	if err := w.seekTo(0); err != nil {
		w.broken = err
		return fmt.Errorf("wal: rotate seek: %w", err)
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	binary.LittleEndian.PutUint64(hdr[len(magic)+4:], newBaseGen)
	if n, err := w.f.Write(hdr); err != nil || n != len(hdr) {
		if err == nil {
			err = io.ErrShortWrite
		}
		w.broken = err
		return fmt.Errorf("wal: rotate header: %w", err)
	}
	if err := w.fsync(); err != nil {
		w.broken = err
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	w.baseGen, w.gen = newBaseGen, newBaseGen
	w.off, w.records = int64(headerSize), 0
	return nil
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var serr error
	if w.dirty && w.broken == nil {
		serr = w.fsync()
	}
	cerr := w.f.Close()
	if serr != nil {
		return fmt.Errorf("wal: close sync: %w", serr)
	}
	return cerr
}

// appendRecord encodes one trajectory (without its generation: the frame
// header's prevGen plus position numbers the records).
func appendRecord(b []byte, t *traj.Trajectory) []byte {
	b = binary.AppendUvarint(b, uint64(len(t.Path)))
	for _, s := range t.Path {
		b = binary.AppendUvarint(b, uint64(uint32(s)))
	}
	b = binary.AppendUvarint(b, uint64(len(t.Times)))
	for _, v := range t.Times {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// ReplayInfo reports what a replay scan found.
type ReplayInfo struct {
	BaseGen   uint64 // generation barrier from the header
	EndGen    uint64 // generation after the last valid frame
	Records   int64  // records in the valid prefix
	GoodBytes int64  // byte length of the valid prefix (header included)
	FileBytes int64  // total file length scanned
	Truncated bool   // an invalid/torn tail follows the valid prefix
	Reason    string // what stopped the scan ("" on a clean end-of-log)
}

// ErrBadHeader means the log's header is unreadable — nothing after it
// can be trusted, so recovery must fail loudly rather than truncate.
var ErrBadHeader = errors.New("wal: bad log header")

// ReplayBytes scans an in-memory log image, calling apply for each record
// in each valid frame, in order. It stops at the first invalid frame and
// reports (not repairs) the torn tail. An apply error aborts the scan and
// is returned wrapped; header corruption returns ErrBadHeader.
func ReplayBytes(data []byte, apply func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	info.FileBytes = int64(len(data))
	if len(data) < headerSize || string(data[:len(magic)]) != magic {
		return info, fmt.Errorf("%w: missing or short magic", ErrBadHeader)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != version {
		return info, fmt.Errorf("%w: version %d (want %d)", ErrBadHeader, v, version)
	}
	info.BaseGen = binary.LittleEndian.Uint64(data[len(magic)+4:])
	info.EndGen = info.BaseGen
	info.GoodBytes = int64(headerSize)

	off := headerSize
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHead {
			info.Truncated, info.Reason = true, "torn frame header"
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen > maxFrameBytes {
			info.Truncated, info.Reason = true, fmt.Sprintf("frame length %d exceeds limit", plen)
			break
		}
		if len(rest) < frameHead+plen {
			info.Truncated, info.Reason = true, "torn frame payload"
			break
		}
		payload := rest[frameHead : frameHead+plen]
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(rest[4:]); got != want {
			info.Truncated, info.Reason = true, "frame checksum mismatch"
			break
		}
		recs, err := decodeFrame(payload, info.EndGen)
		if err != nil {
			info.Truncated, info.Reason = true, err.Error()
			break
		}
		for _, r := range recs {
			if err := apply(r); err != nil {
				return info, fmt.Errorf("wal: replay apply (gen %d): %w", r.Gen, err)
			}
		}
		info.Records += int64(len(recs))
		info.EndGen += uint64(len(recs))
		off += frameHead + plen
		info.GoodBytes = int64(off)
	}
	return info, nil
}

// ReplayFile is ReplayBytes over the file at path.
func ReplayFile(path string, apply func(Record) error) (ReplayInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ReplayInfo{}, err
	}
	return ReplayBytes(data, apply)
}

// decodeFrame validates and decodes one checksummed payload whose records
// must continue from prevGen. Every decode error fails the whole frame.
func decodeFrame(payload []byte, prevGen uint64) ([]Record, error) {
	if len(payload) < 8 {
		return nil, errors.New("frame payload shorter than generation")
	}
	if g := binary.LittleEndian.Uint64(payload); g != prevGen {
		return nil, fmt.Errorf("frame generation %d does not continue from %d", g, prevGen)
	}
	b := payload[8:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, errors.New("bad record count")
	}
	b = b[n:]
	// Each record costs ≥ 2 bytes (two zero-length uvarints), so a count
	// beyond len(b)/2 cannot be satisfied — reject before allocating.
	if count > uint64(len(b))/2 {
		return nil, fmt.Errorf("record count %d exceeds payload", count)
	}
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var r Record
		var err error
		r, b, err = decodeRecord(b)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		r.Gen = prevGen + i + 1
		recs = append(recs, r)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after last record", len(b))
	}
	return recs, nil
}

func decodeRecord(b []byte) (Record, []byte, error) {
	var r Record
	plen, n := binary.Uvarint(b)
	if n <= 0 {
		return r, b, errors.New("bad path length")
	}
	b = b[n:]
	if plen > uint64(len(b)) { // each symbol is ≥ 1 byte
		return r, b, fmt.Errorf("path length %d exceeds payload", plen)
	}
	if plen > 0 {
		r.Path = make([]traj.Symbol, plen)
		for i := range r.Path {
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return r, b, fmt.Errorf("bad symbol %d", i)
			}
			if v > math.MaxUint32 {
				return r, b, fmt.Errorf("symbol %d out of range", i)
			}
			r.Path[i] = traj.Symbol(uint32(v))
			b = b[n:]
		}
	}
	tlen, n := binary.Uvarint(b)
	if n <= 0 {
		return r, b, errors.New("bad times length")
	}
	b = b[n:]
	if tlen > uint64(len(b))/8 {
		return r, b, fmt.Errorf("times length %d exceeds payload", tlen)
	}
	if tlen > 0 {
		r.Times = make([]float64, tlen)
		for i := range r.Times {
			r.Times[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		}
	}
	return r, b, nil
}

// OpenOrCreate opens the log at path for appending, creating it fresh at
// baseGen when absent (or when only a torn header exists — a header that
// never finished its fsync cannot precede any record). An existing log is
// scanned: every valid record is passed to apply, an invalid tail is
// physically truncated away, and the returned writer continues from the
// surviving end. The caller is responsible for checking info.BaseGen
// against its checkpoint barrier and skipping records with Gen ≤ barrier.
func OpenOrCreate(path string, baseGen uint64, opts Options, apply func(Record) error) (*Writer, ReplayInfo, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && len(data) == 0) {
		w, cerr := Create(path, baseGen, opts)
		return w, ReplayInfo{BaseGen: baseGen, EndGen: baseGen, GoodBytes: int64(headerSize)}, cerr
	}
	if err != nil {
		return nil, ReplayInfo{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if len(data) < headerSize && isPrefixOfMagic(data) {
		// Torn header from a crash inside Create: no frame can follow an
		// unfinished header, so recreating loses nothing.
		w, cerr := Create(path, baseGen, opts)
		return w, ReplayInfo{BaseGen: baseGen, EndGen: baseGen, GoodBytes: int64(headerSize)}, cerr
	}
	info, err := ReplayBytes(data, apply)
	if err != nil {
		return nil, info, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if info.GoodBytes < info.FileBytes {
		if err := f.Truncate(info.GoodBytes); err != nil {
			_ = f.Close()
			return nil, info, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, info, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(info.GoodBytes, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, info, fmt.Errorf("wal: seek: %w", err)
	}
	return resume(f, info.BaseGen, info.EndGen, info.GoodBytes, info.Records, opts), info, nil
}

func isPrefixOfMagic(data []byte) bool {
	if len(data) > len(magic) {
		return len(data) < headerSize && string(data[:len(magic)]) == magic
	}
	return string(data) == magic[:len(data)]
}

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
)

// This file is the sharded intra-query pipeline: candidate generation and
// verification run per index shard, optionally on several workers. The
// filter/verify split of Algorithm 2 is independent along the trajectory
// axis — a candidate (id, j, iq) only ever touches trajectory id — and the
// §5 trie cache shares state only within one τ-subsequence position, so
// partitioning trajectories across workers changes no result: every
// Parallelism setting returns the same sorted matches with the same WED
// values. Per-worker tries do lose cross-shard column sharing, which shows
// up only in the CMR/TrieNodes stats.

// EffectiveParallelism resolves the Query.Parallelism knob: 0 = auto (one
// worker per CPU), clamped to the shard count since a shard is the unit of
// work. Exported so concurrency-metering callers (the server's shared
// worker budget) reserve exactly the workers the engine will use.
func (e *Engine) EffectiveParallelism(p int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n := e.idx.NumShards(); p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// candBufs pools candidate slices so steady-state queries reuse lookup
// buffers instead of growing a fresh slice per query (and per shard).
var candBufs = sync.Pool{New: func() any { return new([]filter.Candidate) }}

// getCandBuf checks a candidate buffer out of the pool; callers return it
// with candBufs.Put once the candidates are consumed.
//
//subtrajlint:pool-get candBufs.Put
func getCandBuf() *[]filter.Candidate {
	buf := candBufs.Get().(*[]filter.Candidate)
	*buf = (*buf)[:0]
	return buf
}

// shardCandidates generates one shard's candidate stream for the query's
// temporal mode into dst.
func (e *Engine) shardCandidates(qr *Query, plan *filter.Plan, src index.PostingSource, dst []filter.Candidate) []filter.Candidate {
	temporal := qr.Temporal.Mode != TemporalNone
	switch {
	case temporal && !qr.Temporal.DisablePrefilter && qr.Temporal.Mode == TemporalDeparture:
		return plan.CandidatesByDeparture(src, qr.Temporal.Lo, qr.Temporal.Hi, dst)
	case temporal && !qr.Temporal.DisablePrefilter:
		return plan.CandidatesInWindow(src, qr.Temporal.Lo, qr.Temporal.Hi, dst)
	default:
		return plan.Candidates(src, dst)
	}
}

// runSequential is the Parallelism == 1 path: one candidate slice over
// all shards, one pooled verifier whose tries are shared across every
// candidate — exactly the pre-sharding engine behavior. Candidates are
// grouped by trajectory like the sharded path: the verifier accumulates
// matches per trajectory (one flush per ID) and reads each path once, and
// the grouping is a stable sort that changes no result.
func (e *Engine) runSequential(qr *Query, plan *filter.Plan, stats *QueryStats) ([]traj.Match, error) {
	start := time.Now()
	buf := getCandBuf()
	cands := *buf
	// Deferred (not straight-line) Puts: a panicking cost model escapes
	// through here (fanOutShards re-raises on the sequential path's
	// caller too), and a leaked verifier silently erodes the zero-alloc
	// steady state the CI alloc guard measures.
	defer func() { *buf = cands; candBufs.Put(buf) }()
	for s := 0; s < e.idx.NumShards(); s++ {
		src := e.idx.Source(s)
		cands = e.shardCandidates(qr, plan, src, cands)
		index.ReleaseSource(src)
	}
	filter.GroupByTrajectory(cands)
	stats.LookupTime = time.Since(start)
	stats.Candidates = len(cands)

	start = time.Now()
	ver := verify.Get(e.costs, e.ds, qr.Q, qr.Tau, qr.Verify)
	defer verify.Put(ver)
	var err error
	prevID := int32(-1)
	//subtrajlint:hotloop
	for _, c := range cands {
		// The cancellation point sits on trajectory-group boundaries:
		// one group is the unit of verification work (a shared trie
		// walk), so a deadline interrupts between groups, never inside
		// one — bounded latency without torn per-trajectory state.
		if c.ID != prevID {
			prevID = c.ID
			if err = ctxErr(qr.Ctx); err != nil {
				break
			}
		}
		ver.Verify(verify.Candidate{ID: c.ID, Pos: c.Pos, IQ: c.IQ})
	}
	res := ver.Results()
	stats.VerifyTime = time.Since(start)
	stats.Verify = ver.Stats
	if err != nil {
		return nil, err
	}
	return res, nil
}

// workerPanic wraps a recovered panic value so atomic.Value always
// stores one concrete type regardless of what the panic carried.
type workerPanic struct{ val any }

// fanOutShards runs task(s) for every shard index on up to `workers`
// goroutines. The first worker panic is captured (the dying worker
// drains the task channel so the feeder never blocks) and re-raised on
// the caller's goroutine: a panicking cost model then behaves exactly
// as on the sequential path (net/http's per-request recover catches it)
// instead of killing the process from a bare worker goroutine. Shared
// by the plain sharded search and the top-k rounds.
func fanOutShards(numShards, workers int, task func(s int)) {
	tasks := make(chan int)
	var wg sync.WaitGroup
	var panicked atomic.Value // first worker panic, re-raised on the caller
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, workerPanic{p})
					for range tasks {
					}
				}
			}()
			for s := range tasks {
				task(s)
			}
		}()
	}
	for s := 0; s < numShards; s++ {
		tasks <- s
	}
	close(tasks)
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.(workerPanic).val)
	}
}

// shardOut is one shard task's contribution to the merged answer.
type shardOut struct {
	matches []traj.Match
	lookup  time.Duration
	verify  time.Duration
	cands   int
	vstats  verify.Stats
	// err is the shard's cancellation (or other) failure; the merge
	// surfaces the first one and discards the round's matches.
	err error
}

// runSharded fans the shards out over `workers` goroutines. Each task
// generates one shard's candidates (grouped by trajectory for locality),
// verifies them with a pooled per-task verifier, and reports sorted
// per-shard matches; the merge concatenates and re-sorts, which is
// deterministic because shards partition trajectory IDs (per-shard result
// sets are disjoint) and every list arrives in (ID, S, T) order.
func (e *Engine) runSharded(qr *Query, plan *filter.Plan, workers int, stats *QueryStats) ([]traj.Match, error) {
	numShards := e.idx.NumShards()
	outs := make([]shardOut, numShards)
	fanOutShards(numShards, workers, func(s int) {
		outs[s] = e.runShard(qr, plan, s)
	})

	var total int
	for s := range outs {
		o := &outs[s]
		if o.err != nil {
			return nil, o.err
		}
		total += len(o.matches)
		stats.LookupTime += o.lookup
		stats.VerifyTime += o.verify
		stats.Candidates += o.cands
		stats.Verify.Add(o.vstats)
	}
	res := make([]traj.Match, 0, total)
	for s := range outs {
		res = append(res, outs[s].matches...)
	}
	// Shard s owns IDs ≡ s (mod P), so concatenation interleaves IDs;
	// one sort restores the canonical (ID, S, T) order.
	traj.SortMatches(res)
	return res, nil
}

// runShard executes the filter and verify phases over one shard.
func (e *Engine) runShard(qr *Query, plan *filter.Plan, s int) shardOut {
	var out shardOut
	start := time.Now()
	buf := getCandBuf()
	src := e.idx.Source(s)
	cands := e.shardCandidates(qr, plan, src, *buf)
	// Deferred so a panicking worker (re-raised by fanOutShards) cannot
	// leak the buffer or the pooled verifier.
	defer func() { *buf = cands; candBufs.Put(buf) }()
	index.ReleaseSource(src)
	filter.GroupByTrajectory(cands)
	out.lookup = time.Since(start)
	out.cands = len(cands)

	start = time.Now()
	ver := verify.Get(e.costs, e.ds, qr.Q, qr.Tau, qr.Verify)
	defer verify.Put(ver)
	prevID := int32(-1)
	//subtrajlint:hotloop
	for _, c := range cands {
		if c.ID != prevID {
			prevID = c.ID
			if out.err = ctxErr(qr.Ctx); out.err != nil {
				break
			}
		}
		ver.Verify(verify.Candidate{ID: c.ID, Pos: c.Pos, IQ: c.IQ})
	}
	out.matches = ver.Results()
	out.verify = time.Since(start)
	out.vstats = ver.Stats
	return out
}

package core_test

import (
	"reflect"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
)

// compactBackends builds the three engines under comparison over one
// model: the flat pointer index, the sharded pointer index, and the
// compact arena (frozen snapshot + empty tail).
func compactBackends(m testutil.Model) (flat, sharded, compact *core.Engine) {
	return core.NewEngineShards(m.DS, m.Costs, 1),
		core.NewEngineShards(m.DS, m.Costs, 4),
		core.NewEngineCompact(m.DS, m.Costs)
}

// bitEqual demands byte-for-byte identical match slices: same order, same
// (ID, S, T), same WED bits. The backends feed identical candidate
// postings into identical verification, so nothing weaker is acceptable.
func bitEqual(t *testing.T, label string, got, want []traj.Match) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: result not bit-equal\n got %v\nwant %v", label, got, want)
	}
}

// TestCompactEquivalence is the backend-equivalence acceptance test: over
// all six cost models, every verification mode, sequential and parallel
// execution, the compact backend must return matches bit-equal to both
// pointer backends — identical slices including order and WED bits —
// with the identical filter plan (|Q'|, c(Q')) and candidate count.
func TestCompactEquivalence(t *testing.T) {
	env := testutil.NewEnv(31, 35, 22)
	for _, m := range env.Models() {
		flat, sharded, compact := compactBackends(m)
		if flat.IndexKind() != "pointer" || compact.IndexKind() != "compact" {
			t.Fatalf("%s: backend kinds %q / %q", m.Name, flat.IndexKind(), compact.IndexKind())
		}
		q := env.Query(m, 8)
		taus := oracleTaus(m.Costs, m.DS, q)
		for _, tau := range taus {
			for _, mode := range []verify.Mode{verify.ModeBT, verify.ModeLocal, verify.ModeSW} {
				for _, par := range []int{1, 4} {
					qr := core.Query{Q: q, Tau: tau, Parallelism: par,
						Verify: verify.Options{Mode: mode}}
					want, wstats, err := flat.SearchQuery(qr)
					if err != nil {
						t.Fatalf("%s flat: %v", m.Name, err)
					}
					for name, eng := range map[string]*core.Engine{"sharded": sharded, "compact": compact} {
						label := m.Name + "/" + mode.String() + "/" + name
						got, gstats, err := eng.SearchQuery(qr)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						bitEqual(t, label, got, want)
						if gstats.SubseqLen != wstats.SubseqLen || gstats.CSum != wstats.CSum {
							t.Fatalf("%s: plan (|Q'|=%d, c=%v), want (|Q'|=%d, c=%v)",
								label, gstats.SubseqLen, gstats.CSum, wstats.SubseqLen, wstats.CSum)
						}
						if gstats.Candidates != wstats.Candidates {
							t.Fatalf("%s: %d candidates, want %d", label, gstats.Candidates, wstats.Candidates)
						}
					}
				}
			}
		}
	}
}

// TestCompactEquivalenceTemporal repeats the comparison for temporally
// constrained queries: every temporal mode, with and without the
// candidate-level pre-filter, several windows. This drives the compact
// arena's skip-block window decode and interval section through the whole
// query path.
func TestCompactEquivalenceTemporal(t *testing.T) {
	env := testutil.NewEnv(32, 40, 22)
	for _, m := range env.Models() {
		flat, sharded, compact := compactBackends(m)
		q := env.Query(m, 8)
		tau := oracleTaus(m.Costs, m.DS, q)[2]
		windows := [][2]float64{{0, 1e9}, {0, 1500}, {800, 2400}, {3000, 3000}, {-10, -1}}
		for _, w := range windows {
			for _, tm := range []core.TemporalMode{core.TemporalOverlap, core.TemporalContain, core.TemporalDeparture} {
				for _, noTF := range []bool{false, true} {
					qr := core.Query{Q: q, Tau: tau, Parallelism: 4}
					qr.Temporal.Mode = tm
					qr.Temporal.Lo, qr.Temporal.Hi = w[0], w[1]
					qr.Temporal.DisablePrefilter = noTF
					want, _, err := flat.SearchQuery(qr)
					if err != nil {
						t.Fatalf("%s flat temporal: %v", m.Name, err)
					}
					for name, eng := range map[string]*core.Engine{"sharded": sharded, "compact": compact} {
						got, _, err := eng.SearchQuery(qr)
						if err != nil {
							t.Fatalf("%s/%s temporal: %v", m.Name, name, err)
						}
						bitEqual(t, m.Name+"/"+name+"/temporal", got, want)
					}
				}
			}
		}
	}
}

// TestCompactEquivalenceTopK compares the incremental top-k driver across
// backends: the per-round threshold growth depends only on plan numbers,
// which the backends share, so the full round structure must agree.
func TestCompactEquivalenceTopK(t *testing.T) {
	env := testutil.NewEnv(33, 35, 22)
	for _, m := range env.Models() {
		flat, _, compact := compactBackends(m)
		q := env.Query(m, 8)
		for _, k := range []int{1, 5} {
			want, wstats, err := flat.SearchTopKStats(q, k, core.TopKOptions{})
			if err != nil {
				t.Fatalf("%s flat topk: %v", m.Name, err)
			}
			got, gstats, err := compact.SearchTopKStats(q, k, core.TopKOptions{})
			if err != nil {
				t.Fatalf("%s compact topk: %v", m.Name, err)
			}
			bitEqual(t, m.Name+"/topk", got, want)
			if gstats.Rounds != wstats.Rounds {
				t.Fatalf("%s topk: %d rounds, want %d", m.Name, gstats.Rounds, wstats.Rounds)
			}
		}
	}
}

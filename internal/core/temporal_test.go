package core_test

import (
	"math/rand"
	"testing"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
)

// temporalOracle filters the exhaustive result set by the exact endpoint
// constraint.
func temporalOracle(ds *traj.Dataset, ms []traj.Match, mode core.TemporalMode, lo, hi float64) []traj.Match {
	var out []traj.Match
	for _, m := range ms {
		t := ds.Get(m.ID)
		s, x := int(m.S), int(m.T)
		if ds.Rep == traj.EdgeRep {
			x++
		}
		if x >= len(t.Times) {
			x = len(t.Times) - 1
		}
		ts, te := t.Times[s], t.Times[x]
		keep := false
		switch mode {
		case core.TemporalOverlap:
			keep = ts <= hi && te >= lo
		case core.TemporalContain:
			keep = ts >= lo && te <= hi
		case core.TemporalDeparture:
			keep = t.Times[0] >= lo && t.Times[0] <= hi
		}
		if keep {
			out = append(out, m)
		}
	}
	return out
}

func TestTemporalSearchMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, seed := range []int64{1, 2} {
		env := testutil.NewEnv(seed+50, 40, 22)
		for _, m := range env.Models() {
			eng := core.NewEngine(m.DS, m.Costs)
			q := env.Query(m, 8)
			tau := oracleTaus(m.Costs, m.DS, q)[2]
			all := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
			for trial := 0; trial < 4; trial++ {
				lo := rng.Float64() * 3000
				hi := lo + rng.Float64()*1200
				for _, mode := range []core.TemporalMode{core.TemporalOverlap, core.TemporalContain, core.TemporalDeparture} {
					want := temporalOracle(m.DS, all, mode, lo, hi)
					for _, noTF := range []bool{false, true} {
						qr := core.Query{Q: q, Tau: tau}
						qr.Temporal.Mode = mode
						qr.Temporal.Lo, qr.Temporal.Hi = lo, hi
						qr.Temporal.DisablePrefilter = noTF
						got, stats, err := eng.SearchQuery(qr)
						if err != nil {
							t.Fatalf("%s: %v", m.Name, err)
						}
						assertSameMatches(t, m.Name+"/temporal", got, want)
						if !noTF && stats.Candidates > 0 {
							// TF must not generate more candidates than no-TF.
							qr.Temporal.DisablePrefilter = true
							_, noTFStats, err := eng.SearchQuery(qr)
							if err != nil {
								t.Fatal(err)
							}
							if stats.Candidates > noTFStats.Candidates {
								t.Fatalf("%s: TF %d candidates > no-TF %d", m.Name, stats.Candidates, noTFStats.Candidates)
							}
						}
					}
				}
			}
		}
	}
}

func TestTemporalNoDataRejectsAll(t *testing.T) {
	// A dataset without timestamps can never satisfy a temporal
	// constraint.
	rng := rand.New(rand.NewSource(78))
	rc := testutil.NewRandomCosts(rng, 6, 0)
	ds := testutil.RandomDataset(rng, 6, 10, 12)
	eng := core.NewEngine(ds, rc)
	q := []traj.Symbol{0, 1, 2}
	taus := oracleTaus(rc, ds, q)
	qr := core.Query{Q: q, Tau: taus[2]}
	qr.Temporal.Mode = core.TemporalOverlap
	qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e18
	got, _, err := eng.SearchQuery(qr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d matches without temporal data", len(got))
	}
}

package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/testutil"
)

// TestSearchCanceledContext: a context that is already dead must stop
// every search path — sequential, sharded, top-k incremental and legacy —
// with an error wrapping the context's cause, and a nil/live context must
// leave results untouched.
func TestSearchCanceledContext(t *testing.T) {
	env := testutil.NewEnv(31, 40, 24)
	m := env.Models()[0]
	eng := core.NewEngineShards(m.DS, m.Costs, 4)
	q := env.Query(m, 8)
	tau := oracleTaus(m.Costs, m.DS, q)[1]

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"sequential", func() error {
			_, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: 1, Ctx: canceled})
			return err
		}},
		{"sharded", func() error {
			_, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: 4, Ctx: canceled})
			return err
		}},
		{"topk", func() error {
			_, _, err := eng.SearchTopKStats(q, 5, core.TopKOptions{Ctx: canceled})
			return err
		}},
		{"topk-sharded", func() error {
			_, _, err := eng.SearchTopKStats(q, 5, core.TopKOptions{Ctx: canceled, Parallelism: 4})
			return err
		}},
		{"topk-legacy", func() error {
			_, _, err := eng.SearchTopKStats(q, 5, core.TopKOptions{Ctx: canceled, Legacy: true})
			return err
		}},
	} {
		if err := tc.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
	}
}

// TestSearchLiveContextUnchanged: passing a live context must not change
// the answer relative to the nil-context path.
func TestSearchLiveContextUnchanged(t *testing.T) {
	env := testutil.NewEnv(32, 40, 24)
	for _, m := range env.Models() {
		eng := core.NewEngineShards(m.DS, m.Costs, 4)
		q := env.Query(m, 8)
		tau := oracleTaus(m.Costs, m.DS, q)[1]
		want, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Ctx: context.Background()})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		assertIdenticalResults(t, m.Name+"/ctx", got, want)

		wantK, _, err := eng.SearchTopKStats(q, 5, core.TopKOptions{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		gotK, _, err := eng.SearchTopKStats(q, 5, core.TopKOptions{Ctx: context.Background()})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		assertIdenticalResults(t, m.Name+"/ctx-topk", gotK, wantK)
	}
}

// TestDeadlineExceededSurfaces: an expired deadline is distinguishable
// from a plain cancel, so servers can map it to 504.
func TestDeadlineExceededSurfaces(t *testing.T) {
	env := testutil.NewEnv(33, 40, 24)
	m := env.Models()[0]
	eng := core.NewEngineShards(m.DS, m.Costs, 4)
	q := env.Query(m, 8)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, _, err := eng.SearchQuery(core.Query{Q: q, Tau: oracleTaus(m.Costs, m.DS, q)[1], Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

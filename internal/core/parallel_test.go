package core_test

import (
	"sync/atomic"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
)

// assertIdenticalResults enforces the sharded pipeline's determinism
// contract: not merely the same match set, but the exact same slice —
// same (ID, S, T) order, bit-for-bit equal WED values.
func assertIdenticalResults(t *testing.T, label string, got, want []traj.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestParallelismEquivalence is the cross-check the sharded pipeline
// must pass: for seeded workloads and every cost model, Parallelism N
// returns exactly the Parallelism 1 answer — identical sorted matches,
// identical WED bits, identical candidate counts. CI runs it under
// -race, which also exercises the shard workers for data races.
func TestParallelismEquivalence(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		env := testutil.NewEnv(seed, 40, 24)
		for _, m := range env.Models() {
			eng := core.NewEngineShards(m.DS, m.Costs, 4)
			if eng.NumShards() != 4 {
				t.Fatalf("NumShards = %d, want 4", eng.NumShards())
			}
			q := env.Query(m, 8)
			tau := oracleTaus(m.Costs, m.DS, q)[1]
			base, baseStats, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: 1})
			if err != nil {
				t.Fatalf("seed=%d model=%s: %v", seed, m.Name, err)
			}
			if baseStats.Workers != 1 {
				t.Fatalf("%s: sequential path reported %d workers", m.Name, baseStats.Workers)
			}
			for _, par := range []int{2, 3, 4, 8} {
				got, stats, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: par})
				if err != nil {
					t.Fatalf("seed=%d model=%s par=%d: %v", seed, m.Name, par, err)
				}
				label := m.Name + "/par"
				assertIdenticalResults(t, label, got, base)
				if stats.Candidates != baseStats.Candidates {
					t.Fatalf("%s par=%d: %d candidates, want %d", m.Name, par, stats.Candidates, baseStats.Candidates)
				}
				if stats.Verify.ColumnsAvailable != baseStats.Verify.ColumnsAvailable {
					t.Fatalf("%s par=%d: ColumnsAvailable %d != %d", m.Name, par, stats.Verify.ColumnsAvailable, baseStats.Verify.ColumnsAvailable)
				}
				if want := min(par, 4); stats.Workers != want {
					t.Fatalf("%s par=%d: Workers = %d, want %d", m.Name, par, stats.Workers, want)
				}
			}
		}
	}
}

// TestParallelismEquivalenceModes covers the verification-mode ablations
// and the temporal constraint forms over the sharded path.
func TestParallelismEquivalenceModes(t *testing.T) {
	env := testutil.NewEnv(23, 40, 24)
	m := env.Models()[1] // EDR
	eng := core.NewEngineShards(m.DS, m.Costs, 3)
	q := env.Query(m, 8)
	tau := oracleTaus(m.Costs, m.DS, q)[2]

	for _, mode := range []verify.Mode{verify.ModeBT, verify.ModeLocal, verify.ModeSW} {
		qr := core.Query{Q: q, Tau: tau, Verify: verify.Options{Mode: mode}}
		qr.Parallelism = 1
		base, _, err := eng.SearchQuery(qr)
		if err != nil {
			t.Fatal(err)
		}
		qr.Parallelism = 3
		got, _, err := eng.SearchQuery(qr)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, "mode="+mode.String(), got, base)
	}

	lo, hi := 0.0, 1800.0
	for _, mode := range []core.TemporalMode{core.TemporalOverlap, core.TemporalContain, core.TemporalDeparture} {
		for _, noPre := range []bool{false, true} {
			qr := core.Query{Q: q, Tau: tau}
			qr.Temporal.Mode = mode
			qr.Temporal.Lo, qr.Temporal.Hi = lo, hi
			qr.Temporal.DisablePrefilter = noPre
			qr.Parallelism = 1
			base, _, err := eng.SearchQuery(qr)
			if err != nil {
				t.Fatal(err)
			}
			qr.Parallelism = 3
			got, _, err := eng.SearchQuery(qr)
			if err != nil {
				t.Fatal(err)
			}
			assertIdenticalResults(t, "temporal", got, base)
		}
	}
}

// TestShardedEngineMatchesSingleShard checks that the shard count itself
// (not just the worker count) leaves results unchanged, including after
// incremental appends.
func TestShardedEngineMatchesSingleShard(t *testing.T) {
	env := testutil.NewEnv(24, 40, 24)
	m := env.Models()[0] // Lev
	q := env.Query(m, 8)
	tau := oracleTaus(m.Costs, m.DS, q)[1]

	one := core.NewEngineShards(m.DS, m.Costs, 1)
	want, err := one.Search(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 5} {
		eng := core.NewEngineShards(m.DS, m.Costs, shards)
		got, err := eng.Search(q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, "shards", got, want)
	}

	// Append half the dataset incrementally into a sharded engine.
	half := m.DS.Len() / 2
	partial := &traj.Dataset{Rep: m.DS.Rep}
	for i := 0; i < half; i++ {
		partial.Add(m.DS.Trajs[i])
	}
	eng := core.NewEngineShards(partial, m.Costs, 4)
	for i := half; i < m.DS.Len(); i++ {
		eng.Append(m.DS.Trajs[i])
	}
	got, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, "append+sharded", got, want)
}

// panickyCosts wraps a cost model and panics on the Nth Sub call,
// simulating a broken user-supplied cost model.
type panickyCosts struct {
	wed.FilterCosts
	calls *int32
	after int32
}

func (p panickyCosts) Sub(a, b traj.Symbol) float64 {
	if atomic.AddInt32(p.calls, 1) > p.after {
		panic("cost model exploded")
	}
	return p.FilterCosts.Sub(a, b)
}

// TestShardWorkerPanicReachesCaller checks that a panic inside a shard
// worker re-raises on the query's own goroutine (where net/http-style
// recovery can catch it) instead of crashing the process from a bare
// goroutine — which would be untestable here.
func TestShardWorkerPanicReachesCaller(t *testing.T) {
	env := testutil.NewEnv(26, 40, 24)
	m := env.Models()[0]
	var calls int32
	costs := panickyCosts{FilterCosts: m.Costs, calls: &calls, after: 50}
	eng := core.NewEngineShards(m.DS, costs, 4)
	q := env.Query(m, 8)
	tau := oracleTaus(m.Costs, m.DS, q)[1]

	defer func() {
		if p := recover(); p == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	_, _, _ = eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: 4})
}

// TestSearchReturnsSortedMatches pins the ordering contract every caller
// (and the shard merge) relies on.
func TestSearchReturnsSortedMatches(t *testing.T) {
	env := testutil.NewEnv(25, 40, 24)
	for _, m := range env.Models()[:2] {
		eng := core.NewEngineShards(m.DS, m.Costs, 4)
		q := env.Query(m, 8)
		tau := oracleTaus(m.Costs, m.DS, q)[2]
		for _, par := range []int{1, 4} {
			got, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(got); i++ {
				a, b := got[i-1], got[i]
				if a.ID > b.ID || (a.ID == b.ID && (a.S > b.S || (a.S == b.S && a.T >= b.T))) {
					t.Fatalf("%s par=%d: matches out of (ID,S,T) order at %d: %+v then %+v", m.Name, par, i, a, b)
				}
			}
		}
		exact, err := eng.SearchExact(q[:3])
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(exact); i++ {
			if exact[i-1].ID > exact[i].ID {
				t.Fatalf("SearchExact out of ID order at %d", i)
			}
		}
	}
}

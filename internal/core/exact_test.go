package core_test

import (
	"math/rand"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
)

// bruteExact enumerates exact occurrences by scanning.
func bruteExact(ds *traj.Dataset, q []traj.Symbol) []traj.MatchKey {
	var out []traj.MatchKey
	for id := range ds.Trajs {
		p := ds.Trajs[id].Path
	outer:
		for s := 0; s+len(q) <= len(p); s++ {
			for i := range q {
				if p[s+i] != q[i] {
					continue outer
				}
			}
			out = append(out, traj.MatchKey{ID: int32(id), S: int32(s), T: int32(s + len(q) - 1)})
		}
	}
	return out
}

func TestSearchExactMatchesBruteForce(t *testing.T) {
	env := testutil.NewEnv(61, 40, 25)
	m := env.Models()[0]
	eng := core.NewEngine(m.DS, m.Costs)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		qlen := 2 + rng.Intn(10)
		q := env.Query(m, qlen)
		got, err := eng.SearchExact(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteExact(m.DS, q)
		if len(got) != len(want) {
			t.Fatalf("exact count %d != %d", len(got), len(want))
		}
		wantSet := map[traj.MatchKey]bool{}
		for _, w := range want {
			wantSet[w] = true
		}
		for _, g := range got {
			if !wantSet[g.Key()] {
				t.Fatalf("spurious exact match %+v", g)
			}
			if g.WED != 0 {
				t.Fatalf("exact match with wed %v", g.WED)
			}
		}
		n, err := eng.CountExact(q)
		if err != nil || n != len(want) {
			t.Fatalf("CountExact %d != %d (%v)", n, len(want), err)
		}
	}
	if _, err := eng.SearchExact(nil); err == nil {
		t.Fatal("empty exact query accepted")
	}
}

func TestSearchExactRandomStrings(t *testing.T) {
	// Adversarial: arbitrary (non-path) queries, including symbols
	// absent from the dataset.
	rng := rand.New(rand.NewSource(62))
	rc := testutil.NewRandomCosts(rng, 6, 0)
	ds := testutil.RandomDataset(rng, 6, 30, 15)
	eng := core.NewEngine(ds, rc)
	for trial := 0; trial < 50; trial++ {
		qlen := 1 + rng.Intn(6)
		q := make([]traj.Symbol, qlen)
		for i := range q {
			q[i] = traj.Symbol(rng.Intn(8)) // 6,7 never occur
		}
		got, err := eng.SearchExact(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteExact(ds, q)
		if len(got) != len(want) {
			t.Fatalf("exact count %d != %d for %v", len(got), len(want), q)
		}
	}
}

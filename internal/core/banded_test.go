package core_test

import (
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/verify"
)

// TestBandedEquivalence is the cross-check the τ-banded verification must
// pass, in the mould of TestParallelismEquivalence: for every cost model
// (including the weighted Net* models, whose non-uniform costs make the
// band asymmetric), every verification mode, and both the sequential and
// sharded pipelines, banded columns return exactly the full-width answer —
// identical sorted (ID, S, T) sets with bit-equal WED values — while
// visiting the same columns and computing at most as many cells.
func TestBandedEquivalence(t *testing.T) {
	for _, seed := range []int64{61, 62} {
		env := testutil.NewEnv(seed, 40, 24)
		for _, m := range env.Models() {
			eng := core.NewEngineShards(m.DS, m.Costs, 4)
			q := env.Query(m, 8)
			for _, tau := range oracleTaus(m.Costs, m.DS, q)[1:] {
				for _, mode := range []verify.Mode{verify.ModeBT, verify.ModeLocal, verify.ModeSW} {
					for _, par := range []int{1, 4} {
						full, fullStats, err := eng.SearchQuery(core.Query{
							Q: q, Tau: tau, Parallelism: par,
							Verify: verify.Options{Mode: mode, DisableBanding: true},
						})
						if err != nil {
							t.Fatalf("seed=%d model=%s mode=%s par=%d: %v", seed, m.Name, mode, par, err)
						}
						banded, bandedStats, err := eng.SearchQuery(core.Query{
							Q: q, Tau: tau, Parallelism: par,
							Verify: verify.Options{Mode: mode},
						})
						if err != nil {
							t.Fatalf("seed=%d model=%s mode=%s par=%d: %v", seed, m.Name, mode, par, err)
						}
						label := m.Name + "/" + mode.String() + "/banded"
						assertIdenticalResults(t, label, banded, full)

						// Banding changes no pruning decision: the same
						// columns are visited and computed; only the cell
						// work inside each column shrinks.
						if bandedStats.Verify.ColumnsVisited != fullStats.Verify.ColumnsVisited {
							t.Fatalf("%s par=%d: ColumnsVisited %d != %d", label, par,
								bandedStats.Verify.ColumnsVisited, fullStats.Verify.ColumnsVisited)
						}
						if bandedStats.Verify.StepDPCalls != fullStats.Verify.StepDPCalls {
							t.Fatalf("%s par=%d: StepDPCalls %d != %d", label, par,
								bandedStats.Verify.StepDPCalls, fullStats.Verify.StepDPCalls)
						}
						if bandedStats.Verify.CellsComputed > fullStats.Verify.CellsComputed {
							t.Fatalf("%s par=%d: banded computed more cells (%d) than full (%d)", label, par,
								bandedStats.Verify.CellsComputed, fullStats.Verify.CellsComputed)
						}
						if mode != verify.ModeSW {
							if fullStats.Verify.StepDPCalls > 0 && fullStats.Verify.BandRatio() != 1 {
								t.Fatalf("%s par=%d: full-width BandRatio = %v, want 1", label, par, fullStats.Verify.BandRatio())
							}
							if r := bandedStats.Verify.BandRatio(); r < 0 || r > 1 {
								t.Fatalf("%s par=%d: BandRatio out of range: %v", label, par, r)
							}
						}
					}
				}
			}
		}
	}
}

// TestBandedEquivalenceAblations covers the early-termination ablation —
// with the Eq. 11 cut off, walks descend into all-pruned (empty-band)
// columns, the regime where the band bookkeeping is most delicate.
func TestBandedEquivalenceAblations(t *testing.T) {
	env := testutil.NewEnv(63, 40, 24)
	for _, m := range env.Models() {
		eng := core.NewEngineShards(m.DS, m.Costs, 3)
		q := env.Query(m, 8)
		tau := oracleTaus(m.Costs, m.DS, q)[1]
		for _, noET := range []bool{false, true} {
			full, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau,
				Verify: verify.Options{DisableEarlyTermination: noET, DisableBanding: true}})
			if err != nil {
				t.Fatal(err)
			}
			banded, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau,
				Verify: verify.Options{DisableEarlyTermination: noET}})
			if err != nil {
				t.Fatal(err)
			}
			assertIdenticalResults(t, m.Name+"/noET-banded", banded, full)
		}
	}
}

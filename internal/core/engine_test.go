package core_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/index"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
)

func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// assertSameMatches fails unless both match sets contain exactly the same
// (ID, S, T) triples with equal WED values.
func assertSameMatches(t *testing.T, label string, got, want []traj.Match) {
	t.Helper()
	wantSet := make(map[traj.MatchKey]float64, len(want))
	for _, m := range want {
		wantSet[m.Key()] = m.WED
	}
	gotSet := make(map[traj.MatchKey]float64, len(got))
	for _, m := range got {
		if _, dup := gotSet[m.Key()]; dup {
			t.Fatalf("%s: duplicate match %+v", label, m)
		}
		gotSet[m.Key()] = m.WED
	}
	for k, w := range wantSet {
		g, ok := gotSet[k]
		if !ok {
			t.Fatalf("%s: missing match %+v (wed=%v); got %d matches, want %d", label, k, w, len(got), len(want))
		}
		if !approxEq(g, w) {
			t.Fatalf("%s: wed mismatch at %+v: got %v want %v", label, k, g, w)
		}
	}
	for k, g := range gotSet {
		if _, ok := wantSet[k]; !ok {
			t.Fatalf("%s: spurious match %+v (wed=%v)", label, k, g)
		}
	}
}

// oracleTaus runs the exhaustive oracle once with a large τ to collect the
// distance distribution, then derives safe test thresholds at several
// quantiles. Thresholds are capped at the feasible range: the filtering
// principle requires τ ≤ c(Q) (a τ-subsequence must exist, §3.1) and the
// problem definition requires τ ≤ wed(ε, Q) (§2.3) — the paper's
// τ = τ_ratio·Σc(q) with τ_ratio ≤ 1 guarantees both.
func oracleTaus(costs wed.FilterCosts, ds *traj.Dataset, q []traj.Symbol) []float64 {
	maxTau := wed.SumIns(costs, q)
	if cq := core.SumFilterCost(costs, q); cq < maxTau {
		maxTau = cq
	}
	var weds []float64
	for id := range ds.Trajs {
		for _, m := range wed.AllMatches(costs, q, ds.Trajs[id].Path, maxTau) {
			weds = append(weds, m.WED)
		}
	}
	var taus []float64
	for _, quant := range []float64{0.05, 0.3, 0.7} {
		taus = append(taus, testutil.PickTau(weds, quant, maxTau))
	}
	return taus
}

// TestEngineMatchesOracle is the central exactness test: for every cost
// model, every verification mode, and several thresholds, the engine's
// result set must equal the exhaustive scan of Definition 3.
func TestEngineMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		env := testutil.NewEnv(seed, 35, 22)
		for _, m := range env.Models() {
			eng := core.NewEngine(m.DS, m.Costs)
			for qi := 0; qi < 2; qi++ {
				q := env.Query(m, 8)
				for _, tau := range oracleTaus(m.Costs, m.DS, q) {
					want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
					for _, mode := range []verify.Mode{verify.ModeBT, verify.ModeLocal, verify.ModeSW} {
						got, stats, err := eng.SearchQuery(core.Query{
							Q: q, Tau: tau,
							Verify: verify.Options{Mode: mode},
						})
						if err != nil {
							t.Fatalf("seed=%d model=%s mode=%v tau=%v: %v", seed, m.Name, mode, tau, err)
						}
						label := m.Name + "/" + mode.String()
						assertSameMatches(t, label, got, want)
						if stats.Candidates < len(uniqueIDs(want)) && len(want) > 0 {
							t.Fatalf("%s: candidate count %d below matched trajectory count %d", label, stats.Candidates, len(uniqueIDs(want)))
						}
					}
				}
			}
		}
	}
}

func uniqueIDs(ms []traj.Match) map[int32]bool {
	u := make(map[int32]bool)
	for _, m := range ms {
		u[m.ID] = true
	}
	return u
}

// TestEngineMatchesOracleRandomCosts stresses the engine with adversarial
// random cost tables (no road-network structure at all).
func TestEngineMatchesOracleRandomCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		rc := testutil.NewRandomCosts(rng, 8, 0.3)
		ds := testutil.RandomDataset(rng, 8, 25, 18)
		eng := core.NewEngine(ds, rc)
		q := make([]traj.Symbol, 5+rng.Intn(4))
		for i := range q {
			q[i] = traj.Symbol(rng.Intn(8))
		}
		for _, tau := range oracleTaus(rc, ds, q) {
			want := baselines.PlainSW(rc, ds, q, tau).Matches
			got, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			assertSameMatches(t, "random-costs", got, want)
		}
	}
}

// TestBaselinesMatchOracle checks that every filter-and-verify baseline is
// exact, as the paper requires for a fair comparison.
func TestBaselinesMatchOracle(t *testing.T) {
	env := testutil.NewEnv(7, 30, 20)
	for _, m := range env.Models() {
		inv := index.Build(m.DS)
		q := env.Query(m, 8)
		for _, tau := range oracleTaus(m.Costs, m.DS, q) {
			want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
			for _, vm := range []verify.Mode{verify.ModeBT, verify.ModeSW} {
				vo := verify.Options{Mode: vm}
				d := baselines.DISON(m.Costs, m.DS, inv, q, tau, vo)
				assertSameMatches(t, m.Name+"/DISON-"+vm.String(), d.Matches, want)
				to := baselines.Torch(m.Costs, m.DS, inv, q, tau, vo)
				assertSameMatches(t, m.Name+"/Torch-"+vm.String(), to.Matches, want)
			}
		}
	}
}

func TestQGramMatchesOracle(t *testing.T) {
	env := testutil.NewEnv(8, 30, 20)
	for _, m := range env.Models() {
		if m.Name != "EDR" && m.Name != "Lev" {
			continue // q-gram counting requires unit costs
		}
		gi := baselines.NewQGramIndex(m.Costs, m.DS, 3)
		q := env.Query(m, 8)
		for _, tau := range oracleTaus(m.Costs, m.DS, q) {
			want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
			got := gi.Search(q, tau)
			assertSameMatches(t, m.Name+"/qgram", got.Matches, want)
		}
	}
}

func TestEnumerationBaselinesMatchOracle(t *testing.T) {
	env := testutil.NewEnv(9, 12, 14) // tiny: subtrajectory enumeration
	inv := index.Build(env.V)
	for _, m := range env.Models() {
		switch m.Name {
		case "EDR":
			d := baselines.NewDITA(m.Costs, m.DS, 5,
				baselines.FrequencyScore(func(s traj.Symbol) int { return inv.Freq(s) }))
			q := env.Query(m, 6)
			for _, tau := range oracleTaus(m.Costs, m.DS, q) {
				want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
				got := d.Search(q, tau)
				assertSameMatches(t, "DITA/EDR", got.Matches, want)
			}
		case "ERP":
			d := baselines.NewDITA(m.Costs, m.DS, 5, baselines.DeletionCostScore(m.Costs))
			e := baselines.NewERPIndex(m.Costs, m.DS, env.G.Coords(), env.G.Barycenter())
			q := env.Query(m, 6)
			for _, tau := range oracleTaus(m.Costs, m.DS, q) {
				want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
				assertSameMatches(t, "DITA/ERP", d.Search(q, tau).Matches, want)
				assertSameMatches(t, "ERPIndex", e.Search(q, tau).Matches, want)
			}
		}
	}
}

// TestVerifyAblations checks that disabling early termination does not
// change results (it only costs time).
func TestVerifyAblations(t *testing.T) {
	env := testutil.NewEnv(10, 30, 20)
	for _, m := range env.Models() {
		eng := core.NewEngine(m.DS, m.Costs)
		q := env.Query(m, 8)
		taus := oracleTaus(m.Costs, m.DS, q)
		tau := taus[1]
		base, baseStats, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		noET, noETStats, err := eng.SearchQuery(core.Query{
			Q: q, Tau: tau,
			Verify: verify.Options{DisableEarlyTermination: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, m.Name+"/noET", noET, base)
		if noETStats.Verify.ColumnsVisited < baseStats.Verify.ColumnsVisited {
			t.Fatalf("%s: disabling early termination reduced visited columns (%d < %d)",
				m.Name, noETStats.Verify.ColumnsVisited, baseStats.Verify.ColumnsVisited)
		}
	}
}

func TestEngineRejectsDegenerateQueries(t *testing.T) {
	env := testutil.NewEnv(11, 10, 12)
	m := env.Models()[0]
	eng := core.NewEngine(m.DS, m.Costs)
	if _, _, err := eng.SearchQuery(core.Query{Q: nil, Tau: 1}); err == nil {
		t.Error("empty query accepted")
	}
	q := env.Query(m, 5)
	// τ above wed(ε, Q) must be rejected (§2.3's meaningfulness guard).
	tooBig := wed.SumIns(m.Costs, q) + 1
	if _, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tooBig}); err == nil {
		t.Error("degenerate τ accepted")
	}
}

func TestEngineAppendIsIncremental(t *testing.T) {
	env := testutil.NewEnv(12, 20, 18)
	m := env.Models()[1] // EDR
	// Build over the first half, append the rest, compare against a
	// from-scratch build.
	half := m.DS.Len() / 2
	partial := &traj.Dataset{Rep: m.DS.Rep}
	for i := 0; i < half; i++ {
		partial.Add(m.DS.Trajs[i])
	}
	eng := core.NewEngine(partial, m.Costs)
	for i := half; i < m.DS.Len(); i++ {
		eng.Append(m.DS.Trajs[i])
	}
	full := core.NewEngine(m.DS, m.Costs)
	q := env.Query(m, 8)
	tau := oracleTaus(m.Costs, m.DS, q)[1]
	got, err := eng.Search(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Search(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "incremental", got, want)
}

// TestEngineEdgeRepresentationLev runs the engine over the edge
// representation with Levenshtein costs (the paper: "This can be used for
// both the vertex and edge representations").
func TestEngineEdgeRepresentationLev(t *testing.T) {
	env := testutil.NewEnv(14, 30, 20)
	lev := wed.NewLev()
	eng := core.NewEngine(env.E, lev)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 3; trial++ {
		var q []traj.Symbol
		for attempts := 0; attempts < 100; attempts++ {
			id := rng.Intn(env.E.Len())
			p := env.E.Trajs[id].Path
			if len(p) < 8 {
				continue
			}
			s := rng.Intn(len(p) - 7)
			q = append([]traj.Symbol(nil), p[s:s+8]...)
			break
		}
		if q == nil {
			t.Skip("no long-enough edge trajectory")
		}
		for _, tau := range oracleTaus(lev, env.E, q) {
			want := baselines.PlainSW(lev, env.E, q, tau).Matches
			got, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "edge-rep/Lev", got, want)
		}
	}
}

// TestEngineMatchesOracleLargerScale guards against scaling bugs
// (overflow, cache corruption across many candidates) with a dataset an
// order of magnitude larger than the other equivalence tests.
func TestEngineMatchesOracleLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-scale equivalence test skipped in -short mode")
	}
	env := testutil.NewEnv(99, 250, 40)
	for _, m := range env.Models() {
		if m.Name == "NetEDR" || m.Name == "NetERP" {
			continue // full oracle scans with hub-label Sub are slow; covered at small scale
		}
		eng := core.NewEngine(m.DS, m.Costs)
		q := env.Query(m, 16)
		tau := oracleTaus(m.Costs, m.DS, q)[1]
		want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
		got, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		assertSameMatches(t, m.Name+"/large", got, want)
	}
}

// TestMatchesAreWithinThreshold verifies the strict inequality of
// Definition 2 and that reported WEDs are exact recomputations.
func TestMatchesAreWithinThreshold(t *testing.T) {
	env := testutil.NewEnv(13, 30, 20)
	for _, m := range env.Models() {
		eng := core.NewEngine(m.DS, m.Costs)
		q := env.Query(m, 8)
		tau := oracleTaus(m.Costs, m.DS, q)[2]
		got, err := eng.Search(q, tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, mt := range got {
			if mt.WED >= tau {
				t.Fatalf("%s: match %+v at wed=%v ≥ τ=%v", m.Name, mt, mt.WED, tau)
			}
			p := m.DS.Path(mt.ID)[mt.S : mt.T+1]
			if d := wed.Dist(m.Costs, p, q); !approxEq(d, mt.WED) {
				t.Fatalf("%s: reported wed %v != recomputed %v", m.Name, mt.WED, d)
			}
		}
	}
}

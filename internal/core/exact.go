package core

import (
	"subtraj/internal/index"
	"subtraj/internal/traj"
)

// SearchExact answers the exact path query of the paper's introduction
// (references [20, 22]): find every subtrajectory that matches Q symbol
// for symbol. It is equivalent to Search with a unit-cost model and an
// infinitesimal τ but runs directly off the inverted index: candidates
// come from the postings of the *rarest* query symbol, and each candidate
// is checked by direct comparison — no dynamic programming at all.
//
// The travel-time workflows (§6.2.1) use this as the exact-match
// baseline that similarity search is compared against.
func (e *Engine) SearchExact(q []traj.Symbol) ([]traj.Match, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	// Rarest symbol minimises candidates (the MinCand intuition with
	// B(q) = {q} and c(q) uniform). Frequencies are global, so the
	// chosen symbol does not depend on the shard count.
	rarest := 0
	for i, sym := range q {
		if e.idx.Freq(sym) < e.idx.Freq(q[rarest]) {
			rarest = i
		}
	}
	var out []traj.Match
	for sh := 0; sh < e.idx.NumShards(); sh++ {
		src := e.idx.Source(sh)
		for _, post := range src.Postings(q[rarest]) {
			s := int(post.Pos) - rarest
			p := e.ds.Path(post.ID)
			if s < 0 || s+len(q) > len(p) {
				continue
			}
			if symbolsEqual(p[s:s+len(q)], q) {
				out = append(out, traj.Match{
					ID: post.ID,
					S:  int32(s),
					T:  int32(s + len(q) - 1),
				})
			}
		}
		index.ReleaseSource(src)
	}
	// Canonical result order (shard concatenation interleaves IDs).
	traj.SortMatches(out)
	return out, nil
}

func symbolsEqual(a, b []traj.Symbol) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CountExact returns the number of exact occurrences of Q — the paper's
// path popularity estimation application (§1, references [8, 20, 28]).
func (e *Engine) CountExact(q []traj.Symbol) (int, error) {
	ms, err := e.SearchExact(q)
	return len(ms), err
}

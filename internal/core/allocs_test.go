package core_test

import (
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/testutil"
)

// searchAllocBudget is the allocation-regression guard for the pooled
// query path (allocs per sequential Search, steady state). The banded
// pipeline with grouped match accumulation measures ~38 allocs/op on Lev
// (plan construction and the returned result slice dominate; verifier
// scratch, match buffers, and banded trie arenas are all pooled); the
// budget leaves headroom for benign churn while still catching a
// per-candidate or per-column allocation regression, which shows up in
// the thousands.
const searchAllocBudget = 90

func TestPooledSearchAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts change under -race")
	}
	env := testutil.NewEnv(41, 60, 24)
	m := env.Models()[0] // Lev: no spatial/network substrate allocations
	eng := core.NewEngineShards(m.DS, m.Costs, 1)
	q := env.Query(m, 8)
	tau := oracleTaus(m.Costs, m.DS, q)[1]
	search := func() {
		if _, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pools (verifier, tries, candidate buffers) before counting.
	for i := 0; i < 5; i++ {
		search()
	}
	if avg := testing.AllocsPerRun(50, search); avg > searchAllocBudget {
		t.Fatalf("sequential pooled search allocates %.1f allocs/op, budget %d", avg, searchAllocBudget)
	}
}

package core_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// oracleTopK computes the reference top-k: exhaustive per-trajectory best
// matches inside the engine's searchable radius, sorted like SearchTopK.
func oracleTopK(costs wed.FilterCosts, ds *traj.Dataset, q []traj.Symbol, k int) []traj.Match {
	ceiling := core.SumFilterCost(costs, q)
	if s := wed.SumIns(costs, q); s < ceiling {
		ceiling = s
	}
	ceiling *= 1 - 1e-12
	all := baselines.PlainSW(costs, ds, q, ceiling).Matches
	best := map[int32]traj.Match{}
	for _, m := range all {
		b, ok := best[m.ID]
		if !ok || m.WED < b.WED ||
			(m.WED == b.WED && (m.T-m.S < b.T-b.S ||
				(m.T-m.S == b.T-b.S && (m.S < b.S || (m.S == b.S && m.T < b.T))))) {
			best[m.ID] = m
		}
	}
	flat := make([]traj.Match, 0, len(best))
	for _, m := range best {
		flat = append(flat, m)
	}
	// Same ordering as SearchTopK.
	for i := 0; i < len(flat); i++ {
		for j := i + 1; j < len(flat); j++ {
			if topKLess(flat[j], flat[i]) {
				flat[i], flat[j] = flat[j], flat[i]
			}
		}
	}
	if len(flat) > k {
		flat = flat[:k]
	}
	return flat
}

func topKLess(a, b traj.Match) bool {
	if a.WED != b.WED {
		return a.WED < b.WED
	}
	la, lb := a.T-a.S, b.T-b.S
	if la != lb {
		return la < lb
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.T < b.T
}

func TestSearchTopKMatchesOracle(t *testing.T) {
	env := testutil.NewEnv(31, 35, 22)
	for _, m := range env.Models() {
		eng := core.NewEngine(m.DS, m.Costs)
		q := env.Query(m, 8)
		for _, k := range []int{1, 3, 10, 1000} {
			got, err := eng.SearchTopK(q, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", m.Name, k, err)
			}
			want := oracleTopK(m.Costs, m.DS, q, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: got %d results, want %d", m.Name, k, len(got), len(want))
			}
			for i := range got {
				// WED values must agree; exact (ID,S,T) may differ only
				// under exact WED ties, which the shared ordering rules
				// out.
				if math.Abs(got[i].WED-want[i].WED) > 1e-9*(1+want[i].WED) {
					t.Fatalf("%s k=%d rank %d: wed %v != %v", m.Name, k, i, got[i].WED, want[i].WED)
				}
				if got[i].Key() != want[i].Key() {
					t.Fatalf("%s k=%d rank %d: %+v != %+v", m.Name, k, i, got[i], want[i])
				}
			}
			// One result per trajectory.
			seen := map[int32]bool{}
			for _, r := range got {
				if seen[r.ID] {
					t.Fatalf("%s: duplicate trajectory %d in top-k", m.Name, r.ID)
				}
				seen[r.ID] = true
			}
		}
	}
}

// TestTopKEquivalence is the incremental driver's acceptance test: for
// every cost model, several k (including k = dataset size and k far
// beyond the searchable radius), and Parallelism 1 vs 4, the incremental
// driver returns the legacy restart driver's answer bit for bit — same
// (ID, S, T) order, same WED bits — and the two agree on the round
// schedule and final effective τ.
func TestTopKEquivalence(t *testing.T) {
	env := testutil.NewEnv(41, 40, 24)
	for _, m := range env.Models() {
		eng := core.NewEngineShards(m.DS, m.Costs, 4)
		q := env.Query(m, 8)
		for _, k := range []int{1, 2, 5, 10, 40, 1000} {
			legacy, lst, err := eng.SearchTopKStats(q, k, core.TopKOptions{Legacy: true, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s k=%d legacy: %v", m.Name, k, err)
			}
			if lst == nil || lst.Rounds < 1 {
				t.Fatalf("%s k=%d: legacy driver returned no stats (%+v)", m.Name, k, lst)
			}
			for _, par := range []int{1, 4} {
				got, st, err := eng.SearchTopKStats(q, k, core.TopKOptions{Parallelism: par})
				if err != nil {
					t.Fatalf("%s k=%d par=%d: %v", m.Name, k, par, err)
				}
				label := m.Name + "/topk"
				assertIdenticalResults(t, label, got, legacy)
				if st.Rounds != lst.Rounds {
					t.Fatalf("%s k=%d par=%d: %d rounds, legacy ran %d", m.Name, k, par, st.Rounds, lst.Rounds)
				}
				if st.EffectiveTau != lst.EffectiveTau {
					t.Fatalf("%s k=%d par=%d: effective τ %v, legacy %v", m.Name, k, par, st.EffectiveTau, lst.EffectiveTau)
				}
				if len(got) >= k && st.EffectiveTau != got[k-1].WED {
					t.Fatalf("%s k=%d: effective τ %v != k-th best %v", m.Name, k, st.EffectiveTau, got[k-1].WED)
				}
				if len(st.RoundCandidates) != st.Rounds {
					t.Fatalf("%s k=%d: %d per-round counts for %d rounds", m.Name, k, len(st.RoundCandidates), st.Rounds)
				}
				if want := eng.EffectiveParallelism(par); st.Workers != want {
					t.Fatalf("%s k=%d par=%d: Workers = %d, want %d", m.Name, k, par, st.Workers, want)
				}
				if st.Rounds > 1 && st.CandidatesReused == 0 && len(got) > 0 && got[0].WED == 0 {
					// A sampled query resolves its source trajectory in an
					// early round; later rounds must skip its candidates.
					t.Fatalf("%s k=%d par=%d: multi-round query reused no candidates", m.Name, k, par)
				}
			}
		}
	}
}

// TestTopKDuplicateHeavy pits both drivers against a duplicate-heavy
// alphabet (3 symbols, repeated constantly) where candidate lists are
// huge, per-trajectory match sets are dense, and WED ties are common —
// the adversarial case for the tightening and reuse logic.
func TestTopKDuplicateHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := traj.NewDataset(traj.VertexRep)
	for i := 0; i < 30; i++ {
		p := make([]traj.Symbol, 10+rng.Intn(20))
		for j := range p {
			p[j] = traj.Symbol(rng.Intn(3))
		}
		ds.Add(traj.Trajectory{Path: p})
	}
	costs := wed.NewLev()
	eng := core.NewEngineShards(ds, costs, 4)
	q := []traj.Symbol{0, 1, 0, 0, 2, 1, 0, 1}
	for _, k := range []int{1, 3, 10, 30} {
		want := oracleTopK(costs, ds, q, k)
		legacy, _, err := eng.SearchTopKStats(q, k, core.TopKOptions{Legacy: true})
		if err != nil {
			t.Fatalf("legacy k=%d: %v", k, err)
		}
		for _, par := range []int{1, 4} {
			got, _, err := eng.SearchTopKStats(q, k, core.TopKOptions{Parallelism: par})
			if err != nil {
				t.Fatalf("k=%d par=%d: %v", k, par, err)
			}
			assertIdenticalResults(t, "dup/legacy-vs-incremental", got, legacy)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, oracle found %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].Key() != want[i].Key() || math.Abs(got[i].WED-want[i].WED) > 1e-9 {
					t.Fatalf("k=%d rank %d: %+v, oracle %+v", k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchTopKEdgeCases(t *testing.T) {
	env := testutil.NewEnv(32, 10, 12)
	m := env.Models()[0]
	eng := core.NewEngine(m.DS, m.Costs)
	q := env.Query(m, 5)
	if res, err := eng.SearchTopK(q, 0); err != nil || res != nil {
		t.Fatalf("k=0: %v, %v", res, err)
	}
	if _, err := eng.SearchTopK(nil, 3); err == nil {
		t.Fatal("empty query accepted")
	}
	// k=1 must return the globally best match, which for a sampled
	// query is an exact occurrence.
	res, err := eng.SearchTopK(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].WED != 0 {
		t.Fatalf("k=1: %+v", res)
	}
}

package core_test

import (
	"math"
	"testing"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// oracleTopK computes the reference top-k: exhaustive per-trajectory best
// matches inside the engine's searchable radius, sorted like SearchTopK.
func oracleTopK(costs wed.FilterCosts, ds *traj.Dataset, q []traj.Symbol, k int) []traj.Match {
	ceiling := core.SumFilterCost(costs, q)
	if s := wed.SumIns(costs, q); s < ceiling {
		ceiling = s
	}
	ceiling *= 1 - 1e-12
	all := baselines.PlainSW(costs, ds, q, ceiling).Matches
	best := map[int32]traj.Match{}
	for _, m := range all {
		b, ok := best[m.ID]
		if !ok || m.WED < b.WED ||
			(m.WED == b.WED && (m.T-m.S < b.T-b.S ||
				(m.T-m.S == b.T-b.S && (m.S < b.S || (m.S == b.S && m.T < b.T))))) {
			best[m.ID] = m
		}
	}
	flat := make([]traj.Match, 0, len(best))
	for _, m := range best {
		flat = append(flat, m)
	}
	// Same ordering as SearchTopK.
	for i := 0; i < len(flat); i++ {
		for j := i + 1; j < len(flat); j++ {
			if topKLess(flat[j], flat[i]) {
				flat[i], flat[j] = flat[j], flat[i]
			}
		}
	}
	if len(flat) > k {
		flat = flat[:k]
	}
	return flat
}

func topKLess(a, b traj.Match) bool {
	if a.WED != b.WED {
		return a.WED < b.WED
	}
	la, lb := a.T-a.S, b.T-b.S
	if la != lb {
		return la < lb
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.T < b.T
}

func TestSearchTopKMatchesOracle(t *testing.T) {
	env := testutil.NewEnv(31, 35, 22)
	for _, m := range env.Models() {
		eng := core.NewEngine(m.DS, m.Costs)
		q := env.Query(m, 8)
		for _, k := range []int{1, 3, 10, 1000} {
			got, err := eng.SearchTopK(q, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", m.Name, k, err)
			}
			want := oracleTopK(m.Costs, m.DS, q, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: got %d results, want %d", m.Name, k, len(got), len(want))
			}
			for i := range got {
				// WED values must agree; exact (ID,S,T) may differ only
				// under exact WED ties, which the shared ordering rules
				// out.
				if math.Abs(got[i].WED-want[i].WED) > 1e-9*(1+want[i].WED) {
					t.Fatalf("%s k=%d rank %d: wed %v != %v", m.Name, k, i, got[i].WED, want[i].WED)
				}
				if got[i].Key() != want[i].Key() {
					t.Fatalf("%s k=%d rank %d: %+v != %+v", m.Name, k, i, got[i], want[i])
				}
			}
			// One result per trajectory.
			seen := map[int32]bool{}
			for _, r := range got {
				if seen[r.ID] {
					t.Fatalf("%s: duplicate trajectory %d in top-k", m.Name, r.ID)
				}
				seen[r.ID] = true
			}
		}
	}
}

func TestSearchTopKEdgeCases(t *testing.T) {
	env := testutil.NewEnv(32, 10, 12)
	m := env.Models()[0]
	eng := core.NewEngine(m.DS, m.Costs)
	q := env.Query(m, 5)
	if res, err := eng.SearchTopK(q, 0); err != nil || res != nil {
		t.Fatalf("k=0: %v, %v", res, err)
	}
	if _, err := eng.SearchTopK(nil, 3); err == nil {
		t.Fatal("empty query accepted")
	}
	// k=1 must return the globally best match, which for a sampled
	// query is an exact occurrence.
	res, err := eng.SearchTopK(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].WED != 0 {
		t.Fatalf("k=1: %+v", res)
	}
}

// Package core assembles the paper's primary contribution: the
// filter-and-verify subtrajectory similarity search engine of Algorithm 2.
// A query (Q, wed, τ) is answered by (1) choosing an optimised
// τ-subsequence with MinCand, (2) generating candidates from the inverted
// index over the substitution neighbourhoods, and (3) verifying candidates
// locally with bidirectional tries. Temporal constraints (§4.3) are
// supported both as a candidate-level pre-filter (TF) and as exact
// post-verification checks.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
)

// Engine is an immutable-once-built search engine over one dataset and one
// cost model. Building is O(total symbols); queries never mutate shared
// engine state, so an Engine is safe for concurrent readers — with two
// caveats callers that want concurrency must handle (the server package's
// SafeEngine does):
//
//   - Append mutates the dataset and the inverted index and must be
//     serialized against every concurrent query.
//   - A TemporalDeparture query with the pre-filter enabled lazily builds
//     the departure-sorted postings on first use (a hidden write under a
//     read path). Call PrepareTemporal before going concurrent, or
//     serialize such queries until TemporalReady reports true. Once the
//     backend's order IS built, re-running the build is a read-only
//     no-op (every backend skips already-sorted partitions), and the
//     staleness flag itself is atomic — so concurrent TemporalDeparture
//     queries against an already-prepared engine are plain reads.
//
// Cost models are a third mutation surface: MemoNetDist (used by NetEDR /
// NetERP) caches distances internally and synchronizes itself, but
// user-supplied cost models must be safe for concurrent use — note that a
// single query with Parallelism > 1 already calls the verification costs
// (Sub/Ins/Del) from several goroutines.
type Engine struct {
	ds    *traj.Dataset
	idx   index.Backend
	costs wed.FilterCosts

	// BuildTime records index construction time (Table 6).
	BuildTime time.Duration

	// temporalBuilt tracks whether the backend's departure-sorted order
	// is current. Atomic so that concurrent queries against an engine
	// whose order is already built (the epoch-snapshot server publishes
	// only such engines) may race on the flag without a data race; the
	// build itself still needs external serialization the first time.
	temporalBuilt atomic.Bool
}

// NewEngine indexes the dataset into index.DefaultShards() partitions.
func NewEngine(ds *traj.Dataset, costs wed.FilterCosts) *Engine {
	return NewEngineShards(ds, costs, 0)
}

// NewEngineShards indexes the dataset into the given number of trajectory
// shards (0 = index.DefaultShards()). The shard count bounds how many
// workers one query's Parallelism can use; results are identical at every
// shard count.
func NewEngineShards(ds *traj.Dataset, costs wed.FilterCosts, shards int) *Engine {
	start := time.Now()
	sidx := index.BuildSharded(ds, shards)
	return &Engine{ds: ds, idx: sidx, costs: costs, BuildTime: time.Since(start)}
}

// NewEngineWithIndex wraps a prebuilt flat index as a single-shard engine
// (used by dataset-size sweeps that share one index build).
func NewEngineWithIndex(ds *traj.Dataset, inv *index.Inverted, costs wed.FilterCosts) *Engine {
	return &Engine{ds: ds, idx: index.ShardedFromInverted(inv), costs: costs}
}

// NewEngineCompact indexes the dataset into the memory-optimal compact
// backend: the postings are frozen into one flat bit-packed arena (an
// index.Overlay with an empty mutable tail for later appends). Queries
// return results bit-equal to the pointer backend; memory drops by the
// arena-vs-pointer ratio benchall reports.
func NewEngineCompact(ds *traj.Dataset, costs wed.FilterCosts) *Engine {
	start := time.Now()
	idx := index.NewOverlay(index.FreezeDataset(ds))
	return &Engine{ds: ds, idx: idx, costs: costs, BuildTime: time.Since(start)}
}

// NewEngineWithBackend wraps any prebuilt index backend — e.g. an
// index.Overlay around a snapshot from index.OpenMapped. The backend must
// describe exactly ds's trajectories.
func NewEngineWithBackend(ds *traj.Dataset, idx index.Backend, costs wed.FilterCosts) *Engine {
	return &Engine{ds: ds, idx: idx, costs: costs}
}

// Dataset returns the indexed dataset.
func (e *Engine) Dataset() *traj.Dataset { return e.ds }

// Backend returns the index backend.
func (e *Engine) Backend() index.Backend { return e.idx }

// IndexBytes returns the backend's memory footprint (exact for compact
// arenas, a heap estimate for pointer backends).
func (e *Engine) IndexBytes() int64 { return e.idx.IndexBytes() }

// IndexKind names the backend family ("pointer" or "compact").
func (e *Engine) IndexKind() string { return e.idx.Kind() }

// NumShards returns the index partition count — the ceiling on one
// query's effective parallelism.
func (e *Engine) NumShards() int { return e.idx.NumShards() }

// Costs returns the cost model.
func (e *Engine) Costs() wed.FilterCosts { return e.costs }

// Append indexes one more trajectory (incremental update, §4.1).
func (e *Engine) Append(t traj.Trajectory) int32 {
	id := e.ds.Add(t)
	e.idx.Append(id, e.ds.Get(id))
	e.temporalBuilt.Store(false) // departure-sorted postings are stale
	return id
}

// ensureTemporalIndex builds the departure-sorted postings on first use
// (and after appends invalidate them).
func (e *Engine) ensureTemporalIndex() {
	if !e.temporalBuilt.Load() {
		e.idx.BuildTemporal()
		e.temporalBuilt.Store(true)
	}
}

// PrepareTemporal eagerly builds the departure-sorted postings index that
// TemporalDeparture pre-filters binary-search (§4.3). Concurrent callers
// use it to hoist the otherwise-lazy build out of the read path: call it
// (serialized with writers) whenever TemporalReady is false.
func (e *Engine) PrepareTemporal() { e.ensureTemporalIndex() }

// TemporalReady reports whether the departure-sorted postings are current
// (built and not invalidated by a later Append). While it is true,
// TemporalDeparture queries are read-only like every other query.
func (e *Engine) TemporalReady() bool { return e.temporalBuilt.Load() }

// QueryStats instruments one query with the Table 4 breakdown and the
// filtering/verification metrics of §6.4. Under a parallel query the
// per-shard stats are merged in: durations are summed (total work per
// phase, the Table 4 semantics — wall time is smaller when Parallelism
// spreads that work over several workers), counters are summed, and
// Shards/Workers record the pipeline shape.
type QueryStats struct {
	// MinCandTime, LookupTime, VerifyTime decompose the query (Table 4).
	MinCandTime time.Duration
	LookupTime  time.Duration
	VerifyTime  time.Duration
	// SubseqLen is |Q'|.
	SubseqLen int
	// CSum is c(Q') ≥ τ.
	CSum float64
	// Candidates is |C|, the verified candidate count (Figure 11).
	Candidates int
	// Verify carries UPR/CMR/TUR counters (Table 5) plus the cell-level
	// band counters (CellsComputed/CellsAvailable) of the τ-banded
	// verification. StepDPCalls, TrieNodes, and the cell counters may
	// exceed the sequential run's at Parallelism > 1: each shard worker
	// has its own trie cache, so columns shared across shards are
	// recomputed per shard. Matches/Candidates never differ, and the
	// CellsComputed/CellsAvailable ratio stays representative at every
	// shard count.
	Verify verify.Stats
	// Shards is the number of index partitions this query scanned;
	// Workers is the number of shard workers that processed them
	// (min(Parallelism, Shards); 1 on the sequential path).
	Shards, Workers int

	// The remaining fields are produced only by the top-k drivers
	// (SearchTopKStats); they stay zero for plain searches.
	//
	// Rounds is the number of threshold-growing rounds the driver ran;
	// RoundCandidates records each round's enumerated candidate count
	// (before any cross-round skipping), and RoundTime each round's
	// wall-clock duration (plan + filter + verify) — the per-round span
	// breakdown the observability layer renders under top-k traces.
	Rounds          int
	RoundCandidates []int
	RoundTime       []time.Duration
	// CandidatesReused counts candidates enumerated in a later round but
	// skipped because their trajectory's best match was already resolved
	// in an earlier round — the cross-round work reuse of the
	// incremental driver (always 0 for the legacy restart driver).
	// Candidates, by contrast, counts only candidates actually verified.
	CandidatesReused int
	// EffectiveTau is the driver's final effective threshold: the radius
	// below which the reported answer is provably complete. Once k
	// trajectories resolve this is the k-th best WED (dynamic
	// tightening); otherwise it is the last round's τ (the feasibility
	// ceiling when the searchable radius was exhausted).
	EffectiveTau float64
}

// TemporalMode selects the §4.3 constraint form.
type TemporalMode uint8

const (
	// TemporalNone applies no temporal constraint.
	TemporalNone TemporalMode = iota
	// TemporalOverlap keeps matches with [T_s, T_t] ∩ I ≠ ∅.
	TemporalOverlap
	// TemporalContain keeps matches with [T_s, T_t] ⊆ I.
	TemporalContain
	// TemporalDeparture keeps matches of trajectories departing inside
	// I (T_1 ∈ I). Its pre-filter is the binary search on
	// departure-sorted postings lists that §4.3 describes.
	TemporalDeparture
)

// Query bundles the search arguments of Definition 3 plus options.
type Query struct {
	Q   []traj.Symbol
	Tau float64
	// Ctx, when non-nil, cancels the query cooperatively: the engine
	// checks it between candidate groups in the verify loops (sequential
	// and per shard worker) and between top-k τ-growth rounds, returning
	// an error wrapping ctx.Err() — a slow query under a server deadline
	// stops within one trajectory group's verification instead of
	// running to completion. nil means run to completion.
	Ctx context.Context
	// Verify selects the verification mode/ablations; zero value = BT.
	Verify verify.Options
	// Parallelism caps the number of shard workers verifying this query:
	// 0 = auto (min(GOMAXPROCS, shard count)), 1 = the sequential path
	// (one verifier, trie cache shared across every candidate — the
	// pre-sharding behavior), N > 1 = up to N workers, one index shard
	// per task. Every setting returns the identical sorted match set with
	// identical WED values and candidate counts; only throughput and the
	// cache-sharing stats differ.
	Parallelism int
	// Temporal constrains matches to the window [Lo, Hi] under Mode.
	Temporal struct {
		Mode   TemporalMode
		Lo, Hi float64
		// DisablePrefilter skips the candidate-level interval prune
		// (the paper's "no-TF" configuration of Figure 12), checking
		// the constraint only after verification.
		DisablePrefilter bool
	}
}

// ErrEmptyQuery is returned for zero-length queries.
var ErrEmptyQuery = errors.New("core: empty query")

// ctxErr maps a context's cancellation into the engine's error space.
// A nil context (the default for library callers) never cancels. The
// returned error wraps ctx.Err(), so errors.Is(err,
// context.DeadlineExceeded) / context.Canceled hold and servers can map
// deadline expiry to 504.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: search canceled: %w", err)
	}
	return nil
}

// ErrTauTooLarge is wrapped by SearchQuery when τ > wed(ε, Q): beyond that
// threshold the empty subtrajectory "matches" and the problem is ill-posed
// (§2.3). Like filter.ErrInfeasible it marks a caller error — the query
// parameters, not the engine, are at fault — so servers map it to a 4xx.
var ErrTauTooLarge = errors.New("core: τ exceeds wed(ε, Q)")

// Search answers the subtrajectory similarity search of Definition 3 with
// default options. Matches are sorted by (ID, S, T) — every search path
// returns this canonical order (see traj.SortMatches), so repeated runs
// and different Parallelism settings are byte-for-byte comparable.
func (e *Engine) Search(q []traj.Symbol, tau float64) ([]traj.Match, error) {
	res, _, err := e.SearchQuery(Query{Q: q, Tau: tau})
	return res, err
}

// SearchQuery answers a fully specified query and returns instrumentation.
func (e *Engine) SearchQuery(qr Query) ([]traj.Match, *QueryStats, error) {
	if len(qr.Q) == 0 {
		return nil, nil, ErrEmptyQuery
	}
	if wed.SumIns(e.costs, qr.Q) < qr.Tau {
		// Guard of §2.3: otherwise the empty subtrajectory "matches"
		// and the problem is ill-posed.
		return nil, nil, fmt.Errorf("%w: τ = %g, wed(ε, Q) = %g; query would match empty subtrajectories", ErrTauTooLarge, qr.Tau, wed.SumIns(e.costs, qr.Q))
	}
	stats := &QueryStats{Shards: e.idx.NumShards()}

	start := time.Now()
	plan, err := filter.BuildPlan(e.costs, e.idx, qr.Q, qr.Tau)
	stats.MinCandTime = time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	stats.SubseqLen = len(plan.Subseq)
	stats.CSum = plan.CSum

	temporal := qr.Temporal.Mode != TemporalNone
	if temporal && !qr.Temporal.DisablePrefilter && qr.Temporal.Mode == TemporalDeparture {
		e.ensureTemporalIndex()
	}

	if err := ctxErr(qr.Ctx); err != nil {
		return nil, nil, err
	}
	workers := e.EffectiveParallelism(qr.Parallelism)
	stats.Workers = workers
	var res []traj.Match
	if workers <= 1 {
		res, err = e.runSequential(&qr, plan, stats)
	} else {
		res, err = e.runSharded(&qr, plan, workers, stats)
	}
	if err != nil {
		return nil, nil, err
	}
	if temporal {
		res = e.applyTemporal(res, qr.Temporal.Mode, qr.Temporal.Lo, qr.Temporal.Hi)
	}
	stats.Verify.Matches = len(res)
	return res, stats, nil
}

// applyTemporal keeps matches satisfying the exact constraint on the
// matched span's timestamps.
func (e *Engine) applyTemporal(res []traj.Match, mode TemporalMode, lo, hi float64) []traj.Match {
	out := res[:0]
	for _, m := range res {
		ts, te, ok := e.matchSpan(m)
		if !ok {
			continue // no temporal data: cannot satisfy a temporal constraint
		}
		keep := false
		switch mode {
		case TemporalOverlap:
			keep = ts <= hi && te >= lo
		case TemporalContain:
			keep = ts >= lo && te <= hi
		case TemporalDeparture:
			dep, ok := e.ds.Get(m.ID).Departure()
			keep = ok && dep >= lo && dep <= hi
		}
		if keep {
			out = append(out, m)
		}
	}
	return out
}

// matchSpan returns the [T_s, T_t] interval of a match. Under edge
// representation the matched edges span vertices S..T+1.
func (e *Engine) matchSpan(m traj.Match) (lo, hi float64, ok bool) {
	t := e.ds.Get(m.ID)
	if len(t.Times) == 0 {
		return 0, 0, false
	}
	s, x := int(m.S), int(m.T)
	if e.ds.Rep == traj.EdgeRep {
		x++
	}
	if x >= len(t.Times) {
		x = len(t.Times) - 1
	}
	return t.Times[s], t.Times[x], true
}

// SumFilterCost returns c(Q) = Σ c(q): the scale used to derive τ from the
// paper's τ_ratio (τ := τ_ratio · Σ c(q)).
func SumFilterCost(costs wed.FilterCosts, q []traj.Symbol) float64 {
	var s float64
	for _, sym := range q {
		s += costs.FilterCost(sym)
	}
	return s
}

package core

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
)

// This file implements the top-k protocol of the paper's effectiveness
// experiments (§6.2.1, Table 3): for the k data trajectories most similar
// to the query, return each trajectory's best subtrajectory match
// (smallest WED, ties broken by shortest span, then ID and position),
// ordered by ascending WED.
//
// Two drivers answer it:
//
//   - The incremental driver (default) grows τ geometrically like the
//     restart driver but carries state across rounds: a per-trajectory
//     best-match table (every trajectory that produces a match at some τ
//     has its *exact* best — the search reports all matches under τ, so
//     the minimum is final), a resolved set so later rounds skip those
//     trajectories' candidates entirely, one verifier whose scratch
//     arenas persist across rounds (Reset, not reallocation), and
//     dynamic threshold tightening: once the table holds k entries, the
//     remaining trajectory groups of the round are verified under
//     nextafter(k-th best WED) instead of the round τ, so the final
//     round shrinks toward the answer instead of exploding toward the
//     feasibility ceiling.
//
//   - The legacy restart driver (TopKOptions.Legacy) re-runs the whole
//     filter-and-verify pipeline from scratch each round. It is kept as
//     the equivalence baseline: both drivers return bit-equal results
//     (TestTopKEquivalence), because tightening only ever suppresses
//     matches that provably cannot enter the top-k (see the invariant
//     note on topkState).

// TopKOptions tunes SearchTopKStats; the zero value is the incremental
// driver with automatic parallelism.
type TopKOptions struct {
	// Parallelism caps the shard workers of each round, exactly like
	// Query.Parallelism (0 = auto, 1 = sequential). Every setting — and
	// both drivers — return the identical result slice.
	Parallelism int
	// Legacy selects the restart driver: each round is an independent
	// full SearchQuery. Slower (no carried state, no tightening) but
	// maximally simple; kept as the correctness baseline the incremental
	// driver is cross-checked against.
	Legacy bool
	// Ctx cancels the driver cooperatively between τ-growth rounds and
	// between trajectory groups inside a round's verify loops (see
	// Query.Ctx). nil means run to completion.
	Ctx context.Context
}

// SearchTopK returns, for the k data trajectories most similar to the
// query, each trajectory's best subtrajectory match, ordered by ascending
// WED (ties by span, ID, position).
//
// The search grows the threshold geometrically until k trajectories are
// found or the feasibility ceiling τ ≤ min(c(Q), wed(ε, Q)) is reached —
// beyond that ceiling the subsequence filter cannot prune (no
// τ-subsequence exists), which bounds the similarity radius this index
// can answer exactly; trajectories farther away than the ceiling are not
// reported.
func (e *Engine) SearchTopK(q []traj.Symbol, k int) ([]traj.Match, error) {
	res, _, err := e.SearchTopKStats(q, k, TopKOptions{})
	return res, err
}

// SearchTopKP is SearchTopK with an explicit shard-parallelism cap for
// the underlying threshold-growing rounds (0 = auto; see
// Query.Parallelism). Callers that meter concurrency — the server's
// shared worker budget — pass the parallelism they reserved.
func (e *Engine) SearchTopKP(q []traj.Symbol, k, parallelism int) ([]traj.Match, error) {
	res, _, err := e.SearchTopKStats(q, k, TopKOptions{Parallelism: parallelism})
	return res, err
}

// SearchTopKStats answers the top-k protocol and returns the driver's
// merged QueryStats: per-phase durations and verification counters summed
// over every round, Rounds/RoundCandidates/CandidatesReused describing
// the round schedule, and EffectiveTau — the radius below which the
// answer is provably complete (the k-th best WED once k trajectories
// resolved, the last searched τ otherwise).
func (e *Engine) SearchTopKStats(q []traj.Symbol, k int, opts TopKOptions) ([]traj.Match, *QueryStats, error) {
	if len(q) == 0 {
		return nil, nil, ErrEmptyQuery
	}
	if k <= 0 {
		return nil, &QueryStats{Shards: e.idx.NumShards()}, nil
	}
	if opts.Legacy {
		return e.searchTopKLegacy(q, k, opts)
	}
	return e.searchTopKIncremental(q, k, opts)
}

// topKCeiling returns the feasibility ceiling min(c(Q), wed(ε, Q)),
// nudged below: strict < in Definition 2 means τ = ceiling exactly may
// still be feasible, and the filter needs c(Q) ≥ τ to stay applicable.
func (e *Engine) topKCeiling(q []traj.Symbol) float64 {
	ceiling := SumFilterCost(e.costs, q)
	if s := wed.SumIns(e.costs, q); s < ceiling {
		ceiling = s
	}
	return ceiling * (1 - 1e-12)
}

// topKStartTau is the first round's threshold; rounds grow by topKGrowth
// until the ceiling. Both drivers share the schedule so their round
// boundaries — and therefore their results — line up exactly.
const (
	topKStartDiv = 64
	topKGrowth   = 4
)

// --- incremental driver --------------------------------------------------

// topkState is the cross-round state of the incremental driver: the ≤ k
// best resolved per-trajectory matches and the set of every resolved
// trajectory. It is shared by the shard workers of a round (mutex), and
// the final result is order-independent:
//
// Invariant: the table only ever holds *exact* per-trajectory bests, and
// its worst entry only ever improves. A trajectory group verified under
// bound b = nextafter(worst WED) either yields its true best (if that
// best < b, every match under b is enumerated, so the minimum is exact)
// or yields nothing / a value ≥ b — and a best ≥ b exceeds the current
// worst, which already exceeds the final k-th best, so the trajectory
// could never have entered the top-k anyway. Offers race-safely
// re-check against the table under the lock, so a stale (too-large)
// bound read can only admit extra verification work, never a wrong
// entry. Hence every worker interleaving — including the sequential
// one — converges on the unique k-minimum under the total (WED, span,
// ID, S, T) order.
type topkState struct {
	k  int
	mu sync.Mutex
	// best holds the up-to-k best resolved matches (unordered); worst
	// indexes its maximum by topKLess once len(best) == k.
	best  []traj.Match
	worst int
	// resolved marks trajectories whose exact best is known (admitted to
	// the table at least once); later rounds skip their candidates.
	resolved map[int32]bool
	// full mirrors len(best) == k without the lock, letting the hot
	// bound() fast-path skip locking until tightening can matter.
	full atomic.Bool
}

func newTopKState(k int) *topkState {
	return &topkState{k: k, resolved: make(map[int32]bool)}
}

// isResolved reports whether id's best match is already known. Reads
// race only with inserts of *other* trajectories (a trajectory's
// candidates form one group processed by one worker), so the lock just
// orders map access.
func (st *topkState) isResolved(id int32) bool {
	st.mu.Lock()
	r := st.resolved[id]
	st.mu.Unlock()
	return r
}

// bound returns the current effective verification threshold for a
// trajectory group: the round τ until the table is full, then
// nextafter(worst WED) — strictly above the worst so exact WED ties are
// still enumerated and tie-broken by span/ID — capped at the round τ
// (trie bands are built for the round τ; see verify.VerifyAt).
func (st *topkState) bound(tauRound float64) float64 {
	if !st.full.Load() {
		return tauRound
	}
	st.mu.Lock()
	b := math.Nextafter(st.best[st.worst].WED, math.Inf(1))
	st.mu.Unlock()
	if b > tauRound {
		b = tauRound
	}
	return b
}

// offer records trajectory m.ID as resolved with exact best m and admits
// m to the table if it beats the current worst entry.
func (st *topkState) offer(m traj.Match) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.resolved[m.ID] = true
	if len(st.best) < st.k {
		st.best = append(st.best, m)
		if len(st.best) == st.k {
			st.refreshWorst()
			st.full.Store(true)
		}
		return
	}
	if topKLess(m, st.best[st.worst]) {
		st.best[st.worst] = m
		st.refreshWorst()
	}
}

func (st *topkState) refreshWorst() {
	w := 0
	for i := 1; i < len(st.best); i++ {
		if topKLess(st.best[w], st.best[i]) {
			w = i
		}
	}
	st.worst = w
}

// sorted returns the table ordered by (WED, span, ID, S, T).
func (st *topkState) sorted() []traj.Match {
	out := make([]traj.Match, len(st.best))
	copy(out, st.best)
	sort.Slice(out, func(i, j int) bool { return topKLess(out[i], out[j]) })
	return out
}

func (e *Engine) searchTopKIncremental(q []traj.Symbol, k int, opts TopKOptions) ([]traj.Match, *QueryStats, error) {
	ceiling := e.topKCeiling(q)
	tau := ceiling / topKStartDiv
	st := newTopKState(k)
	workers := e.EffectiveParallelism(opts.Parallelism)
	stats := &QueryStats{Shards: e.idx.NumShards(), Workers: workers}

	// The sequential path holds one verifier across every round: Reset
	// re-banding it to each round's τ keeps the trie arenas, match
	// buffers, and DP scratch instead of cycling them through the pool.
	var ver *verify.Verifier
	defer func() {
		if ver != nil {
			verify.Put(ver)
		}
	}()

	//subtrajlint:hotloop
	for {
		// Round boundaries are the coarse cancellation points: a
		// deadline that fires mid-search skips every remaining τ-growth
		// round (the finer-grained group checks inside the round loops
		// bound the residual latency).
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, nil, err
		}
		roundStart := time.Now()
		start := roundStart
		plan, err := filter.BuildPlan(e.costs, e.idx, q, tau)
		stats.MinCandTime += time.Since(start)
		if err != nil {
			return nil, nil, err
		}
		stats.SubseqLen, stats.CSum = len(plan.Subseq), plan.CSum
		stats.Rounds++

		if workers <= 1 {
			if ver == nil {
				ver = verify.Get(e.costs, e.ds, q, tau, verify.Options{})
			} else {
				ver.Reset(e.costs, e.ds, q, tau, verify.Options{})
			}
			err = e.topKRoundSequential(opts.Ctx, plan, tau, st, ver, stats)
		} else {
			err = e.topKRoundSharded(opts.Ctx, q, plan, tau, workers, st, stats)
		}
		if err != nil {
			return nil, nil, err
		}
		stats.RoundTime = append(stats.RoundTime, time.Since(roundStart))

		if st.full.Load() {
			// k exact bests are known and every unresolved trajectory's
			// best exceeds the table's worst: the answer is final.
			break
		}
		if tau >= ceiling {
			break // fewer than k trajectories inside the searchable radius
		}
		tau *= topKGrowth
		if tau > ceiling {
			tau = ceiling
		}
	}

	res := st.sorted()
	stats.Verify.Matches = len(res)
	stats.EffectiveTau = tau
	if len(res) >= k && k > 0 {
		stats.EffectiveTau = res[k-1].WED
	}
	return res, stats, nil
}

// topKRoundSequential runs one round on the caller's goroutine with the
// cross-round verifier.
func (e *Engine) topKRoundSequential(ctx context.Context, plan *filter.Plan, tau float64, st *topkState, ver *verify.Verifier, stats *QueryStats) error {
	start := time.Now()
	buf := getCandBuf()
	cands := *buf
	defer func() { *buf = cands; candBufs.Put(buf) }()
	for s := 0; s < e.idx.NumShards(); s++ {
		src := e.idx.Source(s)
		cands = plan.Candidates(src, cands)
		index.ReleaseSource(src)
	}
	filter.GroupByTrajectory(cands)
	stats.LookupTime += time.Since(start)
	stats.RoundCandidates = append(stats.RoundCandidates, len(cands))

	start = time.Now()
	verified, skipped, err := verifyTopKGroups(ctx, ver, cands, st, tau)
	stats.VerifyTime += time.Since(start)
	stats.Candidates += verified
	stats.CandidatesReused += skipped
	stats.Verify.Add(ver.SnapshotStats())
	return err
}

// topKRoundSharded fans one round's shards over `workers` goroutines
// sharing the cross-round state. Workers read the tightening bound from
// st per trajectory group; the final table is order-independent (see
// topkState), so Parallelism 1 vs N stay bit-equal even though the
// per-round work counters may differ with scheduling.
func (e *Engine) topKRoundSharded(ctx context.Context, q []traj.Symbol, plan *filter.Plan, tau float64, workers int, st *topkState, stats *QueryStats) error {
	numShards := e.idx.NumShards()
	outs := make([]topkShardOut, numShards)
	fanOutShards(numShards, workers, func(s int) {
		outs[s] = e.topKRunShard(ctx, q, plan, tau, s, st)
	})

	var enumerated int
	for s := range outs {
		o := &outs[s]
		if o.err != nil {
			return o.err
		}
		enumerated += o.enumerated
		stats.LookupTime += o.lookup
		stats.VerifyTime += o.verify
		stats.Candidates += o.verified
		stats.CandidatesReused += o.skipped
		stats.Verify.Add(o.vstats)
	}
	stats.RoundCandidates = append(stats.RoundCandidates, enumerated)
	return nil
}

// topkShardOut is one shard task's contribution to a round.
type topkShardOut struct {
	lookup, verify    time.Duration
	enumerated        int
	verified, skipped int
	vstats            verify.Stats
	err               error
}

func (e *Engine) topKRunShard(ctx context.Context, q []traj.Symbol, plan *filter.Plan, tau float64, s int, st *topkState) topkShardOut {
	var out topkShardOut
	start := time.Now()
	buf := getCandBuf()
	src := e.idx.Source(s)
	cands := plan.Candidates(src, *buf)
	// Deferred so a panicking worker (re-raised by fanOutShards) cannot
	// leak the buffer or the pooled verifier.
	defer func() { *buf = cands; candBufs.Put(buf) }()
	index.ReleaseSource(src)
	filter.GroupByTrajectory(cands)
	out.lookup = time.Since(start)
	out.enumerated = len(cands)

	start = time.Now()
	ver := verify.Get(e.costs, e.ds, q, tau, verify.Options{})
	defer verify.Put(ver)
	out.verified, out.skipped, out.err = verifyTopKGroups(ctx, ver, cands, st, tau)
	out.vstats = ver.SnapshotStats()
	out.verify = time.Since(start)
	return out
}

// verifyTopKGroups walks a trajectory-grouped candidate stream: resolved
// trajectories are skipped wholesale (their exact best is carried from an
// earlier round), every other group is verified under the current
// tightened bound and its best match offered to the table.
func verifyTopKGroups(ctx context.Context, ver *verify.Verifier, cands []filter.Candidate, st *topkState, tauRound float64) (verified, skipped int, err error) {
	//subtrajlint:hotloop
	for i := 0; i < len(cands); {
		if err = ctxErr(ctx); err != nil {
			return verified, skipped, err
		}
		id := cands[i].ID
		j := i + 1
		for j < len(cands) && cands[j].ID == id {
			j++
		}
		if st.isResolved(id) {
			skipped += j - i
			i = j
			continue
		}
		tauEff := st.bound(tauRound)
		for _, c := range cands[i:j] {
			ver.VerifyAt(verify.Candidate{ID: c.ID, Pos: c.Pos, IQ: c.IQ}, tauEff)
		}
		verified += j - i
		if m, ok := ver.TakeBest(); ok {
			st.offer(m)
		}
		i = j
	}
	return verified, skipped, nil
}

// --- legacy restart driver ----------------------------------------------

// searchTopKLegacy is the restart driver: every round is an independent
// SearchQuery over the full pipeline. Per-round stats are merged so the
// baseline is observable too, but there is no carried state and no
// tightening — CandidatesReused is always 0.
func (e *Engine) searchTopKLegacy(q []traj.Symbol, k int, opts TopKOptions) ([]traj.Match, *QueryStats, error) {
	ceiling := e.topKCeiling(q)
	tau := ceiling / topKStartDiv
	merged := &QueryStats{Shards: e.idx.NumShards()}
	for {
		roundStart := time.Now()
		res, st, err := e.SearchQuery(Query{Q: q, Tau: tau, Parallelism: opts.Parallelism, Ctx: opts.Ctx})
		if err != nil {
			return nil, nil, err
		}
		merged.RoundTime = append(merged.RoundTime, time.Since(roundStart))
		merged.MinCandTime += st.MinCandTime
		merged.LookupTime += st.LookupTime
		merged.VerifyTime += st.VerifyTime
		merged.SubseqLen, merged.CSum = st.SubseqLen, st.CSum
		merged.Candidates += st.Candidates
		merged.RoundCandidates = append(merged.RoundCandidates, st.Candidates)
		merged.Verify.Add(st.Verify)
		merged.Workers = st.Workers
		merged.Rounds++
		best := bestPerTrajectoryOrdered(res)
		done := len(best) >= k || tau >= ceiling
		if len(best) > k {
			best = best[:k]
		}
		if done {
			merged.Verify.Matches = len(best)
			merged.EffectiveTau = tau
			if len(best) >= k && k > 0 {
				merged.EffectiveTau = best[k-1].WED
			}
			return best, merged, nil
		}
		tau *= topKGrowth
		if tau > ceiling {
			tau = ceiling
		}
	}
}

// topKLess is the top-k result order: ascending WED, then span length,
// then (ID, S, T). Total over distinct trajectories, which makes the
// k-minimum set — and both drivers' output — unique.
func topKLess(a, b traj.Match) bool {
	if a.WED != b.WED {
		return a.WED < b.WED
	}
	la, lb := a.T-a.S, b.T-b.S
	if la != lb {
		return la < lb
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.T < b.T
}

// bestPerTrajectoryOrdered reduces matches to one per trajectory and
// orders them by (WED, span length, ID, S) — the legacy driver's
// per-round reduction.
func bestPerTrajectoryOrdered(ms []traj.Match) []traj.Match {
	best := make(map[int32]traj.Match)
	for _, m := range ms {
		b, ok := best[m.ID]
		if !ok || m.WED < b.WED ||
			(m.WED == b.WED && (m.T-m.S < b.T-b.S ||
				(m.T-m.S == b.T-b.S && (m.S < b.S || (m.S == b.S && m.T < b.T))))) {
			best[m.ID] = m
		}
	}
	out := make([]traj.Match, 0, len(best))
	// subtrajlint:unordered-ok one entry per trajectory ID and topKLess
	// tiebreaks on ID, so the sort below erases collection order.
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return topKLess(out[i], out[j]) })
	return out
}

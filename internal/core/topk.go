package core

import (
	"sort"

	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// SearchTopK returns, for the k data trajectories most similar to the
// query, each trajectory's best subtrajectory match (smallest WED, ties
// broken by the shortest span), ordered by ascending WED. This is the
// top-k protocol of the paper's effectiveness experiments (§6.2.1,
// Table 3).
//
// The search grows the threshold geometrically until k trajectories are
// found or the feasibility ceiling τ ≤ min(c(Q), wed(ε, Q)) is reached —
// beyond that ceiling the subsequence filter cannot prune (no
// τ-subsequence exists), which bounds the similarity radius this index
// can answer exactly; trajectories farther away than the ceiling are not
// reported.
func (e *Engine) SearchTopK(q []traj.Symbol, k int) ([]traj.Match, error) {
	return e.SearchTopKP(q, k, 0)
}

// SearchTopKP is SearchTopK with an explicit shard-parallelism cap for
// the underlying threshold-growing searches (0 = auto; see
// Query.Parallelism). Callers that meter concurrency — the server's
// shared worker budget — pass the parallelism they reserved.
func (e *Engine) SearchTopKP(q []traj.Symbol, k, parallelism int) ([]traj.Match, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	if k <= 0 {
		return nil, nil
	}
	ceiling := SumFilterCost(e.costs, q)
	if s := wed.SumIns(e.costs, q); s < ceiling {
		ceiling = s
	}
	// Strict < in Definition 2 means τ = ceiling exactly may still be
	// feasible; nudge below to keep the filter applicable.
	ceiling *= 1 - 1e-12

	tau := ceiling / 64
	for {
		res, _, err := e.SearchQuery(Query{Q: q, Tau: tau, Parallelism: parallelism})
		if err != nil {
			return nil, err
		}
		best := bestPerTrajectoryOrdered(res)
		if len(best) >= k {
			return best[:k], nil
		}
		if tau >= ceiling {
			return best, nil // fewer than k trajectories inside the searchable radius
		}
		tau *= 4
		if tau > ceiling {
			tau = ceiling
		}
	}
}

// bestPerTrajectoryOrdered reduces matches to one per trajectory and
// orders them by (WED, span length, ID, S).
func bestPerTrajectoryOrdered(ms []traj.Match) []traj.Match {
	best := make(map[int32]traj.Match)
	for _, m := range ms {
		b, ok := best[m.ID]
		if !ok || m.WED < b.WED ||
			(m.WED == b.WED && (m.T-m.S < b.T-b.S ||
				(m.T-m.S == b.T-b.S && (m.S < b.S || (m.S == b.S && m.T < b.T))))) {
			best[m.ID] = m
		}
	}
	out := make([]traj.Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.WED != b.WED {
			return a.WED < b.WED
		}
		la, lb := a.T-a.S, b.T-b.S
		if la != lb {
			return la < lb
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.T < b.T
	})
	return out
}

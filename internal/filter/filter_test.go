package filter_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
)

// bruteMinCand solves MinCand exactly by enumerating all 2^n subsets.
func bruteMinCand(nq, c []float64, tau float64) (bestObj float64, feasible bool) {
	n := len(nq)
	bestObj = math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		var obj, cs float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				obj += nq[i]
				cs += c[i]
			}
		}
		if cs >= tau && obj < bestObj {
			bestObj = obj
			feasible = true
		}
	}
	return bestObj, feasible
}

func TestMinCandPaperExample6(t *testing.T) {
	// Example 6: Q = ABCD, c = [1,2,3,4], N = [5,2,9,8], τ = 4 →
	// greedy picks {B, D} with objective 10 (optimal is {D} with 8).
	chosen := filter.MinCand([]float64{5, 2, 9, 8}, []float64{1, 2, 3, 4}, 4)
	if len(chosen) != 2 || chosen[0] != 1 || chosen[1] != 3 {
		t.Fatalf("expected positions [1 3] (B, D), got %v", chosen)
	}
}

func TestMinCandSatisfiesConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		nq := make([]float64, n)
		c := make([]float64, n)
		var total float64
		for i := range nq {
			nq[i] = float64(rng.Intn(100))
			c[i] = rng.Float64() * 5
			total += c[i]
		}
		tau := rng.Float64() * total // feasible by construction
		chosen := filter.MinCand(nq, c, tau)
		var cs float64
		seen := map[int]bool{}
		for _, i := range chosen {
			if seen[i] {
				t.Fatalf("duplicate position %d", i)
			}
			seen[i] = true
			cs += c[i]
		}
		if cs < tau {
			t.Fatalf("constraint violated: c(Q')=%v < τ=%v", cs, tau)
		}
	}
}

func TestMinCandTwoApproximation(t *testing.T) {
	// Proposition 3: the greedy objective is ≤ 2× the optimum.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		nq := make([]float64, n)
		c := make([]float64, n)
		var total float64
		for i := range nq {
			nq[i] = float64(rng.Intn(50)) + 1
			c[i] = rng.Float64()*4 + 0.01
			total += c[i]
		}
		tau := rng.Float64() * total
		opt, feasible := bruteMinCand(nq, c, tau)
		if !feasible {
			continue
		}
		chosen := filter.MinCand(nq, c, tau)
		var obj float64
		for _, i := range chosen {
			obj += nq[i]
		}
		if obj > 2*opt+1e-9 {
			t.Fatalf("approximation ratio violated: greedy %v > 2×opt %v (nq=%v c=%v tau=%v)",
				obj, 2*opt, nq, c, tau)
		}
	}
}

func TestMinCandOptimalForConstantCosts(t *testing.T) {
	// Proposition 4: with constant c(q), the greedy is optimal (it picks
	// the smallest-frequency items).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		nq := make([]float64, n)
		c := make([]float64, n)
		cv := rng.Float64()*3 + 0.5
		for i := range nq {
			nq[i] = float64(rng.Intn(50)) + 1
			c[i] = cv
		}
		tau := rng.Float64() * cv * float64(n)
		opt, feasible := bruteMinCand(nq, c, tau)
		if !feasible {
			continue
		}
		chosen := filter.MinCand(nq, c, tau)
		var obj float64
		for _, i := range chosen {
			obj += nq[i]
		}
		if math.Abs(obj-opt) > 1e-9 {
			t.Fatalf("constant-cost optimality violated: greedy %v != opt %v (nq=%v tau=%v)", obj, opt, nq, tau)
		}
	}
}

func TestMinCandZeroCostItemsNeverChosen(t *testing.T) {
	chosen := filter.MinCand([]float64{1, 100, 1}, []float64{0, 5, 0}, 3)
	for _, i := range chosen {
		if i != 1 {
			t.Fatalf("zero-cost item %d chosen", i)
		}
	}
}

func TestBuildPlanInfeasible(t *testing.T) {
	env := testutil.NewEnv(4, 10, 10)
	m := env.Models()[0] // Lev: c(q) = 1
	inv := index.Build(m.DS)
	q := env.Query(m, 5)
	_, err := filter.BuildPlan(m.Costs, inv, q, float64(len(q))+1)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
	ie, ok := err.(filter.ErrInfeasible)
	if !ok {
		t.Fatalf("wrong error type: %T", err)
	}
	if ie.Error() == "" || ie.CQ != float64(len(q)) {
		t.Fatalf("error detail wrong: %+v", ie)
	}
}

func TestBuildPlanPredictsCandidates(t *testing.T) {
	// The MinCand objective must equal the generated candidate count
	// (the Remark under Definition 5: the objective IS the candidate
	// size).
	env := testutil.NewEnv(5, 25, 18)
	for _, m := range env.Models() {
		inv := index.Build(m.DS)
		q := env.Query(m, 8)
		tau := 0.3 * sumFilterCost(m, q)
		plan, err := filter.BuildPlan(m.Costs, inv, q, tau)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		cands := plan.Candidates(inv, nil)
		if len(cands) != plan.PredictedCandidates {
			t.Fatalf("%s: predicted %d candidates, generated %d", m.Name, plan.PredictedCandidates, len(cands))
		}
		if plan.CSum < tau {
			t.Fatalf("%s: c(Q') = %v < τ = %v", m.Name, plan.CSum, tau)
		}
		// Every candidate must actually reference a matching symbol in
		// its trajectory.
		for _, c := range cands {
			p := m.DS.Path(c.ID)
			if int(c.Pos) >= len(p) {
				t.Fatalf("%s: candidate position out of range", m.Name)
			}
			sym := p[c.Pos]
			inB := false
			for _, b := range m.Costs.Neighbors(q[c.IQ], nil) {
				if b == sym {
					inB = true
					break
				}
			}
			if !inB {
				t.Fatalf("%s: candidate symbol %d not in B(Q[%d])", m.Name, sym, c.IQ)
			}
		}
	}
}

func sumFilterCost(m testutil.Model, q []traj.Symbol) float64 {
	var s float64
	for _, sym := range q {
		s += m.Costs.FilterCost(sym)
	}
	return s
}

func TestPlanPositionsAscending(t *testing.T) {
	env := testutil.NewEnv(6, 20, 15)
	m := env.Models()[1]
	inv := index.Build(m.DS)
	q := env.Query(m, 10)
	plan, err := filter.BuildPlan(m.Costs, inv, q, 0.5*sumFilterCost(m, q))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plan.Subseq); i++ {
		if plan.Subseq[i].Pos <= plan.Subseq[i-1].Pos {
			t.Fatalf("subsequence positions not ascending: %v", plan.Subseq)
		}
	}
	for _, it := range plan.Subseq {
		if q[it.Pos] != it.Sym {
			t.Fatalf("item symbol mismatch at pos %d", it.Pos)
		}
	}
}

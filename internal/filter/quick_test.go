package filter_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subtraj/internal/filter"
)

// TestMinCandQuickProperties drives MinCand with quick-generated inputs:
// the greedy must always satisfy its constraint, never choose duplicates,
// and never choose zero-cost items.
func TestMinCandQuickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func(rawN []uint16, rawC []uint16, tauFrac float64) bool {
		n := len(rawN)
		if len(rawC) < n {
			n = len(rawC)
		}
		if n == 0 {
			return true
		}
		if n > 16 {
			n = 16
		}
		nq := make([]float64, n)
		c := make([]float64, n)
		var total float64
		for i := 0; i < n; i++ {
			nq[i] = float64(rawN[i])
			c[i] = float64(rawC[i]) / 1000
			total += c[i]
		}
		if math.IsNaN(tauFrac) || math.IsInf(tauFrac, 0) {
			return true
		}
		tauFrac = math.Mod(math.Abs(tauFrac), 1) // frac in [0,1)
		tau := tauFrac * total
		chosen := filter.MinCand(nq, c, tau)
		var cs float64
		seen := map[int]bool{}
		for _, i := range chosen {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
			if c[i] == 0 {
				return false // zero-cost items must never be chosen
			}
			cs += c[i]
		}
		return cs >= tau
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestMinCandGreedyDominatedBySingletons: whenever one item alone covers
// τ, the greedy result must not be worse than twice the best singleton
// (a sharper observable consequence of the 2-approximation).
func TestMinCandGreedyVsSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(12)
		nq := make([]float64, n)
		c := make([]float64, n)
		for i := range nq {
			nq[i] = float64(rng.Intn(100)) + 1
			c[i] = rng.Float64()*4 + 0.1
		}
		tau := c[rng.Intn(n)] * rng.Float64() // some singleton is feasible
		bestSingle := -1.0
		for i := range c {
			if c[i] >= tau && (bestSingle < 0 || nq[i] < bestSingle) {
				bestSingle = nq[i]
			}
		}
		if bestSingle < 0 {
			continue
		}
		chosen := filter.MinCand(nq, c, tau)
		var obj float64
		for _, i := range chosen {
			obj += nq[i]
		}
		if obj > 2*bestSingle+1e-9 {
			t.Fatalf("greedy %v > 2x best singleton %v (nq=%v c=%v tau=%v)", obj, bestSingle, nq, c, tau)
		}
	}
}

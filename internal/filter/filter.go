// Package filter implements the subsequence-filtering principle of §3: the
// per-symbol filtering costs c(q), the substitution neighbourhoods B(q),
// the MinCand candidate-minimisation problem (Definition 5) solved by the
// primal–dual greedy 2-approximation of Algorithm 1, and candidate
// generation from the inverted index (the loop of Algorithm 2).
package filter

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"subtraj/internal/index"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// Item is one chosen element of the τ-subsequence Q': the symbol and its
// position iq in Q (0-based; the paper's iq is 1-based).
type Item struct {
	Sym traj.Symbol
	Pos int32
}

// Candidate identifies a promising position: trajectory id, position j in
// P^(id) with P[j] ∈ B(Q[iq]), and the query position iq (all 0-based).
type Candidate struct {
	ID  int32
	Pos int32
	IQ  int32
}

// Plan is the query-time filtering state: the chosen τ-subsequence and the
// precomputed neighbourhoods/statistics, reusable for candidate generation
// and reporting.
type Plan struct {
	// Subseq is the chosen τ-subsequence Q' in query order.
	Subseq []Item
	// Neighbors[i] is B(Subseq[i].Sym).
	Neighbors [][]traj.Symbol
	// CSum is c(Q') = Σ c(q).
	CSum float64
	// PredictedCandidates is the MinCand objective value: Σ_{q∈Q'}
	// Σ_{b∈B(q)} n(b).
	PredictedCandidates int
}

// ErrInfeasible is returned when no subsequence of Q can reach the
// threshold: c(Q) < τ. The paper requires Σ ins(q) ≥ τ for a meaningful
// query; with a suitable η this guarantees feasibility (see §3.1, "Setting
// η to τ/|Q| guarantees that a τ-subsequence can be found").
type ErrInfeasible struct {
	CQ, Tau float64
}

func (e ErrInfeasible) Error() string {
	return fmt.Sprintf("filter: no τ-subsequence exists: c(Q) = %g < τ = %g (increase η or lower τ)", e.CQ, e.Tau)
}

// Freqs supplies the dataset-wide occurrence counts n(q) the MinCand
// objective optimises. Both the flat index.Inverted and the sharded
// index.Sharded provide it; a sharded index reports global counts so the
// chosen plan is independent of the shard count.
type Freqs interface {
	Freq(q traj.Symbol) int
}

// BuildPlan chooses a τ-subsequence of q minimising the candidate count
// via Algorithm 1 and precomputes the neighbourhoods. costs provides c(q)
// and B(q); freqs provides the frequencies n(b).
func BuildPlan(costs wed.FilterCosts, freqs Freqs, q []traj.Symbol, tau float64) (*Plan, error) {
	n := len(q)
	c := make([]float64, n)
	neighbors := make([][]traj.Symbol, n)
	nq := make([]float64, n) // N_q: candidate volume of choosing position i
	var cTotal float64
	for i, sym := range q {
		c[i] = costs.FilterCost(sym)
		neighbors[i] = costs.Neighbors(sym, nil)
		var vol int
		for _, b := range neighbors[i] {
			vol += freqs.Freq(b)
		}
		nq[i] = float64(vol)
		cTotal += c[i]
	}
	if cTotal < tau {
		return nil, ErrInfeasible{CQ: cTotal, Tau: tau}
	}
	chosen := MinCand(nq, c, tau)
	plan := &Plan{}
	for _, i := range chosen {
		plan.Subseq = append(plan.Subseq, Item{Sym: q[i], Pos: int32(i)})
		plan.Neighbors = append(plan.Neighbors, neighbors[i])
		plan.CSum += c[i]
		plan.PredictedCandidates += int(nq[i])
	}
	return plan, nil
}

// MinCand is the primal–dual greedy of Algorithm 1 for the minimum
// candidate problem: select positions S ⊆ [n] minimising Σ N_i subject to
// Σ c_i ≥ tau. It returns the chosen positions in ascending order. The
// approximation ratio is 2 (Proposition 3); when all c_i are equal the
// result is optimal (Proposition 4). The caller guarantees Σ c_i ≥ tau.
func MinCand(nq, c []float64, tau float64) []int {
	n := len(nq)
	w := make([]float64, n) // w_q duals
	inQ := make([]bool, n)  // chosen flags
	var chosen []int
	cSum := 0.0
	for cSum < tau {
		// Residual demand.
		res := tau - cSum
		// Pick q* = argmin v_q = (N_q - w_q) / min(c_q, residual).
		best := -1
		bestV := math.Inf(1)
		for i := 0; i < n; i++ {
			if inQ[i] {
				continue
			}
			den := c[i]
			if res < den {
				den = res
			}
			if den <= 0 {
				// c_i = 0 contributes nothing toward the constraint;
				// never select it.
				continue
			}
			v := (nq[i] - w[i]) / den
			if v < bestV {
				bestV, best = v, i
			}
		}
		if best < 0 {
			// All remaining items have zero filtering cost; the caller's
			// feasibility check makes this unreachable, but guard anyway.
			break
		}
		// Raise duals: w_q += min(c_q, residual) · v_{q*}.
		for i := 0; i < n; i++ {
			if inQ[i] {
				continue
			}
			den := c[i]
			if res < den {
				den = res
			}
			w[i] += den * bestV
		}
		inQ[best] = true
		chosen = append(chosen, best)
		cSum += c[best]
	}
	// Ascending positions (the greedy may pick out of order).
	sortInts(chosen)
	return chosen
}

func sortInts(xs []int) {
	// Insertion sort: |Q'| is tiny (a few items).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Candidates generates the candidate set of Algorithm 2 (lines 3–6):
// every posting of every neighbour of every chosen item. The result may
// reference the same (id, pos) under different iq — those are distinct
// candidates by construction (see the Remark under Definition 5). src may
// be the whole index or one shard of a sharded index; the candidate set
// over all shards is exactly the flat index's set.
func (p *Plan) Candidates(src index.PostingSource, dst []Candidate) []Candidate {
	for i, it := range p.Subseq {
		for _, b := range p.Neighbors[i] {
			for _, pos := range src.Postings(b) {
				dst = append(dst, Candidate{ID: pos.ID, Pos: pos.Pos, IQ: it.Pos})
			}
		}
	}
	return dst
}

// CandidatesInWindow is Candidates restricted to trajectories whose
// [departure, arrival] interval overlaps [lo, hi] (the TF pre-filter of
// §4.3 and Figure 12).
func (p *Plan) CandidatesInWindow(src index.PostingSource, lo, hi float64, dst []Candidate) []Candidate {
	for i, it := range p.Subseq {
		for _, b := range p.Neighbors[i] {
			for _, pos := range src.Postings(b) {
				if !src.IntervalOverlaps(pos.ID, lo, hi) {
					continue
				}
				dst = append(dst, Candidate{ID: pos.ID, Pos: pos.Pos, IQ: it.Pos})
			}
		}
	}
	return dst
}

// CandidatesByDeparture generates candidates only from trajectories whose
// departure time lies in [lo, hi], using binary search on the
// departure-sorted postings (§4.3's sorted-postings optimisation). The
// caller must have built the temporal order (index.BuildTemporal).
func (p *Plan) CandidatesByDeparture(src index.PostingSource, lo, hi float64, dst []Candidate) []Candidate {
	for i, it := range p.Subseq {
		for _, b := range p.Neighbors[i] {
			for _, pos := range src.PostingsInWindow(b, lo, hi) {
				dst = append(dst, Candidate{ID: pos.ID, Pos: pos.Pos, IQ: it.Pos})
			}
		}
	}
	return dst
}

// GroupByTrajectory stably sorts candidates by trajectory ID, so a
// verifier visits each trajectory's candidates consecutively (one Path
// lookup per trajectory, one match-accumulation flush per trajectory).
// The per-trajectory candidate order — and therefore every verification
// result — is unchanged; both the sequential and the per-shard pipelines
// apply this to their candidate streams. slices.SortStableFunc avoids
// sort.SliceStable's reflection and per-call allocations.
func GroupByTrajectory(cands []Candidate) {
	slices.SortStableFunc(cands, func(a, b Candidate) int { return cmp.Compare(a.ID, b.ID) })
}

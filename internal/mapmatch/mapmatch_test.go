package mapmatch_test

import (
	"math/rand"
	"testing"

	"subtraj/internal/geo"
	"subtraj/internal/mapmatch"
	"subtraj/internal/roadnet"
	"subtraj/internal/workload"
)

// sampleTrace walks a ground-truth path and emits one noisy GPS point per
// vertex.
func sampleTrace(g *roadnet.Graph, path []int32, noise float64, rng *rand.Rand) []geo.Point {
	out := make([]geo.Point, len(path))
	for i, v := range path {
		p := g.Coord(v)
		out[i] = geo.Point{X: p.X + rng.NormFloat64()*noise, Y: p.Y + rng.NormFloat64()*noise}
	}
	return out
}

func TestMatchRecoversPathLowNoise(t *testing.T) {
	w := workload.Generate(workload.Tiny(31))
	m := mapmatch.New(w.Graph, mapmatch.Config{Sigma: 15})
	rng := rand.New(rand.NewSource(31))
	recovered, total := 0, 0
	for id := 0; id < 10 && id < w.Data.Len(); id++ {
		truth := w.Data.Trajs[id].Path
		if len(truth) < 4 {
			continue
		}
		truth32 := make([]int32, len(truth))
		copy(truth32, truth)
		trace := sampleTrace(w.Graph, truth32, 8, rng)
		got, err := m.Match(trace)
		if err != nil {
			t.Fatalf("trajectory %d: %v", id, err)
		}
		// The result must be a connected path on the network.
		if !w.Graph.IsPath(got) {
			t.Fatalf("trajectory %d: matched result is not a path", id)
		}
		total++
		if exactMatch(got, truth32) {
			recovered++
		}
	}
	if total == 0 {
		t.Fatal("no test trajectories")
	}
	// Low noise (8 m on 100 m blocks) should recover the vast majority
	// exactly.
	if recovered*10 < total*7 {
		t.Fatalf("only %d/%d paths recovered exactly", recovered, total)
	}
}

func exactMatch(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatchProducesConnectedPathHighNoise(t *testing.T) {
	// With heavy noise exact recovery is not expected, but the output
	// must still be a valid connected path.
	w := workload.Generate(workload.Tiny(32))
	m := mapmatch.New(w.Graph, mapmatch.Config{Sigma: 40})
	rng := rand.New(rand.NewSource(32))
	ok := 0
	for id := 0; id < 8 && id < w.Data.Len(); id++ {
		truth := w.Data.Trajs[id].Path
		if len(truth) < 4 {
			continue
		}
		truth32 := make([]int32, len(truth))
		copy(truth32, truth)
		trace := sampleTrace(w.Graph, truth32, 35, rng)
		got, err := m.Match(trace)
		if err != nil {
			continue // HMM breaks are acceptable at this noise level
		}
		if !w.Graph.IsPath(got) {
			t.Fatalf("trajectory %d: not a path", id)
		}
		ok++
	}
	if ok == 0 {
		t.Fatal("matcher failed on every high-noise trace")
	}
}

func TestMatchEmptyTrace(t *testing.T) {
	w := workload.Generate(workload.Tiny(33))
	m := mapmatch.New(w.Graph, mapmatch.Config{})
	if _, err := m.Match(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestMatchSinglePoint(t *testing.T) {
	w := workload.Generate(workload.Tiny(34))
	m := mapmatch.New(w.Graph, mapmatch.Config{})
	pt := w.Graph.Coord(0)
	got, err := m.Match([]geo.Point{pt})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-point match %v, want [0]", got)
	}
}

func TestStationaryTraceCollapses(t *testing.T) {
	// Repeated samples at the same location must not produce repeated
	// vertices.
	w := workload.Generate(workload.Tiny(35))
	m := mapmatch.New(w.Graph, mapmatch.Config{})
	pt := w.Graph.Coord(5)
	trace := []geo.Point{pt, pt, pt, pt}
	got, err := m.Match(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("repeated vertex in %v", got)
		}
	}
}

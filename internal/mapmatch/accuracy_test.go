package mapmatch_test

import (
	"math/rand"
	"sync"
	"testing"

	"subtraj/internal/geo"
	"subtraj/internal/mapmatch"
	"subtraj/internal/testutil"
	"subtraj/internal/workload"
)

// This file is the closed-loop accuracy harness: noisy GPS traces are
// synthesised from known ground-truth paths (workload.GenerateTrace),
// matched back onto the network, and scored with workload.LCSAccuracy.
// Everything is seeded, so the asserted accuracy floors are deterministic.

// matchAccuracy generates traces for the workload's first n sufficiently
// long trajectories and returns the mean LCS accuracy of the matched
// (longest-segment) paths plus bookkeeping about failures and splits.
func matchAccuracy(t *testing.T, w *workload.Workload, m *mapmatch.Matcher, n int, cfg workload.GPSConfig, seed int64) (acc float64, matched, split int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for id := 0; id < w.Data.Len() && matched < n; id++ {
		truth := w.Data.Trajs[id].Path
		if len(truth) < 8 {
			continue
		}
		tr := workload.GenerateTrace(w.Graph, truth, cfg, rng)
		res, err := m.MatchTrace(tr.Points)
		if err != nil {
			t.Fatalf("trajectory %d: MatchTrace: %v", id, err)
		}
		if len(res.Segments) == 0 {
			t.Fatalf("trajectory %d: no segments", id)
		}
		for _, seg := range res.Segments {
			if !w.Graph.IsPath(seg.Path) {
				t.Fatalf("trajectory %d: segment path not connected", id)
			}
			if seg.Confidence <= 0 || seg.Confidence > 1 {
				t.Fatalf("trajectory %d: confidence %g out of (0,1]", id, seg.Confidence)
			}
		}
		if res.Splits > 0 {
			split++
		}
		path, _ := res.Path()
		sum += workload.LCSAccuracy(path, truth)
		matched++
	}
	if matched == 0 {
		t.Fatal("no trajectories long enough to test")
	}
	return sum / float64(matched), matched, split
}

// TestClosedLoopAccuracy is the table-driven accuracy harness across
// noise, sample-spacing, and dropout levels. The hard floors: ≥90% mean
// symbol accuracy at σ=20 m (the matcher's design point on 100 m blocks),
// and graceful degradation — no panics, connected segments, explicit
// splits — all the way up to σ=80 m.
func TestClosedLoopAccuracy(t *testing.T) {
	w := workload.Generate(workload.Tiny(51))
	m := mapmatch.New(w.Graph, mapmatch.Config{})
	const traces = 12
	for _, tc := range []struct {
		name     string
		cfg      workload.GPSConfig
		minAcc   float64 // 0 = only graceful-degradation checks
		maxSplit int     // -1 = unchecked
	}{
		{"sigma8/spacing50", workload.GPSConfig{NoiseSigma: 8, SampleSpacing: 50}, 0.97, 0},
		{"sigma20/spacing50", workload.GPSConfig{NoiseSigma: 20, SampleSpacing: 50}, 0.90, 0},
		{"sigma20/spacing100", workload.GPSConfig{NoiseSigma: 20, SampleSpacing: 100}, 0.90, 0},
		{"sigma20/dropout", workload.GPSConfig{NoiseSigma: 20, SampleSpacing: 50, DropoutRate: 0.05, DropoutLen: 2}, 0.85, -1},
		{"sigma40/spacing50", workload.GPSConfig{NoiseSigma: 40, SampleSpacing: 50}, 0.60, -1},
		{"sigma80/spacing50", workload.GPSConfig{NoiseSigma: 80, SampleSpacing: 50}, 0, -1},
		{"sigma80/dropout", workload.GPSConfig{NoiseSigma: 80, SampleSpacing: 80, DropoutRate: 0.1, DropoutLen: 4}, 0, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			acc, matched, split := matchAccuracy(t, w, m, traces, tc.cfg, 77)
			t.Logf("mean accuracy %.3f over %d traces (%d split)", acc, matched, split)
			if acc < tc.minAcc {
				t.Errorf("mean accuracy %.3f below floor %.2f", acc, tc.minAcc)
			}
			if tc.maxSplit >= 0 && split > tc.maxSplit {
				t.Errorf("%d traces split, want ≤ %d", split, tc.maxSplit)
			}
		})
	}
}

// TestConfidenceTracksNoise: the reported confidence must order clean
// traces above noisy ones on the same route.
func TestConfidenceTracksNoise(t *testing.T) {
	g := testutil.GoldenNet()
	m := mapmatch.New(g, mapmatch.Config{})
	truth := testutil.GoldenPaths()[2] // staircase
	conf := func(sigma float64) float64 {
		tr := workload.GenerateTrace(g, truth, workload.GPSConfig{NoiseSigma: sigma, SampleSpacing: 50},
			rand.New(rand.NewSource(4)))
		res, err := m.MatchTrace(tr.Points)
		if err != nil {
			t.Fatalf("σ=%g: %v", sigma, err)
		}
		return res.Confidence
	}
	clean, noisy := conf(2), conf(60)
	if clean <= noisy {
		t.Errorf("confidence must fall with noise: σ=2 → %.3f, σ=60 → %.3f", clean, noisy)
	}
	if clean < 0.9 {
		t.Errorf("near-noise-free confidence %.3f, want ≥ 0.9", clean)
	}
}

// TestGapSplitting: a trace that teleports across the golden grid farther
// than MaxGap allows must split (MatchTrace) rather than fail, while Match
// keeps reporting ErrNoPath for the same trace.
func TestGapSplitting(t *testing.T) {
	g := testutil.GoldenNet()
	m := mapmatch.New(g, mapmatch.Config{MaxGap: 300})
	// Two distant straight runs: row 0 and row 5 — no intermediate
	// samples, a 500 m teleport between sample groups.
	v := testutil.GoldenVertex
	rng := rand.New(rand.NewSource(8))
	a := workload.GenerateTrace(g, []int32{v(0, 0), v(0, 1), v(0, 2)}, workload.GPSConfig{NoiseSigma: 5}, rng)
	b := workload.GenerateTrace(g, []int32{v(5, 3), v(5, 4), v(5, 5)}, workload.GPSConfig{NoiseSigma: 5}, rng)
	trace := append(append([]geo.Point(nil), a.Points...), b.Points...)

	if _, err := m.Match(trace); err == nil {
		t.Fatal("Match must fail on a broken trace")
	}
	res, err := m.MatchTrace(trace)
	if err != nil {
		t.Fatalf("MatchTrace: %v", err)
	}
	if len(res.Segments) != 2 {
		t.Fatalf("got %d segments, want 2 (splits=%d)", len(res.Segments), res.Splits)
	}
	if res.Splits != 1 {
		t.Errorf("Splits = %d, want 1", res.Splits)
	}
	// Segments cover the whole trace contiguously.
	if res.Segments[0].First != 0 || res.Segments[1].Last != len(trace)-1 ||
		res.Segments[0].Last+1 != res.Segments[1].First {
		t.Errorf("segments don't partition the trace: [%d,%d] [%d,%d] of %d samples",
			res.Segments[0].First, res.Segments[0].Last,
			res.Segments[1].First, res.Segments[1].Last, len(trace))
	}
	for i, seg := range res.Segments {
		if !g.IsPath(seg.Path) {
			t.Errorf("segment %d not a connected path", i)
		}
	}
}

// TestMatchBatch: batch results must equal per-trace results, at every
// parallelism (the matcher is deterministic, so pooled scratch reuse and
// concurrency must not change answers).
func TestMatchBatch(t *testing.T) {
	w := workload.Generate(workload.Tiny(52))
	m := mapmatch.New(w.Graph, mapmatch.Config{})
	traces := make([][]geo.Point, 0, 10)
	rng := rand.New(rand.NewSource(5))
	for id := 0; id < w.Data.Len() && len(traces) < 10; id++ {
		if len(w.Data.Trajs[id].Path) < 6 {
			continue
		}
		tr := workload.GenerateTrace(w.Graph, w.Data.Trajs[id].Path,
			workload.GPSConfig{NoiseSigma: 15, SampleSpacing: 60}, rng)
		traces = append(traces, tr.Points)
	}
	traces = append(traces, nil) // one bad trace fails alone

	want := make([]mapmatch.BatchItem, len(traces))
	for i, tr := range traces {
		want[i].Result, want[i].Err = m.MatchTrace(tr)
	}
	for _, par := range []int{1, 4} {
		got := m.MatchBatch(traces, par)
		if len(got) != len(want) {
			t.Fatalf("par=%d: %d items, want %d", par, len(got), len(want))
		}
		for i := range got {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("par=%d item %d: err %v, want %v", par, i, got[i].Err, want[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			if len(got[i].Segments) != len(want[i].Segments) || got[i].Confidence != want[i].Confidence {
				t.Fatalf("par=%d item %d: result differs from sequential", par, i)
			}
			for s := range got[i].Segments {
				if !equalPath(got[i].Segments[s].Path, want[i].Segments[s].Path) {
					t.Fatalf("par=%d item %d segment %d: path differs", par, i, s)
				}
			}
		}
	}
}

// TestConcurrentMatching hammers one shared Matcher from many goroutines
// (run under -race): pooled scratch must never leak state across calls, so
// every goroutine must keep getting the sequential answer.
func TestConcurrentMatching(t *testing.T) {
	w := workload.Generate(workload.Tiny(53))
	m := mapmatch.New(w.Graph, mapmatch.Config{})
	rng := rand.New(rand.NewSource(6))
	type job struct {
		trace []geo.Point
		want  []int32
	}
	var jobs []job
	for id := 0; id < w.Data.Len() && len(jobs) < 8; id++ {
		if len(w.Data.Trajs[id].Path) < 6 {
			continue
		}
		tr := workload.GenerateTrace(w.Graph, w.Data.Trajs[id].Path,
			workload.GPSConfig{NoiseSigma: 10, SampleSpacing: 50}, rng)
		res, err := m.MatchTrace(tr.Points)
		if err != nil {
			t.Fatal(err)
		}
		path, _ := res.Path()
		jobs = append(jobs, job{tr.Points, path})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j := jobs[(g+i)%len(jobs)]
				res, err := m.MatchTrace(j.trace)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				path, _ := res.Path()
				if !equalPath(path, j.want) {
					t.Errorf("goroutine %d: concurrent result differs from sequential", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func equalPath(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

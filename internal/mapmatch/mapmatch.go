// Package mapmatch implements HMM map matching in the style of Newson &
// Krumm (reference [34]), the preprocessing step the paper uses to convert
// raw GPS trajectories into network-constrained paths (§2.1, §6.1).
//
// States are candidate vertices near each GPS sample; emission
// probabilities follow a Gaussian on the sample-to-vertex distance, and
// transition probabilities penalise the difference between the great-circle
// (here: Euclidean) displacement of consecutive samples and the network
// route distance between the candidate vertices. Viterbi decoding yields
// the most likely vertex sequence, which is stitched into a connected path
// with shortest-path segments.
package mapmatch

import (
	"errors"
	"math"

	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
	"subtraj/internal/shortestpath"
	"subtraj/internal/spatial"
)

// Config tunes the matcher. Zero fields fall back to defaults suited to
// the synthetic workloads (~20 m GPS noise on ~100 m blocks).
type Config struct {
	// Sigma is the GPS noise standard deviation (metres) of the emission
	// model. Default 20.
	Sigma float64
	// Beta is the exponential transition scale (metres). Default 50.
	Beta float64
	// MaxCandidates bounds the candidate vertices per sample. Default 8.
	MaxCandidates int
	// MaxRouteFactor prunes transitions whose route distance exceeds
	// this multiple of (displacement + Beta). Default 4.
	MaxRouteFactor float64
}

func (c Config) withDefaults() Config {
	if c.Sigma <= 0 {
		c.Sigma = 20
	}
	if c.Beta <= 0 {
		c.Beta = 50
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	if c.MaxRouteFactor <= 0 {
		c.MaxRouteFactor = 4
	}
	return c
}

// Matcher matches GPS traces onto one road network.
type Matcher struct {
	g    *roadnet.Graph
	adj  *shortestpath.Adjacency
	tree *spatial.KDTree
	cfg  Config
}

// New builds a matcher over g.
func New(g *roadnet.Graph, cfg Config) *Matcher {
	return &Matcher{
		g:    g,
		adj:  shortestpath.FromGraph(g),
		tree: spatial.Build(g.Coords()),
		cfg:  cfg.withDefaults(),
	}
}

// ErrNoPath is returned when no candidate sequence is connected.
var ErrNoPath = errors.New("mapmatch: no connected candidate path")

// Match maps a GPS trace to a vertex path on the network. The result is a
// connected path (consecutive vertices joined by edges); repeated vertices
// from slow traces are collapsed.
func (m *Matcher) Match(trace []geo.Point) ([]roadnet.VertexID, error) {
	if len(trace) == 0 {
		return nil, errors.New("mapmatch: empty trace")
	}
	type state struct {
		v       int32
		logp    float64
		backptr int
		// route holds the vertex path (excluding the previous state's
		// vertex) taken from the backptr state to this one.
		route []int32
	}
	emit := func(p geo.Point, v int32) float64 {
		d2 := p.Dist2(m.g.Coord(v))
		return -d2 / (2 * m.cfg.Sigma * m.cfg.Sigma)
	}
	cands := func(p geo.Point) []int32 {
		return m.tree.KNearest(p, m.cfg.MaxCandidates)
	}

	prev := make([]state, 0, m.cfg.MaxCandidates)
	for _, v := range cands(trace[0]) {
		prev = append(prev, state{v: v, logp: emit(trace[0], v), backptr: -1})
	}
	layers := make([][]state, 1, len(trace))
	layers[0] = prev

	for i := 1; i < len(trace); i++ {
		displacement := trace[i].Dist(trace[i-1])
		maxRoute := m.cfg.MaxRouteFactor * (displacement + m.cfg.Beta)
		var cur []state
		for _, v := range cands(trace[i]) {
			best := state{v: v, logp: math.Inf(-1), backptr: -1}
			for pi := range prev {
				if math.IsInf(prev[pi].logp, -1) {
					continue
				}
				route, routeDist := m.route(prev[pi].v, v, maxRoute)
				if route == nil && prev[pi].v != v {
					continue
				}
				trans := -math.Abs(routeDist-displacement) / m.cfg.Beta
				lp := prev[pi].logp + trans
				if lp > best.logp {
					best.logp = lp
					best.backptr = pi
					best.route = route
				}
			}
			if best.backptr >= 0 {
				best.logp += emit(trace[i], v)
				cur = append(cur, best)
			}
		}
		if len(cur) == 0 {
			// HMM break (paper's real traces have them too); restart
			// from scratch at this sample — the caller receives the
			// longest decoded head. We choose to fail instead: the
			// synthetic traces are dense enough that a break indicates
			// misuse.
			return nil, ErrNoPath
		}
		layers = append(layers, cur)
		prev = cur
	}

	// Backtrack from the best final state.
	last := layers[len(layers)-1]
	bi := 0
	for i := range last {
		if last[i].logp > last[bi].logp {
			bi = i
		}
	}
	var rev [][]int32 // route fragments in reverse layer order
	var headV int32
	for li := len(layers) - 1; li >= 0; li-- {
		st := layers[li][bi]
		if li > 0 {
			rev = append(rev, st.route)
			bi = st.backptr
		} else {
			headV = st.v
		}
	}
	path := []int32{headV}
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i]...)
	}
	// Collapse consecutive duplicates (stationary samples).
	out := path[:1]
	for _, v := range path[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out, nil
}

// route returns the shortest vertex path from a to b (excluding a) and its
// length, or (nil, 0) when b is unreachable within maxDist. a == b yields
// an empty route of length 0.
func (m *Matcher) route(a, b int32, maxDist float64) ([]int32, float64) {
	if a == b {
		return []int32{}, 0
	}
	// Bounded Dijkstra with parent tracking.
	type rec struct {
		d      float64
		parent int32
	}
	settled := map[int32]rec{}
	dist := map[int32]rec{a: {0, -1}}
	q := &boundedPQ{}
	q.push(a, 0)
	for q.len() > 0 {
		v, d := q.pop()
		if r, ok := settled[v]; ok && r.d <= d {
			continue
		}
		settled[v] = rec{d, dist[v].parent}
		if v == b {
			// Reconstruct.
			var path []int32
			for x := b; x != a; x = settled[x].parent {
				path = append(path, x)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path, d
		}
		if d > maxDist {
			return nil, 0
		}
		heads, ws := m.adj.Neighbors(v)
		for i, w := range heads {
			nd := d + ws[i]
			if r, ok := dist[w]; !ok || nd < r.d {
				dist[w] = rec{nd, v}
				q.push(w, nd)
			}
		}
	}
	return nil, 0
}

// boundedPQ is a tiny binary heap keyed by distance.
type boundedPQ struct {
	vs []int32
	ds []float64
}

func (q *boundedPQ) len() int { return len(q.vs) }

func (q *boundedPQ) push(v int32, d float64) {
	q.vs = append(q.vs, v)
	q.ds = append(q.ds, d)
	c := len(q.ds) - 1
	for c > 0 {
		p := (c - 1) / 2
		if q.ds[p] <= q.ds[c] {
			break
		}
		q.swap(p, c)
		c = p
	}
}

func (q *boundedPQ) pop() (int32, float64) {
	v, d := q.vs[0], q.ds[0]
	last := len(q.ds) - 1
	q.swap(0, last)
	q.vs = q.vs[:last]
	q.ds = q.ds[:last]
	p := 0
	for {
		l, r := 2*p+1, 2*p+2
		small := p
		if l < last && q.ds[l] < q.ds[small] {
			small = l
		}
		if r < last && q.ds[r] < q.ds[small] {
			small = r
		}
		if small == p {
			break
		}
		q.swap(p, small)
		p = small
	}
	return v, d
}

func (q *boundedPQ) swap(i, j int) {
	q.vs[i], q.vs[j] = q.vs[j], q.vs[i]
	q.ds[i], q.ds[j] = q.ds[j], q.ds[i]
}

// Package mapmatch implements HMM map matching in the style of Newson &
// Krumm (reference [34]), the preprocessing step the paper uses to convert
// raw GPS trajectories into network-constrained paths (§2.1, §6.1).
//
// States are candidate vertices near each GPS sample; emission
// probabilities follow a Gaussian on the sample-to-vertex distance, and
// transition probabilities penalise the difference between the great-circle
// (here: Euclidean) displacement of consecutive samples and the network
// route distance between the candidate vertices. Viterbi decoding yields
// the most likely vertex sequence, which is stitched into a connected path
// with shortest-path segments.
//
// A Matcher is safe for concurrent use: the graph, spatial index, and
// adjacency are read-only after construction, and all per-call state
// (Viterbi layers, Dijkstra arrays, priority queue) lives in pooled
// scratch following the verify.Verifier Get/Put pattern. MatchTrace
// additionally survives GPS dropouts by gap-splitting: when no candidate
// transition connects two consecutive samples (an HMM break), the trace is
// split there and each side is decoded into its own connected sub-path
// instead of failing the whole trace.
package mapmatch

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
	"subtraj/internal/shortestpath"
	"subtraj/internal/spatial"
)

// Config tunes the matcher. Zero fields fall back to defaults suited to
// the synthetic workloads (~20 m GPS noise on ~100 m blocks).
type Config struct {
	// Sigma is the GPS noise standard deviation (metres) of the emission
	// model. Default 20.
	Sigma float64
	// Beta is the exponential transition scale (metres). Default 50.
	Beta float64
	// MaxCandidates bounds the candidate vertices per sample. Default 8.
	MaxCandidates int
	// MaxRouteFactor prunes transitions whose route distance exceeds
	// this multiple of (displacement + Beta). Default 4.
	MaxRouteFactor float64
	// MaxGap, when positive, treats any displacement between consecutive
	// samples larger than this (metres) as a GPS dropout: the trace is
	// split there (MatchTrace) instead of stitching an unobserved route
	// across the gap. 0 disables the check — gaps are stitched whenever a
	// route within MaxRouteFactor exists.
	MaxGap float64
}

func (c Config) withDefaults() Config {
	if c.Sigma <= 0 {
		c.Sigma = 20
	}
	if c.Beta <= 0 {
		c.Beta = 50
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	if c.MaxRouteFactor <= 0 {
		c.MaxRouteFactor = 4
	}
	return c
}

// Matcher matches GPS traces onto one road network. All methods are safe
// for concurrent use.
type Matcher struct {
	g    *roadnet.Graph
	adj  *shortestpath.Adjacency
	tree *spatial.KDTree
	cfg  Config
	// scratch recycles per-call state; each call Gets one scratch, so
	// concurrent calls never share mutable state.
	scratch sync.Pool
}

// New builds a matcher over g.
func New(g *roadnet.Graph, cfg Config) *Matcher {
	m := &Matcher{
		g:    g,
		adj:  shortestpath.FromGraph(g),
		tree: spatial.Build(g.Coords()),
		cfg:  cfg.withDefaults(),
	}
	m.scratch.New = func() any { return new(matchScratch) }
	return m
}

// Graph returns the road network the matcher was built over (read-only).
func (m *Matcher) Graph() *roadnet.Graph { return m.g }

// Config returns the matcher's resolved configuration (defaults applied).
func (m *Matcher) Config() Config { return m.cfg }

// ErrNoPath is returned by Match when the trace cannot be explained by a
// single connected candidate path (an HMM break). MatchTrace never returns
// it: breaks become segment splits there.
var ErrNoPath = errors.New("mapmatch: no connected candidate path")

// ErrEmptyTrace is returned for traces with no samples.
var ErrEmptyTrace = errors.New("mapmatch: empty trace")

// Segment is one connected sub-path of a matched trace. A trace without
// GPS dropouts yields exactly one segment covering every sample.
type Segment struct {
	// Path is the connected vertex path (consecutive vertices joined by
	// edges; stationary duplicates collapsed).
	Path []roadnet.VertexID
	// First and Last are the inclusive sample-index range of the trace
	// this segment explains.
	First, Last int
	// Confidence is the mean per-sample emission likelihood of the
	// matched geometry, in (0, 1]: each sample contributes
	// exp(-d²/2σ²) where d is its distance to the decoded path's
	// polyline near that sample. ~1 when the samples lie on the matched
	// route; it decays with GPS noise (d ≈ σ_noise gives ~exp(-σ²ₙ/2σ²)).
	Confidence float64
}

// Result is a matched trace: one segment per connected stretch.
type Result struct {
	Segments []Segment
	// Confidence is the sample-weighted mean of the segment confidences.
	Confidence float64
	// Splits counts HMM breaks, i.e. len(Segments)-1.
	Splits int
	// Elapsed is the wall-clock decode time of this trace (candidate
	// k-NN, Viterbi, backtrack — excluding any caller-side queueing), so
	// observability layers can histogram matcher latency without timing
	// around the call.
	Elapsed time.Duration
}

// Path returns the longest segment's path (the whole matched path for a
// split-free trace); ok reports whether the match was split-free.
func (r Result) Path() (path []roadnet.VertexID, ok bool) {
	if len(r.Segments) == 0 {
		return nil, false
	}
	best := 0
	for i := range r.Segments {
		if len(r.Segments[i].Path) > len(r.Segments[best].Path) {
			best = i
		}
	}
	return r.Segments[best].Path, len(r.Segments) == 1
}

// Match maps a GPS trace to a single connected vertex path on the network.
// It fails with ErrNoPath when the trace has an HMM break (use MatchTrace
// to recover the connected sub-paths instead).
func (m *Matcher) Match(trace []geo.Point) ([]roadnet.VertexID, error) {
	res, err := m.MatchTrace(trace)
	if err != nil {
		return nil, err
	}
	if len(res.Segments) != 1 {
		return nil, ErrNoPath
	}
	return res.Segments[0].Path, nil
}

// MatchTrace maps a GPS trace onto the network, splitting at HMM breaks:
// every sample is explained by exactly one segment, and each segment's
// path is connected. It fails only on an empty trace or an empty network.
func (m *Matcher) MatchTrace(trace []geo.Point) (Result, error) {
	if len(trace) == 0 {
		return Result{}, ErrEmptyTrace
	}
	if m.g.NumVertices() == 0 {
		return Result{}, errors.New("mapmatch: empty road network")
	}
	begin := time.Now()
	sc := m.scratch.Get().(*matchScratch)
	// Deferred so a decoder panic cannot leak the scratch from the pool.
	defer m.scratch.Put(sc)
	sc.prepare(m.g.NumVertices())

	var res Result
	start := 0
	for start < len(trace) {
		seg, next := m.decodeSegment(trace, start, sc)
		res.Segments = append(res.Segments, seg)
		start = next
	}
	res.Splits = len(res.Segments) - 1
	var confSum float64
	for _, s := range res.Segments {
		confSum += s.Confidence * float64(s.Last-s.First+1)
	}
	res.Confidence = confSum / float64(len(trace))
	res.Elapsed = time.Since(begin)
	return res, nil
}

// BatchItem is one trace's outcome inside MatchBatch.
type BatchItem struct {
	Result
	Err error
}

// MatchBatch matches several traces, fanning out over up to parallelism
// workers (<= 0 selects GOMAXPROCS). Results are in input order.
func (m *Matcher) MatchBatch(traces [][]geo.Point, parallelism int) []BatchItem {
	out := make([]BatchItem, len(traces))
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(traces) {
		parallelism = len(traces)
	}
	if parallelism <= 1 {
		for i, tr := range traces {
			out[i].Result, out[i].Err = m.MatchTrace(tr)
		}
		return out
	}
	var wg sync.WaitGroup
	tasks := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				out[i].Result, out[i].Err = m.MatchTrace(traces[i])
			}
		}()
	}
	for i := range traces {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	return out
}

// --- Viterbi decoding -----------------------------------------------------

// vstate is one candidate vertex in one Viterbi layer.
type vstate struct {
	v       int32
	logp    float64
	backptr int32
	// route holds the vertex path (excluding the previous state's vertex)
	// taken from the backptr state to this one.
	route []int32
}

// decodeSegment runs Viterbi from sample index start until the trace ends
// or an HMM break occurs, and returns the decoded segment plus the index
// the next segment starts at.
func (m *Matcher) decodeSegment(trace []geo.Point, start int, sc *matchScratch) (Segment, int) {
	sc.pushLayer(m.initialLayer(trace[start], sc))
	end := start // inclusive last sample decoded
	for i := start + 1; i < len(trace); i++ {
		cur := m.nextLayer(trace[i], trace[i-1], sc.layers[len(sc.layers)-1], sc)
		if len(cur) == 0 {
			// HMM break: no candidate of sample i connects to any live
			// state of sample i-1 (a GPS dropout, teleport, or off-network
			// stretch). Close this segment and restart at i.
			sc.freeLayers = append(sc.freeLayers, cur)
			break
		}
		sc.pushLayer(cur)
		end = i
	}
	layers := sc.layers
	defer sc.recycleLayers()

	// Backtrack from the best final state.
	last := layers[len(layers)-1]
	bi := int32(0)
	for i := range last {
		if last[i].logp > last[bi].logp {
			bi = int32(i)
		}
	}
	nL := len(layers)
	rev := sc.rev[:0] // route fragments in reverse layer order
	var headV int32
	for li := nL - 1; li >= 0; li-- {
		st := &layers[li][bi]
		if li > 0 {
			rev = append(rev, st.route)
			bi = st.backptr
		} else {
			headV = st.v
		}
	}
	sc.rev = rev[:0]
	// Stitch the path and record each layer's anchor — the index of its
	// decoded vertex within the stitched path — for the confidence pass.
	path := make([]int32, 0, nL)
	path = append(path, headV)
	anchors := sc.anchors[:0]
	anchors = append(anchors, 0)
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i]...)
		anchors = append(anchors, len(path)-1)
	}
	sc.anchors = anchors
	conf := m.confidence(trace[start:start+nL], path, anchors)
	// Collapse consecutive duplicates (stationary samples).
	out := path[:1]
	for _, v := range path[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return Segment{
		Path:       out,
		First:      start,
		Last:       end,
		Confidence: conf,
	}, end + 1
}

// confidence scores how well the samples sit on the decoded path: the mean
// Gaussian emission likelihood exp(-d²/2σ²) of each sample's distance d to
// the path polyline between its neighbouring anchors. Samples on the
// matched geometry score ~1 regardless of where along an edge they fall;
// the score decays with the actual GPS residual.
func (m *Matcher) confidence(samples []geo.Point, path []int32, anchors []int) float64 {
	var sum float64
	for li, p := range samples {
		lo, hi := anchors[li], anchors[li]
		if li > 0 {
			lo = anchors[li-1]
		}
		if li+1 < len(anchors) {
			hi = anchors[li+1]
		}
		var d float64
		if lo == hi {
			d = p.Dist(m.g.Coord(path[lo]))
		} else {
			d = math.Inf(1)
			for k := lo; k < hi; k++ {
				dist, _ := geo.SegmentDist(p, m.g.Coord(path[k]), m.g.Coord(path[k+1]))
				if dist < d {
					d = dist
				}
			}
		}
		sum += math.Exp(-d * d / (2 * m.cfg.Sigma * m.cfg.Sigma))
	}
	return sum / float64(len(samples))
}

// initialLayer seeds the Viterbi lattice at one sample.
func (m *Matcher) initialLayer(p geo.Point, sc *matchScratch) []vstate {
	layer := sc.takeLayer(m.cfg.MaxCandidates)
	sc.cands = m.tree.KNearestInto(p, m.cfg.MaxCandidates, &sc.knn, sc.cands[:0])
	for _, v := range sc.cands {
		layer = append(layer, vstate{v: v, logp: m.emit(p, v), backptr: -1})
	}
	return layer
}

// nextLayer advances the lattice by one sample, connecting each candidate
// of p to the best-scoring predecessor state via a bounded shortest path.
func (m *Matcher) nextLayer(p, prevP geo.Point, prev []vstate, sc *matchScratch) []vstate {
	displacement := p.Dist(prevP)
	cur := sc.takeLayer(m.cfg.MaxCandidates)
	if m.cfg.MaxGap > 0 && displacement > m.cfg.MaxGap {
		// Implausible jump: report an HMM break rather than hallucinate a
		// long unobserved route across the dropout.
		return cur
	}
	maxRoute := m.cfg.MaxRouteFactor * (displacement + m.cfg.Beta)
	sc.cands = m.tree.KNearestInto(p, m.cfg.MaxCandidates, &sc.knn, sc.cands[:0])
	for _, v := range sc.cands {
		best := vstate{v: v, logp: math.Inf(-1), backptr: -1}
		for pi := range prev {
			if math.IsInf(prev[pi].logp, -1) {
				continue
			}
			route, routeDist, ok := m.route(prev[pi].v, v, maxRoute, sc)
			if !ok {
				continue
			}
			trans := -math.Abs(routeDist-displacement) / m.cfg.Beta
			lp := prev[pi].logp + trans
			if lp > best.logp {
				best.logp = lp
				best.backptr = int32(pi)
				best.route = route
			}
		}
		if best.backptr >= 0 {
			best.logp += m.emit(p, v)
			cur = append(cur, best)
		}
	}
	return cur
}

func (m *Matcher) emit(p geo.Point, v int32) float64 {
	d2 := p.Dist2(m.g.Coord(v))
	return -d2 / (2 * m.cfg.Sigma * m.cfg.Sigma)
}

// --- bounded shortest paths ----------------------------------------------

// route returns the shortest vertex path from a to b (excluding a) and its
// length; ok is false when b is unreachable within maxDist. a == b yields
// an empty route of length 0. The returned slice is freshly allocated (it
// may be retained by the caller's decoded path).
func (m *Matcher) route(a, b int32, maxDist float64, sc *matchScratch) (path []int32, dist float64, ok bool) {
	if a == b {
		return nil, 0, true
	}
	// Bounded Dijkstra over epoch-stamped pooled arrays: no per-call maps.
	sc.epoch++
	if sc.epoch == 0 {
		// uint32 wrap: every stale stamp would read as current. Wipe the
		// stamp arrays (once per ~4 billion route queries) and restart.
		clear(sc.seen)
		clear(sc.settled)
		sc.epoch = 1
	}
	sc.visit(a, 0, -1)
	q := &sc.pq
	q.reset()
	q.push(a, 0)
	for q.len() > 0 {
		v, d := q.pop()
		if sc.settled[v] == sc.epoch {
			continue
		}
		sc.settled[v] = sc.epoch
		if v == b {
			// Reconstruct (b back to a, excluding a), then reverse.
			for x := b; x != a; x = sc.parent[x] {
				path = append(path, x)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path, d, true
		}
		if d > maxDist {
			return nil, 0, false
		}
		heads, ws := m.adj.Neighbors(v)
		for i, w := range heads {
			nd := d + ws[i]
			if sc.seen[w] != sc.epoch || nd < sc.dist[w] {
				sc.visit(w, nd, v)
				q.push(w, nd)
			}
		}
	}
	return nil, 0, false
}

// matchScratch is the pooled per-call state of one Match/MatchTrace call.
type matchScratch struct {
	// Viterbi lattice of the segment being decoded, plus a free list of
	// recycled layer slices and the k-NN candidate buffer.
	layers     [][]vstate
	freeLayers [][]vstate
	rev        [][]int32
	anchors    []int
	cands      []int32
	knn        spatial.KNN
	// Dijkstra arrays, epoch-stamped so clearing is O(1) per route call.
	dist    []float64
	parent  []int32
	seen    []uint32 // seen[v] == epoch: dist/parent valid
	settled []uint32 // settled[v] == epoch: v finalized
	epoch   uint32
	pq      boundedPQ
}

// prepare sizes the Dijkstra arrays for an n-vertex network and resets the
// lattice. Epoch stamping survives across calls; wrap-around is handled at
// the increment site in route (stamps are wiped when the epoch cycles).
func (sc *matchScratch) prepare(n int) {
	if len(sc.seen) < n {
		sc.dist = make([]float64, n)
		sc.parent = make([]int32, n)
		sc.seen = make([]uint32, n)
		sc.settled = make([]uint32, n)
		sc.epoch = 0
	}
	sc.layers = sc.layers[:0]
	sc.rev = sc.rev[:0]
}

func (sc *matchScratch) visit(v int32, d float64, parent int32) {
	sc.dist[v] = d
	sc.parent[v] = parent
	sc.seen[v] = sc.epoch
}

// takeLayer returns an empty layer slice, recycling one when available.
func (sc *matchScratch) takeLayer(capHint int) []vstate {
	if n := len(sc.freeLayers); n > 0 {
		l := sc.freeLayers[n-1]
		sc.freeLayers = sc.freeLayers[:n-1]
		return l[:0]
	}
	return make([]vstate, 0, capHint)
}

// pushLayer appends a finished layer to the current segment's lattice.
func (sc *matchScratch) pushLayer(l []vstate) {
	sc.layers = append(sc.layers, l)
}

// recycleLayers moves the current lattice's layers onto the free list once
// a segment has been decoded (the decoded path copies what it needs).
func (sc *matchScratch) recycleLayers() {
	sc.freeLayers = append(sc.freeLayers, sc.layers...)
	sc.layers = sc.layers[:0]
}

// boundedPQ is a tiny binary heap keyed by distance.
type boundedPQ struct {
	vs []int32
	ds []float64
}

func (q *boundedPQ) len() int { return len(q.vs) }

func (q *boundedPQ) reset() {
	q.vs = q.vs[:0]
	q.ds = q.ds[:0]
}

func (q *boundedPQ) push(v int32, d float64) {
	q.vs = append(q.vs, v)
	q.ds = append(q.ds, d)
	c := len(q.ds) - 1
	for c > 0 {
		p := (c - 1) / 2
		if q.ds[p] <= q.ds[c] {
			break
		}
		q.swap(p, c)
		c = p
	}
}

func (q *boundedPQ) pop() (int32, float64) {
	v, d := q.vs[0], q.ds[0]
	last := len(q.ds) - 1
	q.swap(0, last)
	q.vs = q.vs[:last]
	q.ds = q.ds[:last]
	p := 0
	for {
		l, r := 2*p+1, 2*p+2
		small := p
		if l < last && q.ds[l] < q.ds[small] {
			small = l
		}
		if r < last && q.ds[r] < q.ds[small] {
			small = r
		}
		if small == p {
			break
		}
		q.swap(p, small)
		p = small
	}
	return v, d
}

func (q *boundedPQ) swap(i, j int) {
	q.vs[i], q.vs[j] = q.vs[j], q.vs[i]
	q.ds[i], q.ds[j] = q.ds[j], q.ds[i]
}

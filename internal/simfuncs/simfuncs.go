// Package simfuncs implements the non-WED similarity functions the paper
// compares against in the effectiveness experiments (§6.2, §7, Appendix F):
// dynamic time warping (DTW), longest common subsequence (LCSS), longest
// overlapping road segments (LORS), and longest common road segments
// (LCRS), plus the weighted LCS that links LORS to SURS
// (SURS = w(x) + w(y) − 2·LORS, Appendix F).
//
// These functions do not belong to WED (§2.2.4), so the engine cannot index
// them; the experiments evaluate them with exhaustive subtrajectory scans,
// exactly as the paper does for LCRS ("we enumerate all subtrajectories").
package simfuncs

import (
	"math"

	"subtraj/internal/geo"
	"subtraj/internal/traj"
)

// DTW computes dynamic time warping between two point sequences with
// squared Euclidean local costs (the scaling the paper normalises against
// in §6.2.1).
func DTW(p, q []geo.Point) float64 {
	if len(p) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, len(q)+1)
	cur := make([]float64, len(q)+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 0; i < len(p); i++ {
		cur[0] = math.Inf(1)
		for j := 0; j < len(q); j++ {
			c := p[i].Dist2(q[j])
			best := prev[j] // diagonal
			if prev[j+1] < best {
				best = prev[j+1] // up
			}
			if cur[j] < best {
				best = cur[j] // left
			}
			cur[j+1] = c + best
		}
		prev, cur = cur, prev
	}
	return prev[len(q)]
}

// DiscreteFrechet computes the discrete Fréchet distance ("dog-leash
// distance") between two point sequences — the third coordinate-aware
// function of the paper's §7 related work (Xie et al.'s distributed
// search). It is the min over couplings of the max pointwise distance.
func DiscreteFrechet(p, q []geo.Point) float64 {
	if len(p) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, len(q))
	cur := make([]float64, len(q))
	for j := range q {
		d := p[0].Dist(q[j])
		if j == 0 {
			prev[0] = d
		} else {
			prev[j] = math.Max(prev[j-1], d)
		}
	}
	for i := 1; i < len(p); i++ {
		for j := range q {
			d := p[i].Dist(q[j])
			switch {
			case j == 0:
				cur[0] = math.Max(prev[0], d)
			default:
				best := prev[j] // advance p only
				if prev[j-1] < best {
					best = prev[j-1] // advance both
				}
				if cur[j-1] < best {
					best = cur[j-1] // advance q only
				}
				cur[j] = math.Max(best, d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(q)-1]
}

// LCSS returns the longest common subsequence length under ε-matching of
// coordinates (Vlachos et al.).
func LCSS(p, q []geo.Point, eps float64) int {
	prev := make([]int, len(q)+1)
	cur := make([]int, len(q)+1)
	eps2 := eps * eps
	for i := 0; i < len(p); i++ {
		for j := 0; j < len(q); j++ {
			if p[i].Dist2(q[j]) <= eps2 {
				cur[j+1] = prev[j] + 1
			} else if prev[j+1] >= cur[j] {
				cur[j+1] = prev[j+1]
			} else {
				cur[j+1] = cur[j]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(q)]
}

// WeightedLCS returns the maximum total weight of a common subsequence of
// two symbol strings, where a matched symbol s contributes weight(s). With
// road lengths as weights this is exactly LORS (Wang et al.).
func WeightedLCS(p, q []traj.Symbol, weight func(traj.Symbol) float64) float64 {
	prev := make([]float64, len(q)+1)
	cur := make([]float64, len(q)+1)
	for i := 0; i < len(p); i++ {
		for j := 0; j < len(q); j++ {
			if p[i] == q[j] {
				cur[j+1] = prev[j] + weight(p[i])
			} else if prev[j+1] >= cur[j] {
				cur[j+1] = prev[j+1]
			} else {
				cur[j+1] = cur[j]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(q)]
}

// LORS is the longest overlapping road segments similarity: the weighted
// LCS of two edge strings under road-length weights.
func LORS(p, q []traj.Symbol, weight func(traj.Symbol) float64) float64 {
	return WeightedLCS(p, q, weight)
}

// LCRS is the longest common road segments similarity of Yuan & Li:
// LORS / (w(x) + w(y) − LORS), a weighted-Jaccard normalisation of LORS
// (Appendix F).
func LCRS(p, q []traj.Symbol, weight func(traj.Symbol) float64) float64 {
	l := LORS(p, q, weight)
	var wp, wq float64
	for _, s := range p {
		wp += weight(s)
	}
	for _, s := range q {
		wq += weight(s)
	}
	den := wp + wq - l
	if den <= 0 {
		return 1 // both empty or fully shared
	}
	return l / den
}

// SumWeights totals weight(s) over a string (the w(x) of Appendix F).
func SumWeights(p []traj.Symbol, weight func(traj.Symbol) float64) float64 {
	var sum float64
	for _, s := range p {
		sum += weight(s)
	}
	return sum
}

// BestSub is the best-matching subtrajectory of one trajectory under a
// non-WED function.
type BestSub struct {
	S, T  int     // 0-based inclusive bounds
	Score float64 // similarity (higher better) or distance (lower better)
	OK    bool
}

// BestSubDTW returns the subtrajectory of p minimising DTW to q, scanning
// all O(|p|²) subtrajectories. maxLen bounds the subtrajectory length
// (0 = no bound) to keep effectiveness scans tractable.
func BestSubDTW(p, q []geo.Point, maxLen int) BestSub {
	best := BestSub{Score: math.Inf(1)}
	for s := 0; s < len(p); s++ {
		hi := len(p)
		if maxLen > 0 && s+maxLen < hi {
			hi = s + maxLen
		}
		// Incremental DTW over growing suffix lengths: recompute rows as
		// the subtrajectory extends (row t uses row t-1 of the same s).
		prev := make([]float64, len(q)+1)
		cur := make([]float64, len(q)+1)
		for j := range prev {
			prev[j] = math.Inf(1)
		}
		prev[0] = 0
		for t := s; t < hi; t++ {
			cur[0] = math.Inf(1)
			for j := 0; j < len(q); j++ {
				c := p[t].Dist2(q[j])
				bestc := prev[j]
				if prev[j+1] < bestc {
					bestc = prev[j+1]
				}
				if cur[j] < bestc {
					bestc = cur[j]
				}
				cur[j+1] = c + bestc
			}
			prev, cur = cur, prev
			score := prev[len(q)]
			if score < best.Score || (score == best.Score && best.OK && t-s < best.T-best.S) {
				best = BestSub{S: s, T: t, Score: score, OK: true}
			}
		}
	}
	return best
}

// BestSubWLCS returns the subtrajectory of p maximising a score derived
// from its weighted LCS with q. For each candidate subtrajectory p[s..t],
// score(l, wsub) receives l = WeightedLCS(p[s..t], q) and wsub =
// SumWeights(p[s..t]); the subtrajectory with the highest score wins, ties
// broken by shortest length. The scan is incremental: extending t by one
// adds a single DP row, so the total cost is O(|p|²·|q|).
//
// LORS uses score = l; LCRS uses l/(wsub + w(q) − l); LCSS uses unit
// weights and score = l.
func BestSubWLCS(p, q []traj.Symbol, weight func(traj.Symbol) float64,
	score func(l, wsub float64) float64, maxLen int) BestSub {

	best := BestSub{Score: math.Inf(-1)}
	prev := make([]float64, len(q)+1)
	cur := make([]float64, len(q)+1)
	for s := 0; s < len(p); s++ {
		hi := len(p)
		if maxLen > 0 && s+maxLen < hi {
			hi = s + maxLen
		}
		for j := range prev {
			prev[j] = 0
		}
		var wsub float64
		for t := s; t < hi; t++ {
			wsub += weight(p[t])
			cur[0] = 0
			for j := 0; j < len(q); j++ {
				if p[t] == q[j] {
					cur[j+1] = prev[j] + weight(p[t])
				} else if prev[j+1] >= cur[j] {
					cur[j+1] = prev[j+1]
				} else {
					cur[j+1] = cur[j]
				}
			}
			prev, cur = cur, prev
			sc := score(prev[len(q)], wsub)
			if sc > best.Score || (sc == best.Score && best.OK && t-s < best.T-best.S) {
				best = BestSub{S: s, T: t, Score: sc, OK: true}
			}
		}
	}
	return best
}

// BestSubLCSS returns the subtrajectory of p with the largest ε-matching
// LCSS count against the point sequence q, ties broken by shortest length.
func BestSubLCSS(p, q []geo.Point, eps float64, maxLen int) BestSub {
	best := BestSub{Score: math.Inf(-1)}
	eps2 := eps * eps
	prev := make([]int, len(q)+1)
	cur := make([]int, len(q)+1)
	for s := 0; s < len(p); s++ {
		hi := len(p)
		if maxLen > 0 && s+maxLen < hi {
			hi = s + maxLen
		}
		for j := range prev {
			prev[j] = 0
		}
		for t := s; t < hi; t++ {
			cur[0] = 0
			for j := 0; j < len(q); j++ {
				if p[t].Dist2(q[j]) <= eps2 {
					cur[j+1] = prev[j] + 1
				} else if prev[j+1] >= cur[j] {
					cur[j+1] = prev[j+1]
				} else {
					cur[j+1] = cur[j]
				}
			}
			prev, cur = cur, prev
			sc := float64(prev[len(q)])
			if sc > best.Score || (sc == best.Score && best.OK && t-s < best.T-best.S) {
				best = BestSub{S: s, T: t, Score: sc, OK: true}
			}
		}
	}
	return best
}

package simfuncs_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/geo"
	"subtraj/internal/simfuncs"
	"subtraj/internal/traj"
)

func randPts(rng *rand.Rand, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return out
}

func randSyms(rng *rand.Rand, alpha, n int) []traj.Symbol {
	out := make([]traj.Symbol, n)
	for i := range out {
		out[i] = traj.Symbol(rng.Intn(alpha))
	}
	return out
}

func TestDTWProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		p := randPts(rng, 1+rng.Intn(10))
		q := randPts(rng, 1+rng.Intn(10))
		d := simfuncs.DTW(p, q)
		if d < 0 {
			t.Fatal("negative DTW")
		}
		if simfuncs.DTW(p, p) != 0 {
			t.Fatal("DTW(p,p) != 0")
		}
		if math.Abs(d-simfuncs.DTW(q, p)) > 1e-9*(1+d) {
			t.Fatal("DTW asymmetric")
		}
	}
	if !math.IsInf(simfuncs.DTW(nil, randPts(rng, 3)), 1) {
		t.Fatal("DTW with empty sequence must be +Inf")
	}
}

func TestDTWKnownValue(t *testing.T) {
	p := []geo.Point{{X: 0}, {X: 1}, {X: 2}}
	q := []geo.Point{{X: 0}, {X: 2}}
	// Optimal warping: (0,0), (1,?) (2,2): cost 0 + min(1,1) + 0 = 1
	// (squared distances).
	if got := simfuncs.DTW(p, q); got != 1 {
		t.Fatalf("DTW = %v, want 1", got)
	}
}

// bruteFrechet enumerates all monotone couplings recursively (exponential
// — tiny inputs only).
func bruteFrechet(p, q []geo.Point, i, j int) float64 {
	d := p[i].Dist(q[j])
	if i == 0 && j == 0 {
		return d
	}
	best := math.Inf(1)
	if i > 0 {
		best = math.Min(best, bruteFrechet(p, q, i-1, j))
	}
	if j > 0 {
		best = math.Min(best, bruteFrechet(p, q, i, j-1))
	}
	if i > 0 && j > 0 {
		best = math.Min(best, bruteFrechet(p, q, i-1, j-1))
	}
	return math.Max(best, d)
}

func TestDiscreteFrechetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		p := randPts(rng, 1+rng.Intn(6))
		q := randPts(rng, 1+rng.Intn(6))
		got := simfuncs.DiscreteFrechet(p, q)
		want := bruteFrechet(p, q, len(p)-1, len(q)-1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Frechet %v != brute %v", got, want)
		}
	}
}

func TestDiscreteFrechetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		p := randPts(rng, 1+rng.Intn(8))
		q := randPts(rng, 1+rng.Intn(8))
		d := simfuncs.DiscreteFrechet(p, q)
		if d < 0 {
			t.Fatal("negative Frechet")
		}
		if simfuncs.DiscreteFrechet(p, p) != 0 {
			t.Fatal("Frechet(p,p) != 0")
		}
		if rev := simfuncs.DiscreteFrechet(q, p); math.Abs(d-rev) > 1e-9 {
			t.Fatal("Frechet asymmetric")
		}
		// Fréchet dominates the endpoint distances and is dominated by
		// DTW's max step... instead check the standard lower bound:
		// d ≥ max(d(p1,q1), d(pm,qn)).
		lb := math.Max(p[0].Dist(q[0]), p[len(p)-1].Dist(q[len(q)-1]))
		if d < lb-1e-9 {
			t.Fatalf("Frechet %v below endpoint bound %v", d, lb)
		}
	}
	if !math.IsInf(simfuncs.DiscreteFrechet(nil, randPts(rng, 2)), 1) {
		t.Fatal("empty sequence must give +Inf")
	}
}

// refLCS is the classic integer LCS on exact symbol equality.
func refLCS(a, b []traj.Symbol) int {
	d := make([][]int, len(a)+1)
	for i := range d {
		d[i] = make([]int, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				d[i][j] = d[i-1][j-1] + 1
			} else if d[i-1][j] > d[i][j-1] {
				d[i][j] = d[i-1][j]
			} else {
				d[i][j] = d[i][j-1]
			}
		}
	}
	return d[len(a)][len(b)]
}

func TestWeightedLCSUnitWeightsEqualsLCS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	unit := func(traj.Symbol) float64 { return 1 }
	for trial := 0; trial < 200; trial++ {
		a := randSyms(rng, 4, rng.Intn(12))
		b := randSyms(rng, 4, rng.Intn(12))
		if got, want := simfuncs.WeightedLCS(a, b, unit), float64(refLCS(a, b)); got != want {
			t.Fatalf("WLCS %v != LCS %v", got, want)
		}
	}
}

func TestWeightedLCSBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := func(s traj.Symbol) float64 { return float64(s) + 1 }
	for trial := 0; trial < 100; trial++ {
		a := randSyms(rng, 5, rng.Intn(10))
		b := randSyms(rng, 5, rng.Intn(10))
		l := simfuncs.WeightedLCS(a, b, w)
		if l < 0 {
			t.Fatal("negative WLCS")
		}
		if l > simfuncs.SumWeights(a, w)+1e-9 || l > simfuncs.SumWeights(b, w)+1e-9 {
			t.Fatal("WLCS exceeds string weight")
		}
		if simfuncs.WeightedLCS(a, a, w) != simfuncs.SumWeights(a, w) {
			t.Fatal("WLCS(a,a) != w(a)")
		}
	}
}

func TestLCSSMatchesUnitWLCSForTinyEps(t *testing.T) {
	// With ε = 0 and distinct integer coordinates, LCSS equals exact LCS.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		a := randSyms(rng, 5, rng.Intn(10))
		b := randSyms(rng, 5, rng.Intn(10))
		toPts := func(s []traj.Symbol) []geo.Point {
			out := make([]geo.Point, len(s))
			for i, v := range s {
				out[i] = geo.Point{X: float64(v) * 10}
			}
			return out
		}
		if got, want := simfuncs.LCSS(toPts(a), toPts(b), 0.5), refLCS(a, b); got != want {
			t.Fatalf("LCSS %v != %v", got, want)
		}
	}
}

func TestLCRSRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := func(s traj.Symbol) float64 { return float64(s%3) + 1 }
	for trial := 0; trial < 100; trial++ {
		a := randSyms(rng, 6, 1+rng.Intn(10))
		b := randSyms(rng, 6, 1+rng.Intn(10))
		r := simfuncs.LCRS(a, b, w)
		if r < 0 || r > 1 {
			t.Fatalf("LCRS out of [0,1]: %v", r)
		}
		if simfuncs.LCRS(a, a, w) != 1 {
			t.Fatal("LCRS(a,a) != 1")
		}
	}
}

func TestBestSubDTWFindsEmbeddedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randPts(rng, 5)
	// p embeds q exactly at [3, 7].
	p := append(append(randPts(rng, 3), q...), randPts(rng, 4)...)
	best := simfuncs.BestSubDTW(p, q, 0)
	if !best.OK {
		t.Fatal("no result")
	}
	if best.Score != 0 {
		t.Fatalf("embedded query not found: score %v", best.Score)
	}
	if best.S != 3 || best.T != 7 {
		t.Fatalf("wrong bounds: [%d,%d]", best.S, best.T)
	}
}

func TestBestSubWLCSFindsEmbeddedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := func(traj.Symbol) float64 { return 1 }
	q := []traj.Symbol{100, 101, 102, 103}
	p := append(append(randSyms(rng, 5, 4), q...), randSyms(rng, 5, 3)...)
	score := func(l, wsub float64) float64 { return l } // LORS
	best := simfuncs.BestSubWLCS(p, q, w, score, 0)
	if !best.OK || best.Score != 4 {
		t.Fatalf("embedded query not found: %+v", best)
	}
	// Shortest-tie-break: bounds must be exactly the embedded region.
	if best.S != 4 || best.T != 7 {
		t.Fatalf("wrong bounds: [%d,%d]", best.S, best.T)
	}
}

func TestBestSubWLCSRespectsMaxLen(t *testing.T) {
	w := func(traj.Symbol) float64 { return 1 }
	p := []traj.Symbol{1, 2, 3, 4, 5, 6}
	q := []traj.Symbol{1, 2, 3, 4, 5, 6}
	best := simfuncs.BestSubWLCS(p, q, w, func(l, _ float64) float64 { return l }, 3)
	if best.T-best.S+1 > 3 {
		t.Fatalf("maxLen violated: [%d,%d]", best.S, best.T)
	}
	if best.Score != 3 {
		t.Fatalf("score %v, want 3", best.Score)
	}
}

func TestSURSLORSRelationUsesWLCS(t *testing.T) {
	// Appendix F identity is covered in the wed package tests; here we
	// check LCRS's algebraic relation to LORS explicitly:
	// LCRS = LORS / (w(x) + w(y) − LORS).
	rng := rand.New(rand.NewSource(8))
	w := func(s traj.Symbol) float64 { return float64(s) + 0.5 }
	for trial := 0; trial < 100; trial++ {
		a := randSyms(rng, 5, 1+rng.Intn(8))
		b := randSyms(rng, 5, 1+rng.Intn(8))
		l := simfuncs.LORS(a, b, w)
		want := l / (simfuncs.SumWeights(a, w) + simfuncs.SumWeights(b, w) - l)
		if got := simfuncs.LCRS(a, b, w); math.Abs(got-want) > 1e-12 {
			t.Fatalf("LCRS %v != %v", got, want)
		}
	}
}

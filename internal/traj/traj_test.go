package traj_test

import (
	"testing"

	"subtraj/internal/testutil"
	"subtraj/internal/traj"
)

func TestDatasetBasics(t *testing.T) {
	ds := traj.NewDataset(traj.VertexRep)
	if ds.Len() != 0 || ds.AvgLen() != 0 || ds.TotalSymbols() != 0 {
		t.Fatal("empty dataset stats non-zero")
	}
	id := ds.Add(traj.Trajectory{Path: []traj.Symbol{1, 2, 3}, Times: []float64{0, 1, 2}})
	if id != 0 || ds.Len() != 1 {
		t.Fatal("add failed")
	}
	ds.Add(traj.Trajectory{Path: []traj.Symbol{4}, Times: []float64{5}})
	if ds.AvgLen() != 2 {
		t.Fatalf("avg len %v", ds.AvgLen())
	}
	if ds.TotalSymbols() != 4 {
		t.Fatalf("total symbols %d", ds.TotalSymbols())
	}
	tr := ds.Get(0)
	if dep, ok := tr.Departure(); !ok || dep != 0 {
		t.Fatal("departure")
	}
	if arr, ok := tr.Arrival(); !ok || arr != 2 {
		t.Fatal("arrival")
	}
	lo, hi, ok := tr.Interval()
	if !ok || lo != 0 || hi != 2 {
		t.Fatal("interval")
	}
	var empty traj.Trajectory
	if _, ok := empty.Departure(); ok {
		t.Fatal("empty departure ok")
	}
	if _, _, ok := empty.Interval(); ok {
		t.Fatal("empty interval ok")
	}
}

func TestSlice(t *testing.T) {
	ds := traj.NewDataset(traj.VertexRep)
	for i := 0; i < 10; i++ {
		ds.Add(traj.Trajectory{Path: []traj.Symbol{traj.Symbol(i)}})
	}
	half := ds.Slice(5)
	if half.Len() != 5 {
		t.Fatalf("slice len %d", half.Len())
	}
	over := ds.Slice(50)
	if over.Len() != 10 {
		t.Fatalf("over-slice len %d", over.Len())
	}
}

func TestToEdgeRep(t *testing.T) {
	env := testutil.NewEnv(1, 15, 12)
	ed, err := env.V.ToEdgeRep(env.G)
	if err != nil {
		t.Fatal(err)
	}
	if ed.Rep != traj.EdgeRep {
		t.Fatal("wrong representation")
	}
	// Each edge path must reconstruct the original vertex path.
	j := 0
	for id := range env.V.Trajs {
		vp := env.V.Trajs[id].Path
		if len(vp) < 2 {
			continue
		}
		ep := ed.Trajs[j].Path
		back, err := env.G.EdgePathToVertices(ep)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(vp) {
			t.Fatalf("length mismatch: %d vs %d", len(back), len(vp))
		}
		for i := range back {
			if back[i] != vp[i] {
				t.Fatalf("vertex mismatch at %d", i)
			}
		}
		j++
	}
	// Wrong representation must error.
	if _, err := ed.ToEdgeRep(env.G); err == nil {
		t.Fatal("ToEdgeRep on edge dataset accepted")
	}
}

func TestMatchKey(t *testing.T) {
	m := traj.Match{ID: 3, S: 1, T: 5, WED: 0.5}
	k := m.Key()
	if k.ID != 3 || k.S != 1 || k.T != 5 {
		t.Fatalf("key %+v", k)
	}
	if (traj.Match{ID: 3, S: 1, T: 5, WED: 9}).Key() != k {
		t.Fatal("key must ignore WED")
	}
}

func TestRepresentationString(t *testing.T) {
	if traj.VertexRep.String() != "vertex" || traj.EdgeRep.String() != "edge" {
		t.Fatal("representation names")
	}
	if traj.Representation(9).String() == "" {
		t.Fatal("unknown representation must still print")
	}
}

// Package traj defines the trajectory data model of §2.1: a trajectory is a
// pair (P, T) where P is a path on the road network (a string over the
// alphabet V or E) and T is a timestamp per vertex. A dataset is an
// in-memory collection of trajectories addressed by dense IDs, matching the
// paper's main-memory setting.
package traj

import (
	"cmp"
	"fmt"
	"slices"

	"subtraj/internal/roadnet"
)

// Symbol is a trajectory element: a vertex ID under vertex representation
// or an edge ID under edge representation. WED cost models interpret it.
type Symbol = int32

// Representation says how a path is encoded.
type Representation uint8

const (
	// VertexRep paths are sequences of vertex IDs.
	VertexRep Representation = iota
	// EdgeRep paths are sequences of edge IDs.
	EdgeRep
)

func (r Representation) String() string {
	switch r {
	case VertexRep:
		return "vertex"
	case EdgeRep:
		return "edge"
	default:
		return fmt.Sprintf("Representation(%d)", uint8(r))
	}
}

// Trajectory is one network-constrained trajectory.
type Trajectory struct {
	// Path is the string over the alphabet (vertex or edge IDs).
	Path []Symbol
	// Times holds one timestamp (seconds since the dataset epoch) per
	// vertex of the vertex-representation path. For edge representation,
	// Times[i] is the time the trajectory entered edge Path[i], and
	// Times[len(Path)] the arrival at the final vertex; its length is
	// len(Path)+1 in both representations' vertex count terms. Times may
	// be nil when the workload carries no temporal information.
	Times []float64
}

// Len returns the string length |P|.
func (t *Trajectory) Len() int { return len(t.Path) }

// Departure returns the first timestamp; ok is false without temporal data.
func (t *Trajectory) Departure() (float64, bool) {
	if len(t.Times) == 0 {
		return 0, false
	}
	return t.Times[0], true
}

// Arrival returns the last timestamp; ok is false without temporal data.
func (t *Trajectory) Arrival() (float64, bool) {
	if len(t.Times) == 0 {
		return 0, false
	}
	return t.Times[len(t.Times)-1], true
}

// Interval returns the [departure, arrival] interval I^(id) used by the
// temporal pre-filter (§4.3).
func (t *Trajectory) Interval() (lo, hi float64, ok bool) {
	if len(t.Times) == 0 {
		return 0, 0, false
	}
	return t.Times[0], t.Times[len(t.Times)-1], true
}

// Dataset is an in-memory trajectory collection. IDs are dense indexes.
type Dataset struct {
	Rep   Representation
	Trajs []Trajectory
}

// NewDataset creates an empty dataset with the given representation.
func NewDataset(rep Representation) *Dataset {
	return &Dataset{Rep: rep}
}

// Len returns the number of trajectories N.
func (d *Dataset) Len() int { return len(d.Trajs) }

// Add appends a trajectory and returns its ID.
func (d *Dataset) Add(t Trajectory) int32 {
	d.Trajs = append(d.Trajs, t)
	return int32(len(d.Trajs) - 1)
}

// Get returns the trajectory with the given ID.
func (d *Dataset) Get(id int32) *Trajectory { return &d.Trajs[id] }

// Path returns the path of trajectory id (accessTrajectory in Alg. 4).
func (d *Dataset) Path(id int32) []Symbol { return d.Trajs[id].Path }

// AvgLen returns the average path length, a dataset statistic reported in
// Table 2.
func (d *Dataset) AvgLen() float64 {
	if len(d.Trajs) == 0 {
		return 0
	}
	var sum int
	for i := range d.Trajs {
		sum += len(d.Trajs[i].Path)
	}
	return float64(sum) / float64(len(d.Trajs))
}

// TotalSymbols returns Σ|P|, the total postings count of the inverted
// index.
func (d *Dataset) TotalSymbols() int {
	var sum int
	for i := range d.Trajs {
		sum += len(d.Trajs[i].Path)
	}
	return sum
}

// Slice returns a shallow dataset containing only the first n trajectories
// (used by the dataset-size sweeps of Figures 8 and 10). The underlying
// trajectories are shared.
func (d *Dataset) Slice(n int) *Dataset {
	if n > len(d.Trajs) {
		n = len(d.Trajs)
	}
	return &Dataset{Rep: d.Rep, Trajs: d.Trajs[:n]}
}

// ToEdgeRep converts a vertex-representation dataset into edge
// representation on graph g. Timestamps are preserved (Times keeps the
// per-vertex semantics; see Trajectory.Times). Trajectories of length < 2
// vertices become empty edge strings and are dropped.
func (d *Dataset) ToEdgeRep(g *roadnet.Graph) (*Dataset, error) {
	if d.Rep != VertexRep {
		return nil, fmt.Errorf("traj: ToEdgeRep requires a vertex-representation dataset")
	}
	out := NewDataset(EdgeRep)
	for id := range d.Trajs {
		t := &d.Trajs[id]
		if len(t.Path) < 2 {
			continue
		}
		edges, err := g.VertexPathToEdges(t.Path)
		if err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", id, err)
		}
		out.Add(Trajectory{Path: edges, Times: t.Times})
	}
	return out, nil
}

// Match identifies one answer of the subtrajectory similarity search
// (Definition 3): trajectory ID and the 0-based inclusive subtrajectory
// bounds [S, T] such that wed(P[S:T+1], Q) < τ. (The paper's (id, s, t) is
// 1-based inclusive; we keep Go slice conventions internally.)
type Match struct {
	ID   int32
	S, T int32
	// WED is the distance of the matched subtrajectory to the query.
	WED float64
}

// Key returns a comparable dedup key.
func (m Match) Key() MatchKey { return MatchKey{m.ID, m.S, m.T} }

// SortMatches orders matches by (ID, S, T) — the canonical result order
// every search path returns. (ID, S, T) is unique within one result set,
// so the order is total and deterministic; the sharded query pipeline
// depends on this to make its merge independent of shard scheduling.
// (The verifier also sorts pre-merge buffers that may hold duplicate
// keys; those are min-merged right after, so the unstable sort still
// yields a deterministic result.) slices.SortFunc rather than
// sort.Slice: the generic sort needs no reflection and no per-call
// allocation, and this runs once per trajectory in the verify hot path.
func SortMatches(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int {
		if c := cmp.Compare(a.ID, b.ID); c != 0 {
			return c
		}
		if c := cmp.Compare(a.S, b.S); c != 0 {
			return c
		}
		return cmp.Compare(a.T, b.T)
	})
}

// MatchKey identifies a match position without its distance.
type MatchKey struct {
	ID   int32
	S, T int32
}

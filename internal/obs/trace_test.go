package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req-1", "request")
	s1 := tr.StartSpan(nil, "cache_lookup")
	time.Sleep(2 * time.Millisecond)
	s1.End()
	s2 := tr.StartSpan(nil, "engine")
	sub := tr.StartSpan(s2, "verify")
	time.Sleep(2 * time.Millisecond)
	sub.End()
	s2.End()
	s2.SetAttr("workers", 4)
	tr.AddSpan(s2, "plan", 3*time.Millisecond)
	total := tr.Finish()

	j := tr.JSON()
	if j == nil || j.Name != "request" {
		t.Fatalf("bad root: %+v", j)
	}
	if len(j.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(j.Children))
	}
	if j.DurUS < s1.dur.Microseconds() {
		t.Errorf("root dur %dµs < child dur", j.DurUS)
	}
	if total < 4*time.Millisecond {
		t.Errorf("total = %v, want ≥ 4ms", total)
	}
	eng := j.Children[1]
	if eng.Name != "engine" || len(eng.Children) != 2 {
		t.Fatalf("bad engine span: %+v", eng)
	}
	if eng.Attrs["workers"] != 4 {
		t.Errorf("attrs = %v", eng.Attrs)
	}
	// The synthetic work span lays out after the wall child.
	plan := eng.Children[1]
	if plan.Name != "plan" || plan.DurUS != 3000 {
		t.Errorf("plan span = %+v", plan)
	}
	if plan.StartUS < eng.Children[0].StartUS+eng.Children[0].DurUS {
		t.Errorf("work span start %d overlaps prior sibling", plan.StartUS)
	}

	bd := tr.Breakdown()
	if !strings.Contains(bd, "cache_lookup=") || !strings.Contains(bd, "engine=") {
		t.Errorf("Breakdown = %q", bd)
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context must carry no trace")
	}
	tr := NewTrace("id", "r")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace lost in context")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("id", "r")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.StartSpan(nil, "stage")
				s.SetAttr("i", i)
				s.End()
				tr.AddSpan(nil, "work", time.Microsecond)
				_ = tr.JSON()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.JSON().Children); got != 8*400 {
		t.Errorf("children = %d, want %d", got, 8*400)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %s", id)
		}
		seen[id] = true
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	base := time.Now()
	for i := 0; i < 5; i++ {
		r.Add(TraceRecord{RequestID: string(rune('a' + i)), Time: base.Add(time.Duration(i) * time.Second)})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d, want 3", len(snap))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if snap[i].RequestID != want {
			t.Errorf("snap[%d] = %s, want %s", i, snap[i].RequestID, want)
		}
	}
	// Degenerate capacities.
	NewTraceRing(0).Add(TraceRecord{})
	NewTraceRing(-1).Add(TraceRecord{})
	var nilRing *TraceRing
	nilRing.Add(TraceRecord{})
	if nilRing.Snapshot() != nil {
		t.Error("nil ring snapshot must be nil")
	}
}

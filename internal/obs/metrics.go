// Package obs is the serving stack's observability layer: a
// dependency-free metrics registry (lock-cheap counters, gauges, and
// fixed-bucket latency histograms with Prometheus text exposition), a
// lightweight per-request trace carried through context.Context, and a
// ring buffer retaining the span trees of recent slow queries.
//
// The paper's whole argument is a filter/verify cost breakdown (Tables
// 4/5); this package makes the same breakdown visible in a *running*
// server — per-stage span trees per request, p50/p99 latency per
// endpoint, and the band/reuse ratios as scrapeable gauges — without
// pulling in a metrics dependency.
//
// Every metric handle is nil-safe: methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, and a nil *Registry hands out nil handles. A
// caller that wants metrics off entirely just keeps a nil registry, which
// is also the baseline the "< 3% overhead" acceptance benchmark compares
// against.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// --- metric handles -------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop; gauges are low-rate).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: per-bucket atomic counts plus
// an atomic sum. Observe is wait-free except for the sum's CAS. The
// bucket layout is immutable after construction, so readers need no lock;
// a scrape may interleave with writers and see a sum slightly behind the
// counts (each line is individually consistent, which is all Prometheus
// asks of a live scrape).
type Histogram struct {
	// uppers holds the inclusive bucket upper bounds, ascending; the
	// implicit final bucket is +Inf. counts[i] counts observations with
	// v <= uppers[i] falling in bucket i (NOT cumulative; the exposition
	// accumulates at read time).
	uppers  []float64
	counts  []atomic.Int64 // len(uppers)+1; last = overflow (+Inf)
	sumBits atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	us := append([]float64(nil), uppers...)
	sort.Float64s(us)
	return &Histogram{uppers: us, counts: make([]atomic.Int64, len(us)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~25) and the common case
	// (low-latency ops) exits in the first few probes; a binary search
	// costs more in branch misses than it saves.
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket holding the target rank — the standard
// histogram_quantile estimate. Returns 0 with no observations; ranks
// landing in the +Inf overflow bucket report the largest finite bound
// (the estimate is saturated, not extrapolated).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.uppers {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.uppers[i-1]
			}
			if c == 0 {
				return h.uppers[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (h.uppers[i]-lo)*frac
		}
		cum += c
	}
	if len(h.uppers) == 0 {
		return 0
	}
	return h.uppers[len(h.uppers)-1]
}

// LatencyBuckets is the default histogram layout for request/stage
// latencies, in seconds: ~100 µs to 100 s, roughly 2.5× per step. Queries
// in this system run from tens of microseconds (cache hits) to seconds
// (cold top-k), so the grid brackets both tails.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// RatioBuckets is the layout for values in [0, 1] (confidences, ratios).
var RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// --- registry -------------------------------------------------------------

// Labels is an ordered label set rendered into the exposition as
// {k1="v1",k2="v2"}. Order is preserved as given (callers pass a
// consistent order per family).
type Labels [][2]string

// L is shorthand for a one-label set.
func L(k, v string) Labels { return Labels{{k, v}} }

func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one labelled instance inside a family.
type series struct {
	labels Labels
	// exactly one of these is set
	counter     *Counter
	counterFunc func() float64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

type family struct {
	name, help, typ string // typ: "counter" | "gauge" | "histogram"
	series          []*series
}

// Registry owns metric families and renders them in Prometheus text
// exposition format. Families appear in registration order, series within
// a family in their own registration order, so output is deterministic.
// All methods are safe for concurrent use; a nil *Registry hands out nil
// (no-op) handles.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// Counter registers (or extends) a counter family and returns the handle
// for the given label set.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: labels, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — the bridge from pre-existing atomic counters (the server's
// request totals) so /metrics and /v1/stats share one source of truth.
func (r *Registry) CounterFunc(name, help string, labels Labels, f func() float64) {
	if r == nil {
		return
	}
	r.add(name, help, "counter", &series{labels: labels, counterFunc: f})
}

// Gauge registers a settable gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {
	if r == nil {
		return
	}
	r.add(name, help, "gauge", &series{labels: labels, gaugeFunc: f})
}

// Histogram registers a fixed-bucket histogram (buckets are upper bounds,
// ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	r.add(name, help, "histogram", &series{labels: labels, hist: h})
	return h
}

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4). It always returns a nil error unless w errors.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, f := range fams {
		if err := f.write(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) printf(format string, args ...any) {
	if cw.err != nil {
		return
	}
	n, err := fmt.Fprintf(cw.w, format, args...)
	cw.n += int64(n)
	cw.err = err
}

func (f *family) write(cw *countingWriter) error {
	cw.printf("# HELP %s %s\n", f.name, f.help)
	cw.printf("# TYPE %s %s\n", f.name, f.typ)
	for _, s := range f.series {
		switch {
		case s.counter != nil:
			cw.printf("%s%s %d\n", f.name, s.labels.render(), s.counter.Value())
		case s.counterFunc != nil:
			cw.printf("%s%s %s\n", f.name, s.labels.render(), formatValue(s.counterFunc()))
		case s.gauge != nil:
			cw.printf("%s%s %s\n", f.name, s.labels.render(), formatValue(s.gauge.Value()))
		case s.gaugeFunc != nil:
			cw.printf("%s%s %s\n", f.name, s.labels.render(), formatValue(s.gaugeFunc()))
		case s.hist != nil:
			writeHistogram(cw, f.name, s.labels, s.hist)
		}
	}
	return cw.err
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet. The
// bucket counts are read once into a snapshot so the cumulative series is
// internally monotonic even while writers race the scrape; _count equals
// the +Inf bucket by construction.
func writeHistogram(cw *countingWriter, name string, labels Labels, h *Histogram) {
	snap := make([]int64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	var cum int64
	for i, upper := range h.uppers {
		cum += snap[i]
		cw.printf("%s_bucket%s %d\n", name, labels.with("le", formatValue(upper)).render(), cum)
	}
	cum += snap[len(snap)-1]
	cw.printf("%s_bucket%s %d\n", name, labels.with("le", "+Inf").render(), cum)
	cw.printf("%s_sum%s %s\n", name, labels.render(), formatValue(h.Sum()))
	cw.printf("%s_count%s %d\n", name, labels.render(), cum)
}

// with returns a copy of ls with one more label appended.
func (ls Labels) with(k, v string) Labels {
	out := make(Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, [2]string{k, v})
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trippable decimal.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

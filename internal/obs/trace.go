package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Trace records the timestamped span tree of one request: which
// pipeline stages ran (cache lookup, GPS match, plan build, filter,
// verify, top-k rounds) and how long each took. It is carried through
// context.Context so any layer can attach spans without new plumbing.
//
// Spans fall in two kinds:
//
//   - wall spans (StartSpan/End): measured on the caller's clock,
//     sequential within their parent, so sibling durations sum to the
//     parent's — these satisfy the "stages sum to request latency"
//     contract at the top level of the tree;
//   - work spans (AddSpan): durations imported from instrumentation that
//     sums *work* across shard workers (core.QueryStats). Under a
//     parallel query summed work exceeds wall time by design; such spans
//     carry a "workers" attribute so readers know which semantics apply.
//
// A nil *Trace is a valid no-op sink: every method returns immediately,
// so call sites need no "is tracing on?" branches.
type Trace struct {
	mu    sync.Mutex
	id    string    // immutable after NewTrace
	begin time.Time // immutable after NewTrace
	root  *Span     // guarded by mu (the pointer is fixed at construction; the span tree under it is not)
}

// Span is one timed stage. Fields are managed by the owning Trace; read
// them via the JSON snapshot, not concurrently with writers.
type Span struct {
	name     string
	start    time.Time     // wall start (wall spans)
	offset   time.Duration // offset from trace begin
	dur      time.Duration
	attrs    []spanAttr
	children []*Span
	tr       *Trace
	done     bool
}

type spanAttr struct {
	key string
	val any
}

// NewTrace starts a trace whose root span is named name.
//
//subtrajlint:locked mu — t is private until returned
func NewTrace(id, name string) *Trace {
	now := time.Now()
	t := &Trace{id: id, begin: now}
	t.root = &Span{name: name, start: now, tr: t}
	return t
}

// ID returns the request ID the trace was started with.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace).
//
//subtrajlint:locked mu — reads only the construction-immutable root pointer
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a wall-clock child span under parent (nil parent =
// root). Close it with End; spans left open get zero duration in the
// snapshot rather than poisoning the tree.
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	s := &Span{name: name, start: now, offset: now.Sub(t.begin), tr: t}
	t.mu.Lock()
	if parent == nil {
		parent = t.root
	}
	parent.children = append(parent.children, s)
	t.mu.Unlock()
	return s
}

// End closes a wall span.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	if !s.done {
		s.dur = d
		s.done = true
	}
	s.tr.mu.Unlock()
}

// AddSpan attaches a work span with a known duration under parent (nil =
// root). The offset is synthetic: work spans of one parent are laid out
// back-to-back after its existing children, which renders a readable
// waterfall without claiming wall-clock alignment.
func (t *Trace) AddSpan(parent *Span, name string, dur time.Duration) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		parent = t.root
	}
	off := parent.offset
	if n := len(parent.children); n > 0 {
		last := parent.children[n-1]
		off = last.offset + last.dur
	}
	s := &Span{name: name, offset: off, dur: dur, done: true, tr: t}
	parent.children = append(parent.children, s)
	return s
}

// SetAttr attaches a key/value attribute to the span (values should be
// JSON-encodable scalars).
func (s *Span) SetAttr(key string, val any) *Span {
	if s == nil || s.tr == nil {
		return s
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, val})
	s.tr.mu.Unlock()
	return s
}

// Finish closes the root span and returns the trace's total duration.
// Safe to call once; later spans can still be added but won't extend the
// reported duration.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.begin)
	t.mu.Lock()
	if !t.root.done {
		t.root.dur = d
		t.root.done = true
	}
	d = t.root.dur
	t.mu.Unlock()
	return d
}

// --- JSON snapshot --------------------------------------------------------

// SpanJSON is the wire form of one span; a tree of them is embedded in
// ?debug=trace responses and /v1/debug/traces entries. Durations are
// microseconds: fine enough for µs-scale stages, and small JSON numbers.
type SpanJSON struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// JSON snapshots the span tree (nil on a nil trace). The snapshot is
// deep-copied under the trace lock, so it is safe to serialize after the
// trace keeps evolving.
func (t *Trace) JSON() *SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.json()
}

func (s *Span) json() *SpanJSON {
	out := &SpanJSON{Name: s.name, StartUS: s.offset.Microseconds(), DurUS: s.dur.Microseconds()}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.key] = a.val
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.json())
	}
	return out
}

// Breakdown renders the root's direct children as "name=dur" pairs in
// tree order — the one-line form for slow-query log records.
func (t *Trace) Breakdown() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, c := range t.root.children {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", c.name, c.dur.Round(time.Microsecond))
	}
	return b.String()
}

// --- context plumbing -----------------------------------------------------

type traceKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil (a valid no-op
// trace) when none is attached.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// --- request IDs ----------------------------------------------------------

var (
	reqSeq  atomic.Uint64
	reqBase = func() uint32 {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint32(time.Now().UnixNano())
		}
		return binary.BigEndian.Uint32(b[:])
	}()
)

// NewRequestID returns a process-unique request ID: a per-process random
// prefix (so IDs from restarted or neighbouring processes don't collide
// in shared logs) plus a sequence number.
func NewRequestID() string {
	return fmt.Sprintf("%08x-%08x", reqBase, reqSeq.Add(1))
}

// --- slow-trace ring ------------------------------------------------------

// TraceRecord is one retained slow query: its ID, endpoint, completion
// time, total duration, and full span tree.
type TraceRecord struct {
	RequestID string    `json:"request_id"`
	Endpoint  string    `json:"endpoint"`
	Time      time.Time `json:"time"`
	DurUS     int64     `json:"dur_us"`
	Trace     *SpanJSON `json:"trace"`
}

// TraceRing retains the last N slow-query traces (a fixed-size ring; the
// newest entry overwrites the oldest). Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord // guarded by mu (the slice header is fixed at construction; Add's pre-lock length check relies on that)
	next int           // guarded by mu
	n    int           // guarded by mu
}

// NewTraceRing creates a ring holding up to capacity records
// (capacity ≤ 0 yields a ring that retains nothing).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 0 {
		capacity = 0
	}
	return &TraceRing{buf: make([]TraceRecord, capacity)}
}

// Add inserts one record.
func (r *TraceRing) Add(rec TraceRecord) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained records, slowest-insertion-newest first.
func (r *TraceRing) Snapshot() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf) + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	// Insertion order is already newest-first by construction; the sort
	// is belt-and-braces for records with identical insertion slots.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.After(out[j].Time) })
	return out
}

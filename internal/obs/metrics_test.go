package obs

import (
	"bufio"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	// Upper bounds are inclusive: 1 → bucket le=1, 2 → le=2, 4 → le=4.
	want := []int64{2, 2, 2, 2} // (≤1): 0.5,1; (≤2): 1.5,2; (≤4): 3,4; +Inf: 5,100
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	// Uniform 1..100: quantile estimates should land within one bucket
	// width of the exact order statistic.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 10},
		{0.95, 95, 10},
		{0.99, 99, 10},
		{1.0, 100, 0.001},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}

	// Empty histogram.
	if got := newHistogram(LatencyBuckets).Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	// All mass in the overflow bucket saturates at the last finite bound.
	over := newHistogram([]float64{1, 2})
	over.Observe(50)
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow Quantile = %g, want 2 (saturated)", got)
	}
}

func TestHistogramQuantileSkew(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	// 99 fast ops at ~1 ms, one slow at ~2 s: p50 must sit in the 1 ms
	// region (the exact p99 of this distribution is also 1 ms — the slow
	// op only surfaces past q = 0.99), and p99.5 must land in the slow
	// op's bucket (1, 2.5].
	for i := 0; i < 99; i++ {
		h.Observe(0.001)
	}
	h.Observe(2.0)
	if p50 := h.Quantile(0.5); p50 > 0.0025 {
		t.Errorf("p50 = %g, want ≤ 0.0025", p50)
	}
	if p995 := h.Quantile(0.995); p995 < 0.5 || p995 > 2.5 {
		t.Errorf("p99.5 = %g, want in (0.5, 2.5]", p995)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "", nil)
	g := r.Gauge("y", "", nil)
	h := r.Histogram("z", "", LatencyBuckets, nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil handles must be no-ops")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil registry WriteTo = (%d, %v)", n, err)
	}
	var tr *Trace
	sp := tr.StartSpan(nil, "a")
	sp.End()
	sp.SetAttr("k", 1)
	tr.AddSpan(nil, "b", 0)
	if tr.Finish() != 0 || tr.JSON() != nil || tr.Breakdown() != "" || tr.ID() != "" {
		t.Error("nil trace must be a no-op sink")
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("subtraj_requests_total", "Requests served.", L("endpoint", "search"))
	c.Add(3)
	c2 := r.Counter("subtraj_requests_total", "Requests served.", L("endpoint", "topk"))
	c2.Add(1)
	g := r.Gauge("subtraj_band_ratio", "Band ratio.", nil)
	g.Set(0.25)
	h := r.Histogram("subtraj_latency_seconds", "Latency.", []float64{0.1, 1}, L("endpoint", "search"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP subtraj_requests_total Requests served.
# TYPE subtraj_requests_total counter
subtraj_requests_total{endpoint="search"} 3
subtraj_requests_total{endpoint="topk"} 1
# HELP subtraj_band_ratio Band ratio.
# TYPE subtraj_band_ratio gauge
subtraj_band_ratio 0.25
# HELP subtraj_latency_seconds Latency.
# TYPE subtraj_latency_seconds histogram
subtraj_latency_seconds_bucket{endpoint="search",le="0.1"} 1
subtraj_latency_seconds_bucket{endpoint="search",le="1"} 2
subtraj_latency_seconds_bucket{endpoint="search",le="+Inf"} 3
subtraj_latency_seconds_sum{endpoint="search"} 5.55
subtraj_latency_seconds_count{endpoint="search"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// expositionLine matches every legal non-comment line of the text format.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? ` +
		`(-?[0-9.e+-]+|NaN|\+Inf|-Inf)$`)

// ValidateExposition checks every line of a Prometheus text payload and
// returns the first malformed line ("" if clean). Shared with the server
// golden test via the package export below.
func validateExposition(t *testing.T, payload string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(payload))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		n++
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %d: %q", n, line)
		}
	}
	if n == 0 {
		t.Error("empty exposition payload")
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h", L("path", `a\b"c`+"\n"))
	var b strings.Builder
	r.WriteTo(&b)
	if !strings.Contains(b.String(), `path="a\\b\"c\n"`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

// TestConcurrentRegistry hammers observation and scraping concurrently;
// run under -race this is the lock-cheapness acceptance test. It also
// asserts the final totals are exact (no lost updates) and the exposition
// stays well-formed mid-flight.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "h", nil)
	g := r.Gauge("depth", "h", nil)
	h := r.Histogram("lat_seconds", "h", LatencyBuckets, nil)

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 1000)
				if i%200 == 0 {
					var b strings.Builder
					if _, err := r.WriteTo(&b); err != nil {
						t.Errorf("WriteTo: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	validateExposition(t, b.String())
}

func TestDuplicateTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name under two types must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "h", nil)
	r.Gauge("m", "h", nil)
}

// BenchmarkObserve measures the enabled-vs-disabled cost of the hot
// instrumentation calls. The <3%-of-request acceptance bound is about
// the *request* path; at ~1 ms/query even 10 observations at ~tens of
// ns each is orders of magnitude below 3%.
func BenchmarkObserve(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("lat", "h", LatencyBuckets, nil)
		c := r.Counter("n", "h", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(0.00123)
		}
	})
	b.Run("nop", func(b *testing.B) {
		var r *Registry
		h := r.Histogram("lat", "h", LatencyBuckets, nil)
		c := r.Counter("n", "h", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(0.00123)
		}
	})
}

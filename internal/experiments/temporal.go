package experiments

import (
	"fmt"
	"sort"
	"time"

	"subtraj/internal/core"
)

// Fig12Temporal reproduces Figure 12: temporal filtering (TF: prune
// candidates by trajectory interval before verification) versus
// postprocessing only (no-TF), varying temporal selectivity.
func Fig12Temporal(cfgs []Ctx2, selectivities []float64, opts Options) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Temporal constraint processing time (ms/query), EDR, tau_ratio=0.1",
		Header: []string{"dataset", "method"},
		Notes: []string{
			"selectivity s%: query window I = [ts_min, ts_s%] (departure-time quantile).",
			"paper shape: TF ~1 order of magnitude faster; gap grows as selectivity shrinks.",
		},
	}
	for _, s := range selectivities {
		t.Header = append(t.Header, fmt.Sprintf("TS=%.0f%%", s*100))
	}
	const model = "EDR"
	const ratio = 0.1
	for _, cc := range cfgs {
		c := GetCtx(cc.Cfg, opts.Scale*cc.Scale)
		queries := c.Queries(model, opts.QueryLen, opts.Queries, opts.Seed)
		// Departure-time quantiles over the dataset.
		deps := make([]float64, 0, c.W.Data.Len())
		for id := range c.W.Data.Trajs {
			d, _ := c.W.Data.Trajs[id].Departure()
			deps = append(deps, d)
		}
		sort.Float64s(deps)
		quantile := func(f float64) float64 {
			i := int(f * float64(len(deps)-1))
			return deps[i]
		}
		rowTF := []string{c.Cfg.Name, "TF"}
		rowNoTF := []string{c.Cfg.Name, "no-TF"}
		for _, s := range selectivities {
			lo, hi := deps[0], quantile(s)
			var tfTotal, noTFTotal time.Duration
			for _, q := range queries {
				tau := c.Tau(model, q, ratio)
				qr := core.Query{Q: q, Tau: tau}
				qr.Temporal.Mode = core.TemporalOverlap
				qr.Temporal.Lo, qr.Temporal.Hi = lo, hi

				start := time.Now()
				a, _, err := c.Engine(model).SearchQuery(qr)
				if err != nil {
					panic(err)
				}
				tfTotal += time.Since(start)

				qr.Temporal.DisablePrefilter = true
				start = time.Now()
				b, _, err := c.Engine(model).SearchQuery(qr)
				if err != nil {
					panic(err)
				}
				noTFTotal += time.Since(start)
				if len(a) != len(b) {
					panic(fmt.Sprintf("fig12: TF/no-TF disagree: %d vs %d", len(a), len(b)))
				}
			}
			rowTF = append(rowTF, msPerQuery(tfTotal, len(queries)))
			rowNoTF = append(rowNoTF, msPerQuery(noTFTotal, len(queries)))
		}
		t.Rows = append(t.Rows, rowTF, rowNoTF)
	}
	return t
}

// Fig13VaryEta reproduces Figure 13 (Appendix D): query time as the
// neighbourhood threshold η varies, for ERP and NetERP.
func Fig13VaryEta(cfgs []Ctx2, mults []float64, settings [][2]interface{}, opts Options) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "Query time vs eta (ms/query); eta scaled by median NN distance (ERP) / median road length (NetERP)",
		Header: []string{"dataset", "model", "(tau,|Q|)"},
		Notes: []string{
			"paper shape: small eta best overall; large eta explodes candidate generation.",
		},
	}
	for _, m := range mults {
		t.Header = append(t.Header, fmt.Sprintf("eta=%g", m))
	}
	for _, cc := range cfgs {
		c := GetCtx(cc.Cfg, opts.Scale*cc.Scale)
		for _, model := range []string{"ERP", "NetERP"} {
			for _, set := range settings {
				ratio := set[0].(float64)
				qlen := set[1].(int)
				queries := c.Queries(model, qlen, opts.Queries, opts.Seed+int64(qlen))
				row := []string{c.Cfg.Name, model, fmt.Sprintf("(%.1f,%d)", ratio, qlen)}
				for _, mult := range mults {
					var costs = c.Model(model)
					if model == "ERP" {
						costs = c.ERPModelWithEta(mult)
					} else {
						costs = c.NetERPModelWithEta(mult)
					}
					eng := core.NewEngineWithIndex(c.Data(model), c.Inv(model), costs)
					var total time.Duration
					ok := true
					for _, q := range queries {
						tau := ratio * core.SumFilterCost(costs, q)
						start := time.Now()
						_, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
						if err != nil {
							ok = false // tiny eta can make c(Q) < tau: infeasible
							break
						}
						total += time.Since(start)
					}
					if ok {
						row = append(row, msPerQuery(total, len(queries)))
					} else {
						row = append(row, "infeasible")
					}
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t
}

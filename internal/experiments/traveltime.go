package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"subtraj/internal/core"
	"subtraj/internal/geo"
	"subtraj/internal/simfuncs"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// SimilarityFunctions lists the ten functions compared in §6.2: the six
// WED instances plus the four non-WED competitors evaluated by exhaustive
// scanning.
var SimilarityFunctions = []string{
	"Lev", "SURS", "EDR", "ERP", "NetEDR", "NetERP",
	"DTW", "LORS", "LCRS", "LCSS",
}

// ttQuery is one travel-time evaluation query: a sparse path with its
// ground-truth exact-match travel times.
type ttQuery struct {
	q      []traj.Symbol // vertex representation
	qEdges []traj.Symbol // edge representation
	exact  []float64     // Ω_exact: travel times of exact matches
}

// sampleSparseQueries draws queries whose exact-match count lies in
// [2, 10] — the paper's "sparse case" (<10 matches; ≥2 so leave-one-out
// cross-validation is defined).
func sampleSparseQueries(c *Ctx, qlen, n int, seed int64) []ttQuery {
	rng := rand.New(rand.NewSource(seed))
	lev := c.Engine("Lev")
	var out []ttQuery
	const maxAttempts = 4000
	for att := 0; att < maxAttempts && len(out) < n; att++ {
		q, err := workload.SampleQuery(c.W.Data, qlen, rng)
		if err != nil {
			break
		}
		// Exact matches via the exact path query (§1's baseline).
		ms, err := lev.SearchExact(q)
		if err != nil {
			continue
		}
		var exact []float64
		for _, m := range ms {
			t := c.W.Data.Get(m.ID)
			exact = append(exact, t.Times[m.T]-t.Times[m.S])
		}
		if len(exact) < 2 || len(exact) > 10 {
			continue
		}
		qe, err := c.W.Graph.VertexPathToEdges(q)
		if err != nil {
			continue
		}
		out = append(out, ttQuery{q: q, qEdges: qe, exact: exact})
	}
	return out
}

// looMSE computes the leave-one-out mean squared error of estimating each
// ground-truth ω_k by the average of the estimate pool with one occurrence
// of ω_k removed (Appendix E).
func looMSE(groundTruth, pool []float64) float64 {
	if len(groundTruth) == 0 {
		return math.NaN()
	}
	var mse float64
	for _, w := range groundTruth {
		rest := removeOne(pool, w)
		if len(rest) == 0 {
			// No remaining estimates: predict with the pool mean.
			rest = pool
		}
		if len(rest) == 0 {
			return math.NaN()
		}
		mse += (w - mean(rest)) * (w - mean(rest))
	}
	return mse / float64(len(groundTruth))
}

func removeOne(xs []float64, v float64) []float64 {
	out := make([]float64, 0, len(xs))
	removed := false
	for _, x := range xs {
		if !removed && x == v {
			removed = true
			continue
		}
		out = append(out, x)
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// estimatePool returns Ω_τ for one query under one similarity function:
// the travel times of each trajectory's best-matching subtrajectory that
// passes the τ_ratio threshold.
func estimatePool(c *Ctx, fn string, tq ttQuery, ratio float64) []float64 {
	switch fn {
	case "Lev", "EDR", "ERP", "NetEDR", "NetERP":
		return wedPool(c, fn, tq.q, ratio, false)
	case "SURS":
		return wedPool(c, fn, tq.qEdges, ratio, true)
	case "DTW":
		return dtwPool(c, tq.q, ratio)
	case "LORS":
		return wlcsPool(c, tq.qEdges, ratio, false)
	case "LCRS":
		return wlcsPool(c, tq.qEdges, ratio, true)
	case "LCSS":
		return lcssPool(c, tq.q, ratio)
	default:
		panic("unknown similarity function " + fn)
	}
}

// wedPool queries the engine and reduces to per-trajectory best matches.
func wedPool(c *Ctx, model string, q []traj.Symbol, ratio float64, edgeRep bool) []float64 {
	eng := c.Engine(model)
	tau := c.Tau(model, q, ratio)
	if tau <= 0 {
		// τ_ratio = 0: only exact (wed = 0) matches; Definition 2 uses
		// strict <, so use an epsilon threshold.
		tau = 1e-9
	}
	ms, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
	if err != nil {
		return nil
	}
	best := bestPerTrajectory(ms)
	ds := c.Data(model)
	var out []float64
	for _, m := range best {
		t := ds.Get(m.ID)
		s, e := int(m.S), int(m.T)
		if edgeRep {
			e++
		}
		if e >= len(t.Times) {
			e = len(t.Times) - 1
		}
		out = append(out, t.Times[e]-t.Times[s])
	}
	return out
}

func bestPerTrajectory(ms []traj.Match) map[int32]traj.Match {
	best := make(map[int32]traj.Match)
	for _, m := range ms {
		b, ok := best[m.ID]
		if !ok || m.WED < b.WED || (m.WED == b.WED && m.T-m.S < b.T-b.S) {
			best[m.ID] = m
		}
	}
	return best
}

// dtwPool scans candidate trajectories for the best subtrajectory under
// DTW with squared-distance local costs. The threshold normalisation is
// the paper's: DTW ≤ τ_ratio · Σ d(Q_i, Q_{i+1})². The spatial prefilter
// is complete: an alignment starts at (1,1), so a matching subtrajectory's
// first vertex lies within √θ of Q_1.
func dtwPool(c *Ctx, q []traj.Symbol, ratio float64) []float64 {
	coords := c.W.Graph.Coords()
	qpts := make([]geo.Point, len(q))
	var scale float64
	for i, s := range q {
		qpts[i] = coords[s]
		if i > 0 {
			scale += qpts[i-1].Dist2(qpts[i])
		}
	}
	theta := ratio * scale
	// Candidate trajectories: contain a vertex within √θ of Q_1.
	radius := math.Sqrt(theta)
	var ids []int32
	seen := map[int32]bool{}
	for _, v := range c.Tree().Range(qpts[0], radius, nil) {
		for _, p := range c.InvV().Postings(v) {
			if !seen[p.ID] {
				seen[p.ID] = true
				ids = append(ids, p.ID)
			}
		}
	}
	var out []float64
	for _, id := range ids {
		t := c.W.Data.Get(id)
		pts := make([]geo.Point, len(t.Path))
		for i, s := range t.Path {
			pts[i] = coords[s]
		}
		best := simfuncs.BestSubDTW(pts, qpts, 2*len(q))
		if best.OK && best.Score <= theta {
			out = append(out, t.Times[best.T]-t.Times[best.S])
		}
	}
	return out
}

// wlcsPool scans candidates for the best subtrajectory under LORS
// (normalise = false: threshold LORS ≥ (1−τ_ratio)·w(Q)) or LCRS
// (normalise = true: threshold LCRS ≥ 1−τ_ratio). Candidates share at
// least one edge with Q (complete: both thresholds force a non-empty
// common subsequence for τ_ratio < 1).
func wlcsPool(c *Ctx, qEdges []traj.Symbol, ratio float64, normalise bool) []float64 {
	g := c.W.Graph
	weight := func(s traj.Symbol) float64 { return g.Edge(s).Weight }
	wq := simfuncs.SumWeights(qEdges, weight)
	var ids []int32
	seen := map[int32]bool{}
	for _, e := range qEdges {
		for _, p := range c.InvE().Postings(e) {
			if !seen[p.ID] {
				seen[p.ID] = true
				ids = append(ids, p.ID)
			}
		}
	}
	var out []float64
	for _, id := range ids {
		t := c.EdgeData.Get(id)
		var score func(l, wsub float64) float64
		if normalise {
			score = func(l, wsub float64) float64 {
				den := wsub + wq - l
				if den <= 0 {
					return 1
				}
				return l / den
			}
		} else {
			score = func(l, _ float64) float64 { return l }
		}
		best := simfuncs.BestSubWLCS(t.Path, qEdges, weight, score, 2*len(qEdges))
		if !best.OK {
			continue
		}
		pass := false
		if normalise {
			pass = best.Score >= 1-ratio
		} else {
			pass = best.Score >= (1-ratio)*wq
		}
		if pass {
			e := best.T + 1
			if e >= len(t.Times) {
				e = len(t.Times) - 1
			}
			out = append(out, t.Times[e]-t.Times[best.S])
		}
	}
	return out
}

// lcssPool scans candidates under LCSS with the EDR matching threshold ε;
// the count threshold is LCSS ≥ (1−τ_ratio)·|Q|. Candidates contain a
// vertex within ε of some query vertex (complete for τ_ratio < 1).
func lcssPool(c *Ctx, q []traj.Symbol, ratio float64) []float64 {
	coords := c.W.Graph.Coords()
	qpts := make([]geo.Point, len(q))
	for i, s := range q {
		qpts[i] = coords[s]
	}
	var ids []int32
	seen := map[int32]bool{}
	for _, s := range q {
		for _, v := range c.Tree().Range(coords[s], paperEDREps, nil) {
			for _, p := range c.InvV().Postings(v) {
				if !seen[p.ID] {
					seen[p.ID] = true
					ids = append(ids, p.ID)
				}
			}
		}
	}
	need := (1 - ratio) * float64(len(q))
	var out []float64
	for _, id := range ids {
		t := c.W.Data.Get(id)
		pts := make([]geo.Point, len(t.Path))
		for i, s := range t.Path {
			pts[i] = coords[s]
		}
		best := simfuncs.BestSubLCSS(pts, qpts, paperEDREps, 2*len(q))
		if best.OK && best.Score >= need {
			out = append(out, t.Times[best.T]-t.Times[best.S])
		}
	}
	return out
}

// Fig4TravelTime reproduces Figure 4: relative MSE of travel-time
// estimation versus exact matching, per similarity function, over τ_ratio.
func Fig4TravelTime(cfg workload.Config, ratios []float64, numQueries int, opts Options) *Table {
	c := GetCtx(cfg, opts.Scale)
	queries := sampleSparseQueries(c, opts.QueryLen, numQueries, opts.Seed)
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Travel-time estimation RMSE (%% of exact-match MSE), %s, %d sparse queries, |Q|=%d", c.Cfg.Name, len(queries), opts.QueryLen),
		Header: []string{"function"},
		Notes: []string{
			"<100% means similarity search beats exact matching on sparse data.",
			"paper shape: most WED instances dip below 100% for small tau; SURS/NetERP best (~89%); LORS/LCSS worst.",
		},
	}
	for _, r := range ratios {
		t.Header = append(t.Header, fmt.Sprintf("tau=%.2f", r))
	}
	t.Header = append(t.Header, "best")
	if len(queries) == 0 {
		t.Notes = append(t.Notes, "no sparse queries found at this scale — increase Scale")
		return t
	}
	// Denominator: exact-match leave-one-out MSE per query. The relative
	// MSE is the ratio of pooled sums, which is robust to queries whose
	// exact evidence happens to agree closely (a per-query ratio average
	// explodes on near-zero denominators).
	exactMSE := make([]float64, len(queries))
	var exactSum float64
	for i, tq := range queries {
		exactMSE[i] = looMSE(tq.exact, tq.exact)
		if !math.IsNaN(exactMSE[i]) {
			exactSum += exactMSE[i]
		}
	}
	if exactSum == 0 {
		t.Notes = append(t.Notes, "degenerate exact-match MSE — increase Scale")
		return t
	}
	for _, fn := range SimilarityFunctions {
		row := []string{fn}
		best := math.Inf(1)
		for _, r := range ratios {
			var mseSum float64
			for i, tq := range queries {
				if math.IsNaN(exactMSE[i]) {
					continue
				}
				pool := estimatePool(c, fn, tq, r)
				m := looMSE(tq.exact, pool)
				if math.IsNaN(m) {
					m = exactMSE[i] // no evidence: fall back to exact
				}
				mseSum += m
			}
			rel := 100 * mseSum / exactSum
			if rel < best {
				best = rel
			}
			row = append(row, fmt.Sprintf("%.0f", rel))
		}
		if math.IsInf(best, 1) {
			row = append(row, "-")
		} else {
			row = append(row, fmt.Sprintf("%.0f%%", best))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Tab3SubVsWhole reproduces Table 3: top-k travel-time RMSE of
// subtrajectory matching versus whole matching under SURS.
func Tab3SubVsWhole(cfg workload.Config, ks []int, numQueries int, opts Options) *Table {
	c := GetCtx(cfg, opts.Scale)
	queries := sampleSparseQueries(c, opts.QueryLen, numQueries, opts.Seed)
	t := &Table{
		ID:     "tab3",
		Title:  fmt.Sprintf("Top-k travel-time RMSE (%%), SURS, %s, %d sparse queries", c.Cfg.Name, len(queries)),
		Header: []string{"method"},
		Notes:  []string{"paper shape: subtrajectory RMSE ~half of whole matching; gap largest at small k."},
	}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	if len(queries) == 0 {
		t.Notes = append(t.Notes, "no sparse queries found at this scale — increase Scale")
		return t
	}
	costs := c.Model("SURS")
	subRow := []string{"Subtrajectory"}
	wholeRow := []string{"Whole"}
	for _, k := range ks {
		var subSum, wholeSum, exactSum float64
		for _, tq := range queries {
			exactMSE := looMSE(tq.exact, tq.exact)
			if exactMSE == 0 || math.IsNaN(exactMSE) {
				continue
			}
			// Subtrajectory top-k: per-trajectory best under a generous
			// τ, then the k closest.
			sub := topKSubtrajectory(c, tq, k)
			// Whole top-k: SURS between Q and every whole trajectory.
			whole := topKWhole(c, costs, tq, k)
			sm, wm := looMSE(tq.exact, sub), looMSE(tq.exact, whole)
			if math.IsNaN(sm) || math.IsNaN(wm) {
				continue
			}
			subSum += sm
			wholeSum += wm
			exactSum += exactMSE
		}
		if exactSum == 0 {
			subRow = append(subRow, "-")
			wholeRow = append(wholeRow, "-")
			continue
		}
		subRow = append(subRow, fmt.Sprintf("%.0f", 100*subSum/exactSum))
		wholeRow = append(wholeRow, fmt.Sprintf("%.0f", 100*wholeSum/exactSum))
	}
	t.Rows = append(t.Rows, subRow, wholeRow)
	return t
}

func topKSubtrajectory(c *Ctx, tq ttQuery, k int) []float64 {
	eng := c.Engine("SURS")
	tau := c.Tau("SURS", tq.qEdges, 0.5)
	ms, err := eng.Search(tq.qEdges, tau)
	if err != nil {
		return nil
	}
	best := bestPerTrajectory(ms)
	flat := make([]traj.Match, 0, len(best))
	for _, m := range best {
		flat = append(flat, m)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].WED < flat[j].WED })
	if len(flat) > k {
		flat = flat[:k]
	}
	var out []float64
	for _, m := range flat {
		t := c.EdgeData.Get(m.ID)
		e := int(m.T) + 1
		if e >= len(t.Times) {
			e = len(t.Times) - 1
		}
		out = append(out, t.Times[e]-t.Times[m.S])
	}
	return out
}

func topKWhole(c *Ctx, costs wed.FilterCosts, tq ttQuery, k int) []float64 {
	type scored struct {
		id int32
		d  float64
	}
	var all []scored
	for id := range c.EdgeData.Trajs {
		d := wed.Dist(costs, c.EdgeData.Trajs[id].Path, tq.qEdges)
		all = append(all, scored{int32(id), d})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	if len(all) > k {
		all = all[:k]
	}
	var out []float64
	for _, s := range all {
		t := c.EdgeData.Get(s.id)
		out = append(out, t.Times[len(t.Times)-1]-t.Times[0])
	}
	return out
}

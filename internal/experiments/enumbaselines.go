package experiments

import (
	"fmt"
	"time"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/workload"
)

// enumCtx prepares the subtrajectory-enumeration baselines (DITA,
// ERP-index) on a small dataset fraction — the paper can only run them on
// 5,000 trajectories before memory explodes (§6.1, §6.3).
type enumCtx struct {
	c    *Ctx
	dita map[string]*baselines.DITA // per model
	erp  *baselines.ERPIndex
	// build metrics for Table 6.
	ditaBuild, erpBuild time.Duration
}

func newEnumCtx(cfg workload.Config, numTraj int) *enumCtx {
	scale := float64(numTraj) / float64(cfg.NumTrajectories)
	c := GetCtx(cfg, scale)
	e := &enumCtx{c: c, dita: map[string]*baselines.DITA{}}

	start := time.Now()
	inv := c.InvV()
	e.dita["EDR"] = baselines.NewDITA(c.Model("EDR"), c.W.Data, 10,
		baselines.FrequencyScore(func(s traj.Symbol) int { return inv.Freq(s) }))
	e.dita["ERP"] = baselines.NewDITA(c.Model("ERP"), c.W.Data, 10,
		baselines.DeletionCostScore(c.Model("ERP")))
	e.ditaBuild = time.Since(start)

	start = time.Now()
	e.erp = baselines.NewERPIndex(c.Model("ERP"), c.W.Data, c.W.Graph.Coords(), c.W.Graph.Barycenter())
	e.erpBuild = time.Since(start)
	return e
}

// Fig9EnumBaselinesTau reproduces Figure 9: OSF-BT / OSF-SW vs DITA and
// ERP-index on the small fraction, varying τ_ratio (EDR and ERP).
func Fig9EnumBaselinesTau(cfg workload.Config, numTraj int, ratios []float64, opts Options) *Table {
	e := newEnumCtx(cfg, numTraj)
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Query time vs enumeration baselines (ms/query), |T|=%d, |Q|=%d", e.c.W.Data.Len(), opts.QueryLen),
		Header: append([]string{"model", "method"}, ratioHeaders(ratios)...),
		Notes:  []string{"paper shape: OSF-BT beats DITA/ERP-index by ~2 orders of magnitude."},
	}
	for _, model := range []string{"EDR", "ERP"} {
		queries := e.c.Queries(model, opts.QueryLen, opts.Queries, opts.Seed)
		methods := []string{"OSF-BT", "OSF-SW", "DITA"}
		if model == "ERP" {
			methods = append(methods, "ERP-index")
		}
		for _, method := range methods {
			row := []string{model, method}
			for _, r := range ratios {
				var total time.Duration
				for _, q := range queries {
					tau := e.c.Tau(model, q, r)
					start := time.Now()
					e.run(method, model, q, tau)
					total += time.Since(start)
				}
				row = append(row, msPerQuery(total, len(queries)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig10EnumBaselinesSize reproduces Figure 10: the same comparison varying
// the number of trajectories indexed.
func Fig10EnumBaselinesSize(cfg workload.Config, sizes []int, opts Options) *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "Query time vs enumeration baselines (ms/query), varying #trajectories indexed, tau_ratio=0.1",
		Header: []string{"model", "method"},
		Notes:  []string{"paper shape: enumeration baselines degrade much faster with dataset size."},
	}
	for _, n := range sizes {
		t.Header = append(t.Header, fmt.Sprint(n))
	}
	const ratio = 0.1
	rows := map[string][]string{}
	order := []string{"EDR/OSF-BT", "EDR/OSF-SW", "EDR/DITA", "ERP/OSF-BT", "ERP/OSF-SW", "ERP/DITA", "ERP/ERP-index"}
	for _, key := range order {
		rows[key] = []string{key[:3], key[4:]}
	}
	for _, n := range sizes {
		e := newEnumCtx(cfg, n)
		for _, model := range []string{"EDR", "ERP"} {
			queries := e.c.Queries(model, opts.QueryLen, opts.Queries, opts.Seed)
			methods := []string{"OSF-BT", "OSF-SW", "DITA"}
			if model == "ERP" {
				methods = append(methods, "ERP-index")
			}
			for _, method := range methods {
				var total time.Duration
				for _, q := range queries {
					tau := e.c.Tau(model, q, ratio)
					start := time.Now()
					e.run(method, model, q, tau)
					total += time.Since(start)
				}
				key := model + "/" + method
				rows[key] = append(rows[key], msPerQuery(total, len(queries)))
			}
		}
	}
	for _, key := range order {
		t.Rows = append(t.Rows, rows[key])
	}
	return t
}

func (e *enumCtx) run(method, model string, q []traj.Symbol, tau float64) int {
	switch method {
	case "OSF-BT":
		res, _, err := e.c.Engine(model).SearchQuery(core.Query{Q: q, Tau: tau})
		if err != nil {
			panic(err)
		}
		return len(res)
	case "OSF-SW":
		res, _, err := e.c.Engine(model).SearchQuery(core.Query{Q: q, Tau: tau, Verify: verify.Options{Mode: verify.ModeSW}})
		if err != nil {
			panic(err)
		}
		return len(res)
	case "DITA":
		return len(e.dita[model].Search(q, tau).Matches)
	case "ERP-index":
		return len(e.erp.Search(q, tau).Matches)
	default:
		panic("unknown method " + method)
	}
}

// EnumIndexMetrics reports construction time and enumerated entry counts
// for Table 6's lower block.
func EnumIndexMetrics(cfg workload.Config, numTraj int) (ditaBuild, erpBuild time.Duration, subtrajectories int) {
	e := newEnumCtx(cfg, numTraj)
	return e.ditaBuild, e.erpBuild, e.erp.Subtrajectories
}

package experiments

import (
	"fmt"
	"math/rand"

	"subtraj/internal/core"
	"subtraj/internal/geo"
	"subtraj/internal/shortestpath"
	"subtraj/internal/simfuncs"
	"subtraj/internal/traj"
	"subtraj/internal/workload"
)

// Fig5Naturalness reproduces Figure 5: alternative-route suggestion. For
// queries Q from u to v, retrieve subtrajectories from u to v similar to
// Q, and measure the suggested routes' naturalness — the fraction of hops
// that get closer (network distance) to the destination than ever before
// (Zheng & Zhou §7's route log-likelihood surrogate).
func Fig5Naturalness(cfg workload.Config, qlens []int, ratios []float64, numQueries int, opts Options) *Table {
	c := GetCtx(cfg, opts.Scale)
	t := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("Alternative-route naturalness, %s (cardinality | naturalness per cell)", c.Cfg.Name),
		Header: []string{"|Q|", "function"},
		Notes: []string{
			"paper shape: Lev/EDR/NetEDR/NetERP suggest high-naturalness routes; LCSS/LORS/LCRS markedly lower;",
			"cardinality grows with tau_ratio.",
		},
	}
	for _, r := range ratios {
		t.Header = append(t.Header, fmt.Sprintf("tau=%.2f", r))
	}
	rev := shortestpath.Reverse(shortestpath.FromGraph(c.W.Graph))
	for _, qlen := range qlens {
		queries := sampleRouteQueries(c, qlen, numQueries, opts.Seed+int64(qlen))
		for _, fn := range SimilarityFunctions {
			row := []string{fmt.Sprint(qlen), fn}
			for _, r := range ratios {
				var cardSum, natSum float64
				var n int
				for _, q := range queries {
					routes := suggestedRoutes(c, fn, q, r)
					if len(routes) == 0 {
						continue
					}
					distToDest := shortestpath.Dijkstra(rev, q[len(q)-1])
					var nat float64
					for _, route := range routes {
						nat += naturalness(route, distToDest)
					}
					cardSum += float64(len(routes))
					natSum += nat / float64(len(routes))
					n++
				}
				if n == 0 {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.1f|%.3f", cardSum/float64(n), natSum/float64(n)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// sampleRouteQueries draws vertex-path queries whose endpoints differ.
func sampleRouteQueries(c *Ctx, qlen, n int, seed int64) [][]traj.Symbol {
	rng := rand.New(rand.NewSource(seed))
	var out [][]traj.Symbol
	for att := 0; att < 50*n && len(out) < n; att++ {
		q, err := workload.SampleQuery(c.W.Data, qlen, rng)
		if err != nil {
			break
		}
		if q[0] == q[len(q)-1] {
			continue
		}
		out = append(out, q)
	}
	return out
}

// suggestedRoutes returns the distinct vertex paths of subtrajectories
// that (a) pass the function's τ_ratio threshold against Q and (b) start
// at u = Q_1 and end at v = Q_|Q|.
func suggestedRoutes(c *Ctx, fn string, q []traj.Symbol, ratio float64) [][]traj.Symbol {
	u, v := q[0], q[len(q)-1]
	var routes [][]traj.Symbol
	switch fn {
	case "Lev", "EDR", "ERP", "NetEDR", "NetERP":
		eng := c.Engine(fn)
		tau := c.Tau(fn, q, ratio)
		if tau <= 0 {
			tau = 1e-9
		}
		ms, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau})
		if err != nil {
			return nil
		}
		for _, m := range ms {
			p := c.W.Data.Path(m.ID)
			if p[m.S] == u && p[m.T] == v {
				routes = append(routes, p[m.S:m.T+1])
			}
		}
	case "SURS":
		qe, err := c.W.Graph.VertexPathToEdges(q)
		if err != nil {
			return nil
		}
		eng := c.Engine("SURS")
		tau := c.Tau("SURS", qe, ratio)
		if tau <= 0 {
			tau = 1e-9
		}
		ms, _, err := eng.SearchQuery(core.Query{Q: qe, Tau: tau})
		if err != nil {
			return nil
		}
		g := c.W.Graph
		for _, m := range ms {
			p := c.EdgeData.Path(m.ID)
			if g.Edge(p[m.S]).From == u && g.Edge(p[m.T]).To == v {
				vp, err := g.EdgePathToVertices(p[m.S : m.T+1])
				if err == nil {
					routes = append(routes, vp)
				}
			}
		}
	default:
		routes = scanRoutes(c, fn, q, ratio, u, v)
	}
	return dedupeRoutes(routes)
}

// scanRoutes evaluates a non-WED function on every u→v subtrajectory of
// trajectories passing through u (endpoint-pinned scans are cheap: only
// (occurrence of u, occurrence of v) pairs are evaluated).
func scanRoutes(c *Ctx, fn string, q []traj.Symbol, ratio float64, u, v traj.Symbol) [][]traj.Symbol {
	coords := c.W.Graph.Coords()
	g := c.W.Graph
	weight := func(s traj.Symbol) float64 { return g.Edge(s).Weight }
	qpts := make([]geo.Point, len(q))
	for i, s := range q {
		qpts[i] = coords[s]
	}
	var qe []traj.Symbol
	var wq float64
	if fn == "LORS" || fn == "LCRS" {
		var err error
		qe, err = g.VertexPathToEdges(q)
		if err != nil {
			return nil
		}
		wq = simfuncs.SumWeights(qe, weight)
	}
	var dtwScale float64
	for i := 1; i < len(qpts); i++ {
		dtwScale += qpts[i-1].Dist2(qpts[i])
	}
	var routes [][]traj.Symbol
	maxLen := 3 * len(q)
	for _, post := range c.InvV().Postings(u) {
		p := c.W.Data.Path(post.ID)
		s := int(post.Pos)
		hi := s + maxLen
		if hi > len(p) {
			hi = len(p)
		}
		for e := s + 1; e < hi; e++ {
			if p[e] != v {
				continue
			}
			sub := p[s : e+1]
			ok := false
			switch fn {
			case "DTW":
				pts := make([]geo.Point, len(sub))
				for i, sym := range sub {
					pts[i] = coords[sym]
				}
				ok = simfuncs.DTW(pts, qpts) <= ratio*dtwScale
			case "LCSS":
				pts := make([]geo.Point, len(sub))
				for i, sym := range sub {
					pts[i] = coords[sym]
				}
				ok = float64(simfuncs.LCSS(pts, qpts, paperEDREps)) >= (1-ratio)*float64(len(q))
			case "LORS":
				se, err := g.VertexPathToEdges(sub)
				if err == nil {
					ok = simfuncs.LORS(se, qe, weight) >= (1-ratio)*wq
				}
			case "LCRS":
				se, err := g.VertexPathToEdges(sub)
				if err == nil {
					ok = simfuncs.LCRS(se, qe, weight) >= 1-ratio
				}
			}
			if ok {
				routes = append(routes, sub)
			}
		}
	}
	return routes
}

func dedupeRoutes(routes [][]traj.Symbol) [][]traj.Symbol {
	seen := map[string]bool{}
	var out [][]traj.Symbol
	for _, r := range routes {
		key := routeKey(r)
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

func routeKey(r []traj.Symbol) string {
	b := make([]byte, 0, len(r)*4)
	for _, s := range r {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

// naturalness is |C| / (|P|−1), where C is the set of hops that reach a
// vertex strictly closer to the destination than any previous vertex.
func naturalness(route []traj.Symbol, distToDest []float64) float64 {
	if len(route) < 2 {
		return 0
	}
	closest := distToDest[route[0]]
	count := 0
	for i := 1; i < len(route); i++ {
		d := distToDest[route[i]]
		if d < closest {
			count++
			closest = d
		}
	}
	return float64(count) / float64(len(route)-1)
}

package experiments_test

import (
	"strings"
	"testing"

	"subtraj/internal/experiments"
	"subtraj/internal/workload"
)

// tinyOpts keeps experiment smoke tests fast.
func tinyOpts() experiments.Options {
	return experiments.Options{Scale: 0.02, Queries: 2, QueryLen: 20, Seed: 7}
}

func tinyDatasets() []experiments.Ctx2 {
	return []experiments.Ctx2{{Cfg: workload.BeijingLike(), Scale: 1}}
}

func checkTable(t *testing.T, tb *experiments.Table, wantRows int) {
	t.Helper()
	if tb == nil {
		t.Fatal("nil table")
	}
	if len(tb.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want at least %d", tb.ID, len(tb.Rows), wantRows)
	}
	var sb strings.Builder
	tb.Format(&sb)
	out := sb.String()
	if !strings.Contains(out, tb.ID) {
		t.Fatalf("%s: formatted output missing ID", tb.ID)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Fatalf("%s: row width %d != header width %d (%v)", tb.ID, len(row), len(tb.Header), row)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	tb := experiments.Fig6VaryTau(tinyDatasets(), []string{"EDR", "SURS"}, []float64{0.1, 0.2}, tinyOpts())
	checkTable(t, tb, 2*7) // two models x seven supported methods
}

func TestFig7Smoke(t *testing.T) {
	tb := experiments.Fig7VaryQueryLen(tinyDatasets(), []string{"Lev"}, []int{10, 20}, tinyOpts())
	checkTable(t, tb, 7)
}

func TestFig8Smoke(t *testing.T) {
	tb := experiments.Fig8VaryDatasetSize(tinyDatasets(), []string{"Lev"}, []float64{0.5, 1}, tinyOpts())
	checkTable(t, tb, 7)
}

func TestFig9Fig10Smoke(t *testing.T) {
	tb := experiments.Fig9EnumBaselinesTau(workload.BeijingLike(), 25, []float64{0.1, 0.2}, tinyOpts())
	checkTable(t, tb, 7) // EDR: 3 methods; ERP: 4 methods
	tb10 := experiments.Fig10EnumBaselinesSize(workload.BeijingLike(), []int{20, 30}, tinyOpts())
	checkTable(t, tb10, 7)
}

func TestFig11Smoke(t *testing.T) {
	tb := experiments.Fig11CandidateCounts(workload.BeijingLike(), []string{"EDR", "SURS"}, []float64{0.1}, []int{10}, tinyOpts())
	// EDR: OSF, DISON, Torch, q-gram; SURS: OSF, DISON, Torch.
	checkTable(t, tb, 7)
}

func TestFig12Smoke(t *testing.T) {
	tb := experiments.Fig12Temporal(tinyDatasets(), []float64{0.1, 0.5}, tinyOpts())
	checkTable(t, tb, 2)
}

func TestFig13Smoke(t *testing.T) {
	tb := experiments.Fig13VaryEta(tinyDatasets(), []float64{1e-4, 1},
		[][2]interface{}{{0.1, 10}}, tinyOpts())
	checkTable(t, tb, 2)
}

func TestTab4Tab5Smoke(t *testing.T) {
	tb := experiments.Tab4Breakdown(workload.BeijingLike(), tinyOpts())
	checkTable(t, tb, 5)
	tb5 := experiments.Tab5VerifyRates(workload.BeijingLike(), tinyOpts())
	checkTable(t, tb5, 7)
}

func TestTab6Smoke(t *testing.T) {
	tb := experiments.Tab6IndexBuild(tinyDatasets(), 20, tinyOpts())
	checkTable(t, tb, 4)
}

func TestFig4Tab3Smoke(t *testing.T) {
	opts := tinyOpts()
	opts.Scale = 0.04 // sparse-query sampling needs a few route repeats
	tb := experiments.Fig4TravelTime(workload.BeijingLike(), []float64{0, 0.1}, 3, opts)
	checkTable(t, tb, 10)
	tb3 := experiments.Tab3SubVsWhole(workload.BeijingLike(), []int{3, 5}, 3, opts)
	checkTable(t, tb3, 2)
}

func TestFig5Smoke(t *testing.T) {
	tb := experiments.Fig5Naturalness(workload.BeijingLike(), []int{12}, []float64{0.1, 0.2}, 2, tinyOpts())
	checkTable(t, tb, 10)
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) on the synthetic paper-shaped workloads. One file per
// experiment; each returns structured Tables that cmd/benchall formats and
// EXPERIMENTS.md records. See DESIGN.md §2 for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/index"
	"subtraj/internal/shortestpath"
	"subtraj/internal/spatial"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// Table is one formatted experiment output.
type Table struct {
	ID     string // "fig6", "tab4", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as fixed-width text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options scales an experiment run. Benchmarks use small scales; the
// cmd/benchall default is larger.
type Options struct {
	// Scale multiplies every workload's trajectory count.
	Scale float64
	// Queries is the number of queries averaged per data point (the
	// paper uses 100; 10 for Plain-SW).
	Queries int
	// QueryLen is |Q| where the experiment doesn't sweep it.
	QueryLen int
	// Seed drives query sampling.
	Seed int64
}

// Quick returns bench-friendly options.
func Quick() Options { return Options{Scale: 0.12, Queries: 3, QueryLen: 30, Seed: 1} }

// Standard returns cmd/benchall defaults: large enough to show the paper's
// relative behaviour, small enough for minutes-not-hours runtime.
func Standard() Options { return Options{Scale: 0.3, Queries: 5, QueryLen: 60, Seed: 1} }

// ModelNames lists the six WED instances in the paper's presentation order.
var ModelNames = []string{"EDR", "ERP", "SURS", "Lev", "NetEDR", "NetERP"}

// Ctx is a prepared workload: generated city, both dataset representations,
// substrate indexes, cost models and engines, all built once and shared
// across experiments (mirrors the paper building each index once per
// dataset).
type Ctx struct {
	Cfg      workload.Config
	W        *workload.Workload
	EdgeData *traj.Dataset

	once struct {
		tree, und, hubs, invV, invE sync.Once
	}
	tree *spatial.KDTree
	und  *shortestpath.Adjacency
	hubs *shortestpath.HubLabels
	invV *index.Inverted
	invE *index.Inverted

	mu      sync.Mutex
	models  map[string]wed.FilterCosts
	engines map[string]*core.Engine
	qgrams  map[string]*baselines.QGramIndex
}

var ctxCache sync.Map // key string -> *Ctx

// GetCtx returns the (cached) prepared context for a scaled workload.
func GetCtx(cfg workload.Config, scale float64) *Ctx {
	scaled := cfg.Scale(scale)
	key := fmt.Sprintf("%s/%d", scaled.Name, scaled.NumTrajectories)
	if v, ok := ctxCache.Load(key); ok {
		return v.(*Ctx)
	}
	c := &Ctx{Cfg: scaled, models: map[string]wed.FilterCosts{}, engines: map[string]*core.Engine{}}
	c.W = workload.Generate(scaled)
	ed, err := c.W.Data.ToEdgeRep(c.W.Graph)
	if err != nil {
		panic("experiments: workload not path-connected: " + err.Error())
	}
	c.EdgeData = ed
	actual, _ := ctxCache.LoadOrStore(key, c)
	return actual.(*Ctx)
}

// Tree returns the vertex kd-tree.
func (c *Ctx) Tree() *spatial.KDTree {
	c.once.tree.Do(func() { c.tree = spatial.Build(c.W.Graph.Coords()) })
	return c.tree
}

// Und returns the symmetrised adjacency.
func (c *Ctx) Und() *shortestpath.Adjacency {
	c.once.und.Do(func() { c.und = shortestpath.Undirected(c.W.Graph) })
	return c.und
}

// Hubs returns the hub-labelling distance index.
func (c *Ctx) Hubs() *shortestpath.HubLabels {
	c.once.hubs.Do(func() { c.hubs = shortestpath.BuildHubLabels(c.Und()) })
	return c.hubs
}

// InvV returns the vertex-representation inverted index.
func (c *Ctx) InvV() *index.Inverted {
	c.once.invV.Do(func() { c.invV = index.Build(c.W.Data) })
	return c.invV
}

// InvE returns the edge-representation inverted index.
func (c *Ctx) InvE() *index.Inverted {
	c.once.invE.Do(func() { c.invE = index.Build(c.EdgeData) })
	return c.invE
}

// paperEDREps is ε for EDR: one nominal block (the paper's 0.001° ≈ 100 m).
const paperEDREps = 100.0

// paperNetERPGdel is G_del for NetERP; the paper uses 2·10⁶ (metres),
// making deletions far costlier than any realistic substitution chain.
const paperNetERPGdel = 2e6

// Model returns the named cost model with the paper's §6.1 parameters.
func (c *Ctx) Model(name string) wed.FilterCosts {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[name]; ok {
		return m
	}
	g := c.W.Graph
	var m wed.FilterCosts
	switch name {
	case "Lev":
		m = wed.NewLev()
	case "EDR":
		m = wed.NewEDR(g.Coords(), c.Tree(), paperEDREps)
	case "ERP":
		m = wed.NewERP(g.Coords(), c.Tree(), g.Barycenter(), 1e-4*c.medianNN())
	case "NetEDR":
		m = wed.NewNetEDR(c.Und(), wed.NewMemoNetDist(c.Hubs(), 0), g.MedianEdgeWeight())
	case "NetERP":
		m = wed.NewNetERP(c.Und(), wed.NewMemoNetDist(c.Hubs(), 0), paperNetERPGdel, g.MedianEdgeWeight())
	case "SURS":
		ws := make([]float64, g.NumEdges())
		for i, e := range g.Edges() {
			ws[i] = e.Weight
		}
		m = wed.NewSURS(ws)
	default:
		panic("experiments: unknown model " + name)
	}
	c.models[name] = m
	return m
}

// ERPModelWithEta builds an ERP model with η = mult × (median NN distance);
// the paper's default is mult = 1e-4 (Appendix D, Figure 13's x-axis).
func (c *Ctx) ERPModelWithEta(mult float64) wed.FilterCosts {
	return wed.NewERP(c.W.Graph.Coords(), c.Tree(), c.W.Graph.Barycenter(), mult*c.medianNN())
}

// NetERPModelWithEta builds a NetERP model with η = mult × median(w(e));
// the paper's default is mult = 1.
func (c *Ctx) NetERPModelWithEta(mult float64) wed.FilterCosts {
	return wed.NewNetERP(c.Und(), c.Hubs(), paperNetERPGdel, mult*c.W.Graph.MedianEdgeWeight())
}

// medianNN returns the median distance from a vertex to its nearest
// neighbour (sampled; the median is stable under sampling).
func (c *Ctx) medianNN() float64 {
	tree := c.Tree()
	coords := c.W.Graph.Coords()
	step := len(coords)/512 + 1
	var ds []float64
	for v := 0; v < len(coords); v += step {
		if _, d := tree.NearestBeyond(coords[v], 0); d > 0 {
			ds = append(ds, d)
		}
	}
	if len(ds) == 0 {
		return 1
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}

// Data returns the dataset the named model searches (edge representation
// for SURS, vertex otherwise).
func (c *Ctx) Data(model string) *traj.Dataset {
	if model == "SURS" {
		return c.EdgeData
	}
	return c.W.Data
}

// Inv returns the inverted index matching Data(model).
func (c *Ctx) Inv(model string) *index.Inverted {
	if model == "SURS" {
		return c.InvE()
	}
	return c.InvV()
}

// Engine returns the (cached) search engine for the named model.
func (c *Ctx) Engine(model string) *core.Engine {
	c.mu.Lock()
	if e, ok := c.engines[model]; ok {
		c.mu.Unlock()
		return e
	}
	c.mu.Unlock()
	e := core.NewEngineWithIndex(c.Data(model), c.Inv(model), c.Model(model))
	c.mu.Lock()
	c.engines[model] = e
	c.mu.Unlock()
	return e
}

// Queries samples n queries of length qlen from the model's dataset.
func (c *Ctx) Queries(model string, qlen, n int, seed int64) [][]traj.Symbol {
	rng := rand.New(rand.NewSource(seed))
	qs, err := workload.SampleQueries(c.Data(model), qlen, n, rng)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", c.Cfg.Name, err))
	}
	return qs
}

// Tau converts τ_ratio to τ for a query under a model (§6.1).
func (c *Ctx) Tau(model string, q []traj.Symbol, ratio float64) float64 {
	return ratio * core.SumFilterCost(c.Model(model), q)
}

// msPerQuery formats a per-query duration in milliseconds.
func msPerQuery(total time.Duration, queries int) string {
	if queries == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(total.Microseconds())/1000/float64(queries))
}

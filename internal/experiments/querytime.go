package experiments

import (
	"fmt"
	"time"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/workload"
)

// Methods compared in Figures 6–8, in the paper's legend order.
var queryMethods = []string{
	"OSF-BT", "DISON-BT", "Torch-BT",
	"OSF-SW", "DISON-SW", "Torch-SW",
	"Plain-SW", "q-gram",
}

// methodSupported mirrors the paper's omissions: q-gram needs unit costs,
// and the -SW/Plain-SW variants on NetEDR/NetERP are omitted ("take at
// least 24 hours" in the paper; the Sub cost makes full scans infeasible).
func methodSupported(method, model string) bool {
	switch method {
	case "q-gram":
		return model == "EDR" || model == "Lev"
	case "OSF-SW", "DISON-SW", "Torch-SW", "Plain-SW":
		return model != "NetEDR" && model != "NetERP"
	default:
		return true
	}
}

// runMethod answers one query with the given method, returning the match
// count and candidate count (so callers can sanity-check exactness).
func runMethod(c *Ctx, method, model string, q []traj.Symbol, tau float64, qg *baselines.QGramIndex) (matches, candidates int) {
	costs := c.Model(model)
	ds := c.Data(model)
	inv := c.Inv(model)
	switch method {
	case "OSF-BT", "OSF-SW":
		mode := verify.ModeBT
		if method == "OSF-SW" {
			mode = verify.ModeSW
		}
		res, stats, err := c.Engine(model).SearchQuery(core.Query{Q: q, Tau: tau, Verify: verify.Options{Mode: mode}})
		if err != nil {
			panic(err)
		}
		return len(res), stats.Candidates
	case "DISON-BT":
		r := baselines.DISON(costs, ds, inv, q, tau, verify.Options{Mode: verify.ModeBT})
		return len(r.Matches), r.Candidates
	case "DISON-SW":
		r := baselines.DISON(costs, ds, inv, q, tau, verify.Options{Mode: verify.ModeSW})
		return len(r.Matches), r.Candidates
	case "Torch-BT":
		r := baselines.Torch(costs, ds, inv, q, tau, verify.Options{Mode: verify.ModeBT})
		return len(r.Matches), r.Candidates
	case "Torch-SW":
		r := baselines.Torch(costs, ds, inv, q, tau, verify.Options{Mode: verify.ModeSW})
		return len(r.Matches), r.Candidates
	case "Plain-SW":
		r := baselines.PlainSW(costs, ds, q, tau)
		return len(r.Matches), r.Candidates
	case "q-gram":
		r := qg.Search(q, tau)
		return len(r.Matches), r.Candidates
	default:
		panic("unknown method " + method)
	}
}

// qgramFor lazily builds the q-gram index for unit-cost models.
func qgramFor(c *Ctx, model string) *baselines.QGramIndex {
	if model != "EDR" && model != "Lev" {
		return nil
	}
	costs := c.Model(model) // resolve before taking the lock
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.qgrams == nil {
		c.qgrams = map[string]*baselines.QGramIndex{}
	}
	if g, ok := c.qgrams[model]; ok {
		return g
	}
	g := baselines.NewQGramIndex(costs, c.Data(model), 3)
	c.qgrams[model] = g
	return g
}

// timeMethod measures the total wall time of answering all queries and
// cross-checks that every method returns the same match count per query.
func timeMethod(c *Ctx, method, model string, queries [][]traj.Symbol, ratio float64, wantMatches []int) (time.Duration, error) {
	qg := qgramFor(c, model)
	var total time.Duration
	for i, q := range queries {
		tau := c.Tau(model, q, ratio)
		start := time.Now()
		matches, _ := runMethod(c, method, model, q, tau, qg)
		total += time.Since(start)
		if wantMatches != nil && matches != wantMatches[i] {
			return 0, fmt.Errorf("%s/%s: query %d returned %d matches, reference %d", method, model, i, matches, wantMatches[i])
		}
	}
	return total, nil
}

// Fig6VaryTau reproduces Figure 6: per dataset and cost function, query
// processing time (ms/query) for each method as τ_ratio varies.
func Fig6VaryTau(cfgs []Ctx2, models []string, ratios []float64, opts Options) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Query processing time (ms/query), varying tau_ratio, |Q|=" + fmt.Sprint(opts.QueryLen),
		Header: append([]string{"dataset", "model", "method"}, ratioHeaders(ratios)...),
		Notes: []string{
			"Plain-SW and *-SW omitted for NetEDR/NetERP (paper: >24h); q-gram requires unit costs (EDR/Lev).",
			"paper shape: OSF-BT fastest everywhere; BT >> SW; Plain-SW slowest.",
		},
	}
	for _, cc := range cfgs {
		c := GetCtx(cc.Cfg, opts.Scale*cc.Scale)
		for _, model := range models {
			queries := c.Queries(model, opts.QueryLen, opts.Queries, opts.Seed)
			// Reference match counts from OSF-BT at each ratio.
			refCounts := map[float64][]int{}
			for _, r := range ratios {
				counts := make([]int, len(queries))
				for i, q := range queries {
					m, _ := runMethod(c, "OSF-BT", model, q, c.Tau(model, q, r), nil)
					counts[i] = m
				}
				refCounts[r] = counts
			}
			for _, method := range queryMethods {
				if !methodSupported(method, model) {
					continue
				}
				row := []string{c.Cfg.Name, model, method}
				for _, r := range ratios {
					d, err := timeMethod(c, method, model, queries, r, refCounts[r])
					if err != nil {
						panic(err)
					}
					row = append(row, msPerQuery(d, len(queries)))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t
}

// Ctx2 pairs a workload config with a per-dataset scale tweak (e.g. the
// bulk SanFran dataset is shrunk more aggressively in quick runs).
type Ctx2 struct {
	Cfg   workload.Config
	Scale float64
}

// DefaultDatasets returns the paper's four datasets for the query-time
// experiments.
func DefaultDatasets() []Ctx2 {
	return []Ctx2{
		{workload.BeijingLike(), 1},
		{workload.PortoLike(), 1},
		{workload.SingaporeLike(), 1},
		{workload.SanFranLike(), 0.5},
	}
}

// Fig7VaryQueryLen reproduces Figure 7: time vs |Q| at τ_ratio = 0.1.
func Fig7VaryQueryLen(cfgs []Ctx2, models []string, qlens []int, opts Options) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Query processing time (ms/query), varying |Q|, tau_ratio=0.1",
		Header: []string{"dataset", "model", "method"},
		Notes:  []string{"paper shape: time grows with |Q| for all methods; OSF-BT stays fastest."},
	}
	for _, l := range qlens {
		t.Header = append(t.Header, fmt.Sprintf("|Q|=%d", l))
	}
	const ratio = 0.1
	for _, cc := range cfgs {
		c := GetCtx(cc.Cfg, opts.Scale*cc.Scale)
		for _, model := range models {
			perLen := map[int][][]traj.Symbol{}
			for _, l := range qlens {
				perLen[l] = c.Queries(model, l, opts.Queries, opts.Seed+int64(l))
			}
			for _, method := range queryMethods {
				if !methodSupported(method, model) {
					continue
				}
				row := []string{c.Cfg.Name, model, method}
				for _, l := range qlens {
					d, err := timeMethod(c, method, model, perLen[l], ratio, nil)
					if err != nil {
						panic(err)
					}
					row = append(row, msPerQuery(d, len(perLen[l])))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t
}

// Fig8VaryDatasetSize reproduces Figure 8: time vs dataset fraction.
func Fig8VaryDatasetSize(cfgs []Ctx2, models []string, fracs []float64, opts Options) *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Query processing time (ms/query), varying dataset size, tau_ratio=0.1",
		Header: []string{"dataset", "model", "method"},
		Notes:  []string{"paper shape: all methods scale linearly; OSF-BT consistently fastest."},
	}
	for _, f := range fracs {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%%", f*100))
	}
	const ratio = 0.1
	for _, cc := range cfgs {
		for _, model := range models {
			// Sample queries once from the full-size context so every
			// fraction answers the same workload.
			full := GetCtx(cc.Cfg, opts.Scale*cc.Scale)
			queries := full.Queries(model, opts.QueryLen, opts.Queries, opts.Seed)
			rows := map[string][]string{}
			for _, method := range queryMethods {
				if methodSupported(method, model) {
					rows[method] = []string{full.Cfg.Name, model, method}
				}
			}
			for _, f := range fracs {
				c := GetCtx(cc.Cfg, opts.Scale*cc.Scale*f)
				// Queries must exist in the smaller dataset's alphabet:
				// prefixes of the same generation sequence do.
				for _, method := range queryMethods {
					if !methodSupported(method, model) {
						continue
					}
					d, err := timeMethod(c, method, model, queries, ratio, nil)
					if err != nil {
						panic(err)
					}
					rows[method] = append(rows[method], msPerQuery(d, len(queries)))
				}
			}
			for _, method := range queryMethods {
				if methodSupported(method, model) {
					t.Rows = append(t.Rows, rows[method])
				}
			}
		}
	}
	return t
}

func ratioHeaders(ratios []float64) []string {
	out := make([]string, len(ratios))
	for i, r := range ratios {
		out[i] = fmt.Sprintf("tau=%.2f", r)
	}
	return out
}

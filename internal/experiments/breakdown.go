package experiments

import (
	"fmt"
	"time"

	"subtraj/internal/baselines"
	"subtraj/internal/core"
	"subtraj/internal/index"
	"subtraj/internal/workload"
)

// Tab4Breakdown reproduces Table 4: the decomposition of OSF-BT query time
// into MinCand computation, index lookup, and verification, under the
// default setting and the paper's variations.
func Tab4Breakdown(cfg workload.Config, opts Options) *Table {
	c := GetCtx(cfg, opts.Scale)
	const model = "EDR"
	t := &Table{
		ID:     "tab4",
		Title:  fmt.Sprintf("OSF-BT running time breakdown (ms/query), %s / %s", c.Cfg.Name, model),
		Header: []string{"setting", "MinCand", "Index lookup", "Verify", "verify %"},
		Notes:  []string{"paper shape: verification dominates (~99%); MinCand negligible."},
	}
	type setting struct {
		label string
		ratio float64
		qlen  int
	}
	settings := []setting{
		{"default (0.1, |Q|=60)", 0.1, opts.QueryLen},
		{"tau=0.2", 0.2, opts.QueryLen},
		{"tau=0.3", 0.3, opts.QueryLen},
		{"|Q|=20", 0.1, 20},
		{"|Q|=40", 0.1, 40},
	}
	for _, s := range settings {
		qlen := s.qlen
		if qlen > opts.QueryLen {
			qlen = opts.QueryLen
		}
		queries := c.Queries(model, qlen, opts.Queries, opts.Seed+int64(qlen))
		var minCand, lookup, ver time.Duration
		for _, q := range queries {
			tau := c.Tau(model, q, s.ratio)
			_, stats, err := c.Engine(model).SearchQuery(core.Query{Q: q, Tau: tau})
			if err != nil {
				panic(err)
			}
			minCand += stats.MinCandTime
			lookup += stats.LookupTime
			ver += stats.VerifyTime
		}
		totalAll := minCand + lookup + ver
		pct := "-"
		if totalAll > 0 {
			pct = fmt.Sprintf("%.1f", 100*float64(ver)/float64(totalAll))
		}
		t.Rows = append(t.Rows, []string{
			s.label,
			fmt.Sprintf("%.4f", ms(minCand, len(queries))),
			fmt.Sprintf("%.4f", ms(lookup, len(queries))),
			fmt.Sprintf("%.3f", ms(ver, len(queries))),
			pct,
		})
	}
	return t
}

func ms(d time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Microseconds()) / 1000 / float64(n)
}

// Tab5VerifyRates reproduces Table 5: UPR, CMR, and TUR of the BT
// verification, varying τ_ratio, |Q|, and dataset size.
func Tab5VerifyRates(cfg workload.Config, opts Options) *Table {
	const model = "EDR"
	t := &Table{
		ID:     "tab5",
		Title:  "Verification rates (%), " + cfg.Name + " / " + model,
		Header: []string{"setting", "UPR", "CMR", "TUR"},
		Notes: []string{
			"UPR: DP columns surviving early termination vs full SW; CMR: StepDP calls vs surviving columns; TUR = UPR x CMR.",
			"paper shape: rates rise with tau_ratio and |Q|, fall with dataset size; TUR stays small.",
		},
	}
	type setting struct {
		label string
		ratio float64
		qlen  int
		scale float64
	}
	settings := []setting{
		{"default (0.1, |Q|=60, 100%)", 0.1, opts.QueryLen, 1},
		{"tau=0.2", 0.2, opts.QueryLen, 1},
		{"tau=0.3", 0.3, opts.QueryLen, 1},
		{"|Q|=20", 0.1, 20, 1},
		{"|Q|=40", 0.1, 40, 1},
		{"25% data", 0.1, opts.QueryLen, 0.25},
		{"50% data", 0.1, opts.QueryLen, 0.5},
	}
	for _, s := range settings {
		c := GetCtx(cfg, opts.Scale*s.scale)
		qlen := s.qlen
		if qlen > opts.QueryLen {
			qlen = opts.QueryLen
		}
		queries := c.Queries(model, qlen, opts.Queries, opts.Seed+int64(qlen))
		var visited, available, stepped int64
		for _, q := range queries {
			tau := c.Tau(model, q, s.ratio)
			_, stats, err := c.Engine(model).SearchQuery(core.Query{Q: q, Tau: tau})
			if err != nil {
				panic(err)
			}
			visited += stats.Verify.ColumnsVisited
			available += stats.Verify.ColumnsAvailable
			stepped += stats.Verify.StepDPCalls
		}
		upr, cmr := 0.0, 0.0
		if available > 0 {
			upr = float64(visited) / float64(available)
		}
		if visited > 0 {
			cmr = float64(stepped) / float64(visited)
		}
		t.Rows = append(t.Rows, []string{
			s.label,
			fmt.Sprintf("%.2f", 100*upr),
			fmt.Sprintf("%.2f", 100*cmr),
			fmt.Sprintf("%.2f", 100*upr*cmr),
		})
	}
	return t
}

// Tab6IndexBuild reproduces Table 6: index construction time and size for
// the postings-list index (shared by OSF/DISON/Torch), the q-gram index,
// and — on a small fraction — the enumeration baselines.
func Tab6IndexBuild(cfgs []Ctx2, enumTraj int, opts Options) *Table {
	t := &Table{
		ID:     "tab6",
		Title:  "Index construction time / size",
		Header: []string{"dataset", "index", "build", "entries", "approx size"},
		Notes: []string{
			"postings entry = (id, pos) pair (8 B); q-gram entry = one gram occurrence;",
			"DITA/ERP-index build on a small fraction only (enumeration explodes; Figure 9/10 discussion).",
		},
	}
	for _, cc := range cfgs {
		c := GetCtx(cc.Cfg, opts.Scale*cc.Scale)
		// Postings index: rebuild to time it (GetCtx may have cached it).
		start := time.Now()
		inv := index.Build(c.W.Data)
		postBuild := time.Since(start)
		t.Rows = append(t.Rows, []string{
			c.Cfg.Name, "postings (OSF/DISON/Torch)",
			postBuild.Round(time.Millisecond).String(),
			fmt.Sprint(inv.NumPostings()),
			byteSize(int64(inv.NumPostings()) * 8),
		})
		// Compressed on-disk form (delta-varint).
		var cbuf countingWriter
		if err := inv.Save(&cbuf); err == nil {
			t.Rows = append(t.Rows, []string{
				c.Cfg.Name, "postings (compressed, on disk)",
				"-", fmt.Sprint(inv.NumPostings()), byteSize(cbuf.n),
			})
		}
		// q-gram index: build fresh so the timing is real (qgramFor
		// caches).
		start = time.Now()
		qg := baselines.NewQGramIndex(c.Model("EDR"), c.W.Data, 3)
		qgBuild := time.Since(start)
		t.Rows = append(t.Rows, []string{
			c.Cfg.Name, "q-gram (q=3)",
			qgBuild.Round(time.Millisecond).String(),
			fmt.Sprint(qg.Entries),
			byteSize(int64(qg.Entries) * 8),
		})
	}
	// Enumeration baselines on the first dataset, tiny fraction.
	if len(cfgs) > 0 && enumTraj > 0 {
		ditaBuild, erpBuild, subs := EnumIndexMetrics(cfgs[0].Cfg, enumTraj)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%d traj)", cfgs[0].Cfg.Name, enumTraj), "DITA (enumerated)",
			ditaBuild.Round(time.Millisecond).String(), fmt.Sprint(subs), byteSize(int64(subs) * 16),
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%d traj)", cfgs[0].Cfg.Name, enumTraj), "ERP-index (enumerated)",
			erpBuild.Round(time.Millisecond).String(), fmt.Sprint(subs), byteSize(int64(subs) * 32),
		})
	}
	return t
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

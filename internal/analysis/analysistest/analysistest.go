// Package analysistest runs one analyzer over a GOPATH-style fixture
// tree and checks its diagnostics against expectation comments, mirroring
// the golang.org/x/tools analysistest contract with only the standard
// library (the root module is dependency-free by design).
//
// A fixture lives at <dir>/src/<pkg>/*.go. Fixture packages may import
// each other by bare path ("verify" resolves to <dir>/src/verify);
// everything else is satisfied from gc export data, offline.
//
// Expectations are comments on the line the diagnostic is reported at:
//
//	f.Close() // want "Close error discarded"
//
// The quoted string is a regexp matched against the diagnostic message.
// Several `"re"` strings after one want expect several diagnostics on the
// line. When the diagnostic anchors to a comment that cannot also carry a
// want (a stale directive, for example), put the expectation on the next
// line with wantup:
//
//	//subtrajlint:hotloop
//	x := 1 // wantup "not attached"
//
// Every diagnostic must be wanted and every want must be matched; either
// kind of mismatch fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"subtraj/internal/analysis"
)

// Result is the outcome of analyzing one fixture package.
type Result struct {
	// Diagnostics is everything the analyzer reported, in stable order.
	Diagnostics []analysis.Diagnostic
	// Unexpected describes diagnostics no want comment covers.
	Unexpected []string
	// Unmatched describes want comments no diagnostic fulfilled.
	Unmatched []string
}

// Ok reports whether every diagnostic was wanted and every want matched.
func (r *Result) Ok() bool { return len(r.Unexpected) == 0 && len(r.Unmatched) == 0 }

// Run analyzes <dir>/src/<pkg> with a and fails t on infrastructure
// errors or expectation mismatches.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkg string) {
	t.Helper()
	res, err := Analyze(a, dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, u := range res.Unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
	for _, u := range res.Unmatched {
		t.Errorf("want not matched: %s", u)
	}
}

// Analyze loads the fixture package, runs the analyzer, and matches
// diagnostics against want comments. Infrastructure failures (missing
// fixture, parse or type errors) return an error; expectation mismatches
// are data in the Result, so a meta-test can assert that a seeded
// violation would fail the suite.
func Analyze(a *analysis.Analyzer, dir, pkg string) (*Result, error) {
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset: fset,
		src:  filepath.Join(dir, "src"),
		std:  analysis.NewStdImporter(fset, "."),
		pkgs: make(map[string]*fixturePkg),
	}
	fp, err := ld.load(pkg)
	if err != nil {
		return nil, err
	}
	diags, err := analysis.RunOnPackage(a, fset, fp.files, fp.pkg, fp.info, pkg)
	if err != nil {
		return nil, fmt.Errorf("running %s on %s: %w", a.Name, pkg, err)
	}

	wants := collectWants(fset, fp.files)
	res := &Result{Diagnostics: diags}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !fulfill(wants, pos, d.Message) {
			res.Unexpected = append(res.Unexpected,
				fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			res.Unmatched = append(res.Unmatched,
				fmt.Sprintf("%s:%d: want %q", w.file, w.line, w.re.String()))
		}
	}
	return res, nil
}

// want is one expectation: a diagnostic on (file, line) whose message
// matches re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`\b(want|wantup)((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants extracts want/wantup expectations from the fixture's
// comments. wantup anchors the expectation one line above its comment.
func collectWants(fset *token.FileSet, files []*ast.File) []*want {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] == "wantup" {
					line--
				}
				for _, q := range wantStrRE.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						// Surface the broken expectation as an unmatchable
						// want rather than silently dropping it.
						re = regexp.MustCompile(regexp.QuoteMeta("(bad want regexp: " + q[1] + ")"))
					}
					wants = append(wants, &want{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return wants
}

// fulfill marks the first unmatched want on the diagnostic's line whose
// regexp matches, reporting whether one was found.
func fulfill(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// --- fixture loading ------------------------------------------------------

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages on demand, resolving their
// imports to sibling fixture directories first and gc export data
// otherwise.
type fixtureLoader struct {
	fset *token.FileSet
	src  string
	std  *analysis.StdImporter
	pkgs map[string]*fixturePkg

	loading []string // cycle detection
}

func (ld *fixtureLoader) load(pkg string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[pkg]; ok {
		return fp, nil
	}
	for _, p := range ld.loading {
		if p == pkg {
			return nil, fmt.Errorf("fixture import cycle through %q", pkg)
		}
	}
	ld.loading = append(ld.loading, pkg)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.src, filepath.FromSlash(pkg))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", pkg, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q: no .go files in %s", pkg, dir)
	}
	var files []*ast.File
	for _, name := range names {
		af, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("fixture %s: %w", name, err)
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: (*fixtureImporter)(ld)}
	p, err := cfg.Check(pkg, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %q: type-check: %w", pkg, err)
	}
	fp := &fixturePkg{files: files, pkg: p, info: info}
	ld.pkgs[pkg] = fp
	return fp, nil
}

// fixtureImporter adapts the loader to types.Importer: local fixture
// directories win, everything else falls through to export data.
type fixtureImporter fixtureLoader

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*fixtureLoader)(im)
	if st, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path))); err == nil && st.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return ld.std.Import(path)
}

// Package poolpair exercises the poolpair analyzer: verify.Get/Put, raw
// sync.Pool uses, and annotated custom pool getters must pair on every
// path, deferred unless declared panic-safe.
package poolpair

import (
	"sync"

	"verify"
)

var bufs = sync.Pool{New: func() any { return new([]byte) }}

// ok pairs Get with a deferred Put: clean.
func ok() {
	v := verify.Get()
	defer verify.Put(v)
	_ = v
}

// leak never returns the verifier.
func leak() {
	v := verify.Get() // want "verify.Get without verify.Put"
	_ = v
}

// straightline pairs, but a panic between the calls would leak.
func straightline() {
	v := verify.Get()
	verify.Put(v) // want "pooled Put is not deferred"
}

// sanctioned declares why the straight-line Put is safe.
//
//subtrajlint:pool-nodefer the body is straight-line arithmetic; nothing between Get and Put can panic
func sanctioned() {
	v := verify.Get()
	verify.Put(v)
}

// transfer hands ownership to the caller.
//
//subtrajlint:pool-transfer
func transfer() *verify.Verifier {
	return verify.Get()
}

// deferredClosure returns the value from inside a deferred closure: the
// deferred flag must propagate through the function literal.
func deferredClosure() {
	v := verify.Get()
	defer func() {
		verify.Put(v)
	}()
	_ = v
}

// poolLeak drops a raw sync.Pool value.
func poolLeak() {
	b := bufs.Get().(*[]byte) // want "sync.Pool Get without Put"
	_ = b
}

// poolOK pairs the raw sync.Pool use.
func poolOK() {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	_ = b
}

// getBuf checks a buffer out of the pool; callers return it with putBuf.
//
//subtrajlint:pool-get putBuf
func getBuf() *[]byte { return bufs.Get().(*[]byte) }

func putBuf(b *[]byte) { bufs.Put(b) }

// customOK pairs the annotated getter with its declared put.
func customOK() {
	b := getBuf()
	defer putBuf(b)
	_ = b
}

// customLeak acquires through the annotated getter and never returns.
func customLeak() {
	b := getBuf() // want "annotated pool getter without putBuf"
	_ = b
}

// Package errsync exercises the errsync analyzer: Sync/Close/Truncate/
// Seek/Rename errors on durability paths must be checked, deliberately
// discarded with `_ =`, or annotated away with a reason.
package errsync

import "os"

// unchecked drops the Close error on the floor.
func unchecked(f *os.File) {
	f.Close() // want "Close error discarded"
}

// deferredBare drops it just as silently behind a defer.
func deferredBare(f *os.File) {
	defer f.Close() // want "Close error discarded"
}

// uncheckedSync drops an fsync result — the classic fsyncgate bug.
func uncheckedSync(f *os.File) {
	f.Sync() // want "Sync error discarded"
}

// checked propagates the error: clean.
func checked(f *os.File) error {
	return f.Close()
}

// discarded assigns the error away explicitly: clean.
func discarded(f *os.File) {
	_ = f.Close()
}

// annotated sanctions a best-effort call with a reason: clean.
func annotated(f *os.File) {
	// subtrajlint:ignore-err best-effort cleanup on an already-failing path
	f.Close()
}

// badAnnotation carries the marker without a reason.
func badAnnotation(f *os.File) {
	// subtrajlint:ignore-err
	f.Sync() // want "needs a reason"
}

// write is not a watched method; unchecked is (here) out of scope.
func write(f *os.File) {
	f.Write(nil)
}

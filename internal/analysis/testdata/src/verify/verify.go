// Package verify is a stand-in for the engine's pooled-verifier package:
// poolpair matches Get/Put by package base name, so this fixture
// exercises the same pairing rules without importing the real engine.
package verify

// Verifier is a pooled scratch object.
type Verifier struct {
	used int
}

// Get checks a verifier out of the pool.
func Get() *Verifier { return &Verifier{} }

// Put returns a verifier to the pool.
func Put(v *Verifier) { v.used = 0 }

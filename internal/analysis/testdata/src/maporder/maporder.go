// Package maporder exercises the maporder analyzer: no range-over-map in
// determinism-scoped packages without a reasoned annotation.
package maporder

// sum ranges a map bare: flagged.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m"
		total += v
	}
	return total
}

// sanctioned explains why order cannot reach results: clean.
func sanctioned(m map[string]int) int {
	total := 0
	// subtrajlint:unordered-ok order-independent sum
	for _, v := range m {
		total += v
	}
	return total
}

// emptyReason carries the marker but no justification.
func emptyReason(m map[string]int) {
	// subtrajlint:unordered-ok
	for k := range m { // want "needs a reason"
		delete(m, k)
	}
}

// slices are ordered; ranging them is always fine.
func slices(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

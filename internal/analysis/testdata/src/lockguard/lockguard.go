// Package lockguard exercises the lockguard analyzer: `guarded by mu`
// fields may only be touched where the mutex is visibly acquired or the
// function declares why it need not be.
package lockguard

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	name string
	bad  int // guarded by name — want "names a sibling field that is not a sync.Mutex"
}

// inc acquires the lock: clean.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// addLocked is a lock-held helper: sanctioned by annotation.
//
//subtrajlint:locked mu — callers hold c.mu
func (c *counter) addLocked(d int) { c.n += d }

// leak reads the guarded field with no lock and no declaration.
func (c *counter) leak() int {
	return c.n // want "field n is guarded by mu"
}

// rlocked proves RLock counts as an acquisition.
type gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

func (g *gauge) read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// prose mentioning a guard without naming a sibling field is ignored.
type free struct {
	x int // guarded by the caller's serialization, not a mutex here
}

func (f *free) bump() { f.x++ }

// Package ctxpoll exercises the ctxpoll analyzer: loops marked hotloop
// must poll cancellation every iteration, and stale markers are flagged.
package ctxpoll

import "context"

// polls checks ctx.Err each iteration: clean.
func polls(ctx context.Context, xs []int) int {
	total := 0
	//subtrajlint:hotloop
	for _, x := range xs {
		if ctx.Err() != nil {
			return total
		}
		total += x
	}
	return total
}

// pollsDone uses the Done channel form: clean.
func pollsDone(ctx context.Context, xs []int) int {
	total := 0
	//subtrajlint:hotloop
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += x
	}
	return total
}

// pollsHelper calls a ctxErr-style helper: clean.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func pollsHelper(ctx context.Context, xs []int) (total int) {
	//subtrajlint:hotloop
	for _, x := range xs {
		if ctxErr(ctx) != nil {
			return total
		}
		total += x
	}
	return total
}

// missing is marked hot but never polls.
func missing(ctx context.Context, xs []int) int {
	_ = ctx
	total := 0
	//subtrajlint:hotloop
	for _, x := range xs { // want "does not poll cancellation"
		total += x
	}
	return total
}

// stale carries a marker that no longer sits on a loop.
func stale() {
	//subtrajlint:hotloop
	x := 1 // wantup "not attached to a for/range"
	_ = x
}

// unmarked loops are outside the contract.
func unmarked(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Package atomicfield exercises the atomicfield analyzer: once any site
// touches a field through sync/atomic, every access must be atomic.
package atomicfield

import "sync/atomic"

type stats struct {
	hits int64
	cold int64
}

// bump and read establish hits as an atomic field.
func (s *stats) bump() { atomic.AddInt64(&s.hits, 1) }

func (s *stats) read() int64 { return atomic.LoadInt64(&s.hits) }

// racy reads the atomic field without the atomic API.
func (s *stats) racy() int64 {
	return s.hits // want "plain access races it"
}

// newStats initializes pre-publication: sanctioned with a reason.
//
//subtrajlint:nonatomic pre-publication initialization; no other goroutine can see s yet
func newStats(seed int64) *stats {
	s := &stats{}
	s.hits = seed
	return s
}

// unsanctioned carries the marker without a reason.
//
//subtrajlint:nonatomic
func (s *stats) reset() {
	s.hits = 0 // want "needs a reason"
}

// coldPath is never touched atomically: plain access is fine.
func (s *stats) coldPath() int64 { return s.cold }

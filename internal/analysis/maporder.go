package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MaporderPackages scopes the maporder analyzer: the packages whose
// outputs feed match results or plan construction, where the bit-equal
// determinism contract (every parallelism setting, every run: identical
// sorted matches) bans nondeterministic iteration. The "maporder" entry
// scopes the analysistest fixture package.
var MaporderPackages = []string{
	"subtraj/internal/core",
	"subtraj/internal/filter",
	"subtraj/internal/verify",
	"maporder",
}

// Maporder is the mechanical half of the determinism contract: no `range`
// over a map in the scoped packages, because Go randomizes map iteration
// order and anything downstream of candidate generation, verification, or
// plan construction must be bit-equal across runs. Order-independent
// reductions (sums, retire-and-reset recycling) carry an explicit
// `// subtrajlint:unordered-ok <why>` with a reason.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid range-over-map on result/plan paths (determinism contract)",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	if !inScope(pass.PkgPath, MaporderPackages) {
		return nil
	}
	for _, f := range pass.Files {
		// Test files are off the result path by construction: the
		// contract covers what feeds served matches and plans, and a
		// membership-check loop in a test cannot reach them.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			args := pass.markerArgs(rs, "subtrajlint:unordered-ok")
			if args == nil {
				pass.Reportf(rs.Pos(), "range over map %s in a determinism-scoped package: map iteration order is random; restructure, or annotate the loop `// subtrajlint:unordered-ok <why>` if order provably cannot reach results", types.ExprString(rs.X))
				return true
			}
			if allEmpty(args) {
				pass.Reportf(rs.Pos(), "subtrajlint:unordered-ok needs a reason explaining why iteration order cannot reach results")
			}
			return true
		})
	}
	return nil
}

func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s {
			return true
		}
	}
	return false
}

func allEmpty(args []string) bool {
	for _, a := range args {
		if a != "" {
			return false
		}
	}
	return true
}

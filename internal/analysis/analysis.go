// Package analysis is the repo's static-analysis suite: six analyzers that
// machine-enforce invariants the codebase otherwise carries only as
// convention — lock discipline, pool Get/Put pairing, hot-loop
// cancellation polls, atomic-field access, checked durability errors, and
// the no-map-iteration half of the bit-equal determinism contract.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library only,
// keeping the root module dependency-free: packages are loaded with
// `go list`, parsed with go/parser, and type-checked with go/types
// against gc export data for standard-library imports (see load.go).
// If x/tools ever becomes an acceptable dependency, each Run function
// ports to a real analysis.Analyzer mechanically.
//
// Annotation grammar (all forms are line comments):
//
//	// guarded by mu                  on a struct field: the field may only
//	                                  be accessed while the sibling mutex
//	                                  field mu is held (lockguard)
//	// subtrajlint:locked mu — why    on a func: accesses to mu-guarded
//	                                  fields are sanctioned here (caller
//	                                  holds the lock, or the state is
//	                                  construction-immutable) (lockguard)
//	// subtrajlint:pool-get X.Put     on a func: calling it acquires a
//	                                  pooled value the caller must return
//	                                  via X.Put (poolpair)
//	// subtrajlint:pool-transfer      on a func: ownership of the pooled
//	                                  value it Gets leaves the function by
//	                                  design (poolpair)
//	// subtrajlint:pool-nodefer why   on a func: a non-deferred Put is
//	                                  sanctioned (no panic can escape
//	                                  between Get and Put) (poolpair)
//	// subtrajlint:hotloop            on a for/range statement: every
//	                                  iteration must poll cancellation
//	                                  (ctxpoll)
//	// subtrajlint:unordered-ok why   on a range-over-map statement in a
//	                                  determinism-scoped package: iteration
//	                                  order provably cannot reach results
//	                                  (maporder)
//	// subtrajlint:nonatomic why      on a func: plain access to an
//	                                  atomically-used field is sanctioned
//	                                  (pre-publication init) (atomicfield)
//	// subtrajlint:ignore-err why     on the line of (or above) a call
//	                                  statement: discarding this Sync/
//	                                  Close/... error is sanctioned
//	                                  (errsync)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and -only
	// filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package under analysis.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the path the package was requested as. For test-variant
	// packages it is the base import path (analyzer scoping treats the
	// test variant like its base package).
	PkgPath string

	report func(Diagnostic)
	// comments caches per-file comment line maps.
	comments map[*ast.File]*commentIndex
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// --- comment/annotation indexing -----------------------------------------

// commentIndex maps source lines to the comment text on or immediately
// above them, which is how every subtrajlint annotation binds to code.
type commentIndex struct {
	// onLine[n] is the concatenated text of comments whose position is on
	// line n (trailing same-line comments included).
	onLine map[int]string
}

func (p *Pass) commentsFor(f *ast.File) *commentIndex {
	if p.comments == nil {
		p.comments = make(map[*ast.File]*commentIndex)
	}
	if idx, ok := p.comments[f]; ok {
		return idx
	}
	idx := &commentIndex{onLine: make(map[int]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := p.Fset.Position(c.Pos()).Line
			if prev, ok := idx.onLine[line]; ok {
				idx.onLine[line] = prev + "\n" + c.Text
			} else {
				idx.onLine[line] = c.Text
			}
		}
	}
	p.comments[f] = idx
	return idx
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// annotation returns the text of the comment attached to the node: a
// comment on the node's own first line or on any directly preceding
// comment line (a contiguous comment block ending on the line above).
func (p *Pass) annotation(n ast.Node) string {
	f := p.fileOf(n.Pos())
	if f == nil {
		return ""
	}
	idx := p.commentsFor(f)
	line := p.Fset.Position(n.Pos()).Line
	var parts []string
	if txt, ok := idx.onLine[line]; ok {
		parts = append(parts, txt)
	}
	for l := line - 1; l > 0; l-- {
		txt, ok := idx.onLine[l]
		if !ok {
			break
		}
		parts = append(parts, txt)
	}
	return strings.Join(parts, "\n")
}

// hasMarker reports whether node n carries the given subtrajlint marker
// (e.g. "subtrajlint:hotloop"), either alone or followed by arguments.
func (p *Pass) hasMarker(n ast.Node, marker string) bool {
	return p.markerArgs(n, marker) != nil
}

// markerArgs returns the argument text after each occurrence of marker in
// n's attached comments (nil if absent; empty strings for bare markers).
func (p *Pass) markerArgs(n ast.Node, marker string) []string {
	txt := p.annotation(n)
	if txt == "" {
		return nil
	}
	var args []string
	for _, line := range strings.Split(txt, "\n") {
		for _, frag := range strings.Split(line, "//") {
			frag = strings.TrimSpace(frag)
			if rest, ok := strings.CutPrefix(frag, marker); ok {
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					args = append(args, strings.TrimSpace(rest))
				}
			}
		}
	}
	return args
}

// funcMarkerArgs looks the marker up on the declaration of the function
// enclosing pos (doc comment or first-line trailing comment).
func (p *Pass) funcMarkerArgs(pos token.Pos, marker string) []string {
	fn := p.enclosingFunc(pos)
	if fn == nil {
		return nil
	}
	return p.markerArgs(fn, marker)
}

// enclosingFunc returns the innermost FuncDecl containing pos. Function
// literals inherit their enclosing declaration's annotations.
func (p *Pass) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	f := p.fileOf(pos)
	if f == nil {
		return nil
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// --- small shared helpers -------------------------------------------------

// calleeName splits a call into (package-or-receiver name, method/func
// name) on a best-effort syntactic basis: verify.Get → ("verify", "Get"),
// f.Close → ("f", "Close"), Get → ("", "Get").
func calleeName(call *ast.CallExpr) (recv, name string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name, fn.Sel.Name
		}
		return "", fn.Sel.Name
	}
	return "", ""
}

// typeNameOf unwraps pointers and returns the named type of t, if any.
func typeNameOf(t types.Type) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// isPkgFunc reports whether the call resolves (via type info) to the
// function pkgPath.name, or — when the exact package path is not loaded,
// as in analysistest fixtures — to a function name in a package whose
// final path element matches the last element of pkgPath.
func (p *Pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != name {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	got := obj.Pkg().Path()
	if got == pkgPath {
		return true
	}
	want := pkgPath
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		want = pkgPath[i+1:]
	}
	gotBase := got
	if i := strings.LastIndex(got, "/"); i >= 0 {
		gotBase = got[i+1:]
	}
	return gotBase == want
}

// SortDiagnostics orders ds by file position then analyzer name, the
// stable order the driver and tests print in.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

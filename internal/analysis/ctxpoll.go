package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ctxpoll enforces the cancellation contract PR 8 established on the
// engine's hot loops: a loop marked `// subtrajlint:hotloop` must poll
// cancellation on every iteration — a call to ctx.Err() or ctx.Done() on
// a context.Context, or to the engine's ctxErr helper — so a server
// deadline interrupts a slow query in bounded time instead of letting it
// run to completion. The analyzer also flags hotloop markers that are not
// attached to a for/range statement (stale annotations after refactors).
var Ctxpoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "require marked hot loops to poll context cancellation each iteration",
	Run:  runCtxpoll,
}

const hotloopMarker = "subtrajlint:hotloop"

func runCtxpoll(pass *Pass) error {
	for _, f := range pass.Files {
		// Collect the lines carrying hotloop markers; loops consume the
		// ones they are annotated with, leftovers are stale.
		// Only directive-style comments count (`// subtrajlint:hotloop`
		// and nothing else on the comment): prose that merely mentions
		// the marker, like this sentence, is not an annotation.
		markerLines := make(map[int]token.Pos)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				txt := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if txt == hotloopMarker {
					markerLines[pass.Fset.Position(c.Pos()).Line] = c.Pos()
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !pass.hasMarker(n, hotloopMarker) {
				return true
			}
			// Consume this loop's marker line(s): the annotation sits on
			// the loop's first line or the contiguous comment block above.
			line := pass.Fset.Position(n.Pos()).Line
			delete(markerLines, line)
			for l := line - 1; ; l-- {
				if _, ok := markerLines[l]; ok {
					delete(markerLines, l)
					continue
				}
				if _, isComment := pass.commentsFor(pass.fileOf(n.Pos())).onLine[l]; !isComment {
					break
				}
			}
			if !pollsCancellation(pass, body) {
				pass.Reportf(n.Pos(), "hot loop does not poll cancellation: call ctx.Err()/ctx.Done() (or the ctxErr helper) each iteration, or drop the subtrajlint:hotloop marker")
			}
			return true
		})
		for _, pos := range markerLines {
			pass.Reportf(pos, "subtrajlint:hotloop marker is not attached to a for/range statement")
		}
	}
	return nil
}

// pollsCancellation reports whether the loop body contains a cancellation
// poll: ctx.Err(), ctx.Done(), <-ctx.Done() in a select, or a call to a
// function named ctxErr (the engine's nil-tolerant helper).
func pollsCancellation(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name := calleeName(call); name == "ctxErr" {
			found = true
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if tv, ok := pass.Info.Types[sel.X]; ok {
			if named := typeNameOf(tv.Type); named != nil && named.Pkg() != nil &&
				named.Pkg().Path() == "context" && named.Name() == "Context" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

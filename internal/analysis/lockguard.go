package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces annotated lock discipline: a struct field whose
// comment says `// guarded by mu` (where mu is a sibling sync.Mutex or
// sync.RWMutex field) may only be accessed inside functions that visibly
// acquire that mutex — a call to <x>.mu.Lock() or <x>.mu.RLock()
// somewhere in the function body — or that declare why they need not:
//
//	// subtrajlint:locked mu — <why>
//
// covering both "the caller holds mu" helpers and reads of
// construction-immutable state that mu only guards against concurrent
// mutation. The check is deliberately syntactic (presence of an acquire
// in the same function, not a dominance proof): it catches the real
// failure mode — a new method added without thinking about the lock —
// while staying dependency-free and annotation-driven.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "restrict `guarded by mu` fields to functions that acquire (or declare) the mutex",
	Run:  runLockguard,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// fieldAnnotation returns the comment text the parser associated with the
// field itself: its doc block above plus its trailing line comment. The
// generic line-based annotation() helper is wrong here — it would credit
// one field's trailing comment to the next field down.
func fieldAnnotation(field *ast.Field) string {
	var txt string
	if field.Doc != nil {
		txt += field.Doc.Text()
	}
	if field.Comment != nil {
		txt += " " + field.Comment.Text()
	}
	return txt
}

func runLockguard(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	// acquireCache memoizes "does function fd acquire mutex mu" lookups.
	type fnMu struct {
		fd *ast.FuncDecl
		mu *types.Var
	}
	acquireCache := make(map[fnMu]bool)
	acquires := func(fd *ast.FuncDecl, mu *types.Var) bool {
		key := fnMu{fd, mu}
		if v, ok := acquireCache[key]; ok {
			return v
		}
		v := fnAcquires(pass, fd, mu)
		acquireCache[key] = v
		return v
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil {
				return true
			}
			mu, ok := guarded[fv]
			if !ok {
				return true
			}
			fd := pass.enclosingFunc(sel.Pos())
			if fd == nil {
				pass.Reportf(sel.Pos(), "field %s is guarded by %s but is accessed outside any function", fv.Name(), mu.Name())
				return true
			}
			for _, arg := range pass.markerArgs(fd, "subtrajlint:locked") {
				if firstToken(arg) == mu.Name() {
					return true
				}
			}
			if acquires(fd, mu) {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is guarded by %s, but %s neither acquires %s nor declares `// subtrajlint:locked %s — <why>`", fv.Name(), mu.Name(), fd.Name.Name, mu.Name(), mu.Name())
			return true
		})
	}
	return nil
}

// collectGuardedFields finds `guarded by mu` field annotations and
// resolves each to (field var → mutex field var). An annotation naming a
// sibling that is not a mutex is itself reported; one naming no sibling at
// all is ignored as prose.
func collectGuardedFields(pass *Pass) map[*types.Var]*types.Var {
	guarded := make(map[*types.Var]*types.Var)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				txt := fieldAnnotation(field)
				loc := guardedByRE.FindStringSubmatchIndex(txt)
				if loc == nil {
					continue
				}
				// "deliberately NOT guarded by mu" is an explicit opt-out,
				// not an annotation.
				if negatedGuard(txt, loc[0]) {
					continue
				}
				m := []string{txt[loc[0]:loc[1]], txt[loc[2]:loc[3]]}
				muName := m[1]
				mu := findSiblingField(pass, st, muName)
				if mu == nil {
					continue // prose, e.g. "guarded by the caller"
				}
				if !isMutexType(mu.Type()) {
					pass.Reportf(field.Pos(), "`guarded by %s` names a sibling field that is not a sync.Mutex/RWMutex", muName)
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[fv] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// negatedGuard reports whether the word immediately before the "guarded
// by" match at offset negates it ("not guarded by mu").
func negatedGuard(txt string, off int) bool {
	head := strings.TrimRight(txt[:off], " \t")
	return strings.HasSuffix(head, "not") || strings.HasSuffix(head, "NOT")
}

func findSiblingField(pass *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				v, _ := pass.Info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named := typeNameOf(t)
	return named != nil && named.Pkg() != nil && named.Pkg().Path() == "sync" &&
		(named.Name() == "Mutex" || named.Name() == "RWMutex")
}

// fnAcquires reports whether fd's body contains a Lock or RLock call on
// the given mutex field (resolved through type info, so any receiver
// variable of the owning struct counts).
func fnAcquires(pass *Pass, fd *ast.FuncDecl, mu *types.Var) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fieldVar(pass, inner) == mu {
			found = true
			return false
		}
		return true
	})
	return found
}

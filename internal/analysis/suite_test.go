package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"subtraj/internal/analysis"
	"subtraj/internal/analysis/analysistest"
)

// Each fixture package pairs positive cases (`// want "re"`) with clean
// negatives; Run fails on unexpected diagnostics and unmatched wants
// alike, so these tests pin both halves of each analyzer's contract.

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysis.Lockguard, "testdata", "lockguard")
}

func TestPoolpair(t *testing.T) {
	analysistest.Run(t, analysis.Poolpair, "testdata", "poolpair")
}

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, analysis.Ctxpoll, "testdata", "ctxpoll")
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, analysis.Atomicfield, "testdata", "atomicfield")
}

func TestErrsync(t *testing.T) {
	analysistest.Run(t, analysis.Errsync, "testdata", "errsync")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysis.Maporder, "testdata", "maporder")
}

// TestSuiteFailsOnSeededViolation is the meta-test: seed a fresh fixture
// with a real violation and no want comments, and assert the harness
// would fail — proving the gate actually trips rather than vacuously
// passing.
func TestSuiteFailsOnSeededViolation(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "src", "seeded")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package seeded

import "sync"

var pool = sync.Pool{New: func() any { return new(int) }}

func leak() {
	n := pool.Get().(*int)
	*n = 7
}
`
	if err := os.WriteFile(filepath.Join(pkg, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := analysistest.Analyze(analysis.Poolpair, dir, "seeded")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("seeded sync.Pool leak produced no diagnostics")
	}
	if res.Ok() {
		t.Fatal("harness accepted an unwanted diagnostic: the gate would pass a violating tree")
	}
}

// TestRepoTreeIsClean is the CI gate in test form: the full module must
// come back with zero findings from every analyzer. It is what makes the
// seeded annotations load-bearing — removing one, or reintroducing a
// fixed violation, fails the ordinary test run.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	fset, pkgs, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(fset, pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

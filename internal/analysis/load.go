package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file loads and type-checks every package of a module — including
// in-package test files and external _test packages — using only the
// standard library. Module packages are parsed and checked from source in
// dependency order; standard-library imports are satisfied from gc export
// data located with `go list -export` (offline: the data comes from the
// local build cache). This replaces golang.org/x/tools/go/packages, which
// the dependency-free root module cannot take on.

// LoadedPackage is one type-checked unit of analysis.
type LoadedPackage struct {
	// PkgPath is the base import path ("subtraj/internal/core" for both
	// the package, its test-augmented variant, and its _test package).
	PkgPath string
	// Variant is "" for a plain package, "test" for the package augmented
	// with its in-package _test.go files, "xtest" for the external test
	// package.
	Variant string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// LoadModule loads every package of the module rooted at dir (the
// directory containing go.mod), type-checking plain packages first and
// test variants on top. The returned packages are in deterministic
// (dependency, then path) order: for each import path the test-augmented
// variant replaces the plain one when in-package test files exist, and an
// xtest package follows when external test files exist — so every source
// file of the module is analyzed exactly once.
func LoadModule(dir string) (*token.FileSet, []*LoadedPackage, error) {
	out, err := runGo(dir, "list", "-json", "./...")
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %w", err)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	byPath := make(map[string]*listedPackage)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
		byPath[lp.ImportPath] = lp
	}
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("analysis: no packages under %s", dir)
	}

	order, err := topoOrder(pkgs, byPath)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	std := NewStdImporter(fset, dir)
	base := make(map[string]*types.Package)
	ld := &loader{fset: fset, std: std, base: base}

	var loaded []*LoadedPackage
	// Pass 1: plain packages in dependency order, so every module import
	// resolves to an already-checked package.
	for _, lp := range order {
		p, err := ld.check(lp.ImportPath, lp.Name, lp.Dir, lp.GoFiles, nil)
		if err != nil {
			return nil, nil, err
		}
		base[lp.ImportPath] = p.Pkg
		if len(lp.TestGoFiles) == 0 {
			loaded = append(loaded, p)
		}
	}
	// Pass 2: test variants. The augmented package re-checks
	// GoFiles+TestGoFiles (its in-package test imports all resolve to
	// plain packages); the xtest package sees the augmented one under the
	// base import path.
	for _, lp := range order {
		var aug *types.Package
		if len(lp.TestGoFiles) > 0 {
			p, err := ld.check(lp.ImportPath, lp.Name, lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...), nil)
			if err != nil {
				return nil, nil, err
			}
			p.Variant = "test"
			aug = p.Pkg
			loaded = append(loaded, p)
		}
		if len(lp.XTestGoFiles) > 0 {
			self := map[string]*types.Package{}
			if aug != nil {
				self[lp.ImportPath] = aug
			}
			p, err := ld.check(lp.ImportPath, lp.Name+"_test", lp.Dir, lp.XTestGoFiles, self)
			if err != nil {
				return nil, nil, err
			}
			p.Variant = "xtest"
			loaded = append(loaded, p)
		}
	}
	return fset, loaded, nil
}

// topoOrder sorts module packages so that every package follows its
// module-internal (non-test) imports.
func topoOrder(pkgs []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*listedPackage
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", lp.ImportPath)
		case black:
			return nil
		}
		state[lp.ImportPath] = gray
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = black
		order = append(order, lp)
		return nil
	}
	for _, lp := range pkgs {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// loader type-checks one package's worth of files against already-checked
// module packages plus the stdlib importer.
type loader struct {
	fset *token.FileSet
	std  *StdImporter
	base map[string]*types.Package
}

func (ld *loader) check(pkgPath, name, dir string, files []string, selfOverride map[string]*types.Package) (*LoadedPackage, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(ld.fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", f, err)
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	imp := &combinedImporter{module: ld.base, override: selfOverride, std: ld.std}
	cfg := &types.Config{Importer: imp}
	pkg, err := cfg.Check(pkgPath, ld.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", pkgPath, err)
	}
	if name != "" && pkg.Name() != name {
		return nil, fmt.Errorf("analysis: %s: package name %q, want %q", pkgPath, pkg.Name(), name)
	}
	return &LoadedPackage{PkgPath: pkgPath, Files: asts, Pkg: pkg, Info: info}, nil
}

// combinedImporter resolves module-internal imports from the loader's map
// (override first, for xtest self-imports) and everything else from gc
// export data.
type combinedImporter struct {
	module   map[string]*types.Package
	override map[string]*types.Package
	std      *StdImporter
}

func (ci *combinedImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.override[path]; ok {
		return p, nil
	}
	if p, ok := ci.module[path]; ok {
		return p, nil
	}
	return ci.std.Import(path)
}

// --- stdlib export-data importer ------------------------------------------

// StdImporter satisfies non-module imports from gc export data found via
// `go list -export`. The go command reads (and if needed populates) the
// local build cache, so this works offline and stays consistent with the
// toolchain that builds the tree. Export-file locations are primed lazily
// and in bulk: the first miss lists the package with -deps, so one go
// invocation covers a package and its whole import closure.
type StdImporter struct {
	fset *token.FileSet
	dir  string

	mu      sync.Mutex
	exports map[string]string // import path → export data file
	gc      types.Importer
}

// NewStdImporter creates an importer running `go list` in dir.
func NewStdImporter(fset *token.FileSet, dir string) *StdImporter {
	s := &StdImporter{fset: fset, dir: dir, exports: make(map[string]string)}
	s.gc = importer.ForCompiler(fset, "gc", s.lookup)
	return s
}

// Import implements types.Importer.
func (s *StdImporter) Import(path string) (*types.Package, error) {
	return s.gc.Import(path)
}

func (s *StdImporter) lookup(path string) (io.ReadCloser, error) {
	s.mu.Lock()
	file, ok := s.exports[path]
	s.mu.Unlock()
	if !ok {
		if err := s.prime(path); err != nil {
			return nil, err
		}
		s.mu.Lock()
		file, ok = s.exports[path]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// prime resolves path and its import closure to export files.
func (s *StdImporter) prime(path string) error {
	out, err := runGo(s.dir, "list", "-export", "-json=ImportPath,Export", "-deps", path)
	if err != nil {
		return fmt.Errorf("analysis: go list -export %s: %w", path, err)
	}
	type entry struct{ ImportPath, Export string }
	dec := json.NewDecoder(bytes.NewReader(out))
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var e entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("analysis: decode go list -export output: %w", err)
		}
		if e.Export != "" {
			s.exports[e.ImportPath] = e.Export
		}
	}
	return nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg != "" {
			return nil, fmt.Errorf("%w: %s", err, msg)
		}
		return nil, err
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to each loaded package and returns
// the findings in stable (position, analyzer) order.
func RunAnalyzers(fset *token.FileSet, pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, lp := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    lp.Files,
				Pkg:      lp.Pkg,
				Info:     lp.Info,
				PkgPath:  lp.PkgPath,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, lp.PkgPath, err)
			}
		}
	}
	SortDiagnostics(fset, diags)
	return diags, nil
}

// RunOnPackage runs one analyzer over one already-type-checked package —
// the entry point the analysistest harness uses.
func RunOnPackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		PkgPath:  pkgPath,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	SortDiagnostics(fset, diags)
	return diags, nil
}

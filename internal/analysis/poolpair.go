package analysis

import (
	"go/ast"
)

// Poolpair enforces Get/Put discipline on the pooled scratch that keeps
// the steady-state query path allocation-free: the verify package's
// verifier pool (verify.Get/verify.Put), raw sync.Pool uses (the core
// candidate buffers, the mapmatch scratch), and any function annotated
// `// subtrajlint:pool-get <Put>` as a pool entry point. Within one
// function, every acquisition must have a matching return, and the return
// must be deferred — a panic escaping between Get and a straight-line Put
// (a panicking cost model, an index bug) leaks the pooled value and, for
// the verifier pool, silently degrades the zero-alloc contract the CI
// alloc guard measures. Sanctioned exceptions:
//
//	// subtrajlint:pool-transfer       ownership leaves the function
//	// subtrajlint:pool-get X.Put      this function IS a pool getter
//	                                   (implies pool-transfer); callers
//	                                   must pair it with X.Put
//	// subtrajlint:pool-nodefer <why>  a non-deferred Put is safe here
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "require pooled Get/Put to pair on every path, deferred where a panic can escape",
	Run:  runPoolpair,
}

// poolUse is one Get or Put site within a function.
type poolUse struct {
	kind     string // "verify", "syncpool", or "custom:<PutName>"
	pos      ast.Node
	deferred bool
}

func runPoolpair(pass *Pass) error {
	// Functions annotated as pool getters: callers of name must pair with
	// the declared Put.
	getters := make(map[string]string) // func name → required put callee
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if args := pass.markerArgs(fd, "subtrajlint:pool-get"); len(args) > 0 && args[0] != "" {
				getters[fd.Name.Name] = firstToken(args[0])
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd, getters)
		}
	}
	return nil
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl, getters map[string]string) {
	transfer := pass.hasMarker(fd, "subtrajlint:pool-transfer") ||
		len(pass.markerArgs(fd, "subtrajlint:pool-get")) > 0
	nodefer := pass.markerArgs(fd, "subtrajlint:pool-nodefer")
	if nodefer != nil && allEmpty(nodefer) {
		pass.Reportf(fd.Pos(), "subtrajlint:pool-nodefer needs a reason explaining why no panic can escape between Get and Put")
	}

	var gets, puts []poolUse
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		switch s := n.(type) {
		case *ast.DeferStmt:
			walk(s.Call, true)
			return
		case *ast.CallExpr:
			if kind, isGet := classifyPoolCall(pass, s, getters); kind != "" {
				use := poolUse{kind: kind, pos: s, deferred: deferred}
				if isGet {
					gets = append(gets, use)
				} else {
					puts = append(puts, use)
				}
			}
		}
		// Recurse manually so the deferred flag propagates into deferred
		// closures (`defer func() { pool.Put(v) }()`).
		for _, child := range childNodes(n) {
			walk(child, deferred)
		}
	}
	walk(fd.Body, false)

	kinds := make(map[string]bool)
	for _, g := range gets {
		kinds[g.kind] = true
	}
	for kind := range kinds {
		if transfer {
			continue
		}
		var matched []poolUse
		for _, p := range puts {
			if p.kind == kind {
				matched = append(matched, p)
			}
		}
		if len(matched) == 0 {
			for _, g := range gets {
				if g.kind == kind {
					pass.Reportf(g.pos.Pos(), "pooled value acquired here is never returned (%s): add the matching Put, or annotate the function `// subtrajlint:pool-transfer` if ownership leaves it", describePoolKind(kind))
					break
				}
			}
			continue
		}
		for _, p := range matched {
			if !p.deferred && nodefer == nil {
				pass.Reportf(p.pos.Pos(), "pooled Put is not deferred: a panic between Get and Put leaks the pooled value — use `defer`, or annotate the function `// subtrajlint:pool-nodefer <why>`")
			}
		}
	}
}

// classifyPoolCall recognizes pool entry/exit calls. kind == "" means the
// call is not pool-related; isGet distinguishes acquisitions.
func classifyPoolCall(pass *Pass, call *ast.CallExpr, getters map[string]string) (kind string, isGet bool) {
	recv, name := calleeName(call)

	// The verify package's verifier pool.
	if pass.isPkgFunc(call, "subtraj/internal/verify", "Get") {
		return "verify", true
	}
	if pass.isPkgFunc(call, "subtraj/internal/verify", "Put") {
		return "verify", false
	}

	// Puts declared by an annotated getter take precedence over the raw
	// sync.Pool rule: `candBufs.Put(buf)` pairs with `getCandBuf()` even
	// though candBufs is itself a sync.Pool.
	full := name
	if recv != "" {
		full = recv + "." + name
	}
	for _, put := range getters {
		if full == put || name == put {
			return "custom:" + put, false
		}
	}

	// Raw sync.Pool methods.
	if name == "Get" || name == "Put" {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if tv, ok := pass.Info.Types[sel.X]; ok {
				if named := typeNameOf(tv.Type); named != nil && named.Pkg() != nil &&
					named.Pkg().Path() == "sync" && named.Name() == "Pool" {
					return "syncpool", name == "Get"
				}
			}
		}
	}

	// Locally-annotated pool getters.
	if recv == "" {
		if put, ok := getters[name]; ok {
			return "custom:" + put, true
		}
	}
	return "", false
}

func describePoolKind(kind string) string {
	switch kind {
	case "verify":
		return "verify.Get without verify.Put"
	case "syncpool":
		return "sync.Pool Get without Put"
	default:
		return "annotated pool getter without " + kind[len("custom:"):]
	}
}

// childNodes returns n's direct AST children (a minimal Inspect step used
// where the walk needs per-path state).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// firstToken returns the leading identifier-ish token of s (up to the
// first space), so "candBufs.Put — reason" parses to "candBufs.Put".
func firstToken(s string) string {
	for i, r := range s {
		if r == ' ' || r == '\t' {
			return s[:i]
		}
	}
	return s
}

package analysis

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Lockguard,
		Poolpair,
		Ctxpoll,
		Atomicfield,
		Errsync,
		Maporder,
	}
}

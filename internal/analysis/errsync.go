package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ErrsyncPackages scopes the errsync analyzer to the durability-critical
// packages: the write-ahead log and the server's checkpoint/recovery
// path, where a swallowed Sync/Close/Truncate error silently breaks the
// crash-safety contract (an acknowledged append must survive a crash).
// The "errsync" entry scopes the analysistest fixture package.
var ErrsyncPackages = []string{
	"subtraj/internal/wal",
	"subtraj/internal/server",
	"errsync",
}

// errsyncMethods are the error-returning filesystem operations whose
// results must be checked on the durability path. A dropped Sync error is
// the classic fsyncgate bug: the kernel reports the lost write exactly
// once, and ignoring it acknowledges data that never reached disk.
var errsyncMethods = map[string]bool{
	"Sync":     true,
	"Close":    true,
	"Truncate": true,
	"Seek":     true,
	"Rename":   true,
}

// Errsync flags statements in the scoped packages that discard the error
// of Sync/Close/Truncate/Seek/Rename — a bare expression statement or a
// bare `defer f.Close()`. Best-effort cleanup on an already-failing path
// is sanctioned explicitly: either assign `_ =` or annotate the statement
// `// subtrajlint:ignore-err <why>`.
var Errsync = &Analyzer{
	Name: "errsync",
	Doc:  "require checked errors from Sync/Close/Truncate/Seek/Rename on durability paths",
	Run:  runErrsync,
}

func runErrsync(pass *Pass) error {
	if !inScope(pass.PkgPath, ErrsyncPackages) {
		return nil
	}
	for _, f := range pass.Files {
		// Within the server package only the durability layer is in scope
		// (durable.go and its tests); the HTTP handlers' resp.Body.Close()
		// style cleanup is not a crash-safety concern.
		if strings.HasPrefix(pass.PkgPath, "subtraj/internal/server") {
			name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if !strings.HasPrefix(name, "durable") {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var stmt ast.Stmt
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				stmt = s
			case *ast.DeferStmt:
				call = s.Call
				stmt = s
			case *ast.GoStmt:
				call = s.Call
				stmt = s
			default:
				return true
			}
			if call == nil || !errsyncTarget(pass, call) {
				return true
			}
			if pass.hasMarker(stmt, "subtrajlint:ignore-err") {
				if allEmpty(pass.markerArgs(stmt, "subtrajlint:ignore-err")) {
					pass.Reportf(stmt.Pos(), "subtrajlint:ignore-err needs a reason explaining why this error is discardable")
				}
				return true
			}
			_, name := calleeName(call)
			pass.Reportf(stmt.Pos(), "%s error discarded on a durability path: check it, assign `_ =` deliberately, or annotate `// subtrajlint:ignore-err <why>`", name)
			return true
		})
	}
	return nil
}

// errsyncTarget reports whether call is one of the watched operations and
// actually returns an error that the surrounding statement drops.
func errsyncTarget(pass *Pass, call *ast.CallExpr) bool {
	_, name := calleeName(call)
	if !errsyncMethods[name] {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	return returnsError(tv.Type)
}

// returnsError reports whether t (a call's result type) is or contains an
// error.
func returnsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named := typeNameOf(t)
	return named != nil && named.Pkg() == nil && named.Name() == "error"
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Atomicfield enforces all-or-nothing atomicity: once any site touches a
// struct field through a sync/atomic function (atomic.LoadInt64(&x.f),
// atomic.AddUint64(&x.f, 1), ...), every access to that field must be
// atomic — a single plain read racing an atomic write is still a data
// race, and the /v1/stats ↔ /metrics bridge reads exactly such counters
// concurrently with their writers. Typed atomics (atomic.Int64 fields)
// are immune by construction and preferred; this analyzer guards the
// raw-integer form. Pre-publication initialization (a constructor filling
// a struct no other goroutine can see yet) is sanctioned with
// `// subtrajlint:nonatomic <why>` on the enclosing function.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "require atomically-accessed fields to be atomic at every site",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	// Pass 1: find fields whose address flows into a sync/atomic call,
	// remembering the selector nodes already inside atomic calls.
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(pass, sel); fv != nil {
					atomicFields[fv] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a violation unless
	// the enclosing function is explicitly sanctioned.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil || !atomicFields[fv] {
				return true
			}
			if args := pass.funcMarkerArgs(sel.Pos(), "subtrajlint:nonatomic"); args != nil {
				if allEmpty(args) {
					pass.Reportf(sel.Pos(), "subtrajlint:nonatomic needs a reason (e.g. pre-publication initialization)")
				}
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races it — use the atomic API here too, switch the field to a typed atomic, or annotate the function `// subtrajlint:nonatomic <why>`", fv.Name())
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a top-level function of
// sync/atomic.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// Methods of atomic.Int64 etc. have a receiver; only package-level
	// functions take raw addresses.
	sig, _ := fn.Type().(*types.Signature)
	return fn.Pkg().Path() == "sync/atomic" && sig != nil && sig.Recv() == nil
}

// fieldVar resolves sel to the struct field it selects, if any.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

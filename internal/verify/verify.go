// Package verify implements the candidate verification of §5: local
// verification that runs the WED dynamic programming bidirectionally from
// the candidate position (Lemma 1), early termination on the column lower
// bound (Eq. 11), and bidirectional tries that cache DP columns across
// candidates sharing path prefixes (Algorithms 3–6).
//
// Three modes with identical result sets support the paper's ablations:
//
//	ModeBT    — local bidirectional DP + trie caching  (the paper's -BT)
//	ModeLocal — local bidirectional DP, no caching     (isolates §5.1)
//	ModeSW    — full-trajectory DP scan per candidate  (the paper's -SW)
package verify

import (
	"sync"

	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// Mode selects the verification algorithm.
type Mode uint8

const (
	// ModeBT is local verification with bidirectional-trie caching.
	ModeBT Mode = iota
	// ModeLocal is local verification without caching.
	ModeLocal
	// ModeSW runs a full dynamic-programming scan over each distinct
	// candidate trajectory (threshold-aware), ignoring positions.
	ModeSW
)

func (m Mode) String() string {
	switch m {
	case ModeBT:
		return "BT"
	case ModeLocal:
		return "Local"
	case ModeSW:
		return "SW"
	default:
		return "Mode(?)"
	}
}

// Options tunes the verifier; the zero value is the paper's configuration.
type Options struct {
	Mode Mode
	// DisableEarlyTermination turns off the Eq. 11 lower-bound cut
	// (ablation for Table 5's UPR).
	DisableEarlyTermination bool
}

// Stats instruments a verification run with the quantities of Table 5.
type Stats struct {
	// Candidates is the number of (id, j, iq) triples verified.
	Candidates int
	// ColumnsAvailable is the total DP-column count a full SW scan of
	// every candidate would compute (the UPR denominator).
	ColumnsAvailable int64
	// ColumnsVisited counts columns that passed early termination —
	// walked in the trie, whether cached or computed (UPR numerator,
	// CMR denominator).
	ColumnsVisited int64
	// StepDPCalls counts columns actually computed by StepDP (CMR
	// numerator).
	StepDPCalls int64
	// TrieNodes is the total number of cached DP columns across the
	// bidirectional tries at the end of the query (memory metric of
	// §5.2; equals StepDPCalls plus one root per trie in BT mode).
	TrieNodes int
	// Matches is the number of distinct (id, s, t) results.
	Matches int
}

// Add accumulates o's counters into s — the shard-merge of the parallel
// query pipeline. Keeping it next to the struct means a future counter
// cannot be summed on one path and dropped on the other.
func (s *Stats) Add(o Stats) {
	s.Candidates += o.Candidates
	s.ColumnsAvailable += o.ColumnsAvailable
	s.ColumnsVisited += o.ColumnsVisited
	s.StepDPCalls += o.StepDPCalls
	s.TrieNodes += o.TrieNodes
	s.Matches += o.Matches
}

// UPR returns the unpruned position rate (§6.4).
func (s Stats) UPR() float64 { return ratio(s.ColumnsVisited, s.ColumnsAvailable) }

// CMR returns the cache miss rate (§6.4).
func (s Stats) CMR() float64 { return ratio(s.StepDPCalls, s.ColumnsVisited) }

// TUR returns the total unpruned rate UPR × CMR.
func (s Stats) TUR() float64 { return s.UPR() * s.CMR() }

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Candidate mirrors filter.Candidate without importing it (avoiding an
// internal dependency cycle in callers that adapt other filters).
type Candidate struct {
	ID  int32
	Pos int32
	IQ  int32
}

// Verifier verifies the candidates of one query: create (or Get from the
// package pool) per query, feed candidates, then call Results. Reset makes
// it reusable across queries with its scratch state — DP column arenas,
// trie nodes, result maps — retained, so a steady-state query stream
// allocates near-zero in the verify phase.
type Verifier struct {
	costs wed.Costs
	ds    *traj.Dataset
	q     []traj.Symbol
	tau   float64
	opts  Options

	// qrev is q reversed, computed once per Reset: the backward trie of
	// position iq runs over reversed(q[:iq]) == qrev[len(q)-iq:], so no
	// per-trie reversal allocation is needed.
	qrev []traj.Symbol

	// Per-iq bidirectional tries (lazily created: only candidate iqs
	// get tries, which matches Algorithm 3's "for (q, iq) ∈ Q'").
	tries map[int32]dirTries

	// trieFree holds retired tries whose arenas are reused by the next
	// trie this verifier needs (ModeLocal retires a pair per candidate,
	// Reset retires every trie of the previous query).
	trieFree []*trie

	// results maps a match to its exact WED: by Lemma 1 the minimum of
	// the three-way decomposition over all candidates covering a match
	// equals wed(P[s..t], Q).
	results map[traj.MatchKey]float64

	// swSeen tracks distinct trajectory IDs already scanned in ModeSW.
	swSeen map[int32]bool

	// Scratch buffers.
	eb, ef []float64

	Stats Stats
}

type dirTries struct {
	fwd, bwd *trie
}

// New creates a verifier for query q under threshold tau.
func New(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64, opts Options) *Verifier {
	v := &Verifier{}
	v.Reset(costs, ds, q, tau, opts)
	return v
}

// pool recycles verifiers across queries; Get/Put are the entry points.
var pool = sync.Pool{New: func() any { return new(Verifier) }}

// Get returns a pooled verifier reset for the given query. Pair with Put
// once Results has been read; the verifier must not be used after Put.
func Get(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64, opts Options) *Verifier {
	v := pool.Get().(*Verifier)
	v.Reset(costs, ds, q, tau, opts)
	return v
}

// Put returns v to the package pool. It drops every reference into the
// finished query — dataset, cost model, and the query slices the trie Q^d
// views alias — so pooling never extends their lifetime, while keeping
// the scratch arenas for the next Get.
func Put(v *Verifier) {
	v.costs, v.ds, v.q = nil, nil, nil
	for iq, tr := range v.tries {
		v.trieFree = append(v.trieFree, tr.fwd, tr.bwd)
		delete(v.tries, iq)
	}
	for _, t := range v.trieFree {
		t.qd = nil // aliases the caller's query; reset re-points it
	}
	pool.Put(v)
}

// Reset prepares v for a new query, retaining allocated scratch state:
// trie arenas move to the free list, maps are cleared in place, and the
// DP scratch buffers keep their capacity.
func (v *Verifier) Reset(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64, opts Options) {
	v.costs, v.ds, v.q, v.tau, v.opts = costs, ds, q, tau, opts
	v.qrev = append(v.qrev[:0], q...)
	for i, j := 0, len(v.qrev)-1; i < j; i, j = i+1, j-1 {
		v.qrev[i], v.qrev[j] = v.qrev[j], v.qrev[i]
	}
	if v.tries == nil {
		v.tries = make(map[int32]dirTries)
	} else {
		for iq, tr := range v.tries {
			v.trieFree = append(v.trieFree, tr.fwd, tr.bwd)
			delete(v.tries, iq)
		}
	}
	if v.results == nil {
		v.results = make(map[traj.MatchKey]float64)
	} else {
		clear(v.results)
	}
	if v.swSeen == nil {
		v.swSeen = make(map[int32]bool)
	} else {
		clear(v.swSeen)
	}
	v.Stats = Stats{}
}

// Verify processes one candidate (Algorithm 4).
func (v *Verifier) Verify(c Candidate) {
	v.Stats.Candidates++
	if v.opts.Mode == ModeSW {
		v.verifySW(c.ID)
		return
	}
	p := v.ds.Path(c.ID)
	j := int(c.Pos)
	b := p[j]
	qSym := v.q[c.IQ]
	subCost := v.costs.Sub(qSym, b)
	tauPrime := v.tau - subCost
	v.Stats.ColumnsAvailable += int64(len(p) - 1)
	if tauPrime <= 0 {
		return // even a perfect surrounding alignment cannot reach < τ
	}

	var tr dirTries
	if v.opts.Mode == ModeBT {
		tr = v.trieFor(c.IQ)
	} else {
		tr = v.freshTries(c.IQ) // no sharing across candidates
		defer v.retireTries(tr) // ...so the arenas recycle per candidate
	}

	// E^b over the reversed prefix P[j-1], ..., P[0] vs reversed Q[:iq];
	// E^f over P[j+1], ..., P[|P|-1] vs Q[iq+1:].
	v.eb = v.allPrefixWED(tr.bwd, p, j, -1, tauPrime, v.eb[:0])
	v.ef = v.allPrefixWED(tr.fwd, p, j, +1, tauPrime, v.ef[:0])

	minEf := minOf(v.ef)
	for kb, ebv := range v.eb {
		if ebv+minEf >= tauPrime {
			continue
		}
		rem := tauPrime - ebv
		for kf, efv := range v.ef {
			if efv >= rem {
				continue
			}
			m := traj.MatchKey{ID: c.ID, S: int32(j - kb), T: int32(j + kf)}
			total := subCost + ebv + efv
			if old, ok := v.results[m]; !ok || total < old {
				v.results[m] = total
			}
		}
	}
}

func minOf(xs []float64) float64 {
	m := xs[0] // allPrefixWED always returns at least E_0
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// allPrefixWED walks/extends the trie along P in the given direction from
// position j (exclusive) and returns the prefix-WED array E^d, E^d[k] =
// wed(P^d[1..k], Q^d), for k = 0..K where K is the early-termination depth
// (Algorithm 5). The returned slice aliases dst's storage.
func (v *Verifier) allPrefixWED(t *trie, p []traj.Symbol, j, dir int, tauPrime float64, dst []float64) []float64 {
	node := int32(0)                // root
	dst = append(dst, t.tail(node)) // E_0 = wed(ε, Q^d)
	for k := 1; ; k++ {
		i := j + dir*k
		if i < 0 || i >= len(p) {
			break
		}
		child, computed := t.child(node, p[i], v.costs)
		if computed {
			v.Stats.StepDPCalls++
		}
		v.Stats.ColumnsVisited++
		if !v.opts.DisableEarlyTermination && t.min(child) >= tauPrime {
			break
		}
		dst = append(dst, t.tail(child))
		node = child
	}
	return dst
}

// trieFor returns (building on first use) the bidirectional tries of iq.
func (v *Verifier) trieFor(iq int32) dirTries {
	if tr, ok := v.tries[iq]; ok {
		return tr
	}
	tr := v.freshTries(iq)
	v.tries[iq] = tr
	return tr
}

func (v *Verifier) freshTries(iq int32) dirTries {
	qf := v.q[iq+1:]
	qb := v.qrev[len(v.q)-int(iq):] // reversed(q[:iq]), pre-materialised by Reset
	return dirTries{
		fwd: v.takeTrie(qf),
		bwd: v.takeTrie(qb),
	}
}

// takeTrie recycles a retired trie's arenas when available.
func (v *Verifier) takeTrie(qd []traj.Symbol) *trie {
	if n := len(v.trieFree); n > 0 {
		t := v.trieFree[n-1]
		v.trieFree = v.trieFree[:n-1]
		t.reset(v.costs, qd)
		return t
	}
	return newTrie(v.costs, qd)
}

func (v *Verifier) retireTries(tr dirTries) {
	v.trieFree = append(v.trieFree, tr.fwd, tr.bwd)
}

// verifySW scans the whole trajectory once per distinct ID, enumerating
// every match with the exhaustive threshold-aware DP.
func (v *Verifier) verifySW(id int32) {
	if v.swSeen[id] {
		return
	}
	v.swSeen[id] = true
	p := v.ds.Path(id)
	v.Stats.ColumnsAvailable += int64(len(p) - 1)
	for _, m := range wed.AllMatches(v.costs, v.q, p, v.tau) {
		key := traj.MatchKey{ID: id, S: int32(m.S), T: int32(m.T)}
		if old, ok := v.results[key]; !ok || m.WED < old {
			v.results[key] = m.WED
		}
	}
}

// Results returns the deduplicated matches sorted by (ID, S, T). The sort
// is load-bearing, not cosmetic: results accumulate in a map, so without
// it the order would differ run to run, and the shard-merge of the
// parallel pipeline relies on every per-shard result list arriving in
// this canonical order (see traj.SortMatches).
func (v *Verifier) Results() []traj.Match {
	for _, tr := range v.tries {
		v.Stats.TrieNodes += tr.fwd.numNodes() + tr.bwd.numNodes()
	}
	out := make([]traj.Match, 0, len(v.results))
	for k, d := range v.results {
		out = append(out, traj.Match{ID: k.ID, S: k.S, T: k.T, WED: d})
	}
	traj.SortMatches(out)
	v.Stats.Matches = len(out)
	return out
}

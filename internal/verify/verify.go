// Package verify implements the candidate verification of §5: local
// verification that runs the WED dynamic programming bidirectionally from
// the candidate position (Lemma 1), early termination on the column lower
// bound (Eq. 11), and bidirectional tries that cache DP columns across
// candidates sharing path prefixes (Algorithms 3–6). Cached columns are
// τ-banded: only the cell range that can still influence a result under
// the query threshold is computed and stored (see trie.go and
// wed.StepDPBanded); the CellsComputed/CellsAvailable counters measure
// the saving, and banding is bit-equal to the full-width DP.
//
// Three modes with identical result sets support the paper's ablations:
//
//	ModeBT    — local bidirectional DP + trie caching  (the paper's -BT)
//	ModeLocal — local bidirectional DP, no caching     (isolates §5.1)
//	ModeSW    — full-trajectory DP scan per candidate  (the paper's -SW)
package verify

import (
	"math"
	"sync"
	"sync/atomic"

	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// Mode selects the verification algorithm.
type Mode uint8

const (
	// ModeBT is local verification with bidirectional-trie caching.
	ModeBT Mode = iota
	// ModeLocal is local verification without caching.
	ModeLocal
	// ModeSW runs a full dynamic-programming scan over each distinct
	// candidate trajectory (threshold-aware), ignoring positions.
	ModeSW
)

func (m Mode) String() string {
	switch m {
	case ModeBT:
		return "BT"
	case ModeLocal:
		return "Local"
	case ModeSW:
		return "SW"
	default:
		return "Mode(?)"
	}
}

// Options tunes the verifier; the zero value is the paper's configuration.
type Options struct {
	Mode Mode
	// DisableEarlyTermination turns off the Eq. 11 lower-bound cut
	// (ablation for Table 5's UPR).
	DisableEarlyTermination bool
	// DisableBanding makes the tries compute and store full-width DP
	// columns instead of τ-banded ones — the pre-banding behavior, kept
	// as an ablation and as the baseline of the banded-equivalence
	// tests. Results are identical either way; only CellsComputed and
	// the arena sizes differ.
	DisableBanding bool
}

// Stats instruments a verification run with the quantities of Table 5.
type Stats struct {
	// Candidates is the number of (id, j, iq) triples verified.
	Candidates int
	// ColumnsAvailable is the total DP-column count a full SW scan of
	// every candidate would compute (the UPR denominator).
	ColumnsAvailable int64
	// ColumnsVisited counts columns that passed early termination —
	// walked in the trie, whether cached or computed (UPR numerator,
	// CMR denominator).
	ColumnsVisited int64
	// StepDPCalls counts columns actually computed by StepDP (CMR
	// numerator).
	StepDPCalls int64
	// CellsComputed counts DP-cell recurrence evaluations inside those
	// StepDP calls; CellsAvailable is what full-width columns would have
	// cost (StepDPCalls × (|Q^d|+1)). Their ratio is the cell-level
	// band-pruning rate — the Table-5-style metric of the τ-banded
	// verification (1.0 when banding is disabled).
	CellsComputed  int64
	CellsAvailable int64
	// TrieNodes is the total number of cached DP columns across the
	// bidirectional tries at the end of the query (memory metric of
	// §5.2; equals StepDPCalls plus one root per trie in BT mode).
	TrieNodes int
	// Matches is the number of distinct (id, s, t) results.
	Matches int
}

// Add accumulates o's counters into s — the shard-merge of the parallel
// query pipeline. Keeping it next to the struct means a future counter
// cannot be summed on one path and dropped on the other.
func (s *Stats) Add(o Stats) {
	s.Candidates += o.Candidates
	s.ColumnsAvailable += o.ColumnsAvailable
	s.ColumnsVisited += o.ColumnsVisited
	s.StepDPCalls += o.StepDPCalls
	s.CellsComputed += o.CellsComputed
	s.CellsAvailable += o.CellsAvailable
	s.TrieNodes += o.TrieNodes
	s.Matches += o.Matches
}

// UPR returns the unpruned position rate (§6.4).
func (s Stats) UPR() float64 { return ratio(s.ColumnsVisited, s.ColumnsAvailable) }

// CMR returns the cache miss rate (§6.4).
func (s Stats) CMR() float64 { return ratio(s.StepDPCalls, s.ColumnsVisited) }

// TUR returns the total unpruned rate UPR × CMR.
func (s Stats) TUR() float64 { return s.UPR() * s.CMR() }

// BandRatio returns CellsComputed / CellsAvailable: the fraction of DP
// cells the τ-banded columns actually evaluated (1.0 = no cell pruning).
func (s Stats) BandRatio() float64 { return ratio(s.CellsComputed, s.CellsAvailable) }

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Candidate mirrors filter.Candidate without importing it (avoiding an
// internal dependency cycle in callers that adapt other filters).
type Candidate struct {
	ID  int32
	Pos int32
	IQ  int32
}

// Verifier verifies the candidates of one query: create (or Get from the
// package pool) per query, feed candidates, then call Results. Reset makes
// it reusable across queries with its scratch state — DP column arenas,
// trie nodes, match buffers — retained, so a steady-state query stream
// allocates near-zero in the verify phase.
//
// Matches accumulate per trajectory: candidates should arrive grouped by
// trajectory ID (filter.GroupByTrajectory order), letting each
// trajectory's raw matches be sorted and min-merged in one flush instead
// of hashing a map key per (start, end) pair in the enumeration hot loop.
// Ungrouped input stays correct — Results does a final adjacent merge
// over the canonical sort — it just buffers and merges less efficiently.
type Verifier struct {
	costs wed.Costs
	ds    *traj.Dataset
	q     []traj.Symbol
	tau   float64
	opts  Options

	// bandTau is the trie column band threshold: v.tau normally, +Inf
	// under Options.DisableBanding. Cells ≥ bandTau can never reach a
	// result because every per-candidate τ′ is ≤ tau.
	bandTau float64

	// qrev is q reversed, computed once per Reset: the backward trie of
	// position iq runs over reversed(q[:iq]) == qrev[len(q)-iq:], so no
	// per-trie reversal allocation is needed.
	qrev []traj.Symbol

	// Per-iq bidirectional tries (lazily created: only candidate iqs
	// get tries, which matches Algorithm 3's "for (q, iq) ∈ Q'").
	tries map[int32]dirTries

	// trieFree holds retired tries whose arenas are reused by the next
	// trie this verifier needs (ModeLocal retires a pair per candidate,
	// Reset retires every trie of the previous query).
	trieFree []*trie

	// Grouped accumulation state: chunk buffers the raw (possibly
	// duplicated) matches of curID; flush sorts it by (S, T) and
	// min-merges into out. By Lemma 1 the minimum of the three-way
	// decomposition over all candidates covering a match equals
	// wed(P[s..t], Q), so the min-merge recovers the exact WED.
	curID int32
	chunk []traj.Match
	out   []traj.Match

	// swSeen tracks distinct trajectory IDs already scanned in ModeSW.
	swSeen map[int32]bool

	// Scratch buffers. efSuf[k] = min(ef[k:]) lets the match-enumeration
	// loop skip every dominated E^f suffix in O(1).
	eb, ef, efSuf []float64

	Stats Stats
}

type dirTries struct {
	fwd, bwd *trie
}

// New creates a verifier for query q under threshold tau.
func New(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64, opts Options) *Verifier {
	v := &Verifier{}
	v.Reset(costs, ds, q, tau, opts)
	return v
}

// pool recycles verifiers across queries; Get/Put are the entry points.
// poolGets/poolNews instrument it: every Get bumps poolGets, and a Get
// that found the pool empty (a fresh allocation — GC pressure the pool
// failed to absorb) bumps poolNews. Their ratio is the steady-state
// reuse rate the /metrics verifier_pool gauges report.
var (
	pool               = sync.Pool{New: func() any { poolNews.Add(1); return new(Verifier) }}
	poolGets, poolNews atomic.Int64
)

// PoolStats returns the cumulative verifier-pool counters: gets is the
// total number of Get calls, news how many of those had to allocate a
// fresh Verifier because the pool was empty. gets − news is the number
// of reuses; news/gets trending up under steady load means the pool is
// being drained (e.g. GC cycles) faster than Put refills it.
func PoolStats() (gets, news int64) {
	return poolGets.Load(), poolNews.Load()
}

// Get returns a pooled verifier reset for the given query. Pair with Put
// once Results has been read; the verifier must not be used after Put.
//
//subtrajlint:pool-transfer
func Get(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64, opts Options) *Verifier {
	poolGets.Add(1)
	v := pool.Get().(*Verifier)
	v.Reset(costs, ds, q, tau, opts)
	return v
}

// Pool-bloat caps: one huge query (long trajectories, fat τ) must not pin
// its worst-case scratch in the pool forever. Put drops any piece whose
// retained capacity exceeds its cap; the next query simply reallocates at
// its own (typically far smaller) natural size. The caps are safety
// valves sized an order of magnitude above the steady state of the bulk
// benchmark workload — a cap that binds on every Put would turn the pool
// into a per-query reallocation treadmill.
const (
	// maxRetainedTries bounds the trie free list (a pair per ModeLocal
	// candidate can pile up arbitrarily many).
	maxRetainedTries = 64
	// maxRetainedArena bounds one trie's combined arena footprint
	// (columns + nodes + column minima), in float64-sized units
	// (512 KiB per trie).
	maxRetainedArena = 64 << 10
	// maxRetainedMatches bounds the chunk/out match buffers (~1.5 MiB).
	maxRetainedMatches = 64 << 10
	// maxRetainedSeen bounds the ModeSW dedup map (maps never shrink
	// their buckets; past the cap it is dropped wholesale).
	maxRetainedSeen = 32 << 10
	// maxRetainedCols bounds the E^b/E^f/suffix-min scratch, whose
	// length tracks the longest early-termination walk.
	maxRetainedCols = 32 << 10
)

// Put returns v to the package pool. It drops every reference into the
// finished query — dataset, cost model, and the query slices the trie Q^d
// views alias — so pooling never extends their lifetime, keeps the
// scratch arenas for the next Get, and caps each retained piece so an
// outlier query cannot pin its peak footprint in the pool.
func Put(v *Verifier) {
	v.costs, v.ds, v.q = nil, nil, nil
	// subtrajlint:unordered-ok retired tries are fully reset before
	// reuse, so free-list order cannot reach any computed value.
	for iq, tr := range v.tries {
		v.trieFree = append(v.trieFree, tr.fwd, tr.bwd)
		delete(v.tries, iq)
	}
	kept := v.trieFree[:0]
	for _, t := range v.trieFree {
		t.qd = nil // aliases the caller's query; reset re-points it
		if len(kept) < maxRetainedTries && t.arenaCap() <= maxRetainedArena {
			kept = append(kept, t)
		}
	}
	clear(kept[len(kept):len(v.trieFree)]) // let dropped tries be collected
	v.trieFree = kept
	if cap(v.chunk) > maxRetainedMatches {
		v.chunk = nil
	}
	if cap(v.out) > maxRetainedMatches {
		v.out = nil
	}
	if len(v.swSeen) > maxRetainedSeen {
		v.swSeen = nil
	}
	if cap(v.eb) > maxRetainedCols {
		v.eb = nil
	}
	if cap(v.ef) > maxRetainedCols {
		v.ef = nil
	}
	if cap(v.efSuf) > maxRetainedCols {
		v.efSuf = nil
	}
	pool.Put(v)
}

// Reset prepares v for a new query, retaining allocated scratch state:
// trie arenas move to the free list, maps are cleared in place, and the
// DP scratch buffers keep their capacity.
func (v *Verifier) Reset(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64, opts Options) {
	v.costs, v.ds, v.q, v.tau, v.opts = costs, ds, q, tau, opts
	v.bandTau = tau
	if opts.DisableBanding {
		v.bandTau = math.Inf(1)
	}
	v.qrev = append(v.qrev[:0], q...)
	for i, j := 0, len(v.qrev)-1; i < j; i, j = i+1, j-1 {
		v.qrev[i], v.qrev[j] = v.qrev[j], v.qrev[i]
	}
	if v.tries == nil {
		v.tries = make(map[int32]dirTries)
	} else {
		// subtrajlint:unordered-ok retired tries are fully reset before
		// reuse, so free-list order cannot reach any computed value.
		for iq, tr := range v.tries {
			v.trieFree = append(v.trieFree, tr.fwd, tr.bwd)
			delete(v.tries, iq)
		}
	}
	v.curID = -1
	v.chunk = v.chunk[:0]
	v.out = v.out[:0]
	if v.swSeen == nil {
		v.swSeen = make(map[int32]bool)
	} else {
		clear(v.swSeen)
	}
	v.Stats = Stats{}
}

// Verify processes one candidate (Algorithm 4).
func (v *Verifier) Verify(c Candidate) { v.VerifyAt(c, v.tau) }

// VerifyAt is Verify under a per-candidate effective threshold tauEff ≤
// the query τ (larger values are clamped). Matches are enumerated and
// pruned against tauEff while the trie columns stay banded — and shared
// across candidates — at the query τ; since banded cells < τ hold exact
// values and cells ≥ τ are only read through comparisons against
// thresholds ≤ τ, every tauEff ≤ τ sees exact results. The incremental
// top-k driver uses this to tighten the search radius mid-round as
// trajectories resolve, without rebuilding trie state.
func (v *Verifier) VerifyAt(c Candidate, tauEff float64) {
	if tauEff > v.tau {
		tauEff = v.tau
	}
	v.Stats.Candidates++
	if v.opts.Mode == ModeSW {
		v.verifySW(c.ID, tauEff)
		return
	}
	if c.ID != v.curID {
		v.flush()
		v.curID = c.ID
	}
	p := v.ds.Path(c.ID)
	j := int(c.Pos)
	b := p[j]
	qSym := v.q[c.IQ]
	subCost := v.costs.Sub(qSym, b)
	tauPrime := tauEff - subCost
	v.Stats.ColumnsAvailable += int64(len(p) - 1)
	if tauPrime <= 0 {
		return // even a perfect surrounding alignment cannot reach < τ
	}

	var tr dirTries
	if v.opts.Mode == ModeBT {
		tr = v.trieFor(c.IQ)
	} else {
		tr = v.freshTries(c.IQ) // no sharing across candidates
		defer v.retireTries(tr) // ...so the arenas recycle per candidate
	}

	// E^b over the reversed prefix P[j-1], ..., P[0] vs reversed Q[:iq];
	// E^f over P[j+1], ..., P[|P|-1] vs Q[iq+1:].
	v.eb = v.allPrefixWED(tr.bwd, p, j, -1, tauPrime, v.eb[:0])
	v.ef = v.allPrefixWED(tr.fwd, p, j, +1, tauPrime, v.ef[:0])

	// Suffix minima of E^f: efSuf[k] = min(ef[k:]). efSuf[0] replaces
	// the per-candidate minOf scan, and inside the enumeration loop
	// efSuf[kf] ≥ rem proves every remaining suffix is dominated, so the
	// inner loop breaks in O(1) instead of scanning to the end.
	if cap(v.efSuf) < len(v.ef) {
		v.efSuf = make([]float64, len(v.ef))
	} else {
		v.efSuf = v.efSuf[:len(v.ef)]
	}
	for k := len(v.ef) - 1; k >= 0; k-- {
		m := v.ef[k]
		if k+1 < len(v.ef) && v.efSuf[k+1] < m {
			m = v.efSuf[k+1]
		}
		v.efSuf[k] = m
	}

	minEf := v.efSuf[0]
	for kb, ebv := range v.eb {
		if ebv+minEf >= tauPrime {
			continue
		}
		rem := tauPrime - ebv
		for kf, efv := range v.ef {
			if v.efSuf[kf] >= rem {
				break // every E^f from kf on is ≥ rem
			}
			if efv >= rem {
				continue
			}
			v.chunk = append(v.chunk, traj.Match{
				ID: c.ID, S: int32(j - kb), T: int32(j + kf),
				WED: subCost + ebv + efv,
			})
		}
	}
}

// TakeBest reduces the matches buffered since the last flush boundary —
// with trajectory-grouped input, the current trajectory's raw matches —
// to the single best by (WED, span length, S, T), clears the buffer, and
// reports whether any match existed. Raw duplicates of one (S, T) span
// need no min-merge first: the duplicate holding its span's minimum WED
// represents the span in this order, so the global raw minimum equals
// the merged minimum. Drivers that only need per-trajectory bests (the
// top-k driver) call this after feeding each trajectory's candidates
// instead of accumulating every match for Results.
func (v *Verifier) TakeBest() (traj.Match, bool) {
	if len(v.chunk) == 0 {
		return traj.Match{}, false
	}
	best := v.chunk[0]
	for _, m := range v.chunk[1:] {
		if m.WED < best.WED ||
			(m.WED == best.WED && (m.T-m.S < best.T-best.S ||
				(m.T-m.S == best.T-best.S && (m.S < best.S || (m.S == best.S && m.T < best.T))))) {
			best = m
		}
	}
	v.chunk = v.chunk[:0]
	return best, true
}

// SnapshotStats returns the verifier's counters with the trie-node total
// filled in — the same end-of-query accounting Results performs — without
// ending the query. Drivers that consume per-trajectory bests via
// TakeBest and never call Results read their per-round stats here.
func (v *Verifier) SnapshotStats() Stats {
	s := v.Stats
	// subtrajlint:unordered-ok order-independent sum.
	for _, tr := range v.tries {
		s.TrieNodes += tr.fwd.numNodes() + tr.bwd.numNodes()
	}
	return s
}

// flush sorts the current trajectory's raw matches by (S, T) and
// min-merges duplicates into the output buffer.
func (v *Verifier) flush() {
	if len(v.chunk) == 0 {
		return
	}
	traj.SortMatches(v.chunk) // single ID: effectively (S, T) order
	v.out = appendMinMerged(v.out, v.chunk)
	v.chunk = v.chunk[:0]
}

// appendMinMerged appends the (ID, S, T)-sorted src onto dst, folding
// runs of equal keys — including one straddling the dst/src boundary —
// to their minimum WED (the Lemma 1 combination rule). It is the one
// place the dedup semantics live, shared by the per-trajectory flush and
// Results' final compaction. Aliasing dst = src[:0] compacts src in
// place: the write index always trails the read index and the backing
// array never grows.
func appendMinMerged(dst, src []traj.Match) []traj.Match {
	for _, m := range src {
		if n := len(dst); n > 0 && dst[n-1].Key() == m.Key() {
			if m.WED < dst[n-1].WED {
				dst[n-1].WED = m.WED
			}
			continue
		}
		dst = append(dst, m)
	}
	return dst
}

// allPrefixWED walks/extends the trie along P in the given direction from
// position j (exclusive) and returns the prefix-WED array E^d, E^d[k] =
// wed(P^d[1..k], Q^d), for k = 0..K where K is the early-termination depth
// (Algorithm 5). The returned slice aliases dst's storage. Entries may be
// +Inf when cell |Q^d| fell outside a column's τ-band — such a prefix WED
// is ≥ τ ≥ τ′ and can never join a result, exactly as its true value.
func (v *Verifier) allPrefixWED(t *trie, p []traj.Symbol, j, dir int, tauPrime float64, dst []float64) []float64 {
	node := int32(0)                // root
	dst = append(dst, t.tail(node)) // E_0 = wed(ε, Q^d)
	for k := 1; ; k++ {
		i := j + dir*k
		if i < 0 || i >= len(p) {
			break
		}
		child, computed := t.child(node, p[i], v.costs, &v.Stats)
		if computed {
			v.Stats.StepDPCalls++
		}
		v.Stats.ColumnsVisited++
		if !v.opts.DisableEarlyTermination && t.min(child) >= tauPrime {
			break
		}
		dst = append(dst, t.tail(child))
		node = child
	}
	return dst
}

// trieFor returns (building on first use) the bidirectional tries of iq.
func (v *Verifier) trieFor(iq int32) dirTries {
	if tr, ok := v.tries[iq]; ok {
		return tr
	}
	tr := v.freshTries(iq)
	v.tries[iq] = tr
	return tr
}

func (v *Verifier) freshTries(iq int32) dirTries {
	qf := v.q[iq+1:]
	qb := v.qrev[len(v.q)-int(iq):] // reversed(q[:iq]), pre-materialised by Reset
	return dirTries{
		fwd: v.takeTrie(qf),
		bwd: v.takeTrie(qb),
	}
}

// takeTrie recycles a retired trie's arenas when available.
func (v *Verifier) takeTrie(qd []traj.Symbol) *trie {
	if n := len(v.trieFree); n > 0 {
		t := v.trieFree[n-1]
		v.trieFree = v.trieFree[:n-1]
		t.reset(v.costs, qd, v.bandTau)
		return t
	}
	return newTrie(v.costs, qd, v.bandTau)
}

func (v *Verifier) retireTries(tr dirTries) {
	v.trieFree = append(v.trieFree, tr.fwd, tr.bwd)
}

// verifySW scans the whole trajectory once per distinct ID, enumerating
// every match with the exhaustive threshold-aware DP under tauEff.
func (v *Verifier) verifySW(id int32, tauEff float64) {
	if v.swSeen[id] {
		return
	}
	v.swSeen[id] = true
	if id != v.curID {
		v.flush()
		v.curID = id
	}
	p := v.ds.Path(id)
	v.Stats.ColumnsAvailable += int64(len(p) - 1)
	for _, m := range wed.AllMatches(v.costs, v.q, p, tauEff) {
		v.chunk = append(v.chunk, traj.Match{ID: id, S: int32(m.S), T: int32(m.T), WED: m.WED})
	}
}

// Results returns the deduplicated matches sorted by (ID, S, T). The sort
// is load-bearing, not cosmetic: per-trajectory match runs accumulate in
// feed order, so without it the order would follow the candidate stream,
// and the shard-merge of the parallel pipeline relies on every per-shard
// result list arriving in this canonical order (see traj.SortMatches).
// The adjacent merge after the sort folds duplicate (ID, S, T) runs from
// callers that interleaved trajectories.
func (v *Verifier) Results() []traj.Match {
	v.flush()
	// subtrajlint:unordered-ok order-independent sum.
	for _, tr := range v.tries {
		v.Stats.TrieNodes += tr.fwd.numNodes() + tr.bwd.numNodes()
	}
	traj.SortMatches(v.out)
	v.out = appendMinMerged(v.out[:0], v.out)
	out := make([]traj.Match, len(v.out))
	copy(out, v.out)
	v.Stats.Matches = len(out)
	return out
}

package verify

import (
	"math"
	"unsafe"

	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// trie caches DP columns for one direction of one τ-subsequence position
// (§5.2). Each node corresponds to a path prefix P^d[1..k]; its cached
// column holds wed(P^d[1..k], Q^d[1..j]) for j = 0..|Q^d|. Children are a
// first-child/next-sibling list — road-network branching is tiny
// ("typically, three"), so linear sibling scans beat maps; nodes and
// columns live in flat arenas to avoid per-node allocations.
//
// Columns are stored τ-banded: only the cells of the active band
// [lo, hi) — the smallest interval containing every cell < bandTau — are
// materialised; everything outside is semantically +Inf. Cells < bandTau
// hold the exact full-width DP value (see wed.StepDPBanded), so every
// quantity the verifier reads through tail/min — all compared against
// thresholds τ′ ≤ bandTau — is indistinguishable from the full-width
// trie, while StepDP work and arena bytes shrink by the band ratio.
// bandTau = +Inf stores full columns (the Options.DisableBanding
// ablation).
type trie struct {
	qd      []traj.Symbol
	qdLen   int
	bandTau float64
	nodes   []trieNode
	// cols is the column arena: node i's band occupies
	// cols[nodes[i].col : nodes[i].col + (hi-lo)].
	cols []float64
	// colMin[i] is the minimum of node i's column — the early-
	// termination lower bound LB of Eq. 11 (+Inf for an empty band).
	colMin []float64
	// step is the full-width scratch column StepDPBanded writes into
	// before the band is copied onto the arena.
	step []float64
}

type trieNode struct {
	sym traj.Symbol
	col int32 // offset into cols
	// [lo, hi) is the band in column-index space (0..qdLen+1); lo == hi
	// encodes an all-≥-τ column with no stored cells.
	lo, hi      int32
	firstChild  int32 // node index, -1 if leaf
	nextSibling int32 // node index, -1 at end of sibling list
}

const nilNode = int32(-1)

// newTrie builds a trie whose root column is wed(ε, Q^d[1..j]) — the
// insertion prefix sums, banded to the cells < bandTau.
func newTrie(costs wed.Costs, qd []traj.Symbol, bandTau float64) *trie {
	t := &trie{}
	t.reset(costs, qd, bandTau)
	return t
}

// reset re-initialises the trie for a new Q^d, truncating the node and
// column arenas in place so their capacity is reused across queries (the
// pooling the resettable Verifier relies on).
func (t *trie) reset(costs wed.Costs, qd []traj.Symbol, bandTau float64) {
	t.qd, t.qdLen, t.bandTau = qd, len(qd), bandTau
	// Root band: the prefix sums are nondecreasing (ins ≥ 0), so the
	// band is [0, hi) up to the first prefix ≥ τ.
	t.cols = t.cols[:0]
	sum := 0.0
	hi := 0
	for j := 0; j <= t.qdLen && sum < bandTau; j++ {
		t.cols = append(t.cols, sum)
		hi = j + 1
		if j < t.qdLen {
			sum += costs.Ins(qd[j])
		}
	}
	rootMin := math.Inf(1)
	if hi > 0 {
		rootMin = t.cols[0] // nondecreasing: the minimum is cell 0
	}
	t.nodes = append(t.nodes[:0], trieNode{sym: -1, col: 0, lo: 0, hi: int32(hi), firstChild: nilNode, nextSibling: nilNode})
	t.colMin = append(t.colMin[:0], rootMin)
	if cap(t.step) < t.qdLen+1 {
		t.step = make([]float64, t.qdLen+1)
	} else {
		t.step = t.step[:t.qdLen+1]
	}
}

// child returns the child of node ni labelled sym, creating (and computing
// its banded DP column via StepDPBanded, Algorithm 6) if absent. computed
// reports whether a StepDP call happened — a cache miss in the paper's CMR
// metric; st accumulates the cell-level band counters.
func (t *trie) child(ni int32, sym traj.Symbol, costs wed.Costs, st *Stats) (ci int32, computed bool) {
	for c := t.nodes[ni].firstChild; c != nilNode; c = t.nodes[c].nextSibling {
		if t.nodes[c].sym == sym {
			return c, false
		}
	}
	// Cache miss: derive the child band from the parent's and append the
	// banded column to the arena.
	pn := t.nodes[ni]
	parent := t.cols[pn.col : pn.col+(pn.hi-pn.lo)]
	lo, hi, cells := wed.StepDPBanded(costs, t.qd, sym, parent, int(pn.lo), int(pn.hi), t.bandTau, t.step)
	st.CellsComputed += int64(cells)
	st.CellsAvailable += int64(t.qdLen + 1)
	off := int32(len(t.cols))
	t.cols = append(t.cols, t.step[lo:hi]...)
	mn := math.Inf(1)
	if hi > lo {
		mn = wed.Min(t.step[lo:hi])
	}
	t.colMin = append(t.colMin, mn)
	ci = int32(len(t.nodes))
	t.nodes = append(t.nodes, trieNode{
		sym:         sym,
		col:         off,
		lo:          int32(lo),
		hi:          int32(hi),
		firstChild:  nilNode,
		nextSibling: t.nodes[ni].firstChild,
	})
	t.nodes[ni].firstChild = ci
	return ci, true
}

// tail returns E^d_k for node ni: the last cell of its column,
// wed(P^d[1..k], Q^d) — +Inf when cell |Q^d| fell outside the band (its
// true value is ≥ τ and can never join a result).
func (t *trie) tail(ni int32) float64 {
	nd := t.nodes[ni]
	if nd.lo < nd.hi && nd.hi == int32(t.qdLen)+1 {
		return t.cols[nd.col+(nd.hi-nd.lo)-1]
	}
	return math.Inf(1)
}

// min returns the column minimum of node ni.
func (t *trie) min(ni int32) float64 { return t.colMin[ni] }

// numNodes returns the number of cached columns (trie size metric).
func (t *trie) numNodes() int { return len(t.nodes) }

// arenaCap reports the trie's retained arena footprint in float64-sized
// units — the input to the pool-bloat cap in Put. Nodes and colMin count
// too: with narrow or empty bands a node costs more than its cells, so a
// cols-only measure would let the node arena pin memory unchecked.
func (t *trie) arenaCap() int {
	const nodeCells = (int(unsafe.Sizeof(trieNode{})) + 7) / 8
	return cap(t.cols) + cap(t.colMin) + cap(t.step) + cap(t.nodes)*nodeCells
}

package verify

import (
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// trie caches DP columns for one direction of one τ-subsequence position
// (§5.2). Each node corresponds to a path prefix P^d[1..k]; its cached
// column A holds wed(P^d[1..k], Q^d[1..j]) for j = 0..|Q^d|. Children are a
// first-child/next-sibling list — road-network branching is tiny
// ("typically, three"), so linear sibling scans beat maps; nodes and
// columns live in flat arenas to avoid per-node allocations.
type trie struct {
	qd    []traj.Symbol
	qdLen int
	nodes []trieNode
	// cols is the column arena: node i's column occupies
	// cols[nodes[i].col : nodes[i].col+qdLen+1].
	cols []float64
	// colMin[i] is the minimum of node i's column — the early-
	// termination lower bound LB of Eq. 11.
	colMin []float64
}

type trieNode struct {
	sym         traj.Symbol
	col         int32 // offset into cols
	firstChild  int32 // node index, -1 if leaf
	nextSibling int32 // node index, -1 at end of sibling list
}

const nilNode = int32(-1)

// newTrie builds a trie whose root column is wed(ε, Q^d[1..j]) — the
// insertion prefix sums.
func newTrie(costs wed.Costs, qd []traj.Symbol) *trie {
	t := &trie{}
	t.reset(costs, qd)
	return t
}

// reset re-initialises the trie for a new Q^d, truncating the node and
// column arenas in place so their capacity is reused across queries (the
// pooling the resettable Verifier relies on).
func (t *trie) reset(costs wed.Costs, qd []traj.Symbol) {
	t.qd, t.qdLen = qd, len(qd)
	t.nodes = append(t.nodes[:0], trieNode{sym: -1, col: 0, firstChild: nilNode, nextSibling: nilNode})
	t.cols = append(t.cols[:0], 0)
	for j, s := range qd {
		t.cols = append(t.cols, t.cols[j]+costs.Ins(s))
	}
	t.colMin = append(t.colMin[:0], 0) // root minimum is col[0] = 0
}

// child returns the child of node ni labelled sym, creating (and computing
// its DP column via StepDP, Algorithm 6) if absent. computed reports
// whether a StepDP call happened — a cache miss in the paper's CMR metric.
func (t *trie) child(ni int32, sym traj.Symbol, costs wed.Costs) (ci int32, computed bool) {
	for c := t.nodes[ni].firstChild; c != nilNode; c = t.nodes[c].nextSibling {
		if t.nodes[c].sym == sym {
			return c, false
		}
	}
	// Cache miss: allocate the node and compute its column from the
	// parent's.
	parentCol := t.cols[t.nodes[ni].col : t.nodes[ni].col+int32(t.qdLen)+1]
	off := int32(len(t.cols))
	t.cols = append(t.cols, make([]float64, t.qdLen+1)...)
	newCol := t.cols[off : off+int32(t.qdLen)+1]
	// StepDP writes into newCol; parentCol and newCol share the arena
	// but never overlap (newCol is freshly appended).
	wed.StepDP(costs, t.qd, sym, parentCol, newCol)
	t.colMin = append(t.colMin, wed.Min(newCol))
	ci = int32(len(t.nodes))
	t.nodes = append(t.nodes, trieNode{
		sym:         sym,
		col:         off,
		firstChild:  nilNode,
		nextSibling: t.nodes[ni].firstChild,
	})
	t.nodes[ni].firstChild = ci
	return ci, true
}

// tail returns E^d_k for node ni: the last entry of its column,
// wed(P^d[1..k], Q^d).
func (t *trie) tail(ni int32) float64 {
	return t.cols[t.nodes[ni].col+int32(t.qdLen)]
}

// min returns the column minimum of node ni.
func (t *trie) min(ni int32) float64 { return t.colMin[ni] }

// numNodes returns the number of cached columns (trie size metric).
func (t *trie) numNodes() int { return len(t.nodes) }

package verify

import (
	"testing"

	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// runOnce verifies every position of every trajectory against q (every
// (id, j) as a candidate with iq cycling over q), returning the results.
func runOnce(v *Verifier, ds *traj.Dataset, q []traj.Symbol) []traj.Match {
	for id := range ds.Trajs {
		for j := range ds.Trajs[id].Path {
			v.Verify(Candidate{ID: int32(id), Pos: int32(j), IQ: int32(j % len(q))})
		}
	}
	return v.Results()
}

// TestVerifierResetReusesCleanly runs the same query through a fresh
// verifier and through one recycled across unrelated queries; the pooled
// run must be indistinguishable, including stats.
func TestVerifierResetReusesCleanly(t *testing.T) {
	env := testutil.NewEnv(31, 20, 16)
	for _, m := range env.Models()[:3] {
		q1 := env.Query(m, 6)
		q2 := env.Query(m, 9)
		tau := wed.SumIns(m.Costs, q1) * 0.4

		for _, mode := range []Mode{ModeBT, ModeLocal, ModeSW} {
			opts := Options{Mode: mode}
			fresh := New(m.Costs, m.DS, q1, tau, opts)
			want := runOnce(fresh, m.DS, q1)
			wantStats := fresh.Stats

			// Pollute a verifier with a different query, then Reset into
			// the query under test.
			v := New(m.Costs, m.DS, q2, wed.SumIns(m.Costs, q2)*0.5, opts)
			runOnce(v, m.DS, q2)
			v.Reset(m.Costs, m.DS, q1, tau, opts)
			got := runOnce(v, m.DS, q1)

			if len(got) != len(want) {
				t.Fatalf("%s/%s: reused verifier returned %d matches, fresh %d", m.Name, mode, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: match %d = %+v, want %+v", m.Name, mode, i, got[i], want[i])
				}
			}
			if v.Stats != wantStats {
				t.Fatalf("%s/%s: reused stats %+v != fresh %+v", m.Name, mode, v.Stats, wantStats)
			}
		}
	}
}

// TestVerifierPoolRoundTrip exercises Get/Put across queries.
func TestVerifierPoolRoundTrip(t *testing.T) {
	env := testutil.NewEnv(32, 20, 16)
	m := env.Models()[0]
	q := env.Query(m, 6)
	tau := wed.SumIns(m.Costs, q) * 0.4
	want := runOnce(New(m.Costs, m.DS, q, tau, Options{}), m.DS, q)
	for i := 0; i < 5; i++ {
		v := Get(m.Costs, m.DS, q, tau, Options{})
		got := runOnce(v, m.DS, q)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d matches, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("round %d: match %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
		Put(v)
	}
}

package verify_test

import (
	"math"
	"testing"

	"subtraj/internal/baselines"
	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
)

// run verifies all plan candidates under the given options.
func run(m testutil.Model, inv *index.Inverted, q []traj.Symbol, tau float64, opts verify.Options) (*verify.Verifier, []traj.Match) {
	plan, err := filter.BuildPlan(m.Costs, inv, q, tau)
	if err != nil {
		panic(err)
	}
	v := verify.New(m.Costs, m.DS, q, tau, opts)
	for _, c := range plan.Candidates(inv, nil) {
		v.Verify(verify.Candidate{ID: c.ID, Pos: c.Pos, IQ: c.IQ})
	}
	return v, v.Results()
}

func feasibleTau(m testutil.Model, q []traj.Symbol, ratio float64) float64 {
	var c float64
	for _, sym := range q {
		c += m.Costs.FilterCost(sym)
	}
	return ratio * c
}

func TestTrieCachingReducesStepDPCalls(t *testing.T) {
	// The whole point of §5.2: with many candidates sharing prefixes,
	// BT must call StepDP strictly less often than uncached local
	// verification, while producing identical results.
	env := testutil.NewEnv(21, 60, 25)
	for _, m := range env.Models() {
		inv := index.Build(m.DS)
		q := env.Query(m, 8)
		tau := feasibleTau(m, q, 0.4)
		bt, btRes := run(m, inv, q, tau, verify.Options{Mode: verify.ModeBT})
		local, localRes := run(m, inv, q, tau, verify.Options{Mode: verify.ModeLocal})
		if bt.Stats.StepDPCalls > local.Stats.StepDPCalls {
			t.Fatalf("%s: BT StepDP calls %d > uncached %d", m.Name, bt.Stats.StepDPCalls, local.Stats.StepDPCalls)
		}
		if len(btRes) != len(localRes) {
			t.Fatalf("%s: result sets differ: %d vs %d", m.Name, len(btRes), len(localRes))
		}
		for i := range btRes {
			if btRes[i].Key() != localRes[i].Key() {
				t.Fatalf("%s: match %d differs", m.Name, i)
			}
		}
		// Visited columns must agree: caching changes computation, not
		// traversal.
		if bt.Stats.ColumnsVisited != local.Stats.ColumnsVisited {
			t.Fatalf("%s: visited columns differ: %d vs %d", m.Name, bt.Stats.ColumnsVisited, local.Stats.ColumnsVisited)
		}
	}
}

func TestEarlyTerminationReducesWork(t *testing.T) {
	env := testutil.NewEnv(22, 40, 25)
	m := env.Models()[1] // EDR
	inv := index.Build(m.DS)
	q := env.Query(m, 10)
	tau := feasibleTau(m, q, 0.15)
	with, withRes := run(m, inv, q, tau, verify.Options{})
	without, withoutRes := run(m, inv, q, tau, verify.Options{DisableEarlyTermination: true})
	if with.Stats.ColumnsVisited >= without.Stats.ColumnsVisited {
		t.Fatalf("early termination saved nothing: %d vs %d", with.Stats.ColumnsVisited, without.Stats.ColumnsVisited)
	}
	if len(withRes) != len(withoutRes) {
		t.Fatalf("early termination changed results: %d vs %d", len(withRes), len(withoutRes))
	}
}

func TestStatsRatesAreRates(t *testing.T) {
	env := testutil.NewEnv(23, 40, 25)
	m := env.Models()[0]
	inv := index.Build(m.DS)
	q := env.Query(m, 8)
	tau := feasibleTau(m, q, 0.3)
	v, _ := run(m, inv, q, tau, verify.Options{})
	s := v.Stats
	for name, r := range map[string]float64{"UPR": s.UPR(), "CMR": s.CMR(), "TUR": s.TUR()} {
		if r < 0 || r > 1 || math.IsNaN(r) {
			t.Fatalf("%s out of range: %v", name, r)
		}
	}
	if s.TUR() != s.UPR()*s.CMR() {
		t.Fatalf("TUR != UPR×CMR")
	}
	if s.Candidates == 0 {
		t.Fatal("no candidates verified")
	}
	// In BT mode every cached column is either a root (two per distinct
	// iq in Q') or the product of exactly one StepDP call.
	roots := int64(s.TrieNodes) - s.StepDPCalls
	if roots <= 0 || roots%2 != 0 || roots > 2*int64(len(q)) {
		t.Fatalf("trie root accounting broken: nodes=%d stepDP=%d |Q|=%d", s.TrieNodes, s.StepDPCalls, len(q))
	}
}

func TestVerifierDeduplicatesAcrossCandidates(t *testing.T) {
	// A match covered by several candidates must appear exactly once,
	// with the minimal (exact) WED.
	env := testutil.NewEnv(24, 40, 25)
	for _, m := range env.Models() {
		inv := index.Build(m.DS)
		q := env.Query(m, 6)
		tau := feasibleTau(m, q, 0.6)
		if wed.SumIns(m.Costs, q) <= tau {
			tau = wed.SumIns(m.Costs, q) * 0.9
		}
		_, res := run(m, inv, q, tau, verify.Options{})
		seen := map[traj.MatchKey]bool{}
		for _, r := range res {
			if seen[r.Key()] {
				t.Fatalf("%s: duplicate %+v", m.Name, r)
			}
			seen[r.Key()] = true
			p := m.DS.Path(r.ID)[r.S : r.T+1]
			exact := wed.Dist(m.Costs, p, q)
			if math.Abs(exact-r.WED) > 1e-9*(1+exact) {
				t.Fatalf("%s: WED %v != exact %v", m.Name, r.WED, exact)
			}
		}
	}
}

func TestVerifierSoundOnArbitraryCandidates(t *testing.T) {
	// Soundness must not depend on the filter: feeding duplicate and
	// arbitrary (even non-neighbour) candidates never creates a false
	// match, and feeding the FULL candidate grid (every position ×
	// every iq) recovers exactly the oracle result set — verification
	// alone is complete when given complete candidates.
	env := testutil.NewEnv(26, 12, 14)
	for _, m := range env.Models() {
		q := env.Query(m, 6)
		tau := feasibleTau(m, q, 0.5)
		if s := wed.SumIns(m.Costs, q); tau >= s {
			tau = 0.9 * s
		}
		want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
		wantSet := map[traj.MatchKey]float64{}
		for _, w := range want {
			wantSet[w.Key()] = w.WED
		}
		v := verify.New(m.Costs, m.DS, q, tau, verify.Options{})
		for id := range m.DS.Trajs {
			p := m.DS.Trajs[id].Path
			for pos := range p {
				for iq := range q {
					v.Verify(verify.Candidate{ID: int32(id), Pos: int32(pos), IQ: int32(iq)})
					if pos%3 == 0 {
						// Duplicate feeding must be harmless.
						v.Verify(verify.Candidate{ID: int32(id), Pos: int32(pos), IQ: int32(iq)})
					}
				}
			}
		}
		res := v.Results()
		if len(res) != len(want) {
			t.Fatalf("%s: full-grid verification found %d matches, oracle %d", m.Name, len(res), len(want))
		}
		for _, r := range res {
			w, ok := wantSet[r.Key()]
			if !ok {
				t.Fatalf("%s: false match %+v", m.Name, r)
			}
			if diff := r.WED - w; diff > 1e-9*(1+w) || diff < -1e-9*(1+w) {
				t.Fatalf("%s: wed %v != %v", m.Name, r.WED, w)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if verify.ModeBT.String() != "BT" || verify.ModeLocal.String() != "Local" || verify.ModeSW.String() != "SW" {
		t.Fatal("mode names")
	}
}

func TestSWModeCountsDistinctTrajectories(t *testing.T) {
	env := testutil.NewEnv(25, 30, 20)
	m := env.Models()[0]
	inv := index.Build(m.DS)
	q := env.Query(m, 6)
	tau := feasibleTau(m, q, 0.4)
	v, res := run(m, inv, q, tau, verify.Options{Mode: verify.ModeSW})
	// Results must agree with the oracle.
	want := baselines.PlainSW(m.Costs, m.DS, q, tau).Matches
	if len(res) != len(want) {
		// The filter prunes trajectories, but every match must survive.
		wantSet := map[traj.MatchKey]bool{}
		for _, w := range want {
			wantSet[w.Key()] = true
		}
		for _, r := range res {
			if !wantSet[r.Key()] {
				t.Fatalf("spurious %+v", r)
			}
		}
		t.Fatalf("SW mode results %d != oracle %d", len(res), len(want))
	}
	if v.Stats.Candidates == 0 {
		t.Fatal("no candidates")
	}
}

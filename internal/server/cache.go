package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"subtraj/internal/traj"
)

// resultCache is a generation-tagged LRU over query results. Keys encode
// the full query (kind, symbols, τ, mode parameters); values carry the
// engine generation they were computed at. A lookup whose stored
// generation differs from the engine's current one is treated as a miss
// and evicted — Append invalidates by bumping the generation, with no
// need to synchronously sweep the cache.
type resultCache struct {
	mu  sync.Mutex
	cap int                      // immutable after newResultCache
	ll  *list.List               // guarded by mu; front = most recently used
	m   map[string]*list.Element // guarded by mu

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

type cacheEntry struct {
	key     string
	gen     uint64
	matches []traj.Match
	count   int // for count-kind entries with no match payload
	// tau is the τ the computed response reported. For most kinds it is
	// the request's resolved absolute τ (already part of the key); for
	// top-k it is the driver's final *effective* threshold, which only
	// the original execution knows — cached hits must replay it.
	tau float64
}

// newResultCache creates an LRU holding at most capacity entries
// (capacity ≤ 0 disables caching: every lookup misses, every store is
// dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) enabled() bool { return c.cap > 0 }

// get returns the entry under key if present and computed at generation
// gen; otherwise it records a miss (and an invalidation if a stale entry
// had to be dropped).
func (c *resultCache) get(key string, gen uint64) (*cacheEntry, bool) {
	if !c.enabled() {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		c.ll.Remove(el)
		delete(c.m, key)
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return ent, true
}

// put stores an entry, evicting from the LRU tail past capacity.
func (c *resultCache) put(ent *cacheEntry) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[ent.key]; ok {
		el.Value = ent
		c.ll.MoveToFront(el)
		return
	}
	c.m[ent.key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.m, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey encodes one query deterministically. kind disambiguates
// endpoints ("search", "topk", ...); params carries the scalar knobs in a
// fixed order; q is the symbol string.
func cacheKey(kind string, q []traj.Symbol, params ...float64) string {
	var b strings.Builder
	b.Grow(len(kind) + 16*len(params) + 8*len(q))
	b.WriteString(kind)
	for _, p := range params {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
	}
	b.WriteByte(':')
	for i, s := range q {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(s), 10))
	}
	return b.String()
}

package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"subtraj/internal/traj"
	"subtraj/internal/wal"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// openDurableTest opens a durable engine over a freshly generated copy of
// the tiny workload — generating anew per call is exactly what a real
// restart does with its reproducible base dataset.
func openDurableTest(t testing.TB, dir string, opts DurableOptions) (*SafeEngine, *RecoveryInfo, *workload.Workload) {
	t.Helper()
	w := workload.Generate(workload.Tiny(7))
	safe, info, err := OpenDurable(dir, w.Data, wed.NewLev(), opts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return safe, info, w
}

// tinyBaseLen is the tiny workload's base trajectory count — the
// recovery tests compare recovered totals against it because OpenDurable
// mutates the dataset it is handed.
// closeDurable closes the engine's durability layer and fails the test on
// error: a WAL close that cannot flush means the assertions after a
// reopen would be checking an undefined on-disk state. ErrClosed is
// tolerated so a deferred safety-net close can follow an explicit,
// already-checked one.
func closeDurable(t testing.TB, s *SafeEngine) {
	t.Helper()
	if err := s.Durable().Close(); err != nil && !errors.Is(err, os.ErrClosed) {
		t.Fatal(err)
	}
}

func tinyBaseLen() int { return workload.Generate(workload.Tiny(7)).Data.Len() }

func appendPath(t testing.TB, safe *SafeEngine, syms ...traj.Symbol) int32 {
	t.Helper()
	id, err := safe.Append(traj.Trajectory{Path: syms})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return id
}

// TestDurableAppendSurvivesReopen: acknowledged appends come back after a
// close/reopen, and the recovered trajectories are searchable.
func TestDurableAppendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	safe, info, w := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if info.SnapshotRecords != 0 || info.ReplayedRecords != 0 {
		t.Fatalf("fresh dir reported recovery: %+v", info)
	}
	base := w.Data.Len()
	p1 := []traj.Symbol{3, 1, 4, 1, 5}
	appendPath(t, safe, p1...)
	if _, err := safe.AppendBatch([]traj.Trajectory{
		{Path: []traj.Symbol{2, 7, 1}, Times: []float64{10, 20, 30}},
		{Path: []traj.Symbol{8, 2, 8}},
	}); err != nil {
		t.Fatal(err)
	}
	closeDurable(t, safe)

	re, info, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	defer closeDurable(t, re)
	if info.ReplayedRecords != 3 {
		t.Fatalf("ReplayedRecords = %d, want 3 (%+v)", info.ReplayedRecords, info)
	}
	if got := re.NumTrajectories(); got != base+3 {
		t.Fatalf("recovered %d trajectories, want %d", got, base+3)
	}
	ms, err := re.SearchExact(p1)
	if err != nil || len(ms) == 0 {
		t.Fatalf("recovered append not searchable: ms=%v err=%v", ms, err)
	}
	tr := re.Unsafe().Dataset().Get(int32(base + 1))
	if len(tr.Times) != 3 || tr.Times[1] != 20 {
		t.Fatalf("recovered timestamps corrupted: %v", tr.Times)
	}
}

// TestDurableTornTailTruncated: a torn final frame loses exactly that
// frame — earlier (acknowledged) records survive and the tail is
// physically truncated so the next run starts clean.
func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	safe, _, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	appendPath(t, safe, 1, 2, 3)
	appendPath(t, safe, 4, 5, 6)
	// An unsynced batch the "crash" tears mid-write: chop bytes off the
	// last frame. The batch must vanish atomically.
	if _, err := safe.AppendBatch([]traj.Trajectory{
		{Path: []traj.Symbol{7, 7}}, {Path: []traj.Symbol{9, 9}},
	}); err != nil {
		t.Fatal(err)
	}
	closeDurable(t, safe)
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	re, info, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	defer closeDurable(t, re)
	if !info.TailTruncated {
		t.Fatalf("torn tail not reported: %+v", info)
	}
	if info.ReplayedRecords != 2 {
		t.Fatalf("ReplayedRecords = %d, want 2 (batch must vanish atomically)", info.ReplayedRecords)
	}
	if got, want := re.NumTrajectories(), tinyBaseLen()+2; got != want {
		t.Fatalf("trajectories = %d, want %d", got, want)
	}
	// The tail was physically truncated: a third open sees a clean log.
	closeDurable(t, re)
	re2, info2, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	defer closeDurable(t, re2)
	if info2.TailTruncated || info2.ReplayedRecords != 2 {
		t.Fatalf("second reopen not clean: %+v", info2)
	}
}

// TestCheckpointRotatesAndRecovers: a checkpoint moves the appended tail
// into the snapshot, truncates the WAL, and a reopen reassembles
// snapshot + post-checkpoint WAL records.
func TestCheckpointRotatesAndRecovers(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "pointer"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := DurableOptions{Sync: wal.SyncAlways, Compact: compact}
			safe, _, _ := openDurableTest(t, dir, opts)
			appendPath(t, safe, 1, 2, 3)
			appendPath(t, safe, 4, 5)
			res, err := safe.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if res.Generation != 2 || res.Records != 2 {
				t.Fatalf("checkpoint result %+v, want gen 2, records 2", res)
			}
			if ws := safe.Durable().WALStats(); ws.Records != 0 || ws.BaseGen != 2 {
				t.Fatalf("WAL not rotated: %+v", ws)
			}
			post := []traj.Symbol{6, 7, 8, 9}
			appendPath(t, safe, post...)
			closeDurable(t, safe)

			re, info, _ := openDurableTest(t, dir, opts)
			defer closeDurable(t, re)
			if info.SnapshotRecords != 2 || info.ReplayedRecords != 1 || info.SkippedRecords != 0 {
				t.Fatalf("recovery info %+v, want snapshot 2 + replayed 1", info)
			}
			if compact && !info.IndexMapped {
				t.Fatalf("compact reopen did not mmap the checkpointed index: %+v", info)
			}
			if got, want := re.NumTrajectories(), tinyBaseLen()+3; got != want {
				t.Fatalf("trajectories = %d, want %d", got, want)
			}
			if ms, err := re.SearchExact(post); err != nil || len(ms) == 0 {
				t.Fatalf("post-checkpoint append lost: ms=%v err=%v", ms, err)
			}
			if ms, err := re.SearchExact([]traj.Symbol{1, 2, 3}); err != nil || len(ms) == 0 {
				t.Fatalf("checkpointed append lost: ms=%v err=%v", ms, err)
			}
		})
	}
}

// TestCheckpointCrashWindowIdempotent: a crash after the snapshot rename
// but before the WAL rotation leaves both files covering the same
// generations; replay must skip the overlap instead of duplicating.
func TestCheckpointCrashWindowIdempotent(t *testing.T) {
	dir := t.TempDir()
	safe, _, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	appendPath(t, safe, 1, 2, 3)
	appendPath(t, safe, 4, 5, 6)
	// Save the pre-checkpoint WAL, checkpoint (which rotates it), then
	// put the old WAL back — exactly the on-disk state of a crash inside
	// the checkpoint window.
	walPath := filepath.Join(dir, walFile)
	preWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := safe.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	closeDurable(t, safe)
	if err := os.WriteFile(walPath, preWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	re, info, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	defer closeDurable(t, re)
	if info.SnapshotRecords != 2 || info.SkippedRecords != 2 || info.ReplayedRecords != 0 {
		t.Fatalf("overlap not skipped: %+v", info)
	}
	if got, want := re.NumTrajectories(), tinyBaseLen()+2; got != want {
		t.Fatalf("trajectories = %d, want %d (duplicated replay?)", got, want)
	}
}

// TestDurableHTTPSurface: append and checkpoint over HTTP, durability
// visible in /healthz and /v1/stats; /v1/checkpoint on a volatile engine
// answers 501.
func TestDurableHTTPSurface(t *testing.T) {
	dir := t.TempDir()
	safe, _, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	defer closeDurable(t, safe)
	srv := New(safe, Config{CacheSize: 16, MaxConcurrent: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, out := post(t, ts.URL+"/v1/append", map[string]any{"path": []int{1, 2, 3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d body %v", resp.StatusCode, out)
	}
	resp, out = post(t, ts.URL+"/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %v", resp.StatusCode, out)
	}
	var health healthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.Durable || health.DurableGeneration != 1 {
		t.Fatalf("healthz durability block wrong: %+v", health)
	}
	var stats StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if !stats.Durability.Enabled || stats.Durability.Checkpoints != 1 ||
		stats.Durability.LastCheckpointGen != 1 || stats.Durability.WALRecords != 0 {
		t.Fatalf("stats durability block wrong: %+v", stats.Durability)
	}
	if stats.Durability.SyncPolicy != "always" {
		t.Fatalf("sync policy = %q", stats.Durability.SyncPolicy)
	}

	// Volatile server: checkpoint is 501, durability reads all-zero.
	_, vts, _ := newTestServer(t)
	resp, out = post(t, vts.URL+"/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("volatile checkpoint: status %d body %v", resp.StatusCode, out)
	}
}

// TestAppendFailsWhenWALBroken: once the log cannot accept a record the
// append must be refused (not applied half-durably) and surface a 500.
func TestAppendFailsWhenWALBroken(t *testing.T) {
	dir := t.TempDir()
	safe, _, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	srv := New(safe, Config{CacheSize: 16, MaxConcurrent: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := safe.NumTrajectories()
	closeDurable(t, safe) // closed WAL: every append must now fail
	if _, err := safe.Append(traj.Trajectory{Path: []traj.Symbol{1, 2}}); err == nil {
		t.Fatal("append on closed WAL succeeded")
	}
	resp, out := post(t, ts.URL+"/v1/append", map[string]any{"path": []int{1, 2}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("append on broken WAL: status %d body %v", resp.StatusCode, out)
	}
	if got := safe.NumTrajectories(); got != before {
		t.Fatalf("failed append mutated the dataset: %d -> %d", before, got)
	}
}

// TestPoolShedding: a saturated pool sheds queued requests with a fast
// 503 + Retry-After instead of pinning them behind an unbounded queue.
func TestPoolShedding(t *testing.T) {
	safe, w := newTestEngine(t)
	srv := New(safe, Config{CacheSize: -1, MaxConcurrent: 1, QueueWait: 5 * time.Millisecond,
		MaxSymbol: int32(w.Graph.NumVertices())})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only slot directly, then watch a request shed.
	if err := srv.pool.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.pool.release()
	q := sampleQuery(t, w.Data, 6, 3)
	resp, out := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %v)", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := srv.pool.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if srv.Snapshot().Pool.Shed != 1 {
		t.Fatal("shed not visible in /v1/stats")
	}
}

// TestPanicRecoveredTo500: a panicking handler — the instrument
// middleware is the same wrapper every endpoint gets, and fanOutShards
// re-raises shard-worker panics into it — answers 500 JSON with the
// request ID and bumps the panic counter; the process survives.
func TestPanicRecoveredTo500(t *testing.T) {
	safe, _ := newTestEngine(t)
	srv := New(safe, Config{CacheSize: 16, MaxConcurrent: 2})
	h := srv.instrument("search", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/search", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if id := rec.Header().Get("X-Request-ID"); id == "" {
		t.Fatal("panic response lost the request ID header")
	}
	if got := srv.stats.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	// A second request goes through normally: nothing was poisoned.
	rec2 := httptest.NewRecorder()
	srv.instrument("healthz", srv.handleHealthz)(rec2, httptest.NewRequest("GET", "/healthz", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("follow-up request status %d", rec2.Code)
	}
}

// TestRequestTimeoutMapsTo504: an expired request deadline reaches the
// engine's cancellation points and comes back as 504, not 500.
func TestRequestTimeoutMapsTo504(t *testing.T) {
	safe, w := newTestEngine(t)
	srv := New(safe, Config{CacheSize: -1, MaxConcurrent: 4, RequestTimeout: time.Nanosecond,
		MaxSymbol: int32(w.Graph.NumVertices())})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	q := sampleQuery(t, w.Data, 6, 3)
	resp, out := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %v)", resp.StatusCode, out)
	}
}

// TestCheckpointBusySingleFlight: the second of two concurrent
// checkpoints reports ErrCheckpointBusy rather than stacking up.
func TestCheckpointBusySingleFlight(t *testing.T) {
	dir := t.TempDir()
	safe, _, _ := openDurableTest(t, dir, DurableOptions{Sync: wal.SyncAlways})
	defer closeDurable(t, safe)
	appendPath(t, safe, 1, 2)
	d := safe.Durable()
	if !d.ckptInFlight.CompareAndSwap(false, true) {
		t.Fatal("flag already set")
	}
	if _, err := safe.Checkpoint(); !errors.Is(err, ErrCheckpointBusy) {
		t.Fatalf("err = %v, want ErrCheckpointBusy", err)
	}
	d.ckptInFlight.Store(false)
	if _, err := safe.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after release: %v", err)
	}
}

package server

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/index"
	"subtraj/internal/obs"
	"subtraj/internal/traj"
	"subtraj/internal/wal"
	"subtraj/internal/wed"
)

// This file is the crash-safety layer: a SafeEngine whose appends are
// write-ahead logged, checkpointed, and recoverable. The durable state
// lives in one directory:
//
//	wal.log        append log of trajectories added since the last
//	               checkpoint (header baseGen = that checkpoint's
//	               generation barrier)
//	snapshot.traj  every appended trajectory up to the last checkpoint,
//	               in the same framed codec as the WAL (baseGen 0, so
//	               record generations are 1..barrier)
//	index.compact  mmap-able compact arena over base + snapshot (compact
//	               backends only; absent or stale it is re-frozen)
//
// The base workload (the trajectories loaded before OpenDurable) is the
// caller's responsibility to reproduce — it is the deterministic part;
// the durable directory persists only what arrived over the wire.
//
// Recovery replays snapshot then WAL, skipping WAL records at or below
// the snapshot's generation: a crash between the snapshot rename and the
// WAL rotation leaves both files describing overlapping generations, and
// the skip makes replay idempotent across that window. A torn WAL tail
// is truncated to the last valid frame — acknowledged records are always
// before the tear because acks follow the (policy-dependent) fsync.
const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.traj"
	indexFile    = "index.compact"

	// snapshotFrameRecords bounds one snapshot frame, keeping every frame
	// far under the WAL's 64 MiB cap regardless of trajectory size.
	snapshotFrameRecords = 512
)

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval is the flush period for wal.SyncInterval (default 100ms).
	SyncInterval time.Duration
	// CheckpointBytes triggers an automatic background checkpoint when the
	// WAL grows past it (0 = only explicit /v1/checkpoint requests).
	CheckpointBytes int64
	// Compact selects the compact-arena backend with an mmap-able
	// checkpoint snapshot; false builds the pointer backend with Shards
	// partitions and persists only snapshot + WAL.
	Compact bool
	// Shards is the pointer backend's partition count (0 = default).
	Shards int
	// Logger receives recovery and background-checkpoint reports
	// (nil = slog.Default()).
	Logger *slog.Logger
}

// RecoveryInfo reports what OpenDurable found and did.
type RecoveryInfo struct {
	// SnapshotRecords is the number of trajectories restored from
	// snapshot.traj.
	SnapshotRecords int64
	// ReplayedRecords is the number of WAL records applied on top.
	ReplayedRecords int64
	// SkippedRecords counts WAL records already covered by the snapshot
	// (non-zero only after a crash inside the checkpoint window).
	SkippedRecords int64
	// TailTruncated reports that the WAL ended in a torn or corrupt frame
	// that recovery cut off; TruncateReason says why.
	TailTruncated  bool
	TruncateReason string
	// WALBytes is the surviving log size.
	WALBytes int64
	// CheckpointGen is the snapshot's generation barrier.
	CheckpointGen uint64
	// IndexMapped reports that the compact arena was mmapped from
	// index.compact rather than re-frozen from the dataset.
	IndexMapped bool
}

// ErrNotDurable is returned by Checkpoint on a volatile engine.
var ErrNotDurable = errors.New("server: engine has no durability (no --wal-dir)")

// ErrCheckpointBusy is returned when a checkpoint is already running.
var ErrCheckpointBusy = errors.New("server: checkpoint already in progress")

// Durability is the write-ahead state attached to a durable SafeEngine:
// the WAL writer, the checkpoint trigger, and the counters the metrics
// and health endpoints expose.
type Durability struct {
	dir       string
	log       *wal.Writer
	baseLen   int // dataset prefix from the reproducible base workload
	compact   bool
	ckptBytes int64
	logger    *slog.Logger

	checkpoints  atomic.Int64
	ckptErrs     atomic.Int64
	lastCkptGen  atomic.Uint64
	ckptInFlight atomic.Bool
	replayed     atomic.Int64
	snapRecords  atomic.Int64
	fsyncHist    atomic.Pointer[obs.Histogram]
}

// Dir returns the durable directory.
func (d *Durability) Dir() string { return d.dir }

// WALStats snapshots the log's counters.
func (d *Durability) WALStats() wal.Stats { return d.log.StatsSnapshot() }

// SyncPolicy returns the WAL fsync policy name.
func (d *Durability) SyncPolicy() string { return d.log.Policy().String() }

// Checkpoints returns the number of completed checkpoints this process.
func (d *Durability) Checkpoints() int64 { return d.checkpoints.Load() }

// CheckpointErrors returns the number of failed checkpoint attempts.
func (d *Durability) CheckpointErrors() int64 { return d.ckptErrs.Load() }

// LastCheckpointGen returns the generation barrier of the newest durable
// snapshot (recovered or written this process).
func (d *Durability) LastCheckpointGen() uint64 { return d.lastCkptGen.Load() }

// ReplayedRecords returns how many WAL records startup recovery applied.
func (d *Durability) ReplayedRecords() int64 { return d.replayed.Load() }

// SnapshotRecords returns how many trajectories the startup snapshot held.
func (d *Durability) SnapshotRecords() int64 { return d.snapRecords.Load() }

// SetFsyncObserver routes WAL fsync durations into h (the server's
// subtraj_wal_fsync_seconds histogram). The WAL writer outlives any one
// Server, so the hook indirects through an atomic pointer.
func (d *Durability) SetFsyncObserver(h *obs.Histogram) { d.fsyncHist.Store(h) }

func (d *Durability) observeFsync(took time.Duration) {
	if h := d.fsyncHist.Load(); h != nil {
		h.Observe(took.Seconds())
	}
}

// Close flushes and closes the WAL.
func (d *Durability) Close() error { return d.log.Close() }

// Durable returns the engine's durability state, or nil for a volatile
// engine.
func (s *SafeEngine) Durable() *Durability { return s.dur }

// OpenDurable builds a durable SafeEngine over the base dataset plus
// everything the durable directory remembers: snapshot.traj is replayed
// into ds, the index backend is built (or mmapped), and the WAL is
// replayed on top — skipping records the snapshot already covers — with
// any torn tail physically truncated. The returned engine logs every
// subsequent append write-ahead.
//
// ds must hold exactly the reproducible base workload (the trajectories
// present before the durable directory was first used); OpenDurable
// appends the recovered tail to it.
func OpenDurable(dir string, ds *traj.Dataset, costs wed.FilterCosts, opts DurableOptions) (*SafeEngine, *RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: durable dir: %w", err)
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	baseLen := ds.Len()
	info := &RecoveryInfo{}

	// 1. Snapshot: the durable prefix of the appended tail.
	snapGen := uint64(0)
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		sinfo, err := wal.ReplayFile(snapPath, func(r wal.Record) error {
			ds.Add(traj.Trajectory{Path: r.Path, Times: r.Times})
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("server: snapshot %s: %w", snapPath, err)
		}
		if sinfo.Truncated {
			// A snapshot is written to a tmp file and renamed, so a torn
			// one means the rename itself was betrayed (disk corruption) —
			// refuse to serve a silently shortened dataset.
			return nil, nil, fmt.Errorf("server: snapshot %s is torn (%s at byte %d); delete the durable directory to restart from the base workload",
				snapPath, sinfo.Reason, sinfo.GoodBytes)
		}
		snapGen = sinfo.EndGen
		info.SnapshotRecords = sinfo.Records
	}
	info.CheckpointGen = snapGen

	// 2. Index backend over base + snapshot.
	var eng *core.Engine
	if opts.Compact {
		idxPath := filepath.Join(dir, indexFile)
		if c, err := index.OpenMapped(idxPath); err == nil {
			if c.NumTrajectories() == ds.Len() {
				eng = core.NewEngineWithBackend(ds, index.NewOverlay(c), costs)
				info.IndexMapped = true
			} else {
				// Stale arena (crash between snapshot rename and index
				// rename): ignore it and re-freeze.
				_ = c.Close()
			}
		}
		if eng == nil {
			eng = core.NewEngineCompact(ds, costs)
		}
	} else {
		eng = core.NewEngineShards(ds, costs, opts.Shards)
	}

	// 3. WAL: replay the records newer than the snapshot, truncate any
	// torn tail, and resume appending at the end.
	dur := &Durability{
		dir:       dir,
		baseLen:   baseLen,
		compact:   opts.Compact,
		ckptBytes: opts.CheckpointBytes,
		logger:    opts.Logger,
	}
	dur.snapRecords.Store(info.SnapshotRecords)
	dur.lastCkptGen.Store(snapGen)
	wopts := wal.Options{Policy: opts.Sync, Interval: opts.SyncInterval, OnFsync: dur.observeFsync}
	var replayed, skipped int64
	w, winfo, err := wal.OpenOrCreate(filepath.Join(dir, walFile), snapGen, wopts, func(r wal.Record) error {
		if r.Gen <= snapGen {
			skipped++ // checkpoint-window overlap: snapshot already has it
			return nil
		}
		eng.Append(traj.Trajectory{Path: r.Path, Times: r.Times})
		replayed++
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("server: wal: %w", err)
	}
	if winfo.BaseGen > snapGen {
		_ = w.Close()
		return nil, nil, fmt.Errorf("server: wal starts at generation %d but the snapshot covers only %d: records in between are lost; delete the durable directory to restart from the base workload",
			winfo.BaseGen, snapGen)
	}
	dur.log = w
	dur.replayed.Store(replayed)
	info.ReplayedRecords = replayed
	info.SkippedRecords = skipped
	info.TailTruncated = winfo.Truncated
	info.TruncateReason = winfo.Reason
	info.WALBytes = w.StatsSnapshot().Bytes

	s := NewSafeEngine(eng)
	s.dur = dur
	return s, info, nil
}

// CheckpointResult reports one completed checkpoint.
type CheckpointResult struct {
	// Generation is the barrier: every appended trajectory with durable
	// generation ≤ Generation now lives in the snapshot.
	Generation uint64 `json:"generation"`
	// Records is the snapshot's trajectory count.
	Records int64 `json:"records"`
	// SnapshotBytes / IndexBytes are the persisted file sizes.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	IndexBytes    int64 `json:"index_bytes,omitempty"`
	// DurationMS is the wall time holding the ingest mutex.
	DurationMS float64 `json:"duration_ms"`
}

// Checkpoint persists the appended tail and truncates the WAL, all under
// the ingest mutex — appends stall for the duration, but searches keep
// answering from the published snapshot (the epoch design turned the old
// stop-the-world pause into a writer-only one). Holding the ingest mutex
// is what makes the checkpoint barrier exact: the WAL generation and the
// appended tail cannot move while the snapshot is cut, so the durable
// barrier and the publish barrier are the same generation discipline.
// The order makes every crash window recoverable:
//
//  1. snapshot.traj is written to a tmp file and renamed — a crash
//     before the rename leaves the old snapshot + full WAL; after it,
//     the new snapshot overlaps the not-yet-rotated WAL, and recovery's
//     generation skip de-duplicates.
//  2. compact backends re-freeze the arena and persist it the same way,
//     then swap the engine onto the fresh arena with an empty overlay
//     tail — a stale or missing arena is merely a slower restart.
//  3. the WAL is rotated (truncated to a fresh header whose baseGen is
//     the barrier) — only after the snapshot is durably in place.
//
// At most one checkpoint runs at a time; concurrent calls get
// ErrCheckpointBusy.
func (s *SafeEngine) Checkpoint() (*CheckpointResult, error) {
	d := s.dur
	if d == nil {
		return nil, ErrNotDurable
	}
	if !d.ckptInFlight.CompareAndSwap(false, true) {
		return nil, ErrCheckpointBusy
	}
	defer d.ckptInFlight.Store(false)
	start := time.Now()
	s.ingestMu.Lock()
	res, err := d.checkpointLocked(s)
	s.ingestMu.Unlock()
	if err != nil {
		d.ckptErrs.Add(1)
		return nil, err
	}
	res.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	d.checkpoints.Add(1)
	d.lastCkptGen.Store(res.Generation)
	return res, nil
}

//subtrajlint:locked ingestMu — Checkpoint holds the ingest mutex around this call
func (d *Durability) checkpointLocked(s *SafeEngine) (*CheckpointResult, error) {
	barrier := d.log.Gen()
	ds := s.ds
	tail := ds.Trajs[d.baseLen:]
	if uint64(len(tail)) != barrier {
		// Logged and applied counts must agree — both happen under the
		// same ingest mutex. A mismatch means the invariant is broken;
		// refuse to write a snapshot that would misnumber generations.
		return nil, fmt.Errorf("server: checkpoint barrier %d != appended tail %d", barrier, len(tail))
	}
	snapBytes, err := d.writeSnapshot(tail)
	if err != nil {
		return nil, fmt.Errorf("server: checkpoint snapshot: %w", err)
	}
	res := &CheckpointResult{Generation: barrier, Records: int64(len(tail)), SnapshotBytes: snapBytes}
	if d.compact {
		c := index.FreezeDataset(ds)
		n, err := d.writeIndex(c)
		if err != nil {
			return nil, fmt.Errorf("server: checkpoint index: %w", err)
		}
		res.IndexBytes = n
		// Install the fresh arena as the new frozen base and publish a
		// snapshot over it (same generation — contents are unchanged, so
		// cached results stay valid). The arena's temporal order is
		// frozen in and the empty overlay tail's is trivial, so the new
		// base is temporal-ready immediately.
		nb := &epochBase{backend: index.NewOverlay(c)}
		nb.ensureTemporal()
		s.base = nb
		s.resetDeltaLocked()
		s.publishLocked()
	}
	if err := d.log.Rotate(barrier); err != nil {
		return nil, fmt.Errorf("server: checkpoint wal rotation: %w", err)
	}
	d.snapRecords.Store(res.Records)
	return res, nil
}

// writeSnapshot persists the appended tail as a framed log (tmp + rename
// + directory fsync) and returns the file size.
func (d *Durability) writeSnapshot(tail []traj.Trajectory) (int64, error) {
	tmp := filepath.Join(d.dir, snapshotFile+".tmp")
	w, err := wal.Create(tmp, 0, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		return 0, err
	}
	for len(tail) > 0 {
		n := min(snapshotFrameRecords, len(tail))
		if err := w.Append(tail[:n]); err != nil {
			_ = w.Close()
			os.Remove(tmp)
			return 0, err
		}
		tail = tail[n:]
	}
	if err := w.Sync(); err != nil {
		_ = w.Close()
		os.Remove(tmp)
		return 0, err
	}
	size := w.StatsSnapshot().Bytes
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(d.dir)
	return size, nil
}

// writeIndex persists the compact arena (tmp + rename + directory fsync)
// and returns the file size.
func (d *Durability) writeIndex(c *index.Compact) (int64, error) {
	tmp := filepath.Join(d.dir, indexFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := c.Save(bw); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return 0, err
	}
	st, _ := f.Stat()
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, indexFile)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(d.dir)
	var size int64
	if st != nil {
		size = st.Size()
	}
	return size, nil
}

// syncDir fsyncs a directory so a rename is durable. Best-effort: some
// filesystems reject directory fsync, and the rename itself is already
// atomic.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}

// maybeCheckpoint kicks off a background checkpoint when the WAL has
// outgrown the configured trigger. Single-flight: while one runs (or the
// trigger is disabled) this is a cheap atomic load.
func (s *SafeEngine) maybeCheckpoint() {
	d := s.dur
	if d == nil || d.ckptBytes <= 0 || d.ckptInFlight.Load() {
		return
	}
	if d.log.StatsSnapshot().Bytes < d.ckptBytes {
		return
	}
	go func() {
		res, err := s.Checkpoint()
		switch {
		case errors.Is(err, ErrCheckpointBusy):
		case err != nil:
			d.logger.Error("background checkpoint failed", "err", err)
		default:
			d.logger.Info("checkpoint complete",
				"generation", res.Generation,
				"records", res.Records,
				"snapshot_bytes", res.SnapshotBytes,
				"index_bytes", res.IndexBytes,
				"duration_ms", res.DurationMS)
		}
	}()
}

package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/obs"
	"subtraj/internal/verify"
)

// This file wires the obs package into the HTTP layer: the metric
// registry behind GET /metrics, the per-request trace middleware, the
// slow-query ring behind GET /v1/debug/traces, and the enriched
// /healthz. Everything scrape-side reads the *same* atomics /v1/stats
// reads (via CounterFunc/GaugeFunc bridges), so the two surfaces cannot
// drift apart.

// instrumentedEndpoints lists every route the middleware wraps; each gets
// its own request-duration histogram series.
var instrumentedEndpoints = []string{
	"search", "topk", "temporal", "exact", "count",
	"append", "match", "ingest", "batch", "checkpoint",
	"stats", "debug_traces", "healthz",
}

// serverMetrics holds the handles the request path touches directly.
// Scrape-time bridges (request totals, cache/pool/engine gauges, band and
// reuse ratios) live only in the registry. With Config.DisableMetrics the
// registry is nil and every handle below is a nil no-op — the baseline
// the instrumentation-overhead benchmark compares against.
type serverMetrics struct {
	reg *obs.Registry

	reqLatency map[string]*obs.Histogram

	stagePlan   *obs.Histogram
	stageFilter *obs.Histogram
	stageVerify *obs.Histogram
	stageMatch  *obs.Histogram

	topkRounds      *obs.Histogram
	matchConfidence *obs.Histogram
	walFsync        *obs.Histogram
}

// newServerMetrics builds the registry over s. It must run after the
// cache, pool, and engine fields are set: the Func bridges capture them.
func newServerMetrics(s *Server) *serverMetrics {
	m := &serverMetrics{reqLatency: make(map[string]*obs.Histogram, len(instrumentedEndpoints))}
	if !s.cfg.DisableMetrics {
		m.reg = obs.NewRegistry()
	}
	r := m.reg // nil-safe: a nil registry hands out nil handles

	cf := func(c *atomic.Int64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}

	// Request traffic. Counts bridge the same per-endpoint atomics
	// /v1/stats reports; durations are observed by the instrument
	// middleware on *every* request, cache hits included.
	for _, ep := range []struct {
		name string
		c    *atomic.Int64
	}{
		{"search", &s.stats.search}, {"topk", &s.stats.topk},
		{"temporal", &s.stats.temporal}, {"exact", &s.stats.exact},
		{"count", &s.stats.count}, {"append", &s.stats.appendN},
		{"match", &s.stats.match}, {"ingest", &s.stats.ingest},
		{"batch", &s.stats.batch},
	} {
		r.CounterFunc("subtraj_requests_total", "Requests received per endpoint.",
			obs.L("endpoint", ep.name), cf(ep.c))
	}
	r.CounterFunc("subtraj_request_errors_total", "Requests answered with an error status.",
		nil, cf(&s.stats.errors))
	for _, ep := range instrumentedEndpoints {
		m.reqLatency[ep] = r.Histogram("subtraj_request_duration_seconds",
			"End-to-end request latency per endpoint, including cache hits.",
			obs.LatencyBuckets, obs.L("endpoint", ep))
	}
	r.CounterFunc("subtraj_slow_queries_total",
		"Requests at or above the slow-query threshold.", nil, cf(&s.stats.slowQueries))

	// Pipeline stages — the paper's filter/verify breakdown as live
	// distributions (plan = min-candidate computation, filter = index
	// lookups, verify = banded DP, match = GPS map matching).
	m.stagePlan = r.Histogram("subtraj_stage_duration_seconds",
		"Per-query pipeline-stage duration (summed work across shard workers).",
		obs.LatencyBuckets, obs.L("stage", "plan"))
	m.stageFilter = r.Histogram("subtraj_stage_duration_seconds", "",
		obs.LatencyBuckets, obs.L("stage", "filter"))
	m.stageVerify = r.Histogram("subtraj_stage_duration_seconds", "",
		obs.LatencyBuckets, obs.L("stage", "verify"))
	m.stageMatch = r.Histogram("subtraj_stage_duration_seconds", "",
		obs.LatencyBuckets, obs.L("stage", "match"))

	// Engine state and efficiency ratios — identical arithmetic to the
	// /v1/stats Totals block.
	r.CounterFunc("subtraj_queries_executed_total",
		"Engine-run (non-cached) queries.", nil, cf(&s.stats.executed))
	r.GaugeFunc("subtraj_engine_generation", "Appends applied so far (cache-validity tag).",
		nil, func() float64 { return float64(s.eng.Generation()) })
	r.GaugeFunc("subtraj_engine_trajectories", "Indexed trajectories.",
		nil, func() float64 { return float64(s.eng.NumTrajectories()) })
	r.GaugeFunc("subtraj_engine_shards", "Index partitions (per-query parallelism ceiling).",
		nil, func() float64 { return float64(s.eng.NumShards()) })
	r.GaugeFunc("subtraj_index_bytes",
		"Index memory footprint (exact arena size for the compact backend, heap estimate for pointer).",
		obs.L("backend", s.eng.IndexKind()), func() float64 { return float64(s.eng.IndexBytes()) })
	r.GaugeFunc("subtraj_index_bytes_per_trajectory",
		"Index bytes divided by indexed trajectories.",
		obs.L("backend", s.eng.IndexKind()), func() float64 {
			if n := s.eng.NumTrajectories(); n > 0 {
				return float64(s.eng.IndexBytes()) / float64(n)
			}
			return 0
		})
	r.GaugeFunc("subtraj_band_ratio",
		"Fraction of DP cells the banded verification actually computed.",
		nil, func() float64 {
			return ratio(s.stats.cellsComputed.Load(), s.stats.cellsAvail.Load())
		})
	r.GaugeFunc("subtraj_topk_reused_ratio",
		"Fraction of top-k candidates skipped via cross-round state reuse.",
		nil, func() float64 {
			reused := s.stats.reusedCandidates.Load()
			return ratio(reused, reused+s.stats.topkVerified.Load())
		})
	m.topkRounds = r.Histogram("subtraj_topk_rounds",
		"Threshold-growing rounds per top-k query.",
		[]float64{1, 2, 3, 4, 5, 6, 8, 10, 15, 20}, nil)
	r.CounterFunc("subtraj_shard_workers_total",
		"Shard workers used across executed queries.", nil, cf(&s.stats.shardWorkers))
	r.CounterFunc("subtraj_verifier_pool_gets_total",
		"Verifier checkouts from the process-wide pool.", nil,
		func() float64 { g, _ := verify.PoolStats(); return float64(g) })
	r.CounterFunc("subtraj_verifier_pool_news_total",
		"Verifier allocations the pool could not avoid.", nil,
		func() float64 { _, n := verify.PoolStats(); return float64(n) })

	// Result cache.
	r.CounterFunc("subtraj_cache_hits_total", "Result-cache hits.", nil, cf64(&s.cache.hits))
	r.CounterFunc("subtraj_cache_misses_total", "Result-cache misses.", nil, cf64(&s.cache.misses))
	r.CounterFunc("subtraj_cache_evictions_total", "LRU evictions.", nil, cf64(&s.cache.evictions))
	r.CounterFunc("subtraj_cache_invalidations_total",
		"Entries dropped because the engine generation moved.", nil, cf64(&s.cache.invalidations))
	r.GaugeFunc("subtraj_cache_size", "Current result-cache entries.",
		nil, func() float64 { return float64(s.cache.len()) })
	r.GaugeFunc("subtraj_cache_hit_ratio", "Hits over lookups since start.",
		nil, func() float64 { return ratio(s.cache.hits.Load(), s.cache.hits.Load()+s.cache.misses.Load()) })
	r.CounterFunc("subtraj_cache_hit_queries_total",
		"Query requests answered from the result cache.", nil, cf(&s.stats.cacheHitQueries))

	// Worker pool.
	r.GaugeFunc("subtraj_pool_capacity", "Worker-pool slots.",
		nil, func() float64 { return float64(s.pool.capacity()) })
	r.GaugeFunc("subtraj_pool_in_flight", "Slots currently held.",
		nil, func() float64 { return float64(s.pool.inFlight.Load()) })
	r.CounterFunc("subtraj_pool_waited_total", "Acquisitions that had to block.",
		nil, cf(&s.pool.waited))
	r.CounterFunc("subtraj_pool_rejected_total", "Acquisitions abandoned at the deadline.",
		nil, cf(&s.pool.rejected))

	// GPS pipeline.
	r.GaugeFunc("subtraj_gps_enabled", "1 when the server was built with a map matcher.",
		nil, func() float64 { return boolFloat(s.matcher != nil) })
	r.CounterFunc("subtraj_gps_traces_matched_total", "Traces matched successfully.",
		nil, cf(&s.stats.tracesMatched))
	r.CounterFunc("subtraj_gps_traces_failed_total", "Traces the matcher rejected.",
		nil, cf(&s.stats.tracesFailed))
	r.CounterFunc("subtraj_gps_traces_split_total", "Matched traces that split into segments.",
		nil, cf(&s.stats.tracesSplit))
	r.CounterFunc("subtraj_gps_segments_appended_total", "Matched segments indexed via ingest.",
		nil, cf(&s.stats.segmentsAppended))
	r.CounterFunc("subtraj_gps_trace_queries_total", "Queries posed as raw GPS traces.",
		nil, cf(&s.stats.traceQueries))
	m.matchConfidence = r.Histogram("subtraj_gps_match_confidence",
		"Per-trace map-matching confidence.", obs.RatioBuckets, nil)

	// Epoch-snapshot ingest: how much of the published view is delta vs
	// frozen base, and the background compactor's progress.
	r.GaugeFunc("subtraj_delta_trajectories",
		"Appended trajectories in the published snapshot's delta index (not yet folded).",
		nil, func() float64 { return float64(s.eng.DeltaLen()) })
	r.GaugeFunc("subtraj_folded_trajectories",
		"Trajectories folded into the published snapshot's frozen base.",
		nil, func() float64 { return float64(s.eng.FoldedLen()) })
	r.CounterFunc("subtraj_compactions_total",
		"Completed background folds of the delta into a fresh frozen base.",
		nil, func() float64 { return float64(s.eng.Compactions()) })
	r.CounterFunc("subtraj_snapshot_publishes_total",
		"Immutable engine snapshots published (appends, folds, checkpoints).",
		nil, func() float64 { return float64(s.eng.Publishes()) })

	// Robustness: overload shedding and recovered panics.
	r.CounterFunc("subtraj_requests_shed_total",
		"Requests shed with a fast 503 because the worker pool stayed saturated past the queue-wait bound.",
		nil, cf(&s.pool.shed))
	r.CounterFunc("subtraj_panics_total",
		"Handler panics recovered into 500 responses.", nil, cf(&s.stats.panics))

	// Durability: the write-ahead log and checkpoint state. The bridges
	// read through s.eng.Durable() at scrape time and report zero on a
	// volatile engine, so dashboards need no conditional wiring.
	durGauge := func(f func(d *Durability) float64) func() float64 {
		return func() float64 {
			if d := s.eng.Durable(); d != nil {
				return f(d)
			}
			return 0
		}
	}
	r.GaugeFunc("subtraj_durable", "1 when appends are write-ahead logged.",
		nil, durGauge(func(*Durability) float64 { return 1 }))
	r.GaugeFunc("subtraj_wal_bytes", "Write-ahead log size on disk.",
		nil, durGauge(func(d *Durability) float64 { return float64(d.WALStats().Bytes) }))
	r.GaugeFunc("subtraj_wal_records", "Records in the write-ahead log (since the last checkpoint).",
		nil, durGauge(func(d *Durability) float64 { return float64(d.WALStats().Records) }))
	r.CounterFunc("subtraj_wal_fsyncs_total", "WAL fsync calls.",
		nil, durGauge(func(d *Durability) float64 { return float64(d.WALStats().Syncs) }))
	r.CounterFunc("subtraj_checkpoints_total", "Completed checkpoints.",
		nil, durGauge(func(d *Durability) float64 { return float64(d.Checkpoints()) }))
	r.CounterFunc("subtraj_checkpoint_errors_total", "Failed checkpoint attempts.",
		nil, durGauge(func(d *Durability) float64 { return float64(d.CheckpointErrors()) }))
	r.GaugeFunc("subtraj_wal_last_checkpoint_generation",
		"Durable generation barrier of the newest snapshot.",
		nil, durGauge(func(d *Durability) float64 { return float64(d.LastCheckpointGen()) }))
	r.GaugeFunc("subtraj_recovery_replayed_records",
		"WAL records startup recovery applied on top of the snapshot.",
		nil, durGauge(func(d *Durability) float64 { return float64(d.ReplayedRecords()) }))
	m.walFsync = r.Histogram("subtraj_wal_fsync_seconds", "WAL fsync latency.",
		obs.LatencyBuckets, nil)
	if d := s.eng.Durable(); d != nil {
		d.SetFsyncObserver(m.walFsync)
	}

	r.GaugeFunc("subtraj_uptime_seconds", "Seconds since the server was built.",
		nil, func() float64 { return time.Since(s.stats.start).Seconds() })

	return m
}

// cf64 bridges an atomic.Int64 owned by another struct (cache, pool).
func cf64(c *atomic.Int64) func() float64 {
	return func() float64 { return float64(c.Load()) }
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// --- request middleware ---------------------------------------------------

// instrument wraps a handler with the per-request observability and
// robustness spine: request ID (echoed in X-Request-ID and carried by
// the trace), a trace in the context for the layers below to hang spans
// on, the configured request deadline (the engine's cancellation points
// observe it and the query answers 504), a panic backstop that converts
// any handler panic — including one re-raised from a shard worker — into
// a 500 JSON error instead of a dead process, the endpoint's latency
// histogram (observed for every request — cache hits included, which is
// what makes the histogram the honest end-to-end distribution), and the
// slow-query sink (structured log line plus the debug ring).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.metrics.reqLatency[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		id := obs.NewRequestID()
		tr := obs.NewTrace(id, endpoint)
		w.Header().Set("X-Request-ID", id)
		ctx := obs.WithTrace(r.Context(), tr)
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.stats.panics.Add(1)
					s.stats.errors.Add(1)
					s.cfg.Logger.Error("handler panic",
						"request_id", id,
						"endpoint", endpoint,
						"panic", fmt.Sprint(p),
						"stack", string(debug.Stack()),
					)
					// Best-effort: if the handler already wrote a status
					// line the superfluous-WriteHeader log is the only
					// casualty; the process survives either way.
					writeJSON(w, http.StatusInternalServerError,
						map[string]string{"error": "internal error", "request_id": id})
				}
			}()
			h(w, r.WithContext(ctx))
		}()
		dur := tr.Finish()
		lat.Observe(dur.Seconds())
		if s.cfg.SlowQuery > 0 && dur >= s.cfg.SlowQuery {
			s.stats.slowQueries.Add(1)
			s.traces.Add(obs.TraceRecord{
				RequestID: id,
				Endpoint:  endpoint,
				Time:      time.Now(),
				DurUS:     dur.Microseconds(),
				Trace:     tr.JSON(),
			})
			s.cfg.Logger.Warn("slow query",
				"request_id", id,
				"endpoint", endpoint,
				"dur_ms", float64(dur.Microseconds())/1e3,
				"breakdown", tr.Breakdown(),
			)
		}
	}
}

// attachStatSpans renders a query's core.QueryStats as work spans under
// the engine wall span. These durations are *summed work* across shard
// workers — under a parallel query they exceed the engine span's wall
// time by design — so each carries a "workers" attribute; only the
// trace's top-level wall spans are expected to sum to the root.
func attachStatSpans(tr *obs.Trace, eng *obs.Span, qs *core.QueryStats) {
	if tr == nil || qs == nil {
		return
	}
	add := func(name string, d time.Duration) *obs.Span {
		sp := tr.AddSpan(eng, name, d)
		sp.SetAttr("workers", qs.Workers)
		return sp
	}
	if qs.MinCandTime > 0 {
		add("plan", qs.MinCandTime)
	}
	if qs.LookupTime > 0 {
		add("filter", qs.LookupTime)
	}
	if qs.VerifyTime > 0 {
		add("verify", qs.VerifyTime).SetAttr("candidates", qs.Candidates)
	}
	if qs.Rounds > 0 {
		var total time.Duration
		for _, d := range qs.RoundTime {
			total += d
		}
		topk := add("topk_rounds", total)
		topk.SetAttr("rounds", qs.Rounds)
		for i, d := range qs.RoundTime {
			round := tr.AddSpan(topk, fmt.Sprintf("round_%d", i+1), d)
			if i < len(qs.RoundCandidates) {
				round.SetAttr("candidates", qs.RoundCandidates[i])
			}
		}
	}
}

// --- endpoints ------------------------------------------------------------

// handleMetrics serves the registry in Prometheus text exposition format.
// With metrics disabled the body is empty but the endpoint still answers
// 200, so scrapers see "up with nothing to say" rather than an outage.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WriteTo(w)
}

type debugTracesResponse struct {
	Capacity int               `json:"capacity"`
	Traces   []obs.TraceRecord `json:"traces"`
}

// handleDebugTraces dumps the retained slow-query span trees, newest
// first.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	resp := debugTracesResponse{Traces: []obs.TraceRecord{}}
	if s.traces != nil {
		resp.Capacity = s.cfg.TraceBuffer
		if recs := s.traces.Snapshot(); recs != nil {
			resp.Traces = recs
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the /healthz body: liveness plus the readiness facts
// a probe or load balancer actually wants — dataset generation (has the
// instance caught up after a restore?), uptime, and whether the temporal
// index is built.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Generation    uint64  `json:"generation"`
	Trajectories  int     `json:"trajectories"`
	Shards        int     `json:"shards"`
	TemporalReady bool    `json:"temporal_ready"`
	GPSEnabled    bool    `json:"gps_enabled"`
	// Durable reports write-ahead logging; the remaining fields let a
	// probe confirm a restarted instance actually recovered (how many WAL
	// records were replayed, and to what durable generation).
	Durable           bool   `json:"durable"`
	DurableGeneration uint64 `json:"durable_generation,omitempty"`
	WALRecords        int64  `json:"wal_records,omitempty"`
	RecoveryReplayed  int64  `json:"recovery_replayed_records,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.stats.start).Seconds(),
		Generation:    s.eng.Generation(),
		Trajectories:  s.eng.NumTrajectories(),
		Shards:        s.eng.NumShards(),
		TemporalReady: s.eng.TemporalReady(),
		GPSEnabled:    s.matcher != nil,
	}
	if d := s.eng.Durable(); d != nil {
		ws := d.WALStats()
		resp.Durable = true
		resp.DurableGeneration = ws.Gen
		resp.WALRecords = ws.Records
		resp.RecoveryReplayed = d.ReplayedRecords()
	}
	writeJSON(w, http.StatusOK, resp)
}

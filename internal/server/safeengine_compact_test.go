package server

import (
	"reflect"
	"sync"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// TestSafeEngineCompactOverlay serves a compact snapshot of half the
// workload, streams the other half in through SafeEngine.Append (landing
// in the overlay's mutable tail), and checks the mixed snapshot+tail
// engine answers plain, temporal, top-k, and exact queries identically to
// a flat pointer engine over the full dataset.
func TestSafeEngineCompactOverlay(t *testing.T) {
	w := workload.Generate(workload.Tiny(13))
	full := w.Data
	half := traj.NewDataset(traj.VertexRep)
	n := full.Len()
	for id := 0; id < n/2; id++ {
		tr := full.Get(int32(id))
		half.Add(traj.Trajectory{Path: tr.Path, Times: tr.Times})
	}
	safe := NewSafeEngine(core.NewEngineCompact(half, wed.NewLev()))
	for id := n / 2; id < n; id++ {
		tr := full.Get(int32(id))
		safe.Append(traj.Trajectory{Path: tr.Path, Times: tr.Times})
	}
	if safe.IndexKind() != "compact" {
		t.Fatalf("IndexKind = %q, want compact", safe.IndexKind())
	}
	if safe.NumTrajectories() != n {
		t.Fatalf("NumTrajectories = %d, want %d", safe.NumTrajectories(), n)
	}

	ref := core.NewEngine(full, wed.NewLev())
	q := sampleQuery(t, full, 8, 5)
	tau := safe.Threshold(q, 0.3)

	want, _, err := ref.SearchQuery(core.Query{Q: q, Tau: tau})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := safe.SearchQuery(core.Query{Q: q, Tau: tau})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed snapshot+tail search differs:\n got %v\nwant %v", got, want)
	}

	qr := core.Query{Q: q, Tau: tau}
	qr.Temporal.Mode = core.TemporalDeparture
	qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e9
	wantT, _, err := ref.SearchQuery(qr)
	if err != nil {
		t.Fatal(err)
	}
	gotT, _, err := safe.SearchQuery(qr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotT, wantT) {
		t.Fatal("mixed snapshot+tail departure query differs from flat engine")
	}

	wantK, err := ref.SearchTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := safe.SearchTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotK, wantK) {
		t.Fatal("mixed snapshot+tail top-k differs from flat engine")
	}

	wantN, err := ref.CountExact(q)
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := safe.CountExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("CountExact = %d, want %d", gotN, wantN)
	}
}

// TestSafeEngineCompactConcurrent hammers the compact backend with
// concurrent searchers and appenders: under -race this checks the pooled
// arena cursors and the overlay tail against the wrapper's locking, the
// same acceptance bar the pointer backend passes in
// TestSafeEngineConcurrentAppendSearch.
func TestSafeEngineCompactConcurrent(t *testing.T) {
	w := workload.Generate(workload.Tiny(17))
	safe := NewSafeEngine(core.NewEngineCompact(w.Data, wed.NewLev()))
	q := sampleQuery(t, w.Data, 8, 3)
	tau := safe.Threshold(q, 0.3)

	const (
		searchers = 6
		rounds    = 30
	)
	var wg sync.WaitGroup
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					if _, err := safe.Search(q, tau); err != nil {
						t.Errorf("Search: %v", err)
					}
				case 1:
					qr := core.Query{Q: q, Tau: tau, Parallelism: 2}
					qr.Temporal.Mode = core.TemporalDeparture
					qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e9
					if _, _, err := safe.SearchQuery(qr); err != nil {
						t.Errorf("SearchQuery(departure): %v", err)
					}
				case 2:
					if _, err := safe.SearchTopK(q, 3); err != nil {
						t.Errorf("SearchTopK: %v", err)
					}
				}
			}
		}(g)
	}
	paths := make([]traj.Trajectory, rounds)
	for i := range paths {
		tr := w.Data.Get(int32(i % w.Data.Len()))
		paths[i] = traj.Trajectory{
			Path:  append([]traj.Symbol(nil), tr.Path...),
			Times: append([]float64(nil), tr.Times...),
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tr := range paths {
			safe.Append(tr)
		}
	}()
	wg.Wait()
}

package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrPoolSaturated is returned when a request gives up waiting for a pool
// slot: its context expired while queued, or the pool stayed full past
// the queue-wait bound (overload shedding).
var ErrPoolSaturated = errors.New("server: worker pool saturated")

// workerPool bounds the number of in-flight engine queries. Verification
// is the memory-heavy phase (DP columns, trie nodes per query), so
// admitting an unbounded number of concurrent searches can exhaust memory
// long before the CPU saturates; the pool converts overload into bounded
// queueing and, past queueWait, into a fast ErrPoolSaturated — a shed
// request costs the client one cheap 503 + Retry-After instead of a
// connection pinned behind an unbounded queue.
type workerPool struct {
	sem chan struct{}
	// queueWait bounds how long one acquisition may block (≤ 0 = until
	// the caller's context is done, the pre-shedding behavior).
	queueWait time.Duration

	inFlight atomic.Int64
	waited   atomic.Int64 // acquisitions that had to block
	rejected atomic.Int64 // abandoned acquisitions (shed + ctx-expired)
	shed     atomic.Int64 // rejected specifically by the queue-wait bound
}

// newWorkerPool creates a pool admitting at most size concurrent tasks.
func newWorkerPool(size int, queueWait time.Duration) *workerPool {
	if size < 1 {
		size = 1
	}
	return &workerPool{sem: make(chan struct{}, size), queueWait: queueWait}
}

func (p *workerPool) capacity() int { return cap(p.sem) }

// acquire blocks until a slot frees up, ctx is done, or the queue-wait
// bound sheds the request.
func (p *workerPool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
	default:
		p.waited.Add(1)
		if p.queueWait > 0 {
			t := time.NewTimer(p.queueWait)
			defer t.Stop()
			select {
			case p.sem <- struct{}{}:
			case <-t.C:
				p.shed.Add(1)
				p.rejected.Add(1)
				return ErrPoolSaturated
			case <-ctx.Done():
				p.rejected.Add(1)
				return ErrPoolSaturated
			}
		} else {
			select {
			case p.sem <- struct{}{}:
			case <-ctx.Done():
				p.rejected.Add(1)
				return ErrPoolSaturated
			}
		}
	}
	p.inFlight.Add(1)
	return nil
}

// release frees the slot taken by a successful acquire.
func (p *workerPool) release() {
	p.inFlight.Add(-1)
	<-p.sem
}

// tryAcquireN grabs up to n extra slots without blocking and reports how
// many it got. Queries use the extras as intra-query shard workers, so
// shard parallelism and cross-query concurrency draw from one budget:
// under light load a query fans out across shards, under heavy load the
// extras are unavailable and it degrades to the sequential path instead
// of oversubscribing the machine.
func (p *workerPool) tryAcquireN(n int) int {
	got := 0
	for ; got < n; got++ {
		select {
		case p.sem <- struct{}{}:
		default:
			return got
		}
	}
	return got
}

// releaseN frees n slots taken by tryAcquireN.
func (p *workerPool) releaseN(n int) {
	for i := 0; i < n; i++ {
		<-p.sem
	}
}

// do runs fn inside a pool slot.
func (p *workerPool) do(ctx context.Context, fn func()) error {
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	fn()
	return nil
}

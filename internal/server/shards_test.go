package server

import (
	"net/http/httptest"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// newShardedServer builds a server over a 4-shard engine with the given
// pool size and per-query parallelism target.
func newShardedServer(t *testing.T, maxConcurrent, maxParallelism int) (*Server, *httptest.Server, *workload.Workload) {
	t.Helper()
	w := workload.Generate(workload.Tiny(7))
	eng := core.NewEngineShards(w.Data, wed.NewLev(), 4)
	srv := New(NewSafeEngine(eng), Config{
		CacheSize:      -1, // every request must hit the engine
		MaxConcurrent:  maxConcurrent,
		MaxParallelism: maxParallelism,
		MaxSymbol:      int32(w.Graph.NumVertices()),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, w
}

// TestShardedQueryUsesBudget checks that a query on an idle server fans
// out across shard workers borrowed from the pool, and that /v1/stats
// reports the pipeline shape.
func TestShardedQueryUsesBudget(t *testing.T) {
	srv, ts, w := newShardedServer(t, 8, 3)
	q := sampleQuery(t, w.Data, 6, 3)

	resp, _ := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.3})
	if resp.StatusCode != 200 {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var snap StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &snap)
	if snap.Engine.Shards != 4 {
		t.Fatalf("stats report %d shards, want 4", snap.Engine.Shards)
	}
	// Idle pool of 8 with a target of 3: the query's own slot plus two
	// borrowed extras.
	if snap.Totals.ShardWorkers != 3 {
		t.Fatalf("shard workers = %d, want 3", snap.Totals.ShardWorkers)
	}
	if snap.Totals.ParallelQueries != 1 {
		t.Fatalf("parallel queries = %d, want 1", snap.Totals.ParallelQueries)
	}
	if srv.queryParallelism() != 3 {
		t.Fatalf("queryParallelism = %d, want 3", srv.queryParallelism())
	}
}

// TestShardedQueryDegradesUnderLoad checks the shared-budget contract:
// with a single pool slot there are no extras to borrow, so the query
// runs the sequential path instead of oversubscribing.
func TestShardedQueryDegradesUnderLoad(t *testing.T) {
	_, ts, w := newShardedServer(t, 1, 4)
	q := sampleQuery(t, w.Data, 6, 3)

	resp, _ := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.3})
	if resp.StatusCode != 200 {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var snap StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &snap)
	if snap.Totals.ShardWorkers != 1 {
		t.Fatalf("shard workers = %d, want 1 (pool has a single slot)", snap.Totals.ShardWorkers)
	}
	if snap.Totals.ParallelQueries != 0 {
		t.Fatalf("parallel queries = %d, want 0", snap.Totals.ParallelQueries)
	}
	if snap.Pool.InFlight != 0 {
		t.Fatalf("pool did not drain: %d in flight", snap.Pool.InFlight)
	}
}

// TestShardedServerResultsMatchSequential compares the HTTP answer of a
// parallel sharded server against a sequential one.
func TestShardedServerResultsMatchSequential(t *testing.T) {
	_, par, w := newShardedServer(t, 8, 4)
	_, seq, _ := newShardedServer(t, 8, 1)
	for seed := int64(1); seed <= 3; seed++ {
		q := sampleQuery(t, w.Data, 6, seed)
		body := map[string]any{"q": q, "tau_ratio": 0.3}
		_, gotP := post(t, par.URL+"/v1/search", body)
		_, gotS := post(t, seq.URL+"/v1/search", body)
		if string(gotP["matches"]) != string(gotS["matches"]) || string(gotP["count"]) != string(gotS["count"]) {
			t.Fatalf("seed %d: parallel answer %s (count %s) != sequential %s (count %s)",
				seed, gotP["matches"], gotP["count"], gotS["matches"], gotS["count"])
		}
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"subtraj/internal/traj"
)

func newTestServer(t testing.TB) (*Server, *httptest.Server, []traj.Symbol) {
	t.Helper()
	safe, w := newTestEngine(t)
	srv := New(safe, Config{CacheSize: 16, MaxConcurrent: 4, MaxBatch: 8, MaxK: 10,
		MaxSymbol: int32(w.Graph.NumVertices())})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, sampleQuery(t, w.Data, 6, 3)
}

func post(t testing.TB, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func getJSON(t testing.TB, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointsSuccess(t *testing.T) {
	_, ts, q := newTestServer(t)

	// The query was sampled from the dataset, so every endpoint finds at
	// least its source trajectory.
	for _, tc := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2}},
		{"/v1/topk", map[string]any{"q": q, "k": 3}},
		{"/v1/temporal", map[string]any{"q": q, "tau_ratio": 0.2, "lo": 0.0, "hi": 1e12}},
		{"/v1/temporal", map[string]any{"q": q, "tau_ratio": 0.2, "lo": 0.0, "hi": 1e12, "mode": "departure"}},
		{"/v1/exact", map[string]any{"q": q}},
		{"/v1/count", map[string]any{"q": q}},
	} {
		resp, out := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s %v: status %d, body %v", tc.path, tc.body, resp.StatusCode, out)
		}
		var count int
		if err := json.Unmarshal(out["count"], &count); err != nil {
			t.Fatalf("POST %s: bad count: %v", tc.path, err)
		}
		if count < 1 {
			t.Errorf("POST %s: count = %d, want >= 1", tc.path, count)
		}
	}

	var health map[string]any
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, q := newTestServer(t)
	for _, tc := range []struct {
		path string
		body map[string]any
		want int
	}{
		{"/v1/search", map[string]any{"q": []int{}, "tau": 1.0}, 400},
		{"/v1/search", map[string]any{"q": q}, 400},                               // no tau
		{"/v1/search", map[string]any{"q": q, "tau": 1.0, "tau_ratio": 0.1}, 400}, // both
		{"/v1/search", map[string]any{"q": q, "tau_ratio": 2.0}, 400},             // ratio > 1
		{"/v1/search", map[string]any{"q": q, "tau": 1e18}, 400},                  // τ ≥ wed(ε, Q)
		{"/v1/search", map[string]any{"q": q, "tau": 1.0, "bogus": true}, 400},    // unknown field
		{"/v1/topk", map[string]any{"q": q, "k": 0}, 400},
		{"/v1/topk", map[string]any{"q": q, "k": 9999}, 400},                              // k > MaxK
		{"/v1/temporal", map[string]any{"q": q, "tau_ratio": 0.2, "lo": 5, "hi": 1}, 400}, // empty window
		{"/v1/temporal", map[string]any{"q": q, "tau_ratio": 0.2, "mode": "sideways"}, 400},
		{"/v1/search", map[string]any{"q": []int{-1, 2}, "tau": 1.0}, 400},  // negative symbol
		{"/v1/search", map[string]any{"q": []int{999999}, "tau": 1.0}, 400}, // out of alphabet
		{"/v1/append", map[string]any{"path": []int{}}, 400},
		{"/v1/append", map[string]any{"path": []int{999999}}, 400},                         // out of alphabet
		{"/v1/append", map[string]any{"path": []int{1, 2}, "times": []float64{0}}, 400},    // wrong times len
		{"/v1/append", map[string]any{"path": []int{1, 2}, "times": []float64{5, 1}}, 400}, // decreasing
		{"/v1/batch", map[string]any{"queries": []any{}}, 400},
	} {
		resp, out := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s %v: status %d, want %d (body %v)", tc.path, tc.body, resp.StatusCode, tc.want, out)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("POST %s: error responses must carry an error field, got %v", tc.path, out)
		}
	}

	// Raw malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/search: status %d, want 405", resp.StatusCode)
	}
}

// TestCacheHitAndInvalidation is the acceptance path: a repeated query is
// served from the LRU (observable via /v1/stats), and an append
// invalidates it.
func TestCacheHitAndInvalidation(t *testing.T) {
	_, ts, q := newTestServer(t)
	body := map[string]any{"q": q, "tau_ratio": 0.2}

	var cached bool
	run := func() (bool, int) {
		resp, out := post(t, ts.URL+"/v1/search", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search: status %d", resp.StatusCode)
		}
		var count int
		json.Unmarshal(out["count"], &count)
		json.Unmarshal(out["cached"], &cached)
		return cached, count
	}

	c1, n1 := run()
	if c1 {
		t.Fatal("first query must miss the cache")
	}
	c2, n2 := run()
	if !c2 {
		t.Fatal("identical repeated query must hit the cache")
	}
	if n1 != n2 {
		t.Fatalf("cached count %d != fresh count %d", n2, n1)
	}

	var st StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache.Hits < 1 {
		t.Errorf("stats cache hits = %d, want >= 1", st.Cache.Hits)
	}

	// Append invalidates: same query misses again and may see more matches.
	resp, _ := post(t, ts.URL+"/v1/append", map[string]any{"path": q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", resp.StatusCode)
	}
	c3, n3 := run()
	if c3 {
		t.Fatal("query after append must not be served from the stale cache")
	}
	if n3 < n1+1 {
		t.Errorf("after appending the query itself, count = %d, want >= %d", n3, n1+1)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Cache.Invalidations < 1 {
		t.Errorf("stats cache invalidations = %d, want >= 1", st.Cache.Invalidations)
	}
	if st.Engine.Generation != 1 {
		t.Errorf("engine generation = %d, want 1", st.Engine.Generation)
	}
	// The τ-banded verification counters flow through to /v1/stats.
	if st.Totals.StepDPCalls > 0 {
		if st.Totals.CellsAvailable <= 0 || st.Totals.CellsComputed <= 0 ||
			st.Totals.CellsComputed > st.Totals.CellsAvailable {
			t.Errorf("band cell counters inconsistent: computed=%d available=%d",
				st.Totals.CellsComputed, st.Totals.CellsAvailable)
		}
		if st.Totals.BandRatio <= 0 || st.Totals.BandRatio > 1 {
			t.Errorf("band ratio out of range: %v", st.Totals.BandRatio)
		}
	}
}

func TestBatch(t *testing.T) {
	_, ts, q := newTestServer(t)
	batch := map[string]any{"queries": []map[string]any{
		{"kind": "search", "q": q, "tau_ratio": 0.2},
		{"kind": "count", "q": q},
		{"kind": "topk", "q": q, "k": 2},
		{"kind": "search", "q": q}, // invalid: no tau — must fail alone
	}}
	resp, out := post(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %v", resp.StatusCode, out)
	}
	var results []struct {
		Count  int    `json:"count"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i := 0; i < 3; i++ {
		if results[i].Error != "" {
			t.Errorf("result %d: unexpected error %q", i, results[i].Error)
		}
		if results[i].Count < 1 {
			t.Errorf("result %d: count = %d, want >= 1", i, results[i].Count)
		}
	}
	if results[3].Error == "" {
		t.Error("result 3 (no tau) should have failed")
	}

	// Oversized batch is rejected outright.
	big := make([]map[string]any, 9)
	for i := range big {
		big[i] = map[string]any{"kind": "count", "q": q}
	}
	resp, _ = post(t, ts.URL+"/v1/batch", map[string]any{"queries": big})
	if resp.StatusCode != 400 {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentHTTP hammers the HTTP layer itself (run under -race):
// mixed search/append/batch/stats traffic against one server.
func TestConcurrentHTTP(t *testing.T) {
	_, ts, q := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 4 {
				case 0:
					resp, _ := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2})
					if resp.StatusCode != 200 {
						t.Errorf("search: %d", resp.StatusCode)
					}
				case 1:
					resp, _ := post(t, ts.URL+"/v1/append", map[string]any{"path": q})
					if resp.StatusCode != 200 {
						t.Errorf("append: %d", resp.StatusCode)
					}
				case 2:
					resp, _ := post(t, ts.URL+"/v1/batch", map[string]any{"queries": []map[string]any{
						{"kind": "count", "q": q}, {"kind": "exact", "q": q},
					}})
					if resp.StatusCode != 200 {
						t.Errorf("batch: %d", resp.StatusCode)
					}
				case 3:
					var st StatsSnapshot
					getJSON(t, ts.URL+"/v1/stats", &st)
				}
			}
		}(g)
	}
	wg.Wait()

	var st StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Requests.Errors)
	}
	if st.Pool.InFlight != 0 {
		t.Errorf("in-flight = %d after quiesce, want 0", st.Pool.InFlight)
	}
	if st.Engine.Generation != uint64(st.Requests.Append) {
		t.Errorf("generation %d != appends %d", st.Engine.Generation, st.Requests.Append)
	}
}

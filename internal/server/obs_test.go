package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/obs"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// newObsServer builds a server over a workload big enough that searches
// take real (sub-millisecond-plus) time, so span-sum checks are not
// dominated by microsecond rounding. The engine has 4 shards so the same
// helper covers sequential and sharded paths via cfg.MaxParallelism.
func newObsServer(t testing.TB, cfg Config) (*Server, *httptest.Server, []traj.Symbol) {
	t.Helper()
	w := workload.Generate(workload.Config{
		Name: "obs", GridRows: 20, GridCols: 20, NumTrajectories: 900,
		TargetLen: 70, Seed: 11, Horizon: 86400, SpeedMean: 11,
	})
	eng := core.NewEngineShards(w.Data, wed.NewLev(), 4)
	cfg.MaxSymbol = int32(w.Graph.NumVertices())
	srv := New(NewSafeEngine(eng), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	q, err := workload.SampleQuery(w.Data, 18, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return srv, ts, q
}

// searchTrace runs one ?debug=trace search and returns its span tree.
func searchTrace(t *testing.T, url string, q []traj.Symbol) *obs.SpanJSON {
	t.Helper()
	resp, out := post(t, url+"/v1/search?debug=trace", map[string]any{"q": q, "tau_ratio": 0.35})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d, body %v", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	raw, ok := out["trace"]
	if !ok {
		t.Fatal("?debug=trace response has no trace field")
	}
	var tree obs.SpanJSON
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return &tree
}

// spanSumErr checks the acceptance contract on one trace: the root's
// direct children are sequential wall spans whose durations sum to the
// root's within 5%.
func spanSumErr(tree *obs.SpanJSON) error {
	var sum int64
	names := make([]string, 0, len(tree.Children))
	for _, c := range tree.Children {
		sum += c.DurUS
		names = append(names, c.Name)
	}
	if tree.DurUS <= 0 {
		return fmt.Errorf("root span has no duration: %+v", tree)
	}
	diff := tree.DurUS - sum
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(tree.DurUS) {
		return fmt.Errorf("top-level spans %v sum to %dµs, root is %dµs (diff %dµs > 5%%)",
			names, sum, tree.DurUS, diff)
	}
	return nil
}

// checkSpanSum asserts spanSumErr over a few attempts: on a loaded
// single-CPU test box the goroutine can lose the processor for tens of
// microseconds between spans, so one trace is allowed to be unlucky —
// but the contract must hold within three.
func checkSpanSum(t *testing.T, ts string, q []traj.Symbol) *obs.SpanJSON {
	t.Helper()
	var tree *obs.SpanJSON
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		tree = searchTrace(t, ts, q)
		if err = spanSumErr(tree); err == nil {
			break
		}
		t.Logf("attempt %d: %v", attempt+1, err)
	}
	if err != nil {
		t.Error(err)
	}
	names := make([]string, 0, len(tree.Children))
	for _, c := range tree.Children {
		names = append(names, c.Name)
	}
	for _, want := range []string{"decode", "cache_lookup", "pool_wait", "engine"} {
		if findChild(tree, want) == nil {
			t.Errorf("trace has no top-level %q span (got %v)", want, names)
		}
	}
	return tree
}

func findChild(s *obs.SpanJSON, name string) *obs.SpanJSON {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestTraceSpansSumSequential(t *testing.T) {
	_, ts, q := newObsServer(t, Config{CacheSize: -1, MaxConcurrent: 4, MaxParallelism: 1})
	tree := checkSpanSum(t, ts.URL, q)
	eng := findChild(tree, "engine")
	if eng == nil {
		t.Fatal("no engine span")
	}
	if par, _ := eng.Attrs["parallelism"].(float64); par != 1 {
		t.Errorf("sequential path reports parallelism %v, want 1", eng.Attrs["parallelism"])
	}
	// The QueryStats stages hang under the engine span as work spans,
	// each tagged with the worker count its durations were summed over.
	for _, stage := range []string{"filter", "verify"} {
		sp := findChild(eng, stage)
		if sp == nil {
			t.Errorf("engine span has no %q child", stage)
			continue
		}
		if _, ok := sp.Attrs["workers"]; !ok {
			t.Errorf("%s span has no workers attr", stage)
		}
	}
}

func TestTraceSpansSumSharded(t *testing.T) {
	_, ts, q := newObsServer(t, Config{CacheSize: -1, MaxConcurrent: 8, MaxParallelism: 4})
	tree := checkSpanSum(t, ts.URL, q)
	eng := findChild(tree, "engine")
	if eng == nil {
		t.Fatal("no engine span")
	}
	if par, _ := eng.Attrs["parallelism"].(float64); par < 2 {
		t.Errorf("sharded path reports parallelism %v, want >= 2 (idle pool, 4 shards)", eng.Attrs["parallelism"])
	}
}

func TestTraceCacheHitSpan(t *testing.T) {
	_, ts, q := newObsServer(t, Config{CacheSize: 16, MaxConcurrent: 4})
	searchTrace(t, ts.URL, q)                 // populate
	tree := searchTrace(t, ts.URL, q)         // hit
	lookup := findChild(tree, "cache_lookup") // hit attr set on the lookup span
	if lookup == nil {
		t.Fatal("no cache_lookup span")
	}
	if hit, _ := lookup.Attrs["hit"].(bool); !hit {
		t.Errorf("second identical query: cache_lookup attrs = %v, want hit=true", lookup.Attrs)
	}
	if findChild(tree, "engine") != nil {
		t.Error("cache-hit trace still has an engine span")
	}
}

// --- /metrics exposition --------------------------------------------------

// expositionLine matches any valid line of the Prometheus text format.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*` + // comment
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+` + // sample
		`)$`)

// scrapeMetrics fetches /metrics, validates every line, and returns the
// samples keyed by full series name (name plus rendered labels).
func scrapeMetrics(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// bucketQuantile re-derives a quantile from scraped _bucket samples the
// same way obs.Histogram.Quantile does, so /metrics and /v1/stats can be
// cross-checked through the wire format.
func bucketQuantile(samples map[string]float64, name, labels string, q float64) float64 {
	type bk struct{ le, cum float64 }
	var bks []bk
	prefix := name + "_bucket{" + labels
	for series, v := range samples {
		if !strings.HasPrefix(series, prefix) {
			continue
		}
		le := series[strings.Index(series, `le="`)+4:]
		le = le[:strings.IndexByte(le, '"')]
		if le == "+Inf" {
			continue
		}
		f, _ := strconv.ParseFloat(le, 64)
		bks = append(bks, bk{le: f, cum: v})
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	total := samples[name+"_count{"+labels+"}"]
	if total == 0 {
		return 0
	}
	rank := q * total
	prevCum, lo := 0.0, 0.0
	for _, b := range bks {
		if b.cum >= rank {
			c := b.cum - prevCum
			if c == 0 {
				return b.le
			}
			return lo + (b.le-lo)*(rank-prevCum)/c
		}
		prevCum, lo = b.cum, b.le
	}
	return bks[len(bks)-1].le
}

func TestMetricsMatchStats(t *testing.T) {
	_, ts, q := newObsServer(t, Config{CacheSize: 16, MaxConcurrent: 4})
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.35})
	}
	post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.35}) // cache hit
	post(t, ts.URL+"/v1/topk", map[string]any{"q": q, "k": 3})

	var stats StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &stats)
	samples := scrapeMetrics(t, ts.URL)

	near := func(name string, got, want float64) {
		t.Helper()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9+1e-9*want {
			t.Errorf("%s: /metrics has %g, /v1/stats has %g", name, got, want)
		}
	}
	near("band_ratio", samples["subtraj_band_ratio"], stats.Totals.BandRatio)
	near("reused_ratio", samples["subtraj_topk_reused_ratio"], stats.Totals.ReusedRatio)
	near("cache_hit_ratio", samples["subtraj_cache_hit_ratio"], stats.Cache.HitRatio)
	near("requests search", samples[`subtraj_requests_total{endpoint="search"}`], float64(stats.Requests.Search))
	near("executed", samples["subtraj_queries_executed_total"], float64(stats.Totals.Executed))
	near("cache hits", samples["subtraj_cache_hits_total"], float64(stats.Cache.Hits))
	near("generation", samples["subtraj_engine_generation"], float64(stats.Engine.Generation))

	lat, ok := stats.Latency["search"]
	if !ok {
		t.Fatal("/v1/stats has no latency block for search")
	}
	if lat.Count != stats.Requests.Search {
		t.Errorf("latency count %d != search requests %d (cache hits must be recorded)", lat.Count, stats.Requests.Search)
	}
	labels := `endpoint="search"`
	for _, pq := range []struct {
		q    float64
		want float64
	}{{0.50, lat.P50MS}, {0.99, lat.P99MS}} {
		got := bucketQuantile(samples, "subtraj_request_duration_seconds", labels, pq.q) * 1e3
		diff := got - pq.want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-6+1e-6*pq.want {
			t.Errorf("p%d from /metrics buckets = %gms, /v1/stats reports %gms", int(pq.q*100), got, pq.want)
		}
	}
}

func TestMetricsExpositionWellFormed(t *testing.T) {
	_, ts, q := newObsServer(t, Config{CacheSize: 16, MaxConcurrent: 4})
	post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.35})
	samples := scrapeMetrics(t, ts.URL)
	for _, family := range []string{
		"subtraj_requests_total", "subtraj_request_errors_total",
		"subtraj_queries_executed_total", "subtraj_band_ratio",
		"subtraj_topk_reused_ratio", "subtraj_cache_hits_total",
		"subtraj_cache_hit_ratio", "subtraj_pool_capacity",
		"subtraj_engine_generation", "subtraj_uptime_seconds",
		"subtraj_verifier_pool_gets_total",
	} {
		found := false
		for series := range samples {
			if series == family || strings.HasPrefix(series, family+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/metrics is missing family %s", family)
		}
	}
	// Histogram invariants on the wire: buckets cumulative (monotone in
	// le) and _count equal to the +Inf bucket.
	labels := `endpoint="search"`
	inf := samples[`subtraj_request_duration_seconds_bucket{`+labels+`,le="+Inf"}`]
	count := samples["subtraj_request_duration_seconds_count{"+labels+"}"]
	if inf != count || count < 1 {
		t.Errorf("search histogram: +Inf bucket %g, _count %g, want equal and >= 1", inf, count)
	}
}

func TestMetricsDisabled(t *testing.T) {
	_, ts, q := newObsServer(t, Config{CacheSize: 16, MaxConcurrent: 4, DisableMetrics: true})
	resp, out := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.35})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search with metrics disabled: status %d, body %v", resp.StatusCode, out)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("disabled /metrics: status %d, %d bytes, want 200 and empty", mresp.StatusCode, len(body))
	}
	var stats StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Latency != nil {
		t.Errorf("disabled metrics still report latency block: %v", stats.Latency)
	}
}

// TestMetricsConcurrentHammer scrapes /metrics while searches, appends,
// and batches are in flight; under -race this is the acceptance test for
// the lock-free registry wiring. Afterward the scrape must still be
// well-formed and the request counters must equal the traffic sent.
func TestMetricsConcurrentHammer(t *testing.T) {
	_, ts, q := newObsServer(t, Config{
		CacheSize: 16, MaxConcurrent: 8, SlowQuery: 1,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	const workers, iters = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0:
					post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.3})
				case 1:
					post(t, ts.URL+"/v1/append", map[string]any{"path": q})
				case 2:
					post(t, ts.URL+"/v1/batch", map[string]any{
						"queries": []map[string]any{
							{"kind": "count", "q": q},
							{"kind": "topk", "q": q, "k": 2},
						},
					})
				case 3:
					scrapeMetrics(t, ts.URL)
					getJSON(t, ts.URL+"/v1/debug/traces", &struct{}{})
				}
			}
		}(w)
	}
	wg.Wait()
	samples := scrapeMetrics(t, ts.URL)
	if got := samples[`subtraj_requests_total{endpoint="search"}`]; got != iters {
		t.Errorf("search counter = %g after hammer, want %d", got, iters)
	}
	if got := samples[`subtraj_requests_total{endpoint="append"}`]; got != iters {
		t.Errorf("append counter = %g after hammer, want %d", got, iters)
	}
	if got := samples["subtraj_engine_generation"]; got != iters {
		t.Errorf("generation gauge = %g, want %d", got, iters)
	}
}

// --- slow-query log and debug ring ----------------------------------------

// lockedBuffer lets the slog handler race the test's reads safely.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowQueryLogAndRing(t *testing.T) {
	var logBuf lockedBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	// A 1ns threshold makes every request slow, so the ring and log fill
	// deterministically.
	_, ts, q := newObsServer(t, Config{
		CacheSize: -1, MaxConcurrent: 4,
		SlowQuery: time.Nanosecond, TraceBuffer: 4, Logger: logger,
	})
	resp, _ := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.35})
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("no X-Request-ID on response")
	}

	var ring debugTracesResponse
	getJSON(t, ts.URL+"/v1/debug/traces", &ring)
	if ring.Capacity != 4 {
		t.Errorf("ring capacity = %d, want 4", ring.Capacity)
	}
	var rec *obs.TraceRecord
	for i := range ring.Traces {
		if ring.Traces[i].RequestID == reqID {
			rec = &ring.Traces[i]
		}
	}
	if rec == nil {
		t.Fatalf("request %s not retained in /v1/debug/traces (%d records)", reqID, len(ring.Traces))
	}
	if rec.Endpoint != "search" || rec.Trace == nil || rec.DurUS <= 0 {
		t.Errorf("retained record incomplete: %+v", rec)
	}
	if findChild(rec.Trace, "engine") == nil {
		t.Error("retained trace has no engine span")
	}

	logged := logBuf.String()
	if !strings.Contains(logged, "slow query") || !strings.Contains(logged, reqID) {
		t.Errorf("slow-query log missing entry for %s: %q", reqID, logged)
	}
	if !strings.Contains(logged, "breakdown=") {
		t.Errorf("slow-query log has no span breakdown: %q", logged)
	}

	var stats StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Requests.Slow < 1 {
		t.Errorf("stats report %d slow requests, want >= 1", stats.Requests.Slow)
	}
}

func TestSlowQueryDisabled(t *testing.T) {
	var logBuf lockedBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	_, ts, q := newObsServer(t, Config{
		CacheSize: -1, MaxConcurrent: 4,
		SlowQuery: -1, TraceBuffer: -1, Logger: logger,
	})
	post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.35})
	var ring debugTracesResponse
	getJSON(t, ts.URL+"/v1/debug/traces", &ring)
	if len(ring.Traces) != 0 || ring.Capacity != 0 {
		t.Errorf("disabled ring still retains traces: %+v", ring)
	}
	if logged := logBuf.String(); logged != "" {
		t.Errorf("disabled slow-query log still wrote: %q", logged)
	}
}

// --- healthz --------------------------------------------------------------

func TestHealthzFields(t *testing.T) {
	srv, ts, q := newObsServer(t, Config{CacheSize: 16, MaxConcurrent: 4})
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.Trajectories != srv.eng.NumTrajectories() || h.Shards != 4 {
		t.Errorf("healthz engine shape = %d trajectories / %d shards, want %d / 4",
			h.Trajectories, h.Shards, srv.eng.NumTrajectories())
	}
	if h.Generation != 0 {
		t.Errorf("fresh server generation = %d, want 0", h.Generation)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %g", h.UptimeSeconds)
	}
	if h.GPSEnabled {
		t.Error("gps_enabled = true on a matcher-less server")
	}

	post(t, ts.URL+"/v1/append", map[string]any{"path": q})
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Generation != 1 {
		t.Errorf("generation after append = %d, want 1", h.Generation)
	}

	// A departure-mode query forces the temporal index build, after which
	// /healthz must report temporal_ready.
	post(t, ts.URL+"/v1/temporal", map[string]any{
		"q": q, "tau_ratio": 0.3, "lo": 0.0, "hi": 1e12, "mode": "departure",
	})
	getJSON(t, ts.URL+"/healthz", &h)
	if !h.TemporalReady {
		t.Error("temporal_ready = false after a departure query built the index")
	}
}

// --- overhead benchmark ---------------------------------------------------

// BenchmarkServeSearch measures the full request path (trace middleware,
// histograms, spans) with the registry enabled vs the nil-handle no-op
// baseline — the acceptance bar is <3% overhead.
func BenchmarkServeSearch(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "metrics=on"
		if disabled {
			name = "metrics=off"
		}
		b.Run(name, func(b *testing.B) {
			srv, _, q := newObsServer(b, Config{
				CacheSize: -1, MaxConcurrent: 4, MaxParallelism: 1,
				DisableMetrics: disabled, SlowQuery: -1, TraceBuffer: -1,
			})
			body, _ := json.Marshal(map[string]any{"q": q, "tau_ratio": 0.35})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					b.Fatalf("status %d: %s", w.Code, w.Body.String())
				}
			}
		})
	}
}

package server

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/mapmatch"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// newGoldenServer builds a GPS-enabled server over the golden fixture:
// engine on the golden dataset (Lev costs), matcher on the golden grid.
func newGoldenServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	eng := core.NewEngine(testutil.GoldenDataset(), wed.NewLev())
	srv := New(NewSafeEngine(eng), Config{
		CacheSize:     16,
		MaxConcurrent: 4,
		MaxSymbol:     int32(testutil.GoldenRows * testutil.GoldenCols),
		Matcher:       mapmatch.New(testutil.GoldenNet(), mapmatch.Config{MaxGap: 300}),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// goldenTrace samples a noisy GPS trace of one golden path.
func goldenTrace(sigma float64, pathIdx int, seed int64) ([][2]float64, []traj.Symbol) {
	g := testutil.GoldenNet()
	truth := testutil.GoldenPaths()[pathIdx]
	tr := workload.GenerateTrace(g, truth, workload.GPSConfig{NoiseSigma: sigma, SampleSpacing: 50},
		rand.New(rand.NewSource(seed)))
	pts := make([][2]float64, len(tr.Points))
	for i, p := range tr.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	return pts, truth
}

func TestMatchEndpoint(t *testing.T) {
	_, ts := newGoldenServer(t)
	trace, truth := goldenTrace(10, 2, 1)
	resp, out := post(t, ts.URL+"/v1/match", map[string]any{"trace": trace})
	if resp.StatusCode != 200 {
		t.Fatalf("match: status %d, body %v", resp.StatusCode, out)
	}
	var segs []struct {
		Symbols    []traj.Symbol `json:"symbols"`
		First      int           `json:"first"`
		Last       int           `json:"last"`
		Confidence float64       `json:"confidence"`
	}
	if err := json.Unmarshal(out["segments"], &segs); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	if segs[0].First != 0 || segs[0].Last != len(trace)-1 {
		t.Errorf("segment covers [%d,%d], want [0,%d]", segs[0].First, segs[0].Last, len(trace)-1)
	}
	if len(segs[0].Symbols) != len(truth) {
		t.Fatalf("matched %d symbols, want the %d-vertex truth (got %v)", len(segs[0].Symbols), len(truth), segs[0].Symbols)
	}
	for i := range truth {
		if segs[0].Symbols[i] != truth[i] {
			t.Fatalf("symbol %d = %d, want %d", i, segs[0].Symbols[i], truth[i])
		}
	}
	var conf float64
	json.Unmarshal(out["confidence"], &conf)
	if conf <= 0.5 || conf > 1 {
		t.Errorf("confidence %g implausible for σ=10", conf)
	}
}

func TestIngestEndpoint(t *testing.T) {
	srv, ts := newGoldenServer(t)
	clean, truth := goldenTrace(8, 0, 2)
	// A teleporting trace (two distant golden paths concatenated — the
	// straight run ends >400 m from the U-shape's start, past MaxGap)
	// splits.
	a, _ := goldenTrace(8, 0, 3)
	b, _ := goldenTrace(8, 3, 4)
	teleport := append(append([][2]float64{}, a...), b...)

	resp, out := post(t, ts.URL+"/v1/ingest", map[string]any{
		"traces": []any{clean, teleport, [][2]float64{}},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: status %d, body %v", resp.StatusCode, out)
	}
	var results []struct {
		IDs        []int32 `json:"ids"`
		Confidence float64 `json:"confidence"`
		Splits     int     `json:"splits"`
		Error      string  `json:"error"`
	}
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Error != "" || len(results[0].IDs) != 1 {
		t.Fatalf("clean trace: %+v, want one appended segment", results[0])
	}
	if results[1].Error != "" || len(results[1].IDs) != 2 || results[1].Splits != 1 {
		t.Fatalf("teleport trace: %+v, want two appended segments from one split", results[1])
	}
	if results[2].Error == "" {
		t.Fatal("empty trace must fail alone")
	}
	var appended int
	json.Unmarshal(out["appended"], &appended)
	if appended != 3 {
		t.Errorf("appended = %d, want 3", appended)
	}
	if gen := srv.Engine().Generation(); gen != 3 {
		t.Errorf("generation = %d, want 3", gen)
	}

	// The ingested clean trace is now findable by its ground-truth path.
	resp, out = post(t, ts.URL+"/v1/exact", map[string]any{"q": truth})
	if resp.StatusCode != 200 {
		t.Fatalf("exact: status %d", resp.StatusCode)
	}
	var count int
	json.Unmarshal(out["count"], &count)
	if count < 2 { // original golden trajectory + ingested copy
		t.Errorf("exact count = %d, want ≥ 2 after ingest", count)
	}

	// Stats reflect the pipeline.
	st := srv.Snapshot()
	if !st.GPS.Enabled {
		t.Error("GPS.Enabled = false on a matcher-equipped server")
	}
	if st.GPS.TracesMatched != 2 || st.GPS.TracesFailed != 0 || st.GPS.TracesSplit != 1 {
		t.Errorf("GPS counters matched=%d failed=%d split=%d, want 2/0/1",
			st.GPS.TracesMatched, st.GPS.TracesFailed, st.GPS.TracesSplit)
	}
	if st.GPS.SegmentsAppended != 3 {
		t.Errorf("segments appended = %d, want 3", st.GPS.SegmentsAppended)
	}
	if st.GPS.MatchNS <= 0 || st.GPS.MeanMatchNS <= 0 {
		t.Errorf("match latency counters not recorded: total=%d mean=%d", st.GPS.MatchNS, st.GPS.MeanMatchNS)
	}
	if st.Requests.Ingest != 1 {
		t.Errorf("ingest requests = %d, want 1", st.Requests.Ingest)
	}
}

// TestTraceSearchEquivalence is the end-to-end acceptance check: at
// σ=10 m, querying /v1/search with a raw trace returns the identical
// match set — bit-equal WEDs — as querying with that trace's ground-truth
// symbols, for search and topk kinds, and the two share cache entries.
func TestTraceSearchEquivalence(t *testing.T) {
	_, ts := newGoldenServer(t)
	trace, truth := goldenTrace(10, 2, 5)

	type matchRow struct {
		ID  int32   `json:"id"`
		S   int32   `json:"s"`
		T   int32   `json:"t"`
		WED float64 `json:"wed"`
	}
	run := func(path string, body map[string]any) ([]matchRow, map[string]json.RawMessage) {
		resp, out := post(t, ts.URL+path, body)
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s %v: status %d, body %v", path, body, resp.StatusCode, out)
		}
		var ms []matchRow
		if out["matches"] != nil {
			if err := json.Unmarshal(out["matches"], &ms); err != nil {
				t.Fatal(err)
			}
		}
		return ms, out
	}

	for _, tc := range []struct {
		path string
		base map[string]any
	}{
		{"/v1/search", map[string]any{"tau_ratio": 0.3}},
		{"/v1/topk", map[string]any{"k": 3}},
	} {
		symBody := map[string]any{}
		traceBody := map[string]any{}
		for k, v := range tc.base {
			symBody[k] = v
			traceBody[k] = v
		}
		symBody["q"] = truth
		traceBody["trace"] = trace

		bySym, _ := run(tc.path, symBody)
		byTrace, out := run(tc.path, traceBody)
		if len(bySym) == 0 {
			t.Fatalf("%s: symbol query found nothing", tc.path)
		}
		if len(byTrace) != len(bySym) {
			t.Fatalf("%s: trace query found %d matches, symbols found %d", tc.path, len(byTrace), len(bySym))
		}
		for i := range bySym {
			if bySym[i] != byTrace[i] {
				t.Fatalf("%s match %d: trace %+v != symbols %+v (WEDs must be bit-equal)",
					tc.path, i, byTrace[i], bySym[i])
			}
		}
		// The trace resolved to exactly the ground-truth symbols...
		var resolved []traj.Symbol
		json.Unmarshal(out["resolved_q"], &resolved)
		if len(resolved) != len(truth) {
			t.Fatalf("%s: resolved_q = %v, want truth %v", tc.path, resolved, truth)
		}
		for i := range truth {
			if resolved[i] != truth[i] {
				t.Fatalf("%s: resolved_q[%d] = %d, want %d", tc.path, i, resolved[i], truth[i])
			}
		}
		// ...so the trace query was served from the symbol query's cache
		// entry: one shared key for both forms.
		var cached bool
		json.Unmarshal(out["cached"], &cached)
		if !cached {
			t.Errorf("%s: trace query after identical symbol query must hit the shared cache", tc.path)
		}
	}
}

func TestGPSValidation(t *testing.T) {
	_, ts := newGoldenServer(t)
	trace, truth := goldenTrace(10, 0, 6)
	for _, tc := range []struct {
		path string
		body map[string]any
		want int
	}{
		{"/v1/match", map[string]any{"trace": [][2]float64{}}, 400},
		{"/v1/match", map[string]any{"trace": []any{[]float64{120}}}, 400},          // missing y
		{"/v1/match", map[string]any{"trace": []any{[]float64{120, 95, 1e9}}}, 400}, // [x,y,t] triple
		{"/v1/search", map[string]any{"trace": trace, "q": truth, "tau_ratio": 0.2}, 400}, // both q and trace
		{"/v1/search", map[string]any{"trace": trace}, 400},                               // no tau
		{"/v1/ingest", map[string]any{"traces": []any{}}, 400},
	} {
		resp, out := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s: status %d, want %d (body %v)", tc.path, resp.StatusCode, tc.want, out)
		}
	}
}

func TestGPSDisabled(t *testing.T) {
	// Servers built without a matcher answer the GPS surface with 501.
	_, ts, q := newTestServer(t)
	_ = q
	trace := [][2]float64{{0, 0}, {100, 0}}
	for _, tc := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/match", map[string]any{"trace": trace}},
		{"/v1/ingest", map[string]any{"traces": []any{trace}}},
		{"/v1/search", map[string]any{"trace": trace, "tau_ratio": 0.2}},
	} {
		resp, out := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != 501 {
			t.Errorf("POST %s without matcher: status %d, want 501 (body %v)", tc.path, resp.StatusCode, out)
		}
	}
	// Stats report the surface as disabled.
	var st StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.GPS.Enabled {
		t.Error("GPS.Enabled = true on a matcher-less server")
	}
}

// TestConcurrentGPSTraffic extends the -race hammer to the GPS surface:
// concurrent /v1/ingest, /v1/search in both trace and symbol forms,
// /v1/append, and /v1/stats against one server. Afterwards the cache
// generation and the stats counters must be mutually consistent.
func TestConcurrentGPSTraffic(t *testing.T) {
	srv, ts := newGoldenServer(t)
	paths := testutil.GoldenPaths()

	const (
		workers = 6
		rounds  = 10
	)
	traces := make([][][2]float64, workers*rounds)
	for i := range traces {
		traces[i], _ = goldenTrace(8, i%len(paths), int64(100+i))
	}
	var ingested, appended, traceSearches atomic64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (g + i) % 4 {
				case 0:
					resp, out := post(t, ts.URL+"/v1/ingest", map[string]any{
						"traces": []any{traces[g*rounds+i]},
					})
					if resp.StatusCode != 200 {
						t.Errorf("ingest: status %d, body %v", resp.StatusCode, out)
						return
					}
					ingested.add(1)
				case 1:
					resp, _ := post(t, ts.URL+"/v1/search", map[string]any{
						"trace": traces[g*rounds+i], "tau_ratio": 0.2,
					})
					if resp.StatusCode != 200 {
						t.Errorf("trace search: status %d", resp.StatusCode)
						return
					}
					traceSearches.add(1)
				case 2:
					resp, _ := post(t, ts.URL+"/v1/search", map[string]any{
						"q": paths[i%len(paths)], "tau_ratio": 0.2,
					})
					if resp.StatusCode != 200 {
						t.Errorf("symbol search: status %d", resp.StatusCode)
						return
					}
				case 3:
					resp, _ := post(t, ts.URL+"/v1/append", map[string]any{
						"path": paths[(g+i)%len(paths)],
					})
					if resp.StatusCode != 200 {
						t.Errorf("append: status %d", resp.StatusCode)
						return
					}
					appended.add(1)
					var st StatsSnapshot
					getJSON(t, ts.URL+"/v1/stats", &st)
				}
			}
		}(g)
	}
	wg.Wait()

	st := srv.Snapshot()
	if st.Requests.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Requests.Errors)
	}
	if st.Pool.InFlight != 0 {
		t.Errorf("in-flight = %d after quiesce, want 0", st.Pool.InFlight)
	}
	// Golden traces at σ=8 never split, so every ingested trace appended
	// exactly one segment, and the generation counts appends of both
	// kinds exactly.
	if st.GPS.SegmentsAppended != ingested.load() {
		t.Errorf("segments appended = %d, want %d (one per ingested trace)",
			st.GPS.SegmentsAppended, ingested.load())
	}
	if want := uint64(appended.load() + ingested.load()); st.Engine.Generation != want {
		t.Errorf("generation = %d, want %d (appends + ingested segments)", st.Engine.Generation, want)
	}
	if st.GPS.TracesFailed != 0 {
		t.Errorf("traces failed = %d, want 0", st.GPS.TracesFailed)
	}
	if want := ingested.load() + traceSearches.load(); st.GPS.TracesMatched != want {
		t.Errorf("traces matched = %d, want %d", st.GPS.TracesMatched, want)
	}
	if st.GPS.TraceQueries != traceSearches.load() {
		t.Errorf("trace queries = %d, want %d", st.GPS.TraceQueries, traceSearches.load())
	}
	if st.Engine.Trajectories != 4+int(st.Engine.Generation) {
		t.Errorf("trajectories = %d, want %d", st.Engine.Trajectories, 4+int(st.Engine.Generation))
	}

	// After the dust settles, a cached repeat must agree with a fresh run
	// (generation tagging kept stale entries out).
	q := paths[0]
	_, out1 := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2})
	_, out2 := post(t, ts.URL+"/v1/search", map[string]any{"q": q, "tau_ratio": 0.2})
	var c1, c2 int
	json.Unmarshal(out1["count"], &c1)
	json.Unmarshal(out2["count"], &c2)
	if c1 != c2 {
		t.Errorf("cached count %d != fresh count %d", c2, c1)
	}
}

// atomic64 is a tiny test-local counter (avoids importing sync/atomic's
// full surface into assertions).
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

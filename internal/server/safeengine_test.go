package server

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// newTestEngine builds a small engine over the tiny synthetic workload
// with Levenshtein costs (alphabet-agnostic, so appends of arbitrary
// vertex paths are always valid).
func newTestEngine(t testing.TB) (*SafeEngine, *workload.Workload) {
	t.Helper()
	w := workload.Generate(workload.Tiny(7))
	eng := core.NewEngine(w.Data, wed.NewLev())
	return NewSafeEngine(eng), w
}

func sampleQuery(t testing.TB, ds *traj.Dataset, qlen int, seed int64) []traj.Symbol {
	t.Helper()
	q, err := workload.SampleQuery(ds, qlen, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("SampleQuery: %v", err)
	}
	return q
}

// TestSafeEngineConcurrentAppendSearch hammers the wrapper with
// concurrent appends and every query kind. Run under -race this is the
// acceptance test for the synchronization design: the unwrapped engine
// fails it immediately.
func TestSafeEngineConcurrentAppendSearch(t *testing.T) {
	safe, w := newTestEngine(t)
	q := sampleQuery(t, w.Data, 8, 1)
	tau := safe.Threshold(q, 0.3)

	const (
		searchers = 8
		appenders = 3
		rounds    = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0:
					if _, err := safe.Search(q, tau); err != nil {
						t.Errorf("Search: %v", err)
					}
				case 1:
					if _, err := safe.SearchTopK(q, 3); err != nil {
						t.Errorf("SearchTopK: %v", err)
					}
				case 2:
					qr := core.Query{Q: q, Tau: tau}
					qr.Temporal.Mode = core.TemporalDeparture
					qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e9
					if _, _, err := safe.SearchQuery(qr); err != nil {
						t.Errorf("SearchQuery(departure): %v", err)
					}
				case 3:
					if _, err := safe.SearchExact(q); err != nil {
						t.Errorf("SearchExact: %v", err)
					}
				case 4:
					if _, err := safe.CountExact(q); err != nil {
						t.Errorf("CountExact: %v", err)
					}
				}
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(99))
	paths := make([][]traj.Symbol, appenders*rounds)
	for i := range paths {
		paths[i] = append([]traj.Symbol(nil), w.Data.Path(int32(rng.Intn(w.Data.Len())))...)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				safe.Append(traj.Trajectory{Path: paths[g*rounds+i]})
			}
		}(g)
	}
	wg.Wait()

	if got, want := safe.Generation(), uint64(appenders*rounds); got != want {
		t.Errorf("Generation = %d, want %d", got, want)
	}
	if got, want := safe.NumTrajectories(), 60+appenders*rounds; got != want {
		t.Errorf("NumTrajectories = %d, want %d", got, want)
	}
}

// TestTemporalSearchUnderAppendLoad is the liveness regression test for
// temporal queries under a sustained append stream. Under the old
// RWMutex design a departure-mode query could lose the
// RLock→build→retry race against appends and needed a bounded-retry
// workaround; with epoch snapshots each query runs against an immutable
// published state whose temporal view is prebuilt, so there is nothing
// to retry and nothing to starve. Phase two tightens the check into a
// structural one: with the ingest mutex HELD (every writer blocked),
// temporal queries must still complete — proving the read path acquires
// no lock at all, not merely that it wins races.
func TestTemporalSearchUnderAppendLoad(t *testing.T) {
	safe, w := newTestEngine(t)
	q := sampleQuery(t, w.Data, 6, 2)
	tau := safe.Threshold(q, 0.3)

	const (
		appenders = 4
		searchers = 4
		rounds    = 50
	)
	paths := make([][]traj.Symbol, appenders*rounds)
	rng := rand.New(rand.NewSource(11))
	for i := range paths {
		paths[i] = append([]traj.Symbol(nil), w.Data.Path(int32(rng.Intn(w.Data.Len())))...)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				select {
				case <-stop:
					return
				default:
				}
				safe.Append(traj.Trajectory{Path: paths[g*rounds+i]})
			}
		}(g)
	}
	var searchWG sync.WaitGroup
	for g := 0; g < searchers; g++ {
		searchWG.Add(1)
		go func() {
			defer searchWG.Done()
			for i := 0; i < rounds; i++ {
				qr := core.Query{Q: q, Tau: tau}
				qr.Temporal.Mode = core.TemporalDeparture
				qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e12
				if _, _, err := safe.SearchQuery(qr); err != nil {
					t.Errorf("temporal search: %v", err)
					return
				}
			}
		}()
	}
	// Every temporal query must finish even while appends keep coming;
	// only after they all return do we let the appenders drain.
	searchWG.Wait()
	close(stop)
	wg.Wait()

	// Phase two: zero write-lock acquisitions on the read path. Hold the
	// ingest mutex — the ONLY mutex the wrapper owns — and require every
	// query kind to complete anyway. A read path that touched the mutex
	// (as the old design's temporal upgrade did) would deadlock here and
	// trip the watchdog.
	safe.ingestMu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			qr := core.Query{Q: q, Tau: tau}
			qr.Temporal.Mode = core.TemporalDeparture
			qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e12
			if _, _, err := safe.SearchQuery(qr); err != nil {
				t.Errorf("temporal search under held ingest mutex: %v", err)
				return
			}
			if _, err := safe.SearchTopK(q, 3); err != nil {
				t.Errorf("topk under held ingest mutex: %v", err)
				return
			}
			safe.Generation()
			safe.NumTrajectories()
			safe.TemporalReady()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("read path blocked while the ingest mutex was held — a query acquired a write lock")
	}
	safe.ingestMu.Unlock()
}

// TestSafeEngineAppendVisible checks an appended trajectory is findable
// and bumps the generation.
func TestSafeEngineAppendVisible(t *testing.T) {
	safe, w := newTestEngine(t)
	path := append([]traj.Symbol(nil), w.Data.Path(0)...)
	gen := safe.Generation()
	id, err := safe.Append(traj.Trajectory{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if safe.Generation() != gen+1 {
		t.Fatalf("Generation did not advance")
	}
	ms, err := safe.SearchExact(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("appended trajectory %d not in exact matches %v", id, ms)
	}
}

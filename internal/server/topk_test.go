package server

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// TestTopKTauReported is the regression test for the tau:0 bug: /v1/topk
// must report the driver's final effective threshold on the computed
// path, and the cached path must replay the same value instead of the
// request's (unset) τ.
func TestTopKTauReported(t *testing.T) {
	_, ts, q := newTestServer(t)

	var taus [2]float64
	for i := 0; i < 2; i++ {
		resp, out := post(t, ts.URL+"/v1/topk", map[string]any{"q": q, "k": 3})
		if resp.StatusCode != 200 {
			t.Fatalf("topk status %d", resp.StatusCode)
		}
		var cached bool
		if err := json.Unmarshal(out["cached"], &cached); err != nil {
			t.Fatal(err)
		}
		if cached != (i == 1) {
			t.Fatalf("request %d: cached = %v", i, cached)
		}
		if raw, ok := out["tau"]; !ok {
			t.Fatalf("request %d (cached=%v): no tau in response", i, cached)
		} else if err := json.Unmarshal(raw, &taus[i]); err != nil {
			t.Fatal(err)
		}
		if taus[i] <= 0 {
			t.Fatalf("request %d (cached=%v): tau = %g, want > 0", i, cached, taus[i])
		}
		if i == 0 {
			// The computed response carries the driver's round stats.
			var stats struct {
				Rounds          int   `json:"rounds"`
				RoundCandidates []int `json:"round_candidates"`
			}
			if err := json.Unmarshal(out["stats"], &stats); err != nil {
				t.Fatal(err)
			}
			if stats.Rounds < 1 || len(stats.RoundCandidates) != stats.Rounds {
				t.Fatalf("topk stats: %+v", stats)
			}
		}
	}
	if taus[0] != taus[1] {
		t.Fatalf("cached tau %g != computed tau %g", taus[1], taus[0])
	}
}

// TestShardWorkerConsistency asserts the /v1/stats worker accounting is
// produced by real QueryStats for every query kind — including top-k,
// which used to fake it — so parallel_queries and shard_workers stay
// consistent: with MaxParallelism 2 over a 2-shard engine, every
// executed query reports exactly 2 shard workers.
func TestShardWorkerConsistency(t *testing.T) {
	w := workload.Generate(workload.Tiny(7))
	eng := core.NewEngineShards(w.Data, wed.NewLev(), 2)
	srv := New(NewSafeEngine(eng), Config{CacheSize: -1, MaxConcurrent: 4, MaxParallelism: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	q := sampleQuery(t, w.Data, 6, 3)
	tau := srv.Engine().Threshold(q, 0.3)

	reqs := []struct {
		path string
		body map[string]any
	}{
		{"/v1/search", map[string]any{"q": q, "tau": tau}},
		{"/v1/topk", map[string]any{"q": q, "k": 3}},
		{"/v1/temporal", map[string]any{"q": q, "tau": tau, "lo": 0.0, "hi": 1e12}},
	}
	for _, r := range reqs {
		if resp, _ := post(t, ts.URL+r.path, r.body); resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", r.path, resp.StatusCode)
		}
	}

	var snap StatsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &snap)
	if snap.Totals.Executed != int64(len(reqs)) {
		t.Fatalf("executed = %d, want %d", snap.Totals.Executed, len(reqs))
	}
	if want := 2 * snap.Totals.Executed; snap.Totals.ShardWorkers != want {
		t.Fatalf("shard_workers = %d, want %d (2 per executed query)", snap.Totals.ShardWorkers, want)
	}
	if snap.Totals.ParallelQueries != snap.Totals.Executed {
		t.Fatalf("parallel_queries = %d, want %d", snap.Totals.ParallelQueries, snap.Totals.Executed)
	}
	if snap.Totals.TopKRounds < 1 {
		t.Fatalf("topk_rounds = %d, want ≥ 1", snap.Totals.TopKRounds)
	}
}

// TestTopKReuseAcrossRounds exercises the incremental driver through the
// SafeEngine on a workload where the query's source trajectory resolves
// early: later rounds must skip its candidates and report the reuse.
func TestTopKReuseAcrossRounds(t *testing.T) {
	safe, w := newTestEngine(t)
	q := sampleQuery(t, w.Data, 8, 2)
	res, stats, err := safe.SearchTopKStats(q, 5, core.TopKOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || stats == nil {
		t.Fatalf("no results or stats (%d, %+v)", len(res), stats)
	}
	if stats.Rounds > 1 && stats.CandidatesReused == 0 && res[0].WED == 0 {
		t.Fatalf("sampled query ran %d rounds but reused no candidates", stats.Rounds)
	}
	if stats.EffectiveTau <= 0 {
		t.Fatalf("effective τ = %g", stats.EffectiveTau)
	}

	// Interleave appends (twins of trajectory 0, path copied up front —
	// the dataset slice reallocates under concurrent Appends): top-k
	// queries must keep succeeding throughout.
	twin := append([]traj.Symbol(nil), w.Data.Path(0)...)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				safe.Append(traj.Trajectory{Path: append([]traj.Symbol(nil), twin...)})
				if _, _, err := safe.SearchTopKStats(q, 5, core.TopKOptions{}); err != nil {
					t.Errorf("topk under appends: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

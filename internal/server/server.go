package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"subtraj/internal/core"
	"subtraj/internal/filter"
	"subtraj/internal/mapmatch"
	"subtraj/internal/obs"
	"subtraj/internal/traj"
)

// Config parameterises a Server. The zero value selects production-ready
// defaults.
type Config struct {
	// CacheSize is the LRU result-cache capacity in entries (0 = default
	// 1024; negative disables caching).
	CacheSize int
	// MaxConcurrent bounds in-flight engine queries — the worker-pool
	// size (0 = default 2×GOMAXPROCS).
	MaxConcurrent int
	// MaxQueryLen rejects queries longer than this many symbols (0 =
	// default 4096).
	MaxQueryLen int
	// MaxBatch rejects batch requests with more subqueries than this
	// (0 = default 64).
	MaxBatch int
	// MaxK rejects top-k requests with k beyond this (0 = default 1000).
	MaxK int
	// MaxBodyBytes caps request body size (0 = default 8 MiB).
	MaxBodyBytes int64
	// MaxSymbol rejects query/append symbols outside [0, MaxSymbol).
	// Cost models index per-symbol tables directly, so an out-of-alphabet
	// symbol from untrusted JSON would panic the engine; set this to the
	// alphabet size (vertex or edge count). 0 disables the upper-bound
	// check — negative symbols are always rejected.
	MaxSymbol int32
	// MaxParallelism sets the intra-query shard-worker target per
	// request (0 = one per CPU; always capped by the engine's shard
	// count). Shard workers draw from the same worker pool as requests:
	// a query holds its own pool slot and grabs up to MaxParallelism−1
	// extra slots non-blockingly, so total engine-side concurrency never
	// exceeds MaxConcurrent regardless of how requests and shards mix.
	// 1 forces the sequential path.
	MaxParallelism int
	// Matcher enables the GPS-native surface: POST /v1/match, POST
	// /v1/ingest, and the "trace" alternative to "q" on query bodies.
	// It must be built over the same road network as the engine's
	// dataset. nil leaves GPS requests answering 501.
	Matcher *mapmatch.Matcher
	// MaxTraceLen rejects raw GPS traces with more samples than this
	// (0 = default 16384). Traces oversample paths (several samples per
	// edge), so the cap is independent of MaxQueryLen.
	MaxTraceLen int
	// RequestTimeout bounds one request end to end: the context handed to
	// handlers (and, through the engine's cancellation points, to the
	// verification loops) expires after it, and the request answers 504.
	// 0 disables the server-side deadline — client disconnects still
	// cancel.
	RequestTimeout time.Duration
	// QueueWait bounds how long a request may wait for a worker-pool slot
	// before being shed with a fast 503 + Retry-After (0 = default 1s;
	// negative = wait until the request context is done, the pre-shedding
	// behavior).
	QueueWait time.Duration
	// SlowQuery is the slow-query threshold: requests at or above it are
	// written to the structured slow-query log (with their span
	// breakdown and request ID) and retained in the /v1/debug/traces
	// ring. 0 = default 250ms; negative disables both.
	SlowQuery time.Duration
	// TraceBuffer is the /v1/debug/traces ring capacity — how many slow
	// queries' span trees are retained (0 = default 64; negative
	// disables retention).
	TraceBuffer int
	// Logger receives the structured slow-query log (nil = slog.Default()).
	Logger *slog.Logger
	// DisableMetrics turns the /metrics registry off: every metric handle
	// is nil (a no-op), /metrics serves an empty payload, and /v1/stats
	// omits the latency block. This is the baseline the instrumentation-
	// overhead benchmark compares the enabled path against.
	DisableMetrics bool
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueryLen <= 0 {
		c.MaxQueryLen = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxTraceLen <= 0 {
		c.MaxTraceLen = 16384
	}
	if c.QueueWait == 0 {
		c.QueueWait = time.Second
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 250 * time.Millisecond
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 64
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the HTTP query-serving front end over one SafeEngine:
//
//	POST /v1/search    similarity search (tau or tau_ratio)
//	POST /v1/topk      top-k most similar trajectories
//	POST /v1/temporal  temporally constrained search
//	POST /v1/exact     exact subtrajectory matches
//	POST /v1/count     exact-occurrence count (path popularity)
//	POST /v1/append    index one more trajectory
//	POST /v1/match     map-match a raw GPS trace to network symbols
//	POST /v1/ingest    batch of raw traces → match → append segments
//	POST /v1/batch     several of the above in one request
//	GET  /v1/stats     running counters (queries, cache, pool, GPS, engine)
//	GET  /healthz      liveness probe
//
// Query bodies accept "trace" (raw GPS samples, [[x,y],...]) in place of
// "q" when the server was built with a map matcher.
//
// All request and response bodies are JSON. Client errors (malformed
// JSON, validation failures, infeasible τ) map to 400; pool saturation
// past the request deadline maps to 503; everything else to 500.
type Server struct {
	eng     *SafeEngine
	cache   *resultCache
	pool    *workerPool
	matcher *mapmatch.Matcher
	cfg     Config
	mux     *http.ServeMux
	stats   counters
	metrics *serverMetrics
	traces  *obs.TraceRing
}

// counters aggregates per-endpoint request counts and the engine's
// QueryStats instrumentation as running totals for /v1/stats.
type counters struct {
	start time.Time

	search, topk, temporal, exact, count, appendN, batch atomic.Int64
	match, ingest                                        atomic.Int64
	errors                                               atomic.Int64
	executed                                             atomic.Int64 // engine-run (non-cached) queries

	candidates, matches                   atomic.Int64
	minCandNS, lookupNS, verifyNS         atomic.Int64
	columnsVisited, columnsAvail, stepDPs atomic.Int64
	cellsComputed, cellsAvail             atomic.Int64
	shardWorkers, parallelQueries         atomic.Int64
	topkRounds, reusedCandidates          atomic.Int64
	topkVerified                          atomic.Int64

	// GPS pipeline counters (see gps.go).
	tracesMatched, tracesFailed, tracesSplit atomic.Int64
	segmentsAppended, traceQueries           atomic.Int64
	matchNS                                  atomic.Int64

	// cacheHitQueries counts query requests answered from the result
	// cache (the complement of executed over query traffic); slowQueries
	// counts requests at or above the slow-query threshold.
	cacheHitQueries atomic.Int64
	slowQueries     atomic.Int64

	// panics counts handler panics the instrument middleware recovered
	// into 500 responses; checkpoint counts /v1/checkpoint requests.
	panics     atomic.Int64
	checkpoint atomic.Int64
}

// New builds a Server over eng.
func New(eng *SafeEngine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:     eng,
		cache:   newResultCache(cfg.CacheSize),
		pool:    newWorkerPool(cfg.MaxConcurrent, cfg.QueueWait),
		matcher: cfg.Matcher,
		cfg:     cfg,
	}
	s.stats.start = time.Now()
	if cfg.TraceBuffer > 0 {
		s.traces = obs.NewTraceRing(cfg.TraceBuffer)
	}
	s.metrics = newServerMetrics(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/search", s.instrument("search", s.handleQuery("search", &s.stats.search)))
	s.mux.HandleFunc("POST /v1/topk", s.instrument("topk", s.handleQuery("topk", &s.stats.topk)))
	s.mux.HandleFunc("POST /v1/temporal", s.instrument("temporal", s.handleQuery("temporal", &s.stats.temporal)))
	s.mux.HandleFunc("POST /v1/exact", s.instrument("exact", s.handleQuery("exact", &s.stats.exact)))
	s.mux.HandleFunc("POST /v1/count", s.instrument("count", s.handleQuery("count", &s.stats.count)))
	s.mux.HandleFunc("POST /v1/append", s.instrument("append", s.handleAppend))
	s.mux.HandleFunc("POST /v1/match", s.instrument("match", s.handleMatch))
	s.mux.HandleFunc("POST /v1/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("POST /v1/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/debug/traces", s.instrument("debug_traces", s.handleDebugTraces))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Engine returns the wrapped safe engine.
func (s *Server) Engine() *SafeEngine { return s.eng }

// --- request / response shapes ------------------------------------------

// queryRequest is the body of every read endpoint; Kind selects the
// operation inside /v1/batch (the dedicated endpoints fix it). Exactly
// one of Q and Trace identifies the query: Trace is a raw GPS trace that
// is map-matched first (its longest connected segment becomes the symbol
// query), so GPS-native clients query without speaking vertex IDs.
type queryRequest struct {
	Kind     string        `json:"kind,omitempty"`
	Q        []traj.Symbol `json:"q"`
	Trace    []tracePoint  `json:"trace,omitempty"`
	Tau      float64       `json:"tau,omitempty"`
	TauRatio float64       `json:"tau_ratio,omitempty"`
	K        int           `json:"k,omitempty"`
	// Temporal window (kind "temporal").
	Lo          float64 `json:"lo,omitempty"`
	Hi          float64 `json:"hi,omitempty"`
	Mode        string  `json:"mode,omitempty"` // overlap (default) | contain | departure
	NoPrefilter bool    `json:"no_prefilter,omitempty"`
}

type matchJSON struct {
	ID  int32   `json:"id"`
	S   int32   `json:"s"`
	T   int32   `json:"t"`
	WED float64 `json:"wed"`
}

type queryStatsJSON struct {
	SubseqLen  int   `json:"subseq_len"`
	Candidates int   `json:"candidates"`
	MinCandNS  int64 `json:"mincand_ns"`
	LookupNS   int64 `json:"lookup_ns"`
	VerifyNS   int64 `json:"verify_ns"`
	// Top-k driver fields (absent for plain searches): the round count,
	// each round's enumerated candidates, and how many of those were
	// skipped because their trajectory resolved in an earlier round.
	Rounds           int   `json:"rounds,omitempty"`
	RoundCandidates  []int `json:"round_candidates,omitempty"`
	ReusedCandidates int   `json:"reused_candidates,omitempty"`
}

type queryResponse struct {
	Matches []matchJSON     `json:"matches,omitempty"`
	Count   int             `json:"count"`
	Tau     float64         `json:"tau,omitempty"` // resolved absolute τ
	Cached  bool            `json:"cached"`
	Stats   *queryStatsJSON `json:"stats,omitempty"`
	// GPS trace queries only: the symbols the trace resolved to and the
	// match quality, so clients can audit what was actually searched.
	ResolvedQ       []traj.Symbol `json:"resolved_q,omitempty"`
	MatchConfidence float64       `json:"match_confidence,omitempty"`
	MatchSplits     int           `json:"match_splits,omitempty"`
	// Trace is the request's span tree, present only with ?debug=trace.
	// Top-level children are wall spans that sum to the root's duration;
	// spans carrying a "workers" attribute are summed work across shard
	// workers (see internal/obs).
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

// httpError carries the status a handler should answer with.
// retryAfterSec, when positive, becomes a Retry-After header — shed
// requests tell well-behaved clients when to come back.
type httpError struct {
	code          int
	msg           string
	retryAfterSec int
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// --- handlers ------------------------------------------------------------

func (s *Server) handleQuery(kind string, counter *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		tr := obs.FromContext(r.Context())
		dec := tr.StartSpan(nil, "decode")
		var req queryRequest
		err := s.decode(w, r, &req)
		dec.End()
		if err != nil {
			s.fail(w, err)
			return
		}
		req.Kind = kind
		resp, err := s.execute(r.Context(), &req)
		if err != nil {
			s.fail(w, err)
			return
		}
		if r.URL.Query().Get("debug") == "trace" {
			// Finish before encoding: the root duration then brackets
			// exactly the spans in the tree (its top-level children sum to
			// it), and the instrument middleware's later Finish keeps this
			// value for the latency histogram.
			tr.Finish()
			resp.Trace = tr.JSON()
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

type appendRequest struct {
	Path  []traj.Symbol `json:"path"`
	Times []float64     `json:"times,omitempty"`
}

type appendResponse struct {
	ID         int32  `json:"id"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	s.stats.appendN.Add(1)
	var req appendRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if err := s.validateAppend(&req); err != nil {
		s.fail(w, err)
		return
	}
	id, err := s.eng.Append(traj.Trajectory{Path: req.Path, Times: req.Times})
	if err != nil {
		// The write-ahead log refused the record: nothing was applied and
		// the client must not treat the append as durable.
		s.fail(w, &httpError{code: http.StatusInternalServerError, msg: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{ID: id, Generation: s.eng.Generation()})
}

// handleCheckpoint forces a checkpoint: snapshot the appended tail,
// persist the index (compact backends), truncate the WAL. 501 on a
// volatile engine, 409 when one is already running.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s.stats.checkpoint.Add(1)
	res, err := s.eng.Checkpoint()
	switch {
	case errors.Is(err, ErrNotDurable):
		s.fail(w, &httpError{code: http.StatusNotImplemented, msg: err.Error()})
	case errors.Is(err, ErrCheckpointBusy):
		s.fail(w, &httpError{code: http.StatusConflict, msg: err.Error()})
	case err != nil:
		s.fail(w, &httpError{code: http.StatusInternalServerError, msg: err.Error()})
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

type batchItemResponse struct {
	*queryResponse
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchItemResponse `json:"results"`
}

// handleBatch fans the subqueries out through the worker pool and returns
// per-item results in request order; one bad subquery fails alone, not
// the whole batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.stats.batch.Add(1)
	var req batchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, badRequest("empty batch"))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, badRequest("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	results := make([]batchItemResponse, len(req.Queries))
	var wg sync.WaitGroup
	for i := range req.Queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// net/http's panic recovery only covers the handler's own
			// goroutine; without this, one panicking subquery would kill
			// the whole process instead of one batch item.
			defer func() {
				if p := recover(); p != nil {
					s.stats.errors.Add(1)
					results[i].Error = fmt.Sprintf("internal error: %v", p)
				}
			}()
			resp, err := s.execute(r.Context(), &req.Queries[i])
			if err != nil {
				s.stats.errors.Add(1)
				results[i].Error = err.Error()
				return
			}
			results[i].queryResponse = resp
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// --- query execution -----------------------------------------------------

// execute validates req, consults the cache, and otherwise runs the query
// inside a worker-pool slot. A raw GPS trace is map-matched to symbols
// first (inside its own pool slot), after which the request is
// indistinguishable from a symbol query — including its cache key, so a
// trace query and its ground-truth symbol query share cache entries.
func (s *Server) execute(ctx context.Context, req *queryRequest) (*queryResponse, error) {
	tr := obs.FromContext(ctx)
	var matched *mapmatch.Result
	if len(req.Trace) > 0 {
		rt := tr.StartSpan(nil, "resolve_trace")
		var err error
		matched, err = s.resolveTrace(ctx, req)
		rt.End()
		if err != nil {
			return nil, err
		}
		// The matcher's own wall time nests under the resolve span (the
		// remainder is pool queueing plus symbol conversion).
		tr.AddSpan(rt, "map_match", matched.Elapsed).SetAttr("confidence", matched.Confidence)
	}
	if err := s.validateQuery(req); err != nil {
		return nil, err
	}

	// Resolve tau_ratio to an absolute τ first: the cache key and the
	// engine both want the absolute form.
	tau := req.Tau
	if req.TauRatio > 0 {
		tau = s.eng.Threshold(req.Q, req.TauRatio)
	}

	mode, err := temporalMode(req.Mode)
	if err != nil {
		return nil, err
	}

	var key string
	switch req.Kind {
	case "search":
		key = cacheKey("search", req.Q, tau)
	case "topk":
		key = cacheKey("topk", req.Q, float64(req.K))
	case "temporal":
		key = cacheKey("temporal", req.Q, tau, req.Lo, req.Hi, float64(mode), boolFloat(req.NoPrefilter))
	case "exact":
		key = cacheKey("exact", req.Q)
	case "count":
		key = cacheKey("count", req.Q)
	}

	lookup := tr.StartSpan(nil, "cache_lookup")
	gen := s.eng.Generation()
	ent, hit := s.cache.get(key, gen)
	lookup.End()
	lookup.SetAttr("hit", hit)
	if hit {
		s.stats.cacheHitQueries.Add(1)
		// ent.tau is the τ the computed response reported — for top-k the
		// driver's final effective threshold, which the request itself
		// does not carry, so cached hits must replay it from the entry.
		resp := &queryResponse{Count: ent.count, Tau: ent.tau, Cached: true}
		if req.Kind != "count" {
			resp.Matches = toMatchJSON(ent.matches)
		}
		attachMatchMeta(resp, req, matched)
		return resp, nil
	}

	var (
		matches []traj.Match
		n       int
		qstats  *core.QueryStats
		qerr    error
		engSpan *obs.Span
	)
	poolSpan := tr.StartSpan(nil, "pool_wait")
	perr := s.pool.do(ctx, func() {
		poolSpan.End()
		engSpan = tr.StartSpan(nil, "engine")
		defer engSpan.End()
		// The request's own pool slot is one shard worker; borrow up to
		// parallelism−1 extras from the same pool (non-blocking), so
		// intra-query shards and cross-query requests share one global
		// concurrency budget. Exact/count lookups never fan out, so they
		// must not reserve slots other requests could use.
		par := 1
		usesParallelism := req.Kind == "search" || req.Kind == "topk" || req.Kind == "temporal"
		if want := s.queryParallelism(); usesParallelism && want > 1 {
			extra := s.pool.tryAcquireN(want - 1)
			defer s.pool.releaseN(extra)
			par += extra
		}
		if par > 1 {
			s.stats.parallelQueries.Add(1)
		}
		engSpan.SetAttr("parallelism", par)
		switch req.Kind {
		case "search":
			matches, qstats, qerr = s.eng.SearchQuery(core.Query{Q: req.Q, Tau: tau, Parallelism: par, Ctx: ctx})
		case "topk":
			matches, qstats, qerr = s.eng.SearchTopKStats(req.Q, req.K, core.TopKOptions{Parallelism: par, Ctx: ctx})
		case "temporal":
			qr := core.Query{Q: req.Q, Tau: tau, Parallelism: par, Ctx: ctx}
			qr.Temporal.Mode = mode
			qr.Temporal.Lo, qr.Temporal.Hi = req.Lo, req.Hi
			qr.Temporal.DisablePrefilter = req.NoPrefilter
			matches, qstats, qerr = s.eng.SearchQuery(qr)
		case "exact":
			matches, qerr = s.eng.SearchExact(req.Q)
		case "count":
			n, qerr = s.eng.CountExact(req.Q)
		}
	})
	if perr != nil {
		poolSpan.End() // never acquired a slot; close the wait span
		if cerr := ctx.Err(); cerr != nil {
			// The request's own deadline (or the client) gave up while
			// queued — a timeout, not an overload signal.
			return nil, mapEngineError(cerr)
		}
		return nil, &httpError{code: http.StatusServiceUnavailable, msg: perr.Error(), retryAfterSec: 1}
	}
	if qerr != nil {
		return nil, mapEngineError(qerr)
	}
	// Post-engine bookkeeping (stat recording, cache fill, response
	// assembly) gets its own wall span so the top-level spans keep summing
	// to the request latency even when the engine phase is short.
	fin := tr.StartSpan(nil, "finalize")
	defer fin.End()
	attachStatSpans(tr, engSpan, qstats)
	s.stats.executed.Add(1)
	if req.Kind != "count" {
		n = len(matches)
	}
	s.stats.matches.Add(int64(n))
	s.recordQueryStats(qstats)
	if req.Kind == "topk" && qstats != nil {
		// A top-k request carries no τ; report the driver's final
		// effective threshold — the radius below which the answer is
		// provably complete.
		tau = qstats.EffectiveTau
	}

	// Tag the entry with the generation read *before* the query ran: if an
	// Append raced with us the entry is already stale and dies on lookup.
	s.cache.put(&cacheEntry{key: key, gen: gen, matches: matches, count: n, tau: tau})

	resp := &queryResponse{Count: n, Tau: tau}
	if req.Kind != "count" {
		resp.Matches = toMatchJSON(matches)
	}
	attachMatchMeta(resp, req, matched)
	if qstats != nil {
		resp.Stats = &queryStatsJSON{
			SubseqLen:        qstats.SubseqLen,
			Candidates:       qstats.Candidates,
			MinCandNS:        qstats.MinCandTime.Nanoseconds(),
			LookupNS:         qstats.LookupTime.Nanoseconds(),
			VerifyNS:         qstats.VerifyTime.Nanoseconds(),
			Rounds:           qstats.Rounds,
			RoundCandidates:  qstats.RoundCandidates,
			ReusedCandidates: qstats.CandidatesReused,
		}
	}
	return resp, nil
}

// queryParallelism returns the shard-worker target for one query — the
// engine's own resolution of the configured MaxParallelism (0 = auto),
// so the slots reserved here are exactly the workers the engine uses.
func (s *Server) queryParallelism() int {
	return s.eng.EffectiveParallelism(s.cfg.MaxParallelism)
}

func (s *Server) recordQueryStats(qs *core.QueryStats) {
	if qs == nil {
		return
	}
	s.stats.shardWorkers.Add(int64(qs.Workers))
	s.stats.candidates.Add(int64(qs.Candidates))
	s.stats.minCandNS.Add(qs.MinCandTime.Nanoseconds())
	s.stats.lookupNS.Add(qs.LookupTime.Nanoseconds())
	s.stats.verifyNS.Add(qs.VerifyTime.Nanoseconds())
	s.stats.columnsVisited.Add(qs.Verify.ColumnsVisited)
	s.stats.columnsAvail.Add(qs.Verify.ColumnsAvailable)
	s.stats.stepDPs.Add(qs.Verify.StepDPCalls)
	s.stats.cellsComputed.Add(qs.Verify.CellsComputed)
	s.stats.cellsAvail.Add(qs.Verify.CellsAvailable)
	s.stats.topkRounds.Add(int64(qs.Rounds))
	s.stats.reusedCandidates.Add(int64(qs.CandidatesReused))
	if qs.Rounds > 0 {
		// Only top-k drivers report rounds; keep their verified-candidate
		// total separate so ReusedRatio is not diluted by plain searches.
		s.stats.topkVerified.Add(int64(qs.Candidates))
		s.metrics.topkRounds.Observe(float64(qs.Rounds))
	}
	s.metrics.stagePlan.Observe(qs.MinCandTime.Seconds())
	s.metrics.stageFilter.Observe(qs.LookupTime.Seconds())
	s.metrics.stageVerify.Observe(qs.VerifyTime.Seconds())
}

// --- validation and error mapping ---------------------------------------

func (s *Server) validateQuery(req *queryRequest) error {
	switch req.Kind {
	case "search", "topk", "temporal", "exact", "count":
	default:
		return badRequest("unknown query kind %q", req.Kind)
	}
	if len(req.Q) == 0 {
		return badRequest("empty query: provide q (symbols) or trace (GPS samples)")
	}
	if len(req.Q) > s.cfg.MaxQueryLen {
		return badRequest("query of %d symbols exceeds limit %d", len(req.Q), s.cfg.MaxQueryLen)
	}
	if err := s.validateSymbols(req.Q); err != nil {
		return err
	}
	switch req.Kind {
	case "search", "temporal":
		if req.Tau <= 0 && req.TauRatio <= 0 {
			return badRequest("one of tau or tau_ratio must be positive")
		}
		if req.Tau > 0 && req.TauRatio > 0 {
			return badRequest("tau and tau_ratio are mutually exclusive")
		}
		if req.TauRatio > 1 {
			return badRequest("tau_ratio %g out of range (0, 1]", req.TauRatio)
		}
	case "topk":
		if req.K <= 0 {
			return badRequest("k must be positive")
		}
		if req.K > s.cfg.MaxK {
			return badRequest("k = %d exceeds limit %d", req.K, s.cfg.MaxK)
		}
	}
	if req.Kind == "temporal" && req.Hi < req.Lo {
		return badRequest("temporal window [%g, %g] is empty", req.Lo, req.Hi)
	}
	return nil
}

func (s *Server) validateAppend(req *appendRequest) error {
	if len(req.Path) == 0 {
		return badRequest("empty trajectory path")
	}
	if len(req.Path) > s.cfg.MaxQueryLen {
		return badRequest("path of %d symbols exceeds limit %d", len(req.Path), s.cfg.MaxQueryLen)
	}
	if err := s.validateSymbols(req.Path); err != nil {
		return err
	}
	if len(req.Times) > 0 {
		// Vertex representation carries one timestamp per vertex; edge
		// representation one per vertex of the underlying path, i.e.
		// len(path)+1 (see traj.Trajectory.Times).
		want := len(req.Path)
		if s.eng.Unsafe().Dataset().Rep == traj.EdgeRep {
			want++
		}
		if len(req.Times) != want {
			return badRequest("got %d timestamps, want %d (or none)", len(req.Times), want)
		}
		for i := 1; i < len(req.Times); i++ {
			if req.Times[i] < req.Times[i-1] {
				return badRequest("timestamps must be non-decreasing (times[%d] < times[%d])", i, i-1)
			}
		}
	}
	return nil
}

// validateSymbols rejects symbols the cost model could not index.
func (s *Server) validateSymbols(q []traj.Symbol) error {
	for i, sym := range q {
		if sym < 0 {
			return badRequest("symbol %d at position %d is negative", sym, i)
		}
		if s.cfg.MaxSymbol > 0 && sym >= s.cfg.MaxSymbol {
			return badRequest("symbol %d at position %d outside alphabet [0, %d)", sym, i, s.cfg.MaxSymbol)
		}
	}
	return nil
}

func temporalMode(s string) (core.TemporalMode, error) {
	switch s {
	case "", "overlap":
		return core.TemporalOverlap, nil
	case "contain":
		return core.TemporalContain, nil
	case "departure":
		return core.TemporalDeparture, nil
	default:
		return 0, badRequest("unknown temporal mode %q", s)
	}
}

// mapEngineError classifies engine failures: ill-posed query parameters
// are the client's fault, an expired deadline is a timeout (504), a
// canceled context means the client hung up (the response is best-effort
// 503), anything else is ours.
func mapEngineError(err error) error {
	var infeasible filter.ErrInfeasible
	if errors.Is(err, core.ErrEmptyQuery) || errors.Is(err, core.ErrTauTooLarge) || errors.As(err, &infeasible) {
		return &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{code: http.StatusGatewayTimeout, msg: err.Error()}
	}
	if errors.Is(err, context.Canceled) {
		return &httpError{code: http.StatusServiceUnavailable, msg: err.Error()}
	}
	return &httpError{code: http.StatusInternalServerError, msg: err.Error()}
}

// --- stats ---------------------------------------------------------------

// StatsSnapshot is the /v1/stats response.
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Engine        struct {
		Trajectories int    `json:"trajectories"`
		Generation   uint64 `json:"generation"`
		// Shards is the index partition count — the per-query
		// parallelism ceiling.
		Shards int `json:"shards"`
		// IndexBackend names the index family ("pointer" or "compact");
		// IndexBytes is its memory footprint (exact arena size for
		// compact, heap estimate for pointer) and BytesPerTrajectory the
		// same divided by the trajectory count — the memory-scaling
		// figure benchall snapshots record.
		IndexBackend       string  `json:"index_backend"`
		IndexBytes         int64   `json:"index_bytes"`
		BytesPerTrajectory float64 `json:"bytes_per_trajectory"`
	} `json:"engine"`
	// Ingest reports the epoch-snapshot write path: how much of the
	// published view lives in the frozen base vs the append delta, and
	// how often the background compactor has folded and republished.
	Ingest struct {
		// FoldedTrajectories / DeltaTrajectories partition the published
		// dataset: folded ones are in the frozen base, delta ones in the
		// per-publish rebuilt tail index.
		FoldedTrajectories int `json:"folded_trajectories"`
		DeltaTrajectories  int `json:"delta_trajectories"`
		// CompactAppends is the delta size that triggers a background
		// fold (0 = automatic compaction disabled).
		CompactAppends int `json:"compact_appends"`
		// Compactions counts completed folds; SnapshotPublishes counts
		// published snapshots (one per append batch, fold, and compact
		// checkpoint, plus snapshot zero).
		Compactions       int64 `json:"compactions"`
		SnapshotPublishes int64 `json:"snapshot_publishes"`
		// LastCompactionMS is the wall time of the most recent fold.
		LastCompactionMS float64 `json:"last_compaction_ms"`
	} `json:"ingest"`
	Requests struct {
		Search   int64 `json:"search"`
		TopK     int64 `json:"topk"`
		Temporal int64 `json:"temporal"`
		Exact    int64 `json:"exact"`
		Count    int64 `json:"count"`
		Append   int64 `json:"append"`
		Match    int64 `json:"match"`
		Ingest   int64 `json:"ingest"`
		Batch    int64 `json:"batch"`
		Errors   int64 `json:"errors"`
		// Slow counts requests at or above the configured slow-query
		// threshold (the ones retained by /v1/debug/traces).
		Slow int64 `json:"slow"`
		// Panics counts handler panics recovered into 500s; Checkpoint
		// counts /v1/checkpoint requests.
		Panics     int64 `json:"panics"`
		Checkpoint int64 `json:"checkpoint"`
	} `json:"requests"`
	// GPS aggregates the map-matching pipeline: every matcher run —
	// whether from /v1/match, /v1/ingest, or a trace-carrying query —
	// lands in exactly one of TracesMatched/TracesFailed, and MatchNS
	// sums wall-clock matching time (MeanMatchNS = MatchNS over both
	// outcomes).
	GPS struct {
		Enabled          bool  `json:"enabled"`
		TracesMatched    int64 `json:"traces_matched"`
		TracesFailed     int64 `json:"traces_failed"`
		TracesSplit      int64 `json:"traces_split"`
		SegmentsAppended int64 `json:"segments_appended"`
		TraceQueries     int64 `json:"trace_queries"`
		MatchNS          int64 `json:"match_ns"`
		MeanMatchNS      int64 `json:"mean_match_ns"`
	} `json:"gps"`
	Cache struct {
		Size          int   `json:"size"`
		Capacity      int   `json:"capacity"`
		Hits          int64 `json:"hits"`
		Misses        int64 `json:"misses"`
		Evictions     int64 `json:"evictions"`
		Invalidations int64 `json:"invalidations"`
		// HitRatio is hits / (hits + misses) since start — the same value
		// /metrics exports as subtraj_cache_hit_ratio.
		HitRatio float64 `json:"hit_ratio"`
	} `json:"cache"`
	Pool struct {
		Capacity int   `json:"capacity"`
		InFlight int64 `json:"in_flight"`
		Waited   int64 `json:"waited"`
		Rejected int64 `json:"rejected"`
		// Shed counts the subset of rejections caused by the queue-wait
		// bound — fast 503s under sustained overload.
		Shed int64 `json:"shed"`
	} `json:"pool"`
	// Durability reports the write-ahead-log state; all-zero (Enabled
	// false) on a volatile engine.
	Durability struct {
		Enabled           bool   `json:"enabled"`
		SyncPolicy        string `json:"sync_policy,omitempty"`
		WALBytes          int64  `json:"wal_bytes"`
		WALRecords        int64  `json:"wal_records"`
		WALSyncs          int64  `json:"wal_syncs"`
		Generation        uint64 `json:"generation"`
		Checkpoints       int64  `json:"checkpoints"`
		CheckpointErrors  int64  `json:"checkpoint_errors"`
		LastCheckpointGen uint64 `json:"last_checkpoint_generation"`
		SnapshotRecords   int64  `json:"snapshot_records"`
		RecoveryReplayed  int64  `json:"recovery_replayed_records"`
	} `json:"durability"`
	Totals struct {
		Executed         int64 `json:"executed"`
		Candidates       int64 `json:"candidates"`
		Matches          int64 `json:"matches"`
		MinCandNS        int64 `json:"mincand_ns"`
		LookupNS         int64 `json:"lookup_ns"`
		VerifyNS         int64 `json:"verify_ns"`
		ColumnsVisited   int64 `json:"columns_visited"`
		ColumnsAvailable int64 `json:"columns_available"`
		StepDPCalls      int64 `json:"step_dp_calls"`
		// CellsComputed/CellsAvailable are the cell-level band counters
		// of the τ-banded verification; BandRatio is their quotient (the
		// fraction of DP cells the banded columns actually evaluated).
		CellsComputed  int64   `json:"cells_computed"`
		CellsAvailable int64   `json:"cells_available"`
		UPR            float64 `json:"upr"`
		CMR            float64 `json:"cmr"`
		BandRatio      float64 `json:"band_ratio"`
		// ShardWorkers sums the shard workers used across executed
		// queries; ParallelQueries counts queries that got more than
		// one. Together they show how often the shared budget allowed
		// intra-query fan-out. Every executed query of every kind
		// reports its workers through the same QueryStats path, so
		// ShardWorkers ≥ Executed and the two stay consistent.
		ShardWorkers    int64 `json:"shard_workers"`
		ParallelQueries int64 `json:"parallel_queries"`
		// TopKRounds sums the threshold-growing rounds of executed top-k
		// queries; ReusedCandidates counts candidates those queries
		// skipped via cross-round state reuse, and ReusedRatio is
		// reused / (reused + verified) over top-k queries only, so mixed
		// workloads don't dilute the driver's reuse metric.
		TopKRounds       int64   `json:"topk_rounds"`
		ReusedCandidates int64   `json:"reused_candidates"`
		ReusedRatio      float64 `json:"reused_ratio"`
	} `json:"totals"`
	// Latency summarizes each endpoint's request-duration histogram — the
	// very histograms /metrics exposes, so the two surfaces report the
	// same percentiles. Absent when metrics are disabled; endpoints with
	// no traffic are omitted.
	Latency map[string]LatencySummary `json:"latency,omitempty"`
}

// LatencySummary is the /v1/stats per-endpoint latency block: request
// count and estimated percentiles in milliseconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot assembles the current running counters.
func (s *Server) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	out.UptimeSeconds = time.Since(s.stats.start).Seconds()
	out.Engine.Trajectories = s.eng.NumTrajectories()
	out.Engine.Generation = s.eng.Generation()
	out.Engine.Shards = s.eng.NumShards()
	out.Engine.IndexBackend = s.eng.IndexKind()
	out.Engine.IndexBytes = s.eng.IndexBytes()
	if out.Engine.Trajectories > 0 {
		out.Engine.BytesPerTrajectory = float64(out.Engine.IndexBytes) / float64(out.Engine.Trajectories)
	}
	out.Ingest.FoldedTrajectories = s.eng.FoldedLen()
	out.Ingest.DeltaTrajectories = s.eng.DeltaLen()
	out.Ingest.CompactAppends = s.eng.CompactAppends()
	out.Ingest.Compactions = s.eng.Compactions()
	out.Ingest.SnapshotPublishes = s.eng.Publishes()
	out.Ingest.LastCompactionMS = s.eng.LastCompactionMS()
	out.Requests.Search = s.stats.search.Load()
	out.Requests.TopK = s.stats.topk.Load()
	out.Requests.Temporal = s.stats.temporal.Load()
	out.Requests.Exact = s.stats.exact.Load()
	out.Requests.Count = s.stats.count.Load()
	out.Requests.Append = s.stats.appendN.Load()
	out.Requests.Match = s.stats.match.Load()
	out.Requests.Ingest = s.stats.ingest.Load()
	out.Requests.Batch = s.stats.batch.Load()
	out.Requests.Errors = s.stats.errors.Load()
	out.Requests.Slow = s.stats.slowQueries.Load()
	out.Requests.Panics = s.stats.panics.Load()
	out.Requests.Checkpoint = s.stats.checkpoint.Load()
	out.GPS.Enabled = s.matcher != nil
	out.GPS.TracesMatched = s.stats.tracesMatched.Load()
	out.GPS.TracesFailed = s.stats.tracesFailed.Load()
	out.GPS.TracesSplit = s.stats.tracesSplit.Load()
	out.GPS.SegmentsAppended = s.stats.segmentsAppended.Load()
	out.GPS.TraceQueries = s.stats.traceQueries.Load()
	out.GPS.MatchNS = s.stats.matchNS.Load()
	if runs := out.GPS.TracesMatched + out.GPS.TracesFailed; runs > 0 {
		out.GPS.MeanMatchNS = out.GPS.MatchNS / runs
	}
	out.Cache.Size = s.cache.len()
	out.Cache.Capacity = s.cfg.CacheSize
	out.Cache.Hits = s.cache.hits.Load()
	out.Cache.Misses = s.cache.misses.Load()
	out.Cache.Evictions = s.cache.evictions.Load()
	out.Cache.Invalidations = s.cache.invalidations.Load()
	if lookups := out.Cache.Hits + out.Cache.Misses; lookups > 0 {
		out.Cache.HitRatio = float64(out.Cache.Hits) / float64(lookups)
	}
	out.Pool.Capacity = s.pool.capacity()
	out.Pool.InFlight = s.pool.inFlight.Load()
	out.Pool.Waited = s.pool.waited.Load()
	out.Pool.Rejected = s.pool.rejected.Load()
	out.Pool.Shed = s.pool.shed.Load()
	if d := s.eng.Durable(); d != nil {
		ws := d.WALStats()
		out.Durability.Enabled = true
		out.Durability.SyncPolicy = d.SyncPolicy()
		out.Durability.WALBytes = ws.Bytes
		out.Durability.WALRecords = ws.Records
		out.Durability.WALSyncs = ws.Syncs
		out.Durability.Generation = ws.Gen
		out.Durability.Checkpoints = d.Checkpoints()
		out.Durability.CheckpointErrors = d.CheckpointErrors()
		out.Durability.LastCheckpointGen = d.LastCheckpointGen()
		out.Durability.SnapshotRecords = d.SnapshotRecords()
		out.Durability.RecoveryReplayed = d.ReplayedRecords()
	}
	out.Totals.Executed = s.stats.executed.Load()
	out.Totals.Candidates = s.stats.candidates.Load()
	out.Totals.Matches = s.stats.matches.Load()
	out.Totals.MinCandNS = s.stats.minCandNS.Load()
	out.Totals.LookupNS = s.stats.lookupNS.Load()
	out.Totals.VerifyNS = s.stats.verifyNS.Load()
	out.Totals.ColumnsVisited = s.stats.columnsVisited.Load()
	out.Totals.ColumnsAvailable = s.stats.columnsAvail.Load()
	out.Totals.StepDPCalls = s.stats.stepDPs.Load()
	out.Totals.CellsComputed = s.stats.cellsComputed.Load()
	out.Totals.CellsAvailable = s.stats.cellsAvail.Load()
	out.Totals.ShardWorkers = s.stats.shardWorkers.Load()
	out.Totals.ParallelQueries = s.stats.parallelQueries.Load()
	out.Totals.TopKRounds = s.stats.topkRounds.Load()
	out.Totals.ReusedCandidates = s.stats.reusedCandidates.Load()
	if total := out.Totals.ReusedCandidates + s.stats.topkVerified.Load(); total > 0 {
		out.Totals.ReusedRatio = float64(out.Totals.ReusedCandidates) / float64(total)
	}
	if out.Totals.ColumnsAvailable > 0 {
		out.Totals.UPR = float64(out.Totals.ColumnsVisited) / float64(out.Totals.ColumnsAvailable)
	}
	if out.Totals.ColumnsVisited > 0 {
		out.Totals.CMR = float64(out.Totals.StepDPCalls) / float64(out.Totals.ColumnsVisited)
	}
	if out.Totals.CellsAvailable > 0 {
		out.Totals.BandRatio = float64(out.Totals.CellsComputed) / float64(out.Totals.CellsAvailable)
	}
	if s.metrics.reg != nil {
		out.Latency = make(map[string]LatencySummary)
		for ep, h := range s.metrics.reqLatency {
			if n := h.Count(); n > 0 {
				out.Latency[ep] = LatencySummary{
					Count: n,
					P50MS: h.Quantile(0.50) * 1e3,
					P95MS: h.Quantile(0.95) * 1e3,
					P99MS: h.Quantile(0.99) * 1e3,
				}
			}
		}
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// --- plumbing ------------------------------------------------------------

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	s.stats.errors.Add(1)
	code := http.StatusInternalServerError
	var herr *httpError
	if errors.As(err, &herr) {
		code = herr.code
		if herr.retryAfterSec > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", herr.retryAfterSec))
		}
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// attachMatchMeta copies trace-resolution metadata onto a query response
// (no-op for symbol queries).
func attachMatchMeta(resp *queryResponse, req *queryRequest, matched *mapmatch.Result) {
	if matched == nil {
		return
	}
	resp.ResolvedQ = req.Q
	resp.MatchConfidence = matched.Confidence
	resp.MatchSplits = matched.Splits
}

func toMatchJSON(ms []traj.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{ID: m.ID, S: m.S, T: m.T, WED: m.WED}
	}
	return out
}

func boolFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

package server

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

// TestEpochScheduleQuick is a property test over random append / search
// / compact schedules: whatever order the operations interleave in, the
// epoch engine must answer every search exactly like a sequential model
// that rebuilds a fresh engine over the same trajectory list. Each
// testing/quick counterexample is one seed, so failures replay
// deterministically.
func TestEpochScheduleQuick(t *testing.T) {
	w := workload.Generate(workload.Tiny(13))
	full := w.Data

	prop := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		const n0 = 15

		// The schedule's ground truth: the exact trajectory list the
		// engine should hold, in append order.
		model := make([]traj.Trajectory, 0, n0+32)
		master := traj.NewDataset(full.Rep)
		for i := 0; i < n0; i++ {
			tr := *full.Get(int32(i))
			model = append(model, tr)
			master.Add(tr)
		}
		safe := NewSafeEngine(core.NewEngineShards(master, wed.NewLev(), 2))

		randomTraj := func() traj.Trajectory {
			path := append([]traj.Symbol(nil), full.Path(int32(rng.Intn(full.Len())))...)
			tr := traj.Trajectory{Path: path}
			if rng.Intn(2) == 0 { // half the appends carry timestamps
				times := make([]float64, len(path))
				t0 := rng.Float64() * 1000
				for i := range times {
					times[i] = t0 + float64(i)*rng.Float64()*10
				}
				tr.Times = times
			}
			return tr
		}
		sampleQ := func() []traj.Symbol {
			src := model[rng.Intn(len(model))].Path
			if len(src) <= 2 {
				return src
			}
			l := 2 + rng.Intn(min(6, len(src)-1))
			start := rng.Intn(len(src) - l + 1)
			return src[start : start+l]
		}
		check := func() bool {
			q := sampleQ()
			tau := safe.Threshold(q, 0.25)
			oDs := traj.NewDataset(full.Rep)
			for _, tr := range model {
				oDs.Add(tr)
			}
			oracle := core.NewEngineShards(oDs, wed.NewLev(), 1)
			for _, par := range []int{1, 4} {
				qr := core.Query{Q: q, Tau: tau, Parallelism: par}
				if rng.Intn(2) == 0 {
					qr.Temporal.Mode = core.TemporalDeparture
					qr.Temporal.Lo, qr.Temporal.Hi = 0, 500+rng.Float64()*1500
				}
				want, _, err := oracle.SearchQuery(qr)
				if err != nil {
					t.Logf("seed %d: oracle: %v", seed, err)
					return false
				}
				got, _, err := safe.SearchQuery(qr)
				if err != nil {
					t.Logf("seed %d: epoch: %v", seed, err)
					return false
				}
				if !matchesEqual(got, want) {
					t.Logf("seed %d: diverged on |Q|=%d par=%d mode=%v:\n got %v\nwant %v",
						seed, len(q), par, qr.Temporal.Mode, got, want)
					return false
				}
			}
			return true
		}

		for op := 0; op < 30; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // append
				tr := randomTraj()
				model = append(model, tr)
				if _, err := safe.Append(tr); err != nil {
					t.Logf("seed %d: append: %v", seed, err)
					return false
				}
			case r < 8: // search vs sequential model
				if !check() {
					return false
				}
			default: // compact (contents must not change)
				if _, err := safe.Compact(); err != nil {
					t.Logf("seed %d: compact: %v", seed, err)
					return false
				}
			}
		}
		if safe.Generation() != uint64(len(model)-n0) {
			t.Logf("seed %d: generation %d != appends %d", seed, safe.Generation(), len(model)-n0)
			return false
		}
		if _, err := safe.Compact(); err != nil {
			return false
		}
		return check()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

package server

import (
	"reflect"
	"sort"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/experiments"
	"subtraj/internal/traj"
	"subtraj/internal/workload"
)

// TestSnapshotEquivalence is the generation-equivalence suite of the
// epoch-snapshot design: at EVERY published generation, search results
// through the delta-merged view must be bit-equal — same (ID,S,T)-sorted
// order, same WED floats — to a freshly built stop-the-world oracle
// engine over the same trajectory prefix. The walk appends one
// trajectory at a time, folds the delta at fixed points so snapshots
// are exercised with an empty delta, a fresh delta, and a mid-fold
// rebuilt delta, and cross-checks all six cost models × parallelism
// {1,4} × temporal windows (none / overlap / contain / departure).
func TestSnapshotEquivalence(t *testing.T) {
	c := experiments.GetCtx(workload.Tiny(7), 1.0)
	for _, model := range experiments.ModelNames {
		t.Run(model, func(t *testing.T) {
			costs := c.Model(model)
			full := c.Data(model)
			const n0 = 40 // base prefix; the rest is appended one by one

			// The experiments context is shared and cached — append into
			// a private clone of the prefix, never into c's dataset.
			master := traj.NewDataset(full.Rep)
			for i := 0; i < n0; i++ {
				master.Add(*full.Get(int32(i)))
			}
			safe := NewSafeEngine(core.NewEngineShards(master, costs, 2))

			qs := c.Queries(model, 8, 3, 5)
			windows := temporalWindows(full)

			for n := n0; n <= full.Len(); n++ {
				if n > n0 {
					if _, err := safe.Append(*full.Get(int32(n - 1))); err != nil {
						t.Fatalf("append %d: %v", n-1, err)
					}
				}
				// Fold at a stride so the walk sees empty, small, and
				// compaction-fresh deltas; gen must not move on a fold.
				if (n-n0)%7 == 3 {
					if _, err := safe.Compact(); err != nil {
						t.Fatalf("compact at n=%d: %v", n, err)
					}
				}
				if got, want := safe.Generation(), uint64(n-n0); got != want {
					t.Fatalf("generation = %d, want %d", got, want)
				}
				if safe.NumTrajectories() != n {
					t.Fatalf("published %d trajectories, want %d", safe.NumTrajectories(), n)
				}

				// Stop-the-world oracle over the identical prefix.
				oracle := core.NewEngineShards(full.Slice(n), costs, 1)
				for qi, q := range qs {
					tau := c.Tau(model, q, 0.25)
					for _, par := range []int{1, 4} {
						for wi, win := range windows {
							qr := core.Query{Q: q, Tau: tau, Parallelism: par}
							qr.Temporal.Mode = win.mode
							qr.Temporal.Lo, qr.Temporal.Hi = win.lo, win.hi
							want, _, err := oracle.SearchQuery(qr)
							if err != nil {
								t.Fatalf("oracle n=%d q=%d win=%d: %v", n, qi, wi, err)
							}
							got, _, err := safe.SearchQuery(qr)
							if err != nil {
								t.Fatalf("snapshot n=%d q=%d win=%d: %v", n, qi, wi, err)
							}
							if !matchesEqual(got, want) {
								t.Fatalf("n=%d gen=%d q=%d par=%d win=%d: snapshot results diverge from oracle\n got %v\nwant %v",
									n, safe.Generation(), qi, par, wi, got, want)
							}
						}
					}
				}
			}
			// End state: one final fold must leave contents untouched.
			if _, err := safe.Compact(); err != nil {
				t.Fatalf("final compact: %v", err)
			}
			if safe.DeltaLen() != 0 || safe.FoldedLen() != full.Len() {
				t.Fatalf("after final compact: delta=%d folded=%d, want 0/%d",
					safe.DeltaLen(), safe.FoldedLen(), full.Len())
			}
		})
	}
}

// temporalWindow is one temporal constraint of the equivalence sweep.
type temporalWindow struct {
	mode   core.TemporalMode
	lo, hi float64
}

// temporalWindows derives the query windows from the dataset's actual
// departure spread: everything, the early half, the late half — under
// each temporal mode — plus the no-temporal control.
func temporalWindows(ds *traj.Dataset) []temporalWindow {
	deps := make([]float64, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		if d, ok := ds.Get(int32(i)).Departure(); ok {
			deps = append(deps, d)
		}
	}
	if len(deps) == 0 {
		deps = []float64{0}
	}
	sort.Float64s(deps)
	mid := deps[len(deps)/2]
	ws := []temporalWindow{{}} // no temporal constraint
	for _, mode := range []core.TemporalMode{core.TemporalOverlap, core.TemporalContain, core.TemporalDeparture} {
		ws = append(ws,
			temporalWindow{mode: mode, lo: 0, hi: 1e12},
			temporalWindow{mode: mode, lo: 0, hi: mid},
			temporalWindow{mode: mode, lo: mid, hi: 1e12},
		)
	}
	return ws
}

// matchesEqual is bit-equality on result lists, treating nil and empty
// as equal (both mean "no matches").
func matchesEqual(got, want []traj.Match) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

// TestSnapshotEquivalenceTopK extends the generation walk to the top-k
// protocol: the whole multi-round τ refinement runs against one
// snapshot, so its results must equal the oracle's for the same prefix.
func TestSnapshotEquivalenceTopK(t *testing.T) {
	c := experiments.GetCtx(workload.Tiny(7), 1.0)
	costs := c.Model("Lev")
	full := c.Data("Lev")
	const n0 = 45

	master := traj.NewDataset(full.Rep)
	for i := 0; i < n0; i++ {
		master.Add(*full.Get(int32(i)))
	}
	safe := NewSafeEngine(core.NewEngineShards(master, costs, 2))
	qs := c.Queries("Lev", 10, 2, 9)

	for n := n0; n <= full.Len(); n++ {
		if n > n0 {
			if _, err := safe.Append(*full.Get(int32(n - 1))); err != nil {
				t.Fatal(err)
			}
		}
		if (n-n0)%5 == 2 {
			if _, err := safe.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		oracle := core.NewEngineShards(full.Slice(n), costs, 1)
		for qi, q := range qs {
			for _, k := range []int{1, 5} {
				want, _, err := oracle.SearchTopKStats(q, k, core.TopKOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := safe.SearchTopKStats(q, k, core.TopKOptions{Parallelism: 4})
				if err != nil {
					t.Fatal(err)
				}
				if !matchesEqual(got, want) {
					t.Fatalf("topk n=%d q=%d k=%d diverges:\n got %v\nwant %v", n, qi, k, got, want)
				}
			}
		}
	}
}

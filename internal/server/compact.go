package server

import (
	"errors"
	"sync/atomic"
	"time"

	"subtraj/internal/index"
)

// ErrCompactionBusy is returned when a fold is already in progress;
// callers retry later (the delta the running fold misses is picked up
// by the next one).
var ErrCompactionBusy = errors.New("server: compaction already in progress")

// CompactionResult reports one completed fold.
type CompactionResult struct {
	// Generation is the published generation the fold landed at.
	Generation uint64 `json:"generation"`
	// Folded is how many trajectories the new frozen base covers.
	Folded int `json:"folded"`
	// DeltaBefore is the delta size the fold started from.
	DeltaBefore int `json:"delta_before"`
	// DurationMS is the wall time of the fold, almost all of it spent
	// outside the ingest mutex.
	DurationMS float64 `json:"duration_ms"`
}

// SetCompactAppends sets the delta size that triggers a background fold
// after an append (0 disables automatic compaction). Safe to call while
// ingest is live.
func (s *SafeEngine) SetCompactAppends(n int) { s.compactAppends.Store(int64(n)) }

// CompactAppends returns the automatic-compaction threshold.
func (s *SafeEngine) CompactAppends() int { return int(s.compactAppends.Load()) }

// Compactions returns how many folds have completed.
func (s *SafeEngine) Compactions() int64 { return s.compactions.Load() }

// Publishes returns how many snapshots have been published (including
// snapshot zero at construction).
func (s *SafeEngine) Publishes() int64 { return s.publishes.Load() }

// LastCompactionMS returns the wall time of the most recent fold in
// milliseconds (0 before the first).
func (s *SafeEngine) LastCompactionMS() float64 {
	return float64(s.lastCompactNS.Load()) / 1e6
}

// maybeCompact starts a background fold when the published delta has
// outgrown the configured threshold. Single-flight: while one fold
// runs, appends keep growing the delta and the next fold picks up the
// remainder.
func (s *SafeEngine) maybeCompact() {
	n := s.compactAppends.Load()
	if n <= 0 || s.compactInFlight.Load() {
		return
	}
	if int64(s.state.Load().deltaLen) < n {
		return
	}
	go func() {
		// ErrCompactionBusy means another fold won the race — fine.
		_, _ = s.Compact()
	}()
}

// Compact folds the published delta into a fresh frozen base and
// publishes the result. The expensive part — building the new base over
// a fixed prefix of the dataset — happens entirely outside the ingest
// mutex, so searches AND appends proceed during the fold; only the
// final publish (rebuilding whatever small delta accumulated meanwhile
// and swapping the state pointer) runs under the mutex. The fold does
// not change the dataset contents, so it publishes at the current
// generation and cached results stay valid.
//
// Returns ErrCompactionBusy if a fold is already running.
func (s *SafeEngine) Compact() (*CompactionResult, error) {
	if !s.compactInFlight.CompareAndSwap(false, true) {
		return nil, ErrCompactionBusy
	}
	defer s.compactInFlight.Store(false)
	start := time.Now()

	st := s.state.Load()
	if st.deltaLen == 0 {
		return &CompactionResult{Generation: st.gen, Folded: st.baseLen}, nil
	}

	// Fold off-lock: the new base covers exactly the prefix this
	// snapshot sees. st.eng's dataset is a fixed prefix view, so the
	// build races with nothing.
	view := st.eng.Dataset()
	var backend index.Backend
	if st.base.backend.Kind() == "compact" {
		backend = index.NewOverlay(index.FreezeDataset(view))
	} else {
		backend = index.BuildSharded(view, st.base.backend.NumShards())
	}
	nb := &epochBase{backend: backend}
	if st.base.temporalDone.Load() {
		// The old base's temporal view was built; build the new one's
		// off-lock too so readiness never flaps backwards.
		nb.ensureTemporal()
	}

	crashPoint("compact-fold")

	s.ingestMu.Lock()
	s.base = nb
	s.resetDeltaLocked()
	s.publishLocked()
	pub := s.state.Load()
	s.ingestMu.Unlock()

	s.compactions.Add(1)
	s.lastCompactNS.Store(int64(time.Since(start)))
	return &CompactionResult{
		Generation:  pub.gen,
		Folded:      view.Len(),
		DeltaBefore: st.deltaLen,
		DurationMS:  float64(time.Since(start)) / 1e6,
	}, nil
}

// crashHook, when set, is called at named points of the write path so
// crash tests can kill the process at adversarial moments (between fold
// and publish, for instance) and prove recovery replays the WAL without
// loss or duplication. Nil in production.
var crashHook atomic.Pointer[func(string)]

// SetCrashHook installs f as the process-wide crash-point hook (nil to
// clear). Test-only; cmd/wedserve wires it to SUBTRAJ_CRASH_POINT.
func SetCrashHook(f func(string)) {
	if f == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&f)
}

func crashPoint(name string) {
	if f := crashHook.Load(); f != nil {
		(*f)(name)
	}
}

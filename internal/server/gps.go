package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"subtraj/internal/geo"
	"subtraj/internal/mapmatch"
	"subtraj/internal/traj"
)

// This file is the server's GPS-native surface: raw lat/lon traces in,
// matched/searchable trajectories out. Three entry points share one
// matching path (matchTrace):
//
//	POST /v1/match   one trace → symbols per connected segment + confidence
//	POST /v1/ingest  batch of traces → match → append matched segments
//	"trace" field    on /v1/search //v1/topk/... bodies: query by raw GPS
//
// Matching runs inside the same bounded worker pool as queries, so GPS
// traffic cannot oversubscribe the engine; matcher outcomes (matched /
// failed / split, match latency) feed the /v1/stats GPS block.

// tracePoint is one GPS sample, wire format [x, y] (planar metres, same
// coordinate system as the road network).
type tracePoint [2]float64

// UnmarshalJSON rejects samples that are not exactly [x, y]: the default
// array decoding would silently zero-fill [x] and truncate
// [x, y, timestamp], map-matching garbage coordinates instead of
// erroring.
func (t *tracePoint) UnmarshalJSON(b []byte) error {
	var raw []float64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if len(raw) != 2 {
		return fmt.Errorf("GPS sample must be [x, y], got %d elements", len(raw))
	}
	t[0], t[1] = raw[0], raw[1]
	return nil
}

func tracePoints(ts []tracePoint) []geo.Point {
	out := make([]geo.Point, len(ts))
	for i, t := range ts {
		out[i] = geo.Point{X: t[0], Y: t[1]}
	}
	return out
}

// errGPSDisabled answers GPS requests on servers built without a matcher.
var errGPSDisabled = &httpError{code: http.StatusNotImplemented, msg: "GPS matching not enabled (server built without a matcher)"}

// validateTrace bounds a raw trace before matching.
func (s *Server) validateTrace(trace []tracePoint) error {
	if s.matcher == nil {
		return errGPSDisabled
	}
	if len(trace) == 0 {
		return badRequest("empty trace")
	}
	if len(trace) > s.cfg.MaxTraceLen {
		return badRequest("trace of %d samples exceeds limit %d", len(trace), s.cfg.MaxTraceLen)
	}
	return nil
}

// matchTrace runs the matcher inside a worker-pool slot and records the
// GPS counters. The returned result is already stats-accounted.
func (s *Server) matchTrace(ctx context.Context, trace []tracePoint) (mapmatch.Result, error) {
	var (
		res     mapmatch.Result
		merr    error
		elapsed time.Duration
	)
	perr := s.pool.do(ctx, func() {
		// Time inside the slot: match_ns is matcher wall-clock, not
		// worker-pool queueing.
		start := time.Now()
		res, merr = s.matcher.MatchTrace(tracePoints(trace))
		elapsed = time.Since(start)
	})
	if perr != nil {
		return res, &httpError{code: http.StatusServiceUnavailable, msg: perr.Error()}
	}
	s.stats.matchNS.Add(elapsed.Nanoseconds())
	s.metrics.stageMatch.Observe(elapsed.Seconds())
	if merr != nil {
		s.stats.tracesFailed.Add(1)
		return res, badRequest("map matching failed: %v", merr)
	}
	s.stats.tracesMatched.Add(1)
	s.metrics.matchConfidence.Observe(res.Confidence)
	if res.Splits > 0 {
		s.stats.tracesSplit.Add(1)
	}
	return res, nil
}

// segmentSymbols converts a matched vertex path into the engine's symbol
// alphabet: vertex IDs for vertex-representation datasets, edge IDs for
// edge representation (SURS). A single-vertex segment converts to an
// empty edge-representation path.
func (s *Server) segmentSymbols(path []int32) ([]traj.Symbol, error) {
	if s.eng.Unsafe().Dataset().Rep == traj.VertexRep {
		return path, nil
	}
	edges, err := s.matcher.Graph().VertexPathToEdges(path)
	if err != nil {
		// Matched segments are connected by construction; a failure here
		// means the matcher and engine disagree about the network.
		return nil, &httpError{code: http.StatusInternalServerError, msg: "matched path not convertible: " + err.Error()}
	}
	return edges, nil
}

// resolveTrace turns a query request's raw trace into symbols in req.Q
// (the longest matched segment; the whole path when the match is
// split-free) and returns the match metadata for the response.
func (s *Server) resolveTrace(ctx context.Context, req *queryRequest) (*mapmatch.Result, error) {
	if len(req.Q) > 0 {
		return nil, badRequest("q and trace are mutually exclusive")
	}
	if err := s.validateTrace(req.Trace); err != nil {
		return nil, err
	}
	res, err := s.matchTrace(ctx, req.Trace)
	if err != nil {
		return nil, err
	}
	s.stats.traceQueries.Add(1)
	path, _ := res.Path()
	syms, err := s.segmentSymbols(path)
	if err != nil {
		return nil, err
	}
	if len(syms) == 0 {
		return nil, badRequest("trace matched to an empty path")
	}
	req.Q = syms
	return &res, nil
}

// --- /v1/match ------------------------------------------------------------

type matchRequest struct {
	Trace []tracePoint `json:"trace"`
}

type matchSegmentJSON struct {
	// Symbols is the segment's path in the engine's query alphabet.
	Symbols []traj.Symbol `json:"symbols"`
	// First and Last are the inclusive sample range the segment explains.
	First int `json:"first"`
	Last  int `json:"last"`
	// Confidence is the segment's mean per-sample match likelihood.
	Confidence float64 `json:"confidence"`
}

type matchResponse struct {
	Segments   []matchSegmentJSON `json:"segments"`
	Confidence float64            `json:"confidence"`
	Splits     int                `json:"splits"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	s.stats.match.Add(1)
	var req matchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if err := s.validateTrace(req.Trace); err != nil {
		s.fail(w, err)
		return
	}
	res, err := s.matchTrace(r.Context(), req.Trace)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := matchResponse{Confidence: res.Confidence, Splits: res.Splits}
	for _, seg := range res.Segments {
		syms, serr := s.segmentSymbols(seg.Path)
		if serr != nil {
			s.fail(w, serr)
			return
		}
		resp.Segments = append(resp.Segments, matchSegmentJSON{
			Symbols:    syms,
			First:      seg.First,
			Last:       seg.Last,
			Confidence: seg.Confidence,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /v1/ingest -----------------------------------------------------------

type ingestRequest struct {
	Traces [][]tracePoint `json:"traces"`
}

type ingestItemResponse struct {
	// IDs are the trajectory IDs assigned to the trace's appended
	// segments (one per connected segment with at least one symbol).
	IDs        []int32 `json:"ids,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Splits     int     `json:"splits,omitempty"`
	// Skipped counts matched segments too short to index.
	Skipped int    `json:"skipped,omitempty"`
	Error   string `json:"error,omitempty"`
}

type ingestResponse struct {
	Results []ingestItemResponse `json:"results"`
	// Appended is the total number of trajectories indexed.
	Appended   int    `json:"appended"`
	Generation uint64 `json:"generation"`
}

// handleIngest matches a batch of raw traces and appends every matched
// segment as a new trajectory. Matching fans out through the worker pool
// (bounded like every other engine operation); each trace's segments are
// appended under one write-lock acquisition. One unmatched trace fails
// alone, not the batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.stats.ingest.Add(1)
	var req ingestRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if s.matcher == nil {
		s.fail(w, errGPSDisabled)
		return
	}
	if len(req.Traces) == 0 {
		s.fail(w, badRequest("empty ingest batch"))
		return
	}
	if len(req.Traces) > s.cfg.MaxBatch {
		s.fail(w, badRequest("ingest batch of %d traces exceeds limit %d", len(req.Traces), s.cfg.MaxBatch))
		return
	}
	results := make([]ingestItemResponse, len(req.Traces))
	var wg sync.WaitGroup
	for i := range req.Traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					s.stats.errors.Add(1)
					results[i].Error = "internal error during ingest"
				}
			}()
			results[i] = s.ingestOne(r.Context(), req.Traces[i])
			if results[i].Error != "" {
				s.stats.errors.Add(1)
			}
		}(i)
	}
	wg.Wait()
	resp := ingestResponse{Results: results, Generation: s.eng.Generation()}
	for i := range results {
		resp.Appended += len(results[i].IDs)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestOne matches one trace and appends its usable segments.
func (s *Server) ingestOne(ctx context.Context, trace []tracePoint) ingestItemResponse {
	var item ingestItemResponse
	if err := s.validateTrace(trace); err != nil {
		item.Error = err.Error()
		return item
	}
	res, err := s.matchTrace(ctx, trace)
	if err != nil {
		item.Error = err.Error()
		return item
	}
	item.Confidence = res.Confidence
	item.Splits = res.Splits
	var trajs []traj.Trajectory
	for _, seg := range res.Segments {
		syms, serr := s.segmentSymbols(seg.Path)
		if serr != nil {
			item.Error = serr.Error()
			return item
		}
		// Indexing needs at least one symbol, and single-vertex paths
		// carry no route information worth storing.
		if len(syms) == 0 || (s.eng.Unsafe().Dataset().Rep == traj.VertexRep && len(syms) < 2) {
			item.Skipped++
			continue
		}
		trajs = append(trajs, traj.Trajectory{Path: append([]traj.Symbol(nil), syms...)})
	}
	ids, err := s.eng.AppendBatch(trajs)
	if err != nil {
		// WAL failure: the whole batch was rejected atomically.
		item.Error = err.Error()
		return item
	}
	item.IDs = ids
	s.stats.segmentsAppended.Add(int64(len(item.IDs)))
	return item
}

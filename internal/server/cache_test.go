package server

import (
	"testing"

	"subtraj/internal/traj"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	a := &cacheEntry{key: "a", gen: 1}
	b := &cacheEntry{key: "b", gen: 1}
	d := &cacheEntry{key: "d", gen: 1}
	c.put(a)
	c.put(b)
	if _, ok := c.get("a", 1); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put(d) // evicts b
	if _, ok := c.get("b", 1); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.get("d", 1); !ok {
		t.Error("d should be present")
	}
	if got := c.evictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	c := newResultCache(8)
	c.put(&cacheEntry{key: "k", gen: 1, count: 5})
	if ent, ok := c.get("k", 1); !ok || ent.count != 5 {
		t.Fatalf("expected hit at gen 1")
	}
	if _, ok := c.get("k", 2); ok {
		t.Fatal("entry from gen 1 must not serve gen 2")
	}
	if got := c.invalidations.Load(); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
	if c.len() != 0 {
		t.Errorf("stale entry should have been dropped, len = %d", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put(&cacheEntry{key: "k", gen: 1})
	if _, ok := c.get("k", 1); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache must store nothing")
	}
}

func TestCacheKeyDisambiguates(t *testing.T) {
	q1 := []traj.Symbol{1, 2, 3}
	q2 := []traj.Symbol{1, 23}
	keys := map[string]bool{}
	for _, k := range []string{
		cacheKey("search", q1, 1.5),
		cacheKey("search", q2, 1.5),
		cacheKey("search", q1, 2.5),
		cacheKey("exact", q1),
		cacheKey("topk", q1, 3),
		cacheKey("temporal", q1, 1.5, 0, 100, 1, 0),
		cacheKey("temporal", q1, 1.5, 0, 100, 2, 0),
	} {
		if keys[k] {
			t.Errorf("duplicate cache key %q", k)
		}
		keys[k] = true
	}
	if cacheKey("search", q1, 1.5) != cacheKey("search", []traj.Symbol{1, 2, 3}, 1.5) {
		t.Error("identical queries must produce identical keys")
	}
}

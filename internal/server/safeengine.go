// Package server turns the in-process search engine into a long-running,
// concurrent query-serving subsystem: a thread-safe engine wrapper
// (SafeEngine), a bounded worker pool capping in-flight verifications, a
// generation-tagged LRU result cache, and an HTTP JSON API with running
// statistics. It is the seam later scaling work (sharding, replication,
// persistence) plugs into: everything above SafeEngine sees a safe,
// observable query service rather than a single-threaded library.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"subtraj/internal/core"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// SafeEngine wraps a core.Engine for concurrent use. Queries take a read
// lock and run in parallel; Append takes the write lock and is serialized
// against everything. The wrapper also hoists the engine's one hidden
// write under a read path — the lazily built departure-sorted temporal
// index — out from under concurrent readers (see core.Engine's doc
// comment for the full list of mutation points).
//
// Every Append bumps a generation counter; result caches key their
// entries on it so stale answers die with the generation instead of
// needing an explicit invalidation channel.
type SafeEngine struct {
	mu  sync.RWMutex
	eng *core.Engine // guarded by mu (the pointer itself is fixed at construction)
	gen atomic.Uint64

	// dur, when non-nil, makes every append write-ahead durable: the
	// batch is framed into the WAL (and fsynced per policy) before it is
	// applied to the in-memory engine, so an acknowledged append survives
	// a crash. Nil = volatile engine, appends behave exactly as before.
	// Written once by OpenDurable before the engine is shared, then
	// read-only — so it is deliberately not guarded by mu.
	dur *Durability
}

// NewSafeEngine wraps eng. The wrapper must be the only user of eng from
// then on: bypassing it reintroduces the data race it exists to prevent.
//
//subtrajlint:locked mu — s is private to this constructor
func NewSafeEngine(eng *core.Engine) *SafeEngine {
	return &SafeEngine{eng: eng}
}

// Unsafe returns the wrapped engine for single-threaded phases (bulk
// loading before serving starts). Callers must not use it concurrently
// with the wrapper's own methods.
//
//subtrajlint:locked mu — reads only the construction-immutable pointer; the caller contract above carries the burden
func (s *SafeEngine) Unsafe() *core.Engine { return s.eng }

// Generation returns the number of Appends applied so far. Two calls
// returning the same value bracket a window in which the dataset did not
// change, which is what makes it usable as a cache-validity tag.
func (s *SafeEngine) Generation() uint64 { return s.gen.Load() }

// Append indexes one more trajectory under the write lock and returns its
// ID. On a durable engine the record hits the write-ahead log first; a
// WAL failure returns an error and the engine state is unchanged (the
// append is neither applied nor acknowledged).
func (s *SafeEngine) Append(t traj.Trajectory) (int32, error) {
	ids, err := s.AppendBatch([]traj.Trajectory{t})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// AppendBatch indexes several trajectories under one write-lock
// acquisition and returns their IDs in order. The generation advances by
// len(ts), so each appended trajectory invalidates caches exactly as if
// appended alone — but concurrent searches are blocked only once. The
// GPS ingestion path appends each matched trace's segments through this.
//
// On a durable engine the whole batch is logged as one atomic WAL frame
// before any of it is applied: after a crash either every trajectory of
// the batch is recovered or none is. A WAL failure fails the batch
// without applying anything.
func (s *SafeEngine) AppendBatch(ts []traj.Trajectory) ([]int32, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	ids := make([]int32, len(ts))
	s.mu.Lock()
	if s.dur != nil {
		if err := s.dur.log.Append(ts); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("server: durable append: %w", err)
		}
	}
	for i := range ts {
		ids[i] = s.eng.Append(ts[i])
	}
	s.gen.Add(uint64(len(ts)))
	s.mu.Unlock()
	s.maybeCheckpoint()
	return ids, nil
}

// NumTrajectories returns the current dataset size.
func (s *SafeEngine) NumTrajectories() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Dataset().Len()
}

// Costs returns the engine's cost model (immutable after construction).
//
//subtrajlint:locked mu — the cost model is construction-immutable engine state
func (s *SafeEngine) Costs() wed.FilterCosts { return s.eng.Costs() }

// Threshold converts a τ_ratio into an absolute τ for query q.
//
//subtrajlint:locked mu — touches only the construction-immutable cost model
func (s *SafeEngine) Threshold(q []traj.Symbol, ratio float64) float64 {
	return ratio * core.SumFilterCost(s.eng.Costs(), q)
}

// Search answers a similarity search under the read lock.
func (s *SafeEngine) Search(q []traj.Symbol, tau float64) ([]traj.Match, error) {
	res, _, err := s.SearchQuery(core.Query{Q: q, Tau: tau})
	return res, err
}

// maxTemporalRetries bounds the optimistic RLock→build→retry dance of
// SearchQuery: past it the query builds the temporal index and runs
// under the write lock in one critical section. Without the bound, a
// departure-mode query races every Append for the window between
// PrepareTemporal's unlock and its own RLock — under sustained append
// traffic it can lose that race indefinitely and spin (liveness bug).
const maxTemporalRetries = 2

// SearchQuery answers a fully specified query under the read lock,
// upgrading to the write lock first when the query needs the not-yet-built
// temporal index. The upgrade is optimistic — build, downgrade, retry —
// at most maxTemporalRetries times; after that the query runs under the
// write lock itself, so sustained Append traffic can delay a temporal
// query but never starve it.
func (s *SafeEngine) SearchQuery(qr core.Query) ([]traj.Match, *core.QueryStats, error) {
	needsTemporal := qr.Temporal.Mode == core.TemporalDeparture && !qr.Temporal.DisablePrefilter
	for attempt := 0; ; attempt++ {
		s.mu.RLock()
		if !needsTemporal || s.eng.TemporalReady() {
			res, stats, err := s.eng.SearchQuery(qr)
			s.mu.RUnlock()
			return res, stats, err
		}
		// The departure-sorted postings are stale or missing; build them
		// under the write lock. An Append sneaking in between the unlock
		// and the retry sends us around the loop again — a bounded number
		// of times.
		s.mu.RUnlock()
		s.mu.Lock()
		if attempt >= maxTemporalRetries {
			// Retries exhausted: rebuild and answer in one write-locked
			// critical section no Append can interleave with. Concurrent
			// searches stall for this one query; liveness beats the lost
			// read-parallelism.
			s.eng.PrepareTemporal()
			res, stats, err := s.eng.SearchQuery(qr)
			s.mu.Unlock()
			return res, stats, err
		}
		s.eng.PrepareTemporal()
		s.mu.Unlock()
	}
}

// SearchTopK answers the top-k protocol under the read lock.
func (s *SafeEngine) SearchTopK(q []traj.Symbol, k int) ([]traj.Match, error) {
	res, _, err := s.SearchTopKStats(q, k, core.TopKOptions{})
	return res, err
}

// SearchTopKP is SearchTopK with an explicit shard-parallelism cap (the
// server passes the worker-pool slots it reserved for this query).
func (s *SafeEngine) SearchTopKP(q []traj.Symbol, k, parallelism int) ([]traj.Match, error) {
	res, _, err := s.SearchTopKStats(q, k, core.TopKOptions{Parallelism: parallelism})
	return res, err
}

// SearchTopKStats answers the top-k protocol under the read lock and
// returns the driver's merged QueryStats (rounds, reused candidates,
// final effective τ — see core.Engine.SearchTopKStats).
func (s *SafeEngine) SearchTopKStats(q []traj.Symbol, k int, opts core.TopKOptions) ([]traj.Match, *core.QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.SearchTopKStats(q, k, opts)
}

// NumShards returns the engine's index partition count — the ceiling on
// any single query's parallelism.
//
//subtrajlint:locked mu — the shard layout is fixed at construction
func (s *SafeEngine) NumShards() int { return s.eng.NumShards() }

// IndexBytes returns the index backend's memory footprint under the read
// lock (Append grows it under the write lock).
func (s *SafeEngine) IndexBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.IndexBytes()
}

// IndexKind names the index backend family ("pointer" or "compact");
// fixed at construction, so no lock is needed.
//
//subtrajlint:locked mu — fixed at construction
func (s *SafeEngine) IndexKind() string { return s.eng.IndexKind() }

// TemporalReady reports whether the departure-sorted temporal postings
// are built and current — the engine-readiness signal /healthz and the
// metrics scraper expose. Taken under the read lock because Append
// invalidates the flag under the write lock.
func (s *SafeEngine) TemporalReady() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.TemporalReady()
}

// EffectiveParallelism resolves a parallelism setting exactly as the
// engine will (0 = auto; clamped to the shard count). Both are fixed at
// construction, so no lock is needed.
//
//subtrajlint:locked mu — auto-parallelism and shard count are fixed at construction
func (s *SafeEngine) EffectiveParallelism(p int) int { return s.eng.EffectiveParallelism(p) }

// SearchExact answers the exact path query under the read lock.
func (s *SafeEngine) SearchExact(q []traj.Symbol) ([]traj.Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.SearchExact(q)
}

// CountExact returns the exact occurrence count under the read lock.
func (s *SafeEngine) CountExact(q []traj.Symbol) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.CountExact(q)
}

// Package server turns the in-process search engine into a long-running,
// concurrent query-serving subsystem: a thread-safe engine wrapper
// (SafeEngine), a bounded worker pool capping in-flight verifications, a
// generation-tagged LRU result cache, and an HTTP JSON API with running
// statistics. It is the seam later scaling work (sharding, replication,
// persistence) plugs into: everything above SafeEngine sees a safe,
// observable query service rather than a single-threaded library.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"subtraj/internal/core"
	"subtraj/internal/index"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// SafeEngine makes a core.Engine safe for concurrent use with epoch
// snapshots instead of a reader/writer lock (DESIGN.md §1.11). Every
// query loads the current immutable engineState through one atomic
// pointer and runs entirely against it — the read path acquires no
// mutex, ever. Appends serialize on a narrow ingest mutex, extend the
// master dataset and an incremental delta index, and publish a fresh
// snapshot whose backend merges the frozen base with an O(1) view of
// that delta (index.Epoch); a background compactor periodically folds
// the delta into a new base so delta cost stays bounded. Durable engines share the same discipline: the WAL
// append, the dataset extension, and checkpointing all happen under the
// ingest mutex, so the checkpoint barrier and the publish barrier are
// one generation.
//
// Every Append bumps the published generation; result caches key their
// entries on it so stale answers die with the generation instead of
// needing an explicit invalidation channel. Compaction and checkpoints
// change the index representation but not its contents, so they publish
// at the current generation and cached results stay valid.
type SafeEngine struct {
	// state is the currently published snapshot. Searches Load it once
	// and never look back; the writer Stores a fresh state after every
	// mutation. Never nil after construction.
	state atomic.Pointer[engineState]

	// ingestMu serializes all writers: appends, compaction's publish
	// step, and durable checkpoints. Searches never touch it.
	ingestMu sync.Mutex
	ds       *traj.Dataset   // guarded by ingestMu — master dataset; published states hold fixed prefix views
	base     *epochBase      // guarded by ingestMu — current fold target for publishes
	delta    *index.DeltaMap // guarded by ingestMu — incremental index over ds beyond the base; reset at every fold

	// initialLen is the dataset length at construction; the published
	// generation is ds.Len()−initialLen, i.e. appends observed by this
	// wrapper. Immutable after construction.
	initialLen int
	costs      wed.FilterCosts // immutable after construction

	// compactAppends is the delta size that triggers a background fold
	// (0 = never compact automatically). Atomic so tests and servers may
	// retune it while ingest is live.
	compactAppends  atomic.Int64
	compactInFlight atomic.Bool
	compactions     atomic.Int64
	lastCompactNS   atomic.Int64
	publishes       atomic.Int64

	// dur, when non-nil, makes every append write-ahead durable: the
	// batch is framed into the WAL (and fsynced per policy) before it is
	// applied to the in-memory engine, so an acknowledged append survives
	// a crash. Nil = volatile engine, appends behave exactly as before.
	// Written once by OpenDurable before the engine is shared, then
	// read-only — so it is deliberately NOT guarded by ingestMu.
	dur *Durability
}

// engineState is one published snapshot: an engine over a fixed prefix
// view of the master dataset, with an index that merges the frozen base
// and the delta covering [baseLen, baseLen+deltaLen). Immutable once
// stored in SafeEngine.state.
type engineState struct {
	eng      *core.Engine
	gen      uint64
	baseLen  int // trajectories folded into the frozen base
	deltaLen int // trajectories in the delta on top of it
	base     *epochBase
}

// epochBase is the frozen index core shared by consecutive snapshots
// between compactions. It carries the one lazily built structure a
// frozen base may still grow — the departure-sorted temporal order —
// behind a sync.Once, so the first temporal query across ALL states
// sharing the base builds it exactly once; after that the build is a
// read-only no-op and the steady-state read path is one atomic load.
type epochBase struct {
	backend      index.Backend
	temporalOnce sync.Once
	temporalDone atomic.Bool
}

// ensureTemporal builds the base's departure-sorted order once. Safe to
// call concurrently from the lock-free read path: losers of the Once
// race block until the winner finishes, and subsequent calls are free.
func (b *epochBase) ensureTemporal() {
	b.temporalOnce.Do(func() {
		b.backend.BuildTemporal()
		b.temporalDone.Store(true)
	})
}

// NewSafeEngine wraps eng. The wrapper must be the only user of eng from
// then on: bypassing it reintroduces the data race it exists to prevent.
// eng's dataset becomes the master dataset and its backend the first
// frozen base (so construction publishes snapshot zero without copying
// anything).
//
//subtrajlint:locked ingestMu — s is private to this constructor
func NewSafeEngine(eng *core.Engine) *SafeEngine {
	s := &SafeEngine{ds: eng.Dataset(), costs: eng.Costs()}
	s.base = &epochBase{backend: eng.Backend()}
	s.base.temporalDone.Store(eng.TemporalReady())
	s.initialLen = s.ds.Len()
	s.resetDeltaLocked()
	s.publishLocked()
	return s
}

// resetDeltaLocked starts a fresh delta map at the current fold
// boundary and re-indexes whatever dataset tail the base does not
// cover. Called whenever the base changes (construction, compaction,
// compact checkpoints); the tail is at most the few appends that landed
// during an off-lock fold, so this stays cheap. Ordinary appends extend
// the existing map incrementally instead.
//
//subtrajlint:locked ingestMu — callers hold the ingest mutex (or own s exclusively in the constructor)
func (s *SafeEngine) resetDeltaLocked() {
	folded := s.base.backend.NumTrajectories()
	d := index.NewDeltaMap(folded)
	for id := folded; id < s.ds.Len(); id++ {
		d.Append(int32(id), s.ds.Get(int32(id)))
	}
	s.delta = d
}

// publishLocked snapshots the master dataset into a fresh immutable
// engineState and stores it. The delta is NOT rebuilt: the writer's
// incremental DeltaMap already indexes the unfolded tail, and taking a
// bounded view of it is O(1) — two slice-header copies — so the cost of
// a publish is independent of the delta size. That, plus the delta
// answering temporal windows by scan instead of a per-publish sort, is
// what keeps a sustained append stream from starving searches of CPU.
//
//subtrajlint:locked ingestMu — every caller holds the ingest mutex (or is the constructor)
func (s *SafeEngine) publishLocked() {
	n := s.ds.Len()
	view := s.ds.Slice(n)
	folded := s.base.backend.NumTrajectories()
	backend := s.base.backend
	if n > folded {
		backend = index.NewEpoch(s.base.backend, s.delta.View())
	}
	st := &engineState{
		eng:      core.NewEngineWithBackend(view, backend, s.costs),
		gen:      uint64(n - s.initialLen),
		baseLen:  folded,
		deltaLen: n - folded,
		base:     s.base,
	}
	s.state.Store(st)
	s.publishes.Add(1)
}

// Unsafe returns the currently published engine for single-threaded
// phases (bulk loading before serving starts). Callers must not mutate
// through it concurrently with the wrapper's own methods — a published
// engine is an immutable snapshot, and writes through it are invisible
// to the wrapper until its next publish.
func (s *SafeEngine) Unsafe() *core.Engine { return s.state.Load().eng }

// Generation returns the number of Appends applied so far. Two calls
// returning the same value bracket a window in which the dataset did not
// change, which is what makes it usable as a cache-validity tag.
func (s *SafeEngine) Generation() uint64 { return s.state.Load().gen }

// Append indexes one more trajectory and returns its ID. On a durable
// engine the record hits the write-ahead log first; a WAL failure
// returns an error and the engine state is unchanged (the append is
// neither applied nor acknowledged).
func (s *SafeEngine) Append(t traj.Trajectory) (int32, error) {
	ids, err := s.AppendBatch([]traj.Trajectory{t})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// AppendBatch indexes several trajectories under one ingest-mutex
// acquisition and publishes one snapshot covering all of them, so the
// generation advances by len(ts) and each appended trajectory
// invalidates caches exactly as if appended alone. Concurrent searches
// are never blocked: they keep answering from the previous snapshot
// until the new one is stored. The GPS ingestion path appends each
// matched trace's segments through this.
//
// On a durable engine the whole batch is logged as one atomic WAL frame
// before any of it is applied: after a crash either every trajectory of
// the batch is recovered or none is. A WAL failure fails the batch
// without applying anything.
func (s *SafeEngine) AppendBatch(ts []traj.Trajectory) ([]int32, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	ids := make([]int32, len(ts))
	s.ingestMu.Lock()
	if s.dur != nil {
		if err := s.dur.log.Append(ts); err != nil {
			s.ingestMu.Unlock()
			return nil, fmt.Errorf("server: durable append: %w", err)
		}
	}
	for i := range ts {
		ids[i] = s.ds.Add(ts[i])
		s.delta.Append(ids[i], s.ds.Get(ids[i]))
	}
	s.publishLocked()
	s.ingestMu.Unlock()
	s.maybeCheckpoint()
	s.maybeCompact()
	return ids, nil
}

// NumTrajectories returns the published dataset size.
func (s *SafeEngine) NumTrajectories() int {
	st := s.state.Load()
	return st.baseLen + st.deltaLen
}

// DeltaLen returns how many appended trajectories the published
// snapshot's delta holds (0 right after a compaction or checkpoint).
func (s *SafeEngine) DeltaLen() int { return s.state.Load().deltaLen }

// FoldedLen returns how many trajectories the published snapshot's
// frozen base covers.
func (s *SafeEngine) FoldedLen() int { return s.state.Load().baseLen }

// Costs returns the engine's cost model (immutable after construction).
func (s *SafeEngine) Costs() wed.FilterCosts { return s.costs }

// Threshold converts a τ_ratio into an absolute τ for query q.
func (s *SafeEngine) Threshold(q []traj.Symbol, ratio float64) float64 {
	return ratio * core.SumFilterCost(s.costs, q)
}

// Search answers a similarity search against the current snapshot.
func (s *SafeEngine) Search(q []traj.Symbol, tau float64) ([]traj.Match, error) {
	res, _, err := s.SearchQuery(core.Query{Q: q, Tau: tau})
	return res, err
}

// SearchQuery answers a fully specified query against the current
// snapshot, with no lock on the read path. A TemporalDeparture query
// never waits on an index rebuild: the delta answers windows by a
// bounded filtered scan, and the frozen base's departure order is built
// exactly once behind the base's sync.Once (a one-time cost after which
// the check is a single atomic load). The old optimistic
// RLock→build→retry loop this replaces is gone — there is no lock to
// retry for.
func (s *SafeEngine) SearchQuery(qr core.Query) ([]traj.Match, *core.QueryStats, error) {
	st := s.state.Load()
	if qr.Temporal.Mode == core.TemporalDeparture && !qr.Temporal.DisablePrefilter {
		st.base.ensureTemporal()
	}
	return st.eng.SearchQuery(qr)
}

// SearchTopK answers the top-k protocol against the current snapshot.
func (s *SafeEngine) SearchTopK(q []traj.Symbol, k int) ([]traj.Match, error) {
	res, _, err := s.SearchTopKStats(q, k, core.TopKOptions{})
	return res, err
}

// SearchTopKP is SearchTopK with an explicit shard-parallelism cap (the
// server passes the worker-pool slots it reserved for this query).
func (s *SafeEngine) SearchTopKP(q []traj.Symbol, k, parallelism int) ([]traj.Match, error) {
	res, _, err := s.SearchTopKStats(q, k, core.TopKOptions{Parallelism: parallelism})
	return res, err
}

// SearchTopKStats answers the top-k protocol against the current
// snapshot and returns the driver's merged QueryStats (rounds, reused
// candidates, final effective τ — see core.Engine.SearchTopKStats). The
// whole multi-round protocol runs against one snapshot, so appends
// landing between rounds cannot skew the τ refinement.
func (s *SafeEngine) SearchTopKStats(q []traj.Symbol, k int, opts core.TopKOptions) ([]traj.Match, *core.QueryStats, error) {
	return s.state.Load().eng.SearchTopKStats(q, k, opts)
}

// NumShards returns the published engine's index partition count — the
// ceiling on any single query's parallelism (the base's shards plus one
// delta shard while the delta is non-empty).
func (s *SafeEngine) NumShards() int { return s.state.Load().eng.NumShards() }

// IndexBytes returns the published index's memory footprint.
func (s *SafeEngine) IndexBytes() int64 { return s.state.Load().eng.IndexBytes() }

// IndexKind names the index backend family ("pointer" or "compact");
// fixed at construction (compaction preserves the family).
func (s *SafeEngine) IndexKind() string { return s.state.Load().eng.IndexKind() }

// TemporalReady reports whether the snapshot's departure-sorted
// temporal view is fully built — the engine-readiness signal /healthz
// and the metrics scraper expose. The delta needs no temporal order
// (windows are scans); the base's is built on first temporal use.
func (s *SafeEngine) TemporalReady() bool { return s.state.Load().base.temporalDone.Load() }

// PrepareTemporal eagerly builds the base's temporal order so the first
// TemporalDeparture query doesn't pay for it.
func (s *SafeEngine) PrepareTemporal() { s.state.Load().base.ensureTemporal() }

// EffectiveParallelism resolves a parallelism setting exactly as the
// published engine will (0 = auto; clamped to the shard count).
func (s *SafeEngine) EffectiveParallelism(p int) int {
	return s.state.Load().eng.EffectiveParallelism(p)
}

// SearchExact answers the exact path query against the current snapshot.
func (s *SafeEngine) SearchExact(q []traj.Symbol) ([]traj.Match, error) {
	return s.state.Load().eng.SearchExact(q)
}

// CountExact returns the exact occurrence count against the current
// snapshot.
func (s *SafeEngine) CountExact(q []traj.Symbol) (int, error) {
	return s.state.Load().eng.CountExact(q)
}

package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"subtraj/internal/core"
	"subtraj/internal/mapmatch"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wal"
	"subtraj/internal/wed"
)

// TestEpochLifecycleHammer exercises the full epoch-snapshot lifecycle
// at once, under -race: concurrent searches of every kind, direct
// appends, GPS trace ingest through /v1/ingest, background compaction,
// durable checkpoints, and /metrics + /v1/stats scrapes. It asserts the
// two system-wide invariants the design owes its users:
//
//   - monotonicity: the published generation and trajectory count never
//     move backwards, no matter how folds and checkpoints republish;
//   - zero lost appends: every acknowledged append (direct or via
//     ingest) is counted by exactly one generation step, so the final
//     generation equals the acknowledged total.
func TestEpochLifecycleHammer(t *testing.T) {
	dir := t.TempDir()
	ds := testutil.GoldenDataset()
	baseLen := ds.Len()
	safe, _, err := OpenDurable(dir, ds, wed.NewLev(), DurableOptions{
		Sync:            wal.SyncNever, // hammer throughput; fsync is PR 8's concern
		CheckpointBytes: 1 << 15,       // small: force background checkpoints mid-run
	})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer safe.Durable().Close()
	safe.SetCompactAppends(24) // small: force background folds mid-run

	srv := New(safe, Config{
		CacheSize:     32,
		MaxConcurrent: 8,
		MaxSymbol:     int32(testutil.GoldenRows * testutil.GoldenCols),
		Matcher:       mapmatch.New(testutil.GoldenNet(), mapmatch.Config{MaxGap: 300}),
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := sampleQuery(t, ds, 6, 3)
	tau := safe.Threshold(q, 0.3)

	const (
		searchers = 4
		appenders = 3
		rounds    = 40
	)
	var (
		wg      sync.WaitGroup // bounded workers
		watchWG sync.WaitGroup // monotonicity watchers, stopped after the workers drain
		acked   atomic.Int64   // appends acknowledged to a client
		stop    = make(chan struct{})
	)

	// Monotonicity watchers: generation and size may only grow, across
	// appends AND across republishes by folds and checkpoints.
	monotone := func(read func() int64, what string) {
		defer watchWG.Done()
		var last int64 = -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := read()
			if v < last {
				t.Errorf("%s moved backwards: %d -> %d", what, last, v)
				return
			}
			last = v
		}
	}
	watchWG.Add(2)
	go monotone(func() int64 { return int64(safe.Generation()) }, "generation")
	go monotone(func() int64 { return int64(safe.NumTrajectories()) }, "trajectories")

	// Searchers: every query kind against the lock-free snapshot.
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0:
					if _, err := safe.Search(q, tau); err != nil {
						t.Errorf("Search: %v", err)
					}
				case 1:
					if _, err := safe.SearchTopK(q, 3); err != nil {
						t.Errorf("SearchTopK: %v", err)
					}
				case 2:
					qr := core.Query{Q: q, Tau: tau, Parallelism: 2}
					qr.Temporal.Mode = core.TemporalDeparture
					qr.Temporal.Lo, qr.Temporal.Hi = 0, 1e12
					if _, _, err := safe.SearchQuery(qr); err != nil {
						t.Errorf("SearchQuery(departure): %v", err)
					}
				case 3:
					if _, err := safe.SearchExact(q); err != nil {
						t.Errorf("SearchExact: %v", err)
					}
				case 4:
					if _, err := safe.CountExact(q); err != nil {
						t.Errorf("CountExact: %v", err)
					}
				}
			}
		}(g)
	}

	// Direct appenders (the WAL-logged write path).
	rng := rand.New(rand.NewSource(42))
	paths := make([][]traj.Symbol, appenders*rounds)
	for i := range paths {
		paths[i] = append([]traj.Symbol(nil), ds.Path(int32(rng.Intn(baseLen)))...)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := safe.Append(traj.Trajectory{Path: paths[g*rounds+i]}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				acked.Add(1)
			}
		}(g)
	}

	// Trace ingest over HTTP: the GPS pipeline appends matched segments
	// through the same batch path; its response acknowledges how many.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			trace, _ := goldenTrace(10, i%len(testutil.GoldenPaths()), int64(i))
			resp, out := post(t, ts.URL+"/v1/ingest", map[string]any{"traces": []any{trace}})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("ingest: status %d", resp.StatusCode)
				return
			}
			var appended int
			if err := json.Unmarshal(out["appended"], &appended); err != nil {
				t.Errorf("ingest response: %v", err)
				return
			}
			acked.Add(int64(appended))
		}
	}()

	// Explicit compaction and checkpoint callers on top of the
	// background triggers; busy errors mean someone else is folding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := safe.Compact(); err != nil && err != ErrCompactionBusy {
				t.Errorf("Compact: %v", err)
			}
			if _, err := safe.Checkpoint(); err != nil && err != ErrCheckpointBusy {
				t.Errorf("Checkpoint: %v", err)
			}
		}
	}()

	// Scraper: /metrics exposition and /v1/stats while everything runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastGen uint64
		for i := 0; i < 8; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("metrics scrape: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, fam := range []string{"subtraj_delta_trajectories", "subtraj_compactions_total", "subtraj_snapshot_publishes_total", "subtraj_folded_trajectories"} {
				if !strings.Contains(string(body), fam) {
					t.Errorf("metrics scrape missing %s", fam)
					return
				}
			}
			var st StatsSnapshot
			getJSON(t, ts.URL+"/v1/stats", &st)
			if st.Engine.Generation < lastGen {
				t.Errorf("stats generation moved backwards: %d -> %d", lastGen, st.Engine.Generation)
				return
			}
			lastGen = st.Engine.Generation
			if st.Ingest.FoldedTrajectories+st.Ingest.DeltaTrajectories != st.Engine.Trajectories {
				t.Errorf("stats partition mismatch: folded %d + delta %d != %d",
					st.Ingest.FoldedTrajectories, st.Ingest.DeltaTrajectories, st.Engine.Trajectories)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	watchWG.Wait()

	// Zero lost appends: the acknowledged total IS the generation.
	if got, want := safe.Generation(), uint64(acked.Load()); got != want {
		t.Errorf("generation %d != acknowledged appends %d", got, want)
	}
	if got, want := safe.NumTrajectories(), baseLen+int(acked.Load()); got != want {
		t.Errorf("trajectories %d != base %d + acked %d", got, baseLen, acked.Load())
	}

	// A final fold must preserve both, and fold everything.
	for {
		if _, err := safe.Compact(); err == nil {
			break
		} else if err != ErrCompactionBusy {
			t.Fatalf("final compact: %v", err)
		}
	}
	if safe.DeltaLen() != 0 {
		t.Errorf("delta %d after final compact, want 0", safe.DeltaLen())
	}
	if got, want := safe.FoldedLen(), baseLen+int(acked.Load()); got != want {
		t.Errorf("folded %d after final compact, want %d", got, want)
	}
	if srv.Snapshot().Ingest.SnapshotPublishes < int64(acked.Load()) {
		t.Errorf("publishes %d < acked appends %d", srv.Snapshot().Ingest.SnapshotPublishes, acked.Load())
	}
}

// Package shortestpath provides the shortest-path substrate the paper's
// network-aware cost functions (NetEDR, NetERP, §2.2.3) depend on:
//
//   - plain Dijkstra (ground truth and path extraction),
//   - bounded Dijkstra, which yields exactly the substitution neighbourhood
//     B(q) = {b : spdist(q,b) ≤ η} and the filtering cost
//     c(q) = min spdist(q,·) beyond η (Definition 4, Eq. 7), and
//   - a hub-labelling index (pruned landmark labelling [1,2] in the paper's
//     references) for O(label) point-to-point distance queries during
//     verification.
//
// The paper symmetrises the road network for Net* functions ("One way to
// fix this is to make the road network undirected", §2.2.3); Undirected
// builds that view.
package shortestpath

import (
	"container/heap"
	"math"

	"subtraj/internal/roadnet"
)

// Inf is the distance reported for unreachable vertices.
const Inf = math.MaxFloat64

// Adjacency is a flattened weighted adjacency list, the input shared by all
// algorithms in this package.
type Adjacency struct {
	heads   []int32   // head vertex per arc
	weights []float64 // weight per arc
	offsets []int32   // CSR offsets, len = |V|+1
}

// NumVertices returns the vertex count.
func (a *Adjacency) NumVertices() int { return len(a.offsets) - 1 }

// Neighbors returns the arc targets and weights of v. Shared; do not modify.
func (a *Adjacency) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := a.offsets[v], a.offsets[v+1]
	return a.heads[lo:hi], a.weights[lo:hi]
}

// FromGraph builds the directed adjacency of g.
func FromGraph(g *roadnet.Graph) *Adjacency {
	n := g.NumVertices()
	deg := make([]int32, n+1)
	for _, e := range g.Edges() {
		deg[e.From+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	a := &Adjacency{
		heads:   make([]int32, g.NumEdges()),
		weights: make([]float64, g.NumEdges()),
		offsets: deg,
	}
	fill := make([]int32, n)
	for _, e := range g.Edges() {
		pos := a.offsets[e.From] + fill[e.From]
		a.heads[pos] = e.To
		a.weights[pos] = e.Weight
		fill[e.From]++
	}
	return a
}

// Undirected builds the symmetrised adjacency of g: every edge becomes two
// arcs with the same weight (parallel duplicates keep the minimum weight
// implicitly through Dijkstra).
func Undirected(g *roadnet.Graph) *Adjacency {
	n := g.NumVertices()
	deg := make([]int32, n+1)
	for _, e := range g.Edges() {
		deg[e.From+1]++
		deg[e.To+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	m := 2 * g.NumEdges()
	a := &Adjacency{
		heads:   make([]int32, m),
		weights: make([]float64, m),
		offsets: deg,
	}
	fill := make([]int32, n)
	put := func(from, to int32, w float64) {
		pos := a.offsets[from] + fill[from]
		a.heads[pos] = to
		a.weights[pos] = w
		fill[from]++
	}
	for _, e := range g.Edges() {
		put(e.From, e.To, e.Weight)
		put(e.To, e.From, e.Weight)
	}
	return a
}

// pqItem is a priority-queue entry.
type pqItem struct {
	v int32
	d float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes single-source distances from src. Unreachable vertices
// get Inf.
func Dijkstra(a *Adjacency, src int32) []float64 {
	n := a.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	q := pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		heads, ws := a.Neighbors(it.v)
		for i, w := range heads {
			nd := it.d + ws[i]
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(&q, pqItem{w, nd})
			}
		}
	}
	return dist
}

// DijkstraPath returns a shortest path from src to dst in vertex
// representation, or nil if unreachable.
func DijkstraPath(a *Adjacency, src, dst int32) []int32 {
	n := a.NumVertices()
	dist := make([]float64, n)
	prev := make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	dist[src] = 0
	q := pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.v == dst {
			break
		}
		if it.d > dist[it.v] {
			continue
		}
		heads, ws := a.Neighbors(it.v)
		for i, w := range heads {
			nd := it.d + ws[i]
			if nd < dist[w] {
				dist[w] = nd
				prev[w] = it.v
				heap.Push(&q, pqItem{w, nd})
			}
		}
	}
	if dist[dst] == Inf {
		return nil
	}
	var path []int32
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Bounded runs Dijkstra from src, reporting every vertex with distance at
// most radius via within, and the smallest distance strictly greater than
// radius (the first settled vertex beyond the ball) as beyond. If no vertex
// lies beyond the radius, beyond is Inf.
//
// within(v, d) receives vertices in ascending distance order, src first
// with d = 0. This is the exact computation of B(q) and c(q)'s network term
// for NetEDR/NetERP.
func Bounded(a *Adjacency, src int32, radius float64, within func(v int32, d float64)) (beyond float64) {
	dist := map[int32]float64{src: 0}
	q := pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if d, ok := dist[it.v]; ok && it.d > d {
			continue
		}
		if it.d > radius {
			return it.d
		}
		if within != nil {
			within(it.v, it.d)
		}
		heads, ws := a.Neighbors(it.v)
		for i, w := range heads {
			nd := it.d + ws[i]
			if d, ok := dist[w]; !ok || nd < d {
				dist[w] = nd
				heap.Push(&q, pqItem{w, nd})
			}
		}
	}
	return Inf
}

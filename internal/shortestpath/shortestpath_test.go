package shortestpath_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/roadnet"
	"subtraj/internal/shortestpath"
	"subtraj/internal/workload"
)

func smallGraph(seed int64) *roadnet.Graph {
	rng := rand.New(rand.NewSource(seed))
	return roadnet.GenerateGrid(roadnet.DefaultGridConfig(8, 8), rng)
}

// floydWarshall is the reference all-pairs implementation.
func floydWarshall(g *roadnet.Graph, undirected bool) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Weight < d[e.From][e.To] {
			d[e.From][e.To] = e.Weight
		}
		if undirected && e.Weight < d[e.To][e.From] {
			d[e.To][e.From] = e.Weight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func eq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) || a == shortestpath.Inf || b == shortestpath.Inf {
		return (math.IsInf(a, 1) || a == shortestpath.Inf) && (math.IsInf(b, 1) || b == shortestpath.Inf)
	}
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a))
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := smallGraph(seed)
		adj := shortestpath.FromGraph(g)
		ref := floydWarshall(g, false)
		for src := 0; src < g.NumVertices(); src += 7 {
			dist := shortestpath.Dijkstra(adj, int32(src))
			for v := range dist {
				if !eq(dist[v], ref[src][v]) {
					t.Fatalf("seed %d: dist(%d,%d) = %v, want %v", seed, src, v, dist[v], ref[src][v])
				}
			}
		}
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := smallGraph(4)
	und := shortestpath.Undirected(g)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		a := int32(rng.Intn(g.NumVertices()))
		da := shortestpath.Dijkstra(und, a)
		b := int32(rng.Intn(g.NumVertices()))
		db := shortestpath.Dijkstra(und, b)
		if !eq(da[b], db[a]) {
			t.Fatalf("undirected asymmetry: d(%d,%d)=%v vs d(%d,%d)=%v", a, b, da[b], b, a, db[a])
		}
	}
}

func TestDijkstraPathIsValidAndOptimal(t *testing.T) {
	g := smallGraph(5)
	adj := shortestpath.FromGraph(g)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		src := int32(rng.Intn(g.NumVertices()))
		dst := int32(rng.Intn(g.NumVertices()))
		dist := shortestpath.Dijkstra(adj, src)
		path := shortestpath.DijkstraPath(adj, src, dst)
		if dist[dst] == shortestpath.Inf {
			if path != nil {
				t.Fatalf("path to unreachable %d", dst)
			}
			continue
		}
		if path == nil || path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("bad endpoints: %v (src=%d dst=%d)", path, src, dst)
		}
		var sum float64
		for j := 0; j+1 < len(path); j++ {
			eid, ok := g.FindEdge(path[j], path[j+1])
			if !ok {
				t.Fatalf("path edge %d->%d missing", path[j], path[j+1])
			}
			sum += g.EdgeWeight(eid)
		}
		if !eq(sum, dist[dst]) {
			t.Fatalf("path weight %v != dist %v", sum, dist[dst])
		}
	}
}

func TestBoundedDijkstraExact(t *testing.T) {
	g := smallGraph(6)
	und := shortestpath.Undirected(g)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 25; i++ {
		src := int32(rng.Intn(g.NumVertices()))
		full := shortestpath.Dijkstra(und, src)
		radius := rng.Float64() * 400
		got := map[int32]float64{}
		beyond := shortestpath.Bounded(und, src, radius, func(v int32, d float64) {
			got[v] = d
		})
		// Within-ball set must match the full Dijkstra restriction.
		wantBeyond := math.Inf(1)
		for v, d := range full {
			if d <= radius {
				gd, ok := got[int32(v)]
				if !ok {
					t.Fatalf("bounded missed %d at %v ≤ %v", v, d, radius)
				}
				if !eq(gd, d) {
					t.Fatalf("bounded dist %v != %v", gd, d)
				}
			} else if d < wantBeyond {
				wantBeyond = d
			}
		}
		for v := range got {
			if full[v] > radius {
				t.Fatalf("bounded returned %d beyond radius", v)
			}
		}
		if !eq(beyond, wantBeyond) {
			t.Fatalf("beyond %v != %v", beyond, wantBeyond)
		}
	}
}

func TestHubLabelsMatchDijkstra(t *testing.T) {
	for _, seed := range []int64{7, 8} {
		g := smallGraph(seed)
		und := shortestpath.Undirected(g)
		hl := shortestpath.BuildHubLabels(und)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 15; i++ {
			src := int32(rng.Intn(g.NumVertices()))
			dist := shortestpath.Dijkstra(und, src)
			for v := 0; v < g.NumVertices(); v += 3 {
				if !eq(hl.Query(src, int32(v)), dist[v]) {
					t.Fatalf("seed %d: HL(%d,%d) = %v, want %v", seed, src, v, hl.Query(src, int32(v)), dist[v])
				}
			}
		}
		if hl.LabelCount() == 0 {
			t.Fatal("empty labels")
		}
	}
}

func TestHubLabelsDirected(t *testing.T) {
	// Hub labels must also be exact on the directed graph (one-way
	// streets make distances asymmetric).
	g := smallGraph(9)
	adj := shortestpath.FromGraph(g)
	hl := shortestpath.BuildHubLabels(adj)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		src := int32(rng.Intn(g.NumVertices()))
		dist := shortestpath.Dijkstra(adj, src)
		for v := 0; v < g.NumVertices(); v += 5 {
			if !eq(hl.Query(src, int32(v)), dist[v]) {
				t.Fatalf("directed HL(%d,%d) = %v, want %v", src, v, hl.Query(src, int32(v)), dist[v])
			}
		}
	}
}

func TestReverseAdjacency(t *testing.T) {
	// Dijkstra on the reverse graph from v equals distances *to* v in
	// the original.
	g := smallGraph(11)
	fwd := shortestpath.FromGraph(g)
	rev := shortestpath.Reverse(fwd)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		v := int32(rng.Intn(g.NumVertices()))
		toV := shortestpath.Dijkstra(rev, v)
		for u := 0; u < g.NumVertices(); u += 7 {
			fromU := shortestpath.Dijkstra(fwd, int32(u))
			if !eq(toV[u], fromU[v]) {
				t.Fatalf("rev dist(%d<-%d)=%v, fwd dist(%d->%d)=%v", v, u, toV[u], u, v, fromU[v])
			}
		}
	}
}

func TestHubLabelsOnWorkloadGraph(t *testing.T) {
	// Integration: a larger generated city.
	w := workload.Generate(workload.Tiny(10))
	und := shortestpath.Undirected(w.Graph)
	hl := shortestpath.BuildHubLabels(und)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5; i++ {
		src := int32(rng.Intn(w.Graph.NumVertices()))
		dist := shortestpath.Dijkstra(und, src)
		for v := 0; v < w.Graph.NumVertices(); v += 11 {
			if !eq(hl.Query(src, int32(v)), dist[v]) {
				t.Fatalf("HL(%d,%d) = %v, want %v", src, v, hl.Query(src, int32(v)), dist[v])
			}
		}
	}
}

package shortestpath

import (
	"container/heap"
	"sort"
)

// HubLabels is a 2-hop labelling index for exact point-to-point shortest
// path distance queries, built with pruned landmark labelling (Akiba et
// al., SIGMOD 2013 — reference [2] of the paper). The paper uses hub
// labelling to evaluate sub(a,b) for NetEDR/NetERP during verification
// without per-pair Dijkstra runs (§4.2, Figure 2).
//
// Labels are built over an arbitrary Adjacency; for the paper's symmetrised
// Net* functions pass Undirected(g). Hubs are stored as processing ranks,
// so every label list is sorted by construction and queries are merge-joins.
type HubLabels struct {
	// fwd[v]: (hub rank, dist) pairs with distances v -> hub ... i.e.
	// hubs that cover paths leaving v. bwd[v]: hubs covering paths
	// entering v.
	fwdHubs [][]int32
	fwdDist [][]float64
	bwdHubs [][]int32
	bwdDist [][]float64
}

// BuildHubLabels constructs the index. Vertices are processed in descending
// degree order (a standard, effective ordering for road networks); each
// landmark runs a pruned forward and a pruned backward Dijkstra.
func BuildHubLabels(a *Adjacency) *HubLabels {
	n := a.NumVertices()
	rev := reverse(a)

	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	deg := func(v int32) int {
		h, _ := a.Neighbors(v)
		hr, _ := rev.Neighbors(v)
		return len(h) + len(hr)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := deg(order[i]), deg(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	hl := &HubLabels{
		fwdHubs: make([][]int32, n),
		fwdDist: make([][]float64, n),
		bwdHubs: make([][]int32, n),
		bwdDist: make([][]float64, n),
	}

	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	var touched []int32

	// prunedDijkstra grows labels for the landmark with the given rank.
	// forward=true explores the forward graph from the landmark (paths
	// landmark -> v), appending the landmark to bwd labels of reached
	// vertices; forward=false explores the reverse graph (paths
	// v -> landmark), appending to fwd labels.
	prunedDijkstra := func(rank int32, landmark int32, forward bool) {
		adj := a
		if !forward {
			adj = rev
		}
		dist[landmark] = 0
		touched = append(touched[:0], landmark)
		q := pq{{landmark, 0}}
		for q.Len() > 0 {
			it := heap.Pop(&q).(pqItem)
			if it.d > dist[it.v] {
				continue
			}
			// Prune: if labels built so far already certify a distance
			// landmark->v (resp. v->landmark) no worse than it.d, v needs
			// no new label and its subtree is covered.
			var certified float64
			if forward {
				certified = joinSorted(hl.fwdHubs[landmark], hl.fwdDist[landmark], hl.bwdHubs[it.v], hl.bwdDist[it.v])
			} else {
				certified = joinSorted(hl.fwdHubs[it.v], hl.fwdDist[it.v], hl.bwdHubs[landmark], hl.bwdDist[landmark])
			}
			if certified <= it.d {
				continue
			}
			if forward {
				hl.bwdHubs[it.v] = append(hl.bwdHubs[it.v], rank)
				hl.bwdDist[it.v] = append(hl.bwdDist[it.v], it.d)
			} else {
				hl.fwdHubs[it.v] = append(hl.fwdHubs[it.v], rank)
				hl.fwdDist[it.v] = append(hl.fwdDist[it.v], it.d)
			}
			heads, ws := adj.Neighbors(it.v)
			for i, w := range heads {
				nd := it.d + ws[i]
				if nd < dist[w] {
					if dist[w] == Inf {
						touched = append(touched, w)
					}
					dist[w] = nd
					heap.Push(&q, pqItem{w, nd})
				}
			}
		}
		for _, v := range touched {
			dist[v] = Inf
		}
	}

	for rank, landmark := range order {
		prunedDijkstra(int32(rank), landmark, true)
		prunedDijkstra(int32(rank), landmark, false)
	}
	return hl
}

// Query returns the exact shortest-path distance from s to t, or Inf if t
// is unreachable from s.
func (hl *HubLabels) Query(s, t int32) float64 {
	if s == t {
		return 0
	}
	return joinSorted(hl.fwdHubs[s], hl.fwdDist[s], hl.bwdHubs[t], hl.bwdDist[t])
}

// LabelCount returns the total number of label entries (an index-size
// metric reported alongside Table 6).
func (hl *HubLabels) LabelCount() int {
	var n int
	for v := range hl.fwdHubs {
		n += len(hl.fwdHubs[v]) + len(hl.bwdHubs[v])
	}
	return n
}

// joinSorted merge-joins two rank-sorted label lists and returns the
// minimum combined distance, or Inf when the lists share no hub.
func joinSorted(ah []int32, ad []float64, bh []int32, bd []float64) float64 {
	best := Inf
	i, j := 0, 0
	for i < len(ah) && j < len(bh) {
		switch {
		case ah[i] < bh[j]:
			i++
		case ah[i] > bh[j]:
			j++
		default:
			if d := ad[i] + bd[j]; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// Reverse returns the adjacency with every arc flipped; Dijkstra from v
// on the reverse graph yields distances *to* v in the original (used by
// the naturalness metric of §6.2.2).
func Reverse(a *Adjacency) *Adjacency { return reverse(a) }

func reverse(a *Adjacency) *Adjacency {
	n := a.NumVertices()
	deg := make([]int32, n+1)
	for v := int32(0); v < int32(n); v++ {
		heads, _ := a.Neighbors(v)
		for _, w := range heads {
			deg[w+1]++
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	m := len(a.heads)
	r := &Adjacency{
		heads:   make([]int32, m),
		weights: make([]float64, m),
		offsets: deg,
	}
	fill := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		heads, ws := a.Neighbors(v)
		for i, w := range heads {
			pos := r.offsets[w] + fill[w]
			r.heads[pos] = v
			r.weights[pos] = ws[i]
			fill[w]++
		}
	}
	return r
}

package workload_test

import (
	"bytes"
	"os"
	"testing"

	"subtraj/internal/workload"
)

func loadWorkloadCorpus(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile("testdata/tiny_workload.gob")
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	return data
}

// TestWorkloadCorpusLoads pins the gob container format: the checked-in
// corpus must keep loading, so format changes that orphan old datagen
// files break here first.
func TestWorkloadCorpusLoads(t *testing.T) {
	w, err := workload.Load(bytes.NewReader(loadWorkloadCorpus(t)))
	if err != nil {
		t.Fatalf("corpus does not load: %v", err)
	}
	if w.Data.Len() != 8 {
		t.Fatalf("corpus has %d trajectories, want 8", w.Data.Len())
	}
	if w.Graph.NumVertices() == 0 || w.Graph.NumEdges() == 0 {
		t.Fatal("corpus graph is empty")
	}
	for id := range w.Data.Trajs {
		if !w.Graph.IsPath(w.Data.Trajs[id].Path) {
			t.Fatalf("corpus trajectory %d is not a connected path", id)
		}
	}
}

// FuzzWorkloadLoad: malformed input must return an error — never panic or
// allocate unboundedly. Inputs that do load must satisfy the container's
// invariants and survive a save/load round trip.
func FuzzWorkloadLoad(f *testing.F) {
	valid := loadWorkloadCorpus(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Add(append([]byte{}, valid[2:]...))
	for _, i := range []int{0, 10, 100, len(valid) - 1} {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := workload.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Loaded workloads must uphold the invariants Load promises.
		n := int32(w.Graph.NumVertices())
		for id := range w.Data.Trajs {
			for _, v := range w.Data.Trajs[id].Path {
				if v < 0 || v >= n {
					t.Fatalf("trajectory %d references vertex %d of %d", id, v, n)
				}
			}
		}
		var buf bytes.Buffer
		if err := w.Save(&buf); err != nil {
			t.Fatalf("loaded workload does not save: %v", err)
		}
		if _, err := workload.Load(&buf); err != nil {
			t.Fatalf("saved copy does not load: %v", err)
		}
	})
}

package workload

import (
	"math/rand"

	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
	"subtraj/internal/traj"
)

// This file generates synthetic raw GPS traces from ground-truth vertex
// paths — the input side of the GPS-native pipeline. Each trace is a noisy
// sampling of a network path, so the pair (trace, truth) is both a
// benchmark workload for the matching layer and the labelled data the
// closed-loop accuracy harness scores against (the paper assumes this
// preprocessing already happened; here it is reproduced end to end).

// GPSConfig parameterises trace synthesis. The zero value selects
// defaults matching the synthetic cities (~100 m blocks): σ = 20 m noise,
// one sample every 50 m, no dropouts.
type GPSConfig struct {
	// NoiseSigma is the standard deviation (metres) of the isotropic
	// Gaussian perturbation applied to every emitted sample. Default 20.
	NoiseSigma float64
	// SampleSpacing is the along-path distance (metres) between
	// consecutive GPS samples. Default 50.
	SampleSpacing float64
	// DropoutRate is the per-sample probability that the receiver loses
	// fix and the next DropoutLen samples are dropped (tunnels, urban
	// canyons). Default 0 (disabled).
	DropoutRate float64
	// DropoutLen is the number of consecutive samples lost per dropout.
	// Default 3.
	DropoutLen int
}

func (c GPSConfig) withDefaults() GPSConfig {
	if c.NoiseSigma <= 0 {
		c.NoiseSigma = 20
	}
	if c.SampleSpacing <= 0 {
		c.SampleSpacing = 50
	}
	if c.DropoutLen <= 0 {
		c.DropoutLen = 3
	}
	return c
}

// Trace is one synthetic GPS observation of a ground-truth network path.
type Trace struct {
	// Points are the noisy GPS samples, in travel order.
	Points []geo.Point
	// Truth is the vertex path the trace was sampled from.
	Truth []traj.Symbol
	// SourceID is the dataset trajectory the truth came from, or -1 when
	// the trace was generated from a standalone path.
	SourceID int32
	// Dropouts counts the dropout gaps injected into the trace.
	Dropouts int
}

// GenerateTrace samples one noisy GPS trace along the vertex path on g.
// Sampling walks the path edge by edge, emitting a sample every
// SampleSpacing metres (always including the start and end of the path),
// perturbing each by Gaussian noise, and cutting dropout gaps. The result
// is deterministic in rng.
func GenerateTrace(g *roadnet.Graph, path []traj.Symbol, cfg GPSConfig, rng *rand.Rand) Trace {
	cfg = cfg.withDefaults()
	tr := Trace{Truth: path, SourceID: -1}
	if len(path) == 0 {
		return tr
	}

	// Ideal (noise-free) sample positions along the polyline.
	ideal := samplePolyline(g, path, cfg.SampleSpacing)

	// Noise + dropouts.
	drop := 0
	for _, p := range ideal {
		if drop > 0 {
			drop--
			continue
		}
		if cfg.DropoutRate > 0 && rng.Float64() < cfg.DropoutRate {
			drop = cfg.DropoutLen
			tr.Dropouts++
			continue
		}
		tr.Points = append(tr.Points, geo.Point{
			X: p.X + rng.NormFloat64()*cfg.NoiseSigma,
			Y: p.Y + rng.NormFloat64()*cfg.NoiseSigma,
		})
	}
	return tr
}

// samplePolyline emits points every spacing metres along the vertex path,
// including both endpoints.
func samplePolyline(g *roadnet.Graph, path []traj.Symbol, spacing float64) []geo.Point {
	out := []geo.Point{g.Coord(path[0])}
	carry := 0.0 // distance already covered toward the next sample
	for i := 0; i+1 < len(path); i++ {
		a, b := g.Coord(path[i]), g.Coord(path[i+1])
		seg := a.Dist(b)
		if seg == 0 {
			continue
		}
		pos := spacing - carry
		for pos < seg {
			out = append(out, a.Lerp(b, pos/seg))
			pos += spacing
		}
		carry = seg - (pos - spacing)
	}
	if last := g.Coord(path[len(path)-1]); out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}

// SampleTraces draws n traces from the workload's trajectories: each picks
// a random data trajectory (length ≥ minLen vertices) and samples a noisy
// trace of its path. Deterministic in seed; the traces' Truth/SourceID
// fields link each back to its ground truth.
func (w *Workload) SampleTraces(n, minLen int, cfg GPSConfig, seed int64) []Trace {
	rng := rand.New(rand.NewSource(seed))
	if minLen < 2 {
		minLen = 2
	}
	out := make([]Trace, 0, n)
	const attempts = 10000
	for len(out) < n {
		var id int32 = -1
		for a := 0; a < attempts; a++ {
			cand := int32(rng.Intn(w.Data.Len()))
			if len(w.Data.Trajs[cand].Path) >= minLen {
				id = cand
				break
			}
		}
		if id < 0 {
			break // no trajectory long enough; return what we have
		}
		tr := GenerateTrace(w.Graph, w.Data.Trajs[id].Path, cfg, rng)
		tr.SourceID = id
		out = append(out, tr)
	}
	return out
}

// LCSAccuracy scores a matched symbol sequence against its ground truth as
// LCS(got, want) / len(want) — the fraction of the true path recovered in
// order. 1.0 means the truth is a subsequence of the match (typically:
// exact recovery); extra detour symbols in got do not raise the score.
// This is the metric of the closed-loop accuracy harness.
func LCSAccuracy(got, want []traj.Symbol) float64 {
	if len(want) == 0 {
		return 1
	}
	if len(got) == 0 {
		return 0
	}
	// Standard O(len(got)·len(want)) LCS with two rolling rows.
	prev := make([]int, len(want)+1)
	cur := make([]int, len(want)+1)
	for i := 1; i <= len(got); i++ {
		for j := 1; j <= len(want); j++ {
			if got[i-1] == want[j-1] {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(want)]) / float64(len(want))
}

// TraceStats summarises a batch of traces (used by logs and benchmarks).
type TraceStats struct {
	Traces   int
	Samples  int
	Dropouts int
	// MeanSpacing is the mean distance between consecutive samples,
	// noise included.
	MeanSpacing float64
}

// Stats computes summary statistics over traces.
func Stats(traces []Trace) TraceStats {
	var st TraceStats
	st.Traces = len(traces)
	var distSum float64
	var hops int
	for _, tr := range traces {
		st.Samples += len(tr.Points)
		st.Dropouts += tr.Dropouts
		for i := 1; i < len(tr.Points); i++ {
			distSum += tr.Points[i].Dist(tr.Points[i-1])
			hops++
		}
	}
	if hops > 0 {
		st.MeanSpacing = distSum / float64(hops)
	}
	return st
}

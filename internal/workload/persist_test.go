package workload_test

import (
	"bytes"
	"testing"

	"subtraj/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := workload.Generate(workload.Tiny(55))
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := workload.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumVertices() != orig.Graph.NumVertices() {
		t.Fatalf("vertices %d != %d", got.Graph.NumVertices(), orig.Graph.NumVertices())
	}
	if got.Graph.NumEdges() != orig.Graph.NumEdges() {
		t.Fatalf("edges %d != %d", got.Graph.NumEdges(), orig.Graph.NumEdges())
	}
	for v := int32(0); v < int32(orig.Graph.NumVertices()); v++ {
		if got.Graph.Coord(v) != orig.Graph.Coord(v) {
			t.Fatalf("coord %d differs", v)
		}
	}
	for i, e := range orig.Graph.Edges() {
		ge := got.Graph.Edge(int32(i))
		if ge.From != e.From || ge.To != e.To || ge.Weight != e.Weight {
			t.Fatalf("edge %d differs", i)
		}
	}
	if got.Data.Len() != orig.Data.Len() {
		t.Fatalf("trajectories %d != %d", got.Data.Len(), orig.Data.Len())
	}
	for id := range orig.Data.Trajs {
		a, b := orig.Data.Trajs[id], got.Data.Trajs[id]
		if len(a.Path) != len(b.Path) || len(a.Times) != len(b.Times) {
			t.Fatalf("trajectory %d shape differs", id)
		}
		for i := range a.Path {
			if a.Path[i] != b.Path[i] || a.Times[i] != b.Times[i] {
				t.Fatalf("trajectory %d content differs at %d", id, i)
			}
		}
	}
	if got.Config.Name != orig.Config.Name {
		t.Fatal("config lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := workload.Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptEdges(t *testing.T) {
	// Craft a stream with an out-of-range edge by saving and patching is
	// brittle; instead encode a minimal bad container through the public
	// API: a graph with 1 vertex cannot have edges, so hand-build via
	// Save of a valid workload then Load of a truncated prefix.
	orig := workload.Generate(workload.Tiny(56))
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := workload.Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

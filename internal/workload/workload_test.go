package workload_test

import (
	"math/rand"
	"testing"

	"subtraj/internal/traj"
	"subtraj/internal/workload"
)

func TestGenerateDeterministic(t *testing.T) {
	a := workload.Generate(workload.Tiny(7))
	b := workload.Generate(workload.Tiny(7))
	if a.Data.Len() != b.Data.Len() {
		t.Fatal("non-deterministic trajectory count")
	}
	for i := range a.Data.Trajs {
		pa, pb := a.Data.Trajs[i].Path, b.Data.Trajs[i].Path
		if len(pa) != len(pb) {
			t.Fatalf("trajectory %d length differs", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("trajectory %d differs at %d", i, j)
			}
		}
	}
}

func TestTrajectoriesArePaths(t *testing.T) {
	w := workload.Generate(workload.Tiny(8))
	for id := range w.Data.Trajs {
		p := w.Data.Trajs[id].Path
		vp := make([]int32, len(p))
		copy(vp, p)
		if !w.Graph.IsPath(vp) {
			t.Fatalf("trajectory %d is not a path", id)
		}
	}
}

func TestTimestampsMonotone(t *testing.T) {
	w := workload.Generate(workload.Tiny(9))
	for id := range w.Data.Trajs {
		ts := w.Data.Trajs[id].Times
		p := w.Data.Trajs[id].Path
		if len(ts) != len(p) {
			t.Fatalf("trajectory %d: %d timestamps for %d vertices", id, len(ts), len(p))
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("trajectory %d: non-increasing time at %d", id, i)
			}
		}
	}
}

func TestAverageLengthNearTarget(t *testing.T) {
	cfg := workload.Tiny(10)
	cfg.NumTrajectories = 200
	cfg.TargetLen = 30
	w := workload.Generate(cfg)
	avg := w.Data.AvgLen()
	if avg < float64(cfg.TargetLen)*0.5 || avg > float64(cfg.TargetLen)*1.5 {
		t.Fatalf("average length %v far from target %d", avg, cfg.TargetLen)
	}
}

func TestSampleQuery(t *testing.T) {
	w := workload.Generate(workload.Tiny(11))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		q, err := workload.SampleQuery(w.Data, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(q) != 8 {
			t.Fatalf("query length %d", len(q))
		}
		vp := make([]int32, len(q))
		copy(vp, q)
		if !w.Graph.IsPath(vp) {
			t.Fatal("query is not a path")
		}
	}
	// Impossible length must error.
	if _, err := workload.SampleQuery(w.Data, 1<<20, rng); err == nil {
		t.Fatal("oversized query accepted")
	}
	qs, err := workload.SampleQueries(w.Data, 5, 7, rng)
	if err != nil || len(qs) != 7 {
		t.Fatalf("SampleQueries: %v, %d", err, len(qs))
	}
}

func TestScale(t *testing.T) {
	cfg := workload.BeijingLike()
	half := cfg.Scale(0.5)
	if half.NumTrajectories != cfg.NumTrajectories/2 {
		t.Fatalf("scale: %d", half.NumTrajectories)
	}
	if half.Name != cfg.Name {
		t.Fatal("scale must preserve identity")
	}
}

func TestPaperShapedConfigs(t *testing.T) {
	// Relative shape assertions from Table 2: Porto has the most
	// trajectories of the three real datasets; Singapore the longest
	// paths and smallest network; SanFran the largest count.
	b, p, s, f := workload.BeijingLike(), workload.PortoLike(), workload.SingaporeLike(), workload.SanFranLike()
	if !(p.NumTrajectories > b.NumTrajectories && b.NumTrajectories > s.NumTrajectories) {
		t.Fatal("trajectory-count ordering broken")
	}
	if f.NumTrajectories <= p.NumTrajectories {
		t.Fatal("SanFran must be the bulk dataset")
	}
	if !(s.TargetLen > b.TargetLen && s.TargetLen > p.TargetLen) {
		t.Fatal("Singapore must have the longest paths")
	}
	if !(s.GridRows < b.GridRows && s.GridRows < p.GridRows) {
		t.Fatal("Singapore must have the smallest network")
	}
}

func TestRingRadialWorkload(t *testing.T) {
	cfg := workload.PortoLike()
	cfg.NumTrajectories = 150
	w := workload.Generate(cfg)
	if w.Graph.NumVertices() == 0 {
		t.Fatal("empty ring-radial graph")
	}
	for id := range w.Data.Trajs {
		p := w.Data.Trajs[id].Path
		vp := make([]int32, len(p))
		copy(vp, p)
		if !w.Graph.IsPath(vp) {
			t.Fatalf("trajectory %d is not a path on the ring-radial network", id)
		}
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := workload.SampleQuery(w.Data, 40, rng); err != nil {
		t.Fatalf("cannot sample |Q|=40 queries: %v", err)
	}
}

func TestEdgeRepConversionOfWorkload(t *testing.T) {
	w := workload.Generate(workload.Tiny(12))
	ed, err := w.Data.ToEdgeRep(w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if ed.Rep != traj.EdgeRep {
		t.Fatal("wrong rep")
	}
	if ed.Len() == 0 {
		t.Fatal("empty edge dataset")
	}
}

package workload

import (
	"encoding/gob"
	"fmt"
	"io"

	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
	"subtraj/internal/traj"
)

// fileFormat is the self-describing gob container for a workload: graph
// structure plus vertex-representation trajectories. It is deliberately
// flat (parallel slices) so the format stays stable as internal types
// evolve.
type fileFormat struct {
	Config         Config
	CoordX, CoordY []float64
	EdgeFrom       []int32
	EdgeTo         []int32
	EdgeWeight     []float64
	Paths          [][]int32
	Times          [][]float64
}

// Save writes the workload to w in gob format.
func (wl *Workload) Save(w io.Writer) error {
	ff := fileFormat{Config: wl.Config}
	for _, p := range wl.Graph.Coords() {
		ff.CoordX = append(ff.CoordX, p.X)
		ff.CoordY = append(ff.CoordY, p.Y)
	}
	for _, e := range wl.Graph.Edges() {
		ff.EdgeFrom = append(ff.EdgeFrom, e.From)
		ff.EdgeTo = append(ff.EdgeTo, e.To)
		ff.EdgeWeight = append(ff.EdgeWeight, e.Weight)
	}
	for id := range wl.Data.Trajs {
		ff.Paths = append(ff.Paths, wl.Data.Trajs[id].Path)
		ff.Times = append(ff.Times, wl.Data.Trajs[id].Times)
	}
	return gob.NewEncoder(w).Encode(&ff)
}

// Load reads a workload written by Save.
func Load(r io.Reader) (*Workload, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	if len(ff.CoordX) != len(ff.CoordY) {
		return nil, fmt.Errorf("workload: corrupt file: %d xs, %d ys", len(ff.CoordX), len(ff.CoordY))
	}
	if len(ff.EdgeFrom) != len(ff.EdgeTo) || len(ff.EdgeFrom) != len(ff.EdgeWeight) {
		return nil, fmt.Errorf("workload: corrupt file: edge slices disagree")
	}
	if len(ff.Paths) != len(ff.Times) {
		return nil, fmt.Errorf("workload: corrupt file: %d paths, %d time rows", len(ff.Paths), len(ff.Times))
	}
	g := &roadnet.Graph{}
	for i := range ff.CoordX {
		g.AddVertex(geo.Point{X: ff.CoordX[i], Y: ff.CoordY[i]})
	}
	n := int32(g.NumVertices())
	for i := range ff.EdgeFrom {
		if ff.EdgeFrom[i] < 0 || ff.EdgeFrom[i] >= n || ff.EdgeTo[i] < 0 || ff.EdgeTo[i] >= n {
			return nil, fmt.Errorf("workload: corrupt file: edge %d endpoint out of range", i)
		}
		if ff.EdgeWeight[i] <= 0 {
			return nil, fmt.Errorf("workload: corrupt file: edge %d weight %v", i, ff.EdgeWeight[i])
		}
		g.AddEdge(ff.EdgeFrom[i], ff.EdgeTo[i], ff.EdgeWeight[i])
	}
	ds := traj.NewDataset(traj.VertexRep)
	for i := range ff.Paths {
		for _, v := range ff.Paths[i] {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("workload: corrupt file: trajectory %d references vertex %d", i, v)
			}
		}
		ds.Add(traj.Trajectory{Path: ff.Paths[i], Times: ff.Times[i]})
	}
	return &Workload{Config: ff.Config, Graph: g, Data: ds}, nil
}

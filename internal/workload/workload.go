// Package workload generates the synthetic datasets and queries that stand
// in for the paper's proprietary/unavailable data (Table 2: Beijing, Porto,
// Singapore, SanFran; §6.3: query sampling). See DESIGN.md §1.2 for the
// substitution rationale: relative shape (trajectory counts, average
// lengths, network sparsity) is preserved at a laptop-friendly scale.
//
// Trajectories are destination-biased random walks: from a random origin,
// each step picks an outgoing edge with probability exponentially tilted
// toward reducing Euclidean distance to a sampled destination. This yields
// mostly-direct paths with occasional detours — the same qualitative shape
// as map-matched taxi data — and heavy reuse of arterial corridors, which
// is the property (shared subpaths) the paper's trie caching exploits.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"subtraj/internal/roadnet"
	"subtraj/internal/traj"
)

// Topology selects the synthetic road-network shape.
type Topology uint8

const (
	// TopologyGrid is a perturbed rectangular street grid (North
	// American / planned-city shape).
	TopologyGrid Topology = iota
	// TopologyRingRadial is concentric rings with radial avenues
	// (historic European shape; used by the Porto-like workload).
	TopologyRingRadial
)

// Config parameterises one synthetic city + trajectory workload.
type Config struct {
	// Name labels the workload ("beijing", ...).
	Name string
	// Topology selects the network generator.
	Topology Topology
	// GridRows and GridCols size the road network (rings and spokes for
	// the ring-radial topology).
	GridRows, GridCols int
	// NumTrajectories is N.
	NumTrajectories int
	// TargetLen is the desired average path length (vertices); actual
	// lengths are spread around it like the paper's datasets.
	TargetLen int
	// Seed makes the workload reproducible.
	Seed int64
	// Horizon is the timestamp range (seconds): departures are uniform
	// over [0, Horizon).
	Horizon float64
	// SpeedMean is the nominal travel speed (metres/second) used to
	// derive per-edge travel times; per-trajectory and per-edge noise is
	// applied around it.
	SpeedMean float64
	// RouteReuse is the probability that a trajectory re-drives (a
	// subpath of) an earlier trajectory's route with fresh timestamps,
	// mimicking commuter/taxi route repetition in real data. Exact
	// subtrajectory repeats are what §6.2.1's travel-time protocol (and
	// the trie caching of §5.2) feed on. Negative disables; zero means
	// the default 0.25.
	RouteReuse float64
}

func (c Config) routeReuse() float64 {
	switch {
	case c.RouteReuse < 0:
		return 0
	case c.RouteReuse == 0:
		return 0.25
	default:
		return c.RouteReuse
	}
}

// Scale returns a copy of c with the trajectory count scaled by f
// (dataset-size sweeps, Figures 8 and 10).
func (c Config) Scale(f float64) Config {
	c.NumTrajectories = int(float64(c.NumTrajectories) * f)
	return c
}

// The four paper-shaped workloads, scaled down ~1:100 in trajectory count
// and ~1:25 in network size. Relative shape follows Table 2:
// Porto has the most trajectories (short paths), Singapore few but very
// long paths on the smallest network, SanFran is the bulk dataset.

// BeijingLike mirrors Beijing: mid-size network, avg length ~101.
func BeijingLike() Config {
	return Config{Name: "beijing", GridRows: 58, GridCols: 58, NumTrajectories: 7800, TargetLen: 101, Seed: 41, Horizon: 86400, SpeedMean: 11}
}

// PortoLike mirrors Porto: most trajectories, shorter paths (avg ~81), on
// a ring-radial (European) network.
func PortoLike() Config {
	return Config{Name: "porto", Topology: TopologyRingRadial, GridRows: 36, GridCols: 72, NumTrajectories: 17000, TargetLen: 81, Seed: 42, Horizon: 86400, SpeedMean: 11}
}

// SingaporeLike mirrors Singapore: smallest network, long paths (avg ~262).
func SingaporeLike() Config {
	return Config{Name: "singapore", GridRows: 27, GridCols: 27, NumTrajectories: 2900, TargetLen: 262, Seed: 43, Horizon: 86400, SpeedMean: 11}
}

// SanFranLike mirrors the synthesised SanFran bulk dataset.
func SanFranLike() Config {
	return Config{Name: "sanfran", GridRows: 64, GridCols: 64, NumTrajectories: 46000, TargetLen: 101, Seed: 44, Horizon: 86400, SpeedMean: 11}
}

// Tiny returns a miniature workload for unit tests.
func Tiny(seed int64) Config {
	return Config{Name: "tiny", GridRows: 12, GridCols: 12, NumTrajectories: 60, TargetLen: 25, Seed: seed, Horizon: 3600, SpeedMean: 11}
}

// Workload bundles a generated city: network + vertex-representation
// trajectories with timestamps.
type Workload struct {
	Config Config
	Graph  *roadnet.Graph
	// Data holds vertex-representation trajectories.
	Data *traj.Dataset
}

// Generate builds the workload deterministically from its seed.
func Generate(cfg Config) *Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g *roadnet.Graph
	switch cfg.Topology {
	case TopologyRingRadial:
		g = roadnet.GenerateRingRadial(cfg.GridRows, cfg.GridCols, 100, rng)
	default:
		g = roadnet.GenerateGrid(roadnet.DefaultGridConfig(cfg.GridRows, cfg.GridCols), rng)
	}
	ds := traj.NewDataset(traj.VertexRep)
	gen := newWalker(g, rng)
	reuse := cfg.routeReuse()
	for len(ds.Trajs) < cfg.NumTrajectories {
		var path []traj.Symbol
		if n := len(ds.Trajs); n > 0 && rng.Float64() < reuse {
			// Re-drive an earlier route: half the time the whole route
			// (commuters), otherwise a subpath of it.
			src := ds.Trajs[rng.Intn(n)].Path
			lo, hi := 0, len(src)
			if rng.Float64() < 0.5 {
				lo = rng.Intn(len(src))
				hi = lo + 2 + rng.Intn(len(src)-lo)
				if hi > len(src) {
					hi = len(src)
				}
			}
			if hi-lo >= 2 {
				path = append([]traj.Symbol(nil), src[lo:hi]...)
				// Half the re-drives take small detours — the
				// near-miss routes similarity search retrieves and
				// exact matching cannot (§6.2.1's premise).
				if rng.Float64() < 0.5 {
					for d := 1 + rng.Intn(3); d > 0; d-- {
						path = gen.detour(path)
					}
				}
			}
		}
		if path == nil {
			// Spread lengths like the paper's data: roughly uniform in
			// [TargetLen/2, 3·TargetLen/2].
			target := cfg.TargetLen/2 + rng.Intn(cfg.TargetLen) + 1
			path = gen.walk(target)
		}
		if len(path) < 2 {
			continue
		}
		times := timestamps(g, path, cfg, rng)
		ds.Add(traj.Trajectory{Path: path, Times: times})
	}
	return &Workload{Config: cfg, Graph: g, Data: ds}
}

// timestamps assigns a departure uniform over the horizon and per-edge
// travel times w(e)/speed with multiplicative noise.
func timestamps(g *roadnet.Graph, path []traj.Symbol, cfg Config, rng *rand.Rand) []float64 {
	times := make([]float64, len(path))
	t := rng.Float64() * cfg.Horizon
	times[0] = t
	// Per-trajectory speed factor: traffic conditions differ per trip.
	speed := cfg.SpeedMean * (0.6 + 0.8*rng.Float64())
	for i := 0; i+1 < len(path); i++ {
		eid, ok := g.FindEdge(path[i], path[i+1])
		w := 100.0
		if ok {
			w = g.EdgeWeight(eid)
		}
		// Per-edge noise: signals, congestion.
		t += w / speed * (0.7 + 0.6*rng.Float64())
		times[i+1] = t
	}
	return times
}

type walker struct {
	g   *roadnet.Graph
	rng *rand.Rand
}

func newWalker(g *roadnet.Graph, rng *rand.Rand) *walker {
	return &walker{g: g, rng: rng}
}

// walk produces a destination-biased random walk of roughly targetLen
// vertices.
func (w *walker) walk(targetLen int) []traj.Symbol {
	g := w.g
	n := g.NumVertices()
	origin := roadnet.VertexID(w.rng.Intn(n))
	dest := roadnet.VertexID(w.rng.Intn(n))
	path := make([]traj.Symbol, 0, targetLen+8)
	path = append(path, origin)
	cur := origin
	var prev roadnet.VertexID = -1
	// Temperature of the destination bias, in units of typical edge
	// length: smaller = straighter routes.
	const tilt = 0.6
	for len(path) < targetLen {
		out := g.Out(cur)
		if len(out) == 0 {
			break
		}
		destPt := g.Coord(dest)
		curD := g.Coord(cur).Dist(destPt)
		// Weight each next hop by exp(-(d(next,dest)-d(cur,dest))/ (tilt·w)).
		var weights [8]float64
		var total float64
		for i, eid := range out {
			if i >= len(weights) {
				break
			}
			e := g.Edge(eid)
			gain := g.Coord(e.To).Dist(destPt) - curD
			wt := math.Exp(-gain / (tilt * e.Weight))
			if e.To == prev {
				wt *= 0.05 // discourage immediate backtracking
			}
			weights[i] = wt
			total += wt
		}
		r := w.rng.Float64() * total
		next := out[0]
		for i := range out {
			if i >= len(weights) {
				break
			}
			r -= weights[i]
			if r <= 0 {
				next = out[i]
				break
			}
		}
		e := g.Edge(next)
		prev = cur
		cur = e.To
		path = append(path, cur)
		if cur == dest {
			// Arrived: resample a new destination to keep walking if the
			// path is still short, else stop.
			if len(path) >= targetLen/2 {
				break
			}
			dest = roadnet.VertexID(w.rng.Intn(n))
		}
	}
	return path
}

// detour replaces one interior vertex of the path with an alternate route
// between its neighbours, if the road network offers one within a few
// hops. The result is always a valid path; on failure the input is
// returned unchanged.
func (w *walker) detour(path []traj.Symbol) []traj.Symbol {
	if len(path) < 3 {
		return path
	}
	g := w.g
	i := 1 + w.rng.Intn(len(path)-2)
	from, avoid, to := path[i-1], path[i], path[i+1]
	// Bounded Dijkstra from `from` to `to` avoiding `avoid`, capped at a
	// few blocks so detours stay local.
	type item struct {
		v roadnet.VertexID
		d float64
	}
	const maxHops = 6
	dist := map[roadnet.VertexID]float64{from: 0}
	prev := map[roadnet.VertexID]roadnet.VertexID{}
	hops := map[roadnet.VertexID]int{from: 0}
	queue := []item{{from, 0}}
	for len(queue) > 0 {
		// Extract-min by scan: the frontier stays tiny at maxHops ≤ 6.
		mi := 0
		for k := 1; k < len(queue); k++ {
			if queue[k].d < queue[mi].d {
				mi = k
			}
		}
		cur := queue[mi]
		queue[mi] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if cur.d > dist[cur.v] {
			continue
		}
		if cur.v == to {
			break
		}
		if hops[cur.v] >= maxHops {
			continue
		}
		for _, eid := range g.Out(cur.v) {
			e := g.Edge(eid)
			if e.To == avoid {
				continue
			}
			nd := cur.d + e.Weight
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur.v
				hops[e.To] = hops[cur.v] + 1
				queue = append(queue, item{e.To, nd})
			}
		}
	}
	if _, ok := dist[to]; !ok {
		return path
	}
	var mid []traj.Symbol
	for v := to; v != from; v = prev[v] {
		mid = append(mid, v)
	}
	// mid is reversed (to ... exclusive-of-from); rebuild the path.
	out := make([]traj.Symbol, 0, len(path)+len(mid))
	out = append(out, path[:i]...) // ... , from
	for k := len(mid) - 1; k >= 0; k-- {
		out = append(out, mid[k])
	}
	out = append(out, path[i+2:]...)
	// Collapse any accidental immediate duplicates (defensive; the
	// construction should not produce them).
	dedup := out[:1]
	for _, v := range out[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// SampleQuery samples a query: a random subtrajectory of length qlen from
// a random data trajectory (§6.3's protocol). Trajectories shorter than
// qlen are skipped; err is non-nil only if no trajectory is long enough.
func SampleQuery(ds *traj.Dataset, qlen int, rng *rand.Rand) ([]traj.Symbol, error) {
	const attempts = 10000
	for i := 0; i < attempts; i++ {
		id := rng.Intn(ds.Len())
		p := ds.Trajs[id].Path
		if len(p) < qlen {
			continue
		}
		s := rng.Intn(len(p) - qlen + 1)
		q := make([]traj.Symbol, qlen)
		copy(q, p[s:s+qlen])
		return q, nil
	}
	return nil, fmt.Errorf("workload: no trajectory of length ≥ %d found", qlen)
}

// SampleQueries draws n queries.
func SampleQueries(ds *traj.Dataset, qlen, n int, rng *rand.Rand) ([][]traj.Symbol, error) {
	out := make([][]traj.Symbol, 0, n)
	for i := 0; i < n; i++ {
		q, err := SampleQuery(ds, qlen, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

package workload

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/traj"
)

func TestGenerateTraceDeterministic(t *testing.T) {
	w := Generate(Tiny(5))
	path := w.Data.Trajs[0].Path
	cfg := GPSConfig{NoiseSigma: 15, SampleSpacing: 40, DropoutRate: 0.05}
	a := GenerateTrace(w.Graph, path, cfg, rand.New(rand.NewSource(9)))
	b := GenerateTrace(w.Graph, path, cfg, rand.New(rand.NewSource(9)))
	if len(a.Points) != len(b.Points) || a.Dropouts != b.Dropouts {
		t.Fatalf("same seed produced different traces: %d/%d points, %d/%d dropouts",
			len(a.Points), len(b.Points), a.Dropouts, b.Dropouts)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestGenerateTraceSpacingAndNoise(t *testing.T) {
	w := Generate(Tiny(6))
	var path []traj.Symbol
	for _, tr := range w.Data.Trajs {
		if len(tr.Path) >= 10 {
			path = tr.Path
			break
		}
	}
	if path == nil {
		t.Fatal("no long trajectory in tiny workload")
	}
	// Noise-free, 50 m spacing on ~100 m blocks: samples must follow the
	// path closely and be ~50 m apart on average.
	tr := GenerateTrace(w.Graph, path, GPSConfig{NoiseSigma: 1e-9, SampleSpacing: 50}, rand.New(rand.NewSource(1)))
	if len(tr.Points) < len(path) {
		t.Fatalf("50 m spacing on 100 m blocks must oversample the path: %d samples for %d vertices",
			len(tr.Points), len(path))
	}
	st := Stats([]Trace{tr})
	if st.MeanSpacing < 30 || st.MeanSpacing > 70 {
		t.Errorf("mean spacing %.1f m, want ~50 m", st.MeanSpacing)
	}
	// First and last samples coincide with the path endpoints (noise ~0).
	if d := tr.Points[0].Dist(w.Graph.Coord(path[0])); d > 1e-6 {
		t.Errorf("first sample %v not at path start (dist %g)", tr.Points[0], d)
	}
	if d := tr.Points[len(tr.Points)-1].Dist(w.Graph.Coord(path[len(path)-1])); d > 1e-6 {
		t.Errorf("last sample not at path end (dist %g)", d)
	}

	// With noise, samples scatter: the RMS offset from the noise-free
	// positions should be on the order of σ√2.
	noisy := GenerateTrace(w.Graph, path, GPSConfig{NoiseSigma: 20, SampleSpacing: 50}, rand.New(rand.NewSource(1)))
	if len(noisy.Points) != len(tr.Points) {
		t.Fatalf("noise must not change the sample count: %d vs %d", len(noisy.Points), len(tr.Points))
	}
	var sum2 float64
	for i := range noisy.Points {
		sum2 += noisy.Points[i].Dist2(tr.Points[i])
	}
	rms := math.Sqrt(sum2 / float64(len(noisy.Points)))
	if rms < 5 || rms > 100 {
		t.Errorf("RMS offset %.1f m implausible for σ=20", rms)
	}
}

func TestGenerateTraceDropouts(t *testing.T) {
	w := Generate(Tiny(7))
	var path []traj.Symbol
	for _, tr := range w.Data.Trajs {
		if len(tr.Path) >= 15 {
			path = tr.Path
			break
		}
	}
	if path == nil {
		t.Fatal("no long trajectory")
	}
	full := GenerateTrace(w.Graph, path, GPSConfig{SampleSpacing: 30}, rand.New(rand.NewSource(2)))
	holey := GenerateTrace(w.Graph, path, GPSConfig{SampleSpacing: 30, DropoutRate: 0.2, DropoutLen: 4}, rand.New(rand.NewSource(2)))
	if holey.Dropouts == 0 {
		t.Fatal("20% dropout rate produced no dropouts")
	}
	if len(holey.Points) >= len(full.Points) {
		t.Errorf("dropouts must shrink the trace: %d vs %d samples", len(holey.Points), len(full.Points))
	}
}

func TestSampleTracesLinksTruth(t *testing.T) {
	w := Generate(Tiny(8))
	traces := w.SampleTraces(5, 10, GPSConfig{}, 3)
	if len(traces) != 5 {
		t.Fatalf("got %d traces, want 5", len(traces))
	}
	for i, tr := range traces {
		if tr.SourceID < 0 || int(tr.SourceID) >= w.Data.Len() {
			t.Fatalf("trace %d: bad source id %d", i, tr.SourceID)
		}
		truth := w.Data.Trajs[tr.SourceID].Path
		if len(truth) != len(tr.Truth) {
			t.Fatalf("trace %d: truth not linked to source", i)
		}
		for j := range truth {
			if truth[j] != tr.Truth[j] {
				t.Fatalf("trace %d: truth mismatch at %d", i, j)
			}
		}
		if len(tr.Points) == 0 {
			t.Fatalf("trace %d: empty", i)
		}
	}
	// Determinism across calls.
	again := w.SampleTraces(5, 10, GPSConfig{}, 3)
	for i := range traces {
		if len(again[i].Points) != len(traces[i].Points) || again[i].SourceID != traces[i].SourceID {
			t.Fatalf("trace %d not deterministic", i)
		}
	}
}

func TestLCSAccuracy(t *testing.T) {
	for _, tc := range []struct {
		got, want []traj.Symbol
		acc       float64
	}{
		{[]traj.Symbol{1, 2, 3}, []traj.Symbol{1, 2, 3}, 1},
		{[]traj.Symbol{1, 9, 2, 3}, []traj.Symbol{1, 2, 3}, 1},       // detour does not hurt
		{[]traj.Symbol{1, 2}, []traj.Symbol{1, 2, 3, 4}, 0.5},        // truncated
		{[]traj.Symbol{5, 6}, []traj.Symbol{1, 2}, 0},                // disjoint
		{[]traj.Symbol{3, 2, 1}, []traj.Symbol{1, 2, 3}, 1.0 / 3.0},  // reversed
		{nil, []traj.Symbol{1}, 0},
		{[]traj.Symbol{1}, nil, 1},
	} {
		if got := LCSAccuracy(tc.got, tc.want); math.Abs(got-tc.acc) > 1e-12 {
			t.Errorf("LCSAccuracy(%v, %v) = %g, want %g", tc.got, tc.want, got, tc.acc)
		}
	}
}

// Package baselines implements every competitor of §6.1 and Appendix C,
// adapted to subtrajectory search exactly as the paper describes:
//
//   - Plain-SW: index-free Smith–Waterman scan of the whole database,
//   - DISON: prefix τ-subsequence filtering (Yuan & Li's candidate
//     generation recast as an unoptimised Q' choice),
//   - Torch: postings scan over every query symbol,
//   - q-gram: count filtering on q-gram inverted indexes (EDR/Lev),
//   - DITA: offline subtrajectory enumeration with pivot tries,
//   - ERP-index: offline subtrajectory enumeration with a kd-tree over
//     reference-translated coordinate sums.
//
// All baselines are exact: they return the same result set as the OSF-BT
// engine (enforced by integration tests), differing only in filtering
// power and speed.
package baselines

import (
	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
	"subtraj/internal/wed"
)

// Result bundles a baseline's answer with its candidate count, the metric
// compared in Figure 11.
type Result struct {
	Matches    []traj.Match
	Candidates int
	// VerifyStats carries the verification counters when applicable.
	VerifyStats verify.Stats
}

// PlainSW scans every trajectory with the threshold-aware full DP
// (Appendix A adapted to emit all matches). No index is used.
func PlainSW(costs wed.Costs, ds *traj.Dataset, q []traj.Symbol, tau float64) Result {
	var out []traj.Match
	for id := range ds.Trajs {
		p := ds.Trajs[id].Path
		for _, m := range wed.AllMatches(costs, q, p, tau) {
			out = append(out, traj.Match{ID: int32(id), S: int32(m.S), T: int32(m.T), WED: m.WED})
		}
	}
	return Result{Matches: out, Candidates: ds.Len()}
}

// Strategy selects a τ-subsequence Q' for the filter-and-verify baselines.
// It returns the chosen (symbol, position) items. Implementations must
// guarantee Σ c(q) ≥ tau over the choice (or choose all of Q).
type Strategy func(costs wed.FilterCosts, inv *index.Inverted, q []traj.Symbol, tau float64) []filter.Item

// DISONStrategy is the paper's DISON adaptation: the shortest prefix whose
// accumulated filtering cost reaches τ.
func DISONStrategy(costs wed.FilterCosts, _ *index.Inverted, q []traj.Symbol, tau float64) []filter.Item {
	var items []filter.Item
	var c float64
	for i, sym := range q {
		items = append(items, filter.Item{Sym: sym, Pos: int32(i)})
		c += costs.FilterCost(sym)
		if c >= tau {
			break
		}
	}
	return items
}

// TorchStrategy is the paper's Torch adaptation: scan the postings of
// every query symbol (and its neighbours).
func TorchStrategy(_ wed.FilterCosts, _ *index.Inverted, q []traj.Symbol, _ float64) []filter.Item {
	items := make([]filter.Item, len(q))
	for i, sym := range q {
		items[i] = filter.Item{Sym: sym, Pos: int32(i)}
	}
	return items
}

// SearchWithStrategy runs filter-and-verify with an arbitrary Q' strategy
// and verification options — the shared body of DISON-{SW,BT} and
// Torch-{SW,BT}.
func SearchWithStrategy(costs wed.FilterCosts, ds *traj.Dataset, inv *index.Inverted,
	q []traj.Symbol, tau float64, strat Strategy, vopts verify.Options) Result {

	items := strat(costs, inv, q, tau)
	plan := &filter.Plan{Subseq: items}
	for _, it := range items {
		plan.Neighbors = append(plan.Neighbors, costs.Neighbors(it.Sym, nil))
		plan.CSum += costs.FilterCost(it.Sym)
	}
	cands := plan.Candidates(inv, nil)
	ver := verify.New(costs, ds, q, tau, vopts)
	for _, c := range cands {
		ver.Verify(verify.Candidate{ID: c.ID, Pos: c.Pos, IQ: c.IQ})
	}
	return Result{Matches: ver.Results(), Candidates: len(cands), VerifyStats: ver.Stats}
}

// DISON runs the DISON adaptation.
func DISON(costs wed.FilterCosts, ds *traj.Dataset, inv *index.Inverted, q []traj.Symbol, tau float64, vopts verify.Options) Result {
	return SearchWithStrategy(costs, ds, inv, q, tau, DISONStrategy, vopts)
}

// Torch runs the Torch adaptation.
func Torch(costs wed.FilterCosts, ds *traj.Dataset, inv *index.Inverted, q []traj.Symbol, tau float64, vopts verify.Options) Result {
	return SearchWithStrategy(costs, ds, inv, q, tau, TorchStrategy, vopts)
}

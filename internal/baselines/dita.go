package baselines

import (
	"sort"

	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// DITA is the paper's adaptation (Appendix C) of Shang et al.'s pivot
// index to WED subtrajectory search. Because DITA supports only whole
// matching, every subtrajectory of every data trajectory is enumerated
// offline; for each subtrajectory P', K pivots P” ⊆ P' are chosen and
// stored in a trie. At query time the trie is traversed with the pivot
// lower bound
//
//	LB_pivot(P'', Q) = Σ_{p ∈ P''} min_{q ∈ Q ∪ {ε}} sub(p, q) ≤ wed(P', Q),
//
// pruning subtrees whose accumulated bound reaches τ; survivors are
// verified exactly. The enumeration makes the index explode on real
// datasets (Figure 9/10 and Table 6's point), so constructors accept only
// modest datasets.
type DITA struct {
	costs wed.Costs
	ds    *traj.Dataset
	root  *ditaNode
	// Subtrajectories counts the enumerated entries (Table 6 metric).
	Subtrajectories int
	nodes           int
}

type ditaNode struct {
	sym      traj.Symbol
	children map[traj.Symbol]*ditaNode
	// refs lists the subtrajectories whose pivot sequence ends here.
	refs []subref
}

type subref struct {
	id   int32
	s, t int32
}

// PivotScore ranks symbols for pivot selection; higher scores are chosen
// first. The paper uses symbol frequency for EDR and deletion cost for ERP.
type PivotScore func(sym traj.Symbol) float64

// FrequencyScore ranks by global symbol frequency (the EDR choice).
func FrequencyScore(freq func(traj.Symbol) int) PivotScore {
	return func(sym traj.Symbol) float64 { return float64(freq(sym)) }
}

// DeletionCostScore ranks by deletion cost (the ERP choice).
func DeletionCostScore(costs wed.Costs) PivotScore {
	return func(sym traj.Symbol) float64 { return costs.Del(sym) }
}

type scoredPos struct {
	pos   int32
	score float64
}

// NewDITA enumerates and indexes all subtrajectories of ds with K pivots
// per subtrajectory (the paper selects K = 10).
func NewDITA(costs wed.Costs, ds *traj.Dataset, k int, score PivotScore) *DITA {
	d := &DITA{costs: costs, ds: ds, root: &ditaNode{children: make(map[traj.Symbol]*ditaNode)}}
	for id := range ds.Trajs {
		p := ds.Trajs[id].Path
		ranked := make([]scoredPos, len(p))
		for i, sym := range p {
			ranked[i] = scoredPos{pos: int32(i), score: score(sym)}
		}
		for s := 0; s < len(p); s++ {
			for t := s; t < len(p); t++ {
				// Pivots of P[s..t]: top-K by score, kept in path order.
				window := make([]scoredPos, t-s+1)
				copy(window, ranked[s:t+1])
				sort.Slice(window, func(a, b int) bool {
					if window[a].score != window[b].score {
						return window[a].score > window[b].score
					}
					return window[a].pos < window[b].pos
				})
				kk := k
				if kk > len(window) {
					kk = len(window)
				}
				pivots := window[:kk]
				sort.Slice(pivots, func(a, b int) bool { return pivots[a].pos < pivots[b].pos })
				d.insert(p, pivots, int32(id), int32(s), int32(t))
				d.Subtrajectories++
			}
		}
	}
	return d
}

func (d *DITA) insert(p []traj.Symbol, pivots []scoredPos, id, s, t int32) {
	node := d.root
	for _, pv := range pivots {
		sym := p[pv.pos]
		child := node.children[sym]
		if child == nil {
			child = &ditaNode{sym: sym, children: make(map[traj.Symbol]*ditaNode)}
			node.children[sym] = child
			d.nodes++
		}
		node = child
	}
	node.refs = append(node.refs, subref{id: id, s: s, t: t})
}

// Nodes returns the pivot-trie node count (index-size metric).
func (d *DITA) Nodes() int { return d.nodes }

// Search traverses the pivot trie with the accumulated lower bound and
// verifies surviving subtrajectories exactly.
func (d *DITA) Search(q []traj.Symbol, tau float64) Result {
	// minSub caches min_{x ∈ Q ∪ {ε}} sub(sym, x) per distinct symbol.
	minSub := make(map[traj.Symbol]float64)
	bound := func(sym traj.Symbol) float64 {
		if v, ok := minSub[sym]; ok {
			return v
		}
		v := d.costs.Del(sym)
		for _, x := range q {
			if s := d.costs.Sub(sym, x); s < v {
				v = s
			}
		}
		minSub[sym] = v
		return v
	}
	var cands []subref
	var walk func(n *ditaNode, acc float64)
	walk = func(n *ditaNode, acc float64) {
		if acc >= tau {
			return
		}
		cands = append(cands, n.refs...)
		for sym, child := range n.children {
			walk(child, acc+bound(sym))
		}
	}
	walk(d.root, 0)

	var out []traj.Match
	for _, c := range cands {
		p := d.ds.Path(c.id)[c.s : c.t+1]
		if w := wed.Dist(d.costs, p, q); w < tau {
			out = append(out, traj.Match{ID: c.id, S: c.s, T: c.t, WED: w})
		}
	}
	sortMatches(out)
	return Result{Matches: out, Candidates: len(cands)}
}

package baselines

import (
	"sort"

	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// QGramIndex is the q-gram baseline of §6.1 / Appendix C for unit-cost
// models (EDR, Lev): data trajectories are indexed by their q-grams
// (without substring enumeration); a query trajectory is filtered by the
// count bound
//
//	H[id] ≥ |Q| − q + 1 − τ·q,
//
// where H[id] totals, over every query gram x and every gram x' matching x
// (element-wise zero substitution cost), the occurrences of x' in P^(id).
// Surviving trajectories are verified with the full threshold-aware DP.
type QGramIndex struct {
	q     int
	costs wed.FilterCosts
	ds    *traj.Dataset
	// grams maps a q-gram to per-trajectory occurrence counts, stored as
	// parallel slices (ids ascending).
	grams map[gramKey]*postings
	// BuildNanos and Entries report construction cost for Table 6.
	Entries int
}

type gramKey [3]traj.Symbol

type postings struct {
	ids    []int32
	counts []int32
}

func (p *postings) add(id int32) {
	if n := len(p.ids); n > 0 && p.ids[n-1] == id {
		p.counts[n-1]++
		return
	}
	p.ids = append(p.ids, id)
	p.counts = append(p.counts, 1)
}

// NewQGramIndex builds the index with gram length q (the paper uses q = 3;
// only q ≤ 3 is supported by the fixed-size key).
func NewQGramIndex(costs wed.FilterCosts, ds *traj.Dataset, q int) *QGramIndex {
	if q < 1 || q > 3 {
		panic("baselines: q-gram length must be in 1..3")
	}
	gi := &QGramIndex{q: q, costs: costs, ds: ds, grams: make(map[gramKey]*postings)}
	for id := range ds.Trajs {
		p := ds.Trajs[id].Path
		for i := 0; i+q <= len(p); i++ {
			k := gi.key(p[i : i+q])
			pl := gi.grams[k]
			if pl == nil {
				pl = &postings{}
				gi.grams[k] = pl
			}
			pl.add(int32(id))
			gi.Entries++
		}
	}
	return gi
}

func (gi *QGramIndex) key(g []traj.Symbol) gramKey {
	var k gramKey
	k[0], k[1], k[2] = -1, -1, -1
	copy(k[:], g)
	return k
}

// Search answers the subtrajectory query, returning the exact result set.
func (gi *QGramIndex) Search(q []traj.Symbol, tau float64) Result {
	need := float64(len(q)-gi.q+1) - tau*float64(gi.q)
	counts := make(map[int32]int32)
	if need > 0 && len(q) >= gi.q {
		// Count matching-gram occurrences per trajectory.
		neigh := make([][]traj.Symbol, len(q))
		for i, sym := range q {
			neigh[i] = gi.costs.Neighbors(sym, nil)
		}
		var expand func(pos, depth int, k gramKey)
		expand = func(pos, depth int, k gramKey) {
			if depth == gi.q {
				if pl, ok := gi.grams[k]; ok {
					for i, id := range pl.ids {
						counts[id] += pl.counts[i]
					}
				}
				return
			}
			for _, b := range neigh[pos+depth] {
				k[depth] = b
				expand(pos, depth+1, k)
			}
		}
		for pos := 0; pos+gi.q <= len(q); pos++ {
			k := gi.key(nil)
			expand(pos, 0, k)
		}
	} else {
		// The bound is vacuous (the paper's observation that q-gram
		// filtering collapses for loose thresholds): every trajectory
		// is a candidate.
		need = 0
		for id := 0; id < gi.ds.Len(); id++ {
			counts[int32(id)] = 0
		}
	}
	var out []traj.Match
	var cands int
	for id, h := range counts {
		if float64(h) < need {
			continue
		}
		cands++
		p := gi.ds.Path(id)
		for _, m := range wed.AllMatches(gi.costs, q, p, tau) {
			out = append(out, traj.Match{ID: id, S: int32(m.S), T: int32(m.T), WED: m.WED})
		}
	}
	sortMatches(out)
	return Result{Matches: out, Candidates: cands}
}

// CandidatePositions returns the q-gram analogue of the candidate count
// compared in Figure 11: the total number of matched gram occurrences in
// trajectories passing the count bound. When the bound is vacuous the
// verification must consider every position of every trajectory, so the
// total symbol count is returned.
func (gi *QGramIndex) CandidatePositions(q []traj.Symbol, tau float64) int {
	need := float64(len(q)-gi.q+1) - tau*float64(gi.q)
	if need <= 0 || len(q) < gi.q {
		var total int
		for id := range gi.ds.Trajs {
			total += len(gi.ds.Trajs[id].Path)
		}
		return total
	}
	counts := make(map[int32]int32)
	neigh := make([][]traj.Symbol, len(q))
	for i, sym := range q {
		neigh[i] = gi.costs.Neighbors(sym, nil)
	}
	var expand func(pos, depth int, k gramKey)
	expand = func(pos, depth int, k gramKey) {
		if depth == gi.q {
			if pl, ok := gi.grams[k]; ok {
				for i, id := range pl.ids {
					counts[id] += pl.counts[i]
				}
			}
			return
		}
		for _, b := range neigh[pos+depth] {
			k[depth] = b
			expand(pos, depth+1, k)
		}
	}
	for pos := 0; pos+gi.q <= len(q); pos++ {
		expand(pos, 0, gi.key(nil))
	}
	var total int
	for _, h := range counts {
		if float64(h) >= need {
			total += int(h)
		}
	}
	return total
}

func sortMatches(ms []traj.Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.T < b.T
	})
}

package baselines_test

import (
	"testing"

	"subtraj/internal/baselines"
	"subtraj/internal/index"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/verify"
)

func feasibleTau(m testutil.Model, q []traj.Symbol, ratio float64) float64 {
	var c float64
	for _, sym := range q {
		c += m.Costs.FilterCost(sym)
	}
	return ratio * c
}

func TestDISONPrefixIsMinimal(t *testing.T) {
	env := testutil.NewEnv(41, 20, 15)
	m := env.Models()[0] // Lev: c(q) = 1
	inv := index.Build(m.DS)
	q := env.Query(m, 10)
	tau := 3.0
	items := baselines.DISONStrategy(m.Costs, inv, q, tau)
	if len(items) != 3 {
		t.Fatalf("prefix length %d, want 3 (unit costs, τ=3)", len(items))
	}
	for i, it := range items {
		if int(it.Pos) != i || it.Sym != q[i] {
			t.Fatalf("prefix item %d: %+v", i, it)
		}
	}
}

func TestTorchUsesAllSymbols(t *testing.T) {
	env := testutil.NewEnv(42, 20, 15)
	m := env.Models()[0]
	inv := index.Build(m.DS)
	q := env.Query(m, 10)
	items := baselines.TorchStrategy(m.Costs, inv, q, 2)
	if len(items) != len(q) {
		t.Fatalf("Torch chose %d items, want %d", len(items), len(q))
	}
}

func TestCandidateCountOrdering(t *testing.T) {
	// The headline of Figure 11: |C(OSF)| ≤ |C(DISON)| ≤ |C(Torch)| on
	// average. OSF optimises the choice, DISON takes an arbitrary valid
	// prefix, Torch scans everything, so on any single query OSF must
	// not exceed Torch, and Torch dominates DISON.
	env := testutil.NewEnv(43, 60, 25)
	for _, m := range env.Models() {
		inv := index.Build(m.DS)
		q := env.Query(m, 10)
		tau := feasibleTau(m, q, 0.3)
		vo := verify.Options{Mode: verify.ModeBT}
		dison := baselines.DISON(m.Costs, m.DS, inv, q, tau, vo)
		torch := baselines.Torch(m.Costs, m.DS, inv, q, tau, vo)
		if dison.Candidates > torch.Candidates {
			t.Fatalf("%s: DISON candidates %d > Torch %d", m.Name, dison.Candidates, torch.Candidates)
		}
	}
}

func TestPlainSWEmptyDataset(t *testing.T) {
	env := testutil.NewEnv(44, 10, 12)
	m := env.Models()[0]
	empty := traj.NewDataset(traj.VertexRep)
	res := baselines.PlainSW(m.Costs, empty, env.Query(m, 5), 2)
	if len(res.Matches) != 0 {
		t.Fatal("matches in empty dataset")
	}
}

func TestQGramIndexEntries(t *testing.T) {
	env := testutil.NewEnv(45, 20, 15)
	m := env.Models()[0]
	gi := baselines.NewQGramIndex(m.Costs, m.DS, 3)
	want := 0
	for id := range m.DS.Trajs {
		n := len(m.DS.Trajs[id].Path)
		if n >= 3 {
			want += n - 2
		}
	}
	if gi.Entries != want {
		t.Fatalf("entries %d, want %d", gi.Entries, want)
	}
}

func TestQGramVacuousBoundStillExact(t *testing.T) {
	// With a very loose τ the count bound collapses (≤ 0); the search
	// must fall back to scanning everything and stay exact.
	env := testutil.NewEnv(46, 15, 12)
	m := env.Models()[0] // Lev
	gi := baselines.NewQGramIndex(m.Costs, m.DS, 3)
	q := env.Query(m, 6)
	tau := float64(len(q)) * 0.9 // need = |Q|-q+1-τq < 0
	want := baselines.PlainSW(m.Costs, m.DS, q, tau)
	got := gi.Search(q, tau)
	if got.Candidates != m.DS.Len() {
		t.Fatalf("vacuous bound should scan all %d trajectories, scanned %d", m.DS.Len(), got.Candidates)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("results differ: %d vs %d", len(got.Matches), len(want.Matches))
	}
}

func TestDITAEnumerationCount(t *testing.T) {
	env := testutil.NewEnv(47, 6, 8)
	m := env.Models()[1] // EDR
	inv := index.Build(m.DS)
	d := baselines.NewDITA(m.Costs, m.DS, 4,
		baselines.FrequencyScore(func(s traj.Symbol) int { return inv.Freq(s) }))
	want := 0
	for id := range m.DS.Trajs {
		n := len(m.DS.Trajs[id].Path)
		want += n * (n + 1) / 2
	}
	if d.Subtrajectories != want {
		t.Fatalf("enumerated %d subtrajectories, want %d", d.Subtrajectories, want)
	}
	if d.Nodes() == 0 {
		t.Fatal("empty pivot trie")
	}
}

func TestERPIndexEnumerationCount(t *testing.T) {
	env := testutil.NewEnv(48, 6, 8)
	var m testutil.Model
	for _, mm := range env.Models() {
		if mm.Name == "ERP" {
			m = mm
		}
	}
	e := baselines.NewERPIndex(m.Costs, m.DS, env.G.Coords(), env.G.Barycenter())
	want := 0
	for id := range m.DS.Trajs {
		n := len(m.DS.Trajs[id].Path)
		want += n * (n + 1) / 2
	}
	if e.Subtrajectories != want {
		t.Fatalf("enumerated %d, want %d", e.Subtrajectories, want)
	}
}

package baselines

import (
	"subtraj/internal/geo"
	"subtraj/internal/spatial"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
)

// ERPIndex is the paper's adaptation (§6.1) of Chen & Ng's ERP index to
// subtrajectory search: every subtrajectory P' is enumerated offline and
// its coordinate sum, translated so the ERP reference point is the origin,
//
//	sum(P') = Σ_i (coord(P'_i) − g),
//
// is stored in a kd-tree. The translated-sum lower bound
//
//	‖sum(P) − sum(Q)‖ ≤ ERP(P, Q)
//
// holds because every edit operation's cost dominates the norm of its
// contribution to the sum difference (substitution: ‖a−b‖; deletion of a:
// ‖a−g‖; insertion of b: ‖b−g‖). A query is a τ-ball range search around
// sum(Q), and survivors are verified exactly — so the baseline is exact
// and complete for the ERP cost model only.
type ERPIndex struct {
	costs  wed.Costs
	ds     *traj.Dataset
	coords []geo.Point
	ref    geo.Point
	tree   *spatial.KDTree
	refs   []subref
	// Subtrajectories counts the enumerated entries (Table 6 metric).
	Subtrajectories int
}

// NewERPIndex enumerates all subtrajectories; coords maps vertex IDs to
// coordinates and ref is the same ERP reference point the cost model uses.
func NewERPIndex(costs wed.Costs, ds *traj.Dataset, coords []geo.Point, ref geo.Point) *ERPIndex {
	e := &ERPIndex{costs: costs, ds: ds, coords: coords, ref: ref}
	var pts []geo.Point
	for id := range ds.Trajs {
		p := ds.Trajs[id].Path
		for s := 0; s < len(p); s++ {
			var sum geo.Point
			for t := s; t < len(p); t++ {
				sum = sum.Add(coords[p[t]].Sub(ref))
				pts = append(pts, sum)
				e.refs = append(e.refs, subref{id: int32(id), s: int32(s), t: int32(t)})
			}
		}
	}
	e.Subtrajectories = len(e.refs)
	e.tree = spatial.Build(pts)
	return e
}

// Search answers the subtrajectory query under the ERP cost model.
func (e *ERPIndex) Search(q []traj.Symbol, tau float64) Result {
	var qsum geo.Point
	for _, sym := range q {
		qsum = qsum.Add(e.coords[sym].Sub(e.ref))
	}
	hits := e.tree.Range(qsum, tau, nil)
	var out []traj.Match
	for _, h := range hits {
		c := e.refs[h]
		p := e.ds.Path(c.id)[c.s : c.t+1]
		if w := wed.Dist(e.costs, p, q); w < tau {
			out = append(out, traj.Match{ID: c.id, S: c.s, T: c.t, WED: w})
		}
	}
	sortMatches(out)
	return Result{Matches: out, Candidates: len(hits)}
}

package index

import "subtraj/internal/traj"

// Backend is the engine-facing index contract: everything core.Engine
// needs to plan (global frequencies, intervals), fan out (per-shard
// posting sources), ingest (Append), and account for (sizes). Two
// implementations exist: Sharded, the pointer-rich in-RAM index built by
// PR 2, and Overlay, a frozen Compact arena paired with a mutable
// Inverted tail. The query path is backend-agnostic; the determinism
// contract (bit-equal sorted matches at every parallelism) holds across
// both because global statistics — and therefore the MinCand plan — are
// backend-independent.
type Backend interface {
	// Freq returns the global n(q) (the MinCand objective input).
	Freq(q traj.Symbol) int
	// NumShards returns how many posting sources a query can fan out to.
	NumShards() int
	// Source returns the i-th shard's posting source. Sources may be
	// pooled per-query cursors: callers must pass each one to
	// ReleaseSource when done with its postings.
	Source(i int) PostingSource
	// Append adds one trajectory (IDs dense and increasing). Not safe
	// against concurrent readers; SafeEngine serialises.
	Append(id int32, t *traj.Trajectory)
	// BuildTemporal materialises any departure-sorted orders invalidated
	// since the last call (§4.3).
	BuildTemporal()
	// Interval returns trajectory id's [departure, arrival] span.
	Interval(id int32) (lo, hi float64)
	// IntervalOverlaps reports whether id's interval intersects [lo, hi].
	IntervalOverlaps(id int32, lo, hi float64) bool
	NumPostings() int
	NumSymbols() int
	NumTrajectories() int
	// IndexBytes returns the backend's memory footprint: exact arena
	// bytes for compact backends, a heap estimate for pointer backends.
	IndexBytes() int64
	// Kind names the backend family ("pointer" or "compact") for stats,
	// metrics, and bench output.
	Kind() string
}

var (
	_ Backend = (*Sharded)(nil)
	_ Backend = (*Overlay)(nil)
)

// ReleaseSource returns a pooled posting source to its pool; sources
// without pooling (plain shards) pass through untouched. Call exactly
// once per Source the moment its last returned slice has been consumed.
func ReleaseSource(src PostingSource) {
	if r, ok := src.(interface{ Release() }); ok {
		r.Release()
	}
}

// --- Sharded as a Backend -------------------------------------------------

// Source returns shard i as a PostingSource (no pooling: shard reads are
// zero-copy views, so the source is the shard itself).
func (x *Sharded) Source(i int) PostingSource { return &x.shards[i] }

// NumTrajectories returns the number of indexed trajectories.
func (x *Sharded) NumTrajectories() int { return len(x.departures) }

// Kind names the backend family for stats and bench output.
func (x *Sharded) Kind() string { return "pointer" }

const (
	postingBytes = 8 // unsafe.Sizeof(Posting{})
	// mapEntryBytes approximates the per-entry overhead of a Go map
	// (bucket share, key, slice header) for footprint estimates.
	mapEntryBytes = 48
)

// listMapBytes estimates the heap held by one symbol→postings map.
func listMapBytes(m map[traj.Symbol][]Posting) int64 {
	var b int64
	for _, list := range m {
		b += int64(cap(list))*postingBytes + mapEntryBytes
	}
	return b
}

// IndexBytes estimates the heap footprint of the pointer backend:
// postings slices (main and temporal orders), map overheads, interval
// slices, and the global frequency table. An estimate, not an
// accounting — it exists so benchall can put the two backends on one
// axis; the compact side of that comparison is exact.
func (x *Sharded) IndexBytes() int64 {
	var b int64
	if x.flat != nil {
		b = x.flat.IndexBytes()
	} else {
		for s := range x.shards {
			b += listMapBytes(x.shards[s].lists)
			b += listMapBytes(x.shards[s].byDeparture)
		}
		b += int64(cap(x.departures)+cap(x.arrivals)) * 8
	}
	b += int64(len(x.freq)) * (8 + mapEntryBytes)
	return b
}

// IndexBytes estimates the heap footprint of the flat pointer index.
func (inv *Inverted) IndexBytes() int64 {
	b := listMapBytes(inv.lists) + listMapBytes(inv.byDeparture)
	return b + int64(cap(inv.departures)+cap(inv.arrivals))*8
}

// NumTrajectories returns the number of indexed trajectories.
func (inv *Inverted) NumTrajectories() int { return len(inv.departures) }

package index

import (
	"sort"

	"subtraj/internal/traj"
)

// PathSuffixArray is a suffix array over the concatenation of all
// trajectory paths, answering exact subtrajectory (substring) queries in
// O(|Q| log N) by binary search — the suffix-array indexing route the
// paper's related work describes for substring search (§7, references
// [19, 26]). It complements the postings-based Engine.SearchExact: faster
// for long queries over rare symbols, and independent of symbol
// frequencies.
//
// Trajectories are separated by an implicit sentinel (position gaps), so
// matches never straddle two trajectories.
type PathSuffixArray struct {
	// text is the concatenation of all paths; doc/off map a text offset
	// back to (trajectory ID, position).
	text []traj.Symbol
	// bounds[i] is the start offset of trajectory i in text;
	// bounds[len] = len(text).
	bounds []int32
	sa     []int32
}

// BuildPathSuffixArray indexes the dataset.
func BuildPathSuffixArray(ds *traj.Dataset) *PathSuffixArray {
	s := &PathSuffixArray{}
	total := ds.TotalSymbols()
	s.text = make([]traj.Symbol, 0, total)
	s.bounds = make([]int32, 0, ds.Len()+1)
	for id := range ds.Trajs {
		s.bounds = append(s.bounds, int32(len(s.text)))
		s.text = append(s.text, ds.Trajs[id].Path...)
	}
	s.bounds = append(s.bounds, int32(len(s.text)))
	s.sa = buildSuffixArray(s.text)
	return s
}

// buildSuffixArray uses prefix doubling with rank pairs: O(n log² n),
// fine for in-memory datasets and free of alphabet-size assumptions
// (vertex IDs are large integers, not bytes).
func buildSuffixArray(text []traj.Symbol) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int64, n)
	tmp := make([]int64, n)
	for i := range sa {
		sa[i] = int32(i)
		rank[i] = int64(text[i])
	}
	for k := 1; ; k *= 2 {
		key := func(i int32) (int64, int64) {
			second := int64(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(a, b int) bool {
			f1, s1 := key(sa[a])
			f2, s2 := key(sa[b])
			if f1 != f2 {
				return f1 < f2
			}
			return s1 < s2
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			f1, s1 := key(sa[i-1])
			f2, s2 := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if f1 != f2 || s1 != s2 {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == int64(n-1) {
			break
		}
	}
	return sa
}

// Lookup returns every exact occurrence of q as (trajectory ID, start
// position), in no particular order. Occurrences spanning trajectory
// boundaries are excluded.
func (s *PathSuffixArray) Lookup(q []traj.Symbol) []Posting {
	if len(q) == 0 || len(s.text) == 0 {
		return nil
	}
	// Binary search for the first suffix ≥ q and the first > q-prefix.
	lo := sort.Search(len(s.sa), func(i int) bool {
		return compareSuffix(s.text, int(s.sa[i]), q) >= 0
	})
	hi := sort.Search(len(s.sa), func(i int) bool {
		return compareSuffix(s.text, int(s.sa[i]), q) > 0
	})
	var out []Posting
	for _, off := range s.sa[lo:hi] {
		id, pos, ok := s.locate(off, len(q))
		if ok {
			out = append(out, Posting{ID: id, Pos: pos})
		}
	}
	return out
}

// compareSuffix compares text[off:] against q as a prefix: -1 if the
// suffix is lexicographically before q, 0 if q is a prefix of the suffix,
// +1 if after.
func compareSuffix(text []traj.Symbol, off int, q []traj.Symbol) int {
	for i := 0; i < len(q); i++ {
		if off+i >= len(text) {
			return -1 // suffix is a proper prefix of q
		}
		if text[off+i] != q[i] {
			if text[off+i] < q[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// locate maps a text offset to (trajectory, position), rejecting matches
// that would cross into the next trajectory.
func (s *PathSuffixArray) locate(off int32, qlen int) (id, pos int32, ok bool) {
	// bounds is sorted; find the trajectory containing off.
	i := sort.Search(len(s.bounds)-1, func(i int) bool { return s.bounds[i+1] > off })
	if i >= len(s.bounds)-1 {
		return 0, 0, false
	}
	if off+int32(qlen) > s.bounds[i+1] {
		return 0, 0, false // straddles the boundary
	}
	return int32(i), off - s.bounds[i], true
}

// Count returns the number of exact occurrences of q.
func (s *PathSuffixArray) Count(q []traj.Symbol) int { return len(s.Lookup(q)) }

package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"subtraj/internal/traj"
)

// This file provides compressed persistence for the inverted index:
// postings lists are delta-encoded (IDs ascend within a list) and written
// as uvarints, the standard trick for keeping trajectory indexes compact
// (cf. the paper's Table 6 size discussion and its reference [19] on
// trajectory index compression). The in-memory representation stays flat
// for query speed; compression is applied only at the serialisation
// boundary.

const persistMagic = "SUBTRAJIDX1"

// Save writes the index in compressed form.
func (inv *Inverted) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	// Trajectory temporal metadata.
	if err := putUvarint(uint64(len(inv.departures))); err != nil {
		return err
	}
	for i := range inv.departures {
		if err := putUvarint(math.Float64bits(inv.departures[i])); err != nil {
			return err
		}
		if err := putUvarint(math.Float64bits(inv.arrivals[i])); err != nil {
			return err
		}
	}
	// Postings lists, sorted by symbol for deterministic output.
	syms := make([]traj.Symbol, 0, len(inv.lists))
	for s := range inv.lists {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	if err := putUvarint(uint64(len(syms))); err != nil {
		return err
	}
	for _, s := range syms {
		list := inv.lists[s]
		if err := putUvarint(uint64(s)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(list))); err != nil {
			return err
		}
		prevID := int32(0)
		for _, p := range list {
			// IDs ascend (Build/Append guarantee); delta-encode them
			// and store positions raw — both as uvarints.
			if err := putUvarint(uint64(p.ID - prevID)); err != nil {
				return err
			}
			if err := putUvarint(uint64(p.Pos)); err != nil {
				return err
			}
			prevID = p.ID
		}
	}
	return bw.Flush()
}

// LoadIndex reads an index written by Save.
func LoadIndex(r io.Reader) (*Inverted, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	inv := &Inverted{lists: make(map[traj.Symbol][]Posting)}
	nTraj, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: trajectory count: %w", err)
	}
	if nTraj > math.MaxInt32 {
		return nil, fmt.Errorf("index: trajectory count %d out of range", nTraj)
	}
	// Element counts are untrusted input: never pre-size from them beyond
	// a fixed cap, or a few corrupt bytes could demand gigabytes before a
	// single element is read. Growing incrementally bounds memory by the
	// actual input length (a truncated stream hits EOF first).
	inv.departures = make([]float64, 0, preallocCap(nTraj, 4096))
	inv.arrivals = make([]float64, 0, preallocCap(nTraj, 4096))
	for i := uint64(0); i < nTraj; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: departure %d: %w", i, err)
		}
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: arrival %d: %w", i, err)
		}
		inv.departures = append(inv.departures, math.Float64frombits(d))
		inv.arrivals = append(inv.arrivals, math.Float64frombits(a))
	}
	nSyms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: symbol count: %w", err)
	}
	for s := uint64(0); s < nSyms; s++ {
		sym, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: symbol: %w", err)
		}
		if sym > math.MaxInt32 {
			return nil, fmt.Errorf("index: symbol %d out of range", sym)
		}
		if _, dup := inv.lists[traj.Symbol(sym)]; dup {
			return nil, fmt.Errorf("index: duplicate postings list for symbol %d", sym)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: list length: %w", err)
		}
		list := make([]Posting, 0, preallocCap(n, 1024))
		prevID := int32(0)
		for i := uint64(0); i < n; i++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: posting delta: %w", err)
			}
			pos, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: posting position: %w", err)
			}
			if d > math.MaxInt32 || pos > math.MaxInt32 {
				return nil, fmt.Errorf("index: posting delta %d / position %d out of range", d, pos)
			}
			id := prevID + int32(d)
			if id < 0 || int(id) >= int(nTraj) {
				return nil, fmt.Errorf("index: posting id %d out of range", id)
			}
			list = append(list, Posting{ID: id, Pos: int32(pos)})
			prevID = id
		}
		inv.lists[traj.Symbol(sym)] = list
		inv.numPostings += len(list)
	}
	return inv, nil
}

package index

import (
	"testing"

	"subtraj/internal/traj"
	"subtraj/internal/workload"
)

func shardedTestData(t *testing.T) *traj.Dataset {
	t.Helper()
	cfg := workload.Tiny(7)
	cfg.NumTrajectories = 40
	return workload.Generate(cfg).Data
}

// collectPostings gathers every (symbol, id, pos) triple a source exposes
// for the given symbols.
func collectPostings(src PostingSource, syms []traj.Symbol) map[traj.Symbol]map[Posting]bool {
	out := make(map[traj.Symbol]map[Posting]bool)
	for _, s := range syms {
		for _, p := range src.Postings(s) {
			if out[s] == nil {
				out[s] = make(map[Posting]bool)
			}
			out[s][p] = true
		}
	}
	return out
}

func symbolsOf(ds *traj.Dataset) []traj.Symbol {
	seen := map[traj.Symbol]bool{}
	var syms []traj.Symbol
	for i := range ds.Trajs {
		for _, s := range ds.Trajs[i].Path {
			if !seen[s] {
				seen[s] = true
				syms = append(syms, s)
			}
		}
	}
	return syms
}

// TestShardedPartitionsFlatIndex checks the core invariant: the union of
// the shards' postings equals the flat index's postings, shards are
// disjoint and own exactly their ID residue class, and global frequencies
// match.
func TestShardedPartitionsFlatIndex(t *testing.T) {
	ds := shardedTestData(t)
	flat := Build(ds)
	syms := symbolsOf(ds)
	for _, p := range []int{1, 2, 3, 4, 7} {
		sh := BuildSharded(ds, p)
		if sh.NumShards() != p {
			t.Fatalf("p=%d: NumShards = %d", p, sh.NumShards())
		}
		if sh.NumPostings() != flat.NumPostings() {
			t.Fatalf("p=%d: NumPostings %d != %d", p, sh.NumPostings(), flat.NumPostings())
		}
		if sh.NumSymbols() != flat.NumSymbols() {
			t.Fatalf("p=%d: NumSymbols %d != %d", p, sh.NumSymbols(), flat.NumSymbols())
		}
		want := collectPostings(flat, syms)
		got := make(map[traj.Symbol]map[Posting]bool)
		for s := 0; s < p; s++ {
			for sym, set := range collectPostings(sh.Shard(s), syms) {
				for post := range set {
					if int(post.ID)%p != s {
						t.Fatalf("p=%d: shard %d holds posting of trajectory %d", p, s, post.ID)
					}
					if got[sym] == nil {
						got[sym] = make(map[Posting]bool)
					}
					if got[sym][post] {
						t.Fatalf("p=%d: posting %+v of %d appears in two shards", p, post, sym)
					}
					got[sym][post] = true
				}
			}
		}
		for _, sym := range syms {
			if len(got[sym]) != len(want[sym]) {
				t.Fatalf("p=%d sym=%d: union size %d != flat %d", p, sym, len(got[sym]), len(want[sym]))
			}
			if sh.Freq(sym) != flat.Freq(sym) {
				t.Fatalf("p=%d sym=%d: Freq %d != %d", p, sym, sh.Freq(sym), flat.Freq(sym))
			}
		}
	}
}

// TestShardedTemporalWindows checks the per-shard departure-sorted
// postings against the flat index's.
func TestShardedTemporalWindows(t *testing.T) {
	ds := shardedTestData(t)
	flat := Build(ds)
	flat.BuildTemporal()
	sh := BuildSharded(ds, 3)
	sh.BuildTemporal()
	syms := symbolsOf(ds)
	// Probe a few windows spanning the workload horizon.
	windows := [][2]float64{{0, 600}, {300, 1200}, {0, 1e9}, {2000, 1000}}
	for _, w := range windows {
		lo, hi := w[0], w[1]
		for _, sym := range syms {
			want := make(map[Posting]bool)
			for _, p := range flat.PostingsInWindow(sym, lo, hi) {
				want[p] = true
			}
			got := make(map[Posting]bool)
			for s := 0; s < sh.NumShards(); s++ {
				for _, p := range sh.Shard(s).PostingsInWindow(sym, lo, hi) {
					got[p] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("window [%g,%g] sym %d: got %d postings, want %d", lo, hi, sym, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("window [%g,%g] sym %d: missing posting %+v", lo, hi, sym, p)
				}
			}
		}
	}
	// Interval overlap must agree with the flat index for every ID.
	for id := int32(0); int(id) < ds.Len(); id++ {
		if sh.IntervalOverlaps(id, 100, 900) != flat.IntervalOverlaps(id, 100, 900) {
			t.Fatalf("IntervalOverlaps disagrees for id %d", id)
		}
	}
}

// TestShardedAppend checks the incremental update lands in the right
// shard and keeps global stats in sync with a from-scratch build.
func TestShardedAppend(t *testing.T) {
	ds := shardedTestData(t)
	half := ds.Len() / 2
	partial := &traj.Dataset{Rep: ds.Rep}
	for i := 0; i < half; i++ {
		partial.Add(ds.Trajs[i])
	}
	sh := BuildSharded(partial, 3)
	for i := half; i < ds.Len(); i++ {
		id := partial.Add(ds.Trajs[i])
		sh.Append(id, partial.Get(id))
	}
	full := BuildSharded(ds, 3)
	if sh.NumPostings() != full.NumPostings() {
		t.Fatalf("NumPostings %d != %d after appends", sh.NumPostings(), full.NumPostings())
	}
	for _, sym := range symbolsOf(ds) {
		if sh.Freq(sym) != full.Freq(sym) {
			t.Fatalf("Freq(%d) %d != %d after appends", sym, sh.Freq(sym), full.Freq(sym))
		}
		for s := 0; s < 3; s++ {
			a, b := sh.Shard(s).Postings(sym), full.Shard(s).Postings(sym)
			if len(a) != len(b) {
				t.Fatalf("shard %d sym %d: %d postings != %d", s, sym, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("shard %d sym %d posting %d: %+v != %+v", s, sym, i, a[i], b[i])
				}
			}
		}
	}
}

// TestShardedFromInverted checks the zero-copy single-shard wrap.
func TestShardedFromInverted(t *testing.T) {
	ds := shardedTestData(t)
	flat := Build(ds)
	sh := ShardedFromInverted(flat)
	if sh.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", sh.NumShards())
	}
	for _, sym := range symbolsOf(ds) {
		if sh.Freq(sym) != flat.Freq(sym) {
			t.Fatalf("Freq(%d) mismatch", sym)
		}
		a, b := sh.Shard(0).Postings(sym), flat.Postings(sym)
		if len(a) != len(b) {
			t.Fatalf("postings length mismatch for %d", sym)
		}
	}
}

// TestShardedFromInvertedAppend pins the wrap's append contract: the
// shared flat index must stay internally consistent (its other users
// keep reading it), and the wrapper's global views must track it.
func TestShardedFromInvertedAppend(t *testing.T) {
	ds := shardedTestData(t)
	flat := Build(ds)
	sh := ShardedFromInverted(flat)

	extra := ds.Trajs[0] // re-append a copy of trajectory 0 as a new ID
	id := ds.Add(extra)
	sh.Append(id, ds.Get(id))

	if flat.NumPostings() != sh.NumPostings() {
		t.Fatalf("flat NumPostings %d != wrap %d after append", flat.NumPostings(), sh.NumPostings())
	}
	sym := extra.Path[0]
	fp := flat.Postings(sym)
	if fp[len(fp)-1].ID != id {
		t.Fatalf("flat index missing appended posting of %d", id)
	}
	if got, want := sh.Shard(0).Postings(sym), flat.Postings(sym); len(got) != len(want) {
		t.Fatalf("wrap shard sees %d postings of %d, flat %d", len(got), sym, len(want))
	}
	// Temporal machinery must see the new ID on BOTH views — before the
	// fix the wrap's departure slice went stale and this panicked.
	flat.BuildTemporal()
	sh.BuildTemporal()
	if flat.IntervalOverlaps(id, 0, 1e12) != sh.IntervalOverlaps(id, 0, 1e12) {
		t.Fatal("IntervalOverlaps disagrees for appended id")
	}
	lo, hi := sh.Interval(id)
	flo, fhi := flat.Interval(id)
	if lo != flo || hi != fhi {
		t.Fatalf("Interval(%d) = [%g,%g] on wrap, [%g,%g] on flat", id, lo, hi, flo, fhi)
	}
	sh.Shard(0).PostingsInWindow(sym, 0, 1e12) // must not panic
}

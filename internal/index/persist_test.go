package index_test

import (
	"bytes"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/testutil"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	env := testutil.NewEnv(71, 40, 20)
	orig := index.Build(env.V)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := index.LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPostings() != orig.NumPostings() || got.NumSymbols() != orig.NumSymbols() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumPostings(), got.NumSymbols(), orig.NumPostings(), orig.NumSymbols())
	}
	for id := range env.V.Trajs {
		for _, sym := range env.V.Trajs[id].Path {
			a, b := orig.Postings(sym), got.Postings(sym)
			if len(a) != len(b) {
				t.Fatalf("postings length differs for %d", sym)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("posting %d of %d differs: %+v vs %+v", i, sym, a[i], b[i])
				}
			}
		}
		glo, ghi := got.Interval(int32(id))
		olo, ohi := orig.Interval(int32(id))
		if glo != olo || ghi != ohi {
			t.Fatalf("interval differs for %d", id)
		}
	}
	// Temporal order must be rebuildable on the loaded index.
	got.BuildTemporal()
	for id := range env.V.Trajs {
		sym := env.V.Trajs[id].Path[0]
		lo, _ := got.Interval(int32(id))
		found := false
		for _, p := range got.PostingsInWindow(sym, lo, lo) {
			if p.ID == int32(id) {
				found = true
			}
		}
		if !found {
			t.Fatalf("temporal lookup lost trajectory %d", id)
		}
	}
}

func TestIndexCompression(t *testing.T) {
	// The compressed form must beat the naive 8-bytes-per-posting
	// encoding on realistic data (ascending IDs, small positions).
	env := testutil.NewEnv(72, 60, 30)
	inv := index.Build(env.V)
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	naive := inv.NumPostings() * 8
	if buf.Len() >= naive {
		t.Fatalf("compressed %d B not smaller than naive %d B", buf.Len(), naive)
	}
	t.Logf("compression: %d postings, %d B compressed vs %d B naive (%.1f%%)",
		inv.NumPostings(), buf.Len(), naive, 100*float64(buf.Len())/float64(naive))
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := index.LoadIndex(bytes.NewReader([]byte("NOTANINDEX"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := index.LoadIndex(bytes.NewReader([]byte("SUBTRAJIDX1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))); err == nil {
		t.Fatal("corrupt varint stream accepted")
	}
}

package index_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/traj"
)

// randTemporalDataset builds a random dataset with timestamps, so both
// the main and the departure-sorted temporal lists get exercised.
// Duplicate departure times are injected on purpose: the compact rank
// order must break those ties exactly like sortByDeparture (stably).
func randTemporalDataset(rng *rand.Rand, alpha, numTraj, maxLen int) *traj.Dataset {
	ds := traj.NewDataset(traj.VertexRep)
	for i := 0; i < numTraj; i++ {
		n := rng.Intn(maxLen) + 1
		p := make([]traj.Symbol, n)
		for j := range p {
			p[j] = traj.Symbol(rng.Intn(alpha))
		}
		start := float64(rng.Intn(50)) // coarse: forces departure ties
		ts := make([]float64, n)
		for j := range ts {
			ts[j] = start + float64(j)
		}
		ds.Add(traj.Trajectory{Path: p, Times: ts})
	}
	return ds
}

// collect drains a posting slice into an owned copy (source scratch is
// only valid until the next call).
func collect(ps []index.Posting) []index.Posting {
	return append([]index.Posting(nil), ps...)
}

// TestCompactEquivalentToInverted is the index-layer equivalence check:
// for every symbol of a random temporal dataset, the frozen arena must
// answer Freq, Postings, PostingsInWindow (several windows including
// empty and all-covering ones), Interval, and IntervalOverlaps
// bit-identically to the pointer index.
func TestCompactEquivalentToInverted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randTemporalDataset(rng, 40, 300, 30)
	inv := index.Build(ds)
	inv.BuildTemporal()
	c := index.Freeze(inv)

	if c.NumTrajectories() != ds.Len() || c.NumPostings() != inv.NumPostings() || c.NumSymbols() != inv.NumSymbols() {
		t.Fatalf("counts: compact (%d traj, %d postings, %d syms), inverted (%d, %d, %d)",
			c.NumTrajectories(), c.NumPostings(), c.NumSymbols(), ds.Len(), inv.NumPostings(), inv.NumSymbols())
	}
	for id := int32(0); id < int32(ds.Len()); id++ {
		glo, ghi := c.Interval(id)
		wlo, whi := inv.Interval(id)
		if glo != wlo || ghi != whi {
			t.Fatalf("Interval(%d) = (%g, %g), want (%g, %g)", id, glo, ghi, wlo, whi)
		}
	}
	windows := [][2]float64{{0, 100}, {10, 20}, {25, 25}, {90, 5}, {-5, -1}, {49, 80}}
	src := c.AcquireSource()
	defer src.Release()
	for sym := traj.Symbol(0); sym < 45; sym++ { // includes absent symbols
		if got, want := c.Freq(sym), inv.Freq(sym); got != want {
			t.Fatalf("Freq(%d) = %d, want %d", sym, got, want)
		}
		if got, want := collect(src.Postings(sym)), collect(inv.Postings(sym)); !reflect.DeepEqual(got, want) {
			t.Fatalf("Postings(%d):\n got %v\nwant %v", sym, got, want)
		}
		for _, w := range windows {
			got := collect(src.PostingsInWindow(sym, w[0], w[1]))
			want := collect(inv.PostingsInWindow(sym, w[0], w[1]))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("PostingsInWindow(%d, %g, %g):\n got %v\nwant %v", sym, w[0], w[1], got, want)
			}
		}
	}
	for id := int32(0); id < int32(ds.Len()); id++ {
		for _, w := range windows {
			if got, want := src.IntervalOverlaps(id, w[0], w[1]), inv.IntervalOverlaps(id, w[0], w[1]); got != want {
				t.Fatalf("IntervalOverlaps(%d, %g, %g) = %v, want %v", id, w[0], w[1], got, want)
			}
		}
	}
}

// TestCompactSaveLoadMmap checks the persistence loop: Save → LoadCompact
// and Save → OpenMapped both yield arenas that are byte-identical on
// re-save and answer queries identically to the original.
func TestCompactSaveLoadMmap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randTemporalDataset(rng, 25, 200, 25)
	c := index.FreezeDataset(ds)

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	loaded, err := index.LoadCompact(saved)
	if err != nil {
		t.Fatalf("LoadCompact: %v", err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatal("save → load → save is not byte-identical")
	}

	path := filepath.Join(t.TempDir(), "idx.sbtj")
	if err := os.WriteFile(path, saved, 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := index.OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mapped.Close()
	if !bytes.Equal(mapped.Bytes(), saved) {
		t.Fatal("mapped arena differs from saved bytes")
	}
	a, b := c.AcquireSource(), mapped.AcquireSource()
	defer a.Release()
	defer b.Release()
	for sym := traj.Symbol(0); sym < 25; sym++ {
		if got, want := collect(b.Postings(sym)), collect(a.Postings(sym)); !reflect.DeepEqual(got, want) {
			t.Fatalf("mapped Postings(%d) differ", sym)
		}
		if got, want := collect(b.PostingsInWindow(sym, 5, 30)), collect(a.PostingsInWindow(sym, 5, 30)); !reflect.DeepEqual(got, want) {
			t.Fatalf("mapped PostingsInWindow(%d) differ", sym)
		}
	}
}

// TestCompactRejectsCorruption flips every byte of a small arena in turn:
// LoadCompact must reject each mutant (checksum or structure) — never
// panic — and OpenMapped must reject a truncated file.
func TestCompactRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randTemporalDataset(rng, 8, 20, 8)
	c := index.FreezeDataset(ds)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	mut := make([]byte, len(saved))
	for i := range saved {
		copy(mut, saved)
		mut[i] ^= 0x5a
		if _, err := index.LoadCompact(mut); err == nil {
			t.Fatalf("flipping byte %d of %d was not rejected", i, len(saved))
		}
	}
	for _, n := range []int{0, 1, 95, 96, len(saved) - 1} {
		if _, err := index.LoadCompact(saved[:n]); err == nil {
			t.Fatalf("truncation to %d bytes was not rejected", n)
		}
	}
	path := filepath.Join(t.TempDir(), "trunc.sbtj")
	if err := os.WriteFile(path, saved[:len(saved)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := index.OpenMapped(path); err == nil {
		t.Fatal("OpenMapped accepted a truncated file")
	}
}

// TestOverlayMergesSnapshotAndTail freezes the first half of a dataset,
// appends the second half through an Overlay, and checks the merged
// backend answers global statistics and per-shard postings equal to a
// flat Inverted over the full dataset.
func TestOverlayMergesSnapshotAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	full := randTemporalDataset(rng, 20, 120, 20)
	half := traj.NewDataset(traj.VertexRep)
	for id := 0; id < 60; id++ {
		tr := full.Get(int32(id))
		half.Add(traj.Trajectory{Path: tr.Path, Times: tr.Times})
	}
	ov := index.NewOverlay(index.FreezeDataset(half))
	for id := 60; id < full.Len(); id++ {
		ov.Append(int32(id), full.Get(int32(id)))
	}
	ov.BuildTemporal()

	want := index.Build(full)
	want.BuildTemporal()
	if ov.NumTrajectories() != full.Len() || ov.TailLen() != full.Len()-60 {
		t.Fatalf("overlay sizes: %d trajectories, tail %d", ov.NumTrajectories(), ov.TailLen())
	}
	if ov.NumPostings() != want.NumPostings() || ov.NumSymbols() != want.NumSymbols() {
		t.Fatalf("overlay counts (%d postings, %d syms), want (%d, %d)",
			ov.NumPostings(), ov.NumSymbols(), want.NumPostings(), want.NumSymbols())
	}
	for id := int32(0); id < int32(full.Len()); id++ {
		glo, ghi := ov.Interval(id)
		wlo, whi := want.Interval(id)
		if glo != wlo || ghi != whi {
			t.Fatalf("overlay Interval(%d) = (%g, %g), want (%g, %g)", id, glo, ghi, wlo, whi)
		}
	}
	for sym := traj.Symbol(0); sym < 20; sym++ {
		if got := ov.Freq(sym); got != want.Freq(sym) {
			t.Fatalf("overlay Freq(%d) = %d, want %d", sym, got, want.Freq(sym))
		}
		// The two shards' main lists, concatenated, must equal the flat
		// list: snapshot IDs all precede tail IDs.
		var got []index.Posting
		for s := 0; s < ov.NumShards(); s++ {
			src := ov.Source(s)
			got = append(got, src.Postings(sym)...)
			index.ReleaseSource(src)
		}
		if wantList := collect(want.Postings(sym)); !reflect.DeepEqual(got, append([]index.Posting(nil), wantList...)) {
			t.Fatalf("overlay Postings(%d):\n got %v\nwant %v", sym, got, wantList)
		}
		// Windowed lists merge across shards as disjoint subsets of the
		// flat window result; compare as sets keyed by (ID, Pos).
		wantWin := map[index.Posting]bool{}
		for _, p := range want.PostingsInWindow(sym, 10, 40) {
			wantWin[p] = true
		}
		gotN := 0
		for s := 0; s < ov.NumShards(); s++ {
			src := ov.Source(s)
			for _, p := range src.PostingsInWindow(sym, 10, 40) {
				if !wantWin[p] {
					t.Fatalf("overlay window posting %v not in flat result for sym %d", p, sym)
				}
				gotN++
			}
			index.ReleaseSource(src)
		}
		if gotN != len(wantWin) {
			t.Fatalf("overlay window for sym %d has %d postings, want %d", sym, gotN, len(wantWin))
		}
	}
}

// TestCompactMemorySmaller pins the point of the exercise on a
// non-trivial input: the frozen arena must be several times smaller than
// the pointer index's estimated heap.
func TestCompactMemorySmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randTemporalDataset(rng, 60, 2000, 40)
	inv := index.Build(ds)
	inv.BuildTemporal()
	c := index.Freeze(inv)
	if ratio := float64(inv.IndexBytes()) / float64(c.IndexBytes()); ratio < 2 {
		t.Fatalf("compact arena only %.2fx smaller (%d vs %d bytes)", ratio, c.IndexBytes(), inv.IndexBytes())
	}
}

package index

import (
	"encoding/binary"
	"fmt"
)

// This file hosts the shared hardening helpers of the two binary decoders
// (the streaming LoadIndex and the arena-based compact loader): capped
// preallocation from untrusted counts, bounds-checked section access, and
// varint reads that can never run past a slice. Both decoders treat every
// count and offset in the input as hostile until proven in range.

// preallocCap bounds a capacity hint from untrusted input: trust it up to
// maxTrusted elements, above that grow from a small start. A few corrupt
// header bytes must never demand gigabytes before a single element is
// read; growing incrementally bounds memory by the actual input length.
func preallocCap(n uint64, maxTrusted uint64) int {
	if n <= maxTrusted {
		return int(n)
	}
	return int(maxTrusted)
}

// checkSection verifies that [off, off+length) lies inside a buffer of
// `size` bytes, guarding against both overflow and out-of-range offsets.
func checkSection(what string, off, length, size uint64) error {
	if off > size || length > size || off+length > size {
		return fmt.Errorf("index: %s section [%d, %d+%d) outside file of %d bytes", what, off, off, length, size)
	}
	return nil
}

// uvarintAt decodes a uvarint from data[off:] and returns the value and
// the offset just past it. Truncated or oversized varints return an error
// instead of panicking or silently reading garbage.
func uvarintAt(data []byte, off int) (uint64, int, error) {
	if off < 0 || off >= len(data) {
		return 0, 0, fmt.Errorf("index: varint at %d past end of %d-byte buffer", off, len(data))
	}
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("index: truncated or overlong varint at offset %d", off)
	}
	return v, off + n, nil
}

// u32At / u64At read fixed-width little-endian integers with bounds
// checks; callers that already validated the section may use the raw
// binary.LittleEndian forms on hot paths.
func u32At(data []byte, off int) (uint32, error) {
	if off < 0 || off+4 > len(data) {
		return 0, fmt.Errorf("index: u32 at %d past end of %d-byte buffer", off, len(data))
	}
	return binary.LittleEndian.Uint32(data[off:]), nil
}

func u64At(data []byte, off int) (uint64, error) {
	if off < 0 || off+8 > len(data) {
		return 0, fmt.Errorf("index: u64 at %d past end of %d-byte buffer", off, len(data))
	}
	return binary.LittleEndian.Uint64(data[off:]), nil
}

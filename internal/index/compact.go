package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"subtraj/internal/traj"
)

// This file implements the memory-optimal index backend: Compact, a frozen
// snapshot of an Inverted index laid out in one flat byte arena. Posting
// lists are delta-encoded into per-block bit-packed frames behind
// fixed-width skip blocks and decode lazily into pooled scratch;
// trajectory intervals, the departure-rank
// permutation, and the symbol table are fixed-width sections of the same
// arena. The arena doubles as the on-disk format: Save writes it verbatim
// and OpenMapped maps a saved file back zero-copy, so a multi-gigabyte
// index costs page-cache residency, not Go heap — the succinct-index
// direction of Kanda & Fujii's tSTAT applied to the paper's filter phase,
// which only ever scans postings sequentially per query symbol (§5) and
// therefore loses nothing to the compressed layout.
//
// Arena layout (version 1, all integers little-endian):
//
//	header   96 B: magic, version, block size, counts, section offsets,
//	         total size, CRC-32C of everything after the header
//	intervals numTraj × 16 B: float64 departure, float64 arrival bits
//	rank      numTraj × 4 B: trajectory ID at each departure rank
//	          (stable (departure, ID) order — identical to the order
//	          Inverted.BuildTemporal sorts every list into)
//	symtab    numSyms × 24 B, ascending symbol: u32 sym, u32 count,
//	          u64 listOff, u32 listLen, u32 tempLen
//	blob      the encoded lists, contiguous in symtab order; each symbol
//	          stores its ID-ordered main list then its rank-ordered
//	          temporal list
//
// Encoded list: ceil(count/blockSize) skip entries (u32 firstKey, u32
// data offset relative to the end of the skip table), then per block a
// bit-packed frame: u8 key-delta width, u8 position width, the block's
// key deltas packed LSB-first at the key width, then its positions at the
// position width. Each block pays for its own outliers only, so dense
// lists cost ~1–2 bytes per posting where fixed varints would floor at 2.
// The main list's key is the trajectory ID; the temporal list's key is
// the departure rank, so a PostingsInWindow call binary-searches the
// global rank order once, binary-searches the skip table, and decodes
// only the covering blocks.
const (
	compactMagic      = "SBTJCPT1"
	compactVersion    = 1
	compactHeaderSize = 96
	// compactBlockSize is the postings-per-skip-block granularity written
	// by Freeze: windowed reads decode at most one partial block on each
	// end, and a block of 128 bit-packed pairs stays well inside one page.
	compactBlockSize = 128
	// maxRetainedPostings caps the scratch a pooled source keeps between
	// queries, so one huge postings list cannot pin memory forever (the
	// verify.Put convention).
	maxRetainedPostings = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// compactChecksum covers the whole arena — header included, with the
// checksum field itself read as zero — so any single corrupted byte
// (counts, offsets, block size, postings) fails verification; the
// reserved header bytes are additionally required to be zero by the
// loader.
func compactChecksum(data []byte) uint32 {
	crc := crc32.Update(0, crcTable, data[:80])
	crc = crc32.Update(crc, crcTable, []byte{0, 0, 0, 0})
	return crc32.Update(crc, crcTable, data[84:])
}

// Compact is the frozen, memory-optimal index backend. It is immutable
// and safe for any number of concurrent readers; appends go through an
// Overlay, which pairs a Compact base with a mutable Inverted tail.
type Compact struct {
	data []byte

	numTraj     int
	numSyms     int
	numPostings int
	blockSize   int

	intervalsOff int
	rankOff      int
	symTabOff    int
	blobOff      int

	// closer unmaps the arena when it came from OpenMapped (nil for
	// heap-built arenas).
	closer func() error
}

// compactEntry is one parsed symbol-table row.
type compactEntry struct {
	sym     traj.Symbol
	count   int
	listOff int
	listLen int
	tempLen int
}

// --- freezing ------------------------------------------------------------

// Freeze builds a Compact arena from an Inverted index. The input is not
// modified and may be discarded afterwards; the result answers the same
// postings, frequency, interval, and temporal-window queries bit-equally.
func Freeze(inv *Inverted) *Compact {
	n := len(inv.departures)
	syms := make([]traj.Symbol, 0, len(inv.lists))
	for s := range inv.lists {
		syms = append(syms, s)
	}
	slices.Sort(syms)

	// Departure-rank permutation: stable sort of IDs by departure time.
	// Starting from ascending IDs, stability makes this the (departure,
	// ID) order — exactly how sortByDeparture orders every temporal list.
	idByRank := make([]int32, n)
	for i := range idByRank {
		idByRank[i] = int32(i)
	}
	sort.SliceStable(idByRank, func(i, j int) bool {
		return inv.departures[idByRank[i]] < inv.departures[idByRank[j]]
	})
	rankOf := make([]int32, n)
	for r, id := range idByRank {
		rankOf[id] = int32(r)
	}

	intervalsOff := compactHeaderSize
	rankOff := intervalsOff + n*16
	symTabOff := alignUp8(rankOff + n*4)
	blobOff := symTabOff + len(syms)*24

	var blob bytes.Buffer
	symTab := make([]byte, len(syms)*24)
	tempScratch := make([]Posting, 0, 1024)
	for i, sym := range syms {
		list := inv.lists[sym]
		listBytes := encodePostings(list, nil)
		// Temporal twin: the same postings stably re-sorted by departure
		// rank (ties keep (ID, pos) order, matching BuildTemporal).
		tempScratch = append(tempScratch[:0], list...)
		slices.SortStableFunc(tempScratch, func(a, b Posting) int {
			return int(rankOf[a.ID]) - int(rankOf[b.ID])
		})
		tempBytes := encodePostings(tempScratch, rankOf)
		if len(listBytes) > math.MaxUint32 || len(tempBytes) > math.MaxUint32 {
			panic("index: single postings list exceeds 4 GiB encoded")
		}
		e := symTab[i*24:]
		binary.LittleEndian.PutUint32(e[0:], uint32(sym))
		binary.LittleEndian.PutUint32(e[4:], uint32(len(list)))
		binary.LittleEndian.PutUint64(e[8:], uint64(blobOff+blob.Len()))
		binary.LittleEndian.PutUint32(e[16:], uint32(len(listBytes)))
		binary.LittleEndian.PutUint32(e[20:], uint32(len(tempBytes)))
		blob.Write(listBytes)
		blob.Write(tempBytes)
	}

	total := blobOff + blob.Len()
	data := make([]byte, total)
	h := data[:compactHeaderSize]
	copy(h[0:8], compactMagic)
	binary.LittleEndian.PutUint32(h[8:], compactVersion)
	binary.LittleEndian.PutUint32(h[12:], compactBlockSize)
	binary.LittleEndian.PutUint64(h[16:], uint64(n))
	binary.LittleEndian.PutUint64(h[24:], uint64(len(syms)))
	binary.LittleEndian.PutUint64(h[32:], uint64(inv.numPostings))
	binary.LittleEndian.PutUint64(h[40:], uint64(intervalsOff))
	binary.LittleEndian.PutUint64(h[48:], uint64(rankOff))
	binary.LittleEndian.PutUint64(h[56:], uint64(symTabOff))
	binary.LittleEndian.PutUint64(h[64:], uint64(blobOff))
	binary.LittleEndian.PutUint64(h[72:], uint64(total))
	for id := 0; id < n; id++ {
		off := intervalsOff + id*16
		binary.LittleEndian.PutUint64(data[off:], math.Float64bits(inv.departures[id]))
		binary.LittleEndian.PutUint64(data[off+8:], math.Float64bits(inv.arrivals[id]))
	}
	for r, id := range idByRank {
		binary.LittleEndian.PutUint32(data[rankOff+r*4:], uint32(id))
	}
	copy(data[symTabOff:], symTab)
	copy(data[blobOff:], blob.Bytes())
	binary.LittleEndian.PutUint32(h[80:], compactChecksum(data))

	c, err := LoadCompact(data)
	if err != nil {
		// Freeze writes the canonical layout; failing its own loader is a
		// bug, not an input condition.
		panic(fmt.Sprintf("index: frozen arena does not validate: %v", err))
	}
	return c
}

// FreezeDataset is Build + Freeze: the one-step constructor for callers
// that never need the intermediate pointer-rich index.
func FreezeDataset(ds *traj.Dataset) *Compact {
	return Freeze(Build(ds))
}

// encodePostings writes one skip-blocked bit-packed list. The key is
// the trajectory ID when rankOf is nil, else the ID's departure rank;
// keys must be non-decreasing in list order (the caller sorts). Each
// block's key deltas and positions are packed at the minimal bit width
// their block needs (an outlier widens only its own block).
func encodePostings(list []Posting, rankOf []int32) []byte {
	if len(list) == 0 {
		return nil
	}
	key := func(p Posting) uint32 {
		if rankOf == nil {
			return uint32(p.ID)
		}
		return uint32(rankOf[p.ID])
	}
	numBlocks := (len(list) + compactBlockSize - 1) / compactBlockSize
	skip := make([]byte, numBlocks*8)
	var data []byte
	deltas := make([]uint32, 0, compactBlockSize)
	poss := make([]uint32, 0, compactBlockSize)
	for b := 0; b < numBlocks; b++ {
		start := b * compactBlockSize
		end := min(start+compactBlockSize, len(list))
		first := key(list[start])
		binary.LittleEndian.PutUint32(skip[b*8:], first)
		binary.LittleEndian.PutUint32(skip[b*8+4:], uint32(len(data)))
		prev := first
		deltas, poss = deltas[:0], poss[:0]
		var orD, orP uint32 // bits.Len(a|b) == max(bits.Len(a), bits.Len(b))
		for _, p := range list[start:end] {
			k := key(p)
			deltas = append(deltas, k-prev)
			poss = append(poss, uint32(p.Pos))
			orD |= k - prev
			orP |= uint32(p.Pos)
			prev = k
		}
		kb, pb := bits.Len32(orD), bits.Len32(orP)
		data = append(data, byte(kb), byte(pb))
		data = packBits(data, deltas, kb)
		data = packBits(data, poss, pb)
	}
	return append(skip, data...)
}

// packBits appends vals to dst LSB-first at the given width (0 = all
// values are zero, nothing written).
func packBits(dst []byte, vals []uint32, width int) []byte {
	if width == 0 {
		return dst
	}
	var acc uint64
	var nbits int
	for _, v := range vals {
		acc |= uint64(v) << nbits
		nbits += width
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// bitsAt extracts the width-bit value at bit offset bitPos of data
// (LSB-first, width ≤ 32). Reads stay inside data.
func bitsAt(data []byte, bitPos, width int) uint32 {
	if width == 0 {
		return 0
	}
	idx := bitPos >> 3
	shift := uint(bitPos & 7)
	var raw uint64
	if len(data)-idx >= 8 {
		raw = binary.LittleEndian.Uint64(data[idx:])
	} else {
		for k, b := range data[idx:] {
			raw |= uint64(b) << (8 * uint(k))
		}
	}
	return uint32(raw >> shift & (1<<uint(width) - 1))
}

func alignUp8(x int) int { return (x + 7) &^ 7 }

// --- loading and validation ----------------------------------------------

// LoadCompact validates a compact arena and wraps it without copying. The
// input is untrusted: every section offset, count, skip entry, and frame
// is range-checked up front (one sequential decode sweep), so query-time
// reads can run without error paths — a validated arena can never make
// Postings or PostingsInWindow read out of bounds. Counts never cause
// pre-allocation beyond preallocCap before bytes back them.
func LoadCompact(data []byte) (*Compact, error) {
	size := uint64(len(data))
	if len(data) < compactHeaderSize {
		return nil, fmt.Errorf("index: compact arena of %d bytes shorter than header", len(data))
	}
	if string(data[0:8]) != compactMagic {
		return nil, fmt.Errorf("index: bad compact magic %q", data[0:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != compactVersion {
		return nil, fmt.Errorf("index: unsupported compact version %d", v)
	}
	blockSize := binary.LittleEndian.Uint32(data[12:])
	if blockSize < 1 || blockSize > 1<<16 {
		return nil, fmt.Errorf("index: compact block size %d out of range", blockSize)
	}
	numTraj := binary.LittleEndian.Uint64(data[16:])
	numSyms := binary.LittleEndian.Uint64(data[24:])
	numPostings := binary.LittleEndian.Uint64(data[32:])
	if numTraj > math.MaxInt32 || numSyms > math.MaxInt32 || numPostings > math.MaxInt64/2 {
		return nil, fmt.Errorf("index: compact counts out of range (%d trajectories, %d symbols, %d postings)", numTraj, numSyms, numPostings)
	}
	intervalsOff := binary.LittleEndian.Uint64(data[40:])
	rankOff := binary.LittleEndian.Uint64(data[48:])
	symTabOff := binary.LittleEndian.Uint64(data[56:])
	blobOff := binary.LittleEndian.Uint64(data[64:])
	total := binary.LittleEndian.Uint64(data[72:])
	if total != size {
		return nil, fmt.Errorf("index: compact header claims %d bytes, file has %d", total, size)
	}
	// The layout is canonical: sections are exactly contiguous in header
	// order. Rejecting every other arrangement removes aliased-section
	// inputs (offsets pointing into each other) outright.
	if intervalsOff != compactHeaderSize ||
		rankOff != intervalsOff+numTraj*16 ||
		symTabOff != uint64(alignUp8(int(rankOff+numTraj*4))) ||
		blobOff != symTabOff+numSyms*24 {
		return nil, fmt.Errorf("index: compact sections not in canonical layout")
	}
	if err := checkSection("blob", blobOff, total-blobOff, size); err != nil {
		return nil, err
	}
	for _, b := range data[84:compactHeaderSize] {
		if b != 0 {
			return nil, fmt.Errorf("index: nonzero reserved header bytes")
		}
	}
	if want, got := binary.LittleEndian.Uint32(data[80:]), compactChecksum(data); want != got {
		return nil, fmt.Errorf("index: compact checksum mismatch (header %08x, content %08x)", want, got)
	}

	c := &Compact{
		data:         data,
		numTraj:      int(numTraj),
		numSyms:      int(numSyms),
		numPostings:  int(numPostings),
		blockSize:    int(blockSize),
		intervalsOff: int(intervalsOff),
		rankOff:      int(rankOff),
		symTabOff:    int(symTabOff),
		blobOff:      int(blobOff),
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// validate is the one-pass structural sweep over a checksummed arena:
// the rank section must be a permutation with non-decreasing departures,
// the symbol table strictly ascending and exactly tiling the blob region,
// and every encoded list must decode cleanly with in-range, properly
// ordered keys and skip entries that match the data they index.
func (c *Compact) validate() error {
	// Departure order: dep(rank r) non-decreasing, no NaNs (binary search
	// over the rank order requires monotonicity).
	seen := make([]bool, c.numTraj)
	prev := math.Inf(-1)
	for r := 0; r < c.numTraj; r++ {
		id := binary.LittleEndian.Uint32(c.data[c.rankOff+r*4:])
		if id >= uint32(c.numTraj) || seen[id] {
			return fmt.Errorf("index: rank section is not a permutation (rank %d → id %d)", r, id)
		}
		seen[id] = true
		d := c.departure(int32(id))
		if math.IsNaN(d) || d < prev {
			return fmt.Errorf("index: departures not sorted at rank %d", r)
		}
		prev = d
	}

	expectOff := c.blobOff
	prevSym := int64(-1)
	totalPostings := 0
	for i := 0; i < c.numSyms; i++ {
		e, err := c.entryChecked(i)
		if err != nil {
			return err
		}
		if int64(e.sym) <= prevSym {
			return fmt.Errorf("index: symbol table not strictly ascending at entry %d", i)
		}
		prevSym = int64(e.sym)
		if e.listOff != expectOff {
			return fmt.Errorf("index: symbol %d list at %d, expected %d (blob not contiguous)", e.sym, e.listOff, expectOff)
		}
		expectOff += e.listLen + e.tempLen
		if expectOff > len(c.data) {
			return fmt.Errorf("index: symbol %d lists run past end of arena", e.sym)
		}
		if err := c.sweepList(e.listOff, e.listLen, e.count, false); err != nil {
			return fmt.Errorf("index: symbol %d main list: %w", e.sym, err)
		}
		if err := c.sweepList(e.listOff+e.listLen, e.tempLen, e.count, true); err != nil {
			return fmt.Errorf("index: symbol %d temporal list: %w", e.sym, err)
		}
		totalPostings += e.count
	}
	if expectOff != len(c.data) {
		return fmt.Errorf("index: %d trailing bytes after last list", len(c.data)-expectOff)
	}
	if totalPostings != c.numPostings {
		return fmt.Errorf("index: symbol table counts sum to %d postings, header claims %d", totalPostings, c.numPostings)
	}
	return nil
}

// sweepList structurally validates one encoded list. temporal selects
// the key domain: departure ranks (non-decreasing, duplicates allowed
// across positions) versus trajectory IDs with strictly increasing
// (ID, pos).
func (c *Compact) sweepList(off, length, count int, temporal bool) error {
	if count == 0 {
		if length != 0 {
			return fmt.Errorf("%d bytes for an empty list", length)
		}
		return nil
	}
	numBlocks := (count + c.blockSize - 1) / c.blockSize
	skipBytes := numBlocks * 8
	if length < skipBytes {
		return fmt.Errorf("list of %d bytes shorter than its %d-byte skip table", length, skipBytes)
	}
	list := c.data[off : off+length]
	dataStart := skipBytes
	pos := dataStart
	prevKey := int64(-1)
	prevPos := int64(-1)
	for b := 0; b < numBlocks; b++ {
		firstKey := binary.LittleEndian.Uint32(list[b*8:])
		relOff := binary.LittleEndian.Uint32(list[b*8+4:])
		if dataStart+int(relOff) != pos {
			return fmt.Errorf("skip entry %d points at %d, block starts at %d", b, dataStart+int(relOff), pos-dataStart)
		}
		n := min(c.blockSize, count-b*c.blockSize)
		if pos+2 > length {
			return fmt.Errorf("block %d frame header past end of list", b)
		}
		kb, pb := int(list[pos]), int(list[pos+1])
		if kb > 32 || pb > 32 {
			return fmt.Errorf("block %d bit widths (%d, %d) out of range", b, kb, pb)
		}
		keyBytes := (n*kb + 7) / 8
		posBytes := (n*pb + 7) / 8
		if pos+2+keyBytes+posBytes > length {
			return fmt.Errorf("block %d frame runs past end of list", b)
		}
		keys := list[pos+2 : pos+2+keyBytes]
		ps := list[pos+2+keyBytes : pos+2+keyBytes+posBytes]
		key := uint64(firstKey)
		for j := 0; j < n; j++ {
			delta := uint64(bitsAt(keys, j*kb, kb))
			p := uint64(bitsAt(ps, j*pb, pb))
			if j == 0 && delta != 0 {
				return fmt.Errorf("block %d first delta %d (first key must equal the skip entry)", b, delta)
			}
			key += delta
			if key >= uint64(c.numTraj) {
				return fmt.Errorf("key %d out of range [0, %d)", key, c.numTraj)
			}
			if p > math.MaxInt32 {
				return fmt.Errorf("position %d out of range", p)
			}
			if temporal {
				if int64(key) < prevKey {
					return fmt.Errorf("temporal ranks decrease at key %d", key)
				}
			} else {
				if int64(key) < prevKey || (int64(key) == prevKey && int64(p) <= prevPos) {
					return fmt.Errorf("(id, pos) not strictly increasing at (%d, %d)", key, p)
				}
			}
			prevKey, prevPos = int64(key), int64(p)
		}
		pos += 2 + keyBytes + posBytes
	}
	if pos != length {
		return fmt.Errorf("list has %d trailing bytes", length-pos)
	}
	return nil
}

// entryChecked parses symbol-table row i with bounds checks (validation
// path; query paths use entry, which assumes a validated arena).
func (c *Compact) entryChecked(i int) (compactEntry, error) {
	off := c.symTabOff + i*24
	listOff, err := u64At(c.data, off+8)
	if err != nil {
		return compactEntry{}, err
	}
	if listOff > uint64(len(c.data)) {
		return compactEntry{}, fmt.Errorf("index: symbol entry %d list offset %d out of range", i, listOff)
	}
	e := c.entry(i)
	if e.listLen < 0 || e.tempLen < 0 || e.count < 0 {
		return compactEntry{}, fmt.Errorf("index: symbol entry %d has negative sizes", i)
	}
	return e, nil
}

// --- persistence ----------------------------------------------------------

// Save writes the arena verbatim; the on-disk format *is* the in-memory
// layout, so save/load round trips are byte-identical by construction.
func (c *Compact) Save(w io.Writer) error {
	_, err := w.Write(c.data)
	return err
}

// Bytes exposes the arena (read-only; shared with any mapping).
func (c *Compact) Bytes() []byte { return c.data }

// Close releases the underlying mapping for arenas opened by OpenMapped;
// it is a no-op for heap-built arenas. The Compact must not be used after
// Close.
func (c *Compact) Close() error {
	if c.closer == nil {
		return nil
	}
	f := c.closer
	c.closer = nil
	c.data = nil
	return f()
}

// --- read surface ---------------------------------------------------------

// NumTrajectories returns the number of trajectories frozen into the
// snapshot (IDs [0, NumTrajectories) are answered by this arena).
func (c *Compact) NumTrajectories() int { return c.numTraj }

// NumSymbols returns the number of distinct symbols with postings.
func (c *Compact) NumSymbols() int { return c.numSyms }

// NumPostings returns the total posting count.
func (c *Compact) NumPostings() int { return c.numPostings }

// IndexBytes returns the exact arena size — the whole memory footprint of
// the backend (plus page-cache residency when mapped).
func (c *Compact) IndexBytes() int64 { return int64(len(c.data)) }

func (c *Compact) departure(id int32) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(c.data[c.intervalsOff+int(id)*16:]))
}

// Interval returns the trajectory's [departure, arrival] span.
func (c *Compact) Interval(id int32) (lo, hi float64) {
	off := c.intervalsOff + int(id)*16
	return math.Float64frombits(binary.LittleEndian.Uint64(c.data[off:])),
		math.Float64frombits(binary.LittleEndian.Uint64(c.data[off+8:]))
}

// IntervalOverlaps reports whether trajectory id's interval intersects
// [lo, hi].
func (c *Compact) IntervalOverlaps(id int32, lo, hi float64) bool {
	dep, arr := c.Interval(id)
	return dep <= hi && arr >= lo
}

func (c *Compact) idAtRank(r int) int32 {
	return int32(binary.LittleEndian.Uint32(c.data[c.rankOff+r*4:]))
}

// entry parses symbol-table row i (validated arena fast path).
func (c *Compact) entry(i int) compactEntry {
	e := c.data[c.symTabOff+i*24:]
	return compactEntry{
		sym:     traj.Symbol(binary.LittleEndian.Uint32(e[0:])),
		count:   int(binary.LittleEndian.Uint32(e[4:])),
		listOff: int(binary.LittleEndian.Uint64(e[8:])),
		listLen: int(binary.LittleEndian.Uint32(e[16:])),
		tempLen: int(binary.LittleEndian.Uint32(e[20:])),
	}
}

// findSym binary-searches the symbol table.
func (c *Compact) findSym(sym traj.Symbol) (compactEntry, bool) {
	lo, hi := 0, c.numSyms
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		s := traj.Symbol(binary.LittleEndian.Uint32(c.data[c.symTabOff+mid*24:]))
		switch {
		case s < sym:
			lo = mid + 1
		case s > sym:
			hi = mid
		default:
			return c.entry(mid), true
		}
	}
	return compactEntry{}, false
}

// Freq returns n(q) straight from the symbol table — no decoding.
func (c *Compact) Freq(q traj.Symbol) int {
	if e, ok := c.findSym(q); ok {
		return e.count
	}
	return 0
}

// Symbols returns every indexed symbol in ascending order (test and
// tooling surface; allocates).
func (c *Compact) Symbols() []traj.Symbol {
	out := make([]traj.Symbol, c.numSyms)
	for i := range out {
		out[i] = traj.Symbol(binary.LittleEndian.Uint32(c.data[c.symTabOff+i*24:]))
	}
	return out
}

// decodeMain decodes a symbol's full ID-ordered list into dst.
func (c *Compact) decodeMain(e compactEntry, dst []Posting) []Posting {
	if e.count == 0 {
		return dst
	}
	dst = slices.Grow(dst, e.count)
	numBlocks := (e.count + c.blockSize - 1) / c.blockSize
	list := c.data[e.listOff : e.listOff+e.listLen]
	pos := numBlocks * 8
	for b := 0; b < numBlocks; b++ {
		key := binary.LittleEndian.Uint32(list[b*8:])
		n := min(c.blockSize, e.count-b*c.blockSize)
		kb, pb := int(list[pos]), int(list[pos+1])
		keyBytes := (n*kb + 7) / 8
		posBytes := (n*pb + 7) / 8
		keys := list[pos+2 : pos+2+keyBytes]
		ps := list[pos+2+keyBytes : pos+2+keyBytes+posBytes]
		for j := 0; j < n; j++ {
			key += bitsAt(keys, j*kb, kb)
			dst = append(dst, Posting{ID: int32(key), Pos: int32(bitsAt(ps, j*pb, pb))})
		}
		pos += 2 + keyBytes + posBytes
	}
	return dst
}

// decodeTemporalWindow appends the postings of e whose departure rank
// lies in [rankLo, rankHi), using the skip table to decode only covering
// blocks.
func (c *Compact) decodeTemporalWindow(e compactEntry, rankLo, rankHi int, dst []Posting) []Posting {
	if e.count == 0 || rankLo >= rankHi {
		return dst
	}
	numBlocks := (e.count + c.blockSize - 1) / c.blockSize
	tempOff := e.listOff + e.listLen
	list := c.data[tempOff : tempOff+e.tempLen]
	dataStart := numBlocks * 8
	// First block that can hold rank ≥ rankLo: the last whose firstKey is
	// strictly below rankLo, clamped to block 0. (Not ≤: keys equal to
	// rankLo may straddle a block boundary, so a block whose firstKey
	// equals rankLo can be preceded by in-window keys at the previous
	// block's tail.) Earlier blocks hold only keys ≤ that firstKey,
	// hence < rankLo.
	b := sort.Search(numBlocks, func(i int) bool {
		return binary.LittleEndian.Uint32(list[i*8:]) >= uint32(rankLo)
	}) - 1
	if b < 0 {
		b = 0
	}
	for ; b < numBlocks; b++ {
		firstKey := binary.LittleEndian.Uint32(list[b*8:])
		if int(firstKey) >= rankHi {
			break
		}
		pos := dataStart + int(binary.LittleEndian.Uint32(list[b*8+4:]))
		key := firstKey
		n := min(c.blockSize, e.count-b*c.blockSize)
		kb, pb := int(list[pos]), int(list[pos+1])
		keyBytes := (n*kb + 7) / 8
		keys := list[pos+2 : pos+2+keyBytes]
		ps := list[pos+2+keyBytes : pos+2+keyBytes+(n*pb+7)/8]
		for j := 0; j < n; j++ {
			key += bitsAt(keys, j*kb, kb)
			if int(key) >= rankHi {
				return dst // keys only grow from here
			}
			if int(key) < rankLo {
				continue
			}
			dst = append(dst, Posting{ID: c.idAtRank(int(key)), Pos: int32(bitsAt(ps, j*pb, pb))})
		}
	}
	return dst
}

// rankWindow maps a departure window to the covered rank interval
// [ra, rb): ra is the first rank departing ≥ lo, rb the first departing
// > hi (the Inverted.PostingsInWindow binary-search semantics, applied
// once globally instead of once per list).
func (c *Compact) rankWindow(lo, hi float64) (ra, rb int) {
	ra = sort.Search(c.numTraj, func(r int) bool { return c.departure(c.idAtRank(r)) >= lo })
	rb = sort.Search(c.numTraj, func(r int) bool { return c.departure(c.idAtRank(r)) > hi })
	return ra, rb
}

// --- pooled read cursors --------------------------------------------------

// CompactSource is a per-query read cursor over a Compact: it satisfies
// PostingSource by decoding lists lazily into its own pooled scratch, so
// concurrent queries never share decode buffers and steady-state reads
// allocate nothing. The slice returned by Postings/PostingsInWindow is
// valid until the next call on the same source — exactly the candidate-
// generation access pattern, which fully consumes each list before
// requesting the next.
type CompactSource struct {
	c       *Compact
	scratch []Posting
}

var compactSources = sync.Pool{New: func() any { return new(CompactSource) }}

// AcquireSource checks a pooled cursor out of the pool. Pair with
// Release (ReleaseSource does so generically for any PostingSource).
//
//subtrajlint:pool-transfer
func (c *Compact) AcquireSource() *CompactSource {
	s := compactSources.Get().(*CompactSource)
	s.c = c
	return s
}

// Release returns the cursor to the pool, capping retained scratch.
func (s *CompactSource) Release() {
	s.c = nil
	if cap(s.scratch) > maxRetainedPostings {
		s.scratch = nil
	}
	compactSources.Put(s)
}

// Postings decodes L_q into the cursor's scratch. Valid until the next
// call on this source; do not modify.
func (s *CompactSource) Postings(q traj.Symbol) []Posting {
	e, ok := s.c.findSym(q)
	if !ok {
		return nil
	}
	s.scratch = s.c.decodeMain(e, s.scratch[:0])
	return s.scratch
}

// PostingsInWindow decodes the postings of q whose trajectory departs in
// [lo, hi]. The temporal order is frozen into the arena, so no
// BuildTemporal call is needed (or possible).
func (s *CompactSource) PostingsInWindow(q traj.Symbol, lo, hi float64) []Posting {
	e, ok := s.c.findSym(q)
	if !ok {
		return nil
	}
	ra, rb := s.c.rankWindow(lo, hi)
	s.scratch = s.c.decodeTemporalWindow(e, ra, rb, s.scratch[:0])
	return s.scratch
}

// IntervalOverlaps reports whether trajectory id's interval intersects
// [lo, hi].
func (s *CompactSource) IntervalOverlaps(id int32, lo, hi float64) bool {
	return s.c.IntervalOverlaps(id, lo, hi)
}

var _ PostingSource = (*CompactSource)(nil)

package index_test

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/testutil"
)

// loadCompactCorpus reads the checked-in compact-arena corpus (the golden
// dataset frozen by Freeze and written by Save).
func loadCompactCorpus(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_compact.bin")
	if err != nil {
		t.Fatalf("compact seed corpus missing: %v", err)
	}
	return data
}

// TestGoldenCompactCorpusLoads pins the compact on-disk format: the
// checked-in arena must keep loading, must equal a fresh freeze of the
// golden dataset byte for byte (Freeze is deterministic), and must
// re-save byte-identically. Any format change that breaks old files
// breaks this test first.
func TestGoldenCompactCorpusLoads(t *testing.T) {
	data := loadCompactCorpus(t)
	got, err := index.LoadCompact(data)
	if err != nil {
		t.Fatalf("corpus does not load: %v", err)
	}
	fresh := index.FreezeDataset(testutil.GoldenDataset())
	if !bytes.Equal(fresh.Bytes(), data) {
		t.Fatal("fresh freeze of the golden dataset differs from the checked-in corpus (format drift — bump compactVersion and regenerate)")
	}
	var buf bytes.Buffer
	if err := got.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("re-saved corpus differs from checked-in bytes")
	}
	// And the loaded arena answers like a pointer index over the dataset.
	inv := index.Build(testutil.GoldenDataset())
	src := got.AcquireSource()
	defer src.Release()
	for _, p := range testutil.GoldenPaths() {
		for _, sym := range p {
			if got.Freq(sym) != inv.Freq(sym) {
				t.Fatalf("Freq(%d) = %d, want %d", sym, got.Freq(sym), inv.Freq(sym))
			}
			if !reflect.DeepEqual(append([]index.Posting(nil), src.Postings(sym)...), inv.Postings(sym)) {
				t.Fatalf("Postings(%d) differ", sym)
			}
		}
	}
}

// FuzzLoadCompact: arbitrary bytes fed to the compact loader must either
// load or error — never panic, hang, read out of bounds, or allocate
// unboundedly from corrupt counts. Arenas that do load must answer reads
// without panicking and survive a save/load round trip byte-identically.
func FuzzLoadCompact(f *testing.F) {
	valid := loadCompactCorpus(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SBTJCPT1"))      // magic only
	f.Add(valid[:96])              // header only
	f.Add(valid[:len(valid)/2])    // truncated mid-section
	f.Add(append([]byte{}, valid[1:]...)) // shifted
	// Bit-flipped copies seed the header, section, and frame paths.
	for _, i := range []int{8, 12, 16, 40, 80, 96, len(valid) - 1} {
		if i < len(valid) {
			mut := append([]byte{}, valid...)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := index.LoadCompact(data)
		if err != nil {
			return
		}
		// A validated arena must be fully readable.
		src := c.AcquireSource()
		for _, sym := range c.Symbols() {
			if got := len(src.Postings(sym)); got != c.Freq(sym) {
				t.Fatalf("Postings(%d) has %d entries, Freq says %d", sym, got, c.Freq(sym))
			}
			src.PostingsInWindow(sym, 0, 1e18)
		}
		src.Release()
		for id := int32(0); id < int32(c.NumTrajectories()); id++ {
			c.Interval(id)
		}
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatalf("loaded arena does not save: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("save of loaded arena is not byte-identical")
		}
		if _, err := index.LoadCompact(buf.Bytes()); err != nil {
			t.Fatalf("saved copy of loaded arena does not load: %v", err)
		}
	})
}

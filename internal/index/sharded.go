package index

import (
	"runtime"
	"sync"

	"subtraj/internal/traj"
)

// This file adds the trajectory-sharded variant of the inverted index.
// A Sharded index partitions postings by trajectory ID into P shards
// (shard(id) = id mod P), each exposing the same read surface as the flat
// Inverted index, so candidate generation and verification can run
// shard-parallel within one query: the paper's filter/verify split (§4–§5)
// is independent along the trajectory axis, and the §5 trie cache only
// shares state within one τ-subsequence position, never across shards.
// Global statistics (n(q) frequencies, departure intervals) stay
// shard-independent so the MinCand plan — and therefore the candidate set —
// is identical at every shard count.

// PostingSource is the read surface candidate generation needs: the flat
// Inverted index and each Shard of a Sharded index both provide it, so
// the filter layer is agnostic to how postings are partitioned.
type PostingSource interface {
	// Postings returns the postings list L_q (shared; do not modify).
	Postings(q traj.Symbol) []Posting
	// PostingsInWindow returns the postings of q whose trajectory departs
	// in [lo, hi] (requires the temporal order to have been built).
	PostingsInWindow(q traj.Symbol, lo, hi float64) []Posting
	// IntervalOverlaps reports whether trajectory id's [departure,
	// arrival] interval intersects [lo, hi].
	IntervalOverlaps(id int32, lo, hi float64) bool
}

var (
	_ PostingSource = (*Inverted)(nil)
	_ PostingSource = (*Shard)(nil)
)

// Sharded is an inverted index partitioned by trajectory ID into P shards.
// It answers the global queries plan building needs (Freq, Interval) and
// exposes per-shard PostingSources for parallel candidate generation.
// Like Inverted, it is safe for concurrent readers once built; Append and
// BuildTemporal are writes.
type Sharded struct {
	shards []Shard
	// departures/arrivals are global (indexed by trajectory ID): every
	// shard shares them, and the temporal pre-filter reads them directly.
	departures []float64
	arrivals   []float64
	// freq is the global n(q) over all shards — the MinCand objective
	// must see dataset-wide frequencies so the chosen τ-subsequence does
	// not depend on the shard count.
	freq        map[traj.Symbol]int
	numPostings int
	// flat, when non-nil, is the Inverted this index wraps zero-copy
	// (ShardedFromInverted). Appends must go through it so the shared
	// flat index stays internally consistent for its other users.
	flat *Inverted
}

// Shard is one trajectory partition of a Sharded index. It implements
// PostingSource over only its own trajectories.
type Shard struct {
	parent      *Sharded
	lists       map[traj.Symbol][]Posting
	byDeparture map[traj.Symbol][]Posting
}

// DefaultShards picks the shard count for auto configuration: one shard
// per available CPU, so a fully parallel query can saturate the machine.
// The tradeoff is deliberate: a sequential query over a P-shard index
// pays P map lookups per neighbour symbol instead of one, a few percent
// of the lookup phase, in exchange for every engine being ready to fan
// out without a rebuild. Callers that will only ever run sequentially
// can pass an explicit shard count of 1.
func DefaultShards() int {
	return runtime.GOMAXPROCS(0)
}

// BuildSharded indexes the dataset into p shards (p < 1 selects
// DefaultShards). Shards are built in parallel — each worker scans only
// its own ID residue class, so no synchronisation is needed until the
// final frequency merge.
func BuildSharded(ds *traj.Dataset, p int) *Sharded {
	if p < 1 {
		p = DefaultShards()
	}
	if n := ds.Len(); p > n && n > 0 {
		p = n // more shards than trajectories would just be empty maps
	}
	x := &Sharded{
		shards:     make([]Shard, p),
		departures: make([]float64, ds.Len()),
		arrivals:   make([]float64, ds.Len()),
		freq:       make(map[traj.Symbol]int),
	}
	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		x.shards[s] = Shard{parent: x, lists: make(map[traj.Symbol][]Posting)}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &x.shards[s]
			for id := s; id < ds.Len(); id += p {
				t := ds.Get(int32(id))
				for pos, sym := range t.Path {
					sh.lists[sym] = append(sh.lists[sym], Posting{ID: int32(id), Pos: int32(pos)})
				}
				lo, hi, ok := t.Interval()
				if !ok {
					lo, hi = 0, 0
				}
				x.departures[id] = lo
				x.arrivals[id] = hi
			}
		}(s)
	}
	wg.Wait()
	for s := range x.shards {
		for sym, list := range x.shards[s].lists {
			x.freq[sym] += len(list)
			x.numPostings += len(list)
		}
	}
	return x
}

// ShardedFromInverted wraps an already-built flat index as a single-shard
// Sharded index without copying postings (used by callers that share one
// Inverted across engines, e.g. the dataset-size sweeps).
func ShardedFromInverted(inv *Inverted) *Sharded {
	x := &Sharded{
		shards:      make([]Shard, 1),
		departures:  inv.departures,
		arrivals:    inv.arrivals,
		freq:        make(map[traj.Symbol]int, len(inv.lists)),
		numPostings: inv.numPostings,
		flat:        inv,
	}
	for sym, list := range inv.lists {
		x.freq[sym] = len(list)
	}
	x.shards[0] = Shard{parent: x, lists: inv.lists, byDeparture: inv.byDeparture}
	return x
}

// NumShards returns the partition count P.
func (x *Sharded) NumShards() int { return len(x.shards) }

// Shard returns the i-th partition's posting source.
func (x *Sharded) Shard(i int) *Shard { return &x.shards[i] }

// ShardOf returns the shard index owning trajectory id.
func (x *Sharded) ShardOf(id int32) int { return int(id) % len(x.shards) }

// Freq returns the global n(q) across all shards (the MinCand input).
func (x *Sharded) Freq(q traj.Symbol) int { return x.freq[q] }

// NumPostings returns the total posting count across shards.
func (x *Sharded) NumPostings() int { return x.numPostings }

// NumSymbols returns the number of distinct symbols with postings.
func (x *Sharded) NumSymbols() int { return len(x.freq) }

// Interval returns trajectory id's [departure, arrival] span.
func (x *Sharded) Interval(id int32) (lo, hi float64) {
	return x.departures[id], x.arrivals[id]
}

// IntervalOverlaps reports whether trajectory id's interval intersects
// [lo, hi].
func (x *Sharded) IntervalOverlaps(id int32, lo, hi float64) bool {
	return x.departures[id] <= hi && x.arrivals[id] >= lo
}

// Append adds one trajectory's postings to its owning shard (the
// incremental update of §4.1). IDs must be appended in increasing order,
// as with Inverted.Append. Not safe against concurrent readers.
func (x *Sharded) Append(id int32, t *traj.Trajectory) {
	if int(id) != len(x.departures) {
		// IDs are dense; the engine always appends the next ID.
		panic("index: non-sequential sharded append")
	}
	if x.flat != nil {
		// Zero-copy wrap: delegate to the shared flat index — it updates
		// the postings lists the single shard aliases — then re-sync the
		// wrapper's global views (Inverted.Append may have reallocated
		// the departure slices and has its own numPostings).
		x.flat.Append(id, t)
		for _, sym := range t.Path {
			x.freq[sym]++
		}
		x.numPostings = x.flat.numPostings
		x.departures, x.arrivals = x.flat.departures, x.flat.arrivals
		x.shards[0].lists = x.flat.lists
		x.shards[0].byDeparture = nil // temporal order is stale
		return
	}
	sh := &x.shards[x.ShardOf(id)]
	for pos, sym := range t.Path {
		sh.lists[sym] = append(sh.lists[sym], Posting{ID: id, Pos: int32(pos)})
		x.freq[sym]++
	}
	x.numPostings += len(t.Path)
	lo, hi, ok := t.Interval()
	if !ok {
		lo, hi = 0, 0
	}
	x.departures = append(x.departures, lo)
	x.arrivals = append(x.arrivals, hi)
	sh.byDeparture = nil // this shard's temporal order is stale
}

// BuildTemporal materialises the departure-sorted postings order of every
// shard (§4.3), in parallel across shards. Shards whose order is still
// current are skipped — an Append invalidates only its owning shard, so
// post-append recovery re-sorts 1/P of the postings, not all of them.
func (x *Sharded) BuildTemporal() {
	var wg sync.WaitGroup
	for s := range x.shards {
		if x.shards[s].byDeparture != nil {
			continue // still valid: this shard's postings are unchanged
		}
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.buildTemporal()
		}(&x.shards[s])
	}
	wg.Wait()
}

func (sh *Shard) buildTemporal() {
	dep := sh.parent.departures
	sh.byDeparture = make(map[traj.Symbol][]Posting, len(sh.lists))
	for sym, list := range sh.lists {
		cp := make([]Posting, len(list))
		copy(cp, list)
		sortByDeparture(cp, dep)
		sh.byDeparture[sym] = cp
	}
}

// Postings returns this shard's postings of q (shared; do not modify).
func (sh *Shard) Postings(q traj.Symbol) []Posting { return sh.lists[q] }

// Freq returns this shard's occurrence count of q.
func (sh *Shard) Freq(q traj.Symbol) int { return len(sh.lists[q]) }

// PostingsInWindow returns this shard's postings of q whose trajectory
// departs in [lo, hi] (buildTemporal must have run; see
// Inverted.PostingsInWindow for the departure-window semantics).
func (sh *Shard) PostingsInWindow(q traj.Symbol, lo, hi float64) []Posting {
	return postingsInWindow(sh.byDeparture[q], sh.parent.departures, lo, hi)
}

// IntervalOverlaps reports whether trajectory id's interval intersects
// [lo, hi].
func (sh *Shard) IntervalOverlaps(id int32, lo, hi float64) bool {
	return sh.parent.IntervalOverlaps(id, lo, hi)
}

package index_test

import (
	"math/rand"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
)

func TestPostingsComplete(t *testing.T) {
	env := testutil.NewEnv(1, 20, 15)
	inv := index.Build(env.V)
	// Every (id, pos) must appear exactly once in its symbol's list.
	for id := range env.V.Trajs {
		for pos, sym := range env.V.Trajs[id].Path {
			found := 0
			for _, p := range inv.Postings(sym) {
				if p.ID == int32(id) && p.Pos == int32(pos) {
					found++
				}
			}
			if found != 1 {
				t.Fatalf("posting (%d,%d) of %d appears %d times", id, pos, sym, found)
			}
		}
	}
	if inv.NumPostings() != env.V.TotalSymbols() {
		t.Fatalf("postings count %d != total symbols %d", inv.NumPostings(), env.V.TotalSymbols())
	}
}

func TestFreqMatchesCount(t *testing.T) {
	env := testutil.NewEnv(2, 20, 15)
	inv := index.Build(env.V)
	counts := map[traj.Symbol]int{}
	for id := range env.V.Trajs {
		for _, sym := range env.V.Trajs[id].Path {
			counts[sym]++
		}
	}
	for sym, n := range counts {
		if inv.Freq(sym) != n {
			t.Fatalf("freq(%d) = %d, want %d", sym, inv.Freq(sym), n)
		}
	}
	if inv.NumSymbols() != len(counts) {
		t.Fatalf("symbols %d != %d", inv.NumSymbols(), len(counts))
	}
	if inv.Freq(traj.Symbol(1<<30)) != 0 {
		t.Fatal("freq of absent symbol != 0")
	}
}

func TestIncrementalAppendEqualsBuild(t *testing.T) {
	env := testutil.NewEnv(3, 20, 15)
	whole := index.Build(env.V)
	inc := index.Build(traj.NewDataset(traj.VertexRep))
	for id := range env.V.Trajs {
		inc.Append(int32(id), &env.V.Trajs[id])
	}
	for id := range env.V.Trajs {
		for _, sym := range env.V.Trajs[id].Path {
			a, b := whole.Postings(sym), inc.Postings(sym)
			if len(a) != len(b) {
				t.Fatalf("postings length mismatch for %d", sym)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("postings differ for %d at %d: %v vs %v", sym, i, a[i], b[i])
				}
			}
		}
	}
}

func TestTemporalWindow(t *testing.T) {
	env := testutil.NewEnv(4, 30, 15)
	inv := index.Build(env.V)
	inv.BuildTemporal()
	rng := rand.New(rand.NewSource(4))
	// Collect all symbols.
	var syms []traj.Symbol
	seen := map[traj.Symbol]bool{}
	for id := range env.V.Trajs {
		for _, s := range env.V.Trajs[id].Path {
			if !seen[s] {
				seen[s] = true
				syms = append(syms, s)
			}
		}
	}
	for trial := 0; trial < 50; trial++ {
		sym := syms[rng.Intn(len(syms))]
		lo := rng.Float64() * 3600
		hi := lo + rng.Float64()*1800
		got := inv.PostingsInWindow(sym, lo, hi)
		// Reference: filter full postings by departure.
		var want []index.Posting
		for _, p := range inv.Postings(sym) {
			dep, _ := env.V.Trajs[p.ID].Departure()
			if dep >= lo && dep <= hi {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("window size %d != %d", len(got), len(want))
		}
		gotSet := map[index.Posting]bool{}
		for _, p := range got {
			gotSet[p] = true
		}
		for _, p := range want {
			if !gotSet[p] {
				t.Fatalf("window missing posting %+v", p)
			}
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	env := testutil.NewEnv(5, 20, 15)
	inv := index.Build(env.V)
	for id := range env.V.Trajs {
		lo, hi, ok := env.V.Trajs[id].Interval()
		if !ok {
			t.Fatal("missing timestamps")
		}
		if ilo, ihi := inv.Interval(int32(id)); ilo != lo || ihi != hi {
			t.Fatalf("index interval (%v,%v) != trajectory interval (%v,%v)", ilo, ihi, lo, hi)
		}
		if !inv.IntervalOverlaps(int32(id), lo, hi) {
			t.Fatalf("self-interval does not overlap for %d", id)
		}
		if inv.IntervalOverlaps(int32(id), hi+1, hi+2) {
			t.Fatalf("disjoint interval overlaps for %d", id)
		}
		if !inv.IntervalOverlaps(int32(id), lo-10, lo) {
			t.Fatalf("touching interval must overlap for %d", id)
		}
	}
}

package index_test

import (
	"math/rand"
	"sort"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
)

func bruteOccurrences(ds *traj.Dataset, q []traj.Symbol) []index.Posting {
	var out []index.Posting
	for id := range ds.Trajs {
		p := ds.Trajs[id].Path
	outer:
		for s := 0; s+len(q) <= len(p); s++ {
			for i := range q {
				if p[s+i] != q[i] {
					continue outer
				}
			}
			out = append(out, index.Posting{ID: int32(id), Pos: int32(s)})
		}
	}
	return out
}

func sortPostings(ps []index.Posting) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].ID != ps[j].ID {
			return ps[i].ID < ps[j].ID
		}
		return ps[i].Pos < ps[j].Pos
	})
}

func TestSuffixArrayLookupMatchesBruteForce(t *testing.T) {
	env := testutil.NewEnv(73, 30, 20)
	sa := index.BuildPathSuffixArray(env.V)
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		// Half the queries are sampled subpaths (guaranteed hits), half
		// random strings (mostly misses).
		var q []traj.Symbol
		if trial%2 == 0 {
			id := rng.Intn(env.V.Len())
			p := env.V.Trajs[id].Path
			qlen := 1 + rng.Intn(6)
			if qlen > len(p) {
				qlen = len(p)
			}
			s := rng.Intn(len(p) - qlen + 1)
			q = append(q, p[s:s+qlen]...)
		} else {
			for i := 0; i < 1+rng.Intn(5); i++ {
				q = append(q, traj.Symbol(rng.Intn(int(200))))
			}
		}
		got := sa.Lookup(q)
		want := bruteOccurrences(env.V, q)
		if len(got) != len(want) {
			t.Fatalf("lookup count %d != %d for %v", len(got), len(want), q)
		}
		sortPostings(got)
		sortPostings(want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("occurrence %d: %+v != %+v", i, got[i], want[i])
			}
		}
		if sa.Count(q) != len(want) {
			t.Fatalf("count mismatch")
		}
	}
}

func TestSuffixArrayNoCrossTrajectoryMatches(t *testing.T) {
	ds := traj.NewDataset(traj.VertexRep)
	ds.Add(traj.Trajectory{Path: []traj.Symbol{1, 2, 3}})
	ds.Add(traj.Trajectory{Path: []traj.Symbol{4, 5, 6}})
	sa := index.BuildPathSuffixArray(ds)
	// "3 4" exists in the concatenation but spans the boundary.
	if got := sa.Lookup([]traj.Symbol{3, 4}); len(got) != 0 {
		t.Fatalf("cross-boundary match returned: %+v", got)
	}
	if got := sa.Lookup([]traj.Symbol{2, 3}); len(got) != 1 {
		t.Fatalf("legitimate match missing: %+v", got)
	}
	if got := sa.Lookup(nil); got != nil {
		t.Fatal("empty query must return nil")
	}
}

func TestSuffixArrayEmptyDataset(t *testing.T) {
	sa := index.BuildPathSuffixArray(traj.NewDataset(traj.VertexRep))
	if got := sa.Lookup([]traj.Symbol{1}); len(got) != 0 {
		t.Fatal("match in empty dataset")
	}
}

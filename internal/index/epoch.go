package index

import (
	"sync"

	"subtraj/internal/traj"
)

// Epoch is the merged read view published by the epoch-snapshot ingest
// design (DESIGN.md §1.11): a frozen base backend — a Sharded index or a
// Compact+Overlay — plus a small DeltaView covering the trajectories
// appended since the base was folded. Both halves are immutable from the
// reader's side, which is what lets searches run against an Epoch with
// no lock at all: the writer takes a fresh view for every publish and
// swaps the state in behind an atomic pointer.
//
// The ID split mirrors Overlay: base IDs are [0, deltaBase), delta IDs
// [deltaBase, ∞). The delta already carries global IDs, so the delta
// shard's plain postings are served as bounded sub-slices with no copy
// and no rebase. Searches fan out over the base's shards plus one extra
// delta shard, and the usual deterministic shard merge makes results
// bit-equal to a flat index over the union — TestSnapshotEquivalence
// holds every published view to that standard against a freshly built
// oracle.
type Epoch struct {
	base      Backend
	delta     *DeltaView
	deltaBase int32
}

// BuildDelta indexes ds.Trajs[start:] into a fresh DeltaMap and returns
// its view — the one-shot construction used by tests and recovery; the
// live ingest path maintains a DeltaMap incrementally and takes O(1)
// views instead.
func BuildDelta(ds *traj.Dataset, start int) *DeltaView {
	m := NewDeltaMap(start)
	for id := start; id < ds.Len(); id++ {
		m.Append(int32(id), ds.Get(int32(id)))
	}
	return m.View()
}

// NewEpoch merges a frozen base with a delta view whose first global ID
// is base.NumTrajectories(). Nothing is built here: the delta needs no
// temporal order (windows are answered by a bounded filtered scan), so
// publication leaves no lazy writes behind for readers to trip over.
func NewEpoch(base Backend, delta *DeltaView) *Epoch {
	return &Epoch{base: base, delta: delta, deltaBase: delta.Lo()}
}

// DeltaLen returns how many trajectories the delta covers.
func (e *Epoch) DeltaLen() int { return e.delta.Len() }

// Base exposes the frozen base backend (for compaction and stats).
func (e *Epoch) Base() Backend { return e.base }

// NumShards: the base's shards plus one delta shard.
func (e *Epoch) NumShards() int { return e.base.NumShards() + 1 }

// Source returns one of the base's shard cursors, or — for the last
// index — a pooled cursor over the delta.
//
//subtrajlint:pool-transfer
func (e *Epoch) Source(i int) PostingSource {
	if i < e.base.NumShards() {
		return e.base.Source(i)
	}
	s := epochDeltaSources.Get().(*epochDeltaSource)
	s.e = e
	return s
}

// Freq returns the global n(q): base count plus delta count.
func (e *Epoch) Freq(q traj.Symbol) int { return e.base.Freq(q) + e.delta.Freq(q) }

// Append panics: an Epoch is an immutable published snapshot. Appends go
// to the writer's master dataset and delta map, and the next publish
// takes a new view covering them.
func (e *Epoch) Append(id int32, t *traj.Trajectory) {
	panic("index: append to a published epoch snapshot")
}

// BuildTemporal delegates to the base (a no-op once the base's order is
// built); the delta answers windows by filtered scan and needs nothing.
func (e *Epoch) BuildTemporal() { e.base.BuildTemporal() }

// Interval returns trajectory id's [departure, arrival] span.
func (e *Epoch) Interval(id int32) (lo, hi float64) {
	if id < e.deltaBase {
		return e.base.Interval(id)
	}
	return e.delta.Interval(id)
}

// IntervalOverlaps reports whether id's interval intersects [lo, hi].
func (e *Epoch) IntervalOverlaps(id int32, lo, hi float64) bool {
	if id < e.deltaBase {
		return e.base.IntervalOverlaps(id, lo, hi)
	}
	return e.delta.IntervalOverlaps(id, lo, hi)
}

// NumPostings returns the total posting count across base and delta.
func (e *Epoch) NumPostings() int { return e.base.NumPostings() + e.delta.NumPostings() }

// NumSymbols counts distinct symbols across base and delta.
func (e *Epoch) NumSymbols() int {
	n := e.base.NumSymbols()
	e.delta.rangeSymbols(func(sym traj.Symbol) {
		if e.base.Freq(sym) == 0 {
			n++
		}
	})
	return n
}

// NumTrajectories returns the combined trajectory count.
func (e *Epoch) NumTrajectories() int { return int(e.deltaBase) + e.delta.Len() }

// IndexBytes: base footprint plus the (estimated) delta heap.
func (e *Epoch) IndexBytes() int64 { return e.base.IndexBytes() + e.delta.IndexBytes() }

// Kind names the backend family of the base — the delta is an
// implementation detail of ingestion, not a different index family.
func (e *Epoch) Kind() string { return e.base.Kind() }

// epochDeltaSource is the pooled cursor over the delta shard. Plain
// postings are bounded sub-slices of the delta's global-ID lists (no
// copy); window lookups filter into pooled scratch. Interval checks
// take global IDs and dispatch through the Epoch.
type epochDeltaSource struct {
	e       *Epoch
	scratch []Posting
}

var epochDeltaSources = sync.Pool{New: func() any { return new(epochDeltaSource) }}

func (s *epochDeltaSource) Release() {
	s.e = nil
	if cap(s.scratch) > maxRetainedPostings {
		s.scratch = nil
	}
	epochDeltaSources.Put(s)
}

// Postings returns the delta's L_q under global IDs. Shared; do not
// modify.
func (s *epochDeltaSource) Postings(q traj.Symbol) []Posting {
	return s.e.delta.postings(q)
}

// PostingsInWindow returns the delta's postings of q departing in
// [lo, hi]. Valid until the next call on this source; do not modify.
func (s *epochDeltaSource) PostingsInWindow(q traj.Symbol, lo, hi float64) []Posting {
	s.scratch = s.e.delta.appendWindow(q, lo, hi, s.scratch[:0])
	return s.scratch
}

// IntervalOverlaps reports whether (global) trajectory id's interval
// intersects [lo, hi].
func (s *epochDeltaSource) IntervalOverlaps(id int32, lo, hi float64) bool {
	return s.e.IntervalOverlaps(id, lo, hi)
}

var _ Backend = (*Epoch)(nil)
var _ PostingSource = (*epochDeltaSource)(nil)

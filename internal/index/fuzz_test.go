package index_test

import (
	"bytes"
	"os"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/testutil"
)

// loadCorpus reads the checked-in seed corpus (a golden-fixture index
// written by Save).
func loadCorpus(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_index.bin")
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	return data
}

// TestGoldenIndexCorpusLoads pins the on-disk format: the checked-in
// corpus file must keep loading bit-identically to a freshly built index,
// so any serialisation change that breaks old files breaks this test
// first (and the fuzz corpus stays a valid seed).
func TestGoldenIndexCorpusLoads(t *testing.T) {
	data := loadCorpus(t)
	got, err := index.LoadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("corpus does not load: %v", err)
	}
	want := index.Build(testutil.GoldenDataset())
	if got.NumPostings() != want.NumPostings() {
		t.Fatalf("corpus has %d postings, fresh build has %d", got.NumPostings(), want.NumPostings())
	}
	for _, p := range testutil.GoldenPaths() {
		for _, sym := range p {
			if got.Freq(sym) != want.Freq(sym) {
				t.Fatalf("Freq(%d) = %d, want %d", sym, got.Freq(sym), want.Freq(sym))
			}
		}
	}
	// And the corpus re-saves to the identical bytes (deterministic
	// serialisation).
	var buf bytes.Buffer
	if err := got.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("re-saved corpus differs from checked-in bytes")
	}
}

// FuzzLoadIndex: malformed input must return an error — never panic, hang,
// or allocate unboundedly. Inputs that do load must survive a save/load
// round trip.
func FuzzLoadIndex(f *testing.F) {
	valid := loadCorpus(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SUBTRAJIDX1"))       // magic only
	f.Add(valid[:len(valid)/2])        // truncated
	f.Add(append([]byte{}, valid[1:]...)) // shifted
	// Bit-flipped copies of the valid file seed the interesting paths.
	for _, i := range []int{11, 12, 20, len(valid) - 1} {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	// A header that promises a huge trajectory count then stops: the
	// loader must fail on EOF without pre-allocating for the promise.
	f.Add(append([]byte("SUBTRAJIDX1"), 0xff, 0xff, 0xff, 0xff, 0x07))

	f.Fuzz(func(t *testing.T, data []byte) {
		inv, err := index.LoadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := inv.Save(&buf); err != nil {
			t.Fatalf("loaded index does not save: %v", err)
		}
		if _, err := index.LoadIndex(&buf); err != nil {
			t.Fatalf("saved copy of loaded index does not load: %v", err)
		}
	})
}

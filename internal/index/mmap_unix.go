//go:build unix

package index

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// OpenMapped maps a compact arena written by Compact.Save into memory
// zero-copy: the returned Compact reads straight from the page cache, so
// a multi-gigabyte index costs file-backed pages (shared across
// processes, evictable under pressure), not Go heap. The arena is fully
// validated before use — see LoadCompact — so a corrupt or truncated file
// fails here, never inside a query. Close unmaps.
//
// SUBTRAJ_MMAP=off forces the portable read-file path (see openReadFile)
// — the toggle CI uses to exercise the non-unix fallback, and an escape
// hatch for filesystems where mapping misbehaves.
func OpenMapped(path string) (*Compact, error) {
	if mmapDisabled() {
		return openReadFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < compactHeaderSize {
		return nil, fmt.Errorf("index: %s: %d bytes is shorter than a compact header", path, size)
	}
	if uint64(size) > uint64(math.MaxInt) {
		return nil, fmt.Errorf("index: %s: %d bytes exceeds the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("index: mmap %s: %w", path, err)
	}
	c, err := LoadCompact(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("index: %s: %w", path, err)
	}
	c.closer = func() error { return syscall.Munmap(data) }
	return c, nil
}

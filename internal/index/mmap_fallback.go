package index

import (
	"fmt"
	"os"
)

// mmapEnv is the environment toggle that forces OpenMapped onto the
// portable read-file path even where mmap is available. It exists so the
// non-unix fallback gets exercised by the unix CI runners (set
// SUBTRAJ_MMAP=off), and as an escape hatch on filesystems where mapping
// misbehaves (some network mounts).
const mmapEnv = "SUBTRAJ_MMAP"

// mmapDisabled reports whether the environment opted out of mmap.
func mmapDisabled() bool { return os.Getenv(mmapEnv) == "off" }

// openReadFile is the portable OpenMapped implementation: read the whole
// arena into memory and validate it. The API contract is identical to
// the mapped path (including Close being required); only the zero-copy
// property is lost — the arena lives on the Go heap instead of the page
// cache.
func openReadFile(path string) (*Compact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := LoadCompact(data)
	if err != nil {
		return nil, fmt.Errorf("index: %s: %w", path, err)
	}
	return c, nil
}

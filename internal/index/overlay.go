package index

import (
	"sync"

	"subtraj/internal/traj"
)

// Overlay is the compact backend's answer to ingestion: a frozen Compact
// snapshot (immutable, possibly an mmap of a saved file) overlaid with a
// small mutable Inverted tail that absorbs Appends. Searches fan out over
// both as two shards with disjoint ID ranges — snapshot IDs are
// [0, tailBase), tail IDs [tailBase, ∞) — so the shard merge stays
// deterministic and bit-equal to a flat index over the union. The tail
// stores trajectories under LOCAL IDs (global − tailBase) so its interval
// slices stay dense; the rebase happens once, at the posting-source
// boundary. Re-freezing the union into a new snapshot (compaction) is the
// natural maintenance step and is cheap to do offline via Freeze+Save.
type Overlay struct {
	base     *Compact
	tail     *Inverted
	tailBase int32
}

// NewOverlay wraps a frozen snapshot with an empty mutable tail.
func NewOverlay(base *Compact) *Overlay {
	return &Overlay{
		base:     base,
		tail:     &Inverted{lists: make(map[traj.Symbol][]Posting)},
		tailBase: int32(base.NumTrajectories()),
	}
}

// Base exposes the frozen snapshot (for Save and stats).
func (o *Overlay) Base() *Compact { return o.base }

// TailLen returns how many trajectories the mutable tail holds.
func (o *Overlay) TailLen() int { return len(o.tail.departures) }

// NumShards: the snapshot and the tail, always.
func (o *Overlay) NumShards() int { return 2 }

// Source returns shard 0 (the frozen snapshot) or shard 1 (the tail,
// rebased to global IDs). Both are pooled cursors: ReleaseSource them.
//
//subtrajlint:pool-transfer
func (o *Overlay) Source(i int) PostingSource {
	if i == 0 {
		return o.base.AcquireSource()
	}
	s := overlayTailSources.Get().(*overlayTailSource)
	s.o = o
	return s
}

// Freq returns the global n(q): snapshot count (straight from the symbol
// table) plus tail count.
func (o *Overlay) Freq(q traj.Symbol) int { return o.base.Freq(q) + o.tail.Freq(q) }

// Append adds one trajectory to the mutable tail. IDs are global and
// dense, continuing where the snapshot ends.
func (o *Overlay) Append(id int32, t *traj.Trajectory) {
	if int(id) != o.NumTrajectories() {
		panic("index: non-sequential overlay append")
	}
	o.tail.Append(id-o.tailBase, t)
}

// BuildTemporal refreshes the tail's departure order; the snapshot's is
// frozen into the arena and never goes stale.
func (o *Overlay) BuildTemporal() {
	if o.tail.byDeparture == nil {
		o.tail.BuildTemporal()
	}
}

// Interval returns trajectory id's [departure, arrival] span.
func (o *Overlay) Interval(id int32) (lo, hi float64) {
	if id < o.tailBase {
		return o.base.Interval(id)
	}
	return o.tail.Interval(id - o.tailBase)
}

// IntervalOverlaps reports whether id's interval intersects [lo, hi].
func (o *Overlay) IntervalOverlaps(id int32, lo, hi float64) bool {
	if id < o.tailBase {
		return o.base.IntervalOverlaps(id, lo, hi)
	}
	return o.tail.IntervalOverlaps(id-o.tailBase, lo, hi)
}

// NumPostings returns the total posting count across snapshot and tail.
func (o *Overlay) NumPostings() int { return o.base.NumPostings() + o.tail.NumPostings() }

// NumSymbols counts distinct symbols across snapshot and tail.
func (o *Overlay) NumSymbols() int {
	n := o.base.NumSymbols()
	for sym := range o.tail.lists {
		if o.base.Freq(sym) == 0 {
			n++
		}
	}
	return n
}

// NumTrajectories returns the combined trajectory count.
func (o *Overlay) NumTrajectories() int { return int(o.tailBase) + len(o.tail.departures) }

// IndexBytes: exact arena size plus the (estimated) tail heap. With an
// empty tail this is exact.
func (o *Overlay) IndexBytes() int64 { return o.base.IndexBytes() + o.tail.IndexBytes() }

// Kind names the backend family for stats and bench output.
func (o *Overlay) Kind() string { return "compact" }

// overlayTailSource adapts the tail's local-ID postings to the global ID
// space: every returned posting is rebased by +tailBase into pooled
// scratch. Interval checks take global IDs and dispatch through the
// overlay, since candidate-level prunes may probe any ID the source
// returned.
type overlayTailSource struct {
	o       *Overlay
	scratch []Posting
}

var overlayTailSources = sync.Pool{New: func() any { return new(overlayTailSource) }}

func (s *overlayTailSource) Release() {
	s.o = nil
	if cap(s.scratch) > maxRetainedPostings {
		s.scratch = nil
	}
	overlayTailSources.Put(s)
}

func (s *overlayTailSource) rebase(list []Posting) []Posting {
	s.scratch = s.scratch[:0]
	for _, p := range list {
		s.scratch = append(s.scratch, Posting{ID: p.ID + s.o.tailBase, Pos: p.Pos})
	}
	return s.scratch
}

// Postings returns the tail's L_q under global IDs. Valid until the next
// call on this source; do not modify.
func (s *overlayTailSource) Postings(q traj.Symbol) []Posting {
	return s.rebase(s.o.tail.Postings(q))
}

// PostingsInWindow returns the tail's postings of q departing in
// [lo, hi], under global IDs (tail temporal order must be current —
// Engine rebuilds it after appends).
func (s *overlayTailSource) PostingsInWindow(q traj.Symbol, lo, hi float64) []Posting {
	return s.rebase(s.o.tail.PostingsInWindow(q, lo, hi))
}

// IntervalOverlaps reports whether (global) trajectory id's interval
// intersects [lo, hi].
func (s *overlayTailSource) IntervalOverlaps(id int32, lo, hi float64) bool {
	return s.o.IntervalOverlaps(id, lo, hi)
}

var _ PostingSource = (*overlayTailSource)(nil)

//go:build !unix

package index

// OpenMapped on platforms without syscall.Mmap always uses the read-file
// fallback; see openReadFile.
func OpenMapped(path string) (*Compact, error) {
	return openReadFile(path)
}

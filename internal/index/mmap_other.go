//go:build !unix

package index

import "os"

// OpenMapped on platforms without syscall.Mmap falls back to reading the
// whole arena into memory. The API contract is identical (including
// Close being required); only the zero-copy property is lost.
func OpenMapped(path string) (*Compact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadCompact(data)
}

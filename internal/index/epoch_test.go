package index_test

import (
	"math/rand"
	"testing"

	"subtraj/internal/index"
	"subtraj/internal/traj"
)

// TestEpochEquivalentToFlat is the index-layer contract of the epoch
// merge view: a frozen sharded base over a dataset prefix plus a
// BuildDelta over the remainder must answer every read — counts,
// frequencies, intervals, per-shard postings, temporal windows — exactly
// like one flat index over the whole dataset, with delta postings
// rebased into the global ID space.
func TestEpochEquivalentToFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const alpha, numTraj, foldAt = 40, 300, 230
	ds := randTemporalDataset(rng, alpha, numTraj, 30)

	base := index.BuildSharded(ds.Slice(foldAt), 3)
	base.BuildTemporal()
	e := index.NewEpoch(base, index.BuildDelta(ds, foldAt))
	e.BuildTemporal()

	want := index.Build(ds)
	want.BuildTemporal()

	if e.NumTrajectories() != ds.Len() || e.DeltaLen() != ds.Len()-foldAt {
		t.Fatalf("epoch covers %d trajectories (delta %d), want %d (%d)",
			e.NumTrajectories(), e.DeltaLen(), ds.Len(), ds.Len()-foldAt)
	}
	if e.NumShards() != base.NumShards()+1 {
		t.Fatalf("NumShards = %d, want base+1 = %d", e.NumShards(), base.NumShards()+1)
	}
	if e.Kind() != base.Kind() {
		t.Fatalf("Kind = %q, want the base's %q", e.Kind(), base.Kind())
	}
	if e.NumPostings() != want.NumPostings() || e.NumSymbols() != want.NumSymbols() {
		t.Fatalf("epoch counts (%d postings, %d syms), want (%d, %d)",
			e.NumPostings(), e.NumSymbols(), want.NumPostings(), want.NumSymbols())
	}
	for id := int32(0); id < int32(ds.Len()); id++ {
		glo, ghi := e.Interval(id)
		wlo, whi := want.Interval(id)
		if glo != wlo || ghi != whi {
			t.Fatalf("Interval(%d) = (%g, %g), want (%g, %g)", id, glo, ghi, wlo, whi)
		}
		if e.IntervalOverlaps(id, 10, 40) != want.IntervalOverlaps(id, 10, 40) {
			t.Fatalf("IntervalOverlaps(%d, 10, 40) disagrees with the flat index", id)
		}
	}
	for sym := traj.Symbol(0); sym < alpha; sym++ {
		if got := e.Freq(sym); got != want.Freq(sym) {
			t.Fatalf("Freq(%d) = %d, want %d", sym, got, want.Freq(sym))
		}
		// Shard postings must partition the flat list: base shards own
		// IDs < foldAt by residue class, the extra delta shard owns
		// exactly the rebased tail, and nothing is doubled or dropped.
		wantSet := map[index.Posting]bool{}
		for _, p := range want.Postings(sym) {
			wantSet[p] = true
		}
		gotN := 0
		for s := 0; s < e.NumShards(); s++ {
			src := e.Source(s)
			for _, p := range collect(src.Postings(sym)) {
				if !wantSet[p] {
					t.Fatalf("shard %d posting %+v of sym %d not in the flat index", s, p, sym)
				}
				if delta := s == e.NumShards()-1; delta != (p.ID >= foldAt) {
					t.Fatalf("posting %+v of sym %d in shard %d is on the wrong side of the fold", p, sym, s)
				}
				gotN++
			}
			index.ReleaseSource(src)
		}
		if gotN != len(wantSet) {
			t.Fatalf("shards expose %d postings of sym %d, flat index has %d", gotN, sym, len(wantSet))
		}
		// Windowed reads: the delta shard scan-filters by departure while
		// base shards binary-search their temporal order, so orders
		// differ; compare as sets against the flat temporal index.
		wantWin := map[index.Posting]bool{}
		for _, p := range want.PostingsInWindow(sym, 10, 40) {
			wantWin[p] = true
		}
		gotN = 0
		for s := 0; s < e.NumShards(); s++ {
			src := e.Source(s)
			for _, p := range src.PostingsInWindow(sym, 10, 40) {
				if !wantWin[p] {
					t.Fatalf("window posting %+v of sym %d not in the flat result", p, sym)
				}
				gotN++
			}
			index.ReleaseSource(src)
		}
		if gotN != len(wantWin) {
			t.Fatalf("window for sym %d has %d postings, want %d", sym, gotN, len(wantWin))
		}
	}
}

// TestEpochEmptyDelta pins the degenerate fold boundary: a delta built
// at the dataset's end covers nothing and the view collapses to the
// base (the server skips the Epoch wrapper in this case, but the
// wrapper must still be correct — compaction races publish through it).
func TestEpochEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randTemporalDataset(rng, 20, 50, 15)
	base := index.BuildSharded(ds, 2)
	base.BuildTemporal()
	e := index.NewEpoch(base, index.BuildDelta(ds, ds.Len()))
	if e.DeltaLen() != 0 {
		t.Fatalf("DeltaLen = %d, want 0", e.DeltaLen())
	}
	if e.NumTrajectories() != ds.Len() || e.NumPostings() != base.NumPostings() {
		t.Fatalf("empty-delta epoch (%d trajs, %d postings) diverges from base (%d, %d)",
			e.NumTrajectories(), e.NumPostings(), ds.Len(), base.NumPostings())
	}
	src := e.Source(e.NumShards() - 1)
	defer index.ReleaseSource(src)
	if ps := src.Postings(5); len(ps) != 0 {
		t.Fatalf("empty delta shard returned %d postings", len(ps))
	}
}

// TestEpochAppendPanics: a published snapshot is immutable — an append
// reaching it is a bug in the writer, and must fail loudly, not corrupt
// a view a concurrent search is reading.
func TestEpochAppendPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randTemporalDataset(rng, 20, 30, 10)
	base := index.BuildSharded(ds.Slice(20), 2)
	e := index.NewEpoch(base, index.BuildDelta(ds, 20))
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a published Epoch did not panic")
		}
	}()
	tr := ds.Get(0)
	e.Append(int32(ds.Len()), tr)
}

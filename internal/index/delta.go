package index

import (
	"sort"
	"sync"

	"subtraj/internal/traj"
)

// DeltaMap is the writer-side incremental delta index of the epoch
// snapshot design (DESIGN.md §1.11): it indexes the trajectories
// appended since the last fold, under GLOBAL IDs, and hands out O(1)
// immutable DeltaView snapshots for publication. One writer (the
// SafeEngine ingest mutex) appends; any number of readers traverse
// previously taken views concurrently — no lock, no per-publish
// rebuild, no per-publish temporal sort.
//
// Safety rests on two append-only disciplines:
//
//   - Postings lists live in a sync.Map keyed by symbol. The writer
//     appends to a list and Stores the new header; the Store→Load pair
//     is the happens-before edge that makes the backing-array elements
//     visible to readers. A reader may Load a header NEWER than its
//     view (extra postings with higher IDs) — every view read is
//     bounded by the view's ID range, so those are sliced away. Lists
//     are ID-sorted by construction (IDs only grow), so the bound is a
//     binary search, not a scan.
//
//   - deps/arrs are writer-owned append-only slices; a view freezes
//     their headers at publish time (the same prefix-view discipline as
//     traj.Dataset.Slice). The writer only ever writes indexes beyond
//     every published header's length.
type DeltaMap struct {
	lists sync.Map // traj.Symbol -> []Posting, ID-sorted, global IDs
	// origin is the global trajectory ID of deps[0]/arrs[0] — the fold
	// boundary this map was started at. Immutable after construction.
	origin int32
	deps   []float64
	arrs   []float64
}

// NewDeltaMap starts an empty delta whose first trajectory will be
// global ID origin (the folded length of the base it sits on).
func NewDeltaMap(origin int) *DeltaMap {
	return &DeltaMap{origin: int32(origin)}
}

// Append indexes one trajectory under its global ID. IDs must arrive in
// increasing order starting at origin (the ingest path appends them in
// dataset order). Writer-only; callers serialize externally.
func (d *DeltaMap) Append(id int32, t *traj.Trajectory) {
	for pos, sym := range t.Path {
		var list []Posting
		if v, ok := d.lists.Load(sym); ok {
			list = v.([]Posting)
		}
		d.lists.Store(sym, append(list, Posting{ID: id, Pos: int32(pos)}))
	}
	lo, hi, ok := t.Interval()
	if !ok {
		lo, hi = 0, 0
	}
	d.deps = append(d.deps, lo)
	d.arrs = append(d.arrs, hi)
}

// View freezes the map's current extent into an immutable snapshot
// covering global IDs [origin, origin+appended). O(1): two slice-header
// copies; the postings themselves are shared and bounded at read time.
func (d *DeltaMap) View() *DeltaView {
	n := len(d.deps)
	return &DeltaView{
		m:    d,
		lo:   d.origin,
		hi:   d.origin + int32(n),
		deps: d.deps[:n:n],
		arrs: d.arrs[:n:n],
	}
}

// DeltaView is one published snapshot of a DeltaMap: the postings of
// global trajectory IDs [lo, hi). Immutable; safe for concurrent use by
// any number of readers while the writer keeps appending to the
// underlying map.
type DeltaView struct {
	m      *DeltaMap
	lo, hi int32
	deps   []float64
	arrs   []float64
}

// Len returns how many trajectories the view covers.
func (v *DeltaView) Len() int { return int(v.hi - v.lo) }

// Lo returns the view's first global trajectory ID (the fold boundary).
func (v *DeltaView) Lo() int32 { return v.lo }

// postings returns q's postings with ID < hi — the list prefix that
// belongs to this view. The current list header may include postings
// appended after the view was taken; they carry higher IDs and the
// binary-searched cut removes them. Shared; do not modify.
func (v *DeltaView) postings(q traj.Symbol) []Posting {
	l, ok := v.m.lists.Load(q)
	if !ok {
		return nil
	}
	list := l.([]Posting)
	i := sort.Search(len(list), func(i int) bool { return list[i].ID >= v.hi })
	return list[:i]
}

// Freq returns n(q) within the view (once per position, as MinCand
// requires), via one map load and one binary search.
func (v *DeltaView) Freq(q traj.Symbol) int { return len(v.postings(q)) }

// Interval returns trajectory id's [departure, arrival] span. id must
// lie in [Lo, Lo+Len).
func (v *DeltaView) Interval(id int32) (lo, hi float64) {
	return v.deps[id-v.lo], v.arrs[id-v.lo]
}

// IntervalOverlaps reports whether id's interval intersects [lo, hi] —
// the same candidate-level prune as Inverted.IntervalOverlaps.
func (v *DeltaView) IntervalOverlaps(id int32, lo, hi float64) bool {
	return v.deps[id-v.lo] <= hi && v.arrs[id-v.lo] >= lo
}

// appendWindow appends to dst the view's postings of q whose trajectory
// DEPARTS in [lo, hi] — Inverted.PostingsInWindow semantics answered by
// a filtered scan instead of a pre-sorted order. The delta is bounded
// by the compaction threshold, so the scan costs no more than the
// rebase copy the read path already pays per shard; skipping the
// per-publish departure sort is what keeps Append O(|t|).
func (v *DeltaView) appendWindow(q traj.Symbol, lo, hi float64, dst []Posting) []Posting {
	for _, p := range v.postings(q) {
		if dep := v.deps[p.ID-v.lo]; dep >= lo && dep <= hi {
			dst = append(dst, p)
		}
	}
	return dst
}

// NumPostings counts the view's postings (an index-size metric; stats
// path only — it walks every symbol).
func (v *DeltaView) NumPostings() int {
	n := 0
	v.m.lists.Range(func(_, l any) bool {
		list := l.([]Posting)
		n += sort.Search(len(list), func(i int) bool { return list[i].ID >= v.hi })
		return true
	})
	return n
}

// rangeSymbols calls f for every symbol with at least one posting in
// the view (stats path only).
func (v *DeltaView) rangeSymbols(f func(sym traj.Symbol)) {
	v.m.lists.Range(func(k, l any) bool {
		list := l.([]Posting)
		if len(list) > 0 && list[0].ID < v.hi {
			f(k.(traj.Symbol))
		}
		return true
	})
}

// IndexBytes estimates the view's heap footprint (postings plus the
// interval columns), mirroring Inverted.IndexBytes' accounting.
func (v *DeltaView) IndexBytes() int64 {
	return int64(v.NumPostings())*8 + int64(v.Len())*16
}

package index_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"subtraj/internal/index"
)

// TestOpenMappedReadFileFallback pins the portable read-file path that
// non-unix platforms always use: SUBTRAJ_MMAP=off routes unix builds
// onto it, so CI exercises the fallback against the golden compact
// corpus and proves it answers identically to the mapped arena.
func TestOpenMappedReadFileFallback(t *testing.T) {
	const golden = "testdata/golden_compact.bin"
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	mapped, err := index.OpenMapped(golden)
	if err != nil {
		t.Fatalf("OpenMapped (default): %v", err)
	}
	defer mapped.Close()

	t.Setenv("SUBTRAJ_MMAP", "off")
	fb, err := index.OpenMapped(golden)
	if err != nil {
		t.Fatalf("OpenMapped (fallback): %v", err)
	}

	if !bytes.Equal(fb.Bytes(), raw) {
		t.Fatal("fallback arena differs from the file bytes")
	}
	if !bytes.Equal(fb.Bytes(), mapped.Bytes()) {
		t.Fatal("fallback arena differs from the mapped arena")
	}
	if fb.NumTrajectories() != mapped.NumTrajectories() ||
		fb.NumSymbols() != mapped.NumSymbols() ||
		fb.NumPostings() != mapped.NumPostings() {
		t.Fatalf("fallback shape (%d traj, %d syms, %d postings) != mapped (%d, %d, %d)",
			fb.NumTrajectories(), fb.NumSymbols(), fb.NumPostings(),
			mapped.NumTrajectories(), mapped.NumSymbols(), mapped.NumPostings())
	}
	a, b := mapped.AcquireSource(), fb.AcquireSource()
	for _, sym := range mapped.Symbols() {
		if got, want := collect(b.Postings(sym)), collect(a.Postings(sym)); !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback Postings(%d) differ from mapped", sym)
		}
	}
	a.Release()
	b.Release()

	// The fallback arena is heap-backed: Close must still be safe (and
	// idempotent), it just has nothing to unmap.
	if err := fb.Close(); err != nil {
		t.Fatalf("fallback Close: %v", err)
	}
	if err := fb.Close(); err != nil {
		t.Fatalf("fallback second Close: %v", err)
	}

	// Validation must hold on this path too: a truncated copy is
	// rejected at open, never inside a query.
	trunc := filepath.Join(t.TempDir(), "trunc.sbtj")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := index.OpenMapped(trunc); err == nil {
		t.Fatal("fallback accepted a truncated file")
	}
	if _, err := index.OpenMapped(filepath.Join(t.TempDir(), "missing.sbtj")); err == nil {
		t.Fatal("fallback accepted a missing file")
	}
}

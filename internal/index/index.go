// Package index implements the inverted index of §4.1: a postings list per
// symbol (vertex or edge ID) recording every (trajectory ID, position)
// occurrence, plus the optional temporal sort orders of §4.3 that let the
// engine skip postings outside a query time interval by binary search.
package index

import (
	"sort"

	"subtraj/internal/traj"
)

// Posting records one occurrence of a symbol: trajectory ID and 0-based
// position j with P^(id)[j] = symbol.
type Posting struct {
	ID  int32
	Pos int32
}

// Inverted is the inverted index over a dataset. Postings lists are keyed
// by symbol; list order is insertion order (ascending ID, then position),
// which Build guarantees and Append preserves for growing datasets.
type Inverted struct {
	lists map[traj.Symbol][]Posting
	// departures[id] caches the trajectory departure time for the
	// temporal pre-filter; empty when the dataset has no timestamps.
	departures []float64
	arrivals   []float64
	// byDeparture, per symbol, holds the postings re-sorted by the
	// owning trajectory's departure time (built on demand by
	// BuildTemporal).
	byDeparture map[traj.Symbol][]Posting
	numPostings int
}

// Build indexes every trajectory of the dataset.
func Build(ds *traj.Dataset) *Inverted {
	inv := &Inverted{lists: make(map[traj.Symbol][]Posting)}
	for id := range ds.Trajs {
		inv.Append(int32(id), &ds.Trajs[id])
	}
	return inv
}

// Append adds one trajectory's postings (the incremental update of §4.1).
// IDs must be appended in increasing order to keep lists sorted.
func (inv *Inverted) Append(id int32, t *traj.Trajectory) {
	for pos, sym := range t.Path {
		inv.lists[sym] = append(inv.lists[sym], Posting{ID: id, Pos: int32(pos)})
	}
	inv.numPostings += len(t.Path)
	lo, hi, ok := t.Interval()
	if !ok {
		lo, hi = 0, 0
	}
	inv.departures = append(inv.departures, lo)
	inv.arrivals = append(inv.arrivals, hi)
	inv.byDeparture = nil // invalidate the temporal order
}

// Postings returns the postings list L_q. Shared; do not modify.
func (inv *Inverted) Postings(q traj.Symbol) []Posting { return inv.lists[q] }

// Freq returns n(q): the number of occurrences of q in the dataset
// (counted once per position, as required by the MinCand objective).
func (inv *Inverted) Freq(q traj.Symbol) int { return len(inv.lists[q]) }

// NumPostings returns the total number of postings (an index-size metric).
func (inv *Inverted) NumPostings() int { return inv.numPostings }

// NumSymbols returns the number of distinct symbols with postings.
func (inv *Inverted) NumSymbols() int { return len(inv.lists) }

// Interval returns the trajectory's [departure, arrival] span recorded at
// append time.
func (inv *Inverted) Interval(id int32) (lo, hi float64) {
	return inv.departures[id], inv.arrivals[id]
}

// BuildTemporal materialises, for every symbol, a postings order sorted by
// the owning trajectory's departure time. Subsequent PostingsInWindow
// calls answer temporal lookups by binary search (§4.3).
func (inv *Inverted) BuildTemporal() {
	inv.byDeparture = make(map[traj.Symbol][]Posting, len(inv.lists))
	for sym, list := range inv.lists {
		cp := make([]Posting, len(list))
		copy(cp, list)
		sortByDeparture(cp, inv.departures)
		inv.byDeparture[sym] = cp
	}
}

// sortByDeparture orders postings by the owning trajectory's departure
// time (stable, so insertion order breaks ties deterministically).
func sortByDeparture(ps []Posting, departures []float64) {
	sort.SliceStable(ps, func(i, j int) bool {
		return departures[ps[i].ID] < departures[ps[j].ID]
	})
}

// postingsInWindow binary-searches a departure-sorted postings list for
// the [lo, hi] departure window.
func postingsInWindow(list []Posting, departures []float64, lo, hi float64) []Posting {
	a := sort.Search(len(list), func(i int) bool { return departures[list[i].ID] >= lo })
	b := sort.Search(len(list), func(i int) bool { return departures[list[i].ID] > hi })
	if a >= b {
		return nil
	}
	return list[a:b]
}

// PostingsInWindow returns the postings of q whose trajectory departure
// time lies in [lo, hi], using the temporal order (BuildTemporal must have
// been called). The returned slice is a sub-slice of the index; do not
// modify.
//
// Note the window is over departure times: a trajectory that departs
// before lo but is still driving inside the window is *not* returned, so
// callers use this only for constraints of the form [T_1, T_n] ⊆ I; the
// more permissive overlap constraint uses Postings plus IntervalOverlaps.
func (inv *Inverted) PostingsInWindow(q traj.Symbol, lo, hi float64) []Posting {
	return postingsInWindow(inv.byDeparture[q], inv.departures, lo, hi)
}

// IntervalOverlaps reports whether trajectory id's [departure, arrival]
// interval intersects [lo, hi] — the candidate-level temporal prune of
// §4.3.
func (inv *Inverted) IntervalOverlaps(id int32, lo, hi float64) bool {
	return inv.departures[id] <= hi && inv.arrivals[id] >= lo
}

// Package spatial provides the kd-tree spatial index the paper uses (§4.2,
// Figure 2) to compute substitution neighbourhoods B(q) for coordinate-aware
// cost functions (EDR, ERP) by range search, and the exact filtering cost
// c(q) for ERP by a nearest-neighbour-beyond-radius query.
package spatial

import (
	"math"
	"sort"

	"subtraj/internal/geo"
)

// KDTree is a static 2-d tree over a point set. Points are referenced by
// their index in the slice passed to Build, so the tree can index road
// network vertices directly by VertexID.
type KDTree struct {
	pts   []geo.Point
	nodes []kdNode
	root  int32
}

type kdNode struct {
	idx         int32 // index into pts
	left, right int32 // node indexes, -1 for none
	axis        uint8 // 0 = X, 1 = Y
	bounds      geo.Rect
}

// Build constructs a balanced kd-tree over pts. The slice is retained (not
// copied); callers must not mutate the coordinates afterwards.
func Build(pts []geo.Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	order := make([]int32, len(pts))
	for i := range order {
		order[i] = int32(i)
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(order, 0)
	return t
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

func (t *KDTree) build(order []int32, depth int) int32 {
	if len(order) == 0 {
		return -1
	}
	axis := uint8(depth & 1)
	mid := len(order) / 2
	if axis == 0 {
		sort.Slice(order, func(i, j int) bool { return t.pts[order[i]].X < t.pts[order[j]].X })
	} else {
		sort.Slice(order, func(i, j int) bool { return t.pts[order[i]].Y < t.pts[order[j]].Y })
	}
	bounds := geo.Rect{Min: t.pts[order[0]], Max: t.pts[order[0]]}
	for _, i := range order[1:] {
		bounds = bounds.Expand(t.pts[i])
	}
	n := kdNode{idx: order[mid], axis: axis, bounds: bounds, left: -1, right: -1}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	left := t.build(order[:mid], depth+1)
	right := t.build(order[mid+1:], depth+1)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// Range appends to dst the indexes of all points within Euclidean distance
// r of center (inclusive) and returns the extended slice. This implements
// the B(q) range query of Definition 4 for Euclidean cost functions.
func (t *KDTree) Range(center geo.Point, r float64, dst []int32) []int32 {
	if t.root < 0 || r < 0 {
		return dst
	}
	r2 := r * r
	var rec func(ni int32)
	rec = func(ni int32) {
		n := &t.nodes[ni]
		if geo.Dist2ToRect(center, n.bounds) > r2 {
			return
		}
		if center.Dist2(t.pts[n.idx]) <= r2 {
			dst = append(dst, n.idx)
		}
		if n.left >= 0 {
			rec(n.left)
		}
		if n.right >= 0 {
			rec(n.right)
		}
	}
	rec(t.root)
	return dst
}

// Nearest returns the index of the point closest to q and its distance.
// It returns (-1, +Inf-like) on an empty tree; callers should check Len.
func (t *KDTree) Nearest(q geo.Point) (int32, float64) {
	idx, d2 := t.nearestBeyond2(q, -1)
	if idx < 0 {
		return -1, 0
	}
	return idx, sqrt(d2)
}

// NearestBeyond returns the index of the point nearest to q among points at
// distance strictly greater than r, along with that distance. This is
// exactly the quantity needed for the ERP filtering cost c(q) (Eq. 7): the
// cheapest substitution to a symbol outside the neighbourhood B(q).
// It returns (-1, 0) if every indexed point lies within r.
func (t *KDTree) NearestBeyond(q geo.Point, r float64) (int32, float64) {
	idx, d2 := t.nearestBeyond2(q, r*r)
	if idx < 0 {
		return -1, 0
	}
	return idx, sqrt(d2)
}

// nearestBeyond2 returns the nearest point with squared distance > min2
// (use min2 < 0 for an unconstrained nearest-neighbour query).
func (t *KDTree) nearestBeyond2(q geo.Point, min2 float64) (int32, float64) {
	best := int32(-1)
	bestD2 := infinity
	var rec func(ni int32)
	rec = func(ni int32) {
		n := &t.nodes[ni]
		if geo.Dist2ToRect(q, n.bounds) >= bestD2 {
			return
		}
		d2 := q.Dist2(t.pts[n.idx])
		if d2 > min2 && d2 < bestD2 {
			best, bestD2 = n.idx, d2
		}
		// Descend the side containing q first for tighter pruning.
		var first, second int32
		var qv, nv float64
		if n.axis == 0 {
			qv, nv = q.X, t.pts[n.idx].X
		} else {
			qv, nv = q.Y, t.pts[n.idx].Y
		}
		if qv < nv {
			first, second = n.left, n.right
		} else {
			first, second = n.right, n.left
		}
		if first >= 0 {
			rec(first)
		}
		if second >= 0 {
			rec(second)
		}
	}
	if t.root >= 0 {
		rec(t.root)
	}
	return best, bestD2
}

// KNearest returns the indexes of the k points closest to q, ordered by
// ascending distance. If fewer than k points are indexed, all are returned.
func (t *KDTree) KNearest(q geo.Point, k int) []int32 {
	var knn KNN
	return t.KNearestInto(q, k, &knn, nil)
}

// KNN is reusable scratch for KNearestInto: hot callers (the map-matching
// HMM issues one k-NN query per GPS sample) keep one per goroutine so
// repeated queries allocate nothing beyond the result slice they also own.
type KNN struct {
	h distHeap
}

// KNearestInto appends the indexes of the k points closest to q to dst in
// ascending distance order and returns the extended slice, reusing knn's
// internal heap. If fewer than k points are indexed, all are appended.
func (t *KDTree) KNearestInto(q geo.Point, k int, knn *KNN, dst []int32) []int32 {
	if k <= 0 || t.root < 0 {
		return dst
	}
	h := &knn.h
	h.idx = h.idx[:0]
	h.d = h.d[:0]
	var rec func(ni int32)
	rec = func(ni int32) {
		n := &t.nodes[ni]
		if len(h.d) == k && geo.Dist2ToRect(q, n.bounds) >= h.d[0] {
			return
		}
		d2 := q.Dist2(t.pts[n.idx])
		if len(h.d) < k {
			h.push(n.idx, d2)
		} else if d2 < h.d[0] {
			h.pop()
			h.push(n.idx, d2)
		}
		var first, second int32
		var qv, nv float64
		if n.axis == 0 {
			qv, nv = q.X, t.pts[n.idx].X
		} else {
			qv, nv = q.Y, t.pts[n.idx].Y
		}
		if qv < nv {
			first, second = n.left, n.right
		} else {
			first, second = n.right, n.left
		}
		if first >= 0 {
			rec(first)
		}
		if second >= 0 {
			rec(second)
		}
	}
	rec(t.root)
	// Drain the max-heap into ascending order.
	base := len(dst)
	for range h.d {
		dst = append(dst, 0)
	}
	for i := len(h.d) - 1; i >= 0; i-- {
		dst[base+i] = h.top()
		h.pop()
	}
	return dst
}

const infinity = 1e300

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// distHeap is a small max-heap on squared distance used by KNearest.
type distHeap struct {
	idx []int32
	d   []float64
}

func (h *distHeap) top() int32 { return h.idx[0] }

func (h *distHeap) push(i int32, d float64) {
	h.idx = append(h.idx, i)
	h.d = append(h.d, d)
	c := len(h.d) - 1
	for c > 0 {
		p := (c - 1) / 2
		if h.d[p] >= h.d[c] {
			break
		}
		h.swap(p, c)
		c = p
	}
}

func (h *distHeap) pop() {
	last := len(h.d) - 1
	h.swap(0, last)
	h.idx = h.idx[:last]
	h.d = h.d[:last]
	p := 0
	for {
		l, r := 2*p+1, 2*p+2
		big := p
		if l < last && h.d[l] > h.d[big] {
			big = l
		}
		if r < last && h.d[r] > h.d[big] {
			big = r
		}
		if big == p {
			return
		}
		h.swap(p, big)
		p = big
	}
}

func (h *distHeap) swap(i, j int) {
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.d[i], h.d[j] = h.d[j], h.d[i]
}

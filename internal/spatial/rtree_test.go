package spatial_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj/internal/geo"
	"subtraj/internal/spatial"
)

func TestRTreeRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 1+rng.Intn(400))
		tree := spatial.BuildRTree(pts)
		if tree.Len() != len(pts) {
			t.Fatalf("len %d != %d", tree.Len(), len(pts))
		}
		for k := 0; k < 20; k++ {
			c := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			r := rng.Float64() * 300
			want := bruteRange(pts, c, r)
			got := tree.Range(c, r, nil)
			if len(got) != len(want) {
				t.Fatalf("range size %d != %d", len(got), len(want))
			}
			for _, idx := range got {
				if !want[idx] {
					t.Fatalf("spurious index %d", idx)
				}
			}
		}
	}
}

func TestRTreeNearestBeyondMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 1+rng.Intn(300))
		tree := spatial.BuildRTree(pts)
		for k := 0; k < 30; k++ {
			q := pts[rng.Intn(len(pts))]
			r := rng.Float64() * 100
			gi, gd := tree.NearestBeyond(q, r)
			bd := math.Inf(1)
			found := false
			for _, p := range pts {
				if d := q.Dist(p); d > r && d < bd {
					bd, found = d, true
				}
			}
			if found != (gi >= 0) {
				t.Fatalf("existence mismatch: brute %v, rtree %v", found, gi >= 0)
			}
			if found && math.Abs(gd-bd) > 1e-9 {
				t.Fatalf("distance %v != %v", gd, bd)
			}
		}
	}
}

func TestRTreeMatchesKDTree(t *testing.T) {
	// The two indexes must be interchangeable black boxes (Figure 2).
	rng := rand.New(rand.NewSource(13))
	pts := randPoints(rng, 500)
	kd := spatial.Build(pts)
	rt := spatial.BuildRTree(pts)
	for k := 0; k < 100; k++ {
		c := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		r := rng.Float64() * 250
		a := kd.Range(c, r, nil)
		b := rt.Range(c, r, nil)
		if len(a) != len(b) {
			t.Fatalf("kd %d results, rtree %d", len(a), len(b))
		}
		ai, di := kd.NearestBeyond(c, r/2)
		bi, db := rt.NearestBeyond(c, r/2)
		if (ai >= 0) != (bi >= 0) || (ai >= 0 && math.Abs(di-db) > 1e-9) {
			t.Fatalf("nearest-beyond disagreement: kd (%d,%v) rtree (%d,%v)", ai, di, bi, db)
		}
	}
}

func TestRTreeEmpty(t *testing.T) {
	tree := spatial.BuildRTree(nil)
	if got := tree.Range(geo.Point{}, 5, nil); len(got) != 0 {
		t.Fatal("range on empty tree")
	}
	if i, _ := tree.NearestBeyond(geo.Point{}, 0); i != -1 {
		t.Fatal("nearest on empty tree")
	}
	if i, _ := tree.Nearest(geo.Point{}); i != -1 {
		t.Fatal("nearest on empty tree")
	}
}

func TestRTreeNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPoints(rng, 200)
	rt := spatial.BuildRTree(pts)
	for k := 0; k < 50; k++ {
		q := geo.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 1200}
		_, gd := rt.Nearest(q)
		bd := math.Inf(1)
		for _, p := range pts {
			if d := q.Dist(p); d < bd {
				bd = d
			}
		}
		if math.Abs(gd-bd) > 1e-9 {
			t.Fatalf("nearest %v != %v", gd, bd)
		}
	}
}

package spatial_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"subtraj/internal/geo"
	"subtraj/internal/spatial"
)

func randPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func bruteRange(pts []geo.Point, c geo.Point, r float64) map[int32]bool {
	out := map[int32]bool{}
	for i, p := range pts {
		if c.Dist(p) <= r {
			out[int32(i)] = true
		}
	}
	return out
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 1+rng.Intn(300))
		tree := spatial.Build(pts)
		for k := 0; k < 20; k++ {
			c := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			r := rng.Float64() * 300
			want := bruteRange(pts, c, r)
			got := tree.Range(c, r, nil)
			if len(got) != len(want) {
				t.Fatalf("range size %d != %d", len(got), len(want))
			}
			for _, idx := range got {
				if !want[idx] {
					t.Fatalf("spurious index %d", idx)
				}
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 1+rng.Intn(200))
		tree := spatial.Build(pts)
		for k := 0; k < 30; k++ {
			q := geo.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 1200}
			gi, gd := tree.Nearest(q)
			bd := math.Inf(1)
			for _, p := range pts {
				if d := q.Dist(p); d < bd {
					bd = d
				}
			}
			if math.Abs(gd-bd) > 1e-9 {
				t.Fatalf("nearest distance %v != %v (idx %d)", gd, bd, gi)
			}
		}
	}
}

func TestNearestBeyondMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 1+rng.Intn(200))
		tree := spatial.Build(pts)
		for k := 0; k < 30; k++ {
			q := pts[rng.Intn(len(pts))] // on-point queries: the ERP c(q) case
			r := rng.Float64() * 100
			gi, gd := tree.NearestBeyond(q, r)
			bd := math.Inf(1)
			found := false
			for _, p := range pts {
				if d := q.Dist(p); d > r && d < bd {
					bd, found = d, true
				}
			}
			if found != (gi >= 0) {
				t.Fatalf("beyond existence mismatch: brute %v vs tree %v", found, gi >= 0)
			}
			if found && math.Abs(gd-bd) > 1e-9 {
				t.Fatalf("beyond distance %v != %v", gd, bd)
			}
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 1+rng.Intn(150))
		tree := spatial.Build(pts)
		for _, k := range []int{1, 3, 7, len(pts), len(pts) + 5} {
			q := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			got := tree.KNearest(q, k)
			want := make([]int32, len(pts))
			for i := range want {
				want[i] = int32(i)
			}
			sort.Slice(want, func(i, j int) bool {
				return q.Dist2(pts[want[i]]) < q.Dist2(pts[want[j]])
			})
			if k < len(want) {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				// Distances must agree (indices may differ under ties).
				gd := q.Dist2(pts[got[i]])
				wd := q.Dist2(pts[want[i]])
				if math.Abs(gd-wd) > 1e-9 {
					t.Fatalf("k=%d rank %d: dist2 %v != %v", k, i, gd, wd)
				}
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tree := spatial.Build(nil)
	if got := tree.Range(geo.Point{}, 10, nil); len(got) != 0 {
		t.Errorf("range on empty tree returned %v", got)
	}
	if idx, _ := tree.Nearest(geo.Point{}); idx != -1 {
		t.Errorf("nearest on empty tree returned %d", idx)
	}
	if got := tree.KNearest(geo.Point{}, 3); got != nil {
		t.Errorf("knearest on empty tree returned %v", got)
	}
}

func TestRangeQuickProperty(t *testing.T) {
	// Property: every returned point is within r; count matches brute.
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 400)
	tree := spatial.Build(pts)
	f := func(cx, cy, rRaw float64) bool {
		c := geo.Point{X: math.Mod(math.Abs(cx), 1000), Y: math.Mod(math.Abs(cy), 1000)}
		r := math.Mod(math.Abs(rRaw), 400)
		got := tree.Range(c, r, nil)
		want := bruteRange(pts, c, r)
		if len(got) != len(want) {
			return false
		}
		for _, idx := range got {
			if c.Dist(pts[idx]) > r+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

package spatial

import (
	"math"
	"sort"

	"subtraj/internal/geo"
)

// RTree is a static, STR-bulk-loaded R-tree over a point set — the
// alternative spatial index the paper names alongside the kd-tree
// (Figure 2: "kd-tree/R-tree (for spatial range search)"). It answers the
// same queries as KDTree, so cost models treat either as a black box.
type RTree struct {
	pts   []geo.Point
	nodes []rtNode
	root  int32
}

// rtFanout is the maximum children per node; 16 balances depth against
// scan width for point data.
const rtFanout = 16

type rtNode struct {
	bounds geo.Rect
	// leaf entries: pts indexes; internal entries: node indexes.
	children []int32
	leaf     bool
}

// BuildRTree constructs the tree with sort-tile-recursive packing. The
// point slice is retained; do not mutate.
func BuildRTree(pts []geo.Point) *RTree {
	t := &RTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	// Leaf level: STR packing.
	order := make([]int32, len(pts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })
	numLeaves := (len(pts) + rtFanout - 1) / rtFanout
	slabs := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	slabSize := (len(pts) + slabs - 1) / slabs
	var level []int32
	for s := 0; s < len(order); s += slabSize {
		e := s + slabSize
		if e > len(order) {
			e = len(order)
		}
		slab := order[s:e]
		sort.Slice(slab, func(a, b int) bool { return pts[slab[a]].Y < pts[slab[b]].Y })
		for l := 0; l < len(slab); l += rtFanout {
			r := l + rtFanout
			if r > len(slab) {
				r = len(slab)
			}
			entries := append([]int32(nil), slab[l:r]...)
			bounds := geo.Rect{Min: pts[entries[0]], Max: pts[entries[0]]}
			for _, i := range entries[1:] {
				bounds = bounds.Expand(pts[i])
			}
			t.nodes = append(t.nodes, rtNode{bounds: bounds, children: entries, leaf: true})
			level = append(level, int32(len(t.nodes)-1))
		}
	}
	// Upper levels: pack by center X (simple and adequate for static
	// trees over already-tiled leaves).
	for len(level) > 1 {
		sort.Slice(level, func(a, b int) bool {
			ba, bb := t.nodes[level[a]].bounds, t.nodes[level[b]].bounds
			return ba.Min.X+ba.Max.X < bb.Min.X+bb.Max.X
		})
		var next []int32
		for l := 0; l < len(level); l += rtFanout {
			r := l + rtFanout
			if r > len(level) {
				r = len(level)
			}
			entries := append([]int32(nil), level[l:r]...)
			bounds := t.nodes[entries[0]].bounds
			for _, ni := range entries[1:] {
				b := t.nodes[ni].bounds
				bounds = bounds.Expand(b.Min).Expand(b.Max)
			}
			t.nodes = append(t.nodes, rtNode{bounds: bounds, children: entries})
			next = append(next, int32(len(t.nodes)-1))
		}
		level = next
	}
	t.root = level[0]
	return t
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return len(t.pts) }

// Range appends the indexes of all points within distance r of center
// (inclusive) to dst.
func (t *RTree) Range(center geo.Point, r float64, dst []int32) []int32 {
	if t.root < 0 || r < 0 {
		return dst
	}
	r2 := r * r
	var rec func(ni int32)
	rec = func(ni int32) {
		n := &t.nodes[ni]
		if geo.Dist2ToRect(center, n.bounds) > r2 {
			return
		}
		if n.leaf {
			for _, pi := range n.children {
				if center.Dist2(t.pts[pi]) <= r2 {
					dst = append(dst, pi)
				}
			}
			return
		}
		for _, ci := range n.children {
			rec(ci)
		}
	}
	rec(t.root)
	return dst
}

// NearestBeyond returns the point nearest to q among those at distance
// strictly greater than r (the ERP filtering-cost query); (-1, 0) if none
// exists. Best-first search over node rectangles.
func (t *RTree) NearestBeyond(q geo.Point, r float64) (int32, float64) {
	if t.root < 0 {
		return -1, 0
	}
	r2 := r * r
	best := int32(-1)
	bestD2 := math.MaxFloat64
	h := &rtHeap{}
	h.push(t.root, geo.Dist2ToRect(q, t.nodes[t.root].bounds))
	for h.len() > 0 {
		ni, d2 := h.pop()
		if d2 >= bestD2 {
			break // every remaining rectangle is farther than the best point
		}
		n := &t.nodes[ni]
		if n.leaf {
			for _, pi := range n.children {
				pd2 := q.Dist2(t.pts[pi])
				if pd2 > r2 && pd2 < bestD2 {
					best, bestD2 = pi, pd2
				}
			}
			continue
		}
		for _, ci := range n.children {
			cd2 := geo.Dist2ToRect(q, t.nodes[ci].bounds)
			if cd2 < bestD2 {
				h.push(ci, cd2)
			}
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, math.Sqrt(bestD2)
}

// Nearest returns the closest point to q; (-1, 0) for an empty tree.
func (t *RTree) Nearest(q geo.Point) (int32, float64) {
	return t.NearestBeyond(q, -1)
}

// rtHeap is a min-heap on squared rectangle distance.
type rtHeap struct {
	ni []int32
	d  []float64
}

func (h *rtHeap) len() int { return len(h.ni) }

func (h *rtHeap) push(n int32, d float64) {
	h.ni = append(h.ni, n)
	h.d = append(h.d, d)
	c := len(h.d) - 1
	for c > 0 {
		p := (c - 1) / 2
		if h.d[p] <= h.d[c] {
			break
		}
		h.swap(p, c)
		c = p
	}
}

func (h *rtHeap) pop() (int32, float64) {
	n, d := h.ni[0], h.d[0]
	last := len(h.d) - 1
	h.swap(0, last)
	h.ni = h.ni[:last]
	h.d = h.d[:last]
	p := 0
	for {
		l, r := 2*p+1, 2*p+2
		small := p
		if l < last && h.d[l] < h.d[small] {
			small = l
		}
		if r < last && h.d[r] < h.d[small] {
			small = r
		}
		if small == p {
			break
		}
		h.swap(p, small)
		p = small
	}
	return n, d
}

func (h *rtHeap) swap(i, j int) {
	h.ni[i], h.ni[j] = h.ni[j], h.ni[i]
	h.d[i], h.d[j] = h.d[j], h.d[i]
}

package roadnet_test

import (
	"math/rand"
	"sort"
	"testing"

	"subtraj/internal/geo"
	"subtraj/internal/roadnet"
)

func TestGenerateGridBasicInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		g := roadnet.GenerateGrid(roadnet.DefaultGridConfig(15, 15), rng)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatal("empty graph")
		}
		for _, e := range g.Edges() {
			if e.Weight <= 0 {
				t.Fatalf("non-positive weight %v", e.Weight)
			}
			if e.From == e.To {
				t.Fatalf("self loop at %d", e.From)
			}
		}
		// Sparsity: mean out-degree must be small (road networks are
		// sparse — the §5.2 property).
		avg := float64(g.NumEdges()) / float64(g.NumVertices())
		if avg > 5 {
			t.Fatalf("graph too dense: avg out-degree %v", avg)
		}
	}
}

func TestGenerateGridStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := roadnet.GenerateGrid(roadnet.DefaultGridConfig(12, 12), rng)
	// BFS forward and backward from vertex 0 must reach everything.
	reach := func(backward bool) int {
		seen := make([]bool, g.NumVertices())
		stack := []roadnet.VertexID{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var edges []roadnet.EdgeID
			if backward {
				edges = g.In(v)
			} else {
				edges = g.Out(v)
			}
			for _, eid := range edges {
				e := g.Edge(eid)
				w := e.To
				if backward {
					w = e.From
				}
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		return count
	}
	if got := reach(false); got != g.NumVertices() {
		t.Fatalf("forward reach %d != |V| %d", got, g.NumVertices())
	}
	if got := reach(true); got != g.NumVertices() {
		t.Fatalf("backward reach %d != |V| %d", got, g.NumVertices())
	}
}

func TestGenerateRingRadialConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := roadnet.GenerateRingRadial(4, 12, 200, rng)
	if g.NumVertices() != 1+4*12 {
		t.Fatalf("vertex count %d", g.NumVertices())
	}
	for _, e := range g.Edges() {
		if e.Weight <= 0 {
			t.Fatalf("non-positive weight")
		}
		// Every edge must have its reverse (ring-radial is two-way).
		if _, ok := g.FindEdge(e.To, e.From); !ok {
			t.Fatalf("missing reverse edge %d->%d", e.To, e.From)
		}
	}
}

func TestPathConversionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := roadnet.GenerateGrid(roadnet.DefaultGridConfig(10, 10), rng)
	// Random walk, convert to edges and back.
	for trial := 0; trial < 30; trial++ {
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		path := []roadnet.VertexID{v}
		for len(path) < 12 {
			out := g.Out(v)
			if len(out) == 0 {
				break
			}
			e := g.Edge(out[rng.Intn(len(out))])
			v = e.To
			path = append(path, v)
		}
		if len(path) < 2 {
			continue
		}
		edges, err := g.VertexPathToEdges(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != len(path)-1 {
			t.Fatalf("edge path length %d", len(edges))
		}
		back, err := g.EdgePathToVertices(edges)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(path) {
			t.Fatalf("round trip length %d != %d", len(back), len(path))
		}
		for i := range back {
			if back[i] != path[i] {
				t.Fatalf("round trip mismatch at %d", i)
			}
		}
		if !g.IsPath(path) {
			t.Fatal("walk is not a path")
		}
	}
}

func TestPathConversionErrors(t *testing.T) {
	g := &roadnet.Graph{}
	a := g.AddVertex(geo.Point{})
	b := g.AddVertex(geo.Point{X: 1})
	c := g.AddVertex(geo.Point{X: 2})
	g.AddEdge(a, b, 1)
	if _, err := g.VertexPathToEdges([]roadnet.VertexID{a, c}); err == nil {
		t.Error("disconnected vertex path accepted")
	}
	e1 := g.AddEdge(b, c, 1)
	e0, _ := g.FindEdge(a, b)
	if _, err := g.EdgePathToVertices([]roadnet.EdgeID{e1, e0}); err == nil {
		t.Error("disconnected edge path accepted")
	}
	if _, err := g.PathWeight([]roadnet.VertexID{a, c}); err == nil {
		t.Error("PathWeight on non-path accepted")
	}
	w, err := g.PathWeight([]roadnet.VertexID{a, b, c})
	if err != nil || w != 2 {
		t.Errorf("PathWeight = %v, %v", w, err)
	}
}

func TestMedianEdgeWeight(t *testing.T) {
	g := &roadnet.Graph{}
	var vs []roadnet.VertexID
	for i := 0; i < 6; i++ {
		vs = append(vs, g.AddVertex(geo.Point{X: float64(i)}))
	}
	weights := []float64{5, 1, 4, 2, 3}
	for i, w := range weights {
		g.AddEdge(vs[i], vs[i+1], w)
	}
	sorted := append([]float64(nil), weights...)
	sort.Float64s(sorted)
	want := sorted[len(sorted)/2]
	if got := g.MedianEdgeWeight(); got != want {
		t.Fatalf("median %v, want %v", got, want)
	}
}

func TestMedianEdgeWeightRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		g := &roadnet.Graph{}
		n := 2 + rng.Intn(40)
		var vs []roadnet.VertexID
		for i := 0; i < n; i++ {
			vs = append(vs, g.AddVertex(geo.Point{X: float64(i)}))
		}
		var ws []float64
		for i := 0; i+1 < n; i++ {
			w := rng.Float64()*100 + 1
			ws = append(ws, w)
			g.AddEdge(vs[i], vs[i+1], w)
		}
		sorted := append([]float64(nil), ws...)
		sort.Float64s(sorted)
		if got, want := g.MedianEdgeWeight(), sorted[len(sorted)/2]; got != want {
			t.Fatalf("median %v, want %v (n=%d)", got, want, len(ws))
		}
	}
}

func TestBarycenter(t *testing.T) {
	g := &roadnet.Graph{}
	g.AddVertex(geo.Point{X: 0, Y: 0})
	g.AddVertex(geo.Point{X: 2, Y: 4})
	c := g.Barycenter()
	if c.X != 1 || c.Y != 2 {
		t.Fatalf("barycenter %+v", c)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := &roadnet.Graph{}
	a := g.AddVertex(geo.Point{})
	b := g.AddVertex(geo.Point{X: 1})
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero weight", func() { g.AddEdge(a, b, 0) }},
		{"negative weight", func() { g.AddEdge(a, b, -1) }},
		{"bad endpoint", func() { g.AddEdge(a, 99, 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// Package roadnet models the road network substrate from §2.1 of the paper:
// a directed graph G=(V,E) whose vertices carry planar coordinates and whose
// edges carry travel-cost weights (road length in metres in our workloads).
//
// Trajectories are paths on G; the trajectory alphabet is either V (vertex
// representation) or E (edge representation). The package also provides the
// synthetic city generators that stand in for the paper's proprietary
// OSM-derived networks (see DESIGN.md §1.2 for the substitution rationale).
package roadnet

import (
	"fmt"
	"math"

	"subtraj/internal/geo"
)

// VertexID identifies a vertex; EdgeID identifies a directed edge. Both are
// dense indexes assigned at construction, usable directly as slice indexes
// and as WED symbols.
type VertexID = int32

// EdgeID identifies a directed edge.
type EdgeID = int32

// Edge is a directed road segment.
type Edge struct {
	ID     EdgeID
	From   VertexID
	To     VertexID
	Weight float64 // travel cost, e.g. length in metres; must be > 0
}

// Graph is a directed road network. The zero value is an empty graph ready
// to use; vertices and edges are added with AddVertex / AddEdge.
type Graph struct {
	coords []geo.Point
	edges  []Edge
	out    [][]EdgeID // outgoing edge IDs per vertex
	in     [][]EdgeID // incoming edge IDs per vertex

	// byEndpoints finds an edge ID from its (from, to) pair; built lazily.
	byEndpoints map[[2]VertexID]EdgeID
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.coords) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex inserts a vertex at p and returns its ID.
func (g *Graph) AddVertex(p geo.Point) VertexID {
	id := VertexID(len(g.coords))
	g.coords = append(g.coords, p)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge inserts a directed edge and returns its ID. It panics on endpoint
// IDs out of range or non-positive weight: these are programming errors in
// the generator, not runtime conditions.
func (g *Graph) AddEdge(from, to VertexID, w float64) EdgeID {
	if int(from) >= len(g.coords) || int(to) >= len(g.coords) || from < 0 || to < 0 {
		panic(fmt.Sprintf("roadnet: AddEdge endpoint out of range (%d,%d) with %d vertices", from, to, len(g.coords)))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("roadnet: AddEdge weight %v must be positive and finite", w))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: w})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.byEndpoints = nil // invalidate lazy lookup
	return id
}

// Coord returns the coordinate of v.
func (g *Graph) Coord(v VertexID) geo.Point { return g.coords[v] }

// Coords returns the coordinates of all vertices, indexed by VertexID. The
// returned slice is shared with the graph and must not be modified.
func (g *Graph) Coords() []geo.Point { return g.coords }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns all edges indexed by EdgeID. Shared; do not modify.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving v. Shared; do not modify.
func (g *Graph) Out(v VertexID) []EdgeID { return g.out[v] }

// In returns the IDs of edges entering v. Shared; do not modify.
func (g *Graph) In(v VertexID) []EdgeID { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// FindEdge returns the ID of the edge from→to. The second result is false
// if no such edge exists. If parallel edges exist, the one added last wins.
func (g *Graph) FindEdge(from, to VertexID) (EdgeID, bool) {
	if g.byEndpoints == nil {
		g.byEndpoints = make(map[[2]VertexID]EdgeID, len(g.edges))
		for _, e := range g.edges {
			g.byEndpoints[[2]VertexID{e.From, e.To}] = e.ID
		}
	}
	id, ok := g.byEndpoints[[2]VertexID{from, to}]
	return id, ok
}

// EdgeWeight returns the weight of edge id.
func (g *Graph) EdgeWeight(id EdgeID) float64 { return g.edges[id].Weight }

// VertexPathToEdges converts a vertex-representation path v1 v2 ... vn into
// its edge representation e1 ... e(n-1). It returns an error if consecutive
// vertices are not connected.
func (g *Graph) VertexPathToEdges(path []VertexID) ([]EdgeID, error) {
	if len(path) < 2 {
		return nil, nil
	}
	out := make([]EdgeID, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		id, ok := g.FindEdge(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("roadnet: no edge %d->%d at position %d", path[i], path[i+1], i)
		}
		out = append(out, id)
	}
	return out, nil
}

// EdgePathToVertices converts an edge-representation path back to vertices.
// It returns an error if consecutive edges do not share an endpoint.
func (g *Graph) EdgePathToVertices(path []EdgeID) ([]VertexID, error) {
	if len(path) == 0 {
		return nil, nil
	}
	out := make([]VertexID, 0, len(path)+1)
	out = append(out, g.edges[path[0]].From)
	for i, id := range path {
		e := g.edges[id]
		if e.From != out[len(out)-1] {
			return nil, fmt.Errorf("roadnet: edge path disconnected at position %d", i)
		}
		out = append(out, e.To)
	}
	return out, nil
}

// IsPath reports whether the vertex sequence is a path on g (every
// consecutive pair connected by an edge).
func (g *Graph) IsPath(path []VertexID) bool {
	for i := 0; i+1 < len(path); i++ {
		if _, ok := g.FindEdge(path[i], path[i+1]); !ok {
			return false
		}
	}
	return true
}

// PathWeight returns the total edge weight along a vertex path. It returns
// an error if the sequence is not a path.
func (g *Graph) PathWeight(path []VertexID) (float64, error) {
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		id, ok := g.FindEdge(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("roadnet: no edge %d->%d", path[i], path[i+1])
		}
		sum += g.edges[id].Weight
	}
	return sum, nil
}

// Barycenter returns the barycentre of the vertices — the paper's default
// reference point g for ERP (Eq. 3).
func (g *Graph) Barycenter() geo.Point {
	var c geo.Point
	if len(g.coords) == 0 {
		return c
	}
	for _, p := range g.coords {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(g.coords)))
}

// MedianEdgeWeight returns the median edge weight, used by the paper to set
// the NetEDR matching threshold ε and the NetERP neighbourhood threshold η.
func (g *Graph) MedianEdgeWeight() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	ws := make([]float64, len(g.edges))
	for i, e := range g.edges {
		ws[i] = e.Weight
	}
	return median(ws)
}

func median(xs []float64) float64 {
	// Select without sorting the caller's slice; n is small enough that a
	// full sort is fine, but quickselect keeps this O(n) for the large
	// synthetic cities.
	n := len(xs)
	if n == 0 {
		return 0
	}
	k := n / 2
	lo, hi := 0, n-1
	for lo < hi {
		// Hoare partition: xs[lo..p] ≤ pivot ≤ xs[p+1..hi]; the pivot is
		// not finalised, so recurse into whichever side holds k.
		p := partition(xs, lo, hi)
		if p < k {
			lo = p + 1
		} else {
			hi = p
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	// Median-of-three pivot to avoid quadratic behaviour on sorted input.
	mid := lo + (hi-lo)/2
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	i, j := lo, hi
	for {
		for xs[i] < pivot {
			i++
		}
		for xs[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		xs[i], xs[j] = xs[j], xs[i]
		i++
		j--
	}
}

package roadnet

import (
	"math"
	"math/rand"

	"subtraj/internal/geo"
)

// GridConfig configures the perturbed-grid city generator. The generator
// produces networks with the statistical shape of real road networks: a
// large, spatially restricted alphabet with small out-degree (the sparsity
// property §5.2 exploits — "the number of possible next vertices are very
// small (typically, three)").
type GridConfig struct {
	// Rows and Cols give the grid dimensions; the network has Rows*Cols
	// vertices before DropRate removals.
	Rows, Cols int
	// Spacing is the nominal distance between adjacent grid vertices
	// (metres).
	Spacing float64
	// Jitter perturbs each vertex position by a uniform offset in
	// [-Jitter, +Jitter] per axis, so edge lengths vary like real blocks.
	Jitter float64
	// DropRate removes this fraction of vertices (with their edges),
	// creating irregular blocks, dead ends and varying degrees.
	DropRate float64
	// DiagonalRate adds a diagonal arterial across this fraction of grid
	// cells, giving some vertices degree > 4 like real intersections.
	DiagonalRate float64
	// OneWayRate converts this fraction of street pairs to one-way
	// (keeping only one direction), as in real cities.
	OneWayRate float64
}

// DefaultGridConfig returns the configuration used by the synthetic
// workloads: ~100 m blocks with mild irregularity.
func DefaultGridConfig(rows, cols int) GridConfig {
	return GridConfig{
		Rows:         rows,
		Cols:         cols,
		Spacing:      100,
		Jitter:       25,
		DropRate:     0.05,
		DiagonalRate: 0.05,
		OneWayRate:   0.10,
	}
}

// GenerateGrid builds a perturbed-grid road network. The result is
// guaranteed non-empty and uses the largest strongly connected component of
// the generated street pattern, so every trajectory generator walk can
// always continue.
func GenerateGrid(cfg GridConfig, rng *rand.Rand) *Graph {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		panic("roadnet: grid must be at least 2x2")
	}
	type cell struct {
		alive bool
		id    VertexID
		pt    geo.Point
	}
	cells := make([]cell, cfg.Rows*cfg.Cols)
	at := func(r, c int) *cell { return &cells[r*cfg.Cols+c] }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			cl := at(r, c)
			cl.alive = rng.Float64() >= cfg.DropRate
			cl.pt = geo.Point{
				X: float64(c)*cfg.Spacing + uniform(rng, -cfg.Jitter, cfg.Jitter),
				Y: float64(r)*cfg.Spacing + uniform(rng, -cfg.Jitter, cfg.Jitter),
			}
		}
	}

	// Build the full (pre-SCC) graph with provisional IDs.
	type rawEdge struct {
		a, b   int // cell indexes
		twoWay bool
		diag   bool
	}
	var raw []rawEdge
	idx := func(r, c int) int { return r*cfg.Cols + c }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if !cells[idx(r, c)].alive {
				continue
			}
			if c+1 < cfg.Cols && cells[idx(r, c+1)].alive {
				raw = append(raw, rawEdge{idx(r, c), idx(r, c+1), rng.Float64() >= cfg.OneWayRate, false})
			}
			if r+1 < cfg.Rows && cells[idx(r+1, c)].alive {
				raw = append(raw, rawEdge{idx(r, c), idx(r+1, c), rng.Float64() >= cfg.OneWayRate, false})
			}
			if r+1 < cfg.Rows && c+1 < cfg.Cols && cells[idx(r+1, c+1)].alive && rng.Float64() < cfg.DiagonalRate {
				raw = append(raw, rawEdge{idx(r, c), idx(r+1, c+1), true, true})
			}
		}
	}

	// Adjacency on cell indexes for the SCC computation.
	n := len(cells)
	adj := make([][]int32, n)
	radj := make([][]int32, n)
	for _, e := range raw {
		adj[e.a] = append(adj[e.a], int32(e.b))
		radj[e.b] = append(radj[e.b], int32(e.a))
		if e.twoWay {
			adj[e.b] = append(adj[e.b], int32(e.a))
			radj[e.a] = append(radj[e.a], int32(e.b))
		} else if rng.Float64() < 0.5 {
			// Flip the surviving direction of one-way streets half the
			// time so one-ways point both ways across the city.
			adj[e.a] = adj[e.a][:len(adj[e.a])-1]
			radj[e.b] = radj[e.b][:len(radj[e.b])-1]
			adj[e.b] = append(adj[e.b], int32(e.a))
			radj[e.a] = append(radj[e.a], int32(e.b))
		}
	}
	inSCC := largestSCC(adj, radj)

	// Materialise the final graph restricted to the largest SCC.
	g := &Graph{}
	for i := range cells {
		if cells[i].alive && inSCC[i] {
			cells[i].id = g.AddVertex(cells[i].pt)
		} else {
			cells[i].id = -1
			cells[i].alive = false
		}
	}
	addDirected := func(a, b int) {
		ca, cb := &cells[a], &cells[b]
		w := ca.pt.Dist(cb.pt)
		if w <= 0 {
			w = 1 // degenerate jitter collision; keep weights positive
		}
		g.AddEdge(ca.id, cb.id, w)
	}
	seen := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		if !cells[u].alive {
			continue
		}
		for _, v32 := range adj[u] {
			v := int(v32)
			if !cells[v].alive || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			addDirected(u, v)
		}
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		panic("roadnet: generated graph is empty; lower DropRate")
	}
	return g
}

// largestSCC returns membership flags of the largest strongly connected
// component, via Kosaraju's algorithm with explicit stacks (the synthetic
// cities can exceed default goroutine stack recursion comfort).
func largestSCC(adj, radj [][]int32) []bool {
	n := len(adj)
	order := make([]int32, 0, n)
	state := make([]int8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		v  int32
		ei int
	}
	stack := make([]frame, 0, 64)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		stack = append(stack, frame{int32(s), 0})
		state[s] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if state[w] == 0 {
					state[w] = 1
					stack = append(stack, frame{w, 0})
				}
				continue
			}
			order = append(order, f.v)
			state[f.v] = 2
			stack = stack[:len(stack)-1]
		}
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var best, bestSize, cur int32
	var queue []int32
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] != -1 {
			continue
		}
		var size int32
		queue = append(queue[:0], root)
		comp[root] = cur
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range radj[v] {
				if comp[w] == -1 {
					comp[w] = cur
					queue = append(queue, w)
				}
			}
		}
		if size > bestSize {
			bestSize, best = size, cur
		}
		cur++
	}
	in := make([]bool, n)
	for v, c := range comp {
		in[v] = c == best
	}
	return in
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// GenerateRingRadial builds a ring-and-radial city (historic European
// shape): concentric rings connected by radial avenues. Used by tests and
// the Porto-like workload to vary network topology across datasets.
func GenerateRingRadial(rings, spokes int, ringSpacing float64, rng *rand.Rand) *Graph {
	if rings < 1 || spokes < 3 {
		panic("roadnet: need at least 1 ring and 3 spokes")
	}
	g := &Graph{}
	center := g.AddVertex(geo.Point{})
	ids := make([][]VertexID, rings)
	for r := 0; r < rings; r++ {
		ids[r] = make([]VertexID, spokes)
		radius := ringSpacing * float64(r+1)
		for s := 0; s < spokes; s++ {
			ang := 2*math.Pi*float64(s)/float64(spokes) + uniform(rng, -0.05, 0.05)
			jr := radius * (1 + uniform(rng, -0.03, 0.03))
			ids[r][s] = g.AddVertex(geo.Point{X: jr * math.Cos(ang), Y: jr * math.Sin(ang)})
		}
	}
	both := func(a, b VertexID) {
		w := g.Coord(a).Dist(g.Coord(b))
		if w <= 0 {
			w = 1
		}
		g.AddEdge(a, b, w)
		g.AddEdge(b, a, w)
	}
	for s := 0; s < spokes; s++ {
		both(center, ids[0][s])
		for r := 0; r+1 < rings; r++ {
			both(ids[r][s], ids[r+1][s])
		}
	}
	for r := 0; r < rings; r++ {
		for s := 0; s < spokes; s++ {
			both(ids[r][s], ids[r][(s+1)%spokes])
		}
	}
	return g
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) at a reduced, laptop-friendly scale, plus
// micro-benchmarks of the hot kernels. Each Benchmark<ID> target
// corresponds to the experiment of the same ID in DESIGN.md §2; the full
// paper-style tables are printed by cmd/benchall.
//
//	go test -bench=. -benchmem
//
// Benchmark results measure our reproduction, not the paper's hardware;
// the experiment drivers preserve the paper's relative shapes (who wins,
// scaling slopes), which EXPERIMENTS.md records.
package subtraj_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"subtraj"
	"subtraj/internal/core"
	"subtraj/internal/experiments"
	"subtraj/internal/filter"
	"subtraj/internal/index"
	"subtraj/internal/spatial"
	"subtraj/internal/testutil"
	"subtraj/internal/traj"
	"subtraj/internal/wed"
	"subtraj/internal/workload"
)

func benchOpts() experiments.Options { return experiments.Quick() }

func benchDatasets() []experiments.Ctx2 {
	// One mid-size dataset keeps each figure benchmark in seconds; the
	// full four-dataset grid lives in cmd/benchall.
	return []experiments.Ctx2{{Cfg: workload.BeijingLike(), Scale: 1}}
}

func sink(tb *experiments.Table) {
	tb.Format(io.Discard)
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkFig4TravelTimeRMSE(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig4TravelTime(workload.BeijingLike(), []float64{0, 0.1}, 4, opts))
	}
}

func BenchmarkTable3SubVsWhole(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Tab3SubVsWhole(workload.BeijingLike(), []int{5, 10}, 4, opts))
	}
}

func BenchmarkFig5Naturalness(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig5Naturalness(workload.BeijingLike(), []int{20}, []float64{0.1, 0.3}, 2, opts))
	}
}

func BenchmarkFig6VaryTau(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig6VaryTau(benchDatasets(), experiments.ModelNames, []float64{0.1, 0.2, 0.3}, opts))
	}
}

func BenchmarkFig7VaryQueryLen(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig7VaryQueryLen(benchDatasets(), []string{"EDR", "SURS"}, []int{20, 40, 60}, opts))
	}
}

func BenchmarkFig8VaryDatasetSize(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig8VaryDatasetSize(benchDatasets(), []string{"EDR", "SURS"}, []float64{0.25, 0.5, 1}, opts))
	}
}

func BenchmarkFig9EnumBaselinesTau(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig9EnumBaselinesTau(workload.BeijingLike(), 60, []float64{0.1, 0.2}, opts))
	}
}

func BenchmarkFig10EnumBaselinesSize(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig10EnumBaselinesSize(workload.BeijingLike(), []int{40, 60, 80}, opts))
	}
}

func BenchmarkFig11CandidateCounts(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig11CandidateCounts(workload.BeijingLike(), experiments.ModelNames,
			[]float64{0.1, 0.2, 0.3}, []int{20, 40}, opts))
	}
}

func BenchmarkFig12TemporalSelectivity(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig12Temporal(benchDatasets(), []float64{0.01, 0.05, 0.1}, opts))
	}
}

func BenchmarkFig13VaryEta(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Fig13VaryEta(benchDatasets(), []float64{1e-4, 1e-2, 1},
			[][2]interface{}{{0.1, opts.QueryLen}}, opts))
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Tab4Breakdown(workload.BeijingLike(), opts))
	}
}

func BenchmarkTable5VerifyRates(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Tab5VerifyRates(workload.BeijingLike(), opts))
	}
}

func BenchmarkTable6IndexBuild(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		sink(experiments.Tab6IndexBuild(benchDatasets(), 60, opts))
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out --------

// BenchmarkAblationVerifyModes isolates BT vs Local (no trie) vs SW
// verification on identical candidates (the §5 ablation).
func BenchmarkAblationVerifyModes(b *testing.B) {
	c := experiments.GetCtx(workload.BeijingLike(), 0.12)
	queries := c.Queries("EDR", 60, 5, 3)
	for _, mode := range []subtraj.VerifyOptions{
		{Mode: subtraj.VerifyBT},
		{Mode: subtraj.VerifyLocal},
		{Mode: subtraj.VerifySW},
	} {
		mode := mode
		b.Run(mode.Mode.String(), func(b *testing.B) {
			eng := c.Engine("EDR")
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				tau := c.Tau("EDR", q, 0.1)
				if _, _, err := eng.SearchQuery(coreQuery(q, tau, mode)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEarlyTermination measures the Eq. 11 cut.
func BenchmarkAblationEarlyTermination(b *testing.B) {
	c := experiments.GetCtx(workload.BeijingLike(), 0.12)
	queries := c.Queries("EDR", 60, 5, 3)
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			eng := c.Engine("EDR")
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				tau := c.Tau("EDR", q, 0.1)
				opts := subtraj.VerifyOptions{DisableEarlyTermination: tc.disable}
				if _, _, err := eng.SearchQuery(coreQuery(q, tau, opts)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks of the hot kernels ---------------------------------

func BenchmarkKernelWEDDist(b *testing.B) {
	env := testutil.NewEnv(1, 10, 64)
	m := env.Models()[1] // EDR
	p := env.RandomString(m, 100)
	q := env.RandomString(m, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wed.Dist(m.Costs, p, q)
	}
}

func BenchmarkKernelStepDP(b *testing.B) {
	env := testutil.NewEnv(2, 10, 64)
	m := env.Models()[1]
	q := env.RandomString(m, 60)
	col := make([]float64, len(q)+1)
	dst := make([]float64, len(q)+1)
	sym := env.RandomString(m, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wed.StepDP(m.Costs, q, sym, col, dst)
	}
}

func BenchmarkKernelMinCand(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 60
	nq := make([]float64, n)
	cs := make([]float64, n)
	var total float64
	for i := range nq {
		nq[i] = float64(rng.Intn(1000))
		cs[i] = rng.Float64()*3 + 0.1
		total += cs[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter.MinCand(nq, cs, total*0.3)
	}
}

func BenchmarkKernelKDTreeRange(b *testing.B) {
	w := workload.Generate(workload.BeijingLike().Scale(0.05))
	tree := spatial.Build(w.Graph.Coords())
	b.ReportAllocs()
	b.ResetTimer()
	var buf []int32
	for i := 0; i < b.N; i++ {
		buf = tree.Range(w.Graph.Coord(int32(i%w.Graph.NumVertices())), 150, buf[:0])
	}
}

func BenchmarkKernelHubLabelQuery(b *testing.B) {
	c := experiments.GetCtx(workload.BeijingLike(), 0.12)
	h := c.Hubs()
	n := uint64(c.W.Graph.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Query(int32(uint64(i)%n), int32(uint64(i)*7919%n))
	}
}

func BenchmarkKernelIndexBuild(b *testing.B) {
	w := workload.Generate(workload.BeijingLike().Scale(0.05))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(w.Data)
	}
}

func BenchmarkKernelSmithWaterman(b *testing.B) {
	env := testutil.NewEnv(4, 10, 100)
	m := env.Models()[1]
	p := env.RandomString(m, 100)
	q := env.RandomString(m, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wed.SmithWaterman(m.Costs, q, p)
	}
}

// BenchmarkSearchPerQuery reports steady-state per-query latency of
// OSF-BT for each cost model on the Beijing-like workload — the headline
// quantity of Figure 6's OSF-BT lines.
func BenchmarkSearchPerQuery(b *testing.B) {
	c := experiments.GetCtx(workload.BeijingLike(), 0.12)
	for _, model := range experiments.ModelNames {
		model := model
		b.Run(model, func(b *testing.B) {
			eng := c.Engine(model)
			queries := c.Queries(model, 60, 8, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				tau := c.Tau(model, q, 0.1)
				if _, err := eng.Search(q, tau); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSearch measures the sharded intra-query pipeline on
// the largest synthetic workload (SanFran-like): one engine per shard
// count, each query run with Parallelism equal to its shard count, so
// shards=1 is the sequential baseline the speedup targets are measured
// against. cmd/benchall -json runs the same sweep and snapshots it into
// BENCH_<rev>.json; the speedup only materialises with ≥shards CPUs.
func BenchmarkParallelSearch(b *testing.B) {
	c := experiments.GetCtx(workload.SanFranLike(), 0.1)
	costs := c.Model("EDR")
	queries := c.Queries("EDR", 60, 8, 5)
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := core.NewEngineShards(c.Data("EDR"), costs, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				tau := c.Tau("EDR", q, 0.1)
				if _, _, err := eng.SearchQuery(core.Query{Q: q, Tau: tau, Parallelism: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func coreQuery(q []traj.Symbol, tau float64, v subtraj.VerifyOptions) core.Query {
	return core.Query{Q: q, Tau: tau, Verify: v}
}

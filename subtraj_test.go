package subtraj_test

import (
	"math"
	"math/rand"
	"testing"

	"subtraj"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(101))
	net := subtraj.NewNetwork(w.Graph)
	rng := rand.New(rand.NewSource(101))

	eng, err := subtraj.NewEngine(w.Data, net.EDR(60))
	if err != nil {
		t.Fatal(err)
	}
	q, err := subtraj.SampleQuery(w.Data, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := eng.SearchRatio(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// The query is a verbatim subtrajectory of some data trajectory, so
	// at least one exact (wed = 0) match must exist.
	foundZero := false
	for _, m := range ms {
		if m.WED == 0 {
			foundZero = true
		}
		if m.WED >= eng.Threshold(q, 0.2) {
			t.Fatalf("match at %v ≥ τ", m.WED)
		}
	}
	if !foundZero {
		t.Fatal("the sampled query's own occurrence was not found")
	}
}

func TestPublicAPIAllModels(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(102))
	net := subtraj.NewNetwork(w.Graph)
	rng := rand.New(rand.NewSource(102))

	edgeData, err := w.Data.ToEdgeRep(w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	medW := w.Graph.MedianEdgeWeight()
	models := []struct {
		name  string
		costs subtraj.FilterCosts
		data  *subtraj.Dataset
	}{
		{"Lev", net.Lev(), w.Data},
		{"EDR", net.EDR(60), w.Data},
		{"ERP", net.ERP(net.DefaultERPEta()), w.Data},
		{"NetEDR", net.NetEDR(medW), w.Data},
		{"NetERP", net.NetERP(2000, medW), w.Data},
		{"SURS", net.SURS(), edgeData},
	}
	for _, m := range models {
		eng, err := subtraj.NewEngine(m.data, m.costs)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		q, err := subtraj.SampleQuery(m.data, 8, rng)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		ms, err := eng.SearchRatio(q, 0.15)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if len(ms) == 0 {
			t.Fatalf("%s: sampled query found no matches (its own occurrence must match)", m.name)
		}
	}
}

func TestSearchStatsExposed(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(103))
	net := subtraj.NewNetwork(w.Graph)
	rng := rand.New(rand.NewSource(103))
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())
	q, _ := subtraj.SampleQuery(w.Data, 8, rng)
	tau := eng.Threshold(q, 0.25)
	_, stats, err := eng.SearchStats(q, tau, subtraj.VerifyOptions{Mode: subtraj.VerifyBT})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates <= 0 || stats.SubseqLen <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.CSum < tau {
		t.Fatalf("c(Q') = %v < τ = %v", stats.CSum, tau)
	}
}

func TestSearchTemporalWindow(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(104))
	net := subtraj.NewNetwork(w.Graph)
	rng := rand.New(rand.NewSource(104))
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())
	q, _ := subtraj.SampleQuery(w.Data, 8, rng)
	tau := eng.Threshold(q, 0.25)
	all, err := eng.Search(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	// The full horizon window keeps everything under overlap semantics.
	full, _, err := eng.SearchTemporal(q, tau, subtraj.TemporalWindow{Lo: 0, Hi: math.MaxFloat64})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(all) {
		t.Fatalf("full window dropped matches: %d vs %d", len(full), len(all))
	}
	// TF and no-TF must agree.
	win := subtraj.TemporalWindow{Lo: 0, Hi: 1800}
	a, _, err := eng.SearchTemporal(q, tau, win)
	if err != nil {
		t.Fatal(err)
	}
	win.NoPrefilter = true
	b, _, err := eng.SearchTemporal(q, tau, win)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("TF/no-TF disagree: %d vs %d", len(a), len(b))
	}
}

func TestBestPerTrajectory(t *testing.T) {
	ms := []subtraj.Match{
		{ID: 1, S: 0, T: 5, WED: 2},
		{ID: 1, S: 2, T: 4, WED: 1},
		{ID: 1, S: 3, T: 4, WED: 1},
		{ID: 2, S: 0, T: 1, WED: 0},
	}
	best := subtraj.BestPerTrajectory(ms)
	if len(best) != 2 {
		t.Fatalf("best size %d", len(best))
	}
	// ID 1: wed 1 wins; among ties the shorter [3,4].
	if b := best[1]; b.WED != 1 || b.S != 3 || b.T != 4 {
		t.Fatalf("best for 1: %+v", b)
	}
	if b := best[2]; b.WED != 0 {
		t.Fatalf("best for 2: %+v", b)
	}
}

func TestEngineAppendPublic(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(105))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())
	n := eng.Dataset().Len()
	// Append a copy of trajectory 0 and search for its prefix.
	t0 := *eng.Dataset().Get(0)
	id := eng.Append(t0)
	if int(id) != n {
		t.Fatalf("appended ID %d, want %d", id, n)
	}
	qlen := 5
	if len(t0.Path) < qlen {
		qlen = len(t0.Path)
	}
	q := t0.Path[:qlen]
	ms, err := eng.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	foundNew := false
	for _, m := range ms {
		if m.ID == id && m.WED == 0 {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatal("appended trajectory not searchable")
	}
}

func TestNilArguments(t *testing.T) {
	if _, err := subtraj.NewEngine(nil, nil); err == nil {
		t.Fatal("nil engine args accepted")
	}
}

func TestRTreeBackedEngineEqualsKDTree(t *testing.T) {
	// The spatial index is a black box (§4.2): swapping kd-tree for
	// R-tree must not change any result.
	w := subtraj.Generate(subtraj.TinyWorkload(108))
	kdNet := subtraj.NewNetwork(w.Graph)
	rtNet := subtraj.NewNetwork(w.Graph)
	rtNet.UseRTree = true
	rng := rand.New(rand.NewSource(108))
	for _, mk := range []func(n *subtraj.Network) subtraj.FilterCosts{
		func(n *subtraj.Network) subtraj.FilterCosts { return n.EDR(60) },
		func(n *subtraj.Network) subtraj.FilterCosts { return n.ERP(5) },
	} {
		kdEng, _ := subtraj.NewEngine(w.Data, mk(kdNet))
		rtEng, _ := subtraj.NewEngine(w.Data, mk(rtNet))
		for i := 0; i < 3; i++ {
			q, err := subtraj.SampleQuery(w.Data, 8, rng)
			if err != nil {
				t.Fatal(err)
			}
			a, err := kdEng.SearchRatio(q, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			b, err := rtEng.SearchRatio(q, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("kd %d matches, rtree %d", len(a), len(b))
			}
			for j := range a {
				if a[j].Key() != b[j].Key() {
					t.Fatalf("match %d differs: %+v vs %+v", j, a[j], b[j])
				}
			}
		}
	}
}

func TestSearchExactPublic(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(109))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())
	rng := rand.New(rand.NewSource(109))
	q, _ := subtraj.SampleQuery(w.Data, 8, rng)
	ms, err := eng.SearchExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("sampled query has no exact occurrence")
	}
	for _, m := range ms {
		p := w.Data.Get(m.ID).Path[m.S : m.T+1]
		for i := range q {
			if p[i] != q[i] {
				t.Fatalf("non-exact match %+v", m)
			}
		}
	}
	n, err := eng.CountExact(q)
	if err != nil || n != len(ms) {
		t.Fatalf("CountExact %d != %d", n, len(ms))
	}
}

func TestPathIndexAgreesWithSearchExact(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(110))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())
	pi := subtraj.NewPathIndex(w.Data)
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 20; trial++ {
		q, err := subtraj.SampleQuery(w.Data, 2+rng.Intn(8), rng)
		if err != nil {
			t.Fatal(err)
		}
		a, err := eng.SearchExact(q)
		if err != nil {
			t.Fatal(err)
		}
		b := pi.Lookup(q)
		if len(a) != len(b) {
			t.Fatalf("engine %d occurrences, suffix array %d", len(a), len(b))
		}
		akeys := map[subtraj.Match]bool{}
		for _, m := range a {
			akeys[m] = true
		}
		for _, m := range b {
			if !akeys[m] {
				t.Fatalf("suffix array found %+v, engine did not", m)
			}
		}
		if pi.Count(q) != len(a) {
			t.Fatal("count mismatch")
		}
	}
}

func TestSearchTopKPublic(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(106))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.EDR(60))
	rng := rand.New(rand.NewSource(106))
	q, _ := subtraj.SampleQuery(w.Data, 8, rng)
	top, err := eng.SearchTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no top-k results for a sampled query")
	}
	if top[0].WED != 0 {
		t.Fatalf("best match wed = %v, want 0 (query sampled from data)", top[0].WED)
	}
	for i := 1; i < len(top); i++ {
		if top[i].WED < top[i-1].WED {
			t.Fatal("top-k not sorted by WED")
		}
	}
	seen := map[int32]bool{}
	for _, m := range top {
		if seen[m.ID] {
			t.Fatal("duplicate trajectory in top-k")
		}
		seen[m.ID] = true
	}
}

func TestSearchTemporalDeparture(t *testing.T) {
	w := subtraj.Generate(subtraj.TinyWorkload(107))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())
	rng := rand.New(rand.NewSource(107))
	q, _ := subtraj.SampleQuery(w.Data, 8, rng)
	tau := eng.Threshold(q, 0.3)
	win := subtraj.TemporalWindow{Lo: 0, Hi: 1800, Departure: true}
	got, _, err := eng.SearchTemporal(q, tau, win)
	if err != nil {
		t.Fatal(err)
	}
	// Every match's trajectory must depart inside the window, and the
	// no-prefilter run must agree.
	for _, m := range got {
		dep, ok := w.Data.Get(m.ID).Departure()
		if !ok || dep < win.Lo || dep > win.Hi {
			t.Fatalf("match %+v departs at %v outside window", m, dep)
		}
	}
	win.NoPrefilter = true
	want, _, err := eng.SearchTemporal(q, tau, win)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("prefilter changed results: %d vs %d", len(got), len(want))
	}
}

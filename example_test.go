package subtraj_test

import (
	"fmt"
	"math/rand"

	"subtraj"
)

// ExampleEngine_Search indexes a small synthetic city and answers one
// subtrajectory similarity query under EDR.
func ExampleEngine_Search() {
	w := subtraj.Generate(subtraj.TinyWorkload(7))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.EDR(60))

	rng := rand.New(rand.NewSource(7))
	q, _ := subtraj.SampleQuery(w.Data, 10, rng)

	matches, _ := eng.SearchRatio(q, 0.2)
	exact := 0
	for _, m := range matches {
		if m.WED == 0 {
			exact++
		}
	}
	fmt.Printf("query length %d: %d matches, %d exact\n", len(q), len(matches), exact)
	// Output:
	// query length 10: 5 matches, 1 exact
}

// ExampleEngine_SearchTopK retrieves the three most similar trajectories.
func ExampleEngine_SearchTopK() {
	w := subtraj.Generate(subtraj.TinyWorkload(7))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())

	rng := rand.New(rand.NewSource(9))
	q, _ := subtraj.SampleQuery(w.Data, 10, rng)

	top, _ := eng.SearchTopK(q, 3)
	fmt.Printf("top-%d distances:", len(top))
	for _, m := range top {
		fmt.Printf(" %.0f", m.WED)
	}
	fmt.Println()
	// Output:
	// top-3 distances: 0 5 5
}

// ExampleEngine_CountExact estimates path popularity.
func ExampleEngine_CountExact() {
	w := subtraj.Generate(subtraj.TinyWorkload(7))
	net := subtraj.NewNetwork(w.Graph)
	eng, _ := subtraj.NewEngine(w.Data, net.Lev())

	rng := rand.New(rand.NewSource(3))
	q, _ := subtraj.SampleQuery(w.Data, 6, rng)

	n, _ := eng.CountExact(q)
	pi := subtraj.NewPathIndex(w.Data)
	fmt.Printf("engine: %d, suffix array: %d\n", n, pi.Count(q))
	// Output:
	// engine: 1, suffix array: 1
}

package subtraj

import (
	"subtraj/internal/core"
	"subtraj/internal/server"
)

// SafeEngine is a thread-safe façade over an Engine: queries read an
// immutable published snapshot through one atomic load (no lock at all
// on the read path), Append takes a narrow ingest mutex and publishes
// the next snapshot, and a background fold periodically absorbs the
// append delta into the frozen base (see DESIGN.md §1.11). Use it
// whenever more than one goroutine touches the same engine — the plain
// Engine has no synchronization at all. cmd/wedserve serves HTTP
// traffic through exactly this wrapper.
type SafeEngine struct {
	inner *server.SafeEngine
}

// NewSafeEngine wraps e. The wrapper must be the only user of e from then
// on; keeping a copy of e and querying it directly reintroduces the race.
func NewSafeEngine(e *Engine) *SafeEngine {
	return &SafeEngine{inner: server.NewSafeEngine(e.inner)}
}

// Inner exposes the internal wrapper for the server package and the
// experiment harness.
func (s *SafeEngine) Inner() *server.SafeEngine { return s.inner }

// Generation counts Appends; caches use it as a validity tag.
func (s *SafeEngine) Generation() uint64 { return s.inner.Generation() }

// Append indexes one more trajectory and returns its ID. The error is
// always nil on a volatile engine; on a durable one (server.OpenDurable)
// it surfaces write-ahead-log failures, in which case nothing was
// applied.
func (s *SafeEngine) Append(t Trajectory) (int32, error) { return s.inner.Append(t) }

// AppendBatch indexes several trajectories under one ingest-mutex
// acquisition (the GPS ingestion path) and returns their IDs in order.
// On a durable engine the batch is logged as one atomic frame; on error
// nothing was applied.
func (s *SafeEngine) AppendBatch(ts []Trajectory) ([]int32, error) { return s.inner.AppendBatch(ts) }

// Search returns every match with wed(P[s..t], Q) < tau.
func (s *SafeEngine) Search(q []Symbol, tau float64) ([]Match, error) {
	return s.inner.Search(q, tau)
}

// SearchRatio derives τ from the paper's threshold ratio.
func (s *SafeEngine) SearchRatio(q []Symbol, ratio float64) ([]Match, error) {
	return s.inner.Search(q, s.Threshold(q, ratio))
}

// Threshold converts a τ_ratio into an absolute τ for query q.
func (s *SafeEngine) Threshold(q []Symbol, ratio float64) float64 {
	return s.inner.Threshold(q, ratio)
}

// SearchStats searches with explicit verification options and returns
// instrumentation.
func (s *SafeEngine) SearchStats(q []Symbol, tau float64, vopts VerifyOptions) ([]Match, *QueryStats, error) {
	return s.inner.SearchQuery(core.Query{Q: q, Tau: tau, Verify: vopts})
}

// SearchTemporal answers a temporally constrained query (see
// Engine.SearchTemporal).
func (s *SafeEngine) SearchTemporal(q []Symbol, tau float64, w TemporalWindow) ([]Match, *QueryStats, error) {
	qr := core.Query{Q: q, Tau: tau}
	qr.Temporal.Lo, qr.Temporal.Hi = w.Lo, w.Hi
	qr.Temporal.DisablePrefilter = w.NoPrefilter
	switch {
	case w.Departure:
		qr.Temporal.Mode = core.TemporalDeparture
	case w.Contain:
		qr.Temporal.Mode = core.TemporalContain
	default:
		qr.Temporal.Mode = core.TemporalOverlap
	}
	return s.inner.SearchQuery(qr)
}

// SearchTopK returns the best-matching subtrajectory of each of the k
// most similar trajectories (see Engine.SearchTopK).
func (s *SafeEngine) SearchTopK(q []Symbol, k int) ([]Match, error) {
	return s.inner.SearchTopK(q, k)
}

// SearchTopKStats is SearchTopK with options and the driver's merged
// QueryStats (see Engine.SearchTopKStats), against one snapshot — the
// whole multi-round τ refinement sees a single generation.
func (s *SafeEngine) SearchTopKStats(q []Symbol, k int, opts TopKOptions) ([]Match, *QueryStats, error) {
	return s.inner.SearchTopKStats(q, k, opts)
}

// SearchExact answers the exact path query.
func (s *SafeEngine) SearchExact(q []Symbol) ([]Match, error) {
	return s.inner.SearchExact(q)
}

// CountExact returns the exact occurrence count of Q.
func (s *SafeEngine) CountExact(q []Symbol) (int, error) {
	return s.inner.CountExact(q)
}

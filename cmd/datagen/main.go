// Command datagen generates a synthetic workload and writes it to disk in
// a simple self-describing gob container, plus optional CSV exports for
// inspection with external tooling.
//
// Usage:
//
//	datagen -dataset porto -scale 0.2 -out porto.gob [-csv porto_dir]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		dataset = flag.String("dataset", "beijing", "workload: beijing|porto|singapore|sanfran|tiny")
		scale   = flag.Float64("scale", 0.1, "dataset scale factor")
		out     = flag.String("out", "workload.gob", "output gob file")
		csvDir  = flag.String("csv", "", "optional directory for CSV exports")
	)
	flag.Parse()

	var cfg subtraj.WorkloadConfig
	switch *dataset {
	case "beijing":
		cfg = subtraj.BeijingLike()
	case "porto":
		cfg = subtraj.PortoLike()
	case "singapore":
		cfg = subtraj.SingaporeLike()
	case "sanfran":
		cfg = subtraj.SanFranLike()
	case "tiny":
		cfg = subtraj.TinyWorkload(42)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	cfg.NumTrajectories = int(float64(cfg.NumTrajectories) * *scale)
	w := subtraj.Generate(cfg)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, %d trajectories\n",
		*out, w.Graph.NumVertices(), w.Graph.NumEdges(), w.Data.Len())

	// Round-trip check: what we wrote must load back.
	rf, err := os.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := subtraj.LoadWorkload(rf); err != nil {
		log.Fatalf("self-check failed: %v", err)
	}
	rf.Close()

	if *csvDir != "" {
		if err := exportCSV(*csvDir, w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote CSV exports under %s\n", *csvDir)
	}
}

func exportCSV(dir string, wl *subtraj.Workload) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeAll := func(name string, header []string, rows func(w *csv.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := rows(w); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	}
	if err := writeAll("vertices.csv", []string{"id", "x", "y"}, func(w *csv.Writer) error {
		for i, p := range wl.Graph.Coords() {
			if err := w.Write([]string{strconv.Itoa(i),
				strconv.FormatFloat(p.X, 'f', 2, 64),
				strconv.FormatFloat(p.Y, 'f', 2, 64)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeAll("edges.csv", []string{"id", "from", "to", "weight"}, func(w *csv.Writer) error {
		for _, e := range wl.Graph.Edges() {
			if err := w.Write([]string{strconv.Itoa(int(e.ID)),
				strconv.Itoa(int(e.From)), strconv.Itoa(int(e.To)),
				strconv.FormatFloat(e.Weight, 'f', 2, 64)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return writeAll("trajectories.csv", []string{"id", "pos", "vertex", "time"}, func(w *csv.Writer) error {
		for id := range wl.Data.Trajs {
			tr := &wl.Data.Trajs[id]
			for pos, v := range tr.Path {
				t := ""
				if pos < len(tr.Times) {
					t = strconv.FormatFloat(tr.Times[pos], 'f', 1, 64)
				}
				if err := w.Write([]string{strconv.Itoa(id), strconv.Itoa(pos), strconv.Itoa(int(v)), t}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

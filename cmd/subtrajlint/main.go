// Command subtrajlint runs the repo's invariant analyzers (see
// internal/analysis) over the module and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/subtrajlint ./...
//	go run ./cmd/subtrajlint -only poolpair,errsync ./...
//	go run ./cmd/subtrajlint -list
//
// The package patterns are advisory: the whole module is always loaded
// (test files included), and findings are reported for every package
// matching the patterns ("./..." or import-path prefixes). CI runs the
// full-tree form as a required gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subtraj/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "subtrajlint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	dir, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "subtrajlint: %v\n", err)
		os.Exit(2)
	}
	fset, pkgs, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subtrajlint: %v\n", err)
		os.Exit(2)
	}
	pkgs = filterPackages(pkgs, flag.Args())
	diags, err := analysis.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subtrajlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "subtrajlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndexByte(dir, '/')+1]
		if parent == "" || parent == dir || parent == "/" && dir == "/" {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = strings.TrimRight(parent, "/")
		if dir == "" {
			dir = "/"
		}
	}
}

// filterPackages keeps packages matching the CLI patterns. "./..." (and no
// patterns at all) means everything; "./internal/wal" or a full import
// path selects a subtree.
func filterPackages(pkgs []*analysis.LoadedPackage, patterns []string) []*analysis.LoadedPackage {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(path string) bool {
		for _, pat := range patterns {
			if pat == "./..." || pat == "all" {
				return true
			}
			dots := strings.HasSuffix(pat, "/...")
			pat = strings.TrimSuffix(pat, "/...")
			pat = strings.TrimPrefix(pat, "./")
			if path == pat || strings.HasSuffix(path, "/"+pat) {
				return true
			}
			if dots && (strings.Contains(path, "/"+pat+"/") || strings.HasPrefix(path, pat+"/")) {
				return true
			}
		}
		return false
	}
	var out []*analysis.LoadedPackage
	for _, lp := range pkgs {
		if match(lp.PkgPath) {
			out = append(out, lp)
		}
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"subtraj"
	"subtraj/internal/server"
	"subtraj/internal/wal"
)

// The crash-recovery harness: build the real wedserve binary, ingest over
// HTTP with -wal-sync always, SIGKILL it mid-ingest, and verify that the
// recovered state (a) contains at least every acknowledged append and at
// most every sent one, (b) is bit-identical to the sent prefix it claims
// to hold, and (c) yields bit-equal search results under all six cost
// models versus an uncrashed reference engine fed the same prefix.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// binaryPath builds wedserve once per test process and returns its path.
func binaryPath(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wedserve-bin")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "wedserve")
		out, err := exec.Command("go", "build", "-o", buildBin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// freePort grabs an ephemeral port and releases it for the child to bind.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startChild launches wedserve against the given durable dir and waits
// until /healthz answers. The returned cleanup reaps the process.
func startChild(t *testing.T, walDir string, port int) (*exec.Cmd, string) {
	return startChildOpts(t, walDir, port, nil)
}

// startChildOpts is startChild with extra environment entries (appended
// to the test process's own) and extra command-line flags — the
// fault-injection tests use them to arm crash points and shrink the
// compaction threshold.
func startChildOpts(t *testing.T, walDir string, port int, env []string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	bin := binaryPath(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := []string{
		"-addr", addr,
		"-dataset", "tiny", "-scale", "1", "-model", "EDR",
		"-wal-dir", walDir, "-wal-sync", "always", "-checkpoint-bytes", "0",
		"-gps-sigma", "0",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	var logBuf bytes.Buffer
	cmd.Stdout = &logBuf
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("child never became healthy; log:\n%s", logBuf.String())
	return nil, ""
}

type healthz struct {
	Status            string `json:"status"`
	Trajectories      int    `json:"trajectories"`
	Durable           bool   `json:"durable"`
	DurableGeneration uint64 `json:"durable_generation"`
	WALRecords        int64  `json:"wal_records"`
	RecoveryReplayed  int64  `json:"recovery_replayed_records"`
}

func getHealthz(t *testing.T, base string) healthz {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// ingestPayloads derives deterministic append bodies from the base
// workload: rotated copies of existing paths with index-tagged
// timestamps, so recovered bytes are checkable bit-for-bit.
func ingestPayloads(base *subtraj.Workload, n int) []subtraj.Trajectory {
	out := make([]subtraj.Trajectory, n)
	trajs := base.Data.Trajs
	for i := range out {
		src := trajs[i%len(trajs)].Path
		p := make([]subtraj.Symbol, len(src))
		rot := i % len(src)
		copy(p, src[rot:])
		copy(p[len(src)-rot:], src[:rot])
		ts := make([]float64, len(p))
		for j := range ts {
			ts[j] = float64(i*1000+j) + 0.25
		}
		out[i] = subtraj.Trajectory{Path: p, Times: ts}
	}
	return out
}

func postAppend(client *http.Client, base string, tr subtraj.Trajectory) error {
	body, _ := json.Marshal(map[string]any{"path": tr.Path, "times": tr.Times})
	resp, err := client.Post(base+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("append: HTTP %d", resp.StatusCode)
	}
	return nil
}

// modelNames mirrors buildModel's accepted cost models.
var modelNames = []string{"Lev", "EDR", "ERP", "NetEDR", "NetERP", "SURS"}

// referenceEngine builds an uncrashed engine for the model: a pristine
// tiny workload plus the given appended tail, single-sharded so result
// order is the canonical (ID, S, T) sort.
func referenceEngine(t *testing.T, model string, tail []subtraj.Trajectory) *subtraj.Engine {
	t.Helper()
	w := subtraj.Generate(subtraj.TinyWorkload(42))
	netw := subtraj.NewNetwork(w.Graph)
	costs, data, err := buildModel(netw, w, model)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := subtraj.NewEngineShards(data, costs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range tail {
		eng.Append(tr)
	}
	return eng
}

func copyDurableDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func sameTrajectory(a, b subtraj.Trajectory) bool {
	if len(a.Path) != len(b.Path) || len(a.Times) != len(b.Times) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			return false
		}
	}
	return true
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	walDir := t.TempDir()
	port := freePort(t)
	child, base := startChild(t, walDir, port)

	baseW := subtraj.Generate(subtraj.TinyWorkload(42))
	baseLen := baseW.Data.Len()
	payloads := ingestPayloads(baseW, 10000)

	// Serial ingest; a goroutine SIGKILLs the child shortly after the
	// 12th ack, so the crash lands with requests in flight.
	client := &http.Client{Timeout: 2 * time.Second}
	var sent, acked int
	killed := make(chan struct{})
	for _, tr := range payloads {
		sent++
		err := postAppend(client, base, tr)
		if err != nil {
			break // child is dead: end of the crash window
		}
		acked++
		if acked == 12 {
			go func() {
				time.Sleep(2 * time.Millisecond)
				child.Process.Kill() // SIGKILL: no flush, no shutdown path
				close(killed)
			}()
		}
	}
	if acked < 12 {
		t.Fatalf("child died before the kill was even scheduled: acked=%d", acked)
	}
	<-killed
	child.Wait()
	if sent == len(payloads) {
		t.Fatalf("ingest loop completed all %d appends without observing the crash", sent)
	}
	t.Logf("crash window: %d acked, %d sent", acked, sent)

	// In-process recovery on a copy of the durable dir: the recovered
	// tail must be a bit-exact prefix of what was sent, no shorter than
	// what was acknowledged (fsync-before-ack), no longer than sent.
	recDir := copyDurableDir(t, walDir)
	recW := subtraj.Generate(subtraj.TinyWorkload(42))
	netw := subtraj.NewNetwork(recW.Graph)
	inner, rec, err := server.OpenDurable(recDir, recW.Data, netw.EDR(100), server.DurableOptions{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recovered := int(rec.SnapshotRecords + rec.ReplayedRecords)
	if err := inner.Durable().Close(); err != nil {
		t.Fatal(err)
	}
	// The final, failed append may still have reached the WAL before the
	// kill, so the upper bound is inclusive.
	if recovered < acked || recovered > sent {
		t.Fatalf("recovered %d records, want [%d, %d]", recovered, acked, sent)
	}
	tail := make([]subtraj.Trajectory, recovered)
	copy(tail, recW.Data.Trajs[baseLen:])
	for i, tr := range tail {
		if !sameTrajectory(tr, payloads[i]) {
			t.Fatalf("recovered record %d differs from the sent payload", i)
		}
	}

	// The recovered prefix must be indistinguishable from an uncrashed
	// run under every cost model: identical inputs, so identical engines
	// — search results must match bit for bit.
	rng := rand.New(rand.NewSource(9))
	for _, model := range modelNames {
		ref := referenceEngine(t, model, payloads[:recovered])
		got := referenceEngine(t, model, tail)
		q, err := subtraj.SampleQuery(ref.Dataset(), 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		refM, err := ref.SearchRatio(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		gotM, err := got.SearchRatio(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if len(refM) != len(gotM) {
			t.Fatalf("%s: %d matches recovered vs %d reference", model, len(gotM), len(refM))
		}
		for i := range refM {
			if refM[i] != gotM[i] {
				t.Fatalf("%s: match %d differs: recovered %+v, reference %+v", model, i, gotM[i], refM[i])
			}
		}
	}

	// Restart the real binary on the surviving dir: it must report the
	// same recovered generation and serve search results bit-equal to
	// the in-process reference.
	port2 := freePort(t)
	child2, base2 := startChild(t, walDir, port2)
	h := getHealthz(t, base2)
	if !h.Durable {
		t.Fatal("restarted server does not report durable mode")
	}
	if int(h.DurableGeneration) != recovered {
		t.Fatalf("restarted generation = %d, recovered = %d", h.DurableGeneration, recovered)
	}
	if h.Trajectories != baseLen+recovered {
		t.Fatalf("restarted trajectories = %d, want %d", h.Trajectories, baseLen+recovered)
	}
	if int(h.RecoveryReplayed) != recovered {
		t.Fatalf("restarted recovery_replayed_records = %d, want %d", h.RecoveryReplayed, recovered)
	}

	ref := referenceEngine(t, "EDR", payloads[:recovered])
	q, err := subtraj.SampleQuery(ref.Dataset(), 8, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	refM, err := ref.SearchRatio(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"q": q, "tau_ratio": 0.2})
	resp, err := client.Post(base2+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Matches []struct {
			ID  int32   `json:"id"`
			S   int32   `json:"s"`
			T   int32   `json:"t"`
			WED float64 `json:"wed"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after restart: HTTP %d", resp.StatusCode)
	}
	if len(sr.Matches) != len(refM) {
		t.Fatalf("restarted search: %d matches, reference %d", len(sr.Matches), len(refM))
	}
	for i, m := range sr.Matches {
		if m.ID != refM[i].ID || m.S != refM[i].S || m.T != refM[i].T || m.WED != refM[i].WED {
			t.Fatalf("restarted search match %d = %+v, reference %+v", i, m, refM[i])
		}
	}

	// A clean restart must also shut down cleanly, closing the WAL.
	child2.Process.Signal(os.Interrupt)
	if err := child2.Wait(); err != nil {
		t.Fatalf("graceful shutdown after recovery: %v", err)
	}
}

// TestCompactionCrashRecovery SIGKILLs wedserve between a compaction
// fold and its publish — the adversarial window the epoch design opens:
// the new base is fully built but the snapshot swap never happens. The
// WAL is the only authority over appended data, so recovery must replay
// the whole acknowledged delta exactly once — no lost appends, no
// duplicates — and a restarted server must fold successfully where the
// crashed one died.
func TestCompactionCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	walDir := t.TempDir()
	port := freePort(t)
	// Arm the crash point and make the background fold trigger after 8
	// unfolded appends, so the 8th acknowledged append detonates it.
	child, base := startChildOpts(t, walDir, port,
		[]string{"SUBTRAJ_CRASH_POINT=compact-fold"}, "-compact-appends", "8")

	baseW := subtraj.Generate(subtraj.TinyWorkload(42))
	baseLen := baseW.Data.Len()
	payloads := ingestPayloads(baseW, 200)

	client := &http.Client{Timeout: 2 * time.Second}
	var sent, acked int
	for _, tr := range payloads {
		sent++
		if err := postAppend(client, base, tr); err != nil {
			break // the armed crash point fired
		}
		acked++
	}
	child.Wait()
	if sent == len(payloads) {
		t.Fatalf("all %d appends succeeded: the compact-fold crash point never fired", sent)
	}
	if acked < 7 {
		t.Fatalf("crashed before the compaction threshold: acked=%d", acked)
	}
	t.Logf("compaction crash window: %d acked, %d sent", acked, sent)

	// In-process recovery from a copy: every acknowledged append must
	// come back exactly once, bit-for-bit, in append order — the fold
	// that died was pure index work, so no trajectory may be missing
	// (lost on fold) or doubled (replayed on top of a folded base).
	recDir := copyDurableDir(t, walDir)
	recW := subtraj.Generate(subtraj.TinyWorkload(42))
	netw := subtraj.NewNetwork(recW.Graph)
	inner, rec, err := server.OpenDurable(recDir, recW.Data, netw.EDR(100), server.DurableOptions{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recovered := int(rec.SnapshotRecords + rec.ReplayedRecords)
	if recovered < acked || recovered > sent {
		t.Fatalf("recovered %d records, want [%d, %d]", recovered, acked, sent)
	}
	if got := recW.Data.Len() - baseLen; got != recovered {
		t.Fatalf("dataset holds %d appended records, recovery reports %d", got, recovered)
	}
	for i, tr := range recW.Data.Trajs[baseLen:] {
		if !sameTrajectory(subtraj.Trajectory(tr), payloads[i]) {
			t.Fatalf("recovered record %d differs from the sent payload (duplicate or reorder)", i)
		}
	}
	// The recovered engine must fold the replayed delta cleanly.
	if _, err := inner.Compact(); err != nil {
		t.Fatalf("compact after recovery: %v", err)
	}
	if inner.DeltaLen() != 0 || inner.FoldedLen() != baseLen+recovered {
		t.Fatalf("post-recovery fold: delta=%d folded=%d, want 0/%d",
			inner.DeltaLen(), inner.FoldedLen(), baseLen+recovered)
	}
	if err := inner.Durable().Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the real binary on the surviving dir WITHOUT the crash
	// point: it must recover the same generation and survive crossing
	// the compaction threshold it died on.
	port2 := freePort(t)
	child2, base2 := startChildOpts(t, walDir, port2, nil, "-compact-appends", "8")
	h := getHealthz(t, base2)
	if int(h.DurableGeneration) != recovered || h.Trajectories != baseLen+recovered {
		t.Fatalf("restart: generation=%d trajectories=%d, want %d/%d",
			h.DurableGeneration, h.Trajectories, recovered, baseLen+recovered)
	}
	for i := 0; i < 10; i++ {
		if err := postAppend(client, base2, payloads[recovered+i]); err != nil {
			t.Fatalf("append %d after restart: %v", i, err)
		}
	}
	// The appends crossed the threshold: a background fold must complete
	// and absorb the delta.
	var st struct {
		Ingest struct {
			Compactions int64 `json:"compactions"`
			Delta       int   `json:"delta_trajectories"`
			Folded      int   `json:"folded_trajectories"`
		} `json:"ingest"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base2 + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingest.Compactions >= 1 && st.Ingest.Delta < 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background fold never completed after restart: %+v", st.Ingest)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h2 := getHealthz(t, base2); h2.Trajectories != baseLen+recovered+10 {
		t.Fatalf("after restart appends: %d trajectories, want %d", h2.Trajectories, baseLen+recovered+10)
	}
	child2.Process.Signal(os.Interrupt)
	if err := child2.Wait(); err != nil {
		t.Fatalf("graceful shutdown after compaction recovery: %v", err)
	}
}

// TestDurableFlagValidation checks the flag combinations wedserve must
// refuse rather than silently misconfigure durability.
func TestDurableFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	bin := binaryPath(t)
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"index-file conflict", []string{"-wal-dir", t.TempDir(), "-index", "compact", "-index-file", "x.sbtj"}, "-index-file cannot be combined"},
		{"bad sync policy", []string{"-wal-dir", t.TempDir(), "-wal-sync", "sometimes"}, "sync policy"},
		{"bad index kind", []string{"-wal-dir", t.TempDir(), "-index", "btree"}, "unknown index backend"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-dataset", "tiny", "-addr", "127.0.0.1:0"}, tc.args...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			if err == nil {
				t.Fatalf("wedserve accepted %v; output:\n%s", tc.args, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("error output %q does not mention %q", out, tc.want)
			}
		})
	}
}

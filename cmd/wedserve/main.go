// Command wedserve serves subtrajectory similarity queries over HTTP: it
// generates (or loads) a workload, builds an engine for a chosen cost
// model, wraps it for concurrency, and listens until SIGINT/SIGTERM, then
// shuts down gracefully.
//
// Usage:
//
//	wedserve [-addr :8080] [-dataset beijing] [-scale 0.1] [-model EDR]
//	         [-load workload.gob] [-cache 1024] [-concurrency 0]
//	         [-shards 0] [-index pointer|compact] [-index-file idx.sbtj]
//	         [-wal-dir state/] [-wal-sync always|interval|never]
//	         [-wal-sync-interval 100ms] [-checkpoint-bytes 67108864]
//	         [-compact-appends 4096] [-request-timeout 0] [-queue-wait 1s]
//	         [-max-parallelism 0] [-gps-sigma 20] [-gps-beta 50]
//	         [-slow-query 250ms] [-trace-buffer 64] [-no-metrics]
//	         [-debug-addr localhost:6060]
//
// Endpoints (all JSON; see internal/server for the full shapes):
//
//	POST /v1/search    {"q":[...], "tau":12.5}   or {"q":[...], "tau_ratio":0.1}
//	POST /v1/topk      {"q":[...], "k":5}
//	POST /v1/temporal  {"q":[...], "tau_ratio":0.1, "lo":0, "hi":3600, "mode":"overlap"}
//	POST /v1/exact     {"q":[...]}
//	POST /v1/count     {"q":[...]}
//	POST /v1/append    {"path":[...], "times":[...]}
//	POST /v1/checkpoint            (durable mode: snapshot + WAL rotation)
//	POST /v1/match     {"trace":[[x,y],...]}
//	POST /v1/ingest    {"traces":[[[x,y],...],...]}
//	POST /v1/batch     {"queries":[{"kind":"search", ...}, ...]}
//	GET  /v1/stats
//	GET  /v1/debug/traces   span trees of recent slow queries
//	GET  /metrics           Prometheus text exposition
//	GET  /healthz
//
// Query bodies also accept "trace" in place of "q": the raw GPS samples
// are map-matched onto the network (tuned by -gps-sigma/-gps-beta) and
// the matched path is searched. Appending ?debug=trace to any query
// endpoint embeds the request's span tree in the response.
//
// Observability knobs: -slow-query sets the slow-query log threshold,
// -trace-buffer the /v1/debug/traces retention, -no-metrics disables the
// /metrics registry, and -debug-addr starts a second listener serving
// net/http/pprof (kept off the public address on purpose).
//
// Durability: -wal-dir enables crash-safe ingest. Every /v1/append is
// written to a CRC-framed write-ahead log before it is applied, fsynced
// per -wal-sync, and recovered on restart (snapshot replay + WAL replay
// with torn-tail truncation). -checkpoint-bytes bounds the log by
// triggering background checkpoints; POST /v1/checkpoint forces one.
// The base workload (-dataset/-load/-scale/-model) must match across
// restarts: the durable directory persists only appended trajectories.
//
// Ingest under load: searches run lock-free against immutable epoch
// snapshots while appends publish new ones; -compact-appends bounds the
// per-publish delta by folding it into the frozen base in the
// background (see DESIGN.md §1.11).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"subtraj"
	"subtraj/internal/server"
	"subtraj/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wedserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataset     = flag.String("dataset", "beijing", "workload: beijing|porto|singapore|sanfran|tiny")
		load        = flag.String("load", "", "load a workload gob written by datagen instead of generating")
		scale       = flag.Float64("scale", 0.1, "dataset scale factor")
		model       = flag.String("model", "EDR", "cost model: Lev|EDR|ERP|NetEDR|NetERP|SURS")
		cacheSize   = flag.Int("cache", 1024, "LRU result-cache entries (negative disables)")
		concurrency = flag.Int("concurrency", 0, "max in-flight engine queries (0 = 2x GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "index trajectory shards = per-query parallelism ceiling (0 = one per CPU)")
		indexKind   = flag.String("index", "pointer", "index backend: pointer (sharded in-RAM) | compact (frozen bit-packed arena, mmap-able)")
		indexFile   = flag.String("index-file", "", "compact arena path: open zero-copy via mmap if it exists, else build, save, and re-open (requires -index compact)")
		walDir      = flag.String("wal-dir", "", "durable-state directory: log appends to a WAL, checkpoint, and recover on restart (incompatible with -index-file)")
		walSync     = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync per append) | interval | never")
		walInterval = flag.Duration("wal-sync-interval", 100*time.Millisecond, "flush period for -wal-sync interval")
		ckptBytes   = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint automatically when the WAL passes this size (0 = only on POST /v1/checkpoint)")
		compactApps = flag.Int("compact-appends", 4096, "fold the append delta into the frozen base after this many unfolded appends (0 = never compact automatically)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline; exceeded queries return 504 (0 disables)")
		queueWait   = flag.Duration("queue-wait", time.Second, "max wait for a worker slot before shedding the request with 503 (0 = wait for the request deadline)")
		maxPar      = flag.Int("max-parallelism", 0, "cap shard workers per query (0 = min(shards, GOMAXPROCS); 1 = sequential)")
		maxBatch    = flag.Int("max-batch", 64, "max subqueries per /v1/batch request")
		gpsSigma    = flag.Float64("gps-sigma", 20, "GPS noise stddev in metres for map matching (0 disables the GPS endpoints)")
		gpsBeta     = flag.Float64("gps-beta", 50, "map-matching transition tolerance in metres")
		gpsMaxGap   = flag.Float64("gps-max-gap", 0, "split traces at sample jumps longer than this many metres (0 = stitch any gap)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		slowQuery   = flag.Duration("slow-query", 250*time.Millisecond, "slow-query log threshold (negative disables)")
		traceBuffer = flag.Int("trace-buffer", 64, "slow-query traces retained by /v1/debug/traces (negative disables)")
		noMetrics   = flag.Bool("no-metrics", false, "disable the /metrics registry (no-op metric handles)")
		debugAddr   = flag.String("debug-addr", "", "if set, serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	var w *subtraj.Workload
	start := time.Now()
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		w, err = subtraj.LoadWorkload(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %s", *load)
	} else {
		cfg, err := configByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NumTrajectories = int(float64(cfg.NumTrajectories) * *scale)
		if cfg.NumTrajectories < 10 {
			cfg.NumTrajectories = 10
		}
		log.Printf("generating %s workload (%d trajectories)...", cfg.Name, cfg.NumTrajectories)
		w = subtraj.Generate(cfg)
	}
	log.Printf("  graph: %d vertices, %d edges; data: %d trajectories, avg length %.1f (%s)",
		w.Graph.NumVertices(), w.Graph.NumEdges(), w.Data.Len(), w.Data.AvgLen(), time.Since(start).Round(time.Millisecond))

	net := subtraj.NewNetwork(w.Graph)
	costs, data, err := buildModel(net, w, *model)
	if err != nil {
		log.Fatal(err)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	start = time.Now()
	var inner *server.SafeEngine
	if *walDir != "" {
		if *indexFile != "" {
			log.Fatal("-index-file cannot be combined with -wal-dir: durable mode manages index.compact inside the state directory")
		}
		if *indexKind != "pointer" && *indexKind != "compact" {
			log.Fatalf("unknown index backend %q (pointer|compact)", *indexKind)
		}
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		var rec *server.RecoveryInfo
		inner, rec, err = server.OpenDurable(*walDir, data, costs, server.DurableOptions{
			Sync:            pol,
			SyncInterval:    *walInterval,
			CheckpointBytes: *ckptBytes,
			Compact:         *indexKind == "compact",
			Shards:          *shards,
			Logger:          logger,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("  durable state %s recovered in %s: %d snapshot + %d replayed records (%d skipped, gen %d, wal %s)",
			*walDir, time.Since(start).Round(time.Millisecond),
			rec.SnapshotRecords, rec.ReplayedRecords, rec.SkippedRecords,
			rec.CheckpointGen, byteSize(rec.WALBytes))
		if rec.TailTruncated {
			log.Printf("  WAL tail truncated at a torn frame: %s", rec.TruncateReason)
		}
		if rec.IndexMapped {
			log.Printf("  compact index mapped from checkpoint")
		}
	} else {
		eng, err := buildEngine(data, costs, *indexKind, *indexFile, *shards)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("  engine (%s, %s index, %d shards, %s) built in %s",
			*model, eng.IndexKind(), eng.NumShards(), byteSize(eng.IndexBytes()), time.Since(start).Round(time.Millisecond))
		inner = subtraj.NewSafeEngine(eng).Inner()
	}
	inner.SetCompactAppends(*compactApps)

	// Crash-point hook for the fault-injection tests: when the named
	// point of the write path is reached, die as hard as SIGKILL — no
	// flush, no deferred cleanup — so recovery is exercised against the
	// worst window (e.g. between a compaction fold and its publish).
	if cp := os.Getenv("SUBTRAJ_CRASH_POINT"); cp != "" {
		server.SetCrashHook(func(point string) {
			if point == cp {
				p, _ := os.FindProcess(os.Getpid())
				p.Kill()
				select {} // unreachable once the signal lands
			}
		})
		log.Printf("  crash point armed: %s", cp)
	}

	// The alphabet bound keeps out-of-range symbols in request JSON from
	// reaching the cost models, which index per-symbol tables directly.
	maxSymbol := int32(w.Graph.NumVertices())
	if data.Rep == subtraj.EdgeRep {
		maxSymbol = int32(w.Graph.NumEdges())
	}

	scfg := server.Config{
		CacheSize:      *cacheSize,
		MaxConcurrent:  *concurrency,
		MaxBatch:       *maxBatch,
		MaxSymbol:      maxSymbol,
		MaxParallelism: *maxPar,
		RequestTimeout: *reqTimeout,
		QueueWait:      *queueWait,
		SlowQuery:      *slowQuery,
		TraceBuffer:    *traceBuffer,
		DisableMetrics: *noMetrics,
		Logger:         logger,
	}
	if *gpsSigma > 0 {
		start = time.Now()
		matcher := subtraj.NewMapMatcher(w.Graph, subtraj.MapMatchConfig{
			Sigma:  *gpsSigma,
			Beta:   *gpsBeta,
			MaxGap: *gpsMaxGap,
		})
		scfg.Matcher = matcher.Internal()
		log.Printf("  GPS matcher (σ=%gm, β=%gm) built in %s", *gpsSigma, *gpsBeta, time.Since(start).Round(time.Millisecond))
	}
	srv := server.New(inner, scfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		// pprof gets its own mux on its own listener: profiling stays
		// reachable when the main pool saturates, and the public address
		// never exposes the profiler.
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (model=%s, cache=%d, concurrency=%d)",
			*addr, *model, *cacheSize, *concurrency)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (draining up to %s)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if d := inner.Durable(); d != nil {
		// All handlers have drained; flush and close the WAL so the final
		// fsync covers every acknowledged append.
		if err := d.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	snap := srv.Snapshot()
	log.Printf("served %d searches, %d batches, %d appends; cache hits %d/%d; exiting",
		snap.Requests.Search, snap.Requests.Batch, snap.Requests.Append,
		snap.Cache.Hits, snap.Cache.Hits+snap.Cache.Misses)
}

// buildEngine constructs the index backend the flags select. With
// -index compact and an -index-file that exists, the arena is opened
// zero-copy via mmap; with a file that does not exist yet, the index is
// built in memory, saved, and re-opened from the mapping so the serving
// process genuinely runs off the page cache.
func buildEngine(data *subtraj.Dataset, costs subtraj.FilterCosts, kind, file string, shards int) (*subtraj.Engine, error) {
	switch kind {
	case "pointer":
		if file != "" {
			return nil, fmt.Errorf("-index-file requires -index compact")
		}
		return subtraj.NewEngineShards(data, costs, shards)
	case "compact":
		if file == "" {
			return subtraj.NewEngineCompact(data, costs)
		}
		if _, err := os.Stat(file); err == nil {
			eng, _, err := subtraj.OpenMappedEngine(data, costs, file)
			if err != nil {
				return nil, err
			}
			log.Printf("  compact index mapped from %s", file)
			return eng, nil
		}
		eng, err := subtraj.NewEngineCompact(data, costs)
		if err != nil {
			return nil, err
		}
		f, err := os.Create(file)
		if err != nil {
			return nil, err
		}
		if err := eng.SaveIndex(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		log.Printf("  compact index saved to %s; re-opening mapped", file)
		eng, _, err = subtraj.OpenMappedEngine(data, costs, file)
		return eng, err
	default:
		return nil, fmt.Errorf("unknown index backend %q (pointer|compact)", kind)
	}
}

// byteSize renders a byte count human-readably for startup logs.
func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func configByName(name string) (subtraj.WorkloadConfig, error) {
	switch name {
	case "beijing":
		return subtraj.BeijingLike(), nil
	case "porto":
		return subtraj.PortoLike(), nil
	case "singapore":
		return subtraj.SingaporeLike(), nil
	case "sanfran":
		return subtraj.SanFranLike(), nil
	case "tiny":
		return subtraj.TinyWorkload(42), nil
	default:
		return subtraj.WorkloadConfig{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func buildModel(net *subtraj.Network, w *subtraj.Workload, model string) (subtraj.FilterCosts, *subtraj.Dataset, error) {
	switch model {
	case "Lev":
		return net.Lev(), w.Data, nil
	case "EDR":
		return net.EDR(100), w.Data, nil
	case "ERP":
		return net.ERP(net.DefaultERPEta()), w.Data, nil
	case "NetEDR":
		return net.NetEDR(w.Graph.MedianEdgeWeight()), w.Data, nil
	case "NetERP":
		return net.NetERP(2e6, w.Graph.MedianEdgeWeight()), w.Data, nil
	case "SURS":
		ed, err := w.Data.ToEdgeRep(w.Graph)
		if err != nil {
			return nil, nil, err
		}
		return net.SURS(), ed, nil
	default:
		return nil, nil, fmt.Errorf("unknown model %q", model)
	}
}

// Command wedsearch is an interactive demonstration CLI: it generates (or
// loads) a workload, builds an engine for a chosen cost model, and answers
// subtrajectory similarity queries.
//
// Usage:
//
//	wedsearch [-dataset beijing] [-scale 0.1] [-model EDR] [-qlen 60]
//	          [-tau 0.1] [-n 5] [-temporal-hi 0] [-v]
//
// It samples -n queries from the dataset, runs them, and prints matches
// and per-query statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"subtraj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wedsearch: ")
	var (
		dataset    = flag.String("dataset", "beijing", "workload: beijing|porto|singapore|sanfran|tiny")
		load       = flag.String("load", "", "load a workload gob written by datagen instead of generating")
		scale      = flag.Float64("scale", 0.1, "dataset scale factor")
		model      = flag.String("model", "EDR", "cost model: Lev|EDR|ERP|NetEDR|NetERP|SURS")
		qlen       = flag.Int("qlen", 60, "query length")
		tau        = flag.Float64("tau", 0.1, "threshold ratio in (0,1]")
		n          = flag.Int("n", 5, "number of sampled queries")
		temporalHi = flag.Float64("temporal-hi", 0, "if >0, restrict matches to [0, temporal-hi] seconds (overlap)")
		seed       = flag.Int64("seed", 42, "random seed for query sampling")
		verbose    = flag.Bool("v", false, "print every match")
	)
	flag.Parse()

	var w *subtraj.Workload
	start := time.Now()
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		w, err = subtraj.LoadWorkload(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s\n", *load)
	} else {
		cfg, err := configByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NumTrajectories = int(float64(cfg.NumTrajectories) * *scale)
		if cfg.NumTrajectories < 10 {
			cfg.NumTrajectories = 10
		}
		fmt.Printf("generating %s workload (%d trajectories)...\n", cfg.Name, cfg.NumTrajectories)
		w = subtraj.Generate(cfg)
	}
	fmt.Printf("  graph: %d vertices, %d edges; data: %d trajectories, avg length %.1f (%s)\n",
		w.Graph.NumVertices(), w.Graph.NumEdges(), w.Data.Len(), w.Data.AvgLen(), time.Since(start).Round(time.Millisecond))

	net := subtraj.NewNetwork(w.Graph)
	costs, data, err := buildModel(net, w, *model)
	if err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	eng, err := subtraj.NewEngine(data, costs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  engine (%s) built in %s\n\n", *model, time.Since(start).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *n; i++ {
		q, err := subtraj.SampleQuery(data, *qlen, rng)
		if err != nil {
			log.Fatal(err)
		}
		absTau := eng.Threshold(q, *tau)
		var (
			ms    []subtraj.Match
			stats *subtraj.QueryStats
		)
		start = time.Now()
		if *temporalHi > 0 {
			ms, stats, err = eng.SearchTemporal(q, absTau, subtraj.TemporalWindow{Lo: 0, Hi: *temporalHi})
		} else {
			ms, stats, err = eng.SearchStats(q, absTau, subtraj.VerifyOptions{})
		}
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: |Q|=%d tau=%.3g -> %d matches in %s (candidates=%d, |Q'|=%d)\n",
			i+1, len(q), absTau, len(ms), elapsed.Round(time.Microsecond), stats.Candidates, stats.SubseqLen)
		if *verbose {
			for _, m := range ms {
				fmt.Printf("  trajectory %d [%d..%d] wed=%.4g\n", m.ID, m.S, m.T, m.WED)
			}
		}
	}
	os.Exit(0)
}

func configByName(name string) (subtraj.WorkloadConfig, error) {
	switch name {
	case "beijing":
		return subtraj.BeijingLike(), nil
	case "porto":
		return subtraj.PortoLike(), nil
	case "singapore":
		return subtraj.SingaporeLike(), nil
	case "sanfran":
		return subtraj.SanFranLike(), nil
	case "tiny":
		return subtraj.TinyWorkload(42), nil
	default:
		return subtraj.WorkloadConfig{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func buildModel(net *subtraj.Network, w *subtraj.Workload, model string) (subtraj.FilterCosts, *subtraj.Dataset, error) {
	switch model {
	case "Lev":
		return net.Lev(), w.Data, nil
	case "EDR":
		return net.EDR(100), w.Data, nil
	case "ERP":
		return net.ERP(net.DefaultERPEta()), w.Data, nil
	case "NetEDR":
		return net.NetEDR(w.Graph.MedianEdgeWeight()), w.Data, nil
	case "NetERP":
		return net.NetERP(2e6, w.Graph.MedianEdgeWeight()), w.Data, nil
	case "SURS":
		ed, err := w.Data.ToEdgeRep(w.Graph)
		if err != nil {
			return nil, nil, err
		}
		return net.SURS(), ed, nil
	default:
		return nil, nil, fmt.Errorf("unknown model %q", model)
	}
}
